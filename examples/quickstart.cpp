// Quickstart: train a classifier with partial reduce on real threads.
//
// Four worker threads train MLP replicas on shards of a synthetic 10-class
// dataset. Worker 3 is an injected straggler (3x slower). The controller
// forms groups of P=2 from ready signals, so the fast workers keep making
// progress while the straggler catches up — no global barrier. The headline
// number is when the *fast* workers finish their iteration budget: under
// all-reduce they are dragged to the straggler's pace; under partial reduce
// they are not.

#include <algorithm>
#include <cstdio>

#include "train/run.h"

namespace {

double FastestFinish(const pr::ThreadedRunResult& result) {
  return *std::min_element(result.worker_finish_seconds.begin(),
                           result.worker_finish_seconds.end());
}

}  // namespace

int main() {
  pr::RunConfig config;
  config.run.num_workers = 4;
  config.run.iterations_per_worker = 80;
  config.run.model.hidden = {32};
  config.run.batch_size = 32;

  config.run.dataset.num_classes = 10;
  config.run.dataset.dim = 32;
  config.run.dataset.num_train = 4096;
  config.run.dataset.num_test = 1024;
  config.run.dataset.separation = 3.2;

  // Heterogeneity: worker 3 sleeps 6 ms per iteration, the others 2 ms.
  config.run.worker_delay_seconds = {0.002, 0.002, 0.002, 0.006};

  config.strategy.kind = pr::StrategyKind::kPReduceConst;
  config.strategy.group_size = 2;

  std::printf("Training with partial reduce (N=%d, P=%d)...\n",
              config.run.num_workers, config.strategy.group_size);
  // StartRun is the engine-agnostic entry: the same config also runs under
  // the discrete-event simulator with EngineKind::kSim.
  pr::RunOutcome outcome = pr::StartRun(config, pr::EngineKind::kThreaded);
  const pr::ThreadedRunResult& result = outcome.threaded;

  std::printf("fast worker finished at : %.3f s\n", FastestFinish(result));
  std::printf("straggler finished at   : %.3f s\n",
              result.worker_finish_seconds.back());
  std::printf("group reduces           : %llu\n",
              static_cast<unsigned long long>(result.group_reduces));
  std::printf("final accuracy          : %.3f\n", result.final_accuracy);
  std::printf("replica spread          : %.4f (L-inf across models)\n",
              result.replica_spread);

  // Same workload under classic all-reduce: every iteration waits for the
  // straggler, so even the fast workers finish at the straggler's pace.
  std::printf("\nSame workload with all-reduce (global barrier)...\n");
  config.strategy.kind = pr::StrategyKind::kAllReduce;
  const pr::ThreadedRunResult ar =
      pr::StartRun(config, pr::EngineKind::kThreaded).threaded;
  std::printf("fast worker finished at : %.3f s\n", FastestFinish(ar));
  std::printf("final accuracy          : %.3f\n", ar.final_accuracy);

  std::printf(
      "\nFast-worker completion speedup (AR / P-Reduce): %.2fx\n"
      "Under the barrier, fast workers run at the straggler's pace;\n"
      "partial reduce lets them proceed and still reach consensus.\n",
      FastestFinish(ar) / FastestFinish(result));
  return 0;
}
