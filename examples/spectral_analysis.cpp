// Spectral-gap analysis of partial reduce (paper §3.2, Fig. 4).
//
// Prints (a) the closed-form homogeneous rho = 1 - (P-1)/(N-1) across N and
// P, (b) an empirical E[W_k] measured from the controller under homogeneous
// and heterogeneous arrival patterns, reproducing Fig. 4's rho = 0.5 vs
// rho = 0.625 example, and (c) the learning-rate condition of Eq. (7).

#include <cstdio>

#include "core/controller.h"
#include "core/spectral.h"
#include "train/experiment.h"
#include "train/report.h"

namespace {

/// Measures rho from an actual simulated run with the controller recording
/// every W_k.
double MeasuredRho(const pr::HeteroSpec& hetero, int n, int p) {
  pr::ExperimentConfig config;
  config.training.num_workers = n;
  config.training.timing_only = true;
  config.training.timing_updates = 6000;
  config.training.hetero = hetero;
  config.training.seed = 3;
  config.strategy.kind = pr::StrategyKind::kPReduceConst;
  config.strategy.group_size = p;
  config.strategy.record_sync_matrices = true;

  pr::SimTraining ctx(config.training);
  auto strategy = pr::MakeStrategy(config.strategy, &ctx);
  strategy->Start();
  ctx.engine()->RunUntil([&] { return ctx.stopped(); });
  return pr::SpectralRho(strategy->controller()->ExpectedSyncMatrix());
}

}  // namespace

int main() {
  std::printf("Closed-form homogeneous rho = 1 - (P-1)/(N-1):\n\n");
  pr::TablePrinter table({"N", "P=2", "P=3", "P=4", "P=8"});
  for (int n : {3, 4, 8, 16, 32}) {
    std::vector<std::string> row = {std::to_string(n)};
    for (int p : {2, 3, 4, 8}) {
      row.push_back(p <= n ? pr::FormatDouble(pr::HomogeneousRho(n, p), 4)
                           : "-");
    }
    table.AddRow(row);
  }
  table.Print();

  std::printf("\nEmpirical rho from controller group histories (N=3, P=2):\n");
  const double rho_hom = MeasuredRho(pr::HeteroSpec::Homogeneous(), 3, 2);
  // The paper's Fig. 4(b) scenario: worker 0 exactly 2x slower.
  const double rho_het =
      MeasuredRho(pr::HeteroSpec::FixedFactors({2.0, 1.0, 1.0}), 3, 2);
  std::printf("  homogeneous   rho = %.3f (paper: 0.5)\n", rho_hom);
  std::printf("  heterogeneous rho = %.3f (paper: 0.625 with one 2x-slow "
              "worker)\n", rho_het);
  std::printf("  rho_tilde(hom) = %.3f, rho_tilde(het) = %.3f\n",
              pr::RhoTilde(rho_hom), pr::RhoTilde(rho_het));

  std::printf("\nLearning-rate condition Eq. (7), LHS <= 1 required "
              "(N=8, L=10):\n\n");
  pr::TablePrinter lr_table({"gamma", "P=2", "P=4", "P=8"});
  for (double gamma : {0.001, 0.01, 0.05, 0.1}) {
    std::vector<std::string> row = {pr::FormatDouble(gamma, 3)};
    for (int p : {2, 4, 8}) {
      const double rho = pr::HomogeneousRho(8, p);
      row.push_back(pr::FormatDouble(
          pr::LrConditionLhs(gamma, /*lipschitz_l=*/10.0, 8, p, rho), 3));
    }
    lr_table.AddRow(row);
  }
  lr_table.Print();
  return 0;
}
