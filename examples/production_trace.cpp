// Production-cluster heterogeneity demo (paper §5.3): per-update-time
// distributions of All-Reduce vs partial reduce under heavy-tailed worker
// speeds (resource sharing), N=16, timing-only mode.

#include <cstdio>

#include "train/experiment.h"
#include "train/report.h"

namespace {

pr::SimRunResult RunTiming(pr::StrategyKind kind) {
  pr::ExperimentConfig config;
  config.training.num_workers = 16;
  config.training.paper_model = "resnet34";
  config.training.hetero = pr::HeteroSpec::Production();
  config.training.timing_only = true;
  config.training.timing_updates = 3000;
  config.training.seed = 5;
  config.strategy.kind = kind;
  config.strategy.group_size = 4;
  return pr::RunExperiment(config);
}

}  // namespace

int main() {
  std::printf(
      "Per-update time under production (heavy-tailed) heterogeneity,\n"
      "N=16 workers, ResNet-34 cost model, 3000 updates each.\n\n");

  pr::TablePrinter table({"strategy", "mean (s)", "p50 (s)", "p95 (s)",
                          "p99 (s)", "updates/s"});
  double ar_mean = 0.0, pr_mean = 0.0;
  for (pr::StrategyKind kind :
       {pr::StrategyKind::kAllReduce, pr::StrategyKind::kPReduceConst}) {
    pr::SimRunResult result = RunTiming(kind);
    const pr::SampleSet& intervals = result.update_intervals;
    table.AddRow({result.strategy,
                  pr::FormatDouble(intervals.Mean(), 4),
                  pr::FormatDouble(intervals.Percentile(0.50), 4),
                  pr::FormatDouble(intervals.Percentile(0.95), 4),
                  pr::FormatDouble(intervals.Percentile(0.99), 4),
                  pr::FormatDouble(1.0 / result.per_update_seconds, 1)});
    if (kind == pr::StrategyKind::kAllReduce) ar_mean = intervals.Mean();
    if (kind == pr::StrategyKind::kPReduceConst) pr_mean = intervals.Mean();
  }
  table.Print();
  std::printf("\nAll-Reduce / P-Reduce per-update ratio: %s\n",
              pr::FormatSpeedup(ar_mean / pr_mean).c_str());
  std::printf("(The paper reports ~16.6x on its production cluster.)\n");
  return 0;
}
