// Elastic membership: the controller's ready-signal design means workers
// can leave and rejoin mid-training without reconfiguring a communication
// world — something fixed-topology all-reduce cannot do (the limitation the
// paper's §4 notes for DistributedDataParallel). This example trains with
// P-Reduce while two workers leave for a stretch and one rejoins with its
// stale model; dynamic weights absorb it.

#include <cstdio>

#include "train/experiment.h"
#include "train/report.h"

namespace {

pr::SimRunResult Run(bool with_churn, pr::StrategyKind kind) {
  pr::ExperimentConfig config;
  config.training.num_workers = 8;
  config.training.dataset = "cifar10";
  config.training.dirichlet_alpha = 0.5;
  config.training.paper_model = "resnet18";
  config.training.hetero = pr::HeteroSpec::GpuSharing(2);
  config.training.accuracy_threshold = 0.85;
  config.training.max_updates = 30000;
  config.training.eval_every = 25;
  config.training.seed = 19;
  config.strategy.kind = kind;
  config.strategy.group_size = 3;
  if (with_churn) {
    config.strategy.churn = {
        {5.0, 6, /*leave=*/true},    // preemption
        {8.0, 7, /*leave=*/true},    // second preemption
        {40.0, 6, /*leave=*/false},  // worker 6 comes back, model ~stale
    };
  }
  return pr::RunExperiment(config);
}

}  // namespace

int main() {
  std::printf(
      "Elastic membership under P-Reduce: workers 6 and 7 are preempted at\n"
      "t=5s and t=8s; worker 6 rejoins at t=40s with its stale model.\n"
      "N=8, P=3, GPU-sharing heterogeneity, threshold 85%%.\n\n");

  pr::TablePrinter table({"scenario", "run time (s)", "#updates",
                          "converged", "final acc"});
  for (auto [churn, kind, label] :
       {std::tuple{false, pr::StrategyKind::kPReduceConst,
                   "stable membership (CON)"},
        std::tuple{true, pr::StrategyKind::kPReduceConst,
                   "churn (CON)"},
        std::tuple{true, pr::StrategyKind::kPReduceDynamic,
                   "churn (DYN)"}}) {
    pr::SimRunResult r = Run(churn, kind);
    table.AddRow({label, pr::FormatDouble(r.sim_seconds, 1),
                  std::to_string(r.updates), r.converged ? "yes" : "NO",
                  pr::FormatDouble(r.final_accuracy, 3)});
  }
  table.Print();
  std::printf(
      "\nTraining continues through departures (groups simply form among\n"
      "the remaining workers) and the rejoining stale model is re-absorbed\n"
      "— DYN down-weights it by its iteration-number gap.\n");
  return 0;
}
