// Simulated heterogeneous cluster: compares All-Reduce against constant and
// dynamic partial reduce when 3 of 8 workers share one GPU (the paper's
// HL=3 synthetic setting), training to a fixed accuracy threshold.

#include <cstdio>

#include "train/experiment.h"
#include "train/report.h"

namespace {

pr::ExperimentConfig BaseConfig() {
  pr::ExperimentConfig config;
  config.training.num_workers = 8;
  config.training.dataset = "cifar10";
  config.training.dirichlet_alpha = 0.5;
  config.training.paper_model = "resnet34";
  config.training.hetero = pr::HeteroSpec::GpuSharing(3);
  config.training.accuracy_threshold = 0.85;
  config.training.max_updates = 40000;
  config.training.eval_every = 25;
  config.training.seed = 11;
  return config;
}

}  // namespace

int main() {
  std::printf(
      "Simulated 8-worker cluster, 3 workers sharing one GPU (HL=3),\n"
      "ResNet-34-shaped cost model, synthetic CIFAR10-like task.\n\n");

  pr::TablePrinter table({"strategy", "run time (s)", "#updates",
                          "per-update (s)", "accuracy", "idle frac"});

  for (pr::StrategyKind kind :
       {pr::StrategyKind::kAllReduce, pr::StrategyKind::kPReduceConst,
        pr::StrategyKind::kPReduceDynamic}) {
    pr::ExperimentConfig config = BaseConfig();
    config.strategy.kind = kind;
    config.strategy.group_size = 3;
    pr::SimRunResult result = pr::RunExperiment(config);
    table.AddRow({result.strategy,
                  pr::FormatDouble(result.sim_seconds, 1),
                  std::to_string(result.updates),
                  pr::FormatDouble(result.per_update_seconds, 3),
                  pr::FormatDouble(result.final_accuracy, 3),
                  pr::FormatDouble(result.mean_idle_fraction, 3)});
  }
  table.Print();
  std::printf(
      "\nP-Reduce trades more (cheaper) updates for the removal of the\n"
      "global barrier; run time drops although #updates grows.\n");
  return 0;
}
