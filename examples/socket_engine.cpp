// Socket engine: the same partial-reduce protocol across real processes.
//
// Launch() forks one OS process per worker plus a controller process; the
// processes talk over Unix-domain sockets with the framed wire protocol
// (comm/wire.h) and rendezvous through a shared scratch directory. The
// protocol, strategies, and metric names are identical to the in-proc
// engine — only the Transport underneath changed. The second run SIGKILLs
// a worker mid-flight to show the fault machinery works on real process
// death exactly as it does on injected crashes: its lease expires, the
// controller evicts it, and the survivors regroup and finish their budget.
//
// Usage: socket_engine [workdir]   (defaults to a fresh temp directory)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "launch/launcher.h"

namespace {

pr::RunConfig SmallConfig() {
  pr::RunConfig config;
  config.run.num_workers = 4;
  config.run.iterations_per_worker = 120;
  config.run.model.hidden = {16};
  config.run.batch_size = 16;
  config.run.dataset.num_classes = 4;
  config.run.dataset.dim = 16;
  config.run.dataset.num_train = 1024;
  config.run.dataset.num_test = 512;
  // A mild straggler, so partial reduce has something to route around.
  config.run.worker_delay_seconds = {0.001, 0.001, 0.001, 0.003};
  config.strategy.kind = pr::StrategyKind::kPReduceConst;
  config.strategy.group_size = 3;
  return config;
}

void PrintResult(const char* title, const pr::LaunchResult& result) {
  std::printf("%s\n", title);
  std::printf("  processes      : %d (exit codes:", result.num_processes);
  for (int code : result.exit_codes) std::printf(" %d", code);
  std::printf(")\n");
  std::printf("  group reduces  : %llu\n",
              static_cast<unsigned long long>(result.group_reduces));
  std::printf("  final loss     : %.4f  accuracy %.3f\n", result.final_loss,
              result.final_accuracy);
  std::printf("  iterations     :");
  for (size_t n : result.worker_iterations) {
    std::printf(" %zu", n);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string workdir;
  if (argc > 1) {
    workdir = argv[1];
  } else {
    char tmpl[] = "/tmp/pr_socket.XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      std::perror("mkdtemp");
      return 1;
    }
    workdir = tmpl;
  }

  pr::LaunchOptions options;
  options.config = SmallConfig();
  options.workdir = workdir + "/clean";
  pr::LaunchResult result;
  pr::Status status = pr::Launch(options, &result);
  if (!status.ok()) {
    std::fprintf(stderr, "launch failed: %s\n", status.ToString().c_str());
    return 1;
  }
  PrintResult("CON across 5 processes (4 workers + controller):", result);

  // Now kill worker 2 shortly after the run starts. Its process records
  // exit code 137 (128 + SIGKILL); the other three finish every iteration.
  pr::LaunchOptions chaos = options;
  chaos.workdir = workdir + "/kill";
  chaos.kill.worker = 2;
  chaos.kill.after_seconds = 0.08;
  pr::LaunchResult survived;
  status = pr::Launch(chaos, &survived);
  if (!status.ok()) {
    std::fprintf(stderr, "kill launch failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  PrintResult("\nSame run, worker 2 SIGKILLed mid-flight:", survived);
  std::printf("  evictions      : %.0f\n",
              survived.metrics.counter("fault.evictions"));
  std::printf("\nScratch files (config, sockets, logs, reports): %s\n",
              workdir.c_str());
  return 0;
}
