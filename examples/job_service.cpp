// Job service: many small training jobs from two tenants sharing one
// fixed worker pool.
//
// A 4-slot pool serves ten jobs — eight 2-worker partial-reduce runs plus
// two simulator runs — submitted by a heavy tenant (fair-share weight 2)
// and a light tenant (weight 1). The scheduler leases pool slots with
// weighted fair share across tenants and priority FIFO within each, every
// job's metrics land in its own `job.<id>.*` namespace, and the pool's
// workers are reused across jobs with their diagnostics reset in between.
// The JSON flavor of the same surface (declarative specs, ServiceHandle)
// is what `prserve --jobs` drives; see README "Running a job service".

#include <cstdio>

#include "service/service.h"
#include "train/report.h"

namespace {

pr::JobSpec MakeJob(const std::string& tenant, int index, bool sim) {
  pr::JobSpec spec;
  spec.name = tenant + "-" + std::to_string(index);
  spec.tenant = tenant;
  spec.priority = index % 2;
  spec.engine = sim ? pr::EngineKind::kSim : pr::EngineKind::kThreaded;
  spec.min_workers = sim ? 1 : 2;
  spec.max_workers = sim ? 1 : 3;
  spec.data_shard = index;  // shifts the dataset seed per job

  pr::RunConfig& config = spec.config;
  config.strategy.kind = sim ? pr::StrategyKind::kPsAsp
                             : pr::StrategyKind::kPReduceConst;
  config.strategy.group_size = 2;
  config.run.num_workers = sim ? 4 : 2;  // sim workers are virtual
  config.run.iterations_per_worker = 12;
  config.run.batch_size = 16;
  config.run.model.hidden = {16};
  config.run.dataset.num_train = 256;
  config.run.dataset.num_test = 64;
  config.run.dataset.dim = 16;
  config.run.dataset.num_classes = 4;
  return spec;
}

}  // namespace

int main() {
  pr::ServiceOptions options;
  options.pool_size = 4;
  options.tenant_weights["team-heavy"] = 2.0;
  pr::TrainingService service(options);

  int submitted = 0;
  for (int i = 0; i < 5; ++i) {
    for (const char* tenant : {"team-heavy", "team-light"}) {
      const bool sim = i == 4;  // last pair runs on the simulator
      int64_t id = 0;
      pr::Status status = service.Submit(MakeJob(tenant, i, sim), &id);
      if (!status.ok()) {
        std::printf("submit failed: %s\n", std::string(status.message()).c_str());
        return 1;
      }
      ++submitted;
    }
  }
  std::printf("submitted %d jobs to a %d-slot pool, draining...\n\n",
              submitted, options.pool_size);
  service.Drain();

  pr::TablePrinter table({"job", "tenant", "engine", "strategy", "state",
                          "workers", "queue (s)", "accuracy"});
  int completed = 0;
  for (const pr::JobStatus& job : service.List()) {
    if (job.state == pr::JobState::kCompleted) ++completed;
    table.AddRow({job.name, job.tenant, pr::EngineKindName(job.engine),
                  job.strategy, pr::JobStateName(job.state),
                  std::to_string(job.leased_workers),
                  pr::FormatDouble(job.queue_delay_seconds, 4),
                  pr::FormatDouble(job.final_accuracy, 3)});
  }
  table.Print();

  const pr::MetricsSnapshot snapshot = service.Snapshot();
  std::printf(
      "\n%d/%d jobs completed; pool utilization %.2f\n"
      "fair share (leased workers): team-heavy %.0f at weight 2, "
      "team-light %.0f at weight 1\n",
      completed, submitted, snapshot.gauge("service.pool.utilization"),
      service.TenantUsage("team-heavy"), service.TenantUsage("team-light"));
  // Per-job isolation: each job's run metrics live under job.<id>.*.
  std::printf("job 1 ran %.0f worker iterations under its own namespace\n",
              snapshot.counter("job.1.worker.0.iterations") +
                  snapshot.counter("job.1.worker.1.iterations"));
  return completed == submitted ? 0 : 1;
}
