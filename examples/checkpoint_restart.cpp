// Checkpoint/restart: survive a kill -9 mid-training.
//
// First invocation trains a partial-reduce run with coordinated checkpoints
// every few iterations. If the process dies mid-training (crash, OOM kill,
// preemption), rerunning the same command finds the latest intact manifest
// in the checkpoint directory and resumes from it: replica parameters,
// optimizer momentum, per-worker iteration counters, and the controller's
// group-history window all come back from disk, and the run finishes the
// remaining budget.
//
//   ./checkpoint_restart /tmp/pr_ckpt     # start (or resume) a run
//   kill -9 <pid>                         # at any point
//   ./checkpoint_restart /tmp/pr_ckpt     # picks up at the last manifest
//
// The CI crash-restart smoke job drives exactly this sequence.

#include <unistd.h>

#include <cstdio>
#include <string>

#include "ckpt/manifest.h"
#include "train/run.h"

namespace {

pr::RunConfig MakeConfig(const std::string& ckpt_dir) {
  pr::RunConfig config;
  config.run.num_workers = 4;
  config.run.iterations_per_worker = 60;
  config.run.model.hidden = {32};
  config.run.batch_size = 32;

  config.run.dataset.num_classes = 10;
  config.run.dataset.dim = 32;
  config.run.dataset.num_train = 4096;
  config.run.dataset.num_test = 1024;
  config.run.dataset.separation = 3.2;

  // Slow the workers down enough that a run takes a few seconds — long
  // enough to kill it somewhere interesting.
  config.run.worker_delay_seconds.assign(4, 0.03);

  config.strategy.kind = pr::StrategyKind::kPReduceConst;
  config.strategy.group_size = 2;

  config.run.ckpt.dir = ckpt_dir;
  config.run.ckpt.every_iterations = 5;
  return config;
}

void PrintResult(const char* label, const pr::ThreadedRunResult& result,
                 size_t budget) {
  std::printf("%s: final loss %.4f, accuracy %.3f\n", label,
              result.final_loss, result.final_accuracy);
  for (size_t w = 0; w < result.worker_iterations.size(); ++w) {
    std::printf("  worker %zu: %zu/%zu iterations\n", w,
                result.worker_iterations[w], budget);
  }
  std::printf("  manifests written this run: %.0f, restores: %.0f\n",
              result.metrics.counter("ckpt.manifests_written"),
              result.metrics.counter("ckpt.restore_count"));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string ckpt_dir = argc > 1 ? argv[1] : "/tmp/pr_ckpt_example";
  const pr::RunConfig config = MakeConfig(ckpt_dir);
  const size_t budget = config.run.iterations_per_worker;

  pr::RunManifest manifest;
  std::string manifest_path;
  pr::ThreadedRunResult result;
  if (pr::FindLatestManifest(ckpt_dir, &manifest, &manifest_path).ok()) {
    std::printf("Resuming from %s (epoch %llu, %llu updates done)...\n",
                manifest_path.c_str(),
                static_cast<unsigned long long>(manifest.epoch),
                static_cast<unsigned long long>(manifest.updates_done));
    result =
        pr::ResumeRun(config, pr::EngineKind::kThreaded, manifest_path)
            .threaded;
    PrintResult("resumed run", result, budget);
  } else {
    std::printf("No manifest under %s — starting fresh (pid %d).\n",
                ckpt_dir.c_str(), static_cast<int>(::getpid()));
    result = pr::StartRun(config, pr::EngineKind::kThreaded).threaded;
    PrintResult("fresh run", result, budget);
  }

  // A completed run (fresh or resumed) must have spent the full budget on
  // every worker; the CI smoke test checks this exit code after the kill.
  for (size_t iters : result.worker_iterations) {
    if (iters != budget) {
      std::printf("FAILED: a worker stopped short of its budget\n");
      return 1;
    }
  }
  std::printf("run complete\n");
  return 0;
}
