// Every synchronization scheme from the paper on real threads: trains the
// same synthetic workload, with one injected straggler, under the PS family
// (BSP/ASP/HETE/BK), all-reduce, eager-reduce, AD-PSGD, and both partial
// reduce variants — all through the one StartRun entry point — and
// compares wall time, update counts, accuracy, and when the fastest worker
// finished.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "train/report.h"
#include "train/run.h"

namespace {

pr::SyntheticSpec DemoDataset() {
  pr::SyntheticSpec spec;
  spec.num_classes = 10;
  spec.dim = 32;
  spec.num_train = 4096;
  spec.num_test = 1024;
  spec.separation = 3.0;
  return spec;
}

}  // namespace

int main() {
  pr::RunConfig config;
  config.run.num_workers = 4;
  config.run.iterations_per_worker = 60;
  config.run.dataset = DemoDataset();
  // Worker 3 sleeps 6 ms per iteration, the others 1 ms.
  config.run.worker_delay_seconds = {0.001, 0.001, 0.001, 0.006};

  std::printf("Threaded runtimes, N=%d, %zu iterations/worker, one "
              "straggler.\n\n",
              config.run.num_workers, config.run.iterations_per_worker);
  pr::TablePrinter table(
      {"strategy", "wall (s)", "updates", "accuracy", "fastest done (s)"});

  const pr::StrategyKind kinds[] = {
      pr::StrategyKind::kPsBsp,        pr::StrategyKind::kPsAsp,
      pr::StrategyKind::kPsHete,       pr::StrategyKind::kPsBackup,
      pr::StrategyKind::kAllReduce,    pr::StrategyKind::kEagerReduce,
      pr::StrategyKind::kAdPsgd,       pr::StrategyKind::kPReduceConst,
      pr::StrategyKind::kPReduceDynamic};

  std::vector<uint64_t> asp_staleness;
  for (pr::StrategyKind kind : kinds) {
    config.strategy.kind = kind;
    config.strategy.group_size = 2;
    config.strategy.backup_workers = 1;
    const pr::ThreadedRunResult result =
        pr::StartRun(config, pr::EngineKind::kThreaded).threaded;
    const double fastest =
        *std::min_element(result.worker_finish_seconds.begin(),
                          result.worker_finish_seconds.end());
    table.AddRow({result.strategy,
                  pr::FormatDouble(result.wall_seconds, 3),
                  std::to_string(result.group_reduces),
                  pr::FormatDouble(result.final_accuracy, 3),
                  pr::FormatDouble(fastest, 3)});
    if (kind == pr::StrategyKind::kPsAsp) {
      // Per-staleness push counts from the ps.push_staleness histogram
      // (bucket i holds pushes at staleness <= upper_bounds[i]).
      const pr::HistogramSnapshot* hist =
          result.metrics.histogram("ps.push_staleness");
      if (hist != nullptr) asp_staleness = hist->counts;
    }
  }

  table.Print();
  std::printf("\nASP staleness histogram (pushes at staleness s): ");
  for (size_t s = 0; s < asp_staleness.size() && s < 8; ++s) {
    std::printf("s=%zu:%llu ", s,
                static_cast<unsigned long long>(asp_staleness[s]));
  }
  std::printf(
      "\n\nBSP pays the straggler every round; ASP avoids the wait but its\n"
      "pushes arrive stale (histogram above); P-Reduce keeps fast workers\n"
      "moving with neither a central model nor stale gradients.\n");
  return 0;
}
