// Centralized vs decentralized on real threads: trains the same synthetic
// workload with (a) a threaded parameter server in BSP and ASP modes and
// (b) threaded partial reduce, with one injected straggler, and compares
// wall time, accuracy, and the PS staleness profile.

#include <cstdio>

#include "runtime/threaded_ps.h"
#include "runtime/threaded_runtime.h"
#include "train/report.h"

namespace {

pr::SyntheticSpec DemoDataset() {
  pr::SyntheticSpec spec;
  spec.num_classes = 10;
  spec.dim = 32;
  spec.num_train = 4096;
  spec.num_test = 1024;
  spec.separation = 3.0;
  return spec;
}

}  // namespace

int main() {
  const int kWorkers = 4;
  const size_t kIterations = 60;
  // Worker 3 sleeps 6 ms per iteration, the others 1 ms.
  const std::vector<double> kDelays = {0.001, 0.001, 0.001, 0.006};

  std::printf("Threaded runtimes, N=%d, %zu iterations/worker, one "
              "straggler.\n\n", kWorkers, kIterations);
  pr::TablePrinter table({"runtime", "wall (s)", "updates", "accuracy"});

  for (auto mode : {pr::PsMode::kBsp, pr::PsMode::kAsp}) {
    pr::ThreadedPsOptions options;
    options.num_workers = kWorkers;
    options.iterations_per_worker = kIterations;
    options.mode = mode;
    options.dataset = DemoDataset();
    options.worker_delay_seconds = kDelays;
    pr::ThreadedPsResult result = pr::RunThreadedPs(options);
    table.AddRow({mode == pr::PsMode::kBsp ? "PS (BSP)" : "PS (ASP)",
                  pr::FormatDouble(result.wall_seconds, 3),
                  std::to_string(result.versions),
                  pr::FormatDouble(result.final_accuracy, 3)});
    if (mode == pr::PsMode::kAsp) {
      std::printf("ASP staleness histogram (pushes at staleness s): ");
      for (size_t s = 0; s < result.staleness_histogram.size() && s < 8;
           ++s) {
        std::printf("s=%zu:%llu ", s,
                    static_cast<unsigned long long>(
                        result.staleness_histogram[s]));
      }
      std::printf("\n");
    }
  }

  pr::ThreadedRunOptions options;
  options.num_workers = kWorkers;
  options.iterations_per_worker = kIterations;
  options.group_size = 2;
  options.dataset = DemoDataset();
  options.worker_delay_seconds = kDelays;
  pr::ThreadedRunResult result = pr::RunThreadedPReduce(options);
  table.AddRow({"P-Reduce (P=2)",
                pr::FormatDouble(result.wall_seconds, 3),
                std::to_string(result.group_reduces),
                pr::FormatDouble(result.final_accuracy, 3)});

  std::printf("\n");
  table.Print();
  std::printf(
      "\nBSP pays the straggler every round; ASP avoids the wait but its\n"
      "pushes arrive stale (histogram above); P-Reduce keeps fast workers\n"
      "moving with neither a central model nor stale gradients.\n");
  return 0;
}
