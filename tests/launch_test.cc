#include "launch/launcher.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/manifest.h"
#include "launch/config_io.h"
#include "launch/report_io.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "runtime/threaded_runtime.h"
#include "topo/topology.h"

namespace pr {
namespace {

struct TempDir {
  explicit TempDir(const char* tag) {
    std::string tmpl = std::string("/tmp/prlaunch_") + tag + "XXXXXX";
    path = ::mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

// A config with every field off its default, so a round-trip that silently
// drops a key cannot pass.
RunConfig FancyConfig() {
  RunConfig config;
  config.strategy.kind = StrategyKind::kPReduceDynamic;
  config.strategy.group_size = 4;
  config.strategy.backup_workers = 2;
  config.strategy.er_quorum = 5;
  config.strategy.frozen_avoidance = false;
  config.strategy.history_window = 3;
  config.strategy.record_sync_matrices = true;
  config.strategy.average_momentum = true;
  config.strategy.compression = CompressionKind::kInt8;
  config.strategy.dynamic.alpha = 0.625;
  config.strategy.dynamic.staleness_tolerance = 2;
  config.strategy.dynamic.missing_slot_policy = MissingSlotPolicy::kRenormalize;
  config.strategy.hierarchy.enabled = true;
  config.strategy.hierarchy.cross_period = 6;
  config.strategy.group_cost_budget = 12.5;
  config.run.num_workers = 7;
  config.run.iterations_per_worker = 123;
  config.run.batch_size = 48;
  config.run.seed = 99;
  config.run.record_timeline = true;
  config.run.trace_capacity = 256;
  config.run.sgd.learning_rate = 0.037;
  config.run.sgd.momentum = 0.81;
  config.run.sgd.weight_decay = 3.3e-5;
  config.run.model.kind = ProxyModelSpec::Kind::kConvNet;
  config.run.model.hidden = {24, 12};
  config.run.model.conv_filters = 6;
  config.run.dataset.num_train = 4096;
  config.run.dataset.num_test = 512;
  config.run.dataset.dim = 36;
  config.run.dataset.num_classes = 5;
  config.run.dataset.modes_per_class = 2;
  config.run.dataset.separation = 1.75;
  config.run.dataset.noise = 0.9;
  config.run.dataset.label_noise = 0.05;
  config.run.dataset.seed = 1234;
  config.run.worker_delay_seconds = {0.001, 0.002, 0.0, 0.004, 0.0, 0.0, 0.1};
  config.run.churn.push_back({/*worker=*/2, /*after_iterations=*/10, 0.05});
  config.run.ckpt.dir = "/tmp/some ckpt dir";
  config.run.ckpt.every_iterations = 16;
  // Ragged placement: 7 workers over 3 nodes, plus off-default link costs.
  EXPECT_TRUE(
      Topology::FromNodes({{0, 1, 2}, {3, 4}, {5, 6}}, &config.run.topology)
          .ok());
  config.run.topology.set_inter_cost(5.5);
  config.run.topology.set_inter_latency_factor(2.25);
  FaultPlan& fault = config.run.fault;
  fault.seed = 17;
  fault.force_fault_tolerant = true;
  fault.default_edge = {0.01, 0.02, 0.03, 0.004};
  fault.edges[{1, 2}] = {0.5, 0.0, 0.25, 0.125};
  fault.link_delay_seconds[{0, 3}] = 0.015;
  fault.link_delay_seconds[{3, 0}] = 0.02;
  WorkerFaultEvent crash;
  crash.worker = 3;
  crash.kind = WorkerFaultEvent::Kind::kCrash;
  crash.after_iterations = 5;
  crash.in_group = true;
  fault.worker_events.push_back(crash);
  WorkerFaultEvent slow;
  slow.worker = 1;
  slow.kind = WorkerFaultEvent::Kind::kSlowdown;
  slow.after_iterations = 2;
  slow.slowdown_factor = 3.5;
  slow.slowdown_iterations = 4;
  fault.worker_events.push_back(slow);
  fault.controller_events.push_back({/*after_groups=*/3, 0.4, false});
  fault.lease_seconds = 0.375;
  fault.missed_threshold = 3;
  fault.recv_timeout_seconds = 0.0625;
  fault.max_controller_outage_seconds = 7.5;
  return config;
}

TEST(ConfigIoTest, RoundTripIsExact) {
  const RunConfig config = FancyConfig();
  const std::string text = SerializeRunConfig(config);
  RunConfig parsed;
  ASSERT_TRUE(ParseRunConfig(text, &parsed).ok());
  // Re-serialization equality covers every field at full precision: a field
  // that failed to round-trip would print differently the second time.
  EXPECT_EQ(SerializeRunConfig(parsed), text);
  // Spot checks on the trickier conversions.
  EXPECT_EQ(parsed.strategy.kind, StrategyKind::kPReduceDynamic);
  EXPECT_EQ(parsed.strategy.dynamic.missing_slot_policy,
            MissingSlotPolicy::kRenormalize);
  EXPECT_EQ(parsed.strategy.compression, CompressionKind::kInt8);
  EXPECT_EQ(parsed.run.model.hidden, (std::vector<size_t>{24, 12}));
  EXPECT_EQ(parsed.run.ckpt.dir, "/tmp/some ckpt dir");
  EXPECT_DOUBLE_EQ(parsed.run.sgd.weight_decay, 3.3e-5);
  ASSERT_EQ(parsed.run.fault.worker_events.size(), 2u);
  EXPECT_EQ(parsed.run.fault.worker_events[1].kind,
            WorkerFaultEvent::Kind::kSlowdown);
  EXPECT_TRUE(parsed.run.fault.force_fault_tolerant);
  ASSERT_EQ(parsed.run.fault.controller_events.size(), 1u);
  EXPECT_FALSE(parsed.run.fault.controller_events[0].restart);
  const auto edge = parsed.run.fault.edges.find({1, 2});
  ASSERT_NE(edge, parsed.run.fault.edges.end());
  EXPECT_DOUBLE_EQ(edge->second.delay_seconds, 0.125);
  EXPECT_TRUE(parsed.strategy.hierarchy.enabled);
  EXPECT_EQ(parsed.strategy.hierarchy.cross_period, 6);
  EXPECT_DOUBLE_EQ(parsed.strategy.group_cost_budget, 12.5);
  ASSERT_EQ(parsed.run.topology.num_nodes(), 3u);
  EXPECT_EQ(parsed.run.topology.NodeOf(4), 1);
  EXPECT_DOUBLE_EQ(parsed.run.topology.inter_cost(), 5.5);
  EXPECT_DOUBLE_EQ(parsed.run.topology.inter_latency_factor(), 2.25);
  const auto delay = parsed.run.fault.link_delay_seconds.find({3, 0});
  ASSERT_NE(delay, parsed.run.fault.link_delay_seconds.end());
  EXPECT_DOUBLE_EQ(delay->second, 0.02);
}

TEST(ConfigIoTest, RejectsMalformedTopologyAndFaultLines) {
  RunConfig parsed;
  // A worker mapped to two nodes, an empty node, non-contiguous ids.
  EXPECT_FALSE(ParseRunConfig(
                   "prconfig 1\ntopology.node 0 1\ntopology.node 1 2\n", &parsed)
                   .ok());
  EXPECT_FALSE(
      ParseRunConfig("prconfig 1\ntopology.node 0 1\ntopology.node\n", &parsed)
          .ok());
  EXPECT_FALSE(
      ParseRunConfig("prconfig 1\ntopology.node 0 2\n", &parsed).ok());
  // Link-cost knobs must be positive, placements integral.
  EXPECT_FALSE(
      ParseRunConfig("prconfig 1\ntopology.inter_cost 0\n", &parsed).ok());
  EXPECT_FALSE(
      ParseRunConfig("prconfig 1\ntopology.inter_latency_factor -1\n", &parsed)
          .ok());
  EXPECT_FALSE(
      ParseRunConfig("prconfig 1\ntopology.node 0 banana\n", &parsed).ok());
  // fault.link_delay needs from, to and a non-negative delay.
  EXPECT_FALSE(
      ParseRunConfig("prconfig 1\nfault.link_delay 0 1\n", &parsed).ok());
  EXPECT_FALSE(
      ParseRunConfig("prconfig 1\nfault.link_delay 0 1 -0.5\n", &parsed).ok());
  EXPECT_TRUE(
      ParseRunConfig("prconfig 1\nfault.link_delay 0 1 0.25\n", &parsed).ok());
  EXPECT_DOUBLE_EQ(parsed.run.fault.LinkDelay(0, 1), 0.25);
}

TEST(ConfigIoTest, RejectsMalformedScenarioAndPolicyLines) {
  RunConfig parsed;
  // Unknown event kind, negative time, negative duration, missing fields —
  // malformed traces are version skew or corruption, never skipped.
  EXPECT_FALSE(ParseRunConfig(
                   "prconfig 1\nscenario.event explode 1 0 -1 0 1\n", &parsed)
                   .ok());
  EXPECT_FALSE(ParseRunConfig(
                   "prconfig 1\nscenario.event depart -1 0 -1 0 1\n", &parsed)
                   .ok());
  EXPECT_FALSE(ParseRunConfig(
                   "prconfig 1\nscenario.event depart 1 0 -1 -2 1\n", &parsed)
                   .ok());
  EXPECT_FALSE(
      ParseRunConfig("prconfig 1\nscenario.event depart 1 0\n", &parsed).ok());
  EXPECT_FALSE(ParseRunConfig(
                   "prconfig 1\nscenario.expected_iteration_seconds 0\n",
                   &parsed)
                   .ok());
  EXPECT_FALSE(ParseRunConfig(
                   "prconfig 1\nstrategy.scale_policy.kind banana\n", &parsed)
                   .ok());
  // A well-formed event line parses into the scenario.
  ASSERT_TRUE(ParseRunConfig(
                  "prconfig 1\nscenario.event depart 0.5 2 -1 0.25 1\n",
                  &parsed)
                  .ok());
  ASSERT_EQ(parsed.run.scenario.events.size(), 1u);
  EXPECT_EQ(parsed.run.scenario.events[0].kind, ScenarioEventKind::kDepart);
  EXPECT_DOUBLE_EQ(parsed.run.scenario.events[0].time, 0.5);
  // The JSON dialect hits the same validation.
  EXPECT_FALSE(
      RunConfigFromJson("{\"prconfig\": 1, \"scenario.event\": "
                        "[[\"explode\", 1, 0, -1, 0, 1]]}",
                        &parsed)
          .ok());
  EXPECT_FALSE(
      RunConfigFromJson(
          "{\"prconfig\": 1, \"strategy.scale_policy.kind\": \"banana\"}",
          &parsed)
          .ok());
  EXPECT_TRUE(
      RunConfigFromJson("{\"prconfig\": 1, \"scenario.event\": "
                        "[[\"crash\", 1.5, 3, -1, 0, 1]]}",
                        &parsed)
          .ok());
  ASSERT_EQ(parsed.run.scenario.events.size(), 1u);
  EXPECT_EQ(parsed.run.scenario.events[0].kind, ScenarioEventKind::kCrash);
}

TEST(ConfigIoTest, DefaultConfigRoundTrips) {
  const RunConfig config;
  const std::string text = SerializeRunConfig(config);
  RunConfig parsed;
  ASSERT_TRUE(ParseRunConfig(text, &parsed).ok());
  EXPECT_EQ(SerializeRunConfig(parsed), text);
}

TEST(ConfigIoTest, RejectsGarbage) {
  RunConfig parsed;
  EXPECT_FALSE(ParseRunConfig("", &parsed).ok());
  EXPECT_FALSE(ParseRunConfig("not a config\n", &parsed).ok());
  EXPECT_FALSE(ParseRunConfig("prconfig 2\n", &parsed).ok());
  // Unknown keys are version skew, not noise to skip.
  EXPECT_FALSE(
      ParseRunConfig("prconfig 1\nstrategy.does_not_exist 3\n", &parsed).ok());
  EXPECT_FALSE(
      ParseRunConfig("prconfig 1\nrun.num_workers banana\n", &parsed).ok());
  EXPECT_FALSE(ParseRunConfig("prconfig 1\nstrategy.kind\n", &parsed).ok());
  // An unknown compression token names no codec — version skew, rejected.
  EXPECT_FALSE(
      ParseRunConfig("prconfig 1\nstrategy.compression gzip\n", &parsed).ok());
  // A valid header plus valid lines still parses.
  EXPECT_TRUE(
      ParseRunConfig("prconfig 1\n# comment\nrun.num_workers 5\n", &parsed)
          .ok());
  EXPECT_EQ(parsed.run.num_workers, 5);
}

TEST(ConfigIoTest, SaveLoadFile) {
  TempDir dir("cfg");
  const std::string path = dir.path + "/run.conf";
  const RunConfig config = FancyConfig();
  ASSERT_TRUE(SaveRunConfig(path, config).ok());
  RunConfig loaded;
  ASSERT_TRUE(LoadRunConfig(path, &loaded).ok());
  EXPECT_EQ(SerializeRunConfig(loaded), SerializeRunConfig(config));
  EXPECT_FALSE(LoadRunConfig(dir.path + "/missing.conf", &loaded).ok());
}

TEST(ConfigJsonTest, FancyConfigRoundTripsThroughJson) {
  const RunConfig config = FancyConfig();
  const std::string json = RunConfigToJson(config);
  RunConfig parsed;
  ASSERT_TRUE(RunConfigFromJson(json, &parsed).ok());
  // Text-serialization equality covers every field at full precision.
  EXPECT_EQ(SerializeRunConfig(parsed), SerializeRunConfig(config));
  // The JSON dialect is a real JSON document with the dialect marker.
  JsonValue doc;
  ASSERT_TRUE(ParseJson(json, &doc).ok());
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.Find("prconfig"), nullptr);
  EXPECT_DOUBLE_EQ(doc.Find("prconfig")->number_value(), 1.0);
  EXPECT_NE(doc.Find("strategy.kind"), nullptr);
}

// Fuzz-style: many randomized configs, each pushed text -> struct -> JSON ->
// struct, asserting the final struct serializes identically to the original.
TEST(ConfigJsonTest, RandomConfigsRoundTripThroughJson) {
  std::mt19937_64 rng(20260807);
  auto coin = [&] { return rng() % 2 == 0; };
  for (int trial = 0; trial < 60; ++trial) {
    RunConfig config;
    config.strategy.kind =
        static_cast<StrategyKind>(rng() % 9);  // all nine kinds
    config.strategy.group_size = 2 + static_cast<int>(rng() % 6);
    config.strategy.er_quorum = static_cast<int>(rng() % 5);
    config.strategy.backup_workers = static_cast<int>(rng() % 4);
    config.strategy.frozen_avoidance = coin();
    config.strategy.history_window = rng() % 8;
    config.strategy.average_momentum = coin();
    config.strategy.dynamic.alpha =
        static_cast<double>(rng() % 1000) / 1000.0;
    config.strategy.dynamic.staleness_tolerance =
        static_cast<int64_t>(rng() % 5);
    config.strategy.compression = static_cast<CompressionKind>(
        rng() % kNumCompressionKinds);  // all four codec tokens
    if (coin()) {
      config.strategy.hierarchy.enabled = true;
      config.strategy.hierarchy.cross_period = 1 + static_cast<int>(rng() % 8);
    }
    if (coin()) {
      config.strategy.group_cost_budget =
          static_cast<double>(1 + rng() % 64) / 2.0;
    }
    config.run.num_workers = 2 + static_cast<int>(rng() % 14);
    config.run.iterations_per_worker = 1 + rng() % 500;
    config.run.batch_size = 1 + rng() % 128;
    // Keep integer-valued fields inside double precision (< 2^53): JSON
    // numbers are doubles.
    config.run.seed = rng() % (uint64_t{1} << 50);
    config.run.dataset.seed = rng() % (uint64_t{1} << 50);
    config.run.sgd.learning_rate =
        std::ldexp(static_cast<double>(rng() % 4096 + 1), -14);
    config.run.sgd.momentum = static_cast<double>(rng() % 100) / 101.0;
    config.run.sgd.weight_decay =
        std::ldexp(static_cast<double>(rng() % 512), -22);
    // The text dialect treats an absent hidden list as "keep the default",
    // so an empty list does not round-trip; always emit at least one layer
    // (matching how real configs use it).
    const size_t layers = 1 + rng() % 3;
    config.run.model.hidden.clear();
    for (size_t i = 0; i < layers; ++i) {
      config.run.model.hidden.push_back(1 + rng() % 64);
    }
    if (coin()) {
      config.run.worker_delay_seconds.assign(
          static_cast<size_t>(config.run.num_workers), 0.0);
      for (double& d : config.run.worker_delay_seconds) {
        d = static_cast<double>(rng() % 100) / 10000.0;
      }
    }
    if (coin()) {
      config.run.ckpt.dir = "/tmp/ckpt dir " + std::to_string(rng() % 100);
      config.run.ckpt.every_iterations = 1 + rng() % 32;
    }
    if (coin()) {
      // Random contiguous placement of num_workers over 2-4 nodes.
      const int nodes = 2 + static_cast<int>(rng() % 3);
      std::vector<std::vector<int>> placement(
          static_cast<size_t>(std::min(nodes, config.run.num_workers)));
      for (int w = 0; w < config.run.num_workers; ++w) {
        placement[static_cast<size_t>(w) % placement.size()].push_back(w);
      }
      ASSERT_TRUE(Topology::FromNodes(placement, &config.run.topology).ok());
      config.run.topology.set_inter_cost(
          static_cast<double>(1 + rng() % 16));
      config.run.topology.set_inter_latency_factor(
          static_cast<double>(1 + rng() % 8));
    }
    if (coin()) {
      config.run.fault.link_delay_seconds[{
          static_cast<int>(rng() % 4), static_cast<int>(rng() % 4)}] =
          static_cast<double>(rng() % 50) / 1000.0;
    }
    if (coin()) {
      FaultPlan& fault = config.run.fault;
      fault.seed = rng() % (uint64_t{1} << 50);
      fault.default_edge.drop_prob =
          static_cast<double>(rng() % 100) / 1000.0;
      WorkerFaultEvent event;
      event.worker = static_cast<int>(rng() % config.run.num_workers);
      event.kind = static_cast<WorkerFaultEvent::Kind>(rng() % 3);
      event.after_iterations = static_cast<int>(rng() % 20);
      event.hang_seconds = static_cast<double>(rng() % 50) / 100.0;
      fault.worker_events.push_back(event);
    }
    if (coin()) {
      config.run.dataset.dirichlet_alpha =
          static_cast<double>(1 + rng() % 40) / 10.0;
    }
    if (coin()) {
      ScalePolicyConfig& sp = config.strategy.scale_policy;
      sp.kind = static_cast<ScalePolicyKind>(rng() % 3);  // all three kinds
      sp.interval_seconds = static_cast<double>(1 + rng() % 100) / 200.0;
      sp.idle_high = static_cast<double>(50 + rng() % 50) / 100.0;
      sp.idle_low = static_cast<double>(rng() % 50) / 100.0;
      sp.min_workers = 1 + static_cast<int>(rng() % 4);
      sp.max_workers = static_cast<int>(rng() % 8);
      sp.trend_window = 2 + static_cast<int>(rng() % 6);
      sp.min_group_size = static_cast<int>(rng() % 4);
      sp.liveness_floor = static_cast<int>(rng() % 4);
      sp.partition_ckpt_seconds = static_cast<double>(rng() % 100) / 100.0;
    }
    if (coin()) {
      ScenarioSpec& sc = config.run.scenario;
      sc.name = "trace " + std::to_string(rng() % 100);  // space survives
      sc.seed = rng() % (uint64_t{1} << 50);
      sc.expected_iteration_seconds =
          static_cast<double>(1 + rng() % 100) / 1000.0;
      const size_t events = 1 + rng() % 4;
      for (size_t i = 0; i < events; ++i) {
        ScenarioEvent e;
        e.kind = static_cast<ScenarioEventKind>(rng() % 6);  // all six kinds
        e.time = static_cast<double>(rng() % 1000) / 100.0;
        e.worker = static_cast<int>(rng() % config.run.num_workers);
        e.node = coin() ? -1 : static_cast<int>(rng() % 3);
        e.duration = static_cast<double>(rng() % 500) / 100.0;
        e.factor = 1.0 + static_cast<double>(rng() % 80) / 10.0;
        sc.events.push_back(e);
      }
    }
    const std::string text = SerializeRunConfig(config);
    RunConfig from_text;
    ASSERT_TRUE(ParseRunConfig(text, &from_text).ok()) << text;
    const std::string json = RunConfigToJson(from_text);
    RunConfig from_json;
    Status status = RunConfigFromJson(json, &from_json);
    ASSERT_TRUE(status.ok()) << status.message() << "\n" << json;
    EXPECT_EQ(SerializeRunConfig(from_json), text)
        << "trial " << trial << "\n"
        << json;
  }
}

TEST(ConfigJsonTest, RejectsBadJsonDocuments) {
  RunConfig parsed;
  EXPECT_FALSE(RunConfigFromJson("", &parsed).ok());
  EXPECT_FALSE(RunConfigFromJson("[1, 2]", &parsed).ok());
  EXPECT_FALSE(RunConfigFromJson("{}", &parsed).ok());  // no prconfig marker
  EXPECT_FALSE(RunConfigFromJson("{\"prconfig\": 2}", &parsed).ok());
  EXPECT_FALSE(
      RunConfigFromJson("{\"prconfig\": 1, \"strategy.bogus\": 3}", &parsed)
          .ok());
  EXPECT_FALSE(
      RunConfigFromJson(
          "{\"prconfig\": 1, \"run.num_workers\": \"banana\"}", &parsed)
          .ok());
  // Valid marker alone yields the defaults.
  ASSERT_TRUE(RunConfigFromJson("{\"prconfig\": 1}", &parsed).ok());
  EXPECT_EQ(SerializeRunConfig(parsed), SerializeRunConfig(RunConfig{}));
}

TEST(ConfigJsonTest, RejectsMalformedPlacements) {
  RunConfig parsed;
  // Worker 1 on two nodes: the JSON path must hit the same placement
  // validation as the text dialect.
  EXPECT_FALSE(
      RunConfigFromJson(
          "{\"prconfig\": 1, \"topology.node\": [[0, 1], [1, 2]]}", &parsed)
          .ok());
  EXPECT_FALSE(
      RunConfigFromJson("{\"prconfig\": 1, \"topology.node\": [[0, 1], []]}",
                        &parsed)
          .ok());
  EXPECT_FALSE(
      RunConfigFromJson("{\"prconfig\": 1, \"topology.inter_cost\": -2}",
                        &parsed)
          .ok());
  // A well-formed placement parses and lands in run.topology.
  ASSERT_TRUE(
      RunConfigFromJson(
          "{\"prconfig\": 1, \"topology.node\": [[0, 1], [2, 3]]}", &parsed)
          .ok());
  ASSERT_EQ(parsed.run.topology.num_nodes(), 2u);
  EXPECT_EQ(parsed.run.topology.NodeOf(3), 1);
}

ProcessReport FancyReport() {
  ProcessReport report;
  report.node = 2;
  report.role = "worker";
  report.strategy = "CON";
  report.wall_seconds = 1.5;
  report.group_reduces = 0;
  report.worker_iterations = {0, 0, 40, 0};
  report.worker_finish_seconds = {0.0, 0.0, 1.25, 0.0};
  report.replica = {1.0f, -2.5f, 3.25e-8f, 0.0f};
  report.metrics.counters["transport.payload_copies"] = 12.0;
  report.metrics.counters["worker.2.iterations"] = 40.0;
  report.metrics.gauges["transport.stash_high_water"] = 3.0;
  HistogramSnapshot hist;
  hist.upper_bounds = {0.1, 1.0};
  hist.counts = {5, 2, 1};
  hist.total_count = 8;
  hist.sum = 2.25;
  report.metrics.histograms["ckpt.save_seconds"] = hist;
  return report;
}

TEST(ReportIoTest, RoundTripIsExact) {
  const ProcessReport report = FancyReport();
  const std::string text = SerializeProcessReport(report);
  ProcessReport parsed;
  ASSERT_TRUE(ParseProcessReport(text, &parsed).ok());
  EXPECT_EQ(SerializeProcessReport(parsed), text);
  EXPECT_EQ(parsed.node, 2);
  EXPECT_EQ(parsed.role, "worker");
  EXPECT_EQ(parsed.worker_iterations, (std::vector<size_t>{0, 0, 40, 0}));
  EXPECT_EQ(parsed.replica, report.replica);
  const HistogramSnapshot* h = parsed.metrics.histogram("ckpt.save_seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->counts, (std::vector<uint64_t>{5, 2, 1}));
  EXPECT_DOUBLE_EQ(h->sum, 2.25);
}

TEST(ReportIoTest, TruncatedReportIsRejected) {
  const std::string text = SerializeProcessReport(FancyReport());
  ProcessReport parsed;
  // Every prefix missing the end sentinel is a writer that died mid-report.
  const std::string cut = text.substr(0, text.size() - 5);
  EXPECT_FALSE(ParseProcessReport(cut, &parsed).ok());
  EXPECT_FALSE(ParseProcessReport("", &parsed).ok());
  EXPECT_FALSE(ParseProcessReport("prreport 1\nnonsense 1\nend\n", &parsed)
                   .ok());
}

TEST(MergeSnapshotsTest, MergesLikeRegistryShards) {
  MetricsSnapshot a;
  a.counters["c"] = 2.0;
  a.counters["only_a"] = 1.0;
  a.gauges["g"] = 5.0;
  HistogramSnapshot ha;
  ha.upper_bounds = {1.0};
  ha.counts = {3, 1};
  ha.total_count = 4;
  ha.sum = 2.0;
  a.histograms["h"] = ha;

  MetricsSnapshot b;
  b.counters["c"] = 3.0;
  b.gauges["g"] = 4.0;
  b.gauges["only_b"] = 9.0;
  HistogramSnapshot hb = ha;
  hb.counts = {1, 0};
  hb.total_count = 1;
  hb.sum = 0.5;
  b.histograms["h"] = hb;

  MetricsSnapshot merged = MergeSnapshots({a, b});
  EXPECT_DOUBLE_EQ(merged.counter("c"), 5.0);       // counters sum
  EXPECT_DOUBLE_EQ(merged.counter("only_a"), 1.0);
  EXPECT_DOUBLE_EQ(merged.gauge("g"), 5.0);         // gauges take the max
  EXPECT_DOUBLE_EQ(merged.gauge("only_b"), 9.0);
  const HistogramSnapshot* h = merged.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->counts, (std::vector<uint64_t>{4, 1}));  // buckets sum
  EXPECT_EQ(h->total_count, 5u);
  EXPECT_DOUBLE_EQ(h->sum, 2.5);
}

// ---------------------------------------------------------------------------
// Real multi-process launches (fork mode: each node runs in a forked child).
// ---------------------------------------------------------------------------

RunConfig SmallLaunchConfig(StrategyKind kind) {
  RunConfig config;
  config.strategy.kind = kind;
  config.strategy.group_size = 2;
  config.run.num_workers = 3;
  config.run.iterations_per_worker = 6;
  config.run.model.hidden = {8};
  config.run.batch_size = 16;
  config.run.dataset.num_train = 512;
  config.run.dataset.num_test = 128;
  config.run.dataset.dim = 8;
  config.run.dataset.num_classes = 3;
  config.run.seed = 21;
  return config;
}

TEST(LaunchTest, ConRunAcrossProcesses) {
  TempDir dir("con");
  LaunchOptions options;
  options.config = SmallLaunchConfig(StrategyKind::kPReduceConst);
  options.workdir = dir.path;
  LaunchResult result;
  Status s = Launch(options, &result);
  ASSERT_TRUE(s.ok()) << s.message();

  EXPECT_EQ(result.strategy, "CON");
  EXPECT_EQ(result.num_processes, 4);  // 3 workers + controller
  for (int code : result.exit_codes) EXPECT_EQ(code, 0);
  EXPECT_GT(result.group_reduces, 0u);
  EXPECT_EQ(result.worker_iterations, (std::vector<size_t>{6, 6, 6}));
  EXPECT_FALSE(result.averaged_params.empty());
  EXPECT_GT(result.final_accuracy, 0.0);
  // Per-process metrics merged under the shared names.
  EXPECT_TRUE(result.metrics.counters.count("transport.stash_purged"));
  EXPECT_TRUE(result.metrics.counters.count("controller.groups_formed"));
  EXPECT_DOUBLE_EQ(result.metrics.counter("worker.0.iterations"), 6.0);
}

TEST(LaunchTest, RejectsUnsupportedStrategy) {
  TempDir dir("ps");
  LaunchOptions options;
  options.config = SmallLaunchConfig(StrategyKind::kPsBsp);
  options.workdir = dir.path;
  LaunchResult result;
  EXPECT_EQ(Launch(options, &result).code(), StatusCode::kNotImplemented);
}

TEST(LaunchTest, KilledWorkerIsSurvived) {
  TempDir dir("kill");
  LaunchOptions options;
  options.config = SmallLaunchConfig(StrategyKind::kPReduceConst);
  options.config.run.num_workers = 4;
  options.config.run.iterations_per_worker = 150;
  options.config.run.worker_delay_seconds.assign(4, 0.003);
  options.workdir = dir.path;
  options.kill.worker = 2;
  options.kill.after_seconds = 0.1;
  LaunchResult result;
  Status s = Launch(options, &result);
  ASSERT_TRUE(s.ok()) << s.message();

  ASSERT_EQ(result.num_processes, 5);
  EXPECT_TRUE(result.killed[2]);
  EXPECT_EQ(result.exit_codes[2], 137);  // 128 + SIGKILL
  // Everyone else finished their full budget through the recovery protocol.
  for (int node : {0, 1, 3, 4}) {
    EXPECT_EQ(result.exit_codes[node], 0) << "node " << node;
  }
  for (int w : {0, 1, 3}) {
    EXPECT_EQ(result.worker_iterations[static_cast<size_t>(w)], 150u)
        << "surviving worker " << w;
  }
  // The killed process never reported; its slot stays empty.
  EXPECT_EQ(result.worker_iterations[2], 0u);
  // A real process death produced the same fault events the in-proc chaos
  // harness produces for an injected crash.
  EXPECT_GE(result.metrics.counter("fault.evictions"), 1.0);
  EXPECT_TRUE(result.metrics.counters.count("fault.aborted_groups"));
}

TEST(LaunchTest, CheckpointThenRestoreAcrossProcesses) {
  TempDir dir("ckpt");
  const std::string ckpt_dir = dir.path + "/ckpt";
  LaunchOptions options;
  options.config = SmallLaunchConfig(StrategyKind::kPReduceConst);
  options.config.run.ckpt.dir = ckpt_dir;
  options.config.run.ckpt.every_iterations = 2;
  options.workdir = dir.path + "/first";
  LaunchResult first;
  Status s = Launch(options, &first);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_GE(first.metrics.counter("ckpt.manifests_written"), 1.0);

  RunManifest manifest;
  std::string manifest_path;
  ASSERT_TRUE(FindLatestManifest(ckpt_dir, &manifest, &manifest_path).ok());
  EXPECT_EQ(manifest.engine, "threaded");
  EXPECT_EQ(manifest.num_workers, 3);

  // Resume the same config from the manifest: every process restores its
  // shard and finishes the remaining budget.
  options.workdir = dir.path + "/second";
  options.resume_manifest = manifest_path;
  LaunchResult second;
  s = Launch(options, &second);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(second.worker_iterations, (std::vector<size_t>{6, 6, 6}));
  // Each of the four processes restored once; counters sum across reports.
  EXPECT_GE(second.metrics.counter("ckpt.restore_count"), 1.0);
}

}  // namespace
}  // namespace pr
