#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace pr {
namespace {

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.rank(), 0u);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());
}

TEST(TensorTest, VectorConstruction) {
  Tensor t(5);
  EXPECT_EQ(t.rank(), 1u);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.rows(), 5u);
  EXPECT_EQ(t.cols(), 1u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, MatrixConstructionAndAccess) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 4u);
  t.At(1, 2) = 7.0f;
  EXPECT_EQ(t.At(1, 2), 7.0f);
  EXPECT_EQ(t.Row(1)[2], 7.0f);
}

TEST(TensorTest, FromVectorAndFromMatrix) {
  Tensor v = Tensor::FromVector({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], 2.0f);

  Tensor m = Tensor::FromMatrix(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(m.At(0, 1), 2.0f);
  EXPECT_EQ(m.At(1, 0), 3.0f);
}

TEST(TensorTest, FillAndZero) {
  Tensor t(2, 3);
  t.Fill(2.5f);
  for (size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.data()[i], 2.5f);
  t.Zero();
  for (size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(TensorTest, FillNormalHasRequestedSpread) {
  Tensor t(10000);
  Rng rng(3);
  t.FillNormal(&rng, 2.0f);
  double sum = 0.0, sq = 0.0;
  for (size_t i = 0; i < t.size(); ++i) {
    sum += t[i];
    sq += static_cast<double>(t[i]) * t[i];
  }
  EXPECT_NEAR(sum / t.size(), 0.0, 0.1);
  EXPECT_NEAR(sq / t.size(), 4.0, 0.2);
}

TEST(TensorTest, FillUniformRespectsLimit) {
  Tensor t(1000);
  Rng rng(5);
  t.FillUniform(&rng, 0.5f);
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t[i], -0.5f);
    EXPECT_LT(t[i], 0.5f);
  }
}

TEST(TensorTest, SameShape) {
  EXPECT_TRUE(Tensor(2, 3).SameShape(Tensor(2, 3)));
  EXPECT_FALSE(Tensor(2, 3).SameShape(Tensor(3, 2)));
  EXPECT_FALSE(Tensor(6).SameShape(Tensor(2, 3)));
}

TEST(TensorTest, ToStringMentionsShape) {
  Tensor t(2, 3);
  EXPECT_NE(t.ToString().find("2x3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ops
// ---------------------------------------------------------------------------

TEST(OpsTest, MatMulKnownValues) {
  Tensor a = Tensor::FromMatrix(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromMatrix(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor out;
  MatMul(a, b, &out);
  EXPECT_EQ(out.rows(), 2u);
  EXPECT_EQ(out.cols(), 2u);
  EXPECT_FLOAT_EQ(out.At(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(out.At(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(out.At(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(out.At(1, 1), 154.0f);
}

TEST(OpsTest, MatMulIdentity) {
  Tensor eye = Tensor::FromMatrix(3, 3, {1, 0, 0, 0, 1, 0, 0, 0, 1});
  Tensor a = Tensor::FromMatrix(3, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor out;
  MatMul(a, eye, &out);
  for (size_t i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(out.data()[i], a.data()[i]);
}

TEST(OpsTest, MatMulTransBMatchesExplicitTranspose) {
  Rng rng(9);
  Tensor a(4, 6), b(5, 6);
  a.FillNormal(&rng, 1.0f);
  b.FillNormal(&rng, 1.0f);
  // b_t = transpose(b)
  Tensor b_t(6, 5);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 6; ++j) b_t.At(j, i) = b.At(i, j);
  }
  Tensor direct, viaT;
  MatMulTransB(a, b, &direct);
  MatMul(a, b_t, &viaT);
  ASSERT_TRUE(direct.SameShape(viaT));
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct.data()[i], viaT.data()[i], 1e-4);
  }
}

TEST(OpsTest, MatMulTransAMatchesExplicitTranspose) {
  Rng rng(10);
  Tensor a(6, 4), b(6, 5);
  a.FillNormal(&rng, 1.0f);
  b.FillNormal(&rng, 1.0f);
  Tensor a_t(4, 6);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 4; ++j) a_t.At(j, i) = a.At(i, j);
  }
  Tensor direct, viaT;
  MatMulTransA(a, b, &direct);
  MatMul(a_t, b, &viaT);
  ASSERT_TRUE(direct.SameShape(viaT));
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct.data()[i], viaT.data()[i], 1e-4);
  }
}

TEST(OpsTest, AxpyScaleDotNorm) {
  float x[3] = {1, 2, 3};
  float y[3] = {10, 20, 30};
  Axpy(2.0f, x, y, 3);
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[2], 36.0f);

  Scale(0.5f, y, 3);
  EXPECT_FLOAT_EQ(y[0], 6.0f);

  EXPECT_FLOAT_EQ(Dot(x, x, 3), 14.0f);
  EXPECT_FLOAT_EQ(Norm2(x, 3), std::sqrt(14.0f));
}

TEST(OpsTest, AddBiasRows) {
  Tensor m(2, 3);
  m.Fill(1.0f);
  Tensor bias = Tensor::FromVector({1, 2, 3});
  AddBiasRows(bias, &m);
  EXPECT_FLOAT_EQ(m.At(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(m.At(1, 2), 4.0f);
}

TEST(OpsTest, ReluForwardBackward) {
  Tensor t = Tensor::FromVector({-1.0f, 0.0f, 2.0f, -3.0f});
  ReluForward(&t);
  EXPECT_FLOAT_EQ(t[0], 0.0f);
  EXPECT_FLOAT_EQ(t[2], 2.0f);

  Tensor grad = Tensor::FromVector({5.0f, 5.0f, 5.0f, 5.0f});
  ReluBackward(t, &grad);
  EXPECT_FLOAT_EQ(grad[0], 0.0f);  // activation was 0 -> masked
  EXPECT_FLOAT_EQ(grad[2], 5.0f);
  EXPECT_FLOAT_EQ(grad[3], 0.0f);
}

TEST(OpsTest, SoftmaxRowsSumToOneAndOrderPreserved) {
  Tensor logits = Tensor::FromMatrix(2, 3, {1, 2, 3, -1, -1, -1});
  Tensor probs;
  SoftmaxRows(logits, &probs);
  for (size_t r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (size_t c = 0; c < 3; ++c) sum += probs.At(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-6);
  }
  EXPECT_GT(probs.At(0, 2), probs.At(0, 1));
  EXPECT_GT(probs.At(0, 1), probs.At(0, 0));
  EXPECT_NEAR(probs.At(1, 0), 1.0f / 3.0f, 1e-6);
}

TEST(OpsTest, SoftmaxNumericallyStableForLargeLogits) {
  Tensor logits = Tensor::FromMatrix(1, 2, {1000.0f, 1001.0f});
  Tensor probs;
  SoftmaxRows(logits, &probs);
  EXPECT_FALSE(std::isnan(probs.At(0, 0)));
  EXPECT_NEAR(probs.At(0, 0) + probs.At(0, 1), 1.0f, 1e-6);
  EXPECT_GT(probs.At(0, 1), probs.At(0, 0));
}

TEST(OpsTest, CrossEntropyUniformPrediction) {
  // Uniform over 4 classes -> loss = log(4).
  Tensor probs = Tensor::FromMatrix(2, 4, {0.25f, 0.25f, 0.25f, 0.25f,
                                           0.25f, 0.25f, 0.25f, 0.25f});
  float loss = CrossEntropyFromProbs(probs, {0, 3}, nullptr);
  EXPECT_NEAR(loss, std::log(4.0f), 1e-5);
}

TEST(OpsTest, CrossEntropyGradientIsProbsMinusOnehotOverBatch) {
  Tensor probs = Tensor::FromMatrix(1, 3, {0.2f, 0.3f, 0.5f});
  Tensor grad;
  CrossEntropyFromProbs(probs, {1}, &grad);
  EXPECT_NEAR(grad.At(0, 0), 0.2f, 1e-6);
  EXPECT_NEAR(grad.At(0, 1), -0.7f, 1e-6);
  EXPECT_NEAR(grad.At(0, 2), 0.5f, 1e-6);
}

TEST(OpsTest, ArgmaxRows) {
  Tensor scores = Tensor::FromMatrix(3, 3, {1, 5, 2, 9, 0, 0, 0, 0, 4});
  std::vector<int> pred = ArgmaxRows(scores);
  EXPECT_EQ(pred, (std::vector<int>{1, 0, 2}));
}

class MatMulSizesTest : public ::testing::TestWithParam<
                            std::tuple<size_t, size_t, size_t>> {};

TEST_P(MatMulSizesTest, MatchesNaiveTripleLoop) {
  auto [m, k, n] = GetParam();
  Rng rng(100 + m * 31 + k * 7 + n);
  Tensor a(m, k), b(k, n);
  a.FillNormal(&rng, 1.0f);
  b.FillNormal(&rng, 1.0f);
  Tensor out;
  MatMul(a, b, &out);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double ref = 0.0;
      for (size_t p = 0; p < k; ++p) {
        ref += static_cast<double>(a.At(i, p)) * b.At(p, j);
      }
      EXPECT_NEAR(out.At(i, j), ref, 1e-3);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulSizesTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 7, 3),
                      std::make_tuple(5, 1, 5), std::make_tuple(8, 8, 8),
                      std::make_tuple(3, 17, 5), std::make_tuple(16, 4, 1)));

}  // namespace
}  // namespace pr
