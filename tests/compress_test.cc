#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "comm/collectives.h"
#include "comm/socket_transport.h"
#include "common/rng.h"
#include "compress/codec.h"
#include "compress/compressor.h"
#include "obs/metrics.h"

namespace pr {
namespace {

/// Runs `fn(member_index, endpoint)` on one thread per member and joins.
/// Works over any Transport (in-proc or the socket fabric).
void RunMembers(Transport* transport, const std::vector<NodeId>& members,
                const std::function<void(size_t, Endpoint*)>& fn) {
  std::vector<std::thread> threads;
  for (size_t i = 0; i < members.size(); ++i) {
    threads.emplace_back([&, i] {
      Endpoint ep(transport, members[i]);
      fn(i, &ep);
    });
  }
  for (auto& t : threads) t.join();
}

std::vector<std::vector<float>> MakeInputs(size_t p, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> inputs(p, std::vector<float>(n));
  for (auto& v : inputs) {
    for (auto& x : v) x = static_cast<float>(rng.Normal(0.0, 1.0));
  }
  return inputs;
}

std::vector<float> ExpectedWeightedSum(
    const std::vector<std::vector<float>>& inputs,
    const std::vector<double>& weights) {
  std::vector<float> out(inputs[0].size(), 0.0f);
  for (size_t j = 0; j < inputs.size(); ++j) {
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] += static_cast<float>(weights[j]) * inputs[j][i];
    }
  }
  return out;
}

std::vector<double> UniformWeights(size_t p) {
  return std::vector<double>(p, 1.0 / static_cast<double>(p));
}

double RelativeL2Error(const std::vector<float>& got,
                       const std::vector<float>& want) {
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < want.size(); ++i) {
    const double d = static_cast<double>(got[i]) - want[i];
    num += d * d;
    den += static_cast<double>(want[i]) * want[i];
  }
  if (den == 0.0) return std::sqrt(num);
  return std::sqrt(num / den);
}

// ---------------------------------------------------------------------------
// Codec round-trips: each scheme's error bound, determinism, blob sizing.
// ---------------------------------------------------------------------------

std::vector<float> RandomVector(size_t n, uint64_t seed, double scale = 1.0) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.Normal(0.0, scale));
  return v;
}

TEST(CodecTest, Fp16RoundTripRelativeErrorBound) {
  auto codec = MakeCodec(CompressionKind::kFp16);
  const auto v = RandomVector(4096, 7, 3.0);
  Buffer blob = codec->Encode(v.data(), v.size());
  std::vector<float> back;
  ASSERT_TRUE(codec->Decode(blob, &back).ok());
  ASSERT_EQ(back.size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    // Half precision keeps 11 significand bits: relative error under 2^-11
    // for normals, plus a small absolute floor for subnormal halves.
    EXPECT_NEAR(back[i], v[i], std::abs(v[i]) / 2048.0 + 1e-4)
        << "elem " << i;
  }
}

TEST(CodecTest, Int8RoundTripPerChunkErrorBound) {
  auto codec = MakeCodec(CompressionKind::kInt8);
  // Three full chunks plus a ragged tail, with one outlier per chunk so the
  // per-chunk ranges differ — the bound must hold chunk by chunk.
  const size_t n = 3 * kInt8ChunkElems + 129;
  auto v = RandomVector(n, 13, 1.0);
  v[10] = 50.0f;
  v[kInt8ChunkElems + 5] = -20.0f;

  Buffer blob = codec->Encode(v.data(), n);
  std::vector<float> back;
  ASSERT_TRUE(codec->Decode(blob, &back).ok());
  ASSERT_EQ(back.size(), n);
  for (size_t c = 0; c < n; c += kInt8ChunkElems) {
    const size_t end = std::min(n, c + kInt8ChunkElems);
    float lo = v[c], hi = v[c];
    for (size_t i = c; i < end; ++i) {
      lo = std::min(lo, v[i]);
      hi = std::max(hi, v[i]);
    }
    // Linear 8-bit quantization: error at most half a step of this chunk's
    // own range (plus float slack).
    const double step = (static_cast<double>(hi) - lo) / 255.0;
    for (size_t i = c; i < end; ++i) {
      EXPECT_NEAR(back[i], v[i], step / 2.0 + 1e-5)
          << "chunk " << c / kInt8ChunkElems << " elem " << i;
    }
  }
}

TEST(CodecTest, TopKKeepsLargestMagnitudesZeroesTheRest) {
  auto codec = MakeCodec(CompressionKind::kTopK);
  const size_t n = 64;
  const size_t k = n / kTopKDivisor;
  auto v = RandomVector(n, 21, 1.0);
  // Make the magnitude ranking unambiguous.
  for (size_t i = 0; i < n; ++i) {
    v[i] = (i % 2 == 0 ? 1.0f : -1.0f) * (0.5f + static_cast<float>(i));
  }

  Buffer blob = codec->Encode(v.data(), n);
  std::vector<float> back;
  ASSERT_TRUE(codec->Decode(blob, &back).ok());
  ASSERT_EQ(back.size(), n);
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) {
    if (back[i] != 0.0f) {
      ++kept;
      // Kept values pass through exactly.
      EXPECT_EQ(back[i], v[i]) << "elem " << i;
      // And must be among the k largest magnitudes (the top k indices here
      // are the last k by construction).
      EXPECT_GE(i, n - k) << "elem " << i << " is not a top-k magnitude";
    }
  }
  EXPECT_EQ(kept, k);
}

TEST(CodecTest, TopKIsDeterministicAndBreaksTiesTowardLowerIndex) {
  auto codec = MakeCodec(CompressionKind::kTopK);
  const auto v = RandomVector(1000, 33);
  Buffer a = codec->Encode(v.data(), v.size());
  Buffer b = codec->Encode(v.data(), v.size());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << "same input must produce bitwise-identical blobs";

  // All-equal magnitudes: the k survivors must be the lowest indices.
  std::vector<float> ties(16, 2.0f);
  const size_t k = ties.size() / kTopKDivisor;
  Buffer blob = codec->Encode(ties.data(), ties.size());
  std::vector<float> back;
  ASSERT_TRUE(codec->Decode(blob, &back).ok());
  for (size_t i = 0; i < ties.size(); ++i) {
    EXPECT_EQ(back[i], i < k ? 2.0f : 0.0f) << "elem " << i;
  }
}

TEST(CodecTest, TopKKeepsAtLeastOneElement) {
  auto codec = MakeCodec(CompressionKind::kTopK);
  // n < kTopKDivisor would truncate to k == 0; the codec must keep one.
  std::vector<float> v = {0.0f, -3.0f, 1.0f};
  Buffer blob = codec->Encode(v.data(), v.size());
  std::vector<float> back;
  ASSERT_TRUE(codec->Decode(blob, &back).ok());
  EXPECT_EQ(back, std::vector<float>({0.0f, -3.0f, 0.0f}));
}

TEST(CodecTest, EncodedBytesMatchesActualBlobAndAnalyticForm) {
  for (CompressionKind kind : {CompressionKind::kFp16, CompressionKind::kInt8,
                               CompressionKind::kTopK}) {
    auto codec = MakeCodec(kind);
    for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{1023},
                     size_t{1024}, size_t{1025}, size_t{100000}}) {
      const auto v = RandomVector(n, 40 + n);
      Buffer blob = codec->Encode(n == 0 ? nullptr : v.data(), n);
      EXPECT_EQ(blob.size() * sizeof(float), codec->EncodedBytes(n))
          << CompressionKindName(kind) << " n=" << n;
      EXPECT_EQ(EncodedBlobBytes(kind, n), codec->EncodedBytes(n))
          << CompressionKindName(kind) << " n=" << n;
    }
  }
  // kNone's analytic form is the raw fp32 payload.
  EXPECT_EQ(EncodedBlobBytes(CompressionKind::kNone, 1000), 4000u);
}

TEST(CodecTest, CompressionRatiosAtOneMillionFloats) {
  // The ISSUE's headline numbers: bytes-on-wire reduction at 1M floats.
  const size_t n = 1u << 20;
  const double raw = static_cast<double>(n) * sizeof(float);
  EXPECT_GE(raw / EncodedBlobBytes(CompressionKind::kInt8, n), 3.5);
  EXPECT_GE(raw / EncodedBlobBytes(CompressionKind::kFp16, n), 1.9);
  EXPECT_GE(raw / EncodedBlobBytes(CompressionKind::kTopK, n), 3.5);
}

TEST(CodecTest, DecodeRejectsMalformedBlobs) {
  for (CompressionKind kind : {CompressionKind::kFp16, CompressionKind::kInt8,
                               CompressionKind::kTopK}) {
    auto codec = MakeCodec(kind);
    const auto v = RandomVector(300, 55);
    Buffer blob = codec->Encode(v.data(), v.size());
    std::vector<float> out;

    // Empty blob: no count word at all.
    EXPECT_FALSE(codec->Decode(Buffer(), &out).ok())
        << CompressionKindName(kind);

    // Truncated blob: drop the last word.
    ASSERT_GT(blob.size(), 1u);
    std::vector<float> words(blob.data(), blob.data() + blob.size() - 1);
    EXPECT_FALSE(codec->Decode(Buffer::FromVector(words), &out).ok())
        << CompressionKindName(kind) << " accepted a truncated blob";

    // Corrupted count word: claims more elements than the blob carries.
    std::vector<float> grown(blob.data(), blob.data() + blob.size());
    uint32_t count = 0;
    std::memcpy(&count, grown.data(), sizeof(count));
    count += 64;
    std::memcpy(grown.data(), &count, sizeof(count));
    EXPECT_FALSE(codec->Decode(Buffer::FromVector(grown), &out).ok())
        << CompressionKindName(kind) << " accepted an inflated count";
  }
}

TEST(CodecTest, DecodeTaggedPayloadRoutesByTag) {
  const auto v = RandomVector(128, 61);
  std::vector<float> out;

  // Tag 0: raw fp32 copies through bit-for-bit.
  ASSERT_TRUE(DecodeTaggedPayload(0, Buffer::FromVector(v), &out).ok());
  EXPECT_EQ(out, v);

  // A real codec tag routes to that codec.
  auto codec = MakeCodec(CompressionKind::kFp16);
  Buffer blob = codec->Encode(v.data(), v.size());
  std::vector<float> direct;
  ASSERT_TRUE(codec->Decode(blob, &direct).ok());
  ASSERT_TRUE(
      DecodeTaggedPayload(static_cast<uint8_t>(CompressionKind::kFp16),
                          Buffer::FromVector(std::vector<float>(
                              blob.data(), blob.data() + blob.size())),
                          &out)
          .ok());
  EXPECT_EQ(out, direct);

  // An unknown tag is rejected, not misdecoded.
  EXPECT_FALSE(
      DecodeTaggedPayload(kNumCompressionKinds, Buffer::FromVector(v), &out)
          .ok());
}

TEST(CodecTest, NamesRoundTripThroughParse) {
  for (CompressionKind kind :
       {CompressionKind::kNone, CompressionKind::kFp16, CompressionKind::kInt8,
        CompressionKind::kTopK}) {
    CompressionKind parsed;
    ASSERT_TRUE(ParseCompressionKind(CompressionKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  CompressionKind parsed;
  EXPECT_FALSE(ParseCompressionKind("gzip", &parsed));
  EXPECT_FALSE(ParseCompressionKind("", &parsed));
}

// ---------------------------------------------------------------------------
// Error feedback: the residual keeps dropped information alive.
// ---------------------------------------------------------------------------

TEST(CompressorTest, DisabledPassThroughForKindNone) {
  Compressor comp(CompressionKind::kNone);
  EXPECT_FALSE(comp.enabled());
  EXPECT_EQ(comp.encoding_tag(), 0);
}

TEST(CompressorTest, ErrorFeedbackTelescopesUnderInt8) {
  // A signal far below the quantization step: one outlier widens the chunk
  // range so every other value rounds to the same level. Without error
  // feedback the small entries would be lost forever; with it, the decoded
  // stream's running sum tracks the true running sum to within one step.
  const size_t n = 256;
  std::vector<float> x(n, 0.01f);
  x[0] = 8.0f;  // range ~8 => step ~0.03 > 0.01
  Compressor comp(CompressionKind::kInt8);
  ASSERT_TRUE(comp.enabled());

  const int steps = 50;
  std::vector<double> decoded_sum(n, 0.0);
  for (int t = 0; t < steps; ++t) {
    Buffer blob = comp.EncodeRange(x.data(), 0, n);
    std::vector<float> back;
    ASSERT_TRUE(comp.Decode(blob, &back).ok());
    for (size_t i = 0; i < n; ++i) decoded_sum[i] += back[i];
  }
  const double step_bound = 8.0 / 255.0 + 1e-3;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(decoded_sum[i], static_cast<double>(x[i]) * steps, step_bound)
        << "position " << i;
  }
  // The residual itself stays bounded (one step per position), not growing.
  EXPECT_LE(comp.ResidualL1(), n * step_bound);
  EXPECT_GT(comp.ResidualL1(), 0.0);
}

TEST(CompressorTest, ErrorFeedbackRecoversTopKDroppedMass) {
  // Top-k drops 7/8 of positions per encode, but with error feedback every
  // position's value keeps accumulating in the residual until it wins a
  // round — over enough rounds each position's decoded sum tracks the true
  // sum.
  const size_t n = 64;
  auto x = RandomVector(n, 91);
  Compressor comp(CompressionKind::kTopK);

  const int steps = 200;
  std::vector<double> decoded_sum(n, 0.0);
  for (int t = 0; t < steps; ++t) {
    Buffer blob = comp.EncodeRange(x.data(), 0, n);
    std::vector<float> back;
    ASSERT_TRUE(comp.Decode(blob, &back).ok());
    for (size_t i = 0; i < n; ++i) decoded_sum[i] += back[i];
  }
  for (size_t i = 0; i < n; ++i) {
    // The outstanding residual is at most ~kTopKDivisor values' worth.
    EXPECT_NEAR(decoded_sum[i] / steps, x[i],
                std::abs(x[i]) * kTopKDivisor / steps + 0.05)
        << "position " << i;
  }
}

TEST(CompressorTest, ResidualIsIndexedByGlobalPosition) {
  // Encoding disjoint ranges with offsets must keep independent residual
  // streams: range [0,8) and range [8,16) of the same compressor.
  Compressor comp(CompressionKind::kInt8);
  std::vector<float> lo(8, 0.25f), hi(8, -0.75f);
  lo[0] = 4.0f;
  hi[0] = 4.0f;
  for (int t = 0; t < 5; ++t) {
    (void)comp.EncodeRange(lo.data(), 0, lo.size());
    (void)comp.EncodeRange(hi.data(), 8, hi.size());
  }
  // Fresh compressors fed each stream standalone accumulate identical
  // residuals — proof the shared compressor never mixed the two ranges.
  Compressor only_lo(CompressionKind::kInt8), only_hi(CompressionKind::kInt8);
  for (int t = 0; t < 5; ++t) {
    (void)only_lo.EncodeRange(lo.data(), 0, lo.size());
    (void)only_hi.EncodeRange(hi.data(), 0, hi.size());
  }
  EXPECT_NEAR(comp.ResidualL1(), only_lo.ResidualL1() + only_hi.ResidualL1(),
              1e-6);
}

TEST(CompressorTest, EncodeRangePublishMatchesDecodedBlob) {
  Compressor comp(CompressionKind::kFp16);
  auto x = RandomVector(512, 17);
  auto published = x;
  Buffer blob = comp.EncodeRangePublish(published.data(), 0, published.size());
  std::vector<float> back;
  ASSERT_TRUE(comp.Decode(blob, &back).ok());
  EXPECT_EQ(published, back)
      << "publish must overwrite with exactly the decoded values";
}

TEST(CompressorTest, DecodeIntoRejectsLengthMismatch) {
  Compressor comp(CompressionKind::kFp16);
  auto x = RandomVector(32, 19);
  Buffer blob = comp.EncodeRange(x.data(), 0, x.size());
  std::vector<float> out(31);
  EXPECT_FALSE(comp.DecodeInto(blob, out.data(), out.size()).ok());
  out.resize(32);
  EXPECT_TRUE(comp.DecodeInto(blob, out.data(), out.size()).ok());
}

// ---------------------------------------------------------------------------
// Compressed collectives: replica identity, accuracy, and transport parity.
// ---------------------------------------------------------------------------

/// Runs the compressed group dispatch with one fresh Compressor per member
/// and returns every member's final vector.
std::vector<std::vector<float>> RunCompressed(
    Transport* transport, const std::vector<NodeId>& members,
    const std::vector<double>& weights,
    const std::vector<std::vector<float>>& inputs, CompressionKind kind,
    size_t segment_floats = kDefaultSegmentFloats) {
  const size_t p = members.size();
  std::vector<std::unique_ptr<Compressor>> comps;
  for (size_t i = 0; i < p; ++i) {
    comps.push_back(std::make_unique<Compressor>(kind));
  }
  auto data = inputs;
  RunMembers(transport, members, [&](size_t i, Endpoint* ep) {
    if (segment_floats == kDefaultSegmentFloats) {
      ASSERT_TRUE(GroupWeightedAllReduce(ep, members, weights, i, /*tag=*/1,
                                         data[i].data(), data[i].size(),
                                         comps[i].get())
                      .ok());
    } else {
      ASSERT_TRUE(SegmentedRingCompressedAllReduce(
                      ep, members, weights, i, /*tag=*/1, data[i].data(),
                      data[i].size(), comps[i].get(), segment_floats)
                      .ok());
    }
  });
  return data;
}

class CompressedCollectiveTest
    : public ::testing::TestWithParam<CompressionKind> {};

TEST_P(CompressedCollectiveTest, MembersEndBitwiseIdentical) {
  const CompressionKind kind = GetParam();
  const size_t p = 5, n = 217;
  std::vector<NodeId> members;
  for (size_t i = 0; i < p; ++i) members.push_back(static_cast<NodeId>(i));
  const auto weights = UniformWeights(p);
  const auto inputs = MakeInputs(p, n, 101);

  InProcTransport transport(static_cast<int>(p));
  // Tiny segments so chunks split into several encoded blobs.
  auto data =
      RunCompressed(&transport, members, weights, inputs, kind,
                    /*segment_floats=*/16);
  for (size_t i = 1; i < p; ++i) {
    ASSERT_EQ(data[i].size(), n);
    for (size_t j = 0; j < n; ++j) {
      EXPECT_EQ(data[i][j], data[0][j])
          << CompressionKindName(kind) << " member " << i << " elem " << j
          << " diverged";
    }
  }
}

TEST_P(CompressedCollectiveTest, HandlesShortAndEmptyVectors) {
  const CompressionKind kind = GetParam();
  const size_t p = 4;
  std::vector<NodeId> members = {0, 1, 2, 3};
  const auto weights = UniformWeights(p);
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}}) {  // n < p and n == 0
    const auto inputs = MakeInputs(p, n, 300 + n);
    InProcTransport transport(static_cast<int>(p));
    auto data = RunCompressed(&transport, members, weights, inputs, kind);
    for (size_t i = 0; i < p; ++i) {
      ASSERT_EQ(data[i].size(), n) << "n=" << n;
      for (size_t j = 0; j < n; ++j) {
        EXPECT_EQ(data[i][j], data[0][j]) << "n=" << n;
        EXPECT_TRUE(std::isfinite(data[i][j])) << "n=" << n;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CompressedCollectiveTest,
                         ::testing::Values(CompressionKind::kFp16,
                                           CompressionKind::kInt8,
                                           CompressionKind::kTopK),
                         [](const auto& info) {
                           return CompressionKindName(info.param);
                         });

TEST(CompressedCollectiveTest, Fp16TracksFp32Reference) {
  const size_t p = 8, n = 4000;
  std::vector<NodeId> members;
  for (size_t i = 0; i < p; ++i) members.push_back(static_cast<NodeId>(i));
  const auto weights = UniformWeights(p);
  const auto inputs = MakeInputs(p, n, 404);
  const auto expected = ExpectedWeightedSum(inputs, weights);

  InProcTransport transport(static_cast<int>(p));
  auto data = RunCompressed(&transport, members, weights, inputs,
                            CompressionKind::kFp16);
  // Per-hop fp16 rounding accumulates ~p half-precision errors; a 1%
  // relative L2 budget is an order of magnitude of headroom.
  EXPECT_LT(RelativeL2Error(data[0], expected), 0.01);
}

TEST(CompressedCollectiveTest, Int8TracksFp32Reference) {
  const size_t p = 6, n = 3000;
  std::vector<NodeId> members;
  for (size_t i = 0; i < p; ++i) members.push_back(static_cast<NodeId>(i));
  const auto weights = UniformWeights(p);
  const auto inputs = MakeInputs(p, n, 505);
  const auto expected = ExpectedWeightedSum(inputs, weights);

  InProcTransport transport(static_cast<int>(p));
  auto data = RunCompressed(&transport, members, weights, inputs,
                            CompressionKind::kInt8);
  // Int8 steps are ~range/255 per hop; the reduced values average ~N(0,1),
  // so a 15% single-shot relative error budget is loose but meaningful
  // (a sign flip or chunk misalignment would blow far past it).
  EXPECT_LT(RelativeL2Error(data[0], expected), 0.15);
}

TEST(CompressedCollectiveTest, DisabledCompressorMatchesUncompressedBitwise) {
  const size_t p = 4, n = 513;
  std::vector<NodeId> members = {0, 1, 2, 3};
  const auto weights = UniformWeights(p);
  const auto inputs = MakeInputs(p, n, 606);

  InProcTransport t1(static_cast<int>(p));
  auto plain = inputs;
  RunMembers(&t1, members, [&](size_t i, Endpoint* ep) {
    ASSERT_TRUE(GroupWeightedAllReduce(ep, members, weights, i, 1, &plain[i])
                    .ok());
  });

  // A kNone compressor must route to the identical uncompressed path.
  InProcTransport t2(static_cast<int>(p));
  auto data =
      RunCompressed(&t2, members, weights, inputs, CompressionKind::kNone);
  for (size_t i = 0; i < p; ++i) {
    for (size_t j = 0; j < n; ++j) {
      EXPECT_EQ(data[i][j], plain[i][j]);
    }
  }
}

// Short rendezvous directory (sockaddr_un paths are ~100 bytes).
struct SockDir {
  SockDir() {
    char tmpl[] = "/tmp/prcmpXXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~SockDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

TEST(CompressedCollectiveTest, SocketAndInProcAreBitwiseIdentical) {
  // The codec parity check from the ISSUE: the same compressed reduce over
  // real sockets must produce bitwise the same result as in-proc — blobs are
  // deterministic and the wire carries them unaltered.
  const size_t p = 4, n = 1500;
  std::vector<NodeId> members = {0, 1, 2, 3};
  const auto weights = UniformWeights(p);
  const auto inputs = MakeInputs(p, n, 707);

  for (CompressionKind kind : {CompressionKind::kFp16, CompressionKind::kInt8,
                               CompressionKind::kTopK}) {
    InProcTransport inproc(static_cast<int>(p));
    auto local = RunCompressed(&inproc, members, weights, inputs, kind);

    SockDir dir;
    SocketConfig config;
    config.dir = dir.path;
    SocketFabric fabric(config, static_cast<int>(p));
    ASSERT_TRUE(fabric.Start().ok());
    auto remote = RunCompressed(&fabric, members, weights, inputs, kind);
    fabric.Shutdown();

    for (size_t i = 0; i < p; ++i) {
      ASSERT_EQ(remote[i].size(), local[i].size());
      EXPECT_EQ(std::memcmp(remote[i].data(), local[i].data(),
                            n * sizeof(float)),
                0)
          << CompressionKindName(kind) << " member " << i
          << " differs across transports";
    }
  }
}

TEST(CompressedCollectiveTest, CompressedWireBytesAreSmaller) {
  // The endpoint byte counters must reflect *encoded* bytes: an int8 reduce
  // moves far fewer bytes than the same reduce uncompressed.
  const size_t p = 4, n = 40000;
  std::vector<NodeId> members = {0, 1, 2, 3};
  const auto weights = UniformWeights(p);
  const auto inputs = MakeInputs(p, n, 808);

  InProcTransport t1(static_cast<int>(p));
  MetricsRegistry plain_registry;
  {
    auto data = inputs;
    RunMembers(&t1, members, [&](size_t i, Endpoint* ep) {
      ep->AttachObservers(plain_registry.NewShard(), "", nullptr, nullptr);
      ASSERT_TRUE(
          GroupWeightedAllReduce(ep, members, weights, i, 1, &data[i]).ok());
    });
  }

  InProcTransport t2(static_cast<int>(p));
  MetricsRegistry int8_registry;
  {
    std::vector<std::unique_ptr<Compressor>> comps;
    for (size_t i = 0; i < p; ++i) {
      comps.push_back(std::make_unique<Compressor>(CompressionKind::kInt8));
    }
    auto data = inputs;
    RunMembers(&t2, members, [&](size_t i, Endpoint* ep) {
      ep->AttachObservers(int8_registry.NewShard(), "", nullptr, nullptr);
      ASSERT_TRUE(GroupWeightedAllReduce(ep, members, weights, i, 1,
                                         data[i].data(), n, comps[i].get())
                      .ok());
    });
  }

  const double plain_bytes =
      plain_registry.Snapshot().counter("transport.bytes_sent");
  const double int8_bytes =
      int8_registry.Snapshot().counter("transport.bytes_sent");
  ASSERT_GT(plain_bytes, 0.0);
  ASSERT_GT(int8_bytes, 0.0);
  EXPECT_GE(plain_bytes / int8_bytes, 3.0)
      << "int8 wire bytes should shrink ~3.9x (plain " << plain_bytes
      << " vs int8 " << int8_bytes << ")";
}

}  // namespace
}  // namespace pr
