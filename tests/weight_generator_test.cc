#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/weight_generator.h"

namespace pr {
namespace {

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(ConstantWeightsTest, UniformOneOverP) {
  auto w = ConstantWeights(4);
  ASSERT_EQ(w.size(), 4u);
  for (double x : w) EXPECT_DOUBLE_EQ(x, 0.25);
}

TEST(RelativeIterationsTest, NewestGetsOne) {
  auto rel = RelativeIterations({10, 7, 10, 9});
  EXPECT_EQ(rel, (std::vector<int64_t>{1, 4, 1, 2}));
}

TEST(DynamicWeightsTest, EqualIterationsGiveUniform) {
  DynamicWeightOptions opt;
  opt.alpha = 0.5;
  opt.staleness_tolerance = 0;
  auto w = DynamicWeights({5, 5, 5}, opt);
  ASSERT_EQ(w.size(), 3u);
  for (double x : w) EXPECT_NEAR(x, 1.0 / 3, 1e-12);
}

TEST(DynamicWeightsTest, SumsToOneAcrossScenarios) {
  DynamicWeightOptions opt;
  for (double alpha : {0.0, 0.3, 0.5, 0.9}) {
    opt.alpha = alpha;
    for (auto policy : {MissingSlotPolicy::kRenormalize,
                        MissingSlotPolicy::kAssignToStaler}) {
      opt.missing_slot_policy = policy;
      for (const auto& iters :
           {std::vector<int64_t>{3, 3, 3}, std::vector<int64_t>{1, 5, 9},
            std::vector<int64_t>{7, 7, 2}, std::vector<int64_t>{100, 1}}) {
        auto w = DynamicWeights(iters, opt);
        EXPECT_NEAR(Sum(w), 1.0, 1e-9)
            << "alpha=" << alpha << " policy="
            << static_cast<int>(policy);
        for (double x : w) EXPECT_GE(x, 0.0);
      }
    }
  }
}

TEST(DynamicWeightsTest, StalerMembersGetSmallerWeights) {
  DynamicWeightOptions opt;
  opt.alpha = 0.5;
  opt.staleness_tolerance = 0;
  // Worker iterations 10, 9, 8: khat = 1, 2, 3.
  auto w = DynamicWeights({10, 9, 8}, opt);
  EXPECT_GT(w[0], w[1]);
  EXPECT_GT(w[1], w[2]);
}

TEST(DynamicWeightsTest, MatchesEq9ForConsecutiveIterations) {
  // With all khat slots occupied, weights are exactly Eq. (9):
  // beta_i = (1 - a) a^{khat-1} / (1 - a^khat_max).
  DynamicWeightOptions opt;
  opt.alpha = 0.5;
  opt.staleness_tolerance = 0;
  auto w = DynamicWeights({4, 3, 2}, opt);  // khat = 1, 2, 3
  const double denom = 1.0 - std::pow(0.5, 3);
  EXPECT_NEAR(w[0], 0.5 / denom, 1e-12);
  EXPECT_NEAR(w[1], 0.25 / denom, 1e-12);
  EXPECT_NEAR(w[2], 0.125 / denom, 1e-12);
}

TEST(DynamicWeightsTest, TiesSplitEqually) {
  DynamicWeightOptions opt;
  opt.alpha = 0.5;
  opt.staleness_tolerance = 0;
  opt.missing_slot_policy = MissingSlotPolicy::kRenormalize;
  auto w = DynamicWeights({5, 5, 3}, opt);  // khat = 1, 1, 3
  EXPECT_NEAR(w[0], w[1], 1e-12);
  EXPECT_GT(w[0], w[2]);
}

TEST(DynamicWeightsTest, TiesSplitEquallyUnderStalerPolicy) {
  // With kAssignToStaler, ties still split equally, but the missing slot's
  // mass rolling onto the stale member can push it above an individual
  // fresh member (the *slot* ordering is what stays monotone).
  DynamicWeightOptions opt;
  opt.alpha = 0.5;
  opt.staleness_tolerance = 0;
  opt.missing_slot_policy = MissingSlotPolicy::kAssignToStaler;
  auto w = DynamicWeights({5, 5, 3}, opt);  // khat = 1, 1, 3
  EXPECT_NEAR(w[0], w[1], 1e-12);
  // Fresh slot total (w0 + w1) still dominates the stale slot.
  EXPECT_GT(w[0] + w[1], w[2]);
}

TEST(DynamicWeightsTest, AlphaZeroPutsAllMassOnNewest) {
  DynamicWeightOptions opt;
  opt.alpha = 0.0;
  auto w = DynamicWeights({9, 4, 9}, opt);
  EXPECT_NEAR(w[0], 0.5, 1e-12);
  EXPECT_NEAR(w[1], 0.0, 1e-12);
  EXPECT_NEAR(w[2], 0.5, 1e-12);
}

TEST(DynamicWeightsTest, LargerAlphaFlattensWeights) {
  DynamicWeightOptions low, high;
  low.alpha = 0.2;
  high.alpha = 0.9;
  auto wl = DynamicWeights({10, 5}, low);
  auto wh = DynamicWeights({10, 5}, high);
  // Higher alpha discounts staleness less -> smaller gap.
  EXPECT_GT(wl[0] - wl[1], wh[0] - wh[1]);
}

TEST(DynamicWeightsTest, MissingSlotPoliciesDifferWithGaps) {
  DynamicWeightOptions renorm, staler;
  renorm.alpha = 0.5;
  renorm.staleness_tolerance = 0;
  renorm.missing_slot_policy = MissingSlotPolicy::kRenormalize;
  staler.alpha = 0.5;
  staler.staleness_tolerance = 0;
  staler.missing_slot_policy = MissingSlotPolicy::kAssignToStaler;

  // khat = 1 and 4: slots 2, 3 unoccupied.
  auto wr = DynamicWeights({10, 7}, renorm);
  auto ws = DynamicWeights({10, 7}, staler);
  EXPECT_NEAR(Sum(wr), 1.0, 1e-12);
  EXPECT_NEAR(Sum(ws), 1.0, 1e-12);
  // AssignToStaler rolls the missing slots' mass onto the stale member, so
  // the stale member gets strictly more than under renormalization.
  EXPECT_GT(ws[1], wr[1]);
  EXPECT_GT(wr[0], wr[1]);
  EXPECT_GT(ws[0], ws[1]);
}

TEST(DynamicWeightsTest, AssignToStalerExactValue) {
  // khat = 1, 3 with alpha = 0.5: slot masses (unnormalized over khat_max=3)
  // are 0.5, 0.25, 0.125 scaled by 1/(1 - 0.125). Slot 2's mass rolls to
  // slot 3. Weights: newest = 0.5/D, stale = (0.25 + 0.125)/D, D = 0.875.
  DynamicWeightOptions opt;
  opt.alpha = 0.5;
  opt.staleness_tolerance = 0;
  opt.missing_slot_policy = MissingSlotPolicy::kAssignToStaler;
  auto w = DynamicWeights({5, 3}, opt);
  EXPECT_NEAR(w[0], 0.5 / 0.875, 1e-12);
  EXPECT_NEAR(w[1], 0.375 / 0.875, 1e-12);
}

TEST(DynamicWeightsTest, AssignToNearestSplitsGapMass) {
  // khat = 1 and 5 with alpha = 0.5, tolerance 0: slots 2,3 are nearer to 1
  // ... slot 2 is distance 1 from slot 1 and 3 from slot 5 -> goes newest;
  // slot 3 is equidistant (2 vs 2) -> tie goes staler; slot 4 is distance 3
  // vs 1 -> staler. Masses (unnormalized over khat_max=5, denom 1-1/32):
  // slot1 .5, slot2 .25, slot3 .125, slot4 .0625, slot5 .03125.
  DynamicWeightOptions opt;
  opt.alpha = 0.5;
  opt.staleness_tolerance = 0;
  opt.missing_slot_policy = MissingSlotPolicy::kAssignToNearest;
  auto w = DynamicWeights({9, 5}, opt);
  // Slot masses 1/2, 1/4, 1/8, 1/16, 1/32 (x (1-a)/(1-a^5)): the fresh
  // member keeps slots 1+2 = 3/4 of the geometric mass, the stale member
  // slots 3+4+5 = 7/32; normalized: 24/31 and 7/31.
  EXPECT_NEAR(w[0], 24.0 / 31.0, 1e-12);
  EXPECT_NEAR(w[1], 7.0 / 31.0, 1e-12);
}

TEST(DynamicWeightsTest, AssignToNearestBetweenStalerAndRenormalize) {
  // For a {fresh, deep-stale} pair, nearest assigns less mass to the stale
  // member than to-staler (which rolls the whole tail) but more than
  // renormalize (which drops the tail entirely).
  DynamicWeightOptions base;
  base.alpha = 0.5;
  base.staleness_tolerance = 0;
  auto weight_of_stale = [&](MissingSlotPolicy policy) {
    DynamicWeightOptions opt = base;
    opt.missing_slot_policy = policy;
    return DynamicWeights({10, 4}, opt)[1];
  };
  const double renorm = weight_of_stale(MissingSlotPolicy::kRenormalize);
  const double nearest = weight_of_stale(MissingSlotPolicy::kAssignToNearest);
  const double staler = weight_of_stale(MissingSlotPolicy::kAssignToStaler);
  EXPECT_LT(renorm, nearest);
  EXPECT_LT(nearest, staler);
}

TEST(DynamicWeightsTest, SingleMemberGetsEverything) {
  DynamicWeightOptions opt;
  auto w = DynamicWeights({42}, opt);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
}

TEST(DynamicWeightsTest, ToleranceCollapsesJitterToUniform) {
  // Gaps within the tolerance are ordinary asynchrony, not staleness: the
  // default tolerance of 1 makes +-1-iteration groups aggregate uniformly.
  DynamicWeightOptions opt;
  opt.alpha = 0.5;  // tolerance stays at its default of 1
  auto w = DynamicWeights({7, 6, 7}, opt);
  for (double x : w) EXPECT_NEAR(x, 1.0 / 3, 1e-12);
}

TEST(DynamicWeightsTest, ToleranceShiftsButKeepsPenalizingDeepStaleness) {
  DynamicWeightOptions opt;
  opt.alpha = 0.5;
  opt.staleness_tolerance = 1;
  // Conservative default policy: the stale member is penalized but its
  // weight asymptotes to ~alpha (the rolled-up EMA tail) rather than 0.
  auto w = DynamicWeights({10, 5}, opt);  // gap 5 >> tolerance
  EXPECT_GT(w[0], w[1]);
  EXPECT_NEAR(w[1], 0.484, 0.01);

  // The renormalizing policy penalizes deep staleness much harder.
  opt.missing_slot_policy = MissingSlotPolicy::kRenormalize;
  auto wr = DynamicWeights({10, 5}, opt);
  EXPECT_GT(wr[0], 0.8);
  EXPECT_LT(wr[1], 0.2);
}

TEST(DynamicWeightsTest, LargerToleranceForgivesMore) {
  DynamicWeightOptions tight, loose;
  tight.alpha = loose.alpha = 0.5;
  tight.staleness_tolerance = 0;
  loose.staleness_tolerance = 3;
  auto wt = DynamicWeights({10, 7}, tight);
  auto wl = DynamicWeights({10, 7}, loose);
  EXPECT_GT(wt[0] - wt[1], wl[0] - wl[1]);
  // Gap 3 fully inside loose tolerance -> uniform.
  EXPECT_NEAR(wl[0], 0.5, 1e-12);
}

class DynamicWeightsPropertyTest
    : public ::testing::TestWithParam<double> {};

TEST_P(DynamicWeightsPropertyTest, OrderedByStalenessUnderRenormalize) {
  // Per-member monotonicity in staleness holds exactly for kRenormalize;
  // kAssignToStaler trades it for the paper's "missing versions are old
  // models" approximation (see TiesSplitEquallyUnderStalerPolicy).
  DynamicWeightOptions opt;
  opt.alpha = GetParam();
  opt.missing_slot_policy = MissingSlotPolicy::kRenormalize;
  const std::vector<int64_t> iters = {20, 18, 15, 10, 3};
  auto w = DynamicWeights(iters, opt);
  EXPECT_NEAR(Sum(w), 1.0, 1e-9);
  for (size_t i = 1; i < w.size(); ++i) {
    EXPECT_GE(w[i - 1], w[i] - 1e-12)
        << "alpha=" << GetParam() << " position " << i;
  }
}

TEST_P(DynamicWeightsPropertyTest, StalerPolicySumsToOneAndFreshestWins) {
  DynamicWeightOptions opt;
  opt.alpha = GetParam();
  opt.missing_slot_policy = MissingSlotPolicy::kAssignToStaler;
  const std::vector<int64_t> iters = {20, 18, 15, 10, 3};
  auto w = DynamicWeights(iters, opt);
  EXPECT_NEAR(Sum(w), 1.0, 1e-9);
  // The freshest member always keeps the largest single-slot mass among
  // *adjacent-by-slot* members: its weight is at least the Eq. (9) value.
  const double khat_max = 18.0;
  const double floor = (1.0 - GetParam()) /
                       (1.0 - std::pow(GetParam(), khat_max));
  EXPECT_GE(w[0] + 1e-12, floor);
}

INSTANTIATE_TEST_SUITE_P(Alphas, DynamicWeightsPropertyTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

}  // namespace
}  // namespace pr
