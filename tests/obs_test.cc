#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pr {
namespace {

TEST(MetricsTest, CounterAccumulates) {
  MetricsRegistry registry;
  MetricsShard* shard = registry.NewShard();
  Counter* c = shard->GetCounter("x");
  c->Increment();
  c->Increment(2.5);
  EXPECT_DOUBLE_EQ(c->value(), 3.5);
  EXPECT_DOUBLE_EQ(registry.Snapshot().counter("x"), 3.5);
}

TEST(MetricsTest, HandleIsStablePerName) {
  MetricsRegistry registry;
  MetricsShard* shard = registry.NewShard();
  EXPECT_EQ(shard->GetCounter("a"), shard->GetCounter("a"));
  EXPECT_NE(shard->GetCounter("a"), shard->GetCounter("b"));
}

TEST(MetricsTest, GaugeSetMaxKeepsHighWater) {
  MetricsRegistry registry;
  MetricsShard* shard = registry.NewShard();
  Gauge* g = shard->GetGauge("hw");
  g->SetMax(3.0);
  g->SetMax(1.0);
  EXPECT_DOUBLE_EQ(g->value(), 3.0);
  g->SetMax(7.0);
  EXPECT_DOUBLE_EQ(registry.Snapshot().gauge("hw"), 7.0);
}

TEST(MetricsTest, ShardsMergeCountersSumGaugesMax) {
  MetricsRegistry registry;
  MetricsShard* a = registry.NewShard();
  MetricsShard* b = registry.NewShard();
  a->GetCounter("n")->Increment(2.0);
  b->GetCounter("n")->Increment(5.0);
  a->GetGauge("hw")->Set(4.0);
  b->GetGauge("hw")->Set(9.0);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snap.counter("n"), 7.0);
  EXPECT_DOUBLE_EQ(snap.gauge("hw"), 9.0);
}

TEST(MetricsTest, SnapshotLookupsAreNullSafeOnAbsentNames) {
  MetricsRegistry registry;
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snap.counter("absent"), 0.0);
  EXPECT_DOUBLE_EQ(snap.gauge("absent"), 0.0);
  EXPECT_EQ(snap.histogram("absent"), nullptr);
}

TEST(MetricsTest, HistogramBucketing) {
  MetricsRegistry registry;
  MetricsShard* shard = registry.NewShard();
  Histogram* h = shard->GetHistogram("lat", {1.0, 10.0, 100.0});
  h->Observe(0.5);    // bucket 0 (v <= 1)
  h->Observe(1.0);    // bucket 0 (inclusive upper bound)
  h->Observe(5.0);    // bucket 1
  h->Observe(1000.0); // overflow bucket
  HistogramSnapshot snap = h->Snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 0u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.total_count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 1006.5);
  EXPECT_DOUBLE_EQ(snap.Mean(), 1006.5 / 4.0);
  // Median falls in the first bucket; the top quantile in the overflow
  // bucket reports the largest finite bound.
  EXPECT_DOUBLE_EQ(snap.QuantileUpperBound(0.5), 1.0);
  EXPECT_DOUBLE_EQ(snap.QuantileUpperBound(1.0), 100.0);
}

TEST(MetricsTest, HistogramsMergeBucketwiseAcrossShards) {
  MetricsRegistry registry;
  MetricsShard* a = registry.NewShard();
  MetricsShard* b = registry.NewShard();
  a->GetHistogram("h", {1.0, 2.0})->Observe(0.5);
  b->GetHistogram("h", {1.0, 2.0})->Observe(1.5);
  b->GetHistogram("h", {1.0, 2.0})->Observe(9.0);
  const HistogramSnapshot* h = nullptr;
  MetricsSnapshot snap = registry.Snapshot();
  h = snap.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->total_count, 3u);
  ASSERT_EQ(h->counts.size(), 3u);
  EXPECT_EQ(h->counts[0], 1u);
  EXPECT_EQ(h->counts[1], 1u);
  EXPECT_EQ(h->counts[2], 1u);
}

TEST(MetricsTest, StalenessBucketsReconstructExactCounts) {
  // The legacy staleness histogram is per-integer-value; the canonical
  // buckets must preserve that for staleness 0..15.
  MetricsRegistry registry;
  Histogram* h =
      registry.NewShard()->GetHistogram("s", StalenessBuckets());
  for (int s = 0; s <= 15; ++s) {
    for (int k = 0; k <= s; ++k) h->Observe(static_cast<double>(s));
  }
  HistogramSnapshot snap = h->Snapshot();
  for (size_t s = 0; s <= 15; ++s) {
    EXPECT_EQ(snap.counts[s], s + 1) << "staleness " << s;
  }
  EXPECT_EQ(snap.counts.back(), 0u);
}

TEST(MetricsTest, ConcurrentShardsMergeExactly) {
  // Per-thread shards: each thread owns one, increments a shared name in a
  // tight loop, and the post-join snapshot must account for every update.
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  MetricsRegistry registry;
  std::vector<MetricsShard*> shards;
  for (int t = 0; t < kThreads; ++t) shards.push_back(registry.NewShard());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([shard = shards[static_cast<size_t>(t)], t] {
      Counter* c = shard->GetCounter("total");
      Gauge* g = shard->GetGauge("high");
      Histogram* h = shard->GetHistogram("obs", {0.5});
      for (int i = 0; i < kIters; ++i) {
        c->Increment();
        g->SetMax(static_cast<double>(t * kIters + i));
        h->Observe(i % 2 == 0 ? 0.0 : 1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snap.counter("total"),
                   static_cast<double>(kThreads * kIters));
  EXPECT_DOUBLE_EQ(snap.gauge("high"),
                   static_cast<double>(kThreads * kIters - 1));
  const HistogramSnapshot* h = snap.histogram("obs");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->total_count,
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h->counts[0], static_cast<uint64_t>(kThreads) * kIters / 2);
}

TEST(MetricsTest, SingleInstrumentSurvivesConcurrentWriters) {
  // Sharing one shard between threads is also legal — updates are atomic.
  MetricsRegistry registry;
  Counter* c = registry.NewShard()->GetCounter("shared");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < 5000; ++i) c->Increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(c->value(), 20000.0);
}

TEST(TraceTest, RecordsInOrder) {
  TraceRecorder recorder(16);
  recorder.Record(0.1, TraceEventKind::kSignalEnqueued, 0, 1);
  recorder.Record(0.2, TraceEventKind::kGroupFormed, -1, 7, 2);
  TraceLog log = recorder.Log();
  ASSERT_EQ(log.events.size(), 2u);
  EXPECT_EQ(log.dropped, 0u);
  EXPECT_DOUBLE_EQ(log.events[0].time, 0.1);
  EXPECT_EQ(log.events[0].kind, TraceEventKind::kSignalEnqueued);
  EXPECT_EQ(log.events[0].worker, 0);
  EXPECT_EQ(log.events[1].a, 7);
  EXPECT_EQ(log.events[1].b, 2);
}

TEST(TraceTest, RingKeepsNewestWindowAndCountsDrops) {
  TraceRecorder recorder(4);
  for (int i = 0; i < 10; ++i) {
    recorder.Record(static_cast<double>(i), TraceEventKind::kReduceStart, 0,
                    i);
  }
  TraceLog log = recorder.Log();
  ASSERT_EQ(log.events.size(), 4u);
  EXPECT_EQ(log.dropped, 6u);
  EXPECT_EQ(recorder.recorded(), 10u);
  // Oldest-first order over the surviving tail: events 6..9.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(log.events[i].a, static_cast<int64_t>(6 + i));
  }
}

TEST(TraceTest, ZeroCapacityDisablesRecording) {
  TraceRecorder recorder(0);
  EXPECT_FALSE(recorder.enabled());
  recorder.Record(1.0, TraceEventKind::kPsPush, 2, 3);
  TraceLog log = recorder.Log();
  EXPECT_TRUE(log.events.empty());
  EXPECT_EQ(log.dropped, 0u);
  EXPECT_EQ(recorder.recorded(), 0u);
}

TEST(TraceTest, ConcurrentRecordsAllAccounted) {
  TraceRecorder recorder(128);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < 1000; ++i) {
        recorder.Record(0.0, TraceEventKind::kPsPush, t, i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(recorder.recorded(), 4000u);
  TraceLog log = recorder.Log();
  EXPECT_EQ(log.events.size(), 128u);
  EXPECT_EQ(log.dropped, 4000u - 128u);
}

TEST(JsonTest, WriterProducesStrictJson) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String("a \"quoted\" value\n");
  w.Key("pi").Number(3.5);
  w.Key("n").Int(-2);
  w.Key("u").UInt(7);
  w.Key("ok").Bool(true);
  w.Key("none").Null();
  w.Key("arr").BeginArray();
  w.Number(1.0);
  w.Number(2.0);
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"a \\\"quoted\\\" value\\n\",\"pi\":3.5,"
            "\"n\":-2,\"u\":7,\"ok\":true,\"none\":null,"
            "\"arr\":[1,2]}");
}

TEST(JsonTest, MetricsSnapshotSerializes) {
  MetricsRegistry registry;
  MetricsShard* shard = registry.NewShard();
  shard->GetCounter("runs")->Increment(3.0);
  shard->GetGauge("hw")->Set(2.0);
  shard->GetHistogram("lat", {1.0})->Observe(0.5);
  const std::string json = MetricsSnapshotJson(registry.Snapshot());
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"runs\":3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"upper_bounds\""), std::string::npos);
}

TEST(JsonTest, TraceLogSerializesKindNames) {
  TraceRecorder recorder(8);
  recorder.Record(0.5, TraceEventKind::kGroupFormed, -1, 1, 2);
  const std::string json = TraceLogJson(recorder.Log());
  EXPECT_NE(json.find("\"group_formed\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
}

}  // namespace
}  // namespace pr
