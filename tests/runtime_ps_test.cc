#include <gtest/gtest.h>

#include "runtime/threaded_runtime.h"

namespace pr {
namespace {

RunConfig SmallConfig(StrategyKind kind) {
  RunConfig config;
  config.strategy.kind = kind;
  config.run.num_workers = 4;
  config.run.iterations_per_worker = 30;
  config.run.model.hidden = {16};
  config.run.batch_size = 16;
  config.run.dataset.num_train = 1024;
  config.run.dataset.num_test = 512;
  config.run.dataset.dim = 16;
  config.run.dataset.num_classes = 4;
  config.run.dataset.separation = 3.0;
  config.run.seed = 5;
  return config;
}

/// The staleness histogram (`ps.push_staleness`) of a finished run.
const HistogramSnapshot* Staleness(const ThreadedRunResult& result) {
  return result.metrics.histogram("ps.push_staleness");
}

TEST(RuntimePsTest, BspCompletesAndLearns) {
  RunConfig config = SmallConfig(StrategyKind::kPsBsp);
  ThreadedRunResult result = RunThreaded(config);
  // BSP: one version per round, iterations_per_worker rounds.
  EXPECT_EQ(result.versions, config.run.iterations_per_worker);
  EXPECT_GT(result.final_accuracy, 0.6);
}

TEST(RuntimePsTest, BspHasZeroStaleness) {
  RunConfig config = SmallConfig(StrategyKind::kPsBsp);
  ThreadedRunResult result = RunThreaded(config);
  // Lockstep: every push targets the version it pulled, so every
  // observation lands in the zero bucket.
  const HistogramSnapshot* hist = Staleness(result);
  ASSERT_NE(hist, nullptr);
  ASSERT_FALSE(hist->counts.empty());
  EXPECT_GT(hist->total_count, 0u);
  EXPECT_EQ(hist->counts[0], hist->total_count);
}

TEST(RuntimePsTest, AspCompletesAndLearns) {
  RunConfig config = SmallConfig(StrategyKind::kPsAsp);
  config.run.iterations_per_worker = 60;
  ThreadedRunResult result = RunThreaded(config);
  // ASP: one version per push.
  EXPECT_EQ(result.versions,
            static_cast<uint64_t>(config.run.num_workers) *
                config.run.iterations_per_worker);
  EXPECT_GT(result.final_accuracy, 0.6);
}

TEST(RuntimePsTest, AspObservesStalenessUnderStraggler) {
  RunConfig config = SmallConfig(StrategyKind::kPsAsp);
  config.run.iterations_per_worker = 20;
  config.run.worker_delay_seconds = {0.0, 0.0, 0.0, 0.004};
  ThreadedRunResult result = RunThreaded(config);
  // Some push must have seen staleness >= 1 (fast workers advance the
  // version while the straggler computes).
  const HistogramSnapshot* hist = Staleness(result);
  ASSERT_NE(hist, nullptr);
  ASSERT_FALSE(hist->counts.empty());
  EXPECT_GT(hist->total_count, hist->counts[0]);
}

TEST(RuntimePsTest, StragglerDoesNotBlockAspCompletion) {
  RunConfig config = SmallConfig(StrategyKind::kPsAsp);
  config.run.iterations_per_worker = 15;
  config.run.worker_delay_seconds = {0.0, 0.0, 0.0, 0.01};
  ThreadedRunResult result = RunThreaded(config);
  EXPECT_EQ(result.versions, 4u * 15u);
}

TEST(RuntimePsTest, SingleWorkerDegeneratesToSequentialSgd) {
  RunConfig config = SmallConfig(StrategyKind::kPsBsp);
  config.run.num_workers = 1;
  config.run.iterations_per_worker = 100;
  ThreadedRunResult result = RunThreaded(config);
  EXPECT_EQ(result.versions, 100u);
  EXPECT_GT(result.final_accuracy, 0.6);
}

TEST(RuntimePsTest, PsMetricsAccountForEveryPush) {
  RunConfig config = SmallConfig(StrategyKind::kPsBsp);
  ThreadedRunResult result = RunThreaded(config);
  // ps.versions counts server version bumps; the staleness histogram's
  // total count equals the number of pushes the server accepted.
  EXPECT_EQ(static_cast<uint64_t>(result.metrics.counter("ps.versions")),
            result.versions);
  const HistogramSnapshot* h = Staleness(result);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->total_count,
            static_cast<uint64_t>(config.run.num_workers) *
                config.run.iterations_per_worker);
}

}  // namespace
}  // namespace pr
