#include <gtest/gtest.h>

#include "core/group_history.h"

namespace pr {
namespace {

TEST(GroupHistoryTest, MinWindowFormula) {
  // T >= ceil((N-1)/(P-1)), paper §4.
  EXPECT_EQ(GroupHistory::MinWindow(8, 2), 7u);
  EXPECT_EQ(GroupHistory::MinWindow(8, 3), 4u);  // ceil(7/2)
  EXPECT_EQ(GroupHistory::MinWindow(8, 5), 2u);  // ceil(7/4)
  EXPECT_EQ(GroupHistory::MinWindow(8, 8), 1u);
  EXPECT_EQ(GroupHistory::MinWindow(2, 2), 1u);
  EXPECT_EQ(GroupHistory::MinWindow(16, 4), 5u);
}

TEST(GroupHistoryTest, WindowEviction) {
  GroupHistory h(4, 2);
  h.Record({0, 1});
  h.Record({1, 2});
  h.Record({2, 3});
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.groups().front(), (std::vector<int>{1, 2}));
  EXPECT_EQ(h.groups().back(), (std::vector<int>{2, 3}));
}

TEST(GroupHistoryTest, NotFrozenBeforeWindowFills) {
  GroupHistory h(4, 3);
  h.Record({0, 1});
  h.Record({0, 1});
  EXPECT_FALSE(h.Full());
  EXPECT_FALSE(h.IsFrozen());  // vacuous: detection disabled until full
}

TEST(GroupHistoryTest, FrozenDetectedOnDisconnectedWindow) {
  GroupHistory h(4, 3);
  h.Record({0, 1});
  h.Record({2, 3});
  h.Record({0, 1});
  EXPECT_TRUE(h.Full());
  EXPECT_TRUE(h.IsFrozen());
}

TEST(GroupHistoryTest, NotFrozenWhenWindowSpansAllWorkers) {
  GroupHistory h(4, 3);
  h.Record({0, 1});
  h.Record({1, 2});
  h.Record({2, 3});
  EXPECT_FALSE(h.IsFrozen());
}

TEST(GroupHistoryTest, FrozenStateFollowsSlidingWindow) {
  GroupHistory h(4, 2);
  h.Record({0, 1});
  h.Record({2, 3});
  EXPECT_TRUE(h.IsFrozen());
  h.Record({1, 2});  // window now {2,3},{1,2}: still missing 0
  EXPECT_TRUE(h.IsFrozen());
  h.Record({0, 3});  // window {1,2},{0,3}: 1-2, 0-3 -> two components
  EXPECT_TRUE(h.IsFrozen());
  h.Record({0, 1});
  h.Record({0, 2});
  h.Record({0, 3});  // window {0,2},{0,3}: 0-2-3 connected, 1 isolated
  EXPECT_TRUE(h.IsFrozen());
}

TEST(GroupHistoryTest, SyncGraphReflectsWindowOnly) {
  GroupHistory h(4, 1);
  h.Record({0, 1, 2, 3});
  EXPECT_TRUE(h.BuildSyncGraph().IsConnected());
  h.Record({0, 1});  // evicts the connecting group
  EXPECT_FALSE(h.BuildSyncGraph().IsConnected());
}

}  // namespace
}  // namespace pr
