#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "runtime/threaded_runtime.h"
#include "sim/sim_training.h"
#include "train/experiment.h"
#include "train/report.h"

namespace pr {
namespace {

// One mid-group crash on worker 5 plus 1% uniform message drops — the
// ISSUE's acceptance scenario. N=8, P=4: the crash kills one group (whose
// survivors must be re-queued) and shrinks the pool to 7.
constexpr int kWorkers = 8;
constexpr int kGroupSize = 4;
constexpr int kCrashWorker = 5;
constexpr int kCrashAfter = 3;
constexpr double kDropProb = 0.01;
constexpr size_t kIterations = 8;

RunConfig ChaosConfig(uint64_t seed, StrategyKind kind) {
  RunConfig config;
  config.strategy.kind = kind;
  config.strategy.group_size = kGroupSize;
  config.run.num_workers = kWorkers;
  config.run.iterations_per_worker = kIterations;
  config.run.model.hidden = {16};
  config.run.batch_size = 16;
  config.run.dataset.num_train = 1024;
  config.run.dataset.num_test = 256;
  config.run.dataset.dim = 16;
  config.run.dataset.num_classes = 4;
  config.run.seed = seed;
  config.run.worker_delay_seconds.assign(kWorkers, 0.001);
  config.run.fault =
      MakeChaosPlan(seed, kCrashWorker, kCrashAfter, kDropProb);
  return config;
}

void CheckFaultMetricNames(const MetricsSnapshot& metrics,
                           const std::string& engine) {
  for (const char* name :
       {"fault.injected_drops", "fault.injected_dups",
        "fault.injected_delays", "fault.evictions", "fault.aborted_groups",
        "fault.retries"}) {
    EXPECT_TRUE(metrics.counters.count(name) != 0)
        << engine << " run report is missing " << name;
  }
}

void CheckReportJson(const std::string& json, const std::string& engine) {
  for (const char* name : {"fault.injected_drops", "fault.evictions",
                           "fault.aborted_groups", "fault.retries"}) {
    EXPECT_NE(json.find(name), std::string::npos)
        << engine << " JSON report is missing " << name;
  }
}

// ---------------------------------------------------------------------------
// Threaded engine.
// ---------------------------------------------------------------------------

void RunThreadedChaos(uint64_t seed, StrategyKind kind) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  ThreadedRunResult result = RunThreaded(ChaosConfig(seed, kind));

  // The run completed (no deadlock) and the controller noticed the death.
  EXPECT_GE(result.metrics.counter("fault.evictions"), 1.0);
  EXPECT_GE(result.metrics.counter("fault.aborted_groups"), 1.0);

  // Survivors finish their budgets; the crashed worker stops short.
  ASSERT_EQ(result.worker_iterations.size(),
            static_cast<size_t>(kWorkers));
  for (int w = 0; w < kWorkers; ++w) {
    if (w == kCrashWorker) {
      EXPECT_LT(result.worker_iterations[static_cast<size_t>(w)],
                kIterations)
          << "crashed worker ran its full budget";
    } else {
      EXPECT_EQ(result.worker_iterations[static_cast<size_t>(w)],
                kIterations)
          << "survivor " << w << " did not finish";
    }
  }

  // The full fault.* family shows up in the metrics and the JSON report.
  CheckFaultMetricNames(result.metrics, "threaded");
  CheckReportJson(RunReportJson(result), "threaded");
}

TEST(ChaosTest, ThreadedSurvivesCrashAndDropsAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    RunThreadedChaos(seed, StrategyKind::kPReduceConst);
  }
}

TEST(ChaosTest, ThreadedDynamicModeSurvivesChaos) {
  RunThreadedChaos(17, StrategyKind::kPReduceDynamic);
}

TEST(ChaosTest, DropsActuallyInjected) {
  // With 1% drops over a thousands-of-messages run, at least one message
  // should statistically be eaten; the counter proves the injector was live.
  double total_drops = 0.0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    ThreadedRunResult result =
        RunThreaded(ChaosConfig(seed, StrategyKind::kPReduceConst));
    total_drops += result.metrics.counter("fault.injected_drops");
  }
  EXPECT_GT(total_drops, 0.0);
}

TEST(ChaosTest, HungWorkerIsEvictedAndReadmitted) {
  RunConfig config = ChaosConfig(3, StrategyKind::kPReduceConst);
  config.run.fault.worker_events.clear();  // keep the drops, swap the crash
  WorkerFaultEvent hang;
  hang.worker = 2;
  hang.kind = WorkerFaultEvent::Kind::kHang;
  hang.after_iterations = 3;
  // Hang well past the eviction horizon (2 * 0.25 s) so the lease lapses.
  hang.hang_seconds =
      config.run.fault.lease_seconds * config.run.fault.missed_threshold +
      0.3;
  config.run.fault.worker_events.push_back(hang);
  ThreadedRunResult result = RunThreaded(config);

  EXPECT_GE(result.metrics.counter("fault.evictions"), 1.0);
  // The hung worker rejoined and still finished its whole budget.
  for (size_t iters : result.worker_iterations) {
    EXPECT_EQ(iters, kIterations);
  }
}

TEST(ChaosTest, SlowdownFaultStretchesCompute) {
  RunConfig slow = ChaosConfig(4, StrategyKind::kPReduceConst);
  slow.run.fault.worker_events.clear();
  slow.run.fault.default_edge = EdgeFaultSpec{};  // isolate the slowdown
  WorkerFaultEvent event;
  event.worker = 1;
  event.kind = WorkerFaultEvent::Kind::kSlowdown;
  event.after_iterations = 0;
  event.slowdown_factor = 8.0;
  slow.run.fault.worker_events.push_back(event);
  ThreadedRunResult result = RunThreaded(slow);

  const double slowed =
      result.metrics.counter("worker.1.compute_seconds");
  const double baseline =
      result.metrics.counter("worker.0.compute_seconds");
  EXPECT_GT(slowed, baseline * 2.0);
  for (size_t iters : result.worker_iterations) {
    EXPECT_EQ(iters, kIterations);
  }
}

// ---------------------------------------------------------------------------
// Simulated engine: same plan, same metric names, virtual time.
// ---------------------------------------------------------------------------

SimRunResult RunSimChaos(uint64_t seed) {
  ExperimentConfig config;
  config.training.num_workers = kWorkers;
  config.training.max_updates = 80;
  config.training.accuracy_threshold = -1.0;
  config.training.seed = seed;
  config.training.fault =
      MakeChaosPlan(seed, kCrashWorker, kCrashAfter, kDropProb);
  config.strategy.kind = StrategyKind::kPReduceConst;
  config.strategy.group_size = kGroupSize;
  return RunExperiment(config);
}

TEST(ChaosTest, SimulatorMirrorsCrashRecoveryAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    SimRunResult result = RunSimChaos(seed);
    // The crashed worker was evicted in virtual time, its group aborted,
    // and the run still made progress afterwards.
    EXPECT_GE(result.metrics.counter("fault.evictions"), 1.0);
    EXPECT_GE(result.metrics.counter("fault.aborted_groups"), 1.0);
    EXPECT_GT(result.updates, 0u);
    CheckFaultMetricNames(result.metrics, "sim");
    CheckReportJson(RunReportJson(result), "sim");
  }
}

// ---------------------------------------------------------------------------
// Controller failover: crash, restart, re-registration recovery.
// ---------------------------------------------------------------------------

// Small learning rate: by the end of these short runs every trajectory sits
// on the same shallow stretch of the loss surface, so an uninterrupted run
// and a failover run agree on the final loss to well under the 1e-3 bar
// even though the group compositions (and, in the threaded engine, the
// timing-dependent group schedule) differ.
constexpr double kFailoverLr = 0.001;

RunConfig ThreadedFailoverConfig(uint64_t seed, bool restart) {
  RunConfig config = ChaosConfig(seed, StrategyKind::kPReduceConst);
  config.run.sgd.learning_rate = kFailoverLr;
  config.run.fault =
      restart ? MakeControllerRestartPlan(seed, /*after_groups=*/2,
                                          /*down_seconds=*/0.3,
                                          /*drop_prob=*/0.0)
              : MakeControllerCrashPlan(seed, /*after_groups=*/2,
                                        /*drop_prob=*/0.0);
  return config;
}

TEST(ChaosTest, ThreadedControllerRestartRecovers) {
  for (uint64_t seed = 1; seed <= 2; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    RunConfig faulty = ThreadedFailoverConfig(seed, /*restart=*/true);
    RunConfig clean = faulty;
    clean.run.fault = FaultPlan{};
    ThreadedRunResult with_failover = RunThreaded(faulty);
    ThreadedRunResult uninterrupted = RunThreaded(clean);

    // The controller died once and came back; at least one parked worker
    // re-registered with the new incarnation.
    EXPECT_EQ(with_failover.metrics.counter("controller.failovers"), 1.0);
    EXPECT_GE(with_failover.metrics.counter("controller.reregistrations"),
              1.0);

    // Recovery is complete: every worker finishes the same budget as an
    // uninterrupted run, and training lands at the same final loss.
    ASSERT_EQ(with_failover.worker_iterations.size(),
              uninterrupted.worker_iterations.size());
    for (size_t w = 0; w < with_failover.worker_iterations.size(); ++w) {
      EXPECT_EQ(with_failover.worker_iterations[w],
                uninterrupted.worker_iterations[w])
          << "worker " << w << " lost iterations to the failover";
    }
    EXPECT_NEAR(with_failover.final_loss, uninterrupted.final_loss, 1e-3);
  }
}

TEST(ChaosTest, ThreadedPermanentControllerCrashFinishesLocally) {
  RunConfig config = ThreadedFailoverConfig(3, /*restart=*/false);
  // Tighten the park-loop valves so the test doesn't spend wall-clock
  // waiting on a controller that is never coming back.
  config.run.fault.max_verdict_wait_seconds = 0.3;
  config.run.fault.max_controller_outage_seconds = 0.3;
  config.run.fault.reregister_backoff_seconds = 0.02;
  config.run.fault.reregister_backoff_max_seconds = 0.1;
  ThreadedRunResult result = RunThreaded(config);

  // No restart ever happened, the severed endpoint ate traffic, and every
  // worker still finished its budget through the local-progress valve.
  EXPECT_EQ(result.metrics.counter("controller.failovers"), 0.0);
  EXPECT_GE(result.metrics.counter("fault.severed_drops"), 1.0);
  for (size_t iters : result.worker_iterations) {
    EXPECT_EQ(iters, kIterations);
  }
}

SimRunResult RunSimFailover(uint64_t seed, bool restart) {
  ExperimentConfig config;
  config.training.num_workers = kWorkers;
  config.training.max_updates = 60;
  config.training.accuracy_threshold = -1.0;
  config.training.seed = seed;
  config.training.sgd.learning_rate = kFailoverLr;
  config.training.fault =
      restart ? MakeControllerRestartPlan(seed, /*after_groups=*/5,
                                          /*down_seconds=*/0.2,
                                          /*drop_prob=*/0.0)
              : MakeControllerCrashPlan(seed, /*after_groups=*/5,
                                        /*drop_prob=*/0.0);
  config.strategy.kind = StrategyKind::kPReduceConst;
  config.strategy.group_size = kGroupSize;
  return RunExperiment(config);
}

TEST(ChaosTest, SimulatorMirrorsControllerRestart) {
  for (uint64_t seed = 1; seed <= 2; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    SimRunResult with_failover = RunSimFailover(seed, /*restart=*/true);

    ExperimentConfig clean_config;
    clean_config.training.num_workers = kWorkers;
    clean_config.training.max_updates = 60;
    clean_config.training.accuracy_threshold = -1.0;
    clean_config.training.seed = seed;
    clean_config.training.sgd.learning_rate = kFailoverLr;
    clean_config.strategy.kind = StrategyKind::kPReduceConst;
    clean_config.strategy.group_size = kGroupSize;
    SimRunResult uninterrupted = RunExperiment(clean_config);

    EXPECT_EQ(with_failover.metrics.counter("controller.failovers"), 1.0);
    EXPECT_GE(with_failover.metrics.counter("controller.reregistrations"),
              1.0);
    // The outage parked signals instead of losing them: the run still
    // reaches the same update budget and the same final loss.
    EXPECT_EQ(with_failover.updates, uninterrupted.updates);
    ASSERT_FALSE(with_failover.curve.empty());
    ASSERT_FALSE(uninterrupted.curve.empty());
    EXPECT_NEAR(with_failover.curve.back().loss,
                uninterrupted.curve.back().loss, 1e-3);
  }
}

TEST(ChaosTest, SimulatorPermanentControllerCrashStallsUpdates) {
  SimRunResult result = RunSimFailover(7, /*restart=*/false);
  // Signals die at the severed endpoint; with nobody to form groups the
  // update counter freezes and the run winds down short of its budget.
  EXPECT_GE(result.metrics.counter("fault.severed_drops"), 1.0);
  EXPECT_EQ(result.metrics.counter("controller.failovers"), 0.0);
  EXPECT_GE(result.updates, 5u);
  EXPECT_LT(result.updates, 60u);
}

TEST(ChaosTest, SimulatorControllerFailoverIsDeterministic) {
  SimRunResult a = RunSimFailover(9, /*restart=*/true);
  SimRunResult b = RunSimFailover(9, /*restart=*/true);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.metrics.counter("controller.reregistrations"),
            b.metrics.counter("controller.reregistrations"));
  EXPECT_EQ(a.metrics.counter("fault.severed_drops"),
            b.metrics.counter("fault.severed_drops"));
}

TEST(ChaosTest, FailoverMetricNamesMatchAcrossEngines) {
  ThreadedRunResult threaded =
      RunThreaded(ThreadedFailoverConfig(1, /*restart=*/true));
  SimRunResult sim = RunSimFailover(1, /*restart=*/true);
  for (const char* name :
       {"controller.failovers", "controller.reregistrations",
        "fault.severed_drops"}) {
    EXPECT_TRUE(threaded.metrics.counters.count(name) != 0)
        << "threaded run report is missing " << name;
    EXPECT_TRUE(sim.metrics.counters.count(name) != 0)
        << "sim run report is missing " << name;
  }
}

// ---------------------------------------------------------------------------
// Compressed chaos: the int8 codec under the same crash + 1% drop plan.
// Compression must change the bytes, not the fault story or the training
// outcome.
// ---------------------------------------------------------------------------

TEST(ChaosTest, ThreadedCompressedChaosKeepsLossParity) {
  // Same shallow-trajectory trick as the failover tests: with a small
  // learning rate both runs sit on the same stretch of the loss surface, so
  // the quantization noise is the only thing that could separate them.
  RunConfig plain = ChaosConfig(2, StrategyKind::kPReduceConst);
  plain.run.sgd.learning_rate = kFailoverLr;
  RunConfig compressed = plain;
  compressed.strategy.compression = CompressionKind::kInt8;

  ThreadedRunResult plain_run = RunThreaded(plain);
  ThreadedRunResult compressed_run = RunThreaded(compressed);

  // The fault machinery is codec-blind: crash noticed, group aborted,
  // survivors finish their budgets.
  EXPECT_GE(compressed_run.metrics.counter("fault.evictions"), 1.0);
  EXPECT_GE(compressed_run.metrics.counter("fault.aborted_groups"), 1.0);
  for (int w = 0; w < kWorkers; ++w) {
    if (w == kCrashWorker) continue;
    EXPECT_EQ(compressed_run.worker_iterations[static_cast<size_t>(w)],
              kIterations)
        << "survivor " << w << " did not finish under compression";
  }

  // The codec was actually in the path: the compress.* family is live and
  // the blobs are ~3.9x smaller than the fp32 they encode.
  const double in = compressed_run.metrics.counter("compress.bytes_in");
  const double out = compressed_run.metrics.counter("compress.bytes_out");
  ASSERT_GT(in, 0.0);
  ASSERT_GT(out, 0.0);
  EXPECT_GE(in / out, 3.0);
  EXPECT_EQ(plain_run.metrics.counter("compress.bytes_in"), 0.0);

  // Loss parity: int8 with error feedback lands within 2% of fp32.
  ASSERT_GT(plain_run.final_loss, 0.0);
  EXPECT_NEAR(compressed_run.final_loss, plain_run.final_loss,
              0.02 * plain_run.final_loss);
}

TEST(ChaosTest, SimulatorCompressedChaosKeepsLossParity) {
  ExperimentConfig config;
  config.training.num_workers = kWorkers;
  config.training.max_updates = 80;
  config.training.accuracy_threshold = -1.0;
  config.training.seed = 5;
  config.training.fault =
      MakeChaosPlan(5, kCrashWorker, kCrashAfter, kDropProb);
  config.strategy.kind = StrategyKind::kPReduceConst;
  config.strategy.group_size = kGroupSize;
  SimRunResult plain_run = RunExperiment(config);

  config.strategy.compression = CompressionKind::kInt8;
  SimRunResult compressed_run = RunExperiment(config);

  // Quantization perturbs values, never virtual time: the schedule, the
  // fault story, and the update budget are identical.
  EXPECT_EQ(compressed_run.updates, plain_run.updates);
  EXPECT_EQ(compressed_run.metrics.counter("fault.evictions"),
            plain_run.metrics.counter("fault.evictions"));

  // The traffic model now counts encoded bytes.
  const double plain_bytes =
      plain_run.metrics.counter("transport.bytes_sent");
  const double compressed_bytes =
      compressed_run.metrics.counter("transport.bytes_sent");
  ASSERT_GT(compressed_bytes, 0.0);
  EXPECT_GE(plain_bytes / compressed_bytes, 3.0);
  EXPECT_GT(compressed_run.metrics.counter("compress.bytes_in"), 0.0);

  // And the training outcome holds parity.
  ASSERT_FALSE(plain_run.curve.empty());
  ASSERT_FALSE(compressed_run.curve.empty());
  const double plain_loss = plain_run.curve.back().loss;
  EXPECT_NEAR(compressed_run.curve.back().loss, plain_loss,
              0.02 * plain_loss);
}

TEST(ChaosTest, SimulatorChaosIsDeterministic) {
  SimRunResult a = RunSimChaos(9);
  SimRunResult b = RunSimChaos(9);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.metrics.counter("fault.evictions"),
            b.metrics.counter("fault.evictions"));
  EXPECT_EQ(a.metrics.counter("fault.aborted_groups"),
            b.metrics.counter("fault.aborted_groups"));
  EXPECT_EQ(a.metrics.counter("fault.retries"),
            b.metrics.counter("fault.retries"));
}

}  // namespace
}  // namespace pr
