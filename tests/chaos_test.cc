#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "runtime/threaded_runtime.h"
#include "sim/sim_training.h"
#include "train/experiment.h"
#include "train/report.h"

namespace pr {
namespace {

// One mid-group crash on worker 5 plus 1% uniform message drops — the
// ISSUE's acceptance scenario. N=8, P=4: the crash kills one group (whose
// survivors must be re-queued) and shrinks the pool to 7.
constexpr int kWorkers = 8;
constexpr int kGroupSize = 4;
constexpr int kCrashWorker = 5;
constexpr int kCrashAfter = 3;
constexpr double kDropProb = 0.01;
constexpr size_t kIterations = 8;

RunConfig ChaosConfig(uint64_t seed, StrategyKind kind) {
  RunConfig config;
  config.strategy.kind = kind;
  config.strategy.group_size = kGroupSize;
  config.run.num_workers = kWorkers;
  config.run.iterations_per_worker = kIterations;
  config.run.model.hidden = {16};
  config.run.batch_size = 16;
  config.run.dataset.num_train = 1024;
  config.run.dataset.num_test = 256;
  config.run.dataset.dim = 16;
  config.run.dataset.num_classes = 4;
  config.run.seed = seed;
  config.run.worker_delay_seconds.assign(kWorkers, 0.001);
  config.run.fault =
      MakeChaosPlan(seed, kCrashWorker, kCrashAfter, kDropProb);
  return config;
}

void CheckFaultMetricNames(const MetricsSnapshot& metrics,
                           const std::string& engine) {
  for (const char* name :
       {"fault.injected_drops", "fault.injected_dups",
        "fault.injected_delays", "fault.evictions", "fault.aborted_groups",
        "fault.retries"}) {
    EXPECT_TRUE(metrics.counters.count(name) != 0)
        << engine << " run report is missing " << name;
  }
}

void CheckReportJson(const std::string& json, const std::string& engine) {
  for (const char* name : {"fault.injected_drops", "fault.evictions",
                           "fault.aborted_groups", "fault.retries"}) {
    EXPECT_NE(json.find(name), std::string::npos)
        << engine << " JSON report is missing " << name;
  }
}

// ---------------------------------------------------------------------------
// Threaded engine.
// ---------------------------------------------------------------------------

void RunThreadedChaos(uint64_t seed, StrategyKind kind) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  ThreadedRunResult result = RunThreaded(ChaosConfig(seed, kind));

  // The run completed (no deadlock) and the controller noticed the death.
  EXPECT_GE(result.metrics.counter("fault.evictions"), 1.0);
  EXPECT_GE(result.metrics.counter("fault.aborted_groups"), 1.0);

  // Survivors finish their budgets; the crashed worker stops short.
  ASSERT_EQ(result.worker_iterations.size(),
            static_cast<size_t>(kWorkers));
  for (int w = 0; w < kWorkers; ++w) {
    if (w == kCrashWorker) {
      EXPECT_LT(result.worker_iterations[static_cast<size_t>(w)],
                kIterations)
          << "crashed worker ran its full budget";
    } else {
      EXPECT_EQ(result.worker_iterations[static_cast<size_t>(w)],
                kIterations)
          << "survivor " << w << " did not finish";
    }
  }

  // The full fault.* family shows up in the metrics and the JSON report.
  CheckFaultMetricNames(result.metrics, "threaded");
  CheckReportJson(RunReportJson(result), "threaded");
}

TEST(ChaosTest, ThreadedSurvivesCrashAndDropsAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    RunThreadedChaos(seed, StrategyKind::kPReduceConst);
  }
}

TEST(ChaosTest, ThreadedDynamicModeSurvivesChaos) {
  RunThreadedChaos(17, StrategyKind::kPReduceDynamic);
}

TEST(ChaosTest, DropsActuallyInjected) {
  // With 1% drops over a thousands-of-messages run, at least one message
  // should statistically be eaten; the counter proves the injector was live.
  double total_drops = 0.0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    ThreadedRunResult result =
        RunThreaded(ChaosConfig(seed, StrategyKind::kPReduceConst));
    total_drops += result.metrics.counter("fault.injected_drops");
  }
  EXPECT_GT(total_drops, 0.0);
}

TEST(ChaosTest, HungWorkerIsEvictedAndReadmitted) {
  RunConfig config = ChaosConfig(3, StrategyKind::kPReduceConst);
  config.run.fault.worker_events.clear();  // keep the drops, swap the crash
  WorkerFaultEvent hang;
  hang.worker = 2;
  hang.kind = WorkerFaultEvent::Kind::kHang;
  hang.after_iterations = 3;
  // Hang well past the eviction horizon (2 * 0.25 s) so the lease lapses.
  hang.hang_seconds =
      config.run.fault.lease_seconds * config.run.fault.missed_threshold +
      0.3;
  config.run.fault.worker_events.push_back(hang);
  ThreadedRunResult result = RunThreaded(config);

  EXPECT_GE(result.metrics.counter("fault.evictions"), 1.0);
  // The hung worker rejoined and still finished its whole budget.
  for (size_t iters : result.worker_iterations) {
    EXPECT_EQ(iters, kIterations);
  }
}

TEST(ChaosTest, SlowdownFaultStretchesCompute) {
  RunConfig slow = ChaosConfig(4, StrategyKind::kPReduceConst);
  slow.run.fault.worker_events.clear();
  slow.run.fault.default_edge = EdgeFaultSpec{};  // isolate the slowdown
  WorkerFaultEvent event;
  event.worker = 1;
  event.kind = WorkerFaultEvent::Kind::kSlowdown;
  event.after_iterations = 0;
  event.slowdown_factor = 8.0;
  slow.run.fault.worker_events.push_back(event);
  ThreadedRunResult result = RunThreaded(slow);

  const double slowed =
      result.metrics.counter("worker.1.compute_seconds");
  const double baseline =
      result.metrics.counter("worker.0.compute_seconds");
  EXPECT_GT(slowed, baseline * 2.0);
  for (size_t iters : result.worker_iterations) {
    EXPECT_EQ(iters, kIterations);
  }
}

// ---------------------------------------------------------------------------
// Simulated engine: same plan, same metric names, virtual time.
// ---------------------------------------------------------------------------

SimRunResult RunSimChaos(uint64_t seed) {
  ExperimentConfig config;
  config.training.num_workers = kWorkers;
  config.training.max_updates = 80;
  config.training.accuracy_threshold = -1.0;
  config.training.seed = seed;
  config.training.fault =
      MakeChaosPlan(seed, kCrashWorker, kCrashAfter, kDropProb);
  config.strategy.kind = StrategyKind::kPReduceConst;
  config.strategy.group_size = kGroupSize;
  return RunExperiment(config);
}

TEST(ChaosTest, SimulatorMirrorsCrashRecoveryAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    SimRunResult result = RunSimChaos(seed);
    // The crashed worker was evicted in virtual time, its group aborted,
    // and the run still made progress afterwards.
    EXPECT_GE(result.metrics.counter("fault.evictions"), 1.0);
    EXPECT_GE(result.metrics.counter("fault.aborted_groups"), 1.0);
    EXPECT_GT(result.updates, 0u);
    CheckFaultMetricNames(result.metrics, "sim");
    CheckReportJson(RunReportJson(result), "sim");
  }
}

TEST(ChaosTest, SimulatorChaosIsDeterministic) {
  SimRunResult a = RunSimChaos(9);
  SimRunResult b = RunSimChaos(9);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.metrics.counter("fault.evictions"),
            b.metrics.counter("fault.evictions"));
  EXPECT_EQ(a.metrics.counter("fault.aborted_groups"),
            b.metrics.counter("fault.aborted_groups"));
  EXPECT_EQ(a.metrics.counter("fault.retries"),
            b.metrics.counter("fault.retries"));
}

}  // namespace
}  // namespace pr
