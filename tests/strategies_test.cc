#include <gtest/gtest.h>

#include <cmath>

#include "train/experiment.h"

namespace pr {
namespace {

/// Small, fast configuration shared across strategy tests.
ExperimentConfig SmallConfig(StrategyKind kind) {
  ExperimentConfig config;
  config.training.num_workers = 4;
  config.training.model.hidden = {16};
  config.training.batch_size = 16;
  SyntheticSpec spec;
  spec.num_train = 1024;
  spec.num_test = 512;
  spec.dim = 16;
  spec.num_classes = 4;
  spec.separation = 3.0;
  config.training.custom_dataset = spec;
  config.training.paper_model = "resnet18";
  config.training.accuracy_threshold = 0.9;
  config.training.max_updates = 6000;
  config.training.eval_every = 20;
  config.training.seed = 3;
  config.strategy.kind = kind;
  config.strategy.group_size = 2;
  config.strategy.backup_workers = 1;
  return config;
}

ExperimentConfig TimingConfig(StrategyKind kind, int n,
                              const HeteroSpec& hetero, size_t updates) {
  ExperimentConfig config;
  config.training.num_workers = n;
  config.training.timing_only = true;
  config.training.timing_updates = updates;
  config.training.hetero = hetero;
  config.training.paper_model = "resnet34";
  config.training.seed = 7;
  config.strategy.kind = kind;
  config.strategy.group_size = 3;
  config.strategy.backup_workers = n / 4 + 1;
  return config;
}

class AllStrategiesTest : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(AllStrategiesTest, ConvergesToThresholdOrReportsHonestly) {
  ExperimentConfig config = SmallConfig(GetParam());
  SimRunResult result = RunExperiment(config);
  EXPECT_GT(result.updates, 0u);
  EXPECT_GT(result.sim_seconds, 0.0);
  // Every strategy except Eager-Reduce should reach 90% on this easy task.
  if (GetParam() != StrategyKind::kEagerReduce) {
    EXPECT_TRUE(result.converged)
        << StrategyKindName(GetParam()) << " final acc "
        << result.final_accuracy;
  }
  EXPECT_GE(result.best_accuracy, 0.2);
}

TEST_P(AllStrategiesTest, DeterministicInSeed) {
  // Timing-only runs are cheap; determinism must hold bit-for-bit.
  ExperimentConfig config =
      TimingConfig(GetParam(), 4, HeteroSpec::Production(), 200);
  SimRunResult a = RunExperiment(config);
  SimRunResult b = RunExperiment(config);
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.updates, b.updates);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllStrategiesTest,
    ::testing::Values(StrategyKind::kAllReduce, StrategyKind::kEagerReduce,
                      StrategyKind::kAdPsgd, StrategyKind::kPsBsp,
                      StrategyKind::kPsAsp, StrategyKind::kPsHete,
                      StrategyKind::kPsBackup, StrategyKind::kPReduceConst,
                      StrategyKind::kPReduceDynamic),
    [](const ::testing::TestParamInfo<StrategyKind>& info) {
      std::string name = StrategyKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(StrategyNamesTest, AllDistinct) {
  std::set<std::string> names;
  for (StrategyKind kind :
       {StrategyKind::kAllReduce, StrategyKind::kEagerReduce,
        StrategyKind::kAdPsgd, StrategyKind::kPsBsp, StrategyKind::kPsAsp,
        StrategyKind::kPsHete, StrategyKind::kPsBackup,
        StrategyKind::kPReduceConst, StrategyKind::kPReduceDynamic}) {
    names.insert(StrategyKindName(kind));
  }
  EXPECT_EQ(names.size(), 9u);
}

// ---------------------------------------------------------------------------
// Hardware-efficiency semantics (timing-only, cheap)
// ---------------------------------------------------------------------------

TEST(AllReduceSemanticsTest, RoundTimeTracksSlowestWorker) {
  // Under GPU sharing (HL=2) the straggler sets the AR round time.
  auto hom = RunExperiment(TimingConfig(StrategyKind::kAllReduce, 4,
                                        HeteroSpec::Homogeneous(), 200));
  auto het = RunExperiment(TimingConfig(StrategyKind::kAllReduce, 4,
                                        HeteroSpec::GpuSharing(2), 200));
  EXPECT_GT(het.per_update_seconds, 1.5 * hom.per_update_seconds);
}

TEST(PReduceSemanticsTest, LessSensitiveToStragglersThanAllReduce) {
  auto ar_h = RunExperiment(TimingConfig(StrategyKind::kAllReduce, 8,
                                         HeteroSpec::GpuSharing(3), 400));
  auto pr_h = RunExperiment(TimingConfig(StrategyKind::kPReduceConst, 8,
                                         HeteroSpec::GpuSharing(3), 400));
  // Normalize per-update times by gradients incorporated per update:
  // AR incorporates N per update, P-Reduce incorporates P.
  const double ar_per_grad = ar_h.per_update_seconds / 8.0;
  const double pr_per_grad = pr_h.per_update_seconds / 3.0;
  EXPECT_LT(pr_per_grad, ar_per_grad);
}

TEST(PReduceSemanticsTest, IdleFractionFarBelowAllReduce) {
  auto ar = RunExperiment(TimingConfig(StrategyKind::kAllReduce, 8,
                                       HeteroSpec::GpuSharing(3), 300));
  auto pred = RunExperiment(TimingConfig(StrategyKind::kPReduceConst, 8,
                                         HeteroSpec::GpuSharing(3), 300));
  EXPECT_LT(pred.mean_idle_fraction, ar.mean_idle_fraction);
}

TEST(PReduceSemanticsTest, UpdateCadenceScalesWithGroupSize) {
  // With fixed worker speed, P-Reduce emits ~N/P updates per iteration
  // span: doubling P should roughly double per-update spacing.
  auto p2 = TimingConfig(StrategyKind::kPReduceConst, 8,
                         HeteroSpec::Homogeneous(), 400);
  p2.strategy.group_size = 2;
  auto p4 = TimingConfig(StrategyKind::kPReduceConst, 8,
                         HeteroSpec::Homogeneous(), 400);
  p4.strategy.group_size = 4;
  auto r2 = RunExperiment(p2);
  auto r4 = RunExperiment(p4);
  EXPECT_GT(r4.per_update_seconds, 1.5 * r2.per_update_seconds);
}

TEST(MomentumAveragingTest, ConvergesWithMergedOptimizerState) {
  ExperimentConfig config = SmallConfig(StrategyKind::kPReduceConst);
  config.strategy.average_momentum = true;
  SimRunResult result = RunExperiment(config);
  EXPECT_TRUE(result.converged);
}

TEST(MomentumAveragingTest, ChangesTrajectory) {
  // Same seed, with vs without momentum merging: trajectories must differ
  // (the knob is actually wired through).
  ExperimentConfig base = SmallConfig(StrategyKind::kPReduceConst);
  base.training.accuracy_threshold = -1.0;
  base.training.max_updates = 60;
  ExperimentConfig merged = base;
  merged.strategy.average_momentum = true;
  SimTraining a(base.training), b(merged.training);
  auto sa = MakeStrategy(base.strategy, &a);
  auto sb = MakeStrategy(merged.strategy, &b);
  sa->Start();
  sb->Start();
  a.engine()->RunUntil([&] { return a.stopped(); });
  b.engine()->RunUntil([&] { return b.stopped(); });
  EXPECT_NE(a.params(0), b.params(0));
}

TEST(ElasticMembershipTest, LeaveAndRejoinKeepsTrainingConverging) {
  ExperimentConfig config = SmallConfig(StrategyKind::kPReduceConst);
  config.training.num_workers = 6;
  config.strategy.group_size = 2;
  // Worker 5 leaves early and rejoins later with its (stale) model.
  config.strategy.churn = {{2.0, 5, /*leave=*/true},
                           {30.0, 5, /*leave=*/false}};
  SimRunResult result = RunExperiment(config);
  EXPECT_TRUE(result.converged) << "final acc " << result.final_accuracy;
}

TEST(ElasticMembershipTest, PermanentDeparturesStillConverge) {
  ExperimentConfig config = SmallConfig(StrategyKind::kPReduceDynamic);
  config.training.num_workers = 6;
  config.strategy.group_size = 2;
  config.strategy.churn = {{1.0, 4, true}, {3.0, 5, true}};
  SimRunResult result = RunExperiment(config);
  EXPECT_TRUE(result.converged);
}

TEST(ElasticMembershipTest, TimingOnlyChurnKeepsCadence) {
  ExperimentConfig config =
      TimingConfig(StrategyKind::kPReduceConst, 6, HeteroSpec::Homogeneous(),
                   400);
  config.strategy.group_size = 2;
  config.strategy.churn = {{10.0, 0, true}, {40.0, 0, false}};
  SimRunResult result = RunExperiment(config);
  EXPECT_EQ(result.updates, 400u);
}

TEST(OverlapSemanticsTest, OverlapSpeedsUpAllReduceOnly) {
  auto run = [](StrategyKind kind, double overlap) {
    ExperimentConfig config =
        TimingConfig(kind, 8, HeteroSpec::Homogeneous(), 200);
    config.training.paper_model = "vgg19";  // comm-heavy
    config.training.cost.gradient_overlap = overlap;
    return RunExperiment(config).sim_seconds;
  };
  // AR aggregates gradients: overlap hides most of its collective.
  EXPECT_LT(run(StrategyKind::kAllReduce, 0.9),
            0.95 * run(StrategyKind::kAllReduce, 0.0));
  // P-Reduce averages models: overlap cannot apply.
  EXPECT_DOUBLE_EQ(run(StrategyKind::kPReduceConst, 0.9),
                   run(StrategyKind::kPReduceConst, 0.0));
}

TEST(PsBackupSemanticsTest, DropsStragglerGradients) {
  auto result = RunExperiment(TimingConfig(StrategyKind::kPsBackup, 8,
                                           HeteroSpec::GpuSharing(3), 400));
  EXPECT_GT(result.wasted_gradients, 0u);
}

TEST(PsBackupSemanticsTest, NoWasteWithoutBackupsInHomogeneousCluster) {
  auto config = TimingConfig(StrategyKind::kPsBackup, 4,
                             HeteroSpec::Homogeneous(), 200);
  config.strategy.backup_workers = 0;
  auto result = RunExperiment(config);
  EXPECT_EQ(result.wasted_gradients, 0u);
}

TEST(PReduceSemanticsTest, FrozenAvoidanceStatsSurface) {
  auto config = TimingConfig(StrategyKind::kPReduceConst, 4,
                             HeteroSpec::Homogeneous(), 500);
  config.strategy.group_size = 2;
  auto result = RunExperiment(config);
  // Stats plumbed through (bridging may or may not trigger here; the
  // adversarial case is covered in controller_test).
  EXPECT_GE(result.frozen_detections, 0u);
}

// ---------------------------------------------------------------------------
// Statistical-efficiency semantics
// ---------------------------------------------------------------------------

TEST(StatisticalSemanticsTest, AsyncNeedsMoreUpdatesThanBsp) {
  // ASP counts one update per worker push, BSP one per N-gradient round;
  // per gradient consumed, staleness costs ASP efficiency. Compare
  // gradient counts to convergence: ASP >= BSP's N * rounds is not
  // guaranteed on an easy task, but ASP should need at least as many
  // gradients.
  auto bsp = RunExperiment(SmallConfig(StrategyKind::kPsBsp));
  auto asp = RunExperiment(SmallConfig(StrategyKind::kPsAsp));
  ASSERT_TRUE(bsp.converged);
  ASSERT_TRUE(asp.converged);
  // ASP counts one update per worker push; BSP one per N-gradient round.
  EXPECT_GT(asp.updates, bsp.updates);
}

TEST(StatisticalSemanticsTest, EagerReducePlateausBelowStrictThreshold) {
  ExperimentConfig config = SmallConfig(StrategyKind::kEagerReduce);
  config.training.hetero = HeteroSpec::GpuSharing(2);
  config.training.accuracy_threshold = 0.93;
  config.training.max_updates = 4000;
  auto er = RunExperiment(config);

  ExperimentConfig ar_config = SmallConfig(StrategyKind::kAllReduce);
  ar_config.training.hetero = HeteroSpec::GpuSharing(2);
  ar_config.training.accuracy_threshold = 0.93;
  ar_config.training.max_updates = 4000;
  auto ar = RunExperiment(ar_config);

  EXPECT_TRUE(ar.converged);
  EXPECT_LT(er.best_accuracy, ar.best_accuracy + 1e-9);
}

TEST(StatisticalSemanticsTest, PReduceReplicasReachConsensusAccuracy) {
  // After convergence, the averaged model must actually be good — the
  // consensus across replicas is what Alg. 2 line 8 evaluates.
  auto result = RunExperiment(SmallConfig(StrategyKind::kPReduceConst));
  ASSERT_TRUE(result.converged);
  EXPECT_GE(result.final_accuracy, 0.9);
}

TEST(StatisticalSemanticsTest, DynamicWeightsHelpUnderSevereStaleness) {
  // With a severe straggler, DYN should need no more updates than CON
  // (weighted aggregation damps the stale model).
  HeteroSpec severe;
  severe.kind = HeteroSpec::Kind::kGpuSharing;
  severe.sharing_level = 2;

  ExperimentConfig con = SmallConfig(StrategyKind::kPReduceConst);
  con.training.hetero = severe;
  con.training.seed = 13;
  ExperimentConfig dyn = SmallConfig(StrategyKind::kPReduceDynamic);
  dyn.training.hetero = severe;
  dyn.training.seed = 13;

  auto rc = RunExperiment(con);
  auto rd = RunExperiment(dyn);
  ASSERT_TRUE(rc.converged);
  ASSERT_TRUE(rd.converged);
  // The effect is statistical at this tiny scale; assert DYN stays in the
  // same ballpark (the directional comparison is benchmarked in
  // bench_fig5_staleness / bench_ablation_dynamic over seeds).
  EXPECT_LT(static_cast<double>(rd.updates),
            2.0 * static_cast<double>(rc.updates));
}

TEST(StatisticalSemanticsTest, AllReduceMatchesSequentialLargeBatchSgd) {
  // AR with N workers is equivalent to one worker with an N-fold batch: all
  // replicas stay identical. Verify replicas remain equal by checking the
  // evaluated accuracy equals a single replica's accuracy.
  ExperimentConfig config = SmallConfig(StrategyKind::kAllReduce);
  config.training.max_updates = 50;
  config.training.accuracy_threshold = -1.0;
  SimTraining ctx(config.training);
  auto strategy = MakeStrategy(config.strategy, &ctx);
  strategy->Start();
  ctx.engine()->RunUntil([&] { return ctx.stopped(); });
  for (int w = 1; w < 4; ++w) {
    EXPECT_EQ(ctx.params(0), ctx.params(w)) << "replica " << w << " diverged";
  }
}

TEST(StatisticalSemanticsTest, PReduceGroupMembersLeaveWithEqualModels) {
  ExperimentConfig config = SmallConfig(StrategyKind::kPReduceConst);
  config.strategy.group_size = 4;  // P = N: every reduce merges everyone
  config.training.max_updates = 9;
  config.training.accuracy_threshold = -1.0;
  SimTraining ctx(config.training);
  auto strategy = MakeStrategy(config.strategy, &ctx);
  strategy->Start();
  ctx.engine()->RunUntil([&] { return ctx.stopped(); });
  // With P = N the last completed reduce synchronized all replicas; any
  // replicas that have since computed diverge, so compare only pairs that
  // are in sync at the stop point is fragile. Instead check the spread is
  // bounded (all within one local step of each other).
  double spread = 0.0;
  for (size_t i = 0; i < ctx.num_params(); ++i) {
    float lo = ctx.params(0)[i], hi = lo;
    for (int w = 1; w < 4; ++w) {
      lo = std::min(lo, ctx.params(w)[i]);
      hi = std::max(hi, ctx.params(w)[i]);
    }
    spread = std::max(spread, static_cast<double>(hi - lo));
  }
  EXPECT_LT(spread, 1.0);
}

TEST(StatisticalSemanticsTest, PsHeteDampsStaleUpdates) {
  // Under strong heterogeneity, HETE (damped stale gradients) should reach
  // the threshold in no more updates than ASP, seed-for-seed, on average.
  int hete_wins = 0;
  for (uint64_t seed : {3u, 4u, 5u}) {
    ExperimentConfig asp = SmallConfig(StrategyKind::kPsAsp);
    asp.training.hetero = HeteroSpec::GpuSharing(2);
    asp.training.seed = seed;
    ExperimentConfig hete = SmallConfig(StrategyKind::kPsHete);
    hete.training.hetero = HeteroSpec::GpuSharing(2);
    hete.training.seed = seed;
    auto ra = RunExperiment(asp);
    auto rh = RunExperiment(hete);
    if (rh.converged &&
        (!ra.converged || rh.updates <= ra.updates * 12 / 10)) {
      ++hete_wins;
    }
  }
  EXPECT_GE(hete_wins, 2);
}

}  // namespace
}  // namespace pr
