#include "comm/socket_transport.h"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "runtime/threaded_runtime.h"
#include "runtime/threaded_strategy.h"
#include "runtime/worker_runtime.h"
#include "train/experiment.h"

namespace pr {
namespace {

// Short rendezvous directory (sockaddr_un paths are ~100 bytes).
struct SockDir {
  SockDir() {
    char tmpl[] = "/tmp/prsockXXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~SockDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

Envelope MakeEnvelope(NodeId from, uint64_t tag, int kind,
                      std::vector<int64_t> ints, std::vector<float> payload) {
  Envelope env;
  env.from = from;
  env.tag = tag;
  env.kind = kind;
  env.ints = std::move(ints);
  env.payload = Buffer::FromVector(std::move(payload));
  return env;
}

void PairSendRecv(bool tcp) {
  SockDir dir;
  SocketConfig config;
  config.dir = dir.path;
  config.tcp = tcp;
  SocketTransport a(config, {0}, 2);
  SocketTransport b(config, {1}, 2);
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());

  // Remote delivery with a payload.
  ASSERT_TRUE(
      a.Send(1, MakeEnvelope(0, 7, 2, {3, 4}, {1.0f, 2.0f, 3.0f})).ok());
  std::optional<Envelope> got = b.RecvFor(1, 5.0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->from, 0);
  EXPECT_EQ(got->tag, 7u);
  EXPECT_EQ(got->kind, 2);
  EXPECT_EQ(got->ints, (std::vector<int64_t>{3, 4}));
  ASSERT_EQ(got->payload.size(), 3u);
  EXPECT_EQ(got->payload.data()[2], 3.0f);
  EXPECT_GE(b.frames_received(), 1u);
  EXPECT_GE(a.dials(), 1u);

  // Local (same-process) delivery never touches a socket.
  const uint64_t dials_before = b.dials();
  ASSERT_TRUE(b.Send(1, MakeEnvelope(1, 8, 1, {}, {})).ok());
  got = b.RecvFor(1, 5.0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->tag, 8u);
  EXPECT_EQ(b.dials(), dials_before);

  a.Shutdown();
  b.Shutdown();
}

TEST(SocketTransportTest, UnixPairSendRecv) { PairSendRecv(/*tcp=*/false); }

TEST(SocketTransportTest, TcpPairSendRecv) { PairSendRecv(/*tcp=*/true); }

TEST(SocketTransportTest, SendToAbsentPeerDropsSilently) {
  SockDir dir;
  SocketConfig config;
  config.dir = dir.path;
  config.connect_window_seconds = 0.05;  // nobody is coming
  SocketTransport a(config, {0}, 2);
  ASSERT_TRUE(a.Start().ok());

  // A dead host is silent, not an error: the send succeeds and vanishes.
  EXPECT_TRUE(a.Send(1, MakeEnvelope(0, 1, 0, {}, {1.0f})).ok());
  EXPECT_EQ(a.send_drops(), 1u);
  // Subsequent sends are suppressed by the backoff window, still silent.
  EXPECT_TRUE(a.Send(1, MakeEnvelope(0, 2, 0, {}, {})).ok());
  EXPECT_EQ(a.send_drops(), 2u);
  a.Shutdown();
}

TEST(SocketTransportTest, ReconnectsAfterPeerRestart) {
  SockDir dir;
  SocketConfig config;
  config.dir = dir.path;
  config.redial_window_seconds = 0.05;

  SocketTransport a(config, {0}, 2);
  ASSERT_TRUE(a.Start().ok());
  auto b = std::make_unique<SocketTransport>(config, std::vector<NodeId>{1}, 2);
  ASSERT_TRUE(b->Start().ok());
  ASSERT_TRUE(a.Send(1, MakeEnvelope(0, 1, 0, {}, {})).ok());
  ASSERT_TRUE(b->RecvFor(1, 5.0).has_value());

  // Peer dies: its listener and established connection go away.
  b->Shutdown();
  b.reset();

  // The peer comes back (same address). The connection manager must redial
  // within its bounded backoff and deliver again; sends in the gap are
  // dropped silently.
  b = std::make_unique<SocketTransport>(config, std::vector<NodeId>{1}, 2);
  ASSERT_TRUE(b->Start().ok());
  bool delivered = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  uint64_t tag = 100;
  while (!delivered && std::chrono::steady_clock::now() < deadline) {
    ASSERT_TRUE(a.Send(1, MakeEnvelope(0, tag++, 0, {}, {})).ok());
    delivered = b->TryRecv(1).has_value();
    if (!delivered) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_TRUE(delivered) << "no frame arrived after the peer restarted";
  EXPECT_GE(a.reconnects(), 1u);
  a.Shutdown();
  b->Shutdown();
}

// ---------------------------------------------------------------------------
// Full runs over the socket fabric: the threaded runtime with every message
// crossing a real socket.
// ---------------------------------------------------------------------------

RunConfig SmallConfig(StrategyKind kind) {
  RunConfig config;
  config.strategy.kind = kind;
  config.strategy.group_size = 2;
  config.run.num_workers = 3;
  config.run.iterations_per_worker = 6;
  config.run.model.hidden = {8};
  config.run.batch_size = 16;
  config.run.dataset.num_train = 512;
  config.run.dataset.num_test = 128;
  config.run.dataset.dim = 8;
  config.run.dataset.num_classes = 3;
  config.run.seed = 11;
  return config;
}

ThreadedRunResult RunOverSockets(const RunConfig& config) {
  SockDir dir;
  SocketConfig socket_config;
  socket_config.dir = dir.path;
  SocketFabric fabric(socket_config, config.run.num_workers + 1);
  EXPECT_TRUE(fabric.Start().ok());
  std::unique_ptr<ThreadedStrategy> strategy =
      MakeThreadedStrategy(config.strategy);
  WorkerRuntime runtime(config.strategy, config.run);
  runtime.UseExternalFabric(&fabric);
  return runtime.Run(strategy.get());
}

template <typename Map>
std::set<std::string> Names(const Map& map) {
  std::set<std::string> names;
  for (const auto& [name, value] : map) names.insert(name);
  return names;
}

TEST(SocketFabricTest, ConMetricNamesMatchInProcExactly) {
  const RunConfig config = SmallConfig(StrategyKind::kPReduceConst);
  ThreadedRunResult socket_run = RunOverSockets(config);
  ThreadedRunResult inproc_run = RunThreaded(config);

  EXPECT_EQ(socket_run.strategy, "CON");
  EXPECT_GT(socket_run.group_reduces, 0u);
  // The engines must publish the *same* instrument set — not a subset:
  // anything socket-specific belongs in SocketTransport's own diagnostics,
  // not the metric namespace.
  EXPECT_EQ(Names(socket_run.metrics.counters),
            Names(inproc_run.metrics.counters));
  EXPECT_EQ(Names(socket_run.metrics.gauges),
            Names(inproc_run.metrics.gauges));
  EXPECT_EQ(Names(socket_run.metrics.histograms),
            Names(inproc_run.metrics.histograms));
  EXPECT_TRUE(socket_run.metrics.counters.count("transport.stash_purged"));
}

TEST(SocketFabricTest, ConSharedFamiliesPresentInSimToo) {
  const RunConfig config = SmallConfig(StrategyKind::kPReduceConst);
  ThreadedRunResult socket_run = RunOverSockets(config);

  ExperimentConfig sim_config;
  sim_config.training.num_workers = 3;
  sim_config.training.max_updates = 20;
  sim_config.training.accuracy_threshold = -1.0;
  sim_config.training.seed = 11;
  sim_config.strategy.kind = StrategyKind::kPReduceConst;
  sim_config.strategy.group_size = 2;
  SimRunResult sim_run = RunExperiment(sim_config);

  for (const char* name :
       {"transport.bytes_sent", "transport.bytes_received",
        "transport.payload_copies", "transport.stash_purged", "run.updates"}) {
    EXPECT_TRUE(socket_run.metrics.counters.count(name))
        << "socket run is missing " << name;
    EXPECT_TRUE(sim_run.metrics.counters.count(name))
        << "sim run is missing " << name;
  }
}

TEST(SocketFabricTest, AllReduceIsBitwiseIdenticalAndZeroCopy) {
  const RunConfig config = SmallConfig(StrategyKind::kAllReduce);
  ThreadedRunResult socket_run = RunOverSockets(config);
  ThreadedRunResult inproc_run = RunThreaded(config);

  // All-Reduce is deterministic (no timing-dependent grouping), so moving
  // the bytes through sockets must change nothing at all.
  ASSERT_EQ(socket_run.final_params.size(), inproc_run.final_params.size());
  ASSERT_FALSE(socket_run.final_params.empty());
  EXPECT_EQ(std::memcmp(socket_run.final_params.data(),
                        inproc_run.final_params.data(),
                        socket_run.final_params.size() * sizeof(float)),
            0);

  // And with the same number of payload materializations: the wire path
  // adds zero intermediate copies (writev on send, single-allocation recv).
  EXPECT_EQ(socket_run.metrics.counter("transport.payload_copies"),
            inproc_run.metrics.counter("transport.payload_copies"));
  EXPECT_EQ(Names(socket_run.metrics.counters),
            Names(inproc_run.metrics.counters));
}

TEST(SocketFabricTest, ChaosSuiteRunsUnchangedOverSockets) {
  RunConfig config = SmallConfig(StrategyKind::kPReduceConst);
  config.run.num_workers = 6;
  config.strategy.group_size = 3;
  config.run.iterations_per_worker = 8;
  config.run.worker_delay_seconds.assign(6, 0.001);
  config.run.fault = MakeChaosPlan(config.run.seed, /*crash_worker=*/4,
                                   /*crash_after_iterations=*/2,
                                   /*drop_prob=*/0.01);
  ThreadedRunResult result = RunOverSockets(config);

  // The FaultyTransport decorator injected its faults over the socket
  // fabric and the recovery protocol reacted — same events, same names.
  EXPECT_GE(result.metrics.counter("fault.evictions"), 1.0);
  EXPECT_GE(result.metrics.counter("fault.aborted_groups"), 0.0);
  for (const char* name :
       {"fault.injected_drops", "fault.injected_dups", "fault.injected_delays",
        "fault.evictions", "fault.aborted_groups", "fault.retries"}) {
    EXPECT_TRUE(result.metrics.counters.count(name))
        << "socket chaos run is missing " << name;
  }
  ASSERT_EQ(result.worker_iterations.size(), 6u);
  EXPECT_LT(result.worker_iterations[4], 8u) << "crashed worker kept going";
  for (size_t w = 0; w < 6; ++w) {
    if (w == 4) continue;
    EXPECT_EQ(result.worker_iterations[w], 8u)
        << "surviving worker " << w << " lost iterations";
  }
}

TEST(JitteredBackoffTest, DeterministicBoundedAndDesynchronized) {
  // Pure in its inputs: same (base, jitter, salt, attempt) -> same delay.
  EXPECT_EQ(JitteredBackoff(0.1, 0.5, 7, 3), JitteredBackoff(0.1, 0.5, 7, 3));
  // Degenerate knobs: no base means no sleep, no jitter means exact base.
  EXPECT_EQ(JitteredBackoff(0.0, 0.5, 1, 1), 0.0);
  EXPECT_EQ(JitteredBackoff(-1.0, 0.5, 1, 1), 0.0);
  EXPECT_EQ(JitteredBackoff(0.25, 0.0, 9, 2), 0.25);
  // Every draw stays inside base * [1 - j, 1 + j).
  for (uint64_t salt = 0; salt < 16; ++salt) {
    for (uint64_t attempt = 0; attempt < 16; ++attempt) {
      const double d = JitteredBackoff(0.2, 0.5, salt, attempt);
      EXPECT_GE(d, 0.2 * 0.5);
      EXPECT_LT(d, 0.2 * 1.5);
    }
  }
  // Distinct salts desynchronize identical schedules (the thundering-herd
  // fix): two peers redialing the same dead host must not sleep in lockstep.
  int distinct = 0;
  for (uint64_t salt = 1; salt <= 8; ++salt) {
    if (JitteredBackoff(0.2, 0.5, salt, 0) !=
        JitteredBackoff(0.2, 0.5, 0, 0)) {
      ++distinct;
    }
  }
  EXPECT_GE(distinct, 7);
  // Successive attempts of one schedule also move.
  EXPECT_NE(JitteredBackoff(0.2, 0.5, 3, 0), JitteredBackoff(0.2, 0.5, 3, 1));
}

TEST(SocketFabricTest, ControllerFailoverRunsUnchangedOverSockets) {
  RunConfig config = SmallConfig(StrategyKind::kPReduceConst);
  config.run.num_workers = 4;
  config.strategy.group_size = 2;
  config.run.iterations_per_worker = 8;
  config.run.sgd.learning_rate = 0.001;
  config.run.worker_delay_seconds.assign(4, 0.001);
  config.run.fault = MakeControllerRestartPlan(
      config.run.seed, /*after_groups=*/2, /*down_seconds=*/0.3,
      /*drop_prob=*/0.0);
  config.run.fault.reregister_backoff_seconds = 0.02;
  ThreadedRunResult result = RunOverSockets(config);

  EXPECT_EQ(result.metrics.counter("controller.failovers"), 1.0);
  EXPECT_GE(result.metrics.counter("controller.reregistrations"), 1.0);
  for (size_t w = 0; w < result.worker_iterations.size(); ++w) {
    EXPECT_EQ(result.worker_iterations[w], 8u)
        << "worker " << w << " lost iterations to the failover";
  }
}

}  // namespace
}  // namespace pr
