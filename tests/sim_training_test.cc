#include <gtest/gtest.h>

#include <cmath>

#include "sim/sim_training.h"

namespace pr {
namespace {

SimTrainingOptions SmallOptions() {
  SimTrainingOptions opt;
  opt.num_workers = 4;
  opt.model.hidden = {16};
  opt.batch_size = 16;
  SyntheticSpec spec;
  spec.num_train = 512;
  spec.num_test = 128;
  spec.dim = 16;
  spec.num_classes = 4;
  opt.custom_dataset = spec;
  opt.eval_every = 10;
  opt.max_updates = 1000;
  opt.seed = 2;
  return opt;
}

TEST(SimTrainingTest, ReplicasStartIdentical) {
  SimTraining ctx(SmallOptions());
  for (int w = 1; w < ctx.num_workers(); ++w) {
    EXPECT_EQ(ctx.params(0), ctx.params(w));
  }
}

TEST(SimTrainingTest, ComputeTimesArePositiveAndHeterogeneityAware) {
  SimTrainingOptions opt = SmallOptions();
  opt.hetero = HeteroSpec::GpuSharing(2);
  SimTraining ctx(opt);
  double shared = 0.0, dedicated = 0.0;
  for (int i = 0; i < 500; ++i) {
    shared += ctx.SampleComputeSeconds(0);     // worker 0 shares a GPU
    dedicated += ctx.SampleComputeSeconds(3);  // worker 3 is dedicated
  }
  EXPECT_GT(shared, 1.5 * dedicated);
}

TEST(SimTrainingTest, GradientAtSnapshotUsesSnapshotNotCurrent) {
  SimTraining ctx(SmallOptions());
  ctx.TakeSnapshot(0);
  // Perturb current params massively; snapshot gradient must be unaffected.
  std::vector<float> grad_before;
  // Note: the sampler advances per call, so compare via two contexts with
  // the same seed instead.
  SimTraining ctx2(SmallOptions());
  ctx2.TakeSnapshot(0);
  for (auto& p : ctx2.params(0)) p += 100.0f;
  std::vector<float> g1, g2;
  ctx.GradientAtSnapshot(0, &g1);
  ctx2.GradientAtSnapshot(0, &g2);
  EXPECT_EQ(g1, g2);
  (void)grad_before;
}

TEST(SimTrainingTest, LocalStepChangesOnlyThatWorker) {
  SimTraining ctx(SmallOptions());
  std::vector<float> grad(ctx.num_params(), 0.1f);
  const auto before1 = ctx.params(1);
  ctx.LocalStep(0, grad.data());
  EXPECT_NE(ctx.params(0), before1);
  EXPECT_EQ(ctx.params(1), before1);
}

TEST(SimTrainingTest, RecordUpdateCountsAndIntervals) {
  SimTraining ctx(SmallOptions());
  ctx.engine()->ScheduleAt(1.0, [&] { ctx.RecordUpdate(); });
  ctx.engine()->ScheduleAt(3.0, [&] { ctx.RecordUpdate(); });
  while (ctx.engine()->RunOne()) {
  }
  EXPECT_EQ(ctx.updates(), 2u);
  SimRunResult result = ctx.BuildResult("test");
  ASSERT_EQ(result.update_intervals.size(), 2u);
  EXPECT_DOUBLE_EQ(result.update_intervals.samples()[0], 1.0);
  EXPECT_DOUBLE_EQ(result.update_intervals.samples()[1], 2.0);
  EXPECT_DOUBLE_EQ(result.per_update_seconds, 1.5);
}

TEST(SimTrainingTest, StopsAtMaxUpdates) {
  SimTrainingOptions opt = SmallOptions();
  opt.max_updates = 5;
  opt.accuracy_threshold = 2.0;  // unreachable
  SimTraining ctx(opt);
  for (int i = 0; i < 10; ++i) ctx.RecordUpdate();
  EXPECT_TRUE(ctx.stopped());
}

TEST(SimTrainingTest, TimingOnlySkipsMathAndStopsAtBudget) {
  SimTrainingOptions opt = SmallOptions();
  opt.timing_only = true;
  opt.timing_updates = 7;
  SimTraining ctx(opt);
  std::vector<float> grad;
  const float loss = ctx.GradientAtSnapshot(0, &grad);
  EXPECT_EQ(loss, 0.0f);
  for (float g : grad) EXPECT_EQ(g, 0.0f);
  for (int i = 0; i < 7; ++i) ctx.RecordUpdate();
  EXPECT_TRUE(ctx.stopped());
  SimRunResult result = ctx.BuildResult("t");
  EXPECT_EQ(result.updates, 7u);
  EXPECT_TRUE(result.curve.empty());
}

TEST(SimTrainingTest, ConvergenceStopsAtThreshold) {
  SimTrainingOptions opt = SmallOptions();
  opt.accuracy_threshold = -1.0;  // disabled
  SimTraining ctx(opt);
  ctx.EvaluateNow();
  EXPECT_FALSE(ctx.stopped());

  SimTrainingOptions opt2 = SmallOptions();
  opt2.accuracy_threshold = 0.01;  // trivially reached even untrained
  SimTraining ctx2(opt2);
  ctx2.EvaluateNow();
  EXPECT_TRUE(ctx2.stopped());
  SimRunResult r = ctx2.BuildResult("t");
  EXPECT_TRUE(r.converged);
}

TEST(SimTrainingTest, EvalProviderOverridesDefault) {
  SimTraining ctx(SmallOptions());
  // Provider hands back a zero model: accuracy should be chance-like and
  // loss near log(num_classes), regardless of worker replicas.
  std::vector<float> zeros(ctx.num_params(), 0.0f);
  ctx.SetEvalProvider([&]() { return zeros.data(); });
  ctx.EvaluateNow();
  SimRunResult r = ctx.BuildResult("t");
  ASSERT_FALSE(r.curve.empty());
  EXPECT_NEAR(r.curve.back().loss, std::log(4.0), 0.05);
}

TEST(SimTrainingTest, WaitAccountingAccumulates) {
  SimTraining ctx(SmallOptions());
  ctx.engine()->ScheduleAt(1.0, [&] { ctx.MarkWaitStart(0); });
  ctx.engine()->ScheduleAt(4.0, [&] { ctx.MarkWaitEnd(0); });
  while (ctx.engine()->RunOne()) {
  }
  SimRunResult r = ctx.BuildResult("t");
  // Worker 0 waited 3 of 4 seconds; others none. Mean = 0.75/4.
  EXPECT_NEAR(r.mean_idle_fraction, 0.75 / 4.0, 1e-9);
}

TEST(SimTrainingTest, UnfinishedWaitCountsUpToEnd) {
  SimTraining ctx(SmallOptions());
  ctx.engine()->ScheduleAt(2.0, [&] { ctx.MarkWaitStart(1); });
  ctx.engine()->ScheduleAt(4.0, [] {});
  while (ctx.engine()->RunOne()) {
  }
  SimRunResult r = ctx.BuildResult("t");
  EXPECT_NEAR(r.mean_idle_fraction, (2.0 / 4.0) / 4.0, 1e-9);
}

TEST(SimTrainingTest, IterationCounters) {
  SimTraining ctx(SmallOptions());
  EXPECT_EQ(ctx.iteration(2), 0);
  ctx.increment_iteration(2);
  ctx.increment_iteration(2);
  EXPECT_EQ(ctx.iteration(2), 2);
  ctx.set_iteration(2, 10);
  EXPECT_EQ(ctx.iteration(2), 10);
  EXPECT_EQ(ctx.iteration(1), 0);
}

TEST(SimTrainingTest, LrDecayAppliedByUpdateCount) {
  SimTrainingOptions opt = SmallOptions();
  opt.lr_decay.enabled = true;
  opt.lr_decay.factor = 0.1;
  opt.lr_decay.every_updates = 2;
  opt.sgd.learning_rate = 1.0;
  opt.sgd.momentum = 0.0;
  opt.sgd.weight_decay = 0.0;
  opt.accuracy_threshold = -1.0;
  SimTraining ctx(opt);

  std::vector<float> grad(ctx.num_params(), 1.0f);
  const float before = ctx.params(0)[0];
  ctx.LocalStep(0, grad.data());
  EXPECT_NEAR(ctx.params(0)[0], before - 1.0f, 1e-5);

  ctx.RecordUpdate();
  ctx.RecordUpdate();  // now stage 1 -> lr 0.1
  const float mid = ctx.params(0)[0];
  ctx.LocalStep(0, grad.data());
  EXPECT_NEAR(ctx.params(0)[0], mid - 0.1f, 1e-5);
}

}  // namespace
}  // namespace pr
