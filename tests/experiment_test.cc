#include <gtest/gtest.h>

#include "train/experiment.h"

namespace pr {
namespace {

ExperimentConfig TinyConfig() {
  ExperimentConfig config;
  config.training.num_workers = 4;
  config.training.timing_only = true;
  config.training.timing_updates = 100;
  config.training.seed = 1;
  config.strategy.kind = StrategyKind::kPReduceConst;
  config.strategy.group_size = 2;
  return config;
}

TEST(ExperimentTest, RunsToUpdateBudget) {
  SimRunResult result = RunExperiment(TinyConfig());
  EXPECT_EQ(result.updates, 100u);
  EXPECT_EQ(result.strategy, "CON");
  EXPECT_GT(result.sim_seconds, 0.0);
}

TEST(ExperimentTest, PerUpdateIsTimeOverUpdates) {
  SimRunResult result = RunExperiment(TinyConfig());
  EXPECT_NEAR(result.per_update_seconds,
              result.sim_seconds / static_cast<double>(result.updates),
              1e-12);
}

TEST(ExperimentTest, MaxSimSecondsCapsRun) {
  ExperimentConfig config = TinyConfig();
  config.training.timing_updates = 1000000;
  config.training.max_sim_seconds = 5.0;
  SimRunResult result = RunExperiment(config);
  EXPECT_LE(result.sim_seconds, 5.0 + 1.0);  // last event may land past cap
  EXPECT_LT(result.updates, 1000000u);
}

TEST(ExperimentTest, SeedsChangeTimingUnderHeterogeneity) {
  ExperimentConfig config = TinyConfig();
  config.training.hetero = HeteroSpec::Production();
  SimRunResult a = RunExperiment(config);
  config.training.seed = 2;
  SimRunResult b = RunExperiment(config);
  EXPECT_NE(a.sim_seconds, b.sim_seconds);
}

TEST(ExperimentSeedsTest, AggregatesAcrossSeeds) {
  ExperimentConfig config = TinyConfig();
  config.training.hetero = HeteroSpec::Production();
  AggregateResult agg = RunExperimentSeeds(config, 3);
  EXPECT_EQ(agg.num_runs, 3u);
  EXPECT_EQ(agg.runs.size(), 3u);
  EXPECT_EQ(agg.strategy, "CON");
  double mean = 0.0;
  for (const auto& run : agg.runs) mean += run.sim_seconds / 3.0;
  EXPECT_NEAR(agg.mean_run_time, mean, 1e-9);
}

TEST(ExperimentSeedsTest, ConvergenceCounting) {
  ExperimentConfig config;
  config.training.num_workers = 4;
  config.training.model.hidden = {16};
  SyntheticSpec spec;
  spec.num_train = 512;
  spec.num_test = 256;
  spec.dim = 16;
  spec.num_classes = 2;
  spec.separation = 5.0;
  config.training.custom_dataset = spec;
  config.training.accuracy_threshold = 0.85;
  config.training.max_updates = 3000;
  config.training.eval_every = 10;
  config.strategy.kind = StrategyKind::kAllReduce;
  AggregateResult agg = RunExperimentSeeds(config, 2);
  EXPECT_TRUE(agg.AllConverged());
  EXPECT_GT(agg.mean_final_accuracy, 0.8);
}

}  // namespace
}  // namespace pr
