#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/aggregate.h"
#include "core/weight_generator.h"

namespace pr {
namespace {

TEST(AggregateTest, WeightedAverageKnownValues) {
  std::vector<float> a = {1.0f, 2.0f};
  std::vector<float> b = {3.0f, 6.0f};
  std::vector<float> out(2);
  WeightedAverage({a.data(), b.data()}, {0.25, 0.75}, 2, out.data());
  EXPECT_FLOAT_EQ(out[0], 0.25f * 1 + 0.75f * 3);
  EXPECT_FLOAT_EQ(out[1], 0.25f * 2 + 0.75f * 6);
}

TEST(AggregateTest, SingleInputIdentityWeight) {
  std::vector<float> a = {5.0f, -2.0f};
  std::vector<float> out(2);
  WeightedAverage({a.data()}, {1.0}, 2, out.data());
  EXPECT_EQ(out, a);
}

TEST(AggregateTest, InPlaceAllMembersGetSameResult) {
  Rng rng(1);
  std::vector<std::vector<float>> models(3, std::vector<float>(10));
  for (auto& m : models) {
    for (auto& x : m) x = static_cast<float>(rng.Normal(0.0, 1.0));
  }
  auto originals = models;

  std::vector<float*> ptrs;
  for (auto& m : models) ptrs.push_back(m.data());
  WeightedAverageInPlace(ptrs, ConstantWeights(3), 10);

  for (size_t i = 0; i < 10; ++i) {
    const float expected =
        (originals[0][i] + originals[1][i] + originals[2][i]) / 3.0f;
    for (const auto& m : models) EXPECT_NEAR(m[i], expected, 1e-6);
  }
}

TEST(AggregateTest, InPlacePreservesMeanUnderUniformWeights) {
  // Uniform averaging is mass-preserving: sum over workers unchanged.
  Rng rng(2);
  std::vector<std::vector<float>> models(4, std::vector<float>(16));
  double before = 0.0;
  for (auto& m : models) {
    for (auto& x : m) {
      x = static_cast<float>(rng.Normal(0.0, 1.0));
      before += x;
    }
  }
  std::vector<float*> ptrs;
  for (auto& m : models) ptrs.push_back(m.data());
  WeightedAverageInPlace(ptrs, ConstantWeights(4), 16);
  double after = 0.0;
  for (const auto& m : models) {
    for (float x : m) after += x;
  }
  EXPECT_NEAR(before, after, 1e-3);
}

TEST(AggregateTest, ConvexCombinationStaysInRange) {
  std::vector<float> lo(8, -1.0f), hi(8, 1.0f);
  std::vector<float*> ptrs = {lo.data(), hi.data()};
  WeightedAverageInPlace(ptrs, {0.3, 0.7}, 8);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_GE(lo[i], -1.0f);
    EXPECT_LE(lo[i], 1.0f);
    EXPECT_FLOAT_EQ(lo[i], hi[i]);
    EXPECT_NEAR(lo[i], 0.4f, 1e-6);
  }
}

}  // namespace
}  // namespace pr
