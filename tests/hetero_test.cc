#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/stats.h"
#include "hetero/hetero.h"

namespace pr {
namespace {

RunningStat SampleWorker(HeterogeneityModel* model, int worker, int n) {
  RunningStat stat;
  for (int i = 0; i < n; ++i) stat.Add(model->Sample(worker, i));
  return stat;
}

TEST(HeteroTest, HomogeneousNearUnity) {
  auto model = MakeHeterogeneityModel(HeteroSpec::Homogeneous(), 4, 1);
  for (int w = 0; w < 4; ++w) {
    RunningStat stat = SampleWorker(model.get(), w, 2000);
    EXPECT_NEAR(stat.mean(), 1.0, 0.05);
    EXPECT_LT(stat.stddev(), 0.1);
  }
}

TEST(HeteroTest, SamplesAlwaysPositive) {
  for (auto kind :
       {HeteroSpec::Kind::kHomogeneous, HeteroSpec::Kind::kGpuSharing,
        HeteroSpec::Kind::kLognormal, HeteroSpec::Kind::kProduction,
        HeteroSpec::Kind::kTransient}) {
    HeteroSpec spec;
    spec.kind = kind;
    spec.sharing_level = 2;
    auto model = MakeHeterogeneityModel(spec, 4, 9);
    for (int w = 0; w < 4; ++w) {
      for (int i = 0; i < 500; ++i) {
        EXPECT_GT(model->Sample(w, i), 0.0) << model->Name();
      }
    }
  }
}

TEST(HeteroTest, GpuSharingSlowsOnlySharedWorkers) {
  auto model = MakeHeterogeneityModel(HeteroSpec::GpuSharing(3), 8, 2);
  for (int w = 0; w < 3; ++w) {
    RunningStat stat = SampleWorker(model.get(), w, 2000);
    EXPECT_NEAR(stat.mean(), 3.0, 0.4) << "shared worker " << w;
  }
  for (int w = 3; w < 8; ++w) {
    RunningStat stat = SampleWorker(model.get(), w, 2000);
    EXPECT_NEAR(stat.mean(), 1.0, 0.1) << "dedicated worker " << w;
  }
}

TEST(HeteroTest, GpuSharingLevelOneIsHomogeneous) {
  auto model = MakeHeterogeneityModel(HeteroSpec::GpuSharing(1), 4, 3);
  for (int w = 0; w < 4; ++w) {
    RunningStat stat = SampleWorker(model.get(), w, 1000);
    EXPECT_NEAR(stat.mean(), 1.0, 0.05);
  }
}

TEST(HeteroTest, HigherSharingLevelMeansSlower) {
  auto hl2 = MakeHeterogeneityModel(HeteroSpec::GpuSharing(2), 8, 4);
  auto hl4 = MakeHeterogeneityModel(HeteroSpec::GpuSharing(4), 8, 4);
  EXPECT_LT(SampleWorker(hl2.get(), 0, 2000).mean(),
            SampleWorker(hl4.get(), 0, 2000).mean());
}

TEST(HeteroTest, ProductionHasPersistentPerWorkerSkew) {
  auto model = MakeHeterogeneityModel(HeteroSpec::Production(), 16, 5);
  std::vector<double> means;
  for (int w = 0; w < 16; ++w) {
    means.push_back(SampleWorker(model.get(), w, 500).mean());
  }
  // Some worker should be at least 3x slower than the fastest.
  const double fastest = *std::min_element(means.begin(), means.end());
  const double slowest = *std::max_element(means.begin(), means.end());
  EXPECT_GT(slowest / fastest, 3.0);
}

TEST(HeteroTest, ProductionHasHeavyTail) {
  auto model = MakeHeterogeneityModel(HeteroSpec::Production(), 8, 6);
  SampleSet all;
  for (int w = 0; w < 8; ++w) {
    for (int i = 0; i < 2000; ++i) all.Add(model->Sample(w, i));
  }
  // p99 well above median: transient stalls + persistent skew.
  EXPECT_GT(all.Percentile(0.99) / all.Percentile(0.5), 3.0);
}

TEST(HeteroTest, TransientStragglerFrequencyMatchesProb) {
  HeteroSpec spec;
  spec.kind = HeteroSpec::Kind::kTransient;
  spec.straggler_prob = 0.1;
  spec.straggler_min = 10.0;
  spec.straggler_max = 10.0;
  spec.jitter_sigma = 0.0;
  auto model = MakeHeterogeneityModel(spec, 1, 7);
  int stalls = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (model->Sample(0, i) > 5.0) ++stalls;
  }
  EXPECT_NEAR(static_cast<double>(stalls) / n, 0.1, 0.01);
}

TEST(HeteroTest, DeterministicInSeed) {
  auto a = MakeHeterogeneityModel(HeteroSpec::Production(), 4, 42);
  auto b = MakeHeterogeneityModel(HeteroSpec::Production(), 4, 42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a->Sample(i % 4, i), b->Sample(i % 4, i));
  }
}

TEST(HeteroTest, FixedFactorsApplied) {
  auto model = MakeHeterogeneityModel(
      HeteroSpec::FixedFactors({2.0, 1.0, 0.5}), 3, 11);
  EXPECT_NEAR(SampleWorker(model.get(), 0, 1000).mean(), 2.0, 0.1);
  EXPECT_NEAR(SampleWorker(model.get(), 1, 1000).mean(), 1.0, 0.05);
  EXPECT_NEAR(SampleWorker(model.get(), 2, 1000).mean(), 0.5, 0.03);
}

TEST(HeteroTest, TraceReplaysAndCycles) {
  HeteroSpec spec = HeteroSpec::Trace({{1.0, 2.0, 3.0}, {5.0}});
  spec.jitter_sigma = 0.0;  // exact replay
  auto model = MakeHeterogeneityModel(spec, 2, 13);
  EXPECT_DOUBLE_EQ(model->Sample(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(model->Sample(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(model->Sample(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(model->Sample(0, 3), 1.0);  // cycled
  EXPECT_DOUBLE_EQ(model->Sample(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(model->Sample(1, 1), 5.0);
}

TEST(HeteroTest, TraceCsvRoundTrip) {
  const std::string path = "/tmp/pr_hetero_trace_test.csv";
  const std::vector<std::vector<double>> trace = {{1.0, 2.5, 0.75},
                                                  {4.0},
                                                  {1.5, 1.5}};
  ASSERT_TRUE(SaveHeteroTraceCsv(path, trace).ok());
  auto loaded = LoadHeteroTraceCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.ValueOrDie(), trace);
  std::remove(path.c_str());
}

TEST(HeteroTest, TraceCsvRejectsGarbage) {
  const std::string path = "/tmp/pr_hetero_trace_bad.csv";
  {
    std::ofstream out(path);
    out << "1.0,banana\n";
  }
  auto loaded = LoadHeteroTraceCsv(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(HeteroTest, TraceCsvRejectsNonPositive) {
  const std::string path = "/tmp/pr_hetero_trace_neg.csv";
  {
    std::ofstream out(path);
    out << "1.0,-2.0\n";
  }
  EXPECT_FALSE(LoadHeteroTraceCsv(path).ok());
  std::remove(path.c_str());
}

TEST(HeteroTest, TraceCsvMissingFile) {
  EXPECT_EQ(LoadHeteroTraceCsv("/tmp/pr_no_such_trace.csv").status().code(),
            StatusCode::kNotFound);
}

TEST(HeteroTest, NamesAreDistinct) {
  std::set<std::string> names;
  for (auto kind :
       {HeteroSpec::Kind::kHomogeneous, HeteroSpec::Kind::kGpuSharing,
        HeteroSpec::Kind::kLognormal, HeteroSpec::Kind::kProduction,
        HeteroSpec::Kind::kTransient}) {
    HeteroSpec spec;
    spec.kind = kind;
    names.insert(MakeHeterogeneityModel(spec, 2, 1)->Name());
  }
  EXPECT_EQ(names.size(), 5u);
}

}  // namespace
}  // namespace pr
