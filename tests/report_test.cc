#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "train/report.h"

namespace pr {
namespace {

TEST(TablePrinterTest, RendersHeadersAndRows) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"beta", "22"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(TablePrinterTest, ColumnsAligned) {
  TablePrinter table({"a", "b"});
  table.AddRow({"xxxxxx", "y"});
  const std::string out = table.Render();
  std::istringstream lines(out);
  std::string first, second;
  std::getline(lines, first);
  std::getline(lines, second);
  std::string third;
  std::getline(lines, third);
  EXPECT_EQ(first.size(), third.size());
}

TEST(FormatTest, DoubleDigits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(FormatTest, Speedup) {
  EXPECT_EQ(FormatSpeedup(1.8449), "1.84x");
  EXPECT_EQ(FormatSpeedup(16.6), "16.60x");
}

TEST(CsvTest, WritesHeadersAndRows) {
  const std::string path = "/tmp/pr_report_test.csv";
  ASSERT_TRUE(WriteCsv(path, {"x", "y"}, {{"1", "2"}, {"3", "4"}}));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3,4");
  std::remove(path.c_str());
}

TEST(CsvTest, FailsOnBadPath) {
  EXPECT_FALSE(WriteCsv("/nonexistent_dir_xyz/file.csv", {"a"}, {}));
}

}  // namespace
}  // namespace pr
