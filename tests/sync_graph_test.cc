#include <gtest/gtest.h>

#include "core/sync_graph.h"

namespace pr {
namespace {

TEST(SyncGraphTest, StartsFullyDisconnected) {
  SyncGraph g(5);
  EXPECT_FALSE(g.IsConnected());
  EXPECT_EQ(g.NumComponents(), 5u);
}

TEST(SyncGraphTest, SingleWorkerIsConnected) {
  SyncGraph g(1);
  EXPECT_TRUE(g.IsConnected());
}

TEST(SyncGraphTest, EdgeMergesComponents) {
  SyncGraph g(4);
  g.AddEdge(0, 1);
  EXPECT_EQ(g.NumComponents(), 3u);
  EXPECT_EQ(g.ComponentOf(0), g.ComponentOf(1));
  EXPECT_NE(g.ComponentOf(0), g.ComponentOf(2));
}

TEST(SyncGraphTest, RedundantEdgeKeepsCount) {
  SyncGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(0, 1);
  EXPECT_EQ(g.NumComponents(), 2u);
}

TEST(SyncGraphTest, GroupAddsClique) {
  SyncGraph g(6);
  g.AddGroup({1, 3, 5});
  EXPECT_EQ(g.NumComponents(), 4u);  // {1,3,5}, {0}, {2}, {4}
  EXPECT_EQ(g.ComponentOf(1), g.ComponentOf(5));
}

TEST(SyncGraphTest, ChainOfGroupsConnects) {
  SyncGraph g(7);
  g.AddGroup({0, 1, 2});
  g.AddGroup({2, 3, 4});
  g.AddGroup({4, 5, 6});
  EXPECT_TRUE(g.IsConnected());
}

TEST(SyncGraphTest, DisjointGroupsStayIsolated) {
  // The paper's "group frozen" scenario: {0,1} and {2,3} never mix.
  SyncGraph g(4);
  g.AddGroup({0, 1});
  g.AddGroup({2, 3});
  g.AddGroup({0, 1});
  g.AddGroup({2, 3});
  EXPECT_FALSE(g.IsConnected());
  EXPECT_EQ(g.NumComponents(), 2u);
}

TEST(SyncGraphTest, ComponentsPartitionWorkers) {
  SyncGraph g(6);
  g.AddGroup({0, 2});
  g.AddGroup({3, 4, 5});
  auto comps = g.Components();
  size_t total = 0;
  for (const auto& c : comps) total += c.size();
  EXPECT_EQ(total, 6u);
  EXPECT_EQ(comps.size(), 3u);  // {0,2}, {1}, {3,4,5}
}

TEST(SyncGraphTest, SingletonGroupIsNoop) {
  SyncGraph g(3);
  g.AddGroup({1});
  EXPECT_EQ(g.NumComponents(), 3u);
}

}  // namespace
}  // namespace pr
