#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "models/convnet.h"
#include "optim/sgd.h"
#include "tensor/ops.h"
#include "train/experiment.h"

namespace pr {
namespace {

TEST(ConvNetTest, ParamCount) {
  ConvNet net(1, 6, 6, 4, 3);
  // conv W: 4*1*9 = 36, conv b: 4, dense W: 4*36*3 = 432, dense b: 3.
  EXPECT_EQ(net.NumParams(), 36u + 4 + 432 + 3);
  EXPECT_EQ(net.input_dim(), 36u);
  EXPECT_EQ(net.NumClasses(), 3);
}

TEST(ConvNetTest, NameDescribesShape) {
  ConvNet net(1, 8, 8, 16, 10);
  EXPECT_EQ(net.Name(), "convnet-1x8x8-f16-10");
}

TEST(ConvNetTest, ScoresShape) {
  ConvNet net(1, 5, 5, 3, 4);
  Rng rng(1);
  std::vector<float> params;
  net.InitParams(&params, &rng);
  Tensor x(7, 25);
  x.FillNormal(&rng, 1.0f);
  Tensor scores;
  net.Scores(params.data(), x, &scores);
  EXPECT_EQ(scores.rows(), 7u);
  EXPECT_EQ(scores.cols(), 4u);
}

TEST(ConvNetTest, TranslationSensitivityViaWeightSharing) {
  // A convnet responds to a shifted input with (mostly) shifted features —
  // the dense head changes, but the conv layer's response to an impulse at
  // two positions must use the same kernel. We check that the gradient
  // w.r.t. the conv kernel from an impulse at (1,1) equals that from an
  // impulse at (2,2) up to the dense-head difference being symmetric:
  // cheaper and robust: kernel gradient is nonzero (weight sharing sums
  // across positions).
  ConvNet net(1, 5, 5, 2, 2);
  Rng rng(3);
  std::vector<float> params;
  net.InitParams(&params, &rng);
  Tensor x(1, 25);
  x.Fill(0.0f);
  x.Row(0)[6] = 1.0f;  // impulse
  std::vector<float> grad(net.NumParams());
  net.LossAndGradient(params.data(), x, {1}, grad.data());
  float conv_grad_norm = Norm2(grad.data(), 2 * 9);
  EXPECT_GT(conv_grad_norm, 0.0f);
}

TEST(ConvNetTest, GradCheckAnalyticMatchesNumeric) {
  ConvNet net(1, 4, 4, 3, 3);
  Rng rng(11);
  std::vector<float> params;
  net.InitParams(&params, &rng);

  Tensor x(3, 16);
  x.FillNormal(&rng, 1.0f);
  std::vector<int> y = {0, 2, 1};

  std::vector<float> grad(net.NumParams());
  net.LossAndGradient(params.data(), x, y, grad.data());

  const float eps = 1e-3f;
  std::vector<float> dummy(net.NumParams());
  for (size_t i = 0; i < net.NumParams();
       i += std::max<size_t>(1, net.NumParams() / 80)) {
    std::vector<float> plus = params, minus = params;
    plus[i] += eps;
    minus[i] -= eps;
    const float lp = net.LossAndGradient(plus.data(), x, y, dummy.data());
    const float lm = net.LossAndGradient(minus.data(), x, y, dummy.data());
    const float numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(grad[i], numeric, 5e-3f + 0.05f * std::fabs(numeric))
        << "param index " << i;
  }
}

TEST(ConvNetTest, TrainsOnSeparableData) {
  SyntheticSpec spec;
  spec.num_train = 1000;
  spec.num_test = 400;
  spec.dim = 36;  // 6x6
  spec.num_classes = 4;
  spec.separation = 4.0;
  spec.noise = 0.5;
  auto split = GenerateSynthetic(spec);

  ConvNet net(1, 6, 6, 8, 4);
  Rng rng(5);
  std::vector<float> params;
  net.InitParams(&params, &rng);
  Sgd sgd(net.NumParams(), SgdOptions{});

  Shard shard;
  for (size_t i = 0; i < split.train.size(); ++i) shard.indices.push_back(i);
  BatchSampler sampler(&split.train, shard, 32, 6);

  std::vector<float> grad(net.NumParams());
  Tensor x;
  std::vector<int> y;
  for (int step = 0; step < 300; ++step) {
    sampler.NextBatch(&x, &y);
    net.LossAndGradient(params.data(), x, y, grad.data());
    sgd.Step(grad.data(), &params);
  }
  EXPECT_GT(EvaluateAccuracy(net, params.data(), split.test), 0.85);
}

TEST(ConvNetProxyTest, SimTrainingRunsWithConvProxy) {
  ExperimentConfig config;
  config.training.num_workers = 4;
  config.training.model.kind = ProxyModelSpec::Kind::kConvNet;
  config.training.model.conv_filters = 4;
  SyntheticSpec spec;
  spec.num_train = 512;
  spec.num_test = 256;
  spec.dim = 36;  // square
  spec.num_classes = 4;
  spec.separation = 4.0;
  config.training.custom_dataset = spec;
  config.training.accuracy_threshold = 0.8;
  config.training.max_updates = 3000;
  config.training.eval_every = 20;
  config.training.seed = 7;
  config.strategy.kind = StrategyKind::kPReduceConst;
  config.strategy.group_size = 2;

  SimRunResult result = RunExperiment(config);
  EXPECT_TRUE(result.converged) << "final acc " << result.final_accuracy;
}

}  // namespace
}  // namespace pr
