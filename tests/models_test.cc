#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "models/catalog.h"
#include "models/mlp.h"
#include "optim/sgd.h"
#include "tensor/ops.h"

namespace pr {
namespace {

TEST(MlpTest, ParamCountSoftmaxRegression) {
  auto m = Mlp::SoftmaxRegression(10, 4);
  EXPECT_EQ(m->NumParams(), 10u * 4 + 4);
  EXPECT_EQ(m->NumClasses(), 4);
}

TEST(MlpTest, ParamCountWithHiddenLayers) {
  Mlp m(8, {16, 12}, 5);
  EXPECT_EQ(m.NumParams(),
            8u * 16 + 16 + 16u * 12 + 12 + 12u * 5 + 5);
}

TEST(MlpTest, NameDescribesArchitecture) {
  EXPECT_EQ(Mlp(8, {16}, 5).Name(), "mlp-8x16x5");
  EXPECT_EQ(Mlp::SoftmaxRegression(8, 5)->Name(), "softmax-8x5");
}

TEST(MlpTest, InitIsDeterministicAndNonzero) {
  Mlp m(8, {16}, 5);
  Rng r1(3), r2(3);
  std::vector<float> p1, p2;
  m.InitParams(&p1, &r1);
  m.InitParams(&p2, &r2);
  EXPECT_EQ(p1, p2);
  float norm = Norm2(p1.data(), p1.size());
  EXPECT_GT(norm, 0.1f);
}

TEST(MlpTest, ScoresShape) {
  Mlp m(6, {8}, 3);
  Rng rng(1);
  std::vector<float> params;
  m.InitParams(&params, &rng);
  Tensor x(4, 6);
  x.FillNormal(&rng, 1.0f);
  Tensor scores;
  m.Scores(params.data(), x, &scores);
  EXPECT_EQ(scores.rows(), 4u);
  EXPECT_EQ(scores.cols(), 3u);
}

/// Central-difference gradient check: the decisive correctness test for the
/// hand-written backprop.
class MlpGradCheckTest
    : public ::testing::TestWithParam<std::vector<size_t>> {};

TEST_P(MlpGradCheckTest, AnalyticMatchesNumeric) {
  const std::vector<size_t> hidden = GetParam();
  Mlp m(5, hidden, 3);
  Rng rng(11);
  std::vector<float> params;
  m.InitParams(&params, &rng);

  Tensor x(4, 5);
  x.FillNormal(&rng, 1.0f);
  std::vector<int> y = {0, 2, 1, 2};

  std::vector<float> grad(m.NumParams());
  m.LossAndGradient(params.data(), x, y, grad.data());

  // Check a spread of parameter indices (all of them for small models).
  const float eps = 1e-3f;
  std::vector<float> dummy(m.NumParams());
  for (size_t i = 0; i < m.NumParams(); i += std::max<size_t>(1, m.NumParams() / 60)) {
    std::vector<float> plus = params, minus = params;
    plus[i] += eps;
    minus[i] -= eps;
    const float lp = m.LossAndGradient(plus.data(), x, y, dummy.data());
    const float lm = m.LossAndGradient(minus.data(), x, y, dummy.data());
    const float numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(grad[i], numeric, 5e-3f + 0.05f * std::fabs(numeric))
        << "param index " << i << " hidden layers " << hidden.size();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, MlpGradCheckTest,
    ::testing::Values(std::vector<size_t>{}, std::vector<size_t>{7},
                      std::vector<size_t>{8, 6}));

TEST(MlpTest, LossDecreasesUnderGradientDescent) {
  Mlp m(8, {16}, 3);
  Rng rng(13);
  std::vector<float> params;
  m.InitParams(&params, &rng);
  Tensor x(32, 8);
  x.FillNormal(&rng, 1.0f);
  std::vector<int> y(32);
  for (auto& label : y) label = static_cast<int>(rng.UniformInt(3));

  std::vector<float> grad(m.NumParams());
  float first = m.LossAndGradient(params.data(), x, y, grad.data());
  for (int step = 0; step < 50; ++step) {
    m.LossAndGradient(params.data(), x, y, grad.data());
    Axpy(-0.5f, grad.data(), params.data(), params.size());
  }
  float last = m.LossAndGradient(params.data(), x, y, grad.data());
  EXPECT_LT(last, first * 0.5f);
}

TEST(MlpTest, TrainsToHighAccuracyOnSeparableData) {
  SyntheticSpec spec;
  spec.num_train = 1000;
  spec.num_test = 400;
  spec.dim = 16;
  spec.num_classes = 4;
  spec.separation = 4.0;
  spec.noise = 0.5;
  auto split = GenerateSynthetic(spec);

  Mlp m(16, {32}, 4);
  Rng rng(5);
  std::vector<float> params;
  m.InitParams(&params, &rng);
  Sgd sgd(m.NumParams(), SgdOptions{});

  Shard shard;
  for (size_t i = 0; i < split.train.size(); ++i) shard.indices.push_back(i);
  BatchSampler sampler(&split.train, shard, 32, 6);

  std::vector<float> grad(m.NumParams());
  Tensor x;
  std::vector<int> y;
  for (int step = 0; step < 400; ++step) {
    sampler.NextBatch(&x, &y);
    m.LossAndGradient(params.data(), x, y, grad.data());
    sgd.Step(grad.data(), &params);
  }
  EXPECT_GT(EvaluateAccuracy(m, params.data(), split.test), 0.9);
}

TEST(EvaluateTest, PerfectPredictorScoresOne) {
  // A softmax regression whose weights directly copy a one-hot feature.
  Mlp m(3, {}, 3);
  std::vector<float> params(m.NumParams(), 0.0f);
  // W = 10 * I (3x3 row-major), b = 0.
  params[0] = params[4] = params[8] = 10.0f;

  Dataset ds;
  ds.num_classes = 3;
  ds.features = Tensor::FromMatrix(3, 3, {1, 0, 0, 0, 1, 0, 0, 0, 1});
  ds.labels = {0, 1, 2};
  EXPECT_DOUBLE_EQ(EvaluateAccuracy(m, params.data(), ds), 1.0);
  EXPECT_LT(EvaluateLoss(m, params.data(), ds), 0.01);
}

TEST(EvaluateTest, RandomModelNearChance) {
  SyntheticSpec spec;
  spec.num_train = 10;
  spec.num_test = 2000;
  spec.dim = 8;
  spec.num_classes = 10;
  auto split = GenerateSynthetic(spec);
  Mlp m(8, {8}, 10);
  Rng rng(21);
  std::vector<float> params;
  m.InitParams(&params, &rng);
  double acc = EvaluateAccuracy(m, params.data(), split.test);
  EXPECT_LT(acc, 0.35);  // untrained should be near 0.1
}

// ---------------------------------------------------------------------------
// catalog
// ---------------------------------------------------------------------------

TEST(CatalogTest, AllFiveModelsPresent) {
  EXPECT_EQ(AllPaperModels().size(), 5u);
  for (const char* name :
       {"resnet18", "resnet34", "vgg16", "vgg19", "densenet121"}) {
    EXPECT_EQ(LookupPaperModel(name).name, name);
  }
}

TEST(CatalogTest, PublishedParameterCounts) {
  EXPECT_NEAR(static_cast<double>(LookupPaperModel("resnet34").num_params),
              21.8e6, 1e5);
  EXPECT_NEAR(static_cast<double>(LookupPaperModel("vgg19").num_params),
              143.7e6, 1e5);
  EXPECT_NEAR(static_cast<double>(LookupPaperModel("densenet121").num_params),
              8.0e6, 1e5);
}

TEST(CatalogTest, VggIsCommunicationHeavyResNetComputeHeavy) {
  // Bytes-per-compute-second ordering drives Fig. 11's scalability story.
  const auto& vgg = LookupPaperModel("vgg16");
  const auto& resnet = LookupPaperModel("resnet18");
  const double vgg_ratio =
      static_cast<double>(vgg.param_bytes()) / vgg.compute_seconds;
  const double resnet_ratio =
      static_cast<double>(resnet.param_bytes()) / resnet.compute_seconds;
  EXPECT_GT(vgg_ratio, 5.0 * resnet_ratio);
}

TEST(CatalogTest, DenseNetHasMostTensors) {
  for (const auto& info : AllPaperModels()) {
    if (info.name != "densenet121") {
      EXPECT_GT(LookupPaperModel("densenet121").num_tensors,
                info.num_tensors);
    }
  }
}

}  // namespace
}  // namespace pr
