#include <gtest/gtest.h>

#include <cmath>

#include "core/controller.h"
#include "core/spectral.h"
#include "topo/topology.h"

namespace pr {
namespace {

TEST(SpectralTest, Fig4aHomogeneousRhoIsHalf) {
  // N=3, P=2, all pairs equally likely: the paper's Fig. 4(a) value.
  SyncMatrixExpectation e(3);
  e.AddUniformGroup({0, 1});
  e.AddUniformGroup({1, 2});
  e.AddUniformGroup({0, 2});
  EXPECT_NEAR(SpectralRho(e.Mean()), 0.5, 1e-10);
}

TEST(SpectralTest, Fig4bHeterogeneousRho) {
  // Fig. 4(b): worker 3 twice as slow. In the steady pattern of the figure,
  // over one period of worker 3 (two fast iterations), the groups are
  // (1,2), (1,3), (2,3), (1,2) — the fast pair syncs twice as often as each
  // straggler pair. E[W] under that frequency gives rho = 0.625.
  SyncMatrixExpectation e(3);
  e.AddUniformGroup({0, 1});
  e.AddUniformGroup({0, 1});
  e.AddUniformGroup({0, 2});
  e.AddUniformGroup({1, 2});
  EXPECT_NEAR(SpectralRho(e.Mean()), 0.625, 1e-10);
}

TEST(SpectralTest, HomogeneousClosedForm) {
  EXPECT_NEAR(HomogeneousRho(3, 2), 0.5, 1e-12);
  EXPECT_NEAR(HomogeneousRho(8, 8), 0.0, 1e-12);
  EXPECT_NEAR(HomogeneousRho(8, 2), 1.0 - 1.0 / 7.0, 1e-12);
  EXPECT_NEAR(HomogeneousRho(16, 4), 1.0 - 3.0 / 15.0, 1e-12);
}

TEST(SpectralTest, ClosedFormMatchesEigensolverAcrossNP) {
  for (size_t n : {3u, 4u, 6u, 10u}) {
    for (size_t p = 2; p <= n; ++p) {
      // Build exact E[W] for uniform random groups: all C(n,p) groups.
      SyncMatrixExpectation e(n);
      // Enumerate combinations.
      std::vector<int> idx(p);
      for (size_t i = 0; i < p; ++i) idx[i] = static_cast<int>(i);
      while (true) {
        e.AddUniformGroup(idx);
        // next combination
        size_t k = p;
        while (k > 0) {
          --k;
          if (idx[k] < static_cast<int>(n - p + k)) {
            ++idx[k];
            for (size_t j = k + 1; j < p; ++j) idx[j] = idx[j - 1] + 1;
            break;
          }
          if (k == 0) goto done;
        }
      }
    done:
      EXPECT_NEAR(SpectralRho(e.Mean()), HomogeneousRho(n, p), 1e-9)
          << "n=" << n << " p=" << p;
    }
  }
}

TEST(SpectralTest, RhoDecreasesWithP) {
  double prev = 1.0;
  for (size_t p = 2; p <= 8; ++p) {
    double rho = HomogeneousRho(8, p);
    EXPECT_LT(rho, prev);
    prev = rho;
  }
}

TEST(SpectralTest, AllReduceHasZeroRhoAndNetworkError) {
  SyncMatrixExpectation e(4);
  e.AddUniformGroup({0, 1, 2, 3});
  EXPECT_NEAR(SpectralRho(e.Mean()), 0.0, 1e-10);
  EXPECT_DOUBLE_EQ(RhoTilde(0.0), 0.0);
}

TEST(SpectralTest, RhoTildeFormula) {
  const double rho = 0.5;
  const double sq = std::sqrt(rho);
  const double expected = rho / (1 - rho) + 2 * sq / ((1 - sq) * (1 - sq));
  EXPECT_NEAR(RhoTilde(rho), expected, 1e-12);
}

TEST(SpectralTest, RhoTildeMonotone) {
  double prev = -1.0;
  for (double rho = 0.0; rho < 0.95; rho += 0.05) {
    double rt = RhoTilde(rho);
    EXPECT_GT(rt, prev);
    prev = rt;
  }
}

TEST(SpectralTest, LrConditionTightensWithWorseRho) {
  // Same gamma: larger rho (more heterogeneity / smaller P) -> larger LHS.
  const double lhs_good = LrConditionLhs(0.05, 10.0, 8, 8, 0.0);
  const double lhs_bad = LrConditionLhs(0.05, 10.0, 8, 2,
                                        HomogeneousRho(8, 2));
  EXPECT_LT(lhs_good, lhs_bad);
}

TEST(SpectralTest, LrConditionSatisfiedForSmallGamma) {
  EXPECT_LT(LrConditionLhs(1e-4, 10.0, 8, 4, HomogeneousRho(8, 4)), 1.0);
}

TEST(SpectralTest, TheoremOneBoundDecomposition) {
  ConvergenceBoundTerms terms =
      TheoremOneBound(/*gamma=*/0.01, /*L=*/10.0, /*sigma_sq=*/1.0,
                      /*f_gap=*/5.0, /*n=*/8, /*p=*/4, /*k=*/10000,
                      HomogeneousRho(8, 4));
  EXPECT_GT(terms.sgd_error, 0.0);
  EXPECT_GT(terms.network_error, 0.0);
  EXPECT_DOUBLE_EQ(terms.total(), terms.sgd_error + terms.network_error);
}

TEST(SpectralTest, SgdErrorShrinksWithK) {
  auto t1 = TheoremOneBound(0.01, 10.0, 1.0, 5.0, 8, 4, 1000,
                            HomogeneousRho(8, 4));
  auto t2 = TheoremOneBound(0.01, 10.0, 1.0, 5.0, 8, 4, 100000,
                            HomogeneousRho(8, 4));
  EXPECT_LT(t2.sgd_error, t1.sgd_error);
  EXPECT_DOUBLE_EQ(t2.network_error, t1.network_error);
}

TEST(SpectralTest, NetworkErrorVanishesAtAllReduce) {
  auto terms = TheoremOneBound(0.01, 10.0, 1.0, 5.0, 8, 8, 10000, 0.0);
  EXPECT_DOUBLE_EQ(terms.network_error, 0.0);
}

TEST(SpectralTest, HierarchyWithinFlatBoundBasics) {
  // Identical rho trivially satisfies the bound; a degenerate rho >= 1
  // (disconnected expectation) never does.
  const double rho = HomogeneousRho(8, 2);
  EXPECT_TRUE(HierarchyWithinFlatBound(1e-3, 10.0, 8, 2, rho, rho));
  EXPECT_FALSE(HierarchyWithinFlatBound(1e-3, 10.0, 8, 2, rho, 1.0));
  EXPECT_FALSE(HierarchyWithinFlatBound(1e-3, 10.0, 8, 2, 1.0, rho));
  // A slightly larger hierarchical rho passes as long as the Eq. 7 LHS
  // stays within the flat config's own slack (max(1, lhs_flat)).
  EXPECT_TRUE(HierarchyWithinFlatBound(1e-4, 10.0, 8, 2, rho,
                                       0.5 * (1.0 + rho)));
}

// Drives a flat and a hierarchical controller through the same arrival
// pattern and checks the hierarchy's measured E[W_k] spectral gap survives:
// rho_hier < 1 (the expectation mixes) and the Theorem 1 learning-rate
// condition that the flat config satisfies still holds under rho_hier.
TEST(SpectralTest, HierarchicalExpectationKeepsTheoremOneGap) {
  const int n = 8;
  const int p = 2;
  ControllerOptions flat_opt;
  flat_opt.num_workers = n;
  flat_opt.group_size = p;
  flat_opt.record_sync_matrices = true;

  ControllerOptions hier_opt = flat_opt;
  Status s = Topology::FromNodes({{0, 1, 2, 3}, {4, 5, 6, 7}},
                                 &hier_opt.topology);
  ASSERT_TRUE(s.ok()) << s.message();
  hier_opt.hierarchy.enabled = true;
  hier_opt.hierarchy.cross_period = 3;

  Controller flat(flat_opt);
  Controller hier(hier_opt);
  // Interleaved arrivals: both nodes always represented in the queue.
  for (int round = 0; round < 60; ++round) {
    for (int w : {0, 4, 1, 5, 2, 6, 3, 7}) {
      flat.OnReadySignal(w, round);
      hier.OnReadySignal(w, round);
    }
  }
  ASSERT_GT(hier.stats().cross_node_groups, 0u);
  ASSERT_GT(hier.stats().intra_node_groups, 0u);

  const double rho_flat = SpectralRho(flat.ExpectedSyncMatrix());
  const double rho_hier = SpectralRho(hier.ExpectedSyncMatrix());
  EXPECT_LT(rho_flat, 1.0);
  EXPECT_LT(rho_hier, 1.0);  // merges keep E[W_k] mixing
  // Same Theorem 1 learning-rate condition (Eq. 7) the flat config is run
  // under: the hierarchy must not break it.
  const double gamma = 1e-3;
  const double lipschitz_l = 10.0;
  EXPECT_TRUE(HierarchyWithinFlatBound(gamma, lipschitz_l, n, p, rho_flat,
                                       rho_hier));
}

}  // namespace
}  // namespace pr
