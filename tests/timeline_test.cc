#include <gtest/gtest.h>

#include "sim/timeline.h"
#include "train/experiment.h"

namespace pr {
namespace {

TEST(TimelineTest, RecordsAndTotals) {
  Timeline t(2);
  t.Record(0, WorkerActivity::kCompute, 0.0, 2.0);
  t.Record(0, WorkerActivity::kIdle, 2.0, 3.0);
  t.Record(0, WorkerActivity::kCompute, 3.0, 4.5);
  t.Record(1, WorkerActivity::kComm, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(t.TotalTime(0, WorkerActivity::kCompute), 3.5);
  EXPECT_DOUBLE_EQ(t.TotalTime(0, WorkerActivity::kIdle), 1.0);
  EXPECT_DOUBLE_EQ(t.TotalTime(0, WorkerActivity::kComm), 0.0);
  EXPECT_DOUBLE_EQ(t.TotalTime(1, WorkerActivity::kComm), 1.0);
  EXPECT_DOUBLE_EQ(t.EndTime(), 4.5);
}

TEST(TimelineTest, ZeroLengthIntervalsIgnored) {
  Timeline t(1);
  t.Record(0, WorkerActivity::kCompute, 1.0, 1.0);
  EXPECT_TRUE(t.intervals().empty());
}

TEST(TimelineTest, ActivityChars) {
  EXPECT_EQ(ActivityChar(WorkerActivity::kCompute), '#');
  EXPECT_EQ(ActivityChar(WorkerActivity::kComm), '=');
  EXPECT_EQ(ActivityChar(WorkerActivity::kIdle), '.');
}

TEST(TimelineTest, RenderAsciiShowsDominantActivity) {
  Timeline t(1);
  t.Record(0, WorkerActivity::kCompute, 0.0, 5.0);
  t.Record(0, WorkerActivity::kIdle, 5.0, 10.0);
  const std::string render = t.RenderAscii(0.0, 10.0, 10);
  // One row: 5 compute cells then 5 idle cells.
  EXPECT_NE(render.find("#####....."), std::string::npos);
}

TEST(TimelineTest, RenderAsciiEmptyCellsAreSpaces) {
  Timeline t(1);
  t.Record(0, WorkerActivity::kCompute, 0.0, 1.0);
  const std::string render = t.RenderAscii(0.0, 4.0, 4);
  EXPECT_NE(render.find("#   "), std::string::npos);
}

TEST(TimelineTest, RenderHasOneRowPerWorker) {
  Timeline t(3);
  const std::string render = t.RenderAscii(0.0, 1.0, 5);
  EXPECT_EQ(std::count(render.begin(), render.end(), '\n'), 3);
}

TEST(TimelineIntegrationTest, AllReduceTimelineCoversRun) {
  ExperimentConfig config;
  config.training.num_workers = 3;
  config.training.timing_only = true;
  config.training.timing_updates = 50;
  config.training.record_timeline = true;
  config.training.seed = 3;
  config.strategy.kind = StrategyKind::kAllReduce;

  SimTraining ctx(config.training);
  auto strategy = MakeStrategy(config.strategy, &ctx);
  strategy->Start();
  ctx.engine()->RunUntil([&] { return ctx.stopped(); });

  const Timeline* timeline = ctx.timeline();
  ASSERT_NE(timeline, nullptr);
  // Every worker's compute + comm + idle should cover most of the run
  // (small tail slack for the last in-flight intervals).
  const double end = ctx.engine()->now();
  for (int w = 0; w < 3; ++w) {
    const double covered =
        timeline->TotalTime(w, WorkerActivity::kCompute) +
        timeline->TotalTime(w, WorkerActivity::kComm) +
        timeline->TotalTime(w, WorkerActivity::kIdle);
    EXPECT_GT(covered, 0.9 * end) << "worker " << w;
    EXPECT_LT(covered, 1.1 * end) << "worker " << w;
  }
  // AR must show nonzero idle for the fast workers under jitter, and comm
  // for everyone.
  double total_comm = 0.0;
  for (int w = 0; w < 3; ++w) {
    total_comm += timeline->TotalTime(w, WorkerActivity::kComm);
  }
  EXPECT_GT(total_comm, 0.0);
}

TEST(TimelineIntegrationTest, PReduceIdleBelowAllReduceUnderStraggler) {
  auto run = [](StrategyKind kind, int p) {
    ExperimentConfig config;
    config.training.num_workers = 3;
    config.training.timing_only = true;
    config.training.timing_updates = 300;
    config.training.record_timeline = true;
    config.training.hetero = HeteroSpec::FixedFactors({2.0, 1.0, 1.0});
    config.training.seed = 9;
    config.strategy.kind = kind;
    config.strategy.group_size = p;
    SimTraining ctx(config.training);
    auto strategy = MakeStrategy(config.strategy, &ctx);
    strategy->Start();
    ctx.engine()->RunUntil([&] { return ctx.stopped(); });
    double idle = 0.0;
    for (int w = 0; w < 3; ++w) {
      idle += ctx.timeline()->TotalTime(w, WorkerActivity::kIdle);
    }
    return idle / ctx.engine()->now();
  };
  EXPECT_LT(run(StrategyKind::kPReduceConst, 2),
            run(StrategyKind::kAllReduce, 3));
}

TEST(TimelineIntegrationTest, DisabledByDefault) {
  ExperimentConfig config;
  config.training.num_workers = 2;
  config.training.timing_only = true;
  config.training.timing_updates = 5;
  SimTraining ctx(config.training);
  EXPECT_EQ(ctx.timeline(), nullptr);
}

}  // namespace
}  // namespace pr
