#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "ckpt/manifest.h"
#include "train/run.h"

namespace pr {
namespace {

RunConfig SmallConfig() {
  RunConfig config;
  config.strategy.kind = StrategyKind::kPReduceConst;
  config.strategy.group_size = 2;
  config.run.num_workers = 3;
  config.run.iterations_per_worker = 6;
  config.run.batch_size = 8;
  config.run.model.hidden = {8};
  config.run.dataset.num_train = 96;
  config.run.dataset.num_test = 48;
  config.run.dataset.dim = 8;
  config.run.dataset.num_classes = 3;
  config.run.seed = 11;
  return config;
}

TEST(EngineKindTest, NamesRoundTrip) {
  for (EngineKind kind : {EngineKind::kThreaded, EngineKind::kSim}) {
    EngineKind parsed = EngineKind::kThreaded;
    ASSERT_TRUE(ParseEngineKind(EngineKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  EngineKind parsed = EngineKind::kThreaded;
  EXPECT_FALSE(ParseEngineKind("warp", &parsed));
}

TEST(StartRunTest, ThreadedOutcomeMatchesDirectEntryPoint) {
  const RunConfig config = SmallConfig();
  RunOutcome outcome = StartRun(config, EngineKind::kThreaded);
  EXPECT_EQ(outcome.engine, EngineKind::kThreaded);
  EXPECT_EQ(outcome.strategy, "CON");
  EXPECT_GT(outcome.sync_rounds, 0u);
  EXPECT_GT(outcome.clock_seconds, 0.0);
  // The engine-specific record is the full ThreadedRunResult.
  ASSERT_EQ(outcome.threaded.worker_iterations.size(), 3u);
  for (size_t iterations : outcome.threaded.worker_iterations) {
    EXPECT_EQ(iterations, 6u);
  }
  EXPECT_DOUBLE_EQ(outcome.final_accuracy, outcome.threaded.final_accuracy);
  EXPECT_GT(outcome.metrics.counter("worker.0.iterations"), 0.0);
}

TEST(StartRunTest, SimEngineRunsTheSameConfig) {
  const RunConfig config = SmallConfig();
  RunOutcome outcome = StartRun(config, EngineKind::kSim);
  EXPECT_EQ(outcome.engine, EngineKind::kSim);
  EXPECT_EQ(outcome.strategy, "CON");
  // 3 workers x 6 iterations / group_size 2 = 9 global updates.
  EXPECT_EQ(outcome.sync_rounds, 9u);
  EXPECT_GT(outcome.clock_seconds, 0.0);
  EXPECT_EQ(outcome.sim.updates, outcome.sync_rounds);
}

TEST(StartRunTest, SimBudgetMatchesStrategySemantics) {
  RunConfig config = SmallConfig();
  config.strategy.kind = StrategyKind::kAllReduce;
  // 3 x 6 gradients / 3 per round = 6 rounds.
  EXPECT_EQ(ToExperimentConfig(config).training.max_updates, 6u);
  config.strategy.kind = StrategyKind::kPsAsp;
  EXPECT_EQ(ToExperimentConfig(config).training.max_updates, 18u);
}

TEST(ResumeRunTest, ThreadedResumeContinuesFromManifest) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "pr_facade_resume").string();
  std::filesystem::remove_all(dir);

  RunConfig config = SmallConfig();
  config.run.ckpt.dir = dir;
  config.run.ckpt.every_iterations = 2;
  RunOutcome first = StartRun(config, EngineKind::kThreaded);
  EXPECT_GT(first.final_accuracy, 0.0);

  RunManifest manifest;
  std::string manifest_path;
  Status found = FindLatestManifest(dir, &manifest, &manifest_path);
  ASSERT_TRUE(found.ok()) << found.message();
  RunOutcome resumed =
      ResumeRun(config, EngineKind::kThreaded, manifest_path);
  EXPECT_EQ(resumed.engine, EngineKind::kThreaded);
  // The resumed run restores from the last epoch and finishes the budget.
  EXPECT_EQ(resumed.metrics.counter("ckpt.restore_count"), 1.0);
  ASSERT_EQ(resumed.threaded.worker_iterations.size(), 3u);
  for (size_t iterations : resumed.threaded.worker_iterations) {
    EXPECT_EQ(iterations, 6u);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace pr
