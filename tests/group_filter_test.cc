#include <gtest/gtest.h>

#include "core/group_filter.h"

namespace pr {
namespace {

std::deque<ReadySignal> MakeQueue(const std::vector<int>& workers) {
  std::deque<ReadySignal> q;
  for (int w : workers) q.push_back(ReadySignal{w, 0});
  return q;
}

TEST(GroupFilterTest, FifoWhenHealthy) {
  GroupFilter filter(3);
  GroupHistory history(8, 4);  // empty -> not frozen
  auto selection = filter.Select(MakeQueue({5, 2, 7, 1}), history);
  EXPECT_EQ(selection.queue_positions, (std::vector<size_t>{0, 1, 2}));
  EXPECT_FALSE(selection.bridged);
}

TEST(GroupFilterTest, FifoWhenWindowConnected) {
  GroupFilter filter(2);
  GroupHistory history(4, 3);
  history.Record({0, 1});
  history.Record({1, 2});
  history.Record({2, 3});
  auto selection = filter.Select(MakeQueue({0, 1, 2}), history);
  EXPECT_EQ(selection.queue_positions, (std::vector<size_t>{0, 1}));
  EXPECT_FALSE(selection.bridged);
}

TEST(GroupFilterTest, BridgesAcrossComponentsWhenFrozen) {
  GroupFilter filter(2);
  GroupHistory history(4, 3);
  // Frozen history: components {0,1} and {2,3}.
  history.Record({0, 1});
  history.Record({2, 3});
  history.Record({0, 1});
  ASSERT_TRUE(history.IsFrozen());

  // FIFO would pick {0, 1} (same component); the filter must bridge to
  // worker 2 further down the queue.
  auto selection = filter.Select(MakeQueue({0, 1, 2}), history);
  EXPECT_TRUE(selection.bridged);
  EXPECT_EQ(selection.queue_positions, (std::vector<size_t>{0, 2}));
}

TEST(GroupFilterTest, FrozenButNoCrossComponentSignalFallsBackToFifo) {
  GroupFilter filter(2);
  GroupHistory history(4, 3);
  history.Record({0, 1});
  history.Record({2, 3});
  history.Record({0, 1});
  ASSERT_TRUE(history.IsFrozen());

  // Only component-{0,1} members are waiting: liveness beats bridging.
  auto selection = filter.Select(MakeQueue({0, 1}), history);
  EXPECT_FALSE(selection.bridged);
  EXPECT_EQ(selection.queue_positions, (std::vector<size_t>{0, 1}));
}

TEST(GroupFilterTest, BridgePrefersEarliestCrossComponentSignal) {
  GroupFilter filter(2);
  GroupHistory history(6, 3);
  history.Record({0, 1});
  history.Record({2, 3});
  history.Record({4, 5});
  ASSERT_TRUE(history.IsFrozen());

  // Queue: 0 (comp A), 1 (comp A), 2 (comp B), 4 (comp C).
  auto selection = filter.Select(MakeQueue({0, 1, 2, 4}), history);
  EXPECT_TRUE(selection.bridged);
  // Anchor 0, then earliest new-component signal: position 2 (worker 2).
  EXPECT_EQ(selection.queue_positions, (std::vector<size_t>{0, 2}));
}

TEST(GroupFilterTest, LargerGroupCoversMultipleComponents) {
  GroupFilter filter(3);
  GroupHistory history(6, 3);
  history.Record({0, 1});
  history.Record({2, 3});
  history.Record({4, 5});
  ASSERT_TRUE(history.IsFrozen());

  auto selection = filter.Select(MakeQueue({0, 1, 2, 4}), history);
  EXPECT_TRUE(selection.bridged);
  // Anchor 0 (comp A), then 2 (comp B), then 4 (comp C).
  EXPECT_EQ(selection.queue_positions, (std::vector<size_t>{0, 2, 3}));
}

TEST(GroupFilterTest, FillsWithFifoAfterCoveringComponents) {
  GroupFilter filter(3);
  GroupHistory history(4, 2);
  history.Record({0, 1});
  history.Record({2, 3});
  ASSERT_TRUE(history.IsFrozen());

  // Components {0,1} and {2,3}; queue 0,1,2. Anchor 0, bridge 2 (pos 2),
  // fill with 1 (pos 1).
  auto selection = filter.Select(MakeQueue({0, 1, 2}), history);
  EXPECT_TRUE(selection.bridged);
  EXPECT_EQ(selection.queue_positions, (std::vector<size_t>{0, 1, 2}));
}

Topology TwoNodesOfThree() {
  Topology topo;
  Status s = Topology::FromNodes({{0, 1, 2}, {3, 4, 5}}, &topo);
  EXPECT_TRUE(s.ok()) << s.message();
  return topo;
}

TEST(GroupFilterTopologyTest, TightBudgetRejectsCrossNodeFifoPick) {
  // Queue head pairs worker 0 with worker 3 — a cross-node ring of cost
  // 2 * inter_cost = 8. With a budget of 4 the FIFO pick is over budget and
  // the filter repairs toward node 0's co-residents instead.
  GroupFilter filter(2, TwoNodesOfThree(), /*cost_budget=*/4.0);
  GroupHistory history(6, 4);
  auto selection = filter.Select(MakeQueue({0, 3, 1, 4}), history);
  EXPECT_EQ(selection.queue_positions, (std::vector<size_t>{0, 2}));
}

TEST(GroupFilterTopologyTest, LooseBudgetKeepsFifoPick) {
  GroupFilter filter(2, TwoNodesOfThree(), /*cost_budget=*/100.0);
  GroupHistory history(6, 4);
  auto selection = filter.Select(MakeQueue({0, 3, 1, 4}), history);
  EXPECT_EQ(selection.queue_positions, (std::vector<size_t>{0, 1}));
}

TEST(GroupFilterTopologyTest, NoBudgetMeansPlainFifo) {
  GroupFilter filter(2, TwoNodesOfThree());
  GroupHistory history(6, 4);
  auto selection = filter.Select(MakeQueue({0, 3, 1, 4}), history);
  EXPECT_EQ(selection.queue_positions, (std::vector<size_t>{0, 1}));
}

TEST(GroupFilterTopologyTest, BudgetRepairNeverStallsWhenNoCheaperRing) {
  // Every queued pair crosses nodes: the repair cannot beat FIFO, so the
  // over-budget FIFO pick stands — liveness over thrift.
  GroupFilter filter(2, TwoNodesOfThree(), /*cost_budget=*/4.0);
  GroupHistory history(6, 4);
  auto selection = filter.Select(MakeQueue({0, 3}), history);
  EXPECT_EQ(selection.queue_positions, (std::vector<size_t>{0, 1}));
}

TEST(GroupFilterTopologyTest, IntraNodeModeRequiresNodeCompleteGroup) {
  GroupFilter filter(3, TwoNodesOfThree());
  GroupHistory history(6, 4);
  // Node 1 has all three members queued; node 0 only two. The filter skips
  // the earlier partial node and selects node 1's complement.
  auto selection = filter.Select(MakeQueue({0, 3, 1, 4, 5}), history,
                                 GroupSelectMode::kIntraNode);
  EXPECT_EQ(selection.queue_positions, (std::vector<size_t>{1, 3, 4}));
}

TEST(GroupFilterTopologyTest, IntraNodeModeHoldsWhenNoNodeIsComplete) {
  GroupFilter filter(3, TwoNodesOfThree());
  GroupHistory history(6, 4);
  // Three signals queued but from both nodes: hold (empty selection).
  auto selection = filter.Select(MakeQueue({0, 3, 1, 4}), history,
                                 GroupSelectMode::kIntraNode);
  EXPECT_TRUE(selection.queue_positions.empty());
}

TEST(GroupFilterTopologyTest, CrossNodeModeCoversNodesFirst) {
  GroupFilter filter(2, TwoNodesOfThree());
  GroupHistory history(6, 4);
  // FIFO would take {0, 1} (same node); the merge pass prefers covering a
  // second node: {0, 3}.
  auto selection = filter.Select(MakeQueue({0, 1, 2, 3}), history,
                                 GroupSelectMode::kCrossNode);
  EXPECT_EQ(selection.queue_positions, (std::vector<size_t>{0, 3}));
}

TEST(GroupFilterTopologyTest, CrossNodeModeFillsFifoWhenOneNodeQueued) {
  GroupFilter filter(2, TwoNodesOfThree());
  GroupHistory history(6, 4);
  auto selection = filter.Select(MakeQueue({0, 1, 2}), history,
                                 GroupSelectMode::kCrossNode);
  EXPECT_EQ(selection.queue_positions, (std::vector<size_t>{0, 1}));
}

TEST(GroupFilterTopologyTest, FrozenBridgePrefersCheapLinks) {
  // Components {0,1} (node 0) and {2} vs {5}: both bridge candidates are in
  // uncovered components, but worker 2 shares the anchor's node while 5 is
  // across the inter-node link — the cost-aware bridge takes 2.
  GroupFilter filter(2, TwoNodesOfThree());
  GroupHistory history(6, 3);
  history.Record({0, 1});
  history.Record({0, 1});
  history.Record({0, 1});
  ASSERT_TRUE(history.IsFrozen());
  auto selection = filter.Select(MakeQueue({0, 5, 2}), history);
  EXPECT_TRUE(selection.bridged);
  EXPECT_EQ(selection.queue_positions, (std::vector<size_t>{0, 2}));
}

TEST(GroupFilterTopologyTest, FrozenBridgeSkippedInIntraNodeMode) {
  // Under the two-level schedule the window graph is disconnected across
  // nodes by design; intra-node steps must not be hijacked into bridges.
  GroupFilter filter(3, TwoNodesOfThree());
  GroupHistory history(6, 3);
  history.Record({0, 1, 2});
  history.Record({3, 4, 5});
  history.Record({0, 1, 2});
  ASSERT_TRUE(history.IsFrozen());
  auto selection = filter.Select(MakeQueue({0, 1, 2, 3}), history,
                                 GroupSelectMode::kIntraNode);
  EXPECT_FALSE(selection.bridged);
  EXPECT_EQ(selection.queue_positions, (std::vector<size_t>{0, 1, 2}));
}

}  // namespace
}  // namespace pr
