#include <gtest/gtest.h>

#include "core/group_filter.h"

namespace pr {
namespace {

std::deque<ReadySignal> MakeQueue(const std::vector<int>& workers) {
  std::deque<ReadySignal> q;
  for (int w : workers) q.push_back(ReadySignal{w, 0});
  return q;
}

TEST(GroupFilterTest, FifoWhenHealthy) {
  GroupFilter filter(3);
  GroupHistory history(8, 4);  // empty -> not frozen
  auto selection = filter.Select(MakeQueue({5, 2, 7, 1}), history);
  EXPECT_EQ(selection.queue_positions, (std::vector<size_t>{0, 1, 2}));
  EXPECT_FALSE(selection.bridged);
}

TEST(GroupFilterTest, FifoWhenWindowConnected) {
  GroupFilter filter(2);
  GroupHistory history(4, 3);
  history.Record({0, 1});
  history.Record({1, 2});
  history.Record({2, 3});
  auto selection = filter.Select(MakeQueue({0, 1, 2}), history);
  EXPECT_EQ(selection.queue_positions, (std::vector<size_t>{0, 1}));
  EXPECT_FALSE(selection.bridged);
}

TEST(GroupFilterTest, BridgesAcrossComponentsWhenFrozen) {
  GroupFilter filter(2);
  GroupHistory history(4, 3);
  // Frozen history: components {0,1} and {2,3}.
  history.Record({0, 1});
  history.Record({2, 3});
  history.Record({0, 1});
  ASSERT_TRUE(history.IsFrozen());

  // FIFO would pick {0, 1} (same component); the filter must bridge to
  // worker 2 further down the queue.
  auto selection = filter.Select(MakeQueue({0, 1, 2}), history);
  EXPECT_TRUE(selection.bridged);
  EXPECT_EQ(selection.queue_positions, (std::vector<size_t>{0, 2}));
}

TEST(GroupFilterTest, FrozenButNoCrossComponentSignalFallsBackToFifo) {
  GroupFilter filter(2);
  GroupHistory history(4, 3);
  history.Record({0, 1});
  history.Record({2, 3});
  history.Record({0, 1});
  ASSERT_TRUE(history.IsFrozen());

  // Only component-{0,1} members are waiting: liveness beats bridging.
  auto selection = filter.Select(MakeQueue({0, 1}), history);
  EXPECT_FALSE(selection.bridged);
  EXPECT_EQ(selection.queue_positions, (std::vector<size_t>{0, 1}));
}

TEST(GroupFilterTest, BridgePrefersEarliestCrossComponentSignal) {
  GroupFilter filter(2);
  GroupHistory history(6, 3);
  history.Record({0, 1});
  history.Record({2, 3});
  history.Record({4, 5});
  ASSERT_TRUE(history.IsFrozen());

  // Queue: 0 (comp A), 1 (comp A), 2 (comp B), 4 (comp C).
  auto selection = filter.Select(MakeQueue({0, 1, 2, 4}), history);
  EXPECT_TRUE(selection.bridged);
  // Anchor 0, then earliest new-component signal: position 2 (worker 2).
  EXPECT_EQ(selection.queue_positions, (std::vector<size_t>{0, 2}));
}

TEST(GroupFilterTest, LargerGroupCoversMultipleComponents) {
  GroupFilter filter(3);
  GroupHistory history(6, 3);
  history.Record({0, 1});
  history.Record({2, 3});
  history.Record({4, 5});
  ASSERT_TRUE(history.IsFrozen());

  auto selection = filter.Select(MakeQueue({0, 1, 2, 4}), history);
  EXPECT_TRUE(selection.bridged);
  // Anchor 0 (comp A), then 2 (comp B), then 4 (comp C).
  EXPECT_EQ(selection.queue_positions, (std::vector<size_t>{0, 2, 3}));
}

TEST(GroupFilterTest, FillsWithFifoAfterCoveringComponents) {
  GroupFilter filter(3);
  GroupHistory history(4, 2);
  history.Record({0, 1});
  history.Record({2, 3});
  ASSERT_TRUE(history.IsFrozen());

  // Components {0,1} and {2,3}; queue 0,1,2. Anchor 0, bridge 2 (pos 2),
  // fill with 1 (pos 1).
  auto selection = filter.Select(MakeQueue({0, 1, 2}), history);
  EXPECT_TRUE(selection.bridged);
  EXPECT_EQ(selection.queue_positions, (std::vector<size_t>{0, 1, 2}));
}

}  // namespace
}  // namespace pr
