#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault_plan.h"
#include "scenario/scale_policy.h"
#include "scenario/scenario.h"
#include "topo/topology.h"
#include "train/run.h"

namespace pr {
namespace {

// A hand-written spec touching every event kind, worker- and node-keyed.
ScenarioSpec AllKindsSpec() {
  ScenarioSpec spec;
  spec.name = "all-kinds";
  spec.seed = 42;
  spec.expected_iteration_seconds = 0.02;
  ScenarioEvent e;
  e.kind = ScenarioEventKind::kDepart;
  e.time = 0.1;
  e.worker = 1;
  e.duration = 0.05;
  spec.events.push_back(e);
  e = ScenarioEvent();
  e.kind = ScenarioEventKind::kArrive;
  e.time = 0.2;
  e.worker = 2;
  spec.events.push_back(e);
  e = ScenarioEvent();
  e.kind = ScenarioEventKind::kSlowdown;
  e.time = 0.3;
  e.worker = 0;
  e.duration = 0.1;
  e.factor = 2.5;
  spec.events.push_back(e);
  e = ScenarioEvent();
  e.kind = ScenarioEventKind::kCrash;
  e.time = 0.4;
  e.worker = 3;
  spec.events.push_back(e);
  e = ScenarioEvent();
  e.kind = ScenarioEventKind::kHang;
  e.time = 0.5;
  e.worker = 1;
  e.duration = 0.2;
  spec.events.push_back(e);
  e = ScenarioEvent();
  e.kind = ScenarioEventKind::kPartition;
  e.time = 0.6;
  e.node = 1;
  e.duration = 0.15;
  spec.events.push_back(e);
  return spec;
}

bool SpecsEqual(const ScenarioSpec& a, const ScenarioSpec& b) {
  if (a.name != b.name || a.seed != b.seed ||
      a.expected_iteration_seconds != b.expected_iteration_seconds ||
      a.events.size() != b.events.size()) {
    return false;
  }
  for (size_t i = 0; i < a.events.size(); ++i) {
    const ScenarioEvent& x = a.events[i];
    const ScenarioEvent& y = b.events[i];
    if (x.kind != y.kind || x.time != y.time || x.worker != y.worker ||
        x.node != y.node || x.duration != y.duration ||
        x.factor != y.factor) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Dialects.
// ---------------------------------------------------------------------------

TEST(ScenarioIoTest, TextDialectRoundTripsByteIdentically) {
  const ScenarioSpec spec = AllKindsSpec();
  const std::string text = SerializeScenario(spec);
  ScenarioSpec parsed;
  ASSERT_TRUE(ParseScenario(text, &parsed).ok());
  EXPECT_TRUE(SpecsEqual(spec, parsed));
  EXPECT_EQ(text, SerializeScenario(parsed));
}

TEST(ScenarioIoTest, JsonDialectRoundTrips) {
  const ScenarioSpec spec = AllKindsSpec();
  const std::string json = ScenarioToJson(spec);
  ScenarioSpec parsed;
  ASSERT_TRUE(ScenarioFromJson(json, &parsed).ok());
  EXPECT_TRUE(SpecsEqual(spec, parsed));
  EXPECT_EQ(SerializeScenario(spec), SerializeScenario(parsed));
}

TEST(ScenarioIoTest, MalformedTracesAreRejected) {
  ScenarioSpec out;
  // Wrong header version.
  EXPECT_FALSE(ParseScenario("prtrace 2\nname x\n", &out).ok());
  // Missing header entirely.
  EXPECT_FALSE(ParseScenario("name x\n", &out).ok());
  // Unknown key is version skew, not noise.
  EXPECT_FALSE(ParseScenario("prtrace 1\nbogus 3\n", &out).ok());
  // Unknown event kind.
  EXPECT_FALSE(
      ParseScenario("prtrace 1\nevent explode time 1\n", &out).ok());
  // Event without a time.
  EXPECT_FALSE(
      ParseScenario("prtrace 1\nevent depart worker 1\n", &out).ok());
  // Unknown event field.
  EXPECT_FALSE(
      ParseScenario("prtrace 1\nevent depart time 1 blast 3\n", &out).ok());
  // JSON dialect: bad kind, unknown key, missing marker.
  EXPECT_FALSE(ScenarioFromJson(
                   R"({"prtrace": 1, "events": [{"kind": "explode", "time": 1}]})",
                   &out)
                   .ok());
  EXPECT_FALSE(
      ScenarioFromJson(R"({"prtrace": 1, "bogus": 3})", &out).ok());
  EXPECT_FALSE(ScenarioFromJson(R"({"name": "x"})", &out).ok());
}

TEST(ScenarioIoTest, ValidateRejectsOutOfRangeTargets) {
  const Topology flat;
  const Topology racks = Topology::Uniform(2, 2);
  ScenarioSpec spec;
  spec.events.push_back(ScenarioEvent());
  spec.events[0].kind = ScenarioEventKind::kDepart;
  spec.events[0].time = 0.5;
  spec.events[0].duration = 0.1;

  // Neither worker nor node set.
  EXPECT_FALSE(ValidateScenario(spec, 4, flat).ok());
  // Worker out of range.
  spec.events[0].worker = 9;
  EXPECT_FALSE(ValidateScenario(spec, 4, flat).ok());
  spec.events[0].worker = 1;
  EXPECT_TRUE(ValidateScenario(spec, 4, flat).ok());
  // Node-keyed event needs a non-flat topology.
  spec.events[0].worker = -1;
  spec.events[0].node = 1;
  EXPECT_FALSE(ValidateScenario(spec, 4, flat).ok());
  EXPECT_TRUE(ValidateScenario(spec, 4, racks).ok());
  spec.events[0].node = 7;
  EXPECT_FALSE(ValidateScenario(spec, 4, racks).ok());
  // Negative time / slowdown factor below 1.
  spec.events[0].node = 1;
  spec.events[0].time = -0.1;
  EXPECT_FALSE(ValidateScenario(spec, 4, racks).ok());
  spec.events[0].time = 0.5;
  spec.events[0].kind = ScenarioEventKind::kSlowdown;
  spec.events[0].factor = 0.5;
  EXPECT_FALSE(ValidateScenario(spec, 4, racks).ok());
}

// ---------------------------------------------------------------------------
// Generators: pure functions of their options.
// ---------------------------------------------------------------------------

TEST(ScenarioGeneratorTest, GeneratorsAreDeterministicInTheirOptions) {
  PoissonChurnOptions churn;
  churn.seed = 9;
  EXPECT_EQ(SerializeScenario(MakePoissonChurnTrace(churn)),
            SerializeScenario(MakePoissonChurnTrace(churn)));
  PoissonChurnOptions churn2 = churn;
  churn2.seed = 10;
  EXPECT_NE(SerializeScenario(MakePoissonChurnTrace(churn)),
            SerializeScenario(MakePoissonChurnTrace(churn2)));

  HeavyTailSlowdownOptions slow;
  slow.seed = 9;
  const ScenarioSpec tail = MakeHeavyTailSlowdownTrace(slow);
  EXPECT_EQ(SerializeScenario(tail),
            SerializeScenario(MakeHeavyTailSlowdownTrace(slow)));
  for (const ScenarioEvent& e : tail.events) {
    EXPECT_EQ(e.kind, ScenarioEventKind::kSlowdown);
    EXPECT_LT(e.time, slow.horizon_seconds);
    EXPECT_GE(e.factor, slow.min_factor);
    EXPECT_LE(e.factor, slow.max_factor);
  }

  const Topology topo = Topology::Uniform(3, 2);
  RackChurnOptions rack;
  rack.seed = 9;
  rack.departures_per_second = 1.0;
  const ScenarioSpec racks = MakeRackChurnTrace(topo, rack);
  EXPECT_EQ(SerializeScenario(racks),
            SerializeScenario(MakeRackChurnTrace(topo, rack)));
  for (const ScenarioEvent& e : racks.events) {
    EXPECT_EQ(e.worker, -1);
    EXPECT_GE(e.node, 0);
    EXPECT_LT(e.node, topo.num_nodes());
  }
}

// ---------------------------------------------------------------------------
// Compilation.
// ---------------------------------------------------------------------------

TEST(ScenarioCompileTest, ReferenceTraceExpandsNodeEventsAndCounts) {
  const Topology topo = Topology::Uniform(2, 2);  // workers {0,1} | {2,3}
  const ScenarioSpec spec = MakeReferenceTrace(4, topo, 20);
  ASSERT_EQ(spec.events.size(), 3u);

  CompiledScenario compiled;
  ASSERT_TRUE(CompileScenario(spec, 4, topo, FaultPlan(), &compiled).ok());

  // One lone departure plus the whole last node (workers 2 and 3).
  ASSERT_EQ(compiled.churn.size(), 3u);
  std::vector<int> churn_workers;
  for (const ChurnWindow& w : compiled.churn) {
    churn_workers.push_back(w.worker);
  }
  EXPECT_EQ(churn_workers, (std::vector<int>{1, 2, 3}));

  // The slowdown window became one iteration-keyed fault on worker 0.
  ASSERT_EQ(compiled.fault.worker_events.size(), 1u);
  EXPECT_EQ(compiled.fault.worker_events[0].worker, 0);
  EXPECT_EQ(compiled.fault.worker_events[0].kind,
            WorkerFaultEvent::Kind::kSlowdown);

  // Compile counts are the authored per-kind totals, not the expansion.
  const auto counts = ScenarioMetricCounts(spec);
  EXPECT_EQ(compiled.counts, counts);
  for (const auto& [name, value] : counts) {
    if (name == "scenario.events_total") {
      EXPECT_EQ(value, 3.0);
    } else if (name == "scenario.departs") {
      EXPECT_EQ(value, 2.0);
    } else if (name == "scenario.slowdowns") {
      EXPECT_EQ(value, 1.0);
    } else if (name == "scenario.crashes") {
      EXPECT_EQ(value, 0.0);
    }
  }
}

// The multi-seed determinism regression: a combined crash + hang + slowdown
// + depart + partition trace compiled over a base plan that already carries
// link delays and a controller sever must produce the identical event
// stream every time — this one compiler feeds both engines, so compile
// determinism is what makes threaded-vs-sim replay agree.
TEST(ScenarioCompileTest, CombinedFaultCompileIsDeterministicAcrossSeeds) {
  const Topology topo = Topology::Uniform(2, 2);
  FaultPlan base;
  base.link_delay_seconds[{0, 2}] = 0.002;
  ControllerFaultEvent sever;
  sever.after_groups = 2;
  sever.down_seconds = 0.1;
  base.controller_events.push_back(sever);

  for (uint64_t seed = 1; seed <= 3; ++seed) {
    ScenarioSpec spec = AllKindsSpec();
    spec.seed = seed;
    CompiledScenario a, b;
    ASSERT_TRUE(CompileScenario(spec, 4, topo, base, &a).ok());
    ASSERT_TRUE(CompileScenario(spec, 4, topo, base, &b).ok());

    // Identical event sequences, field by field.
    ASSERT_EQ(a.fault.worker_events.size(), b.fault.worker_events.size());
    for (size_t i = 0; i < a.fault.worker_events.size(); ++i) {
      const WorkerFaultEvent& x = a.fault.worker_events[i];
      const WorkerFaultEvent& y = b.fault.worker_events[i];
      EXPECT_EQ(x.worker, y.worker);
      EXPECT_EQ(x.kind, y.kind);
      EXPECT_EQ(x.after_iterations, y.after_iterations);
      EXPECT_EQ(x.slowdown_factor, y.slowdown_factor);
    }
    ASSERT_EQ(a.churn.size(), b.churn.size());
    for (size_t i = 0; i < a.churn.size(); ++i) {
      EXPECT_EQ(a.churn[i].worker, b.churn[i].worker);
      EXPECT_EQ(a.churn[i].after_iterations, b.churn[i].after_iterations);
      EXPECT_EQ(a.churn[i].pause_seconds, b.churn[i].pause_seconds);
    }
    ASSERT_EQ(a.fault.partition_events.size(),
              b.fault.partition_events.size());

    // The base plan survives the merge: link delays and the controller
    // sever are still there, and the combined faults force the hardened
    // protocol.
    EXPECT_EQ(a.fault.link_delay_seconds.size(), 1u);
    EXPECT_EQ(a.fault.controller_events.size(), 1u);
    EXPECT_TRUE(a.fault.force_fault_tolerant);
    EXPECT_EQ(a.fault.seed, seed);

    // The partition event targeted node 1 = workers {2, 3}.
    ASSERT_EQ(a.fault.partition_events.size(), 2u);
    EXPECT_EQ(a.fault.partition_events[0].worker, 2);
    EXPECT_EQ(a.fault.partition_events[1].worker, 3);
  }
}

// ---------------------------------------------------------------------------
// ScalePolicy / ScaleDirector units.
// ---------------------------------------------------------------------------

ScaleSample Sample(double time, double idle, int active) {
  ScaleSample s;
  s.time = time;
  s.mean_idle_fraction = idle;
  s.active_workers = active;
  return s;
}

TEST(ScalePolicyTest, ThresholdHysteresisWithClamps) {
  ScalePolicyConfig config;
  config.kind = ScalePolicyKind::kThreshold;
  config.idle_high = 0.5;
  config.idle_low = 0.15;
  config.min_workers = 2;
  ScalePolicy policy(config, 8);

  // In the dead band: no change.
  EXPECT_EQ(policy.Decide(Sample(0.0, 0.3, 8)), 8);
  // Above idle_high: shrink by one.
  EXPECT_EQ(policy.Decide(Sample(1.0, 0.8, 8)), 7);
  // Below idle_low: grow by one.
  EXPECT_EQ(policy.Decide(Sample(2.0, 0.05, 7)), 8);
  // Clamped at max (= num_workers when max_workers is 0).
  EXPECT_EQ(policy.Decide(Sample(3.0, 0.01, 8)), 8);
  // Clamped at min_workers.
  EXPECT_EQ(policy.Decide(Sample(4.0, 0.9, 2)), 2);
}

TEST(ScalePolicyTest, TrendFiresOnRisingIdleBeforeThreshold) {
  ScalePolicyConfig config;
  config.kind = ScalePolicyKind::kTrend;
  config.idle_high = 0.5;
  config.idle_low = 0.1;
  config.trend_window = 3;
  config.min_workers = 2;
  ScalePolicy policy(config, 8);

  // Idle climbing through the band midpoint but still below idle_high:
  // the threshold policy would hold; the trend shrinks early.
  EXPECT_EQ(policy.Decide(Sample(0.0, 0.20, 8)), 8);  // window filling
  EXPECT_EQ(policy.Decide(Sample(1.0, 0.32, 8)), 8);  // window filling
  EXPECT_EQ(policy.Decide(Sample(2.0, 0.44, 8)), 7);  // slope > 0, > mid
  // Falling idle below the midpoint grows again.
  ScalePolicy recover(config, 8);
  EXPECT_EQ(recover.Decide(Sample(0.0, 0.30, 6)), 6);
  EXPECT_EQ(recover.Decide(Sample(1.0, 0.18, 6)), 6);
  EXPECT_EQ(recover.Decide(Sample(2.0, 0.06, 6)), 7);
}

TEST(ScaleDirectorTest, PausesHighestIdsFirstAndResumesInReverse) {
  ScaleDirector director(6);
  EXPECT_EQ(director.active(), 6);

  // Shrink to 4: workers 5 then 4 pause; the active set stays a prefix.
  EXPECT_EQ(director.SetTarget(4), -2);
  EXPECT_EQ(director.active(), 4);
  EXPECT_TRUE(director.ShouldPause(5));
  EXPECT_TRUE(director.ShouldPause(4));
  for (int w = 0; w < 4; ++w) EXPECT_FALSE(director.ShouldPause(w));

  // Grow back to 5: the lowest paused id (4) resumes first.
  EXPECT_EQ(director.SetTarget(5), 1);
  EXPECT_FALSE(director.ShouldPause(4));
  EXPECT_TRUE(director.ShouldPause(5));

  // Targets clamp to [1, num_workers]; no-op returns 0.
  EXPECT_EQ(director.SetTarget(5), 0);
  EXPECT_EQ(director.SetTarget(100), 1);
  EXPECT_EQ(director.active(), 6);
  EXPECT_EQ(director.SetTarget(-3), -5);
  EXPECT_EQ(director.active(), 1);
}

// ---------------------------------------------------------------------------
// Cross-engine replay: the acceptance gate. The reference trace must run
// through both engines with identical scenario.* metric names and compile
// counts, and the fault.* family present on both sides.
// ---------------------------------------------------------------------------

RunConfig ReferenceRunConfig(uint64_t seed) {
  RunConfig config;
  config.strategy.kind = StrategyKind::kPReduceConst;
  config.strategy.group_size = 2;
  config.run.num_workers = 4;
  config.run.iterations_per_worker = 12;
  config.run.model.hidden = {8};
  config.run.batch_size = 8;
  config.run.dataset.num_train = 256;
  config.run.dataset.num_test = 64;
  config.run.dataset.dim = 8;
  config.run.dataset.num_classes = 2;
  config.run.seed = seed;
  config.run.worker_delay_seconds.assign(4, 0.01);
  config.run.topology = Topology::Uniform(2, 2);
  config.run.scenario = MakeReferenceTrace(4, config.run.topology, 12);
  return config;
}

std::set<std::string> ScenarioCounterNames(const MetricsSnapshot& metrics) {
  std::set<std::string> names;
  for (const auto& [name, value] : metrics.counters) {
    if (name.rfind("scenario.", 0) == 0) names.insert(name);
  }
  return names;
}

TEST(ScenarioReplayTest, ReferenceTraceReplaysInBothEnginesWithNameParity) {
  const RunConfig config = ReferenceRunConfig(5);
  const RunOutcome threaded = StartRun(config, EngineKind::kThreaded);
  const RunOutcome sim = StartRun(config, EngineKind::kSim);

  // Both engines expose the identical scenario.* counter name set.
  const std::set<std::string> threaded_names =
      ScenarioCounterNames(threaded.metrics);
  const std::set<std::string> sim_names = ScenarioCounterNames(sim.metrics);
  EXPECT_FALSE(threaded_names.empty());
  EXPECT_EQ(threaded_names, sim_names);

  // The compile counts agree with the authored trace on both sides.
  for (const auto& [name, value] :
       ScenarioMetricCounts(config.run.scenario)) {
    EXPECT_EQ(threaded.metrics.counter(name), value)
        << "threaded " << name;
    EXPECT_EQ(sim.metrics.counter(name), value) << "sim " << name;
  }

  // The fault.* family is present under both engines too.
  for (const char* name :
       {"fault.injected_drops", "fault.injected_dups",
        "fault.injected_delays", "fault.evictions", "fault.aborted_groups",
        "fault.retries"}) {
    EXPECT_TRUE(threaded.metrics.counters.count(name) != 0)
        << "threaded missing " << name;
    EXPECT_TRUE(sim.metrics.counters.count(name) != 0)
        << "sim missing " << name;
  }

  // The threaded run completed: every worker (departures rejoin) finished
  // its full budget.
  for (size_t iters : threaded.threaded.worker_iterations) {
    EXPECT_EQ(iters, config.run.iterations_per_worker);
  }
  EXPECT_GT(sim.sync_rounds, 0u);
}

TEST(ScenarioReplayTest, SimReplayIsDeterministicAcrossRepeatsAndSeeds) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const RunConfig config = ReferenceRunConfig(seed);
    const RunOutcome a = StartRun(config, EngineKind::kSim);
    const RunOutcome b = StartRun(config, EngineKind::kSim);
    EXPECT_EQ(a.final_loss, b.final_loss) << "seed " << seed;
    EXPECT_EQ(a.clock_seconds, b.clock_seconds) << "seed " << seed;
    EXPECT_EQ(a.metrics.counters, b.metrics.counters) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Autoscaling + graceful degradation through real runs.
// ---------------------------------------------------------------------------

TEST(ScenarioReplayTest, SimAutoscaleShrinksOnSustainedIdle) {
  RunConfig config = ReferenceRunConfig(6);
  config.run.scenario = ScenarioSpec();  // policy only, no trace
  config.run.iterations_per_worker = 30;
  config.strategy.scale_policy.kind = ScalePolicyKind::kThreshold;
  config.strategy.scale_policy.idle_high = 0.0;  // always "too idle"
  config.strategy.scale_policy.min_workers = 2;
  config.strategy.scale_policy.interval_seconds = 0.02;

  const RunOutcome outcome = StartRun(config, EngineKind::kSim);
  EXPECT_GE(outcome.metrics.counter("scenario.scale.shrink"), 1.0);
  EXPECT_GT(outcome.sync_rounds, 0u);
}

// Scenario traces are authored in scenario-seconds; the simulator runs on
// its cost model's virtual clock. Measure one local step's virtual
// duration on a fault-free run so events land at intended iterations
// (bench_scenarios calibrates the same way).
double ProbeSimStepSeconds(RunConfig config) {
  config.run.scenario = ScenarioSpec();
  config.strategy.scale_policy = ScalePolicyConfig();
  const RunOutcome probe = StartRun(config, EngineKind::kSim);
  EXPECT_GT(probe.clock_seconds, 0.0);
  return probe.clock_seconds /
         static_cast<double>(config.run.iterations_per_worker);
}

// Two workers gone from iteration ~3 for ~12 steps: only 2 of 4 live.
ScenarioSpec TwoWorkerOutageSpec(const std::string& name, double step) {
  ScenarioSpec spec;
  spec.name = name;
  spec.expected_iteration_seconds = step;
  for (int w = 2; w <= 3; ++w) {
    ScenarioEvent e;
    e.kind = ScenarioEventKind::kDepart;
    e.time = 3.0 * step;
    e.worker = w;
    e.duration = 12.0 * step;
    spec.events.push_back(e);
  }
  return spec;
}

TEST(ScenarioReplayTest, SimDegradesToSmallGroupsUnderChurn) {
  RunConfig config = ReferenceRunConfig(7);
  config.strategy.group_size = 3;
  config.strategy.scale_policy.min_group_size = 2;
  config.run.iterations_per_worker = 20;
  const double step = ProbeSimStepSeconds(config);
  // Two workers gone for most of the run: only 2 live < P = 3.
  config.run.scenario = TwoWorkerOutageSpec("churn-degrade", step);

  const RunOutcome outcome = StartRun(config, EngineKind::kSim);
  EXPECT_GE(outcome.metrics.counter("scenario.degrade.small_groups"), 1.0);
  EXPECT_GT(outcome.sync_rounds, 0u);
}

TEST(ScenarioReplayTest, SimTakesLocalStepsBelowLivenessFloor) {
  RunConfig config = ReferenceRunConfig(8);
  config.strategy.scale_policy.liveness_floor = 3;
  config.run.iterations_per_worker = 20;
  const double step = ProbeSimStepSeconds(config);
  config.run.scenario = TwoWorkerOutageSpec("floor-degrade", step);

  const RunOutcome outcome = StartRun(config, EngineKind::kSim);
  EXPECT_GE(outcome.metrics.counter("scenario.degrade.local_steps"), 1.0);
  EXPECT_GT(outcome.sync_rounds, 0u);
}

TEST(ScenarioReplayTest, ThreadedAutoscaleShrinksAndStillCompletes) {
  RunConfig config = ReferenceRunConfig(9);
  config.run.scenario = ScenarioSpec();  // policy only, no trace
  config.run.iterations_per_worker = 25;
  config.run.worker_delay_seconds.assign(4, 0.005);
  config.strategy.scale_policy.kind = ScalePolicyKind::kThreshold;
  config.strategy.scale_policy.idle_high = 0.0;  // always "too idle"
  config.strategy.scale_policy.min_workers = 2;
  config.strategy.scale_policy.interval_seconds = 0.02;

  const RunOutcome outcome = StartRun(config, EngineKind::kThreaded);
  EXPECT_GE(outcome.metrics.counter("scenario.scale.shrink"), 1.0);
  // Paused workers resume (deadline-bounded) and finish their budgets.
  for (size_t iters : outcome.threaded.worker_iterations) {
    EXPECT_EQ(iters, config.run.iterations_per_worker);
  }
}

}  // namespace
}  // namespace pr
