#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/controller.h"
#include "core/spectral.h"

namespace pr {
namespace {

ControllerOptions BasicOptions(int n, int p) {
  ControllerOptions opt;
  opt.num_workers = n;
  opt.group_size = p;
  return opt;
}

TEST(ControllerTest, NoGroupUntilPSignals) {
  Controller c(BasicOptions(4, 3));
  EXPECT_TRUE(c.OnReadySignal(0, 1).empty());
  EXPECT_TRUE(c.OnReadySignal(1, 1).empty());
  EXPECT_EQ(c.PendingSignals(), 2u);
  auto decisions = c.OnReadySignal(2, 1);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(c.PendingSignals(), 0u);
}

TEST(ControllerTest, FifoGroupFormation) {
  Controller c(BasicOptions(5, 2));
  c.OnReadySignal(3, 1);
  auto decisions = c.OnReadySignal(1, 1);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].members, (std::vector<int>{3, 1}));
}

TEST(ControllerTest, ConstantWeightsAreUniform) {
  Controller c(BasicOptions(4, 2));
  c.OnReadySignal(0, 5);
  auto decisions = c.OnReadySignal(1, 9);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].weights, (std::vector<double>{0.5, 0.5}));
  EXPECT_EQ(decisions[0].advanced_iteration, 9);
}

TEST(ControllerTest, DynamicWeightsFavorNewer) {
  ControllerOptions opt = BasicOptions(4, 2);
  opt.mode = PartialReduceMode::kDynamic;
  opt.dynamic.alpha = 0.5;
  Controller c(opt);
  c.OnReadySignal(0, 10);
  auto decisions = c.OnReadySignal(1, 2);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_GT(decisions[0].weights[0], decisions[0].weights[1]);
  EXPECT_EQ(decisions[0].advanced_iteration, 10);
}

TEST(ControllerTest, GroupIdsIncrease) {
  Controller c(BasicOptions(4, 2));
  c.OnReadySignal(0, 1);
  auto d1 = c.OnReadySignal(1, 1);
  c.OnReadySignal(2, 1);
  auto d2 = c.OnReadySignal(3, 1);
  ASSERT_EQ(d1.size(), 1u);
  ASSERT_EQ(d2.size(), 1u);
  EXPECT_LT(d1[0].group_id, d2[0].group_id);
}

TEST(ControllerTest, StatsCountSignalsAndGroups) {
  Controller c(BasicOptions(4, 2));
  for (int i = 0; i < 4; ++i) c.OnReadySignal(i, 1);
  EXPECT_EQ(c.stats().signals_received, 4u);
  EXPECT_EQ(c.stats().groups_formed, 2u);
}

/// Drives the controller with the adversarial arrival order 0,1,2,3
/// repeated: without frozen avoidance this pairs (0,1) and (2,3) forever.
std::vector<GroupDecision> DriveAdversarial(Controller* c, int rounds) {
  std::vector<GroupDecision> all;
  std::vector<int64_t> iter(4, 0);
  std::set<int> queued;
  for (int round = 0; round < rounds; ++round) {
    for (int w : {0, 1, 2, 3}) {
      if (queued.count(w)) continue;  // still held by the controller
      auto decisions = c->OnReadySignal(w, ++iter[w]);
      queued.insert(w);
      for (auto& d : decisions) {
        for (int m : d.members) queued.erase(m);
        all.push_back(std::move(d));
      }
    }
  }
  return all;
}

TEST(ControllerTest, FrozenAvoidanceBridgesAdversarialPairs) {
  Controller c(BasicOptions(4, 2));
  auto decisions = DriveAdversarial(&c, 20);
  uint64_t bridged = 0;
  for (const auto& d : decisions) bridged += d.bridged ? 1 : 0;
  EXPECT_GT(bridged, 0u);
  EXPECT_GT(c.stats().frozen_detections, 0u);
  EXPECT_EQ(c.stats().bridged_groups, bridged);
}

TEST(ControllerTest, FrozenAvoidanceDisabledNeverBridges) {
  ControllerOptions opt = BasicOptions(4, 2);
  opt.frozen_avoidance = false;
  Controller c(opt);
  auto decisions = DriveAdversarial(&c, 20);
  for (const auto& d : decisions) {
    EXPECT_FALSE(d.bridged);
    // FIFO on this arrival order always pairs within the speed class.
    EXPECT_TRUE((d.members == std::vector<int>{0, 1}) ||
                (d.members == std::vector<int>{2, 3}));
  }
  EXPECT_EQ(c.stats().bridged_groups, 0u);
}

TEST(ControllerTest, BridgedScheduleKeepsSyncGraphConnectedOverTime) {
  Controller c(BasicOptions(4, 2));
  auto decisions = DriveAdversarial(&c, 30);
  SyncGraph global(4);
  for (const auto& d : decisions) global.AddGroup(d.members);
  EXPECT_TRUE(global.IsConnected());
}

TEST(ControllerTest, HeldSignalsReleaseWhenBridgeArrives) {
  // Freeze the history on pairs {0,1}/{2,3}, then have 0 and 1 queue: the
  // controller must hold them (single component) and release with a
  // bridging group when 2 signals.
  Controller c(BasicOptions(4, 2));
  c.OnReadySignal(0, 1);
  c.OnReadySignal(1, 1);
  c.OnReadySignal(2, 1);
  c.OnReadySignal(3, 1);
  c.OnReadySignal(0, 2);
  c.OnReadySignal(1, 2);  // history now frozen on {0,1},{2,3},{0,1}
  ASSERT_TRUE(c.history().IsFrozen());

  EXPECT_TRUE(c.OnReadySignal(2, 2).empty());  // pending [2]
  EXPECT_TRUE(c.OnReadySignal(3, 2).empty())
      << "queue {2,3} must be held while frozen";
  EXPECT_EQ(c.PendingSignals(), 2u);

  auto decisions = c.OnReadySignal(0, 3);  // cross-component signal arrives
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_TRUE(decisions[0].bridged);
  // The bridging group must span both components.
  SyncGraph frozen_graph = c.history().BuildSyncGraph();
  (void)frozen_graph;
  std::set<int> members(decisions[0].members.begin(),
                        decisions[0].members.end());
  EXPECT_TRUE(members.count(0) == 1);
  EXPECT_TRUE(members.count(2) == 1 || members.count(3) == 1);
}

TEST(ControllerTest, DepartureReleasesHold) {
  Controller c(BasicOptions(4, 2));
  // Freeze on {0,1},{2,3},{0,1}.
  c.OnReadySignal(0, 1);
  c.OnReadySignal(1, 1);
  c.OnReadySignal(2, 1);
  c.OnReadySignal(3, 1);
  c.OnReadySignal(0, 2);
  c.OnReadySignal(1, 2);
  ASSERT_TRUE(c.history().IsFrozen());
  EXPECT_TRUE(c.OnReadySignal(2, 2).empty());
  EXPECT_TRUE(c.OnReadySignal(3, 2).empty());  // held, waiting for 0 or 1

  // Workers 0 and 1 leave: bridging becomes impossible; the hold must
  // release {2,3} rather than deadlock.
  EXPECT_TRUE(c.NotifyWorkerLeft(0).empty());
  auto decisions = c.NotifyWorkerLeft(1);
  ASSERT_EQ(decisions.size(), 1u);
  std::set<int> members(decisions[0].members.begin(),
                        decisions[0].members.end());
  EXPECT_EQ(members, (std::set<int>{2, 3}));
}

TEST(ControllerTest, RejoinedWorkerParticipatesAgain) {
  Controller c(BasicOptions(4, 2));
  EXPECT_TRUE(c.NotifyWorkerLeft(3).empty());
  // Remaining workers keep forming groups.
  c.OnReadySignal(0, 1);
  auto d = c.OnReadySignal(1, 1);
  ASSERT_EQ(d.size(), 1u);

  EXPECT_TRUE(c.NotifyWorkerRejoined(3).empty());
  c.OnReadySignal(3, 1);
  auto d2 = c.OnReadySignal(2, 1);
  ASSERT_EQ(d2.size(), 1u);
  EXPECT_EQ(d2[0].members, (std::vector<int>{3, 2}));
}

TEST(ControllerTest, RejoinRestoresHoldSemantics) {
  // After departures made bridging impossible, a rejoin makes the
  // controller hold single-component queues again.
  Controller c(BasicOptions(4, 2));
  // Freeze on {0,1},{2,3},{0,1}.
  c.OnReadySignal(0, 1);
  c.OnReadySignal(1, 1);
  c.OnReadySignal(2, 1);
  c.OnReadySignal(3, 1);
  c.OnReadySignal(0, 2);
  c.OnReadySignal(1, 2);
  ASSERT_TRUE(c.history().IsFrozen());
  c.NotifyWorkerLeft(0);
  c.NotifyWorkerLeft(1);
  c.NotifyWorkerRejoined(0);  // worker 0 is back: bridge possible again
  EXPECT_TRUE(c.OnReadySignal(2, 2).empty());
  EXPECT_TRUE(c.OnReadySignal(3, 2).empty());  // held, waiting for 0
  auto d = c.OnReadySignal(0, 3);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_TRUE(d[0].bridged);
}

TEST(ControllerTest, RandomArrivalsProduceDoublyStochasticExpectation) {
  ControllerOptions opt = BasicOptions(6, 3);
  opt.record_sync_matrices = true;
  Controller c(opt);
  Rng rng(3);
  // Emulate the worker loop: a worker that signaled is queued until its
  // group forms; only running workers can signal.
  std::vector<int64_t> iter(6, 0);
  std::set<int> queued;
  for (int step = 0; step < 3000; ++step) {
    std::vector<int> running;
    for (int w = 0; w < 6; ++w) {
      if (queued.count(w) == 0) running.push_back(w);
    }
    ASSERT_FALSE(running.empty());
    const int w = running[rng.UniformInt(running.size())];
    auto decisions = c.OnReadySignal(w, ++iter[w]);
    queued.insert(w);
    for (const auto& d : decisions) {
      for (int m : d.members) queued.erase(m);
    }
  }
  SyncMatrix e = c.ExpectedSyncMatrix();
  EXPECT_LT(e.RowStochasticError(), 1e-9);
  EXPECT_LT(e.ColumnStochasticError(), 1e-9);
  const double rho = SpectralRho(e);
  EXPECT_GE(rho, 0.0);
  EXPECT_LT(rho, 1.0);
}

TEST(ControllerTest, DrainPendingEmptiesQueue) {
  Controller c(BasicOptions(4, 3));
  c.OnReadySignal(2, 7);
  c.OnReadySignal(0, 5);
  auto drained = c.DrainPending();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].worker, 2);
  EXPECT_EQ(drained[0].iteration, 7);
  EXPECT_EQ(drained[1].worker, 0);
  EXPECT_EQ(c.PendingSignals(), 0u);
}

TEST(ControllerTest, GroupSizeEqualsNBehavesLikeAllReduce) {
  ControllerOptions opt = BasicOptions(3, 3);
  opt.record_sync_matrices = true;
  Controller c(opt);
  for (int round = 0; round < 5; ++round) {
    c.OnReadySignal(0, round);
    c.OnReadySignal(1, round);
    auto decisions = c.OnReadySignal(2, round);
    ASSERT_EQ(decisions.size(), 1u);
    EXPECT_EQ(decisions[0].members.size(), 3u);
  }
  // rho of the all-reduce matrix is 0.
  EXPECT_NEAR(SpectralRho(c.ExpectedSyncMatrix()), 0.0, 1e-10);
}

ControllerOptions HierOptions(int cross_period) {
  // 2 nodes x 2 workers, P=2: intra groups are node-complete pairs.
  ControllerOptions opt = BasicOptions(4, 2);
  Status s =
      Topology::FromNodes({{0, 1}, {2, 3}}, &opt.topology);
  EXPECT_TRUE(s.ok()) << s.message();
  opt.hierarchy.enabled = true;
  opt.hierarchy.cross_period = cross_period;
  return opt;
}

// Feeds one ready signal per worker in the given order; returns all formed
// groups.
std::vector<GroupDecision> FeedRound(Controller* c,
                                     const std::vector<int>& order,
                                     int64_t iteration) {
  std::vector<GroupDecision> formed;
  for (int w : order) {
    for (GroupDecision& d : c->OnReadySignal(w, iteration)) {
      formed.push_back(std::move(d));
    }
  }
  return formed;
}

TEST(ControllerHierarchyTest, HoldsUntilNodeCompleteGroupArrives) {
  Controller c(HierOptions(/*cross_period=*/4));
  // Two signals from different nodes: enough for P=2 but not for a
  // node-complete group — the controller holds.
  EXPECT_TRUE(c.OnReadySignal(0, 1).empty());
  EXPECT_TRUE(c.OnReadySignal(2, 1).empty());
  EXPECT_EQ(c.PendingSignals(), 2u);
  // Worker 1 completes node 0.
  auto decisions = c.OnReadySignal(1, 1);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].members, (std::vector<int>{0, 1}));
  EXPECT_EQ(c.stats().intra_node_groups, 1u);
  EXPECT_EQ(c.stats().cross_node_groups, 0u);
}

TEST(ControllerHierarchyTest, MergeGroupEveryCrossPeriod) {
  Controller c(HierOptions(/*cross_period=*/3));
  uint64_t rounds = 0;
  std::vector<GroupDecision> all;
  // Interleave nodes so cross merges always have both nodes queued.
  for (int round = 0; round < 6; ++round) {
    for (GroupDecision& d : FeedRound(&c, {0, 2, 1, 3}, round)) {
      all.push_back(std::move(d));
    }
    ++rounds;
  }
  ASSERT_GE(all.size(), 6u);
  const ControllerStats& stats = c.stats();
  EXPECT_EQ(stats.cross_node_groups + stats.intra_node_groups,
            stats.groups_formed);
  // Every third group is a merge spanning both nodes.
  EXPECT_GT(stats.cross_node_groups, 0u);
  EXPECT_GT(stats.intra_node_groups, stats.cross_node_groups);
  for (size_t i = 0; i < all.size(); ++i) {
    const int spanned = c.options().topology.NodesSpanned(all[i].members);
    if ((i + 1) % 3 == 0) {
      EXPECT_EQ(spanned, 2) << "group " << i;
    } else {
      EXPECT_EQ(spanned, 1) << "group " << i;
    }
  }
}

TEST(ControllerHierarchyTest, FallsBackToMergesWhenNoNodeCanFill) {
  Controller c(HierOptions(/*cross_period=*/100));
  // Worker 1 leaves: node 0 has one live worker, node 1 two. P=2 still
  // reachable on node 1 — but after worker 3 also leaves, no node can fill
  // and every group must become a merge.
  c.NotifyWorkerLeft(1);
  c.NotifyWorkerLeft(3);
  c.OnReadySignal(0, 1);
  auto decisions = c.OnReadySignal(2, 1);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].members, (std::vector<int>{0, 2}));
  EXPECT_EQ(c.stats().cross_node_groups, 1u);
}

TEST(ControllerHierarchyTest, FlatTopologyIgnoresHierarchy) {
  ControllerOptions opt = BasicOptions(4, 2);
  opt.hierarchy.enabled = true;  // no topology: stays flat FIFO
  Controller c(opt);
  c.OnReadySignal(0, 1);
  auto decisions = c.OnReadySignal(2, 1);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].members, (std::vector<int>{0, 2}));
  EXPECT_EQ(c.stats().cross_node_groups, 0u);
  EXPECT_EQ(c.stats().intra_node_groups, 0u);
}

TEST(ControllerHierarchyTest, TopoCountersMirrorStats) {
  MetricsRegistry registry;
  MetricsShard* shard = registry.NewShard();
  Controller c(HierOptions(/*cross_period=*/2));
  c.AttachObservers(shard, nullptr, [] { return 0.0; });
  for (int round = 0; round < 4; ++round) {
    FeedRound(&c, {0, 2, 1, 3}, round);
  }
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("topo.cross_node_groups"),
            static_cast<double>(c.stats().cross_node_groups));
  EXPECT_EQ(snap.counter("topo.intra_node_groups"),
            static_cast<double>(c.stats().intra_node_groups));
  EXPECT_GT(c.stats().cross_node_groups, 0u);
  EXPECT_GT(c.stats().intra_node_groups, 0u);
}

}  // namespace
}  // namespace pr
