#include <gtest/gtest.h>

#include <set>

#include "data/synthetic.h"

namespace pr {
namespace {

TEST(ShardTest, PartitionIsDisjointAndComplete) {
  Rng rng(1);
  auto shards = ShardDataset(103, 8, &rng);
  ASSERT_EQ(shards.size(), 8u);
  std::set<size_t> all;
  for (const auto& shard : shards) {
    for (size_t idx : shard.indices) {
      EXPECT_TRUE(all.insert(idx).second) << "duplicate index " << idx;
      EXPECT_LT(idx, 103u);
    }
  }
  EXPECT_EQ(all.size(), 103u);
}

TEST(ShardTest, NearEqualSizes) {
  Rng rng(2);
  auto shards = ShardDataset(103, 8, &rng);
  for (const auto& shard : shards) {
    EXPECT_GE(shard.size(), 12u);
    EXPECT_LE(shard.size(), 13u);
  }
}

TEST(ShardTest, SingleShardGetsEverything) {
  Rng rng(3);
  auto shards = ShardDataset(10, 1, &rng);
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0].size(), 10u);
}

TEST(ShardTest, DeterministicInSeed) {
  Rng a(42), b(42);
  auto s1 = ShardDataset(50, 4, &a);
  auto s2 = ShardDataset(50, 4, &b);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(s1[i].indices, s2[i].indices);
}

TEST(DirichletShardTest, PartitionIsDisjointAndComplete) {
  Rng rng(7);
  std::vector<int> labels(977);
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 10);
  }
  auto shards = ShardDatasetDirichlet(labels, 10, 8, 0.5, &rng);
  ASSERT_EQ(shards.size(), 8u);
  std::set<size_t> all;
  for (const auto& shard : shards) {
    EXPECT_FALSE(shard.indices.empty());
    for (size_t idx : shard.indices) {
      EXPECT_TRUE(all.insert(idx).second) << "duplicate " << idx;
      EXPECT_LT(idx, labels.size());
    }
  }
  EXPECT_EQ(all.size(), labels.size());
}

TEST(DirichletShardTest, SmallAlphaSkewsClassMix) {
  Rng rng(11);
  std::vector<int> labels(4000);
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 4);
  }
  auto shards = ShardDatasetDirichlet(labels, 4, 4, 0.2, &rng);
  // At alpha 0.2 at least one shard should be strongly dominated by one
  // class (> 50% when uniform would be 25%).
  bool any_skewed = false;
  for (const auto& shard : shards) {
    std::vector<size_t> counts(4, 0);
    for (size_t idx : shard.indices) {
      ++counts[static_cast<size_t>(labels[idx])];
    }
    for (size_t c : counts) {
      if (shard.size() > 0 &&
          static_cast<double>(c) / static_cast<double>(shard.size()) > 0.5) {
        any_skewed = true;
      }
    }
  }
  EXPECT_TRUE(any_skewed);
}

TEST(DirichletShardTest, LargeAlphaApproachesUniformMix) {
  Rng rng(13);
  std::vector<int> labels(8000);
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 4);
  }
  auto shards = ShardDatasetDirichlet(labels, 4, 4, 100.0, &rng);
  for (const auto& shard : shards) {
    std::vector<size_t> counts(4, 0);
    for (size_t idx : shard.indices) {
      ++counts[static_cast<size_t>(labels[idx])];
    }
    for (size_t c : counts) {
      const double frac =
          static_cast<double>(c) / static_cast<double>(shard.size());
      EXPECT_NEAR(frac, 0.25, 0.08);
    }
  }
}

TEST(DirichletShardTest, DeterministicInSeed) {
  std::vector<int> labels(500);
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 5);
  }
  Rng a(21), b(21);
  auto s1 = ShardDatasetDirichlet(labels, 5, 3, 0.5, &a);
  auto s2 = ShardDatasetDirichlet(labels, 5, 3, 0.5, &b);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(s1[i].indices, s2[i].indices);
}

TEST(DirichletShardTest, NoEmptyShardEvenWithManyShards) {
  Rng rng(31);
  std::vector<int> labels(64, 0);  // single class, extreme case
  auto shards = ShardDatasetDirichlet(labels, 1, 16, 0.1, &rng);
  for (const auto& shard : shards) EXPECT_FALSE(shard.indices.empty());
}

TEST(SyntheticTest, ShapesMatchSpec) {
  SyntheticSpec spec;
  spec.num_train = 500;
  spec.num_test = 100;
  spec.dim = 16;
  spec.num_classes = 4;
  auto split = GenerateSynthetic(spec);
  EXPECT_EQ(split.train.size(), 500u);
  EXPECT_EQ(split.test.size(), 100u);
  EXPECT_EQ(split.train.dim(), 16u);
  EXPECT_EQ(split.train.num_classes, 4);
  for (int label : split.train.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 4);
  }
}

TEST(SyntheticTest, DeterministicInSeed) {
  SyntheticSpec spec;
  spec.num_train = 100;
  spec.num_test = 10;
  spec.seed = 9;
  auto a = GenerateSynthetic(spec);
  auto b = GenerateSynthetic(spec);
  for (size_t i = 0; i < a.train.features.size(); ++i) {
    EXPECT_EQ(a.train.features.data()[i], b.train.features.data()[i]);
  }
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticSpec spec;
  spec.num_train = 100;
  spec.num_test = 10;
  spec.seed = 1;
  auto a = GenerateSynthetic(spec);
  spec.seed = 2;
  auto b = GenerateSynthetic(spec);
  bool any_diff = false;
  for (size_t i = 0; i < a.train.features.size(); ++i) {
    if (a.train.features.data()[i] != b.train.features.data()[i]) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, AllClassesRepresented) {
  SyntheticSpec spec;
  spec.num_train = 2000;
  spec.num_test = 10;
  spec.num_classes = 10;
  auto split = GenerateSynthetic(spec);
  std::set<int> seen(split.train.labels.begin(), split.train.labels.end());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(SyntheticTest, LabelNoiseOnlyAffectsTrain) {
  SyntheticSpec spec;
  spec.num_train = 4000;
  spec.num_test = 1000;
  spec.num_classes = 2;
  spec.separation = 8.0;   // nearly separable
  spec.noise = 0.3;
  spec.label_noise = 0.5;  // half the train labels scrambled

  auto noisy = GenerateSynthetic(spec);
  spec.label_noise = 0.0;
  auto clean = GenerateSynthetic(spec);

  // With identical seeds the feature tensors agree; only labels differ.
  int train_diffs = 0;
  for (size_t i = 0; i < noisy.train.labels.size(); ++i) {
    if (noisy.train.labels[i] != clean.train.labels[i]) ++train_diffs;
  }
  EXPECT_GT(train_diffs, 500);
}

TEST(SyntheticTest, CannedSpecsMatchPaperClassCounts) {
  EXPECT_EQ(SpecForDataset("cifar10").num_classes, 10);
  EXPECT_EQ(SpecForDataset("cifar100").num_classes, 100);
  EXPECT_EQ(SpecForDataset("imagenet").num_classes, 1000);
}

TEST(BatchSamplerTest, BatchShapesAndLabelRange) {
  SyntheticSpec spec;
  spec.num_train = 200;
  spec.num_test = 10;
  spec.dim = 8;
  spec.num_classes = 3;
  auto split = GenerateSynthetic(spec);
  Rng rng(4);
  auto shards = ShardDataset(split.train.size(), 2, &rng);
  BatchSampler sampler(&split.train, shards[0], 16, 99);

  Tensor x;
  std::vector<int> y;
  for (int i = 0; i < 20; ++i) {
    sampler.NextBatch(&x, &y);
    EXPECT_EQ(x.rows(), 16u);
    EXPECT_EQ(x.cols(), 8u);
    EXPECT_EQ(y.size(), 16u);
    for (int label : y) {
      EXPECT_GE(label, 0);
      EXPECT_LT(label, 3);
    }
  }
}

TEST(BatchSamplerTest, EpochCoversWholeShardBeforeRepeating) {
  SyntheticSpec spec;
  spec.num_train = 64;
  spec.num_test = 10;
  spec.dim = 4;
  spec.num_classes = 2;
  auto split = GenerateSynthetic(spec);
  Shard shard;
  for (size_t i = 0; i < 64; ++i) shard.indices.push_back(i);
  BatchSampler sampler(&split.train, shard, 16, 5);

  // Track rows seen across exactly one epoch (4 batches of 16).
  std::multiset<float> seen;
  Tensor x;
  std::vector<int> y;
  for (int b = 0; b < 4; ++b) {
    sampler.NextBatch(&x, &y);
    for (size_t r = 0; r < 16; ++r) seen.insert(x.Row(r)[0]);
  }
  std::multiset<float> expected;
  for (size_t i = 0; i < 64; ++i) {
    expected.insert(split.train.features.Row(i)[0]);
  }
  EXPECT_EQ(seen, expected);
}

TEST(BatchSamplerTest, BatchLargerThanShardClamps) {
  SyntheticSpec spec;
  spec.num_train = 10;
  spec.num_test = 5;
  spec.dim = 4;
  spec.num_classes = 2;
  auto split = GenerateSynthetic(spec);
  Shard shard;
  for (size_t i = 0; i < 10; ++i) shard.indices.push_back(i);
  BatchSampler sampler(&split.train, shard, 64, 5);
  EXPECT_EQ(sampler.batch_size(), 10u);
  Tensor x;
  std::vector<int> y;
  sampler.NextBatch(&x, &y);
  EXPECT_EQ(x.rows(), 10u);
}

TEST(BatchSamplerTest, DeterministicInSeed) {
  SyntheticSpec spec;
  spec.num_train = 100;
  spec.num_test = 5;
  spec.dim = 4;
  spec.num_classes = 2;
  auto split = GenerateSynthetic(spec);
  Shard shard;
  for (size_t i = 0; i < 100; ++i) shard.indices.push_back(i);
  BatchSampler s1(&split.train, shard, 8, 77);
  BatchSampler s2(&split.train, shard, 8, 77);
  Tensor x1, x2;
  std::vector<int> y1, y2;
  for (int i = 0; i < 30; ++i) {
    s1.NextBatch(&x1, &y1);
    s2.NextBatch(&x2, &y2);
    EXPECT_EQ(y1, y2);
  }
}

}  // namespace
}  // namespace pr
