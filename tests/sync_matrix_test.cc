#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/sync_matrix.h"
#include "core/weight_generator.h"

namespace pr {
namespace {

TEST(SyncMatrixTest, IdentityByDefault) {
  SyncMatrix w(4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(w.At(i, j), i == j ? 1.0 : 0.0);
    }
  }
  EXPECT_DOUBLE_EQ(w.RowStochasticError(), 0.0);
  EXPECT_DOUBLE_EQ(w.ColumnStochasticError(), 0.0);
}

TEST(SyncMatrixTest, UniformGroupMatchesEq4) {
  // N=4, group {1, 3}, P=2 -> Eq. (4).
  SyncMatrix w = SyncMatrix::ForUniformGroup(4, {1, 3});
  EXPECT_DOUBLE_EQ(w.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(w.At(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(w.At(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(w.At(1, 3), 0.5);
  EXPECT_DOUBLE_EQ(w.At(3, 1), 0.5);
  EXPECT_DOUBLE_EQ(w.At(3, 3), 0.5);
  EXPECT_DOUBLE_EQ(w.At(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(w.At(0, 3), 0.0);
}

TEST(SyncMatrixTest, UniformGroupIsDoublyStochasticAndSymmetric) {
  Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 3 + rng.UniformInt(10);
    const size_t p = 2 + rng.UniformInt(n - 1);
    std::vector<size_t> sample = rng.SampleWithoutReplacement(n, p);
    std::vector<int> group(sample.begin(), sample.end());
    SyncMatrix w = SyncMatrix::ForUniformGroup(n, group);
    EXPECT_LT(w.RowStochasticError(), 1e-12);
    EXPECT_LT(w.ColumnStochasticError(), 1e-12);
    EXPECT_LT(w.SymmetryError(), 1e-12);
  }
}

TEST(SyncMatrixTest, DynamicWeightsRowStochasticOnly) {
  // Unequal weights keep rows stochastic but break column stochasticity.
  SyncMatrix w = SyncMatrix::ForGroup(3, {0, 1}, {0.8, 0.2});
  EXPECT_LT(w.RowStochasticError(), 1e-12);
  EXPECT_GT(w.ColumnStochasticError(), 0.1);
  EXPECT_GT(w.SymmetryError(), 0.1);
}

TEST(SyncMatrixTest, AllReduceMatrixIsUniform) {
  SyncMatrix w = SyncMatrix::AllReduce(4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(w.At(i, j), 0.25);
  }
}

TEST(SyncMatrixTest, MultiplyIdentityIsNoop) {
  SyncMatrix w = SyncMatrix::ForUniformGroup(4, {0, 2});
  SyncMatrix eye(4);
  SyncMatrix prod = w.Multiply(eye);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(prod.At(i, j), w.At(i, j));
    }
  }
}

TEST(SyncMatrixTest, ProductOfGroupMatricesStaysStochastic) {
  Rng rng(23);
  const size_t n = 6;
  SyncMatrix prod(n);
  for (int k = 0; k < 20; ++k) {
    auto sample = rng.SampleWithoutReplacement(n, 3);
    std::vector<int> group(sample.begin(), sample.end());
    prod = prod.Multiply(SyncMatrix::ForUniformGroup(n, group));
    EXPECT_LT(prod.RowStochasticError(), 1e-9);
    EXPECT_LT(prod.ColumnStochasticError(), 1e-9);
  }
}

TEST(SyncMatrixTest, ProductConvergesTowardConsensus) {
  // Long products of random group matrices approach (1/n) J — the consensus
  // mechanism that propagates every worker's update to all others.
  Rng rng(29);
  const size_t n = 5;
  SyncMatrix prod(n);
  for (int k = 0; k < 300; ++k) {
    auto sample = rng.SampleWithoutReplacement(n, 2);
    std::vector<int> group(sample.begin(), sample.end());
    prod = prod.Multiply(SyncMatrix::ForUniformGroup(n, group));
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(prod.At(i, j), 1.0 / n, 1e-6);
    }
  }
}

TEST(SyncMatrixExpectationTest, MeanOfIdenticalMatrices) {
  SyncMatrixExpectation e(3);
  SyncMatrix w = SyncMatrix::ForUniformGroup(3, {0, 1});
  e.Add(w);
  e.Add(w);
  SyncMatrix mean = e.Mean();
  EXPECT_EQ(e.count(), 2u);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(mean.At(i, j), w.At(i, j));
    }
  }
}

TEST(SyncMatrixExpectationTest, AddUniformGroupMatchesExplicit) {
  SyncMatrixExpectation a(4), b(4);
  std::vector<std::vector<int>> groups = {{0, 1}, {2, 3}, {1, 2}, {0, 3}};
  for (const auto& g : groups) {
    a.Add(SyncMatrix::ForUniformGroup(4, g));
    b.AddUniformGroup(g);
  }
  SyncMatrix ma = a.Mean(), mb = b.Mean();
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(ma.At(i, j), mb.At(i, j), 1e-12);
    }
  }
}

TEST(SyncMatrixExpectationTest, UniformGroupsGiveFig4aExpectation) {
  // All three pairs of {0,1,2} equally often -> E[W] = 0.5 I + (1/6) J.
  SyncMatrixExpectation e(3);
  e.AddUniformGroup({0, 1});
  e.AddUniformGroup({1, 2});
  e.AddUniformGroup({0, 2});
  SyncMatrix mean = e.Mean();
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(mean.At(i, j), i == j ? 2.0 / 3 : 1.0 / 6, 1e-12);
    }
  }
}

}  // namespace
}  // namespace pr
