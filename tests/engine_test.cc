#include <gtest/gtest.h>

#include "sim/engine.h"

namespace pr {
namespace {

TEST(SimEngineTest, StartsAtZero) {
  SimEngine engine;
  EXPECT_EQ(engine.now(), 0.0);
  EXPECT_TRUE(engine.empty());
  EXPECT_FALSE(engine.RunOne());
}

TEST(SimEngineTest, EventsRunInTimeOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.ScheduleAt(3.0, [&] { order.push_back(3); });
  engine.ScheduleAt(1.0, [&] { order.push_back(1); });
  engine.ScheduleAt(2.0, [&] { order.push_back(2); });
  while (engine.RunOne()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 3.0);
}

TEST(SimEngineTest, TiesBreakByInsertionOrder) {
  SimEngine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.ScheduleAt(1.0, [&order, i] { order.push_back(i); });
  }
  while (engine.RunOne()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimEngineTest, ScheduleAfterUsesCurrentTime) {
  SimEngine engine;
  double observed = -1.0;
  engine.ScheduleAt(5.0, [&] {
    engine.ScheduleAfter(2.5, [&] { observed = engine.now(); });
  });
  while (engine.RunOne()) {
  }
  EXPECT_EQ(observed, 7.5);
}

TEST(SimEngineTest, EventsCanScheduleMoreEvents) {
  SimEngine engine;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) engine.ScheduleAfter(1.0, chain);
  };
  engine.ScheduleAt(0.0, chain);
  while (engine.RunOne()) {
  }
  EXPECT_EQ(count, 10);
  EXPECT_EQ(engine.now(), 9.0);
}

TEST(SimEngineTest, RunUntilStopsOnPredicate) {
  SimEngine engine;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    engine.ScheduleAfter(1.0, chain);
  };
  engine.ScheduleAt(0.0, chain);
  engine.RunUntil([&] { return count >= 5; });
  EXPECT_EQ(count, 5);
}

TEST(SimEngineTest, RunUntilRespectsMaxTime) {
  SimEngine engine;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    engine.ScheduleAfter(1.0, chain);
  };
  engine.ScheduleAt(0.0, chain);
  engine.RunUntil([] { return false; }, /*max_time=*/4.5);
  EXPECT_EQ(count, 5);  // events at t = 0..4
  EXPECT_LE(engine.now(), 4.5);
}

TEST(SimEngineTest, EventsProcessedCounter) {
  SimEngine engine;
  for (int i = 0; i < 7; ++i) {
    engine.ScheduleAt(static_cast<double>(i), [] {});
  }
  while (engine.RunOne()) {
  }
  EXPECT_EQ(engine.events_processed(), 7u);
}

TEST(SimEngineTest, PendingCount) {
  SimEngine engine;
  engine.ScheduleAt(1.0, [] {});
  engine.ScheduleAt(2.0, [] {});
  EXPECT_EQ(engine.pending(), 2u);
  engine.RunOne();
  EXPECT_EQ(engine.pending(), 1u);
}

}  // namespace
}  // namespace pr
