#include <gtest/gtest.h>

#include "sim/cost_model.h"

namespace pr {
namespace {

CostModel MakeModel(const std::string& name) {
  return CostModel(LookupPaperModel(name), CostModelOptions{});
}

TEST(CostModelTest, ComputeScalesWithSlowdown) {
  CostModel cm = MakeModel("resnet34");
  EXPECT_DOUBLE_EQ(cm.ComputeSeconds(2.0), 2.0 * cm.ComputeSeconds(1.0));
  EXPECT_GT(cm.ComputeSeconds(1.0), 0.0);
}

TEST(CostModelTest, ComputeScaleOptionMultiplies) {
  CostModelOptions opt;
  opt.compute_scale = 4.0;
  CostModel scaled(LookupPaperModel("resnet18"), opt);
  CostModel base(LookupPaperModel("resnet18"), CostModelOptions{});
  EXPECT_DOUBLE_EQ(scaled.ComputeSeconds(1.0), 4.0 * base.ComputeSeconds(1.0));
}

TEST(CostModelTest, SingleNodeAllReduceIsFree) {
  CostModel cm = MakeModel("vgg19");
  EXPECT_DOUBLE_EQ(cm.RingAllReduceSeconds(1), 0.0);
}

TEST(CostModelTest, RingFormulaMatchesPatarasukYuan) {
  CostModelOptions opt;
  opt.bandwidth = 1e9;
  opt.tensor_latency = 1e-5;
  const PaperModelInfo& info = LookupPaperModel("resnet34");
  CostModel cm(info, opt);
  const int n = 8;
  const double s = static_cast<double>(info.param_bytes());
  const double expected =
      2.0 * (n - 1) / n * s / 1e9 +
      2.0 * (n - 1) * static_cast<double>(info.num_tensors) * 1e-5;
  EXPECT_NEAR(cm.RingAllReduceSeconds(n), expected, 1e-12);
}

TEST(CostModelTest, GroupReduceCheaperThanFullAllReduce) {
  for (const auto& info : AllPaperModels()) {
    CostModel cm(info, CostModelOptions{});
    EXPECT_LT(cm.GroupReduceSeconds(3), cm.RingAllReduceSeconds(8) +
                                            2 * cm.controller_delay())
        << info.name;
  }
}

TEST(CostModelTest, AllReduceGrowsWithParticipants) {
  CostModel cm = MakeModel("resnet34");
  double prev = 0.0;
  for (int n = 2; n <= 32; n *= 2) {
    const double t = cm.RingAllReduceSeconds(n);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(CostModelTest, CalibrationReproducesTable1PerUpdateTimes) {
  // The headline calibration check: with the default options the simulated
  // AR per-update time (compute + ring over N=8) lands near the paper's
  // measured values for all three CIFAR10 workloads (Table 1, HL=1).
  struct Case {
    const char* model;
    double paper_ar_seconds;
  };
  for (const Case& c : {Case{"resnet34", 0.432}, Case{"vgg19", 0.286},
                        Case{"densenet121", 0.820}}) {
    CostModel cm = MakeModel(c.model);
    const double ar = cm.ComputeSeconds(1.0) + cm.RingAllReduceSeconds(8);
    EXPECT_NEAR(ar, c.paper_ar_seconds, 0.1 * c.paper_ar_seconds) << c.model;
  }
}

TEST(CostModelTest, DenseNetSyncBoundDespiteSmallModel) {
  // DenseNet-121 has ~18x fewer bytes than VGG-19 yet a *slower* 8-way
  // all-reduce minus bandwidth term, because of its per-tensor latency.
  CostModel dense = MakeModel("densenet121");
  CostModel vgg = MakeModel("vgg19");
  EXPECT_LT(dense.model().param_bytes(), vgg.model().param_bytes() / 10);
  const double dense_latency_share =
      dense.RingAllReduceSeconds(8) -
      2.0 * 7 / 8 * static_cast<double>(dense.model().param_bytes()) /
          dense.options().bandwidth;
  EXPECT_GT(dense_latency_share, 0.15);  // latency-dominated
}

TEST(CostModelTest, PsTransferUsesPsBandwidth) {
  CostModelOptions opt;
  opt.ps_bandwidth = 2e9;
  const PaperModelInfo& info = LookupPaperModel("resnet18");
  CostModel cm(info, opt);
  EXPECT_DOUBLE_EQ(cm.PsTransferSeconds(),
                   static_cast<double>(info.param_bytes()) / 2e9);
}

TEST(CostModelTest, PairwiseAverageIsTwoMemberRing) {
  CostModel cm = MakeModel("resnet34");
  EXPECT_DOUBLE_EQ(cm.PairwiseAverageSeconds(), cm.RingAllReduceSeconds(2));
}

TEST(CostModelTest, AtomicPairAverageUsesCpuPath) {
  CostModel cm = MakeModel("resnet34");
  // CPU-staged atomic averaging moves two full models over the PS path —
  // strictly more expensive than the collective-path pairwise ring.
  EXPECT_GT(cm.AtomicPairAverageSeconds(), cm.PairwiseAverageSeconds());
}

TEST(CostModelTest, GradientOverlapDiscountsExposedComm) {
  CostModelOptions opt;
  opt.gradient_overlap = 0.75;
  CostModel cm(LookupPaperModel("vgg19"), opt);
  EXPECT_DOUBLE_EQ(cm.ExposedGradientCommSeconds(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cm.ExposedGradientCommSeconds(0.0), 0.0);
}

TEST(CostModelTest, NoOverlapByDefault) {
  CostModel cm = MakeModel("vgg19");
  EXPECT_DOUBLE_EQ(cm.ExposedGradientCommSeconds(2.5), 2.5);
}

TEST(CostModelTest, MemberRingMatchesScalarOnFlatTopology) {
  CostModel cm = MakeModel("resnet34");
  Topology flat;
  EXPECT_DOUBLE_EQ(cm.RingAllReduceSeconds({0, 1, 2, 3}, flat),
                   cm.RingAllReduceSeconds(4));
  EXPECT_DOUBLE_EQ(cm.RingAllReduceSeconds({5}, flat), 0.0);
}

TEST(CostModelTest, IntraNodeRingMatchesScalarOnPlacedTopology) {
  CostModel cm = MakeModel("resnet34");
  Topology topo = Topology::Uniform(2, 4);
  // Members all on node 0: every ring edge is intra, cost factors 1.0.
  EXPECT_DOUBLE_EQ(cm.RingAllReduceSeconds({0, 1, 2, 3}, topo),
                   cm.RingAllReduceSeconds(4));
}

TEST(CostModelTest, CrossNodeRingPaysBottleneckLink) {
  CostModelOptions opt;
  opt.bandwidth = 1e9;
  opt.tensor_latency = 1e-5;
  const PaperModelInfo& info = LookupPaperModel("resnet34");
  CostModel cm(info, opt);
  Topology topo = Topology::Uniform(2, 4);
  topo.set_inter_cost(4.0);
  topo.set_inter_latency_factor(3.0);
  // One member on node 1: the ring's worst edge crosses nodes, so the
  // bandwidth term is divided by 4 and the latency term multiplied by 3.
  const int n = 4;
  const double s = static_cast<double>(info.param_bytes());
  const double expected =
      2.0 * (n - 1) / n * s * 4.0 / 1e9 +
      2.0 * (n - 1) * static_cast<double>(info.num_tensors) * 1e-5 * 3.0;
  EXPECT_NEAR(cm.RingAllReduceSeconds({0, 1, 2, 4}, topo), expected, 1e-12);
  EXPECT_GT(cm.RingAllReduceSeconds({0, 1, 2, 4}, topo),
            cm.RingAllReduceSeconds({0, 1, 2, 3}, topo));
}

TEST(CostModelTest, GroupReduceMembersAddsControllerRoundTrip) {
  CostModel cm = MakeModel("resnet34");
  Topology topo = Topology::Uniform(2, 2);
  EXPECT_DOUBLE_EQ(cm.GroupReduceSeconds({0, 1}, topo),
                   2.0 * cm.controller_delay() +
                       cm.RingAllReduceSeconds({0, 1}, topo));
}

TEST(PsLinkQueueTest, IdleLinkStartsImmediately) {
  PsLinkQueue link;
  EXPECT_DOUBLE_EQ(link.Acquire(10.0, 2.0), 12.0);
}

TEST(PsLinkQueueTest, BusyLinkQueuesFifo) {
  PsLinkQueue link;
  EXPECT_DOUBLE_EQ(link.Acquire(0.0, 5.0), 5.0);
  // Requested at t=1 while busy until 5: starts at 5.
  EXPECT_DOUBLE_EQ(link.Acquire(1.0, 2.0), 7.0);
  EXPECT_DOUBLE_EQ(link.Acquire(2.0, 1.0), 8.0);
}

TEST(PsLinkQueueTest, GapsLeaveLinkIdle) {
  PsLinkQueue link;
  link.Acquire(0.0, 1.0);
  EXPECT_DOUBLE_EQ(link.Acquire(10.0, 1.0), 11.0);
}

TEST(PsLinkQueueTest, NSerializedTransfersTakeNTimesDuration) {
  PsLinkQueue link;
  double done = 0.0;
  for (int i = 0; i < 8; ++i) done = link.Acquire(0.0, 0.5);
  EXPECT_DOUBLE_EQ(done, 4.0);  // the central-bottleneck effect
}

}  // namespace
}  // namespace pr
