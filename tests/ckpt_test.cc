#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/manifest.h"
#include "runtime/threaded_runtime.h"
#include "train/experiment.h"

namespace pr {
namespace {

namespace fs = std::filesystem;

/// Scoped checkpoint directory under the system temp dir.
class CkptDir {
 public:
  explicit CkptDir(const std::string& tag)
      : dir_((fs::temp_directory_path() /
              ("pr_ckpt_" + tag + "_" + std::to_string(::getpid())))
                 .string()) {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  ~CkptDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

RunManifest SampleManifest(uint64_t epoch) {
  RunManifest m;
  m.engine = "threaded";
  m.strategy = "CON";
  m.num_workers = 3;
  m.num_params = 7;
  m.seed = 42;
  m.epoch = epoch;
  m.updates_done = 12 * epoch;
  m.next_group_id = 9;
  m.saved_at_seconds = 1.5;
  m.history = {{0, 1}, {1, 2, 0}};
  for (int w = 0; w < 3; ++w) {
    ManifestWorker mw;
    mw.worker = w;
    mw.iteration = 10 + w;
    mw.completed = 8 + static_cast<uint64_t>(w);
    mw.shard_file = ShardFileName(epoch, w);
    m.workers.push_back(mw);
  }
  return m;
}

TEST(ManifestTest, RoundTripsEveryField) {
  CkptDir dir("roundtrip");
  const RunManifest m = SampleManifest(3);
  ASSERT_TRUE(SaveManifest(dir.path(), m).ok());

  RunManifest loaded;
  ASSERT_TRUE(LoadManifest(ManifestPath(dir.path(), 3), &loaded).ok());
  EXPECT_EQ(loaded.engine, m.engine);
  EXPECT_EQ(loaded.strategy, m.strategy);
  EXPECT_EQ(loaded.num_workers, m.num_workers);
  EXPECT_EQ(loaded.num_params, m.num_params);
  EXPECT_EQ(loaded.seed, m.seed);
  EXPECT_EQ(loaded.epoch, m.epoch);
  EXPECT_EQ(loaded.updates_done, m.updates_done);
  EXPECT_EQ(loaded.next_group_id, m.next_group_id);
  EXPECT_DOUBLE_EQ(loaded.saved_at_seconds, m.saved_at_seconds);
  EXPECT_EQ(loaded.history, m.history);
  ASSERT_EQ(loaded.workers.size(), m.workers.size());
  for (size_t i = 0; i < m.workers.size(); ++i) {
    EXPECT_EQ(loaded.workers[i].worker, m.workers[i].worker);
    EXPECT_EQ(loaded.workers[i].iteration, m.workers[i].iteration);
    EXPECT_EQ(loaded.workers[i].completed, m.workers[i].completed);
    EXPECT_EQ(loaded.workers[i].shard_file, m.workers[i].shard_file);
  }
}

TEST(ManifestTest, TornManifestFallsBackToPreviousEpoch) {
  CkptDir dir("torn");
  ASSERT_TRUE(SaveManifest(dir.path(), SampleManifest(1)).ok());
  ASSERT_TRUE(SaveManifest(dir.path(), SampleManifest(2)).ok());

  // Tear epoch 2 the way a crash mid-write would (if rename were not
  // atomic): keep the first bytes, drop the tail with the checksum.
  const std::string torn = ManifestPath(dir.path(), 2);
  ASSERT_TRUE(fs::exists(torn));
  fs::resize_file(torn, fs::file_size(torn) / 2);

  RunManifest latest;
  std::string path;
  ASSERT_TRUE(FindLatestManifest(dir.path(), &latest, &path).ok());
  EXPECT_EQ(latest.epoch, 1u);
  EXPECT_EQ(path, ManifestPath(dir.path(), 1));
}

TEST(ManifestTest, FindLatestFailsOnEmptyDir) {
  CkptDir dir("empty");
  std::error_code ec;
  fs::create_directories(dir.path(), ec);
  RunManifest latest;
  EXPECT_FALSE(FindLatestManifest(dir.path(), &latest).ok());
}

TEST(ManifestTest, ShardRoundTripsParamsAndVelocity) {
  CkptDir dir("shard");
  std::error_code ec;
  fs::create_directories(dir.path(), ec);
  const std::vector<float> params = {1.0f, -2.5f, 3.25f};
  const std::vector<float> velocity = {0.5f, 0.0f, -7.0f};
  const std::string path = ShardPath(dir.path(), 4, 1);
  ASSERT_TRUE(SaveWorkerShard(path,
                              Slice(params.data(), params.size()),
                              Slice(velocity.data(), velocity.size()))
                  .ok());

  std::vector<float> p;
  std::vector<float> v;
  ASSERT_TRUE(LoadWorkerShard(path, 3, &p, &v).ok());
  EXPECT_EQ(p, params);
  EXPECT_EQ(v, velocity);
  // A shard read with the wrong parameter count must fail loudly rather
  // than split the floats at the wrong boundary.
  EXPECT_FALSE(LoadWorkerShard(path, 4, &p, &v).ok());
}

// ---------------------------------------------------------------------------
// Threaded engine: checkpoint + restore.
// ---------------------------------------------------------------------------

RunConfig SmallThreadedConfig(StrategyKind kind, const std::string& ckpt_dir) {
  RunConfig config;
  config.strategy.kind = kind;
  config.strategy.group_size = 2;
  config.run.num_workers = 4;
  config.run.iterations_per_worker = 9;
  config.run.model.hidden = {8};
  config.run.batch_size = 16;
  config.run.dataset.num_train = 512;
  config.run.dataset.num_test = 128;
  config.run.dataset.dim = 8;
  config.run.dataset.num_classes = 3;
  config.run.seed = 11;
  config.run.ckpt.dir = ckpt_dir;
  config.run.ckpt.every_iterations = 3;
  return config;
}

TEST(CkptRestoreTest, AllReduceRestoreIsBitForBitIdentical) {
  CkptDir dir("ar_bitwise");
  const RunConfig config =
      SmallThreadedConfig(StrategyKind::kAllReduce, dir.path());
  ThreadedRunResult full = RunThreaded(config);
  ASSERT_GE(full.metrics.counter("ckpt.manifests_written"), 2.0);
  ASSERT_FALSE(full.final_params.empty());

  RunManifest latest;
  std::string manifest_path;
  ASSERT_TRUE(FindLatestManifest(dir.path(), &latest, &manifest_path).ok());
  EXPECT_EQ(latest.epoch, 2u);  // cuts at k=3 and k=6; k=9 ends the run

  ThreadedRunResult restored = RestoreThreadedRun(config, manifest_path);
  // The acceptance bar: a restored AR run must replay the exact remaining
  // iterations — same batches, same averaged gradients, same momentum — so
  // the final parameters match the never-interrupted run bit for bit.
  ASSERT_EQ(restored.final_params.size(), full.final_params.size());
  for (size_t i = 0; i < full.final_params.size(); ++i) {
    ASSERT_EQ(restored.final_params[i], full.final_params[i])
        << "parameter " << i << " diverged after restore";
  }
  EXPECT_EQ(restored.metrics.counter("ckpt.restore_count"), 1.0);
  EXPECT_EQ(full.metrics.counter("ckpt.restore_count"), 0.0);
}

TEST(CkptRestoreTest, PReduceRestoreFinishesTheBudget) {
  CkptDir dir("preduce_resume");
  RunConfig config =
      SmallThreadedConfig(StrategyKind::kPReduceConst, dir.path());
  config.run.worker_delay_seconds.assign(4, 0.001);
  ThreadedRunResult full = RunThreaded(config);
  ASSERT_GE(full.metrics.counter("ckpt.manifests_written"), 1.0);

  RunManifest latest;
  std::string manifest_path;
  ASSERT_TRUE(FindLatestManifest(dir.path(), &latest, &manifest_path).ok());
  EXPECT_EQ(latest.strategy, "CON");
  EXPECT_EQ(latest.engine, "threaded");

  ThreadedRunResult restored = RestoreThreadedRun(config, manifest_path);
  // Metric continuity: iteration counters resume at the restored counts, so
  // a resumed run reports the same totals as an uninterrupted one.
  for (size_t iters : restored.worker_iterations) {
    EXPECT_EQ(iters, config.run.iterations_per_worker);
  }
  EXPECT_EQ(restored.metrics.counter("worker.0.iterations"),
            static_cast<double>(config.run.iterations_per_worker));
  EXPECT_EQ(restored.metrics.counter("ckpt.restore_count"), 1.0);
  EXPECT_GT(restored.group_reduces, 0u);
}

TEST(CkptRestoreTest, RestoreRejectsMismatchedStrategy) {
  CkptDir dir("mismatch");
  const RunConfig config =
      SmallThreadedConfig(StrategyKind::kAllReduce, dir.path());
  (void)RunThreaded(config);
  RunManifest latest;
  std::string manifest_path;
  ASSERT_TRUE(FindLatestManifest(dir.path(), &latest, &manifest_path).ok());

  RunConfig wrong = config;
  wrong.strategy.kind = StrategyKind::kPReduceConst;
  EXPECT_DEATH(RestoreThreadedRun(wrong, manifest_path), "strategy");
}

// ---------------------------------------------------------------------------
// Simulated engine: checkpoint + restore determinism.
// ---------------------------------------------------------------------------

ExperimentConfig SmallSimConfig(StrategyKind kind, const std::string& dir) {
  ExperimentConfig config;
  config.training.num_workers = 6;
  config.training.max_updates = 40;
  config.training.accuracy_threshold = -1.0;
  config.training.seed = 5;
  config.training.ckpt.dir = dir;
  config.training.ckpt.every_updates = 10;
  config.strategy.kind = kind;
  config.strategy.group_size = 3;
  return config;
}

TEST(CkptRestoreTest, SimRestoreIsDeterministic) {
  CkptDir dir("sim_det");
  const ExperimentConfig config =
      SmallSimConfig(StrategyKind::kPReduceConst, dir.path());
  SimRunResult full = RunExperiment(config);
  ASSERT_GE(full.metrics.counter("ckpt.manifests_written"), 1.0);
  EXPECT_EQ(full.updates, 40u);

  RunManifest latest;
  std::string manifest_path;
  ASSERT_TRUE(FindLatestManifest(dir.path(), &latest, &manifest_path).ok());
  EXPECT_EQ(latest.engine, "sim");

  SimRunResult a = RestoreSimRun(config, manifest_path);
  SimRunResult b = RestoreSimRun(config, manifest_path);
  // The simulator is deterministic in (seed, restored state): two restores
  // of one manifest must replay identically, down to the virtual clock.
  EXPECT_EQ(a.updates, 40u);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.metrics.counter("controller.groups_formed"),
            b.metrics.counter("controller.groups_formed"));
  EXPECT_EQ(a.metrics.counter("ckpt.restore_count"), 1.0);
}

TEST(CkptRestoreTest, SimAllReduceCheckpoints) {
  CkptDir dir("sim_ar");
  const ExperimentConfig config =
      SmallSimConfig(StrategyKind::kAllReduce, dir.path());
  SimRunResult full = RunExperiment(config);
  ASSERT_GE(full.metrics.counter("ckpt.manifests_written"), 1.0);

  RunManifest latest;
  std::string manifest_path;
  ASSERT_TRUE(FindLatestManifest(dir.path(), &latest, &manifest_path).ok());
  SimRunResult restored = RestoreSimRun(config, manifest_path);
  EXPECT_EQ(restored.updates, 40u);
  EXPECT_EQ(restored.metrics.counter("ckpt.restore_count"), 1.0);
}

// ---------------------------------------------------------------------------
// Cross-engine metric-name parity for the ckpt.* family.
// ---------------------------------------------------------------------------

TEST(CkptRestoreTest, CkptMetricNamesMatchAcrossEngines) {
  CkptDir tdir("parity_threaded");
  CkptDir sdir("parity_sim");
  ThreadedRunResult threaded = RunThreaded(
      SmallThreadedConfig(StrategyKind::kAllReduce, tdir.path()));
  SimRunResult sim =
      RunExperiment(SmallSimConfig(StrategyKind::kPReduceConst, sdir.path()));

  for (const char* name : {"ckpt.manifests_written", "ckpt.restore_count"}) {
    EXPECT_TRUE(threaded.metrics.counters.count(name) != 0)
        << "threaded run report is missing " << name;
    EXPECT_TRUE(sim.metrics.counters.count(name) != 0)
        << "sim run report is missing " << name;
  }
  ASSERT_NE(threaded.metrics.histogram("ckpt.save_seconds"), nullptr);
  ASSERT_NE(sim.metrics.histogram("ckpt.save_seconds"), nullptr);
}

}  // namespace
}  // namespace pr
