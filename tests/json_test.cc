#include <gtest/gtest.h>

#include <string>

#include "obs/json.h"

namespace pr {
namespace {

JsonValue MustParse(const std::string& text) {
  JsonValue value;
  Status status = ParseJson(text, &value);
  EXPECT_TRUE(status.ok()) << status.message();
  return value;
}

Status ParseError(const std::string& text) {
  JsonValue value;
  Status status = ParseJson(text, &value);
  EXPECT_FALSE(status.ok()) << "unexpectedly parsed: " << text;
  return status;
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(MustParse("null").is_null());
  EXPECT_TRUE(MustParse("true").bool_value());
  EXPECT_FALSE(MustParse("false").bool_value());
  EXPECT_DOUBLE_EQ(MustParse("42").number_value(), 42.0);
  EXPECT_DOUBLE_EQ(MustParse("-1.5e3").number_value(), -1500.0);
  EXPECT_DOUBLE_EQ(MustParse("0.125").number_value(), 0.125);
  EXPECT_EQ(MustParse("\"hi\"").string_value(), "hi");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(MustParse(R"("a\"b\\c\/d\n\t\r\f\b")").string_value(),
            "a\"b\\c/d\n\t\r\f\b");
  EXPECT_EQ(MustParse(R"("\u0041\u00e9")").string_value(), "A\xc3\xa9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(MustParse(R"("\ud83d\ude00")").string_value(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParse, Containers) {
  JsonValue value = MustParse(R"({"a": [1, 2, 3], "b": {"c": null}})");
  ASSERT_TRUE(value.is_object());
  const JsonValue* a = value.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->items()[1].number_value(), 2.0);
  const JsonValue* b = value.Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_NE(b->Find("c"), nullptr);
  EXPECT_TRUE(b->Find("c")->is_null());
  EXPECT_EQ(value.Find("missing"), nullptr);
}

TEST(JsonParse, PreservesMemberOrder) {
  JsonValue value = MustParse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(value.members().size(), 3u);
  EXPECT_EQ(value.members()[0].first, "z");
  EXPECT_EQ(value.members()[1].first, "a");
  EXPECT_EQ(value.members()[2].first, "m");
}

TEST(JsonParse, RejectsMalformedDocuments) {
  ParseError("");
  ParseError("{");
  ParseError("[1, 2,]");
  ParseError("{\"a\": 1,}");
  ParseError("{\"a\" 1}");
  ParseError("nul");
  ParseError("01");     // leading zero
  ParseError("+1");     // leading plus
  ParseError("1.");     // bare decimal point
  ParseError("\"a");    // unterminated string
  ParseError("\"\\x\"");  // unknown escape
  ParseError("\"\\ud83d\"");  // lone surrogate
  ParseError("\"\t\"");       // raw control character
  ParseError("1 2");          // trailing content
  ParseError("[1] []");
}

TEST(JsonParse, ErrorsCarryByteOffsets) {
  Status status = ParseError("{\"a\": nope}");
  EXPECT_NE(status.message().find("byte"), std::string::npos)
      << status.message();
}

TEST(JsonParse, DepthCapStopsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  ParseError(deep);
  std::string ok;
  for (int i = 0; i < 30; ++i) ok += "[";
  for (int i = 0; i < 30; ++i) ok += "]";
  MustParse(ok);
}

TEST(JsonValue, DumpRoundTrips) {
  const std::string text =
      R"({"s":"he\"llo","n":-2.5,"b":true,"x":null,"a":[1,"two",false],)"
      R"("o":{"k":3}})";
  JsonValue value = MustParse(text);
  JsonValue reparsed = MustParse(value.Dump());
  EXPECT_EQ(reparsed.Dump(), value.Dump());
  EXPECT_EQ(reparsed.Find("s")->string_value(), "he\"llo");
  EXPECT_DOUBLE_EQ(reparsed.Find("n")->number_value(), -2.5);
}

TEST(JsonValue, BuildersProduceParseableDocuments) {
  JsonValue object = JsonValue::MakeObject();
  object.Set("name", JsonValue::MakeString("x"));
  JsonValue array = JsonValue::MakeArray();
  array.Append(JsonValue::MakeNumber(1.0));
  array.Append(JsonValue::MakeBool(false));
  array.Append(JsonValue::MakeNull());
  object.Set("items", std::move(array));
  JsonValue reparsed = MustParse(object.Dump());
  EXPECT_EQ(reparsed.Find("name")->string_value(), "x");
  EXPECT_EQ(reparsed.Find("items")->items().size(), 3u);
}

TEST(JsonValue, SetReplacesExistingKey) {
  JsonValue object = JsonValue::MakeObject();
  object.Set("k", JsonValue::MakeNumber(1.0));
  object.Set("k", JsonValue::MakeNumber(2.0));
  ASSERT_EQ(object.members().size(), 1u);
  EXPECT_DOUBLE_EQ(object.Find("k")->number_value(), 2.0);
}

}  // namespace
}  // namespace pr
