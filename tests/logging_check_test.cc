#include <gtest/gtest.h>

#include "common/check.h"
#include "common/logging.h"

namespace pr {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  PR_CHECK(1 + 1 == 2) << "never evaluated";
  PR_CHECK_EQ(4, 4);
  PR_CHECK_NE(1, 2);
  PR_CHECK_LT(1, 2);
  PR_CHECK_LE(2, 2);
  PR_CHECK_GT(3, 2);
  PR_CHECK_GE(3, 3);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ PR_CHECK(false) << "boom"; }, "check failed: false");
}

TEST(CheckDeathTest, ComparisonCheckShowsValues) {
  EXPECT_DEATH({ PR_CHECK_EQ(2, 3); }, "2 vs 3");
}

TEST(CheckDeathTest, MessageIsIncluded) {
  EXPECT_DEATH({ PR_CHECK(false) << "custom detail 42"; },
               "custom detail 42");
}

TEST(CheckTest, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  auto probe = [&calls]() {
    ++calls;
    return true;
  };
  PR_CHECK(probe());
  EXPECT_EQ(calls, 1);
}

TEST(LoggingTest, LevelFiltering) {
  const LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold messages must not crash and are cheap no-ops.
  PR_LOG_DEBUG << "invisible";
  PR_LOG_INFO << "invisible";
  PR_LOG_WARNING << "invisible";
  SetLogLevel(old_level);
}

TEST(LoggingTest, EmitsToStderr) {
  const LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  PR_LOG_INFO << "hello from test " << 7;
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("hello from test 7"), std::string::npos);
  EXPECT_NE(out.find("INFO"), std::string::npos);
  EXPECT_NE(out.find("logging_check_test.cc"), std::string::npos);
  SetLogLevel(old_level);
}

TEST(LoggingTest, SuppressedMessageProducesNoOutput) {
  const LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  testing::internal::CaptureStderr();
  PR_LOG_INFO << "should not appear";
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("should not appear"), std::string::npos);
  SetLogLevel(old_level);
}

}  // namespace
}  // namespace pr
