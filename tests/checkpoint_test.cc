#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/rng.h"
#include "models/checkpoint.h"

namespace pr {
namespace {

std::string TempPath(const char* name) {
  return std::string("/tmp/pr_ckpt_test_") + name;
}

TEST(CheckpointTest, RoundTrip) {
  Rng rng(1);
  std::vector<float> params(1000);
  for (auto& p : params) p = static_cast<float>(rng.Normal(0.0, 1.0));

  const std::string path = TempPath("roundtrip");
  ASSERT_TRUE(SaveCheckpoint(path, params).ok());
  std::vector<float> loaded;
  ASSERT_TRUE(LoadCheckpoint(path, &loaded).ok());
  EXPECT_EQ(loaded, params);
  std::remove(path.c_str());
}

TEST(CheckpointTest, EmptyVectorRoundTrips) {
  const std::string path = TempPath("empty");
  ASSERT_TRUE(SaveCheckpoint(path, std::vector<float>{}).ok());
  std::vector<float> loaded = {1.0f};
  ASSERT_TRUE(LoadCheckpoint(path, &loaded).ok());
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  std::vector<float> loaded;
  EXPECT_EQ(LoadCheckpoint("/tmp/pr_ckpt_nonexistent_xyz", &loaded).code(),
            StatusCode::kNotFound);
}

TEST(CheckpointTest, BadMagicRejected) {
  const std::string path = TempPath("badmagic");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTACKPTxxxxxxxxxxxxxxxxxxxx";
  }
  std::vector<float> loaded;
  EXPECT_EQ(LoadCheckpoint(path, &loaded).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, CorruptedPayloadFailsChecksum) {
  std::vector<float> params = {1.0f, 2.0f, 3.0f, 4.0f};
  const std::string path = TempPath("corrupt");
  ASSERT_TRUE(SaveCheckpoint(path, params).ok());
  // Flip one payload byte in place.
  {
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8 + 8 + 2);  // into the first float
    char b = 0x7f;
    f.write(&b, 1);
  }
  std::vector<float> loaded;
  Status st = LoadCheckpoint(path, &loaded);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("checksum"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CheckpointTest, TruncatedFileRejected) {
  std::vector<float> params(100, 1.0f);
  const std::string path = TempPath("trunc");
  ASSERT_TRUE(SaveCheckpoint(path, params).ok());
  // Truncate to half size.
  {
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
  }
  std::vector<float> loaded;
  EXPECT_FALSE(LoadCheckpoint(path, &loaded).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, Fnv1aKnownValue) {
  // FNV-1a of the empty string is the offset basis.
  EXPECT_EQ(Fnv1a("", 0), 0xcbf29ce484222325ull);
  // Differing inputs hash differently.
  EXPECT_NE(Fnv1a("a", 1), Fnv1a("b", 1));
}

}  // namespace
}  // namespace pr
