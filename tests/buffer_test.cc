#include <gtest/gtest.h>

#include <vector>

#include "common/buffer.h"
#include "runtime/param_store.h"

namespace pr {
namespace {

TEST(BufferTest, DefaultIsEmpty) {
  Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.data(), nullptr);
  EXPECT_FALSE(b.shared());
}

TEST(BufferTest, FromVectorAdoptsWithoutCopy) {
  std::vector<float> v = {1.0f, 2.0f, 3.0f};
  const float* raw = v.data();
  Buffer b = Buffer::FromVector(std::move(v));
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.data(), raw);  // same allocation: a move, not a memcpy
  EXPECT_EQ(b[1], 2.0f);
}

TEST(BufferTest, CopyOfCopies) {
  std::vector<float> v = {4.0f, 5.0f};
  Buffer b = Buffer::CopyOf(v.data(), v.size());
  v[0] = 99.0f;
  EXPECT_EQ(b[0], 4.0f);
  // Null source is allowed only for n == 0.
  Buffer empty = Buffer::CopyOf(nullptr, 0);
  EXPECT_TRUE(empty.empty());
}

TEST(BufferTest, CopySharesTheBlock) {
  Buffer a = Buffer::Zeros(8);
  EXPECT_FALSE(a.shared());
  Buffer b = a;
  EXPECT_TRUE(a.shared());
  EXPECT_TRUE(b.shared());
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(a.use_count(), 2);
}

TEST(BufferTest, MutableDataClonesWhenShared) {
  Buffer a = Buffer::FromVector({1.0f, 2.0f});
  Buffer b = a;
  // COW: mutating through one handle must not be visible through the other.
  b.mutable_data()[0] = 7.0f;
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(a[0], 1.0f);
  EXPECT_EQ(b[0], 7.0f);
  EXPECT_FALSE(a.shared());
  EXPECT_FALSE(b.shared());
}

TEST(BufferTest, MutableDataInPlaceWhenUnique) {
  Buffer a = Buffer::FromVector({1.0f});
  const float* before = a.data();
  a.mutable_data()[0] = 3.0f;
  EXPECT_EQ(a.data(), before);  // sole owner: no clone
  EXPECT_EQ(a[0], 3.0f);
}

TEST(BufferTest, TakeMovesWhenUniqueCopiesWhenShared) {
  Buffer a = Buffer::FromVector({1.0f, 2.0f});
  const float* raw = a.data();
  std::vector<float> out = a.Take();
  EXPECT_EQ(out.data(), raw);  // unique owner: stolen, not copied
  EXPECT_TRUE(a.empty());

  Buffer b = Buffer::FromVector({3.0f});
  Buffer c = b;
  std::vector<float> taken = c.Take();
  EXPECT_EQ(taken, (std::vector<float>{3.0f}));
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(b[0], 3.0f);  // the other holder is untouched
}

TEST(SliceTest, ViewsAndSubspans) {
  std::vector<float> v = {0.0f, 1.0f, 2.0f, 3.0f, 4.0f};
  Slice s(v.data(), v.size());
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[2], 2.0f);
  Slice sub = s.subspan(1, 3);
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub[0], 1.0f);
  EXPECT_EQ(sub.ToVector(), (std::vector<float>{1.0f, 2.0f, 3.0f}));
}

TEST(MutableSliceTest, WritesThroughAndConverts) {
  std::vector<float> v(4, 0.0f);
  MutableSlice m(v.data(), v.size());
  m[1] = 5.0f;
  EXPECT_EQ(v[1], 5.0f);
  m.CopyFrom(std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ(v, (std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f}));
  Slice read = m;  // implicit const view
  EXPECT_EQ(read[3], 4.0f);
  m.subspan(2, 2).CopyFrom(std::vector<float>{8.0f, 9.0f});
  EXPECT_EQ(v, (std::vector<float>{1.0f, 2.0f, 8.0f, 9.0f}));
}

TEST(MutableSliceTest, CopyFromBuffer) {
  Buffer b = Buffer::FromVector({6.0f, 7.0f});
  std::vector<float> v(2, 0.0f);
  MutableSlice m(v.data(), v.size());
  m.CopyFrom(b);
  EXPECT_EQ(v, (std::vector<float>{6.0f, 7.0f}));
}

TEST(ParamStoreTest, ReplicasAreZeroInitializedAndDisjoint) {
  ParamStore store(/*num_replicas=*/3, /*num_params=*/10);
  for (size_t r = 0; r < 3; ++r) {
    MutableSlice s = store.replica(r);
    ASSERT_EQ(s.size(), 10u);
    for (size_t i = 0; i < 10; ++i) EXPECT_EQ(s[i], 0.0f);
  }
  // Writing one replica leaves the others untouched (padding isolates
  // neighbours even for sizes that are not a multiple of the stride).
  store.replica(1).CopyFrom(std::vector<float>(10, 3.0f));
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(store.replica(0)[i], 0.0f);
    EXPECT_EQ(store.replica(2)[i], 0.0f);
  }
}

TEST(ParamStoreTest, InitAllBroadcastsTheSameInit) {
  ParamStore store(2, 4);
  store.InitAll(std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f});
  for (size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(store.replica(r).ToVector(),
              (std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f}));
  }
}

TEST(ParamStoreTest, ArenaIsAligned) {
  ParamStore store(4, 7);
  for (size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(store.replica(r).data()) % 64, 0u)
        << "replica " << r;
  }
}

}  // namespace
}  // namespace pr
