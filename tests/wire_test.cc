#include "comm/wire.h"

#include <unistd.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "comm/transport.h"
#include "compress/codec.h"

namespace pr {
namespace {

Envelope MakeEnvelope(NodeId from, uint64_t tag, int kind,
                      std::vector<int64_t> ints, std::vector<float> payload) {
  Envelope env;
  env.from = from;
  env.tag = tag;
  env.kind = kind;
  env.ints = std::move(ints);
  env.payload = Buffer::FromVector(std::move(payload));
  return env;
}

// Bit-level payload comparison: float equality would lie about NaNs and
// signed zeros, and the wire format promises bit identity.
void ExpectBitIdentical(const Envelope& a, const Envelope& b) {
  ASSERT_EQ(a.payload.size(), b.payload.size());
  if (a.payload.size() > 0) {
    EXPECT_EQ(std::memcmp(a.payload.data(), b.payload.data(),
                          a.payload.size() * sizeof(float)),
              0);
  }
}

TEST(WireTest, RoundTripBitIdentity) {
  std::vector<float> payload = {1.5f,
                                -0.0f,
                                std::numeric_limits<float>::infinity(),
                                std::numeric_limits<float>::quiet_NaN(),
                                std::numeric_limits<float>::denorm_min(),
                                3.1415926f};
  Envelope env = MakeEnvelope(/*from=*/3, /*tag=*/0xdeadbeefcafeull,
                              /*kind=*/7, {42, -1, 1ll << 60}, payload);
  std::vector<uint8_t> frame = EncodeFrame(/*to=*/9, env);

  NodeId to = -1;
  Envelope decoded;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(frame.data(), frame.size(), &to, &decoded, &consumed),
            WireDecode::kOk);
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(to, 9);
  EXPECT_EQ(decoded.from, 3);
  EXPECT_EQ(decoded.tag, 0xdeadbeefcafeull);
  EXPECT_EQ(decoded.kind, 7);
  EXPECT_EQ(decoded.ints, (std::vector<int64_t>{42, -1, 1ll << 60}));
  ExpectBitIdentical(env, decoded);
}

TEST(WireTest, ZeroLengthPayloadAndNoInts) {
  Envelope env = MakeEnvelope(/*from=*/0, /*tag=*/0, /*kind=*/0, {}, {});
  std::vector<uint8_t> frame = EncodeFrame(/*to=*/1, env);
  EXPECT_EQ(frame.size(), kWirePreambleBytes + kWireHeaderFixedBytes);

  NodeId to = -1;
  Envelope decoded;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(frame.data(), frame.size(), &to, &decoded, &consumed),
            WireDecode::kOk);
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(to, 1);
  EXPECT_TRUE(decoded.ints.empty());
  EXPECT_EQ(decoded.payload.size(), 0u);
}

TEST(WireTest, LargeFrameRoundTrips) {
  // Max ints plus a payload big enough to exercise multi-element iovec
  // writes; the 1 GiB payload cap itself is checked without allocating it.
  std::vector<int64_t> ints(kWireMaxInts);
  for (size_t i = 0; i < ints.size(); ++i) ints[i] = static_cast<int64_t>(i);
  std::vector<float> payload(1 << 16);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<float>(i) * 0.25f;
  }
  Envelope env = MakeEnvelope(/*from=*/1, /*tag=*/1, /*kind=*/2, ints,
                              payload);
  std::vector<uint8_t> frame = EncodeFrame(/*to=*/0, env);

  NodeId to = -1;
  Envelope decoded;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(frame.data(), frame.size(), &to, &decoded, &consumed),
            WireDecode::kOk);
  EXPECT_EQ(decoded.ints.size(), static_cast<size_t>(kWireMaxInts));
  EXPECT_EQ(decoded.ints.back(), static_cast<int64_t>(kWireMaxInts) - 1);
  ExpectBitIdentical(env, decoded);
}

TEST(WireTest, EveryTruncationAsksForMore) {
  Envelope env = MakeEnvelope(/*from=*/2, /*tag=*/5, /*kind=*/1, {9, 9},
                              {1.0f, 2.0f, 3.0f});
  std::vector<uint8_t> frame = EncodeFrame(/*to=*/4, env);
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    NodeId to = -1;
    Envelope decoded;
    size_t consumed = 0;
    EXPECT_EQ(DecodeFrame(frame.data(), cut, &to, &decoded, &consumed),
              WireDecode::kNeedMore)
        << "prefix of " << cut << " bytes";
  }
}

TEST(WireTest, BadMagicIsCorruptEvenWhenShort) {
  Envelope env = MakeEnvelope(/*from=*/0, /*tag=*/0, /*kind=*/0, {}, {});
  std::vector<uint8_t> frame = EncodeFrame(/*to=*/1, env);
  frame[0] ^= 0xff;
  NodeId to = -1;
  Envelope decoded;
  size_t consumed = 0;
  std::string error;
  // A wrong first byte is detectable without the rest of the preamble: the
  // reader must not wait for more bytes that will never resynchronize it.
  EXPECT_EQ(DecodeFrame(frame.data(), 4, &to, &decoded, &consumed, &error),
            WireDecode::kCorrupt);
  EXPECT_EQ(error, "bad magic");
  EXPECT_EQ(DecodeFrame(frame.data(), frame.size(), &to, &decoded, &consumed,
                        &error),
            WireDecode::kCorrupt);
}

TEST(WireTest, BadVersionIsCorrupt) {
  Envelope env = MakeEnvelope(/*from=*/0, /*tag=*/0, /*kind=*/0, {}, {});
  std::vector<uint8_t> frame = EncodeFrame(/*to=*/1, env);
  frame[4] = kWireVersion + 1;
  NodeId to = -1;
  Envelope decoded;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeFrame(frame.data(), frame.size(), &to, &decoded, &consumed,
                        &error),
            WireDecode::kCorrupt);
  EXPECT_EQ(error, "bad version");
}

TEST(WireTest, OversizeLengthsAreCorruptNotAllocated) {
  Envelope env = MakeEnvelope(/*from=*/0, /*tag=*/0, /*kind=*/0, {}, {});
  std::vector<uint8_t> frame = EncodeFrame(/*to=*/1, env);

  // payload_floats (preamble bytes 12..15) claiming more than the cap must
  // be rejected from the preamble alone — before any allocation.
  std::vector<uint8_t> oversize = frame;
  const uint32_t huge = kWireMaxPayloadFloats + 1;
  std::memcpy(oversize.data() + 12, &huge, sizeof(huge));
  NodeId to = -1;
  Envelope decoded;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeFrame(oversize.data(), oversize.size(), &to, &decoded,
                        &consumed, &error),
            WireDecode::kCorrupt);
  EXPECT_EQ(error, "payload oversize");

  // header_bytes inconsistent with num_ints is equally fatal.
  std::vector<uint8_t> skewed = EncodeFrame(1, MakeEnvelope(0, 0, 0, {7}, {}));
  uint32_t num_ints = 9;  // header says one int, field claims nine
  std::memcpy(skewed.data() + kWirePreambleBytes + 20, &num_ints,
              sizeof(num_ints));
  EXPECT_EQ(DecodeFrame(skewed.data(), skewed.size(), &to, &decoded,
                        &consumed, &error),
            WireDecode::kCorrupt);
  EXPECT_EQ(error, "num_ints inconsistent with header_bytes");

  // Misaligned header_bytes (not 24 + 8k).
  std::vector<uint8_t> misaligned = frame;
  const uint32_t odd_header = kWireHeaderFixedBytes + 3;
  std::memcpy(misaligned.data() + 8, &odd_header, sizeof(odd_header));
  EXPECT_EQ(DecodeFrame(misaligned.data(), misaligned.size(), &to, &decoded,
                        &consumed, &error),
            WireDecode::kCorrupt);
}

TEST(WireTest, EncodingTagRoundTripsThroughFrame) {
  Envelope env = MakeEnvelope(/*from=*/2, /*tag=*/9, /*kind=*/108, {0, 1, 2},
                              {1.0f, 2.0f, 3.0f});
  env.encoding = static_cast<uint8_t>(CompressionKind::kInt8);
  std::vector<uint8_t> frame = EncodeFrame(/*to=*/5, env);
  // The preamble carries the tag in the flags byte of a v2 frame.
  EXPECT_EQ(frame[4], kWireVersion);
  EXPECT_EQ(frame[5], static_cast<uint8_t>(CompressionKind::kInt8));

  NodeId to = -1;
  Envelope decoded;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(frame.data(), frame.size(), &to, &decoded, &consumed),
            WireDecode::kOk);
  EXPECT_EQ(decoded.encoding, static_cast<uint8_t>(CompressionKind::kInt8));
  ExpectBitIdentical(env, decoded);

  // Truncations of a tagged frame still ask for more, never misdecode.
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    EXPECT_EQ(DecodeFrame(frame.data(), cut, &to, &decoded, &consumed),
              WireDecode::kNeedMore)
        << "prefix of " << cut << " bytes";
  }
}

TEST(WireTest, V1FrameStillDecodesAsRawFp32) {
  // Backward compatibility: a v1 writer knows nothing of encoding tags; its
  // zero flags byte must decode as an untagged raw-fp32 payload.
  Envelope env = MakeEnvelope(/*from=*/1, /*tag=*/4, /*kind=*/2, {8},
                              {0.25f, -0.25f});
  std::vector<uint8_t> frame = EncodeFrame(/*to=*/0, env);
  frame[4] = 1;  // rewrite the version byte: pretend an old peer sent this

  NodeId to = -1;
  Envelope decoded;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeFrame(frame.data(), frame.size(), &to, &decoded, &consumed,
                        &error),
            WireDecode::kOk)
      << error;
  EXPECT_EQ(decoded.encoding, 0);
  ExpectBitIdentical(env, decoded);
}

TEST(WireTest, V1FrameWithNonzeroFlagsIsCorrupt) {
  // v1 reserved the flags byte as zero; anything else is stream corruption,
  // not a forward-compatible extension.
  Envelope env = MakeEnvelope(/*from=*/0, /*tag=*/0, /*kind=*/0, {}, {});
  std::vector<uint8_t> frame = EncodeFrame(/*to=*/1, env);
  frame[4] = 1;
  frame[5] = 1;
  NodeId to = -1;
  Envelope decoded;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeFrame(frame.data(), frame.size(), &to, &decoded, &consumed,
                        &error),
            WireDecode::kCorrupt);
  EXPECT_EQ(error, "bad flags");
}

TEST(WireTest, UnknownEncodingTagIsCorrupt) {
  // A v2 frame whose flags byte names no codec must be rejected before the
  // payload is handed to a decoder that would misread it.
  Envelope env = MakeEnvelope(/*from=*/0, /*tag=*/1, /*kind=*/3, {}, {1.0f});
  std::vector<uint8_t> frame = EncodeFrame(/*to=*/1, env);
  frame[5] = kNumCompressionKinds;
  NodeId to = -1;
  Envelope decoded;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeFrame(frame.data(), frame.size(), &to, &decoded, &consumed,
                        &error),
            WireDecode::kCorrupt);
  EXPECT_EQ(error, "bad payload encoding");
}

TEST(WireTest, EncodingTagSurvivesFdRoundTrip) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  Envelope env = MakeEnvelope(/*from=*/7, /*tag=*/21, /*kind=*/109, {3},
                              {4.0f, 5.0f});
  env.encoding = static_cast<uint8_t>(CompressionKind::kTopK);
  ASSERT_TRUE(WriteFrameFd(fds[1], /*to=*/2, env).ok());
  ::close(fds[1]);

  NodeId to = -1;
  Envelope decoded;
  ASSERT_TRUE(ReadFrameFd(fds[0], &to, &decoded).ok());
  EXPECT_EQ(decoded.encoding, static_cast<uint8_t>(CompressionKind::kTopK));
  ExpectBitIdentical(env, decoded);
  ::close(fds[0]);
}

TEST(WireTest, CorruptEncodingTagOnFdStreamIsInvalidArgument) {
  Envelope env = MakeEnvelope(/*from=*/1, /*tag=*/2, /*kind=*/3, {}, {1.0f});
  std::vector<uint8_t> frame = EncodeFrame(/*to=*/0, env);
  frame[5] = 0xff;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(::write(fds[1], frame.data(), frame.size()),
            static_cast<ssize_t>(frame.size()));
  ::close(fds[1]);
  NodeId to = -1;
  Envelope decoded;
  Status corrupt = ReadFrameFd(fds[0], &to, &decoded);
  EXPECT_EQ(corrupt.code(), StatusCode::kInvalidArgument);
  ::close(fds[0]);
}

TEST(WireTest, FdRoundTripAndCleanEof) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  Envelope first = MakeEnvelope(/*from=*/5, /*tag=*/11, /*kind=*/3, {1, 2},
                                {0.5f, -0.5f});
  Envelope second = MakeEnvelope(/*from=*/6, /*tag=*/12, /*kind=*/4, {}, {});
  ASSERT_TRUE(WriteFrameFd(fds[1], /*to=*/0, first).ok());
  ASSERT_TRUE(WriteFrameFd(fds[1], /*to=*/0, second).ok());
  ::close(fds[1]);

  NodeId to = -1;
  Envelope decoded;
  ASSERT_TRUE(ReadFrameFd(fds[0], &to, &decoded).ok());
  EXPECT_EQ(decoded.from, 5);
  ExpectBitIdentical(first, decoded);
  ASSERT_TRUE(ReadFrameFd(fds[0], &to, &decoded).ok());
  EXPECT_EQ(decoded.from, 6);

  // Writer closed at a frame boundary: a polite end of stream.
  Status eof = ReadFrameFd(fds[0], &to, &decoded);
  EXPECT_EQ(eof.code(), StatusCode::kCancelled);
  ::close(fds[0]);
}

TEST(WireTest, TornFrameIsUnavailable) {
  Envelope env = MakeEnvelope(/*from=*/1, /*tag=*/3, /*kind=*/2, {4},
                              {9.0f, 8.0f, 7.0f});
  std::vector<uint8_t> frame = EncodeFrame(/*to=*/0, env);
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // The peer dies halfway through a frame.
  ASSERT_EQ(::write(fds[1], frame.data(), frame.size() - 5),
            static_cast<ssize_t>(frame.size() - 5));
  ::close(fds[1]);

  NodeId to = -1;
  Envelope decoded;
  Status torn = ReadFrameFd(fds[0], &to, &decoded);
  EXPECT_EQ(torn.code(), StatusCode::kUnavailable);
  ::close(fds[0]);
}

TEST(WireTest, CorruptStreamIsInvalidArgument) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const char garbage[] = "this is not a PRW1 frame at all.........";
  ASSERT_EQ(::write(fds[0 + 1], garbage, sizeof(garbage)),
            static_cast<ssize_t>(sizeof(garbage)));
  ::close(fds[1]);
  NodeId to = -1;
  Envelope decoded;
  Status corrupt = ReadFrameFd(fds[0], &to, &decoded);
  EXPECT_EQ(corrupt.code(), StatusCode::kInvalidArgument);
  ::close(fds[0]);
}

}  // namespace
}  // namespace pr
