#include <gtest/gtest.h>

#include <fstream>

#include "topo/topology.h"

namespace pr {
namespace {

Topology TwoByTwo() {
  Topology topo;
  Status s = Topology::FromNodes({{0, 1}, {2, 3}}, &topo);
  EXPECT_TRUE(s.ok()) << s.message();
  return topo;
}

TEST(TopologyTest, DefaultIsFlat) {
  Topology topo;
  EXPECT_TRUE(topo.flat());
  EXPECT_EQ(topo.num_nodes(), 1);
  EXPECT_EQ(topo.num_workers(), 0);
  EXPECT_EQ(topo.NodeOf(0), 0);
  EXPECT_EQ(topo.NodeOf(17), 0);
  EXPECT_DOUBLE_EQ(topo.LinkCost(0, 17), 1.0);
  EXPECT_DOUBLE_EQ(topo.LinkLatencyFactor(3, 9), 1.0);
}

TEST(TopologyTest, UniformPlacesConsecutiveBlocks) {
  Topology topo = Topology::Uniform(4, 8);
  EXPECT_FALSE(topo.flat());
  EXPECT_EQ(topo.num_nodes(), 4);
  EXPECT_EQ(topo.num_workers(), 32);
  EXPECT_EQ(topo.NodeOf(0), 0);
  EXPECT_EQ(topo.NodeOf(7), 0);
  EXPECT_EQ(topo.NodeOf(8), 1);
  EXPECT_EQ(topo.NodeOf(31), 3);
  EXPECT_TRUE(topo.SameNode(8, 15));
  EXPECT_FALSE(topo.SameNode(7, 8));
}

TEST(TopologyTest, ControllerEndpointMapsToNodeZero) {
  // The threaded engine addresses the controller as id num_workers; the
  // out-of-range convention pins it to node 0.
  Topology topo = Topology::Uniform(2, 2);
  EXPECT_EQ(topo.NodeOf(4), 0);
  EXPECT_EQ(topo.NodeOf(-1), 0);
}

TEST(TopologyTest, LinkCostsAreTwoTier) {
  Topology topo = TwoByTwo();
  EXPECT_DOUBLE_EQ(topo.LinkCost(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(topo.LinkCost(1, 2), 4.0);
  EXPECT_DOUBLE_EQ(topo.LinkLatencyFactor(1, 2), 4.0);
  topo.set_inter_cost(9.0);
  topo.set_inter_latency_factor(2.5);
  EXPECT_DOUBLE_EQ(topo.LinkCost(0, 3), 9.0);
  EXPECT_DOUBLE_EQ(topo.LinkLatencyFactor(0, 3), 2.5);
}

TEST(TopologyTest, RingCostCountsWraparound) {
  Topology topo = TwoByTwo();
  // Ring 0-1-2-3-0: edges (0,1)=1, (1,2)=4, (2,3)=1, (3,0)=4.
  EXPECT_DOUBLE_EQ(topo.RingCost({0, 1, 2, 3}), 10.0);
  // Intra-node ring: all edges 1.
  EXPECT_DOUBLE_EQ(topo.RingCost({0, 1}), 2.0);
  EXPECT_DOUBLE_EQ(topo.NodesSpanned({0, 1}), 1);
  EXPECT_DOUBLE_EQ(topo.NodesSpanned({0, 2}), 2);
}

TEST(TopologyTest, FromNodesRejectsEmptyNode) {
  Topology topo;
  Status s = Topology::FromNodes({{0, 1}, {}}, &topo);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("empty"), std::string::npos) << s.message();
}

TEST(TopologyTest, FromNodesRejectsDuplicateWorker) {
  Topology topo;
  Status s = Topology::FromNodes({{0, 1}, {1, 2}}, &topo);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("two nodes"), std::string::npos) << s.message();
}

TEST(TopologyTest, FromNodesRejectsNonContiguousIds) {
  Topology topo;
  Status s = Topology::FromNodes({{0, 1}, {3}}, &topo);
  EXPECT_FALSE(s.ok());
}

TEST(TopologyTest, FromNodesRejectsNegativeId) {
  Topology topo;
  Status s = Topology::FromNodes({{0, -1}}, &topo);
  EXPECT_FALSE(s.ok());
}

TEST(TopologyTest, TextRoundTripIsExact) {
  Topology topo = Topology::Uniform(3, 2);
  topo.set_inter_cost(6.5);
  topo.set_inter_latency_factor(3.25);
  const std::string text = topo.Serialize();
  Topology back;
  Status s = Topology::Parse(text, &back);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(back.Serialize(), text);
  EXPECT_EQ(back.nodes(), topo.nodes());
  EXPECT_DOUBLE_EQ(back.inter_cost(), 6.5);
  EXPECT_DOUBLE_EQ(back.inter_latency_factor(), 3.25);
}

TEST(TopologyTest, JsonRoundTripIsExact) {
  Topology topo = Topology::Uniform(2, 3);
  topo.set_inter_cost(2.0);
  const std::string json = topo.ToJson();
  Topology back;
  Status s = Topology::FromJson(json, &back);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(back.Serialize(), topo.Serialize());
}

TEST(TopologyTest, ParseRejectsMissingHeader) {
  Topology topo;
  EXPECT_FALSE(Topology::Parse("node 0 1\n", &topo).ok());
}

TEST(TopologyTest, ParseRejectsUnknownKey) {
  Topology topo;
  Status s = Topology::Parse("prtopo 1\nnode 0 1\nwat 3\n", &topo);
  EXPECT_FALSE(s.ok());
}

TEST(TopologyTest, ParseRejectsMalformedPlacement) {
  Topology topo;
  // Worker 1 mapped to two nodes.
  EXPECT_FALSE(
      Topology::Parse("prtopo 1\nnode 0 1\nnode 1 2\n", &topo).ok());
  // Empty node line.
  EXPECT_FALSE(Topology::Parse("prtopo 1\nnode\nnode 0 1\n", &topo).ok());
}

TEST(TopologyTest, ParseRejectsNonPositiveCosts) {
  Topology topo;
  EXPECT_FALSE(
      Topology::Parse("prtopo 1\ninter_cost 0\nnode 0 1\n", &topo).ok());
  EXPECT_FALSE(
      Topology::Parse("prtopo 1\ninter_latency_factor -2\nnode 0\nnode 1\n",
                      &topo)
          .ok());
}

TEST(TopologyTest, ParseAcceptsCommentsAndBlankLines) {
  Topology topo;
  Status s = Topology::Parse(
      "prtopo 1\n# racks A and B\n\nnode 0 1\nnode 2 3\ninter_cost 8\n",
      &topo);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(topo.num_nodes(), 2);
  EXPECT_DOUBLE_EQ(topo.inter_cost(), 8.0);
}

TEST(TopologyTest, LoadSniffsJsonByLeadingBrace) {
  const std::string dir = ::testing::TempDir();
  const std::string text_path = dir + "/topo.txt";
  const std::string json_path = dir + "/topo.json";
  Topology topo = Topology::Uniform(2, 2);
  {
    std::ofstream out(text_path);
    out << topo.Serialize();
  }
  {
    std::ofstream out(json_path);
    out << topo.ToJson();
  }
  Topology from_text, from_json;
  ASSERT_TRUE(Topology::Load(text_path, &from_text).ok());
  ASSERT_TRUE(Topology::Load(json_path, &from_json).ok());
  EXPECT_EQ(from_text.Serialize(), topo.Serialize());
  EXPECT_EQ(from_json.Serialize(), topo.Serialize());
}

TEST(TopologyTest, FromJsonRejectsUnknownMember) {
  Topology topo;
  EXPECT_FALSE(
      Topology::FromJson("{\"prtopo\": 1, \"nodes\": [[0,1]], \"x\": 2}",
                         &topo)
          .ok());
}

}  // namespace
}  // namespace pr
