#include <gtest/gtest.h>

#include <cmath>
#include <atomic>
#include <thread>

#include "comm/collectives.h"
#include "common/rng.h"

namespace pr {
namespace {

/// Runs `fn(member_index, endpoint)` on one thread per member and joins.
void RunMembers(InProcTransport* transport, const std::vector<NodeId>& members,
                const std::function<void(size_t, Endpoint*)>& fn) {
  std::vector<std::thread> threads;
  for (size_t i = 0; i < members.size(); ++i) {
    threads.emplace_back([&, i] {
      Endpoint ep(transport, members[i]);
      fn(i, &ep);
    });
  }
  for (auto& t : threads) t.join();
}

std::vector<std::vector<float>> MakeInputs(size_t p, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> inputs(p, std::vector<float>(n));
  for (auto& v : inputs) {
    for (auto& x : v) x = static_cast<float>(rng.Normal(0.0, 1.0));
  }
  return inputs;
}

std::vector<float> ExpectedWeightedSum(
    const std::vector<std::vector<float>>& inputs,
    const std::vector<double>& weights) {
  std::vector<float> out(inputs[0].size(), 0.0f);
  for (size_t j = 0; j < inputs.size(); ++j) {
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] += static_cast<float>(weights[j]) * inputs[j][i];
    }
  }
  return out;
}

class CollectiveParamTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(CollectiveParamTest, RingMatchesExpectedWeightedSum) {
  auto [p, n] = GetParam();
  std::vector<NodeId> members;
  for (size_t i = 0; i < p; ++i) members.push_back(static_cast<NodeId>(i));
  std::vector<double> weights(p);
  double total = 0.0;
  Rng wrng(p * 100 + n);
  for (auto& w : weights) {
    w = wrng.Uniform(0.1, 1.0);
    total += w;
  }
  for (auto& w : weights) w /= total;

  auto inputs = MakeInputs(p, n, 42);
  auto expected = ExpectedWeightedSum(inputs, weights);

  InProcTransport transport(static_cast<int>(p));
  auto data = inputs;
  RunMembers(&transport, members, [&](size_t i, Endpoint* ep) {
    ASSERT_TRUE(
        RingWeightedAllReduce(ep, members, weights, i, /*tag=*/1, &data[i])
            .ok());
  });
  for (size_t i = 0; i < p; ++i) {
    ASSERT_EQ(data[i].size(), n);
    for (size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(data[i][j], expected[j], 1e-4)
          << "member " << i << " elem " << j;
    }
  }
}

TEST_P(CollectiveParamTest, LeaderMatchesRing) {
  auto [p, n] = GetParam();
  std::vector<NodeId> members;
  for (size_t i = 0; i < p; ++i) members.push_back(static_cast<NodeId>(i));
  std::vector<double> weights(p, 1.0 / static_cast<double>(p));

  auto inputs = MakeInputs(p, n, 77);

  InProcTransport t1(static_cast<int>(p));
  auto ring = inputs;
  RunMembers(&t1, members, [&](size_t i, Endpoint* ep) {
    ASSERT_TRUE(
        RingWeightedAllReduce(ep, members, weights, i, 1, &ring[i]).ok());
  });

  InProcTransport t2(static_cast<int>(p));
  auto leader = inputs;
  RunMembers(&t2, members, [&](size_t i, Endpoint* ep) {
    ASSERT_TRUE(
        LeaderWeightedAllReduce(ep, members, weights, i, 1, &leader[i]).ok());
  });

  for (size_t i = 0; i < p; ++i) {
    for (size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(ring[i][j], leader[i][j], 1e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    GroupSizesAndLengths, CollectiveParamTest,
    ::testing::Values(std::make_tuple(2, 1), std::make_tuple(2, 64),
                      std::make_tuple(3, 7), std::make_tuple(3, 100),
                      std::make_tuple(4, 5), std::make_tuple(5, 33),
                      std::make_tuple(8, 256)));

TEST(CollectivesTest, SingleMemberScalesByOwnWeight) {
  InProcTransport transport(1);
  Endpoint ep(&transport, 0);
  std::vector<float> data = {2.0f, 4.0f};
  ASSERT_TRUE(
      RingWeightedAllReduce(&ep, {0}, {1.0}, 0, 1, &data).ok());
  EXPECT_FLOAT_EQ(data[0], 2.0f);
  EXPECT_FLOAT_EQ(data[1], 4.0f);
}

TEST(CollectivesTest, RingAverageEqualsMean) {
  const size_t p = 4, n = 12;
  std::vector<NodeId> members = {0, 1, 2, 3};
  auto inputs = MakeInputs(p, n, 5);
  std::vector<float> mean(n, 0.0f);
  for (const auto& in : inputs) {
    for (size_t j = 0; j < n; ++j) mean[j] += in[j] / p;
  }
  InProcTransport transport(4);
  auto data = inputs;
  RunMembers(&transport, members, [&](size_t i, Endpoint* ep) {
    ASSERT_TRUE(RingAverageAllReduce(ep, members, i, 3, &data[i]).ok());
  });
  for (size_t i = 0; i < p; ++i) {
    for (size_t j = 0; j < n; ++j) EXPECT_NEAR(data[i][j], mean[j], 1e-5);
  }
}

TEST(CollectivesTest, NonContiguousMemberIds) {
  // Members 1, 3, 6 of an 8-node world; others silent.
  std::vector<NodeId> members = {1, 3, 6};
  std::vector<double> weights = {0.5, 0.25, 0.25};
  auto inputs = MakeInputs(3, 10, 9);
  auto expected = ExpectedWeightedSum(inputs, weights);

  InProcTransport transport(8);
  auto data = inputs;
  RunMembers(&transport, members, [&](size_t i, Endpoint* ep) {
    ASSERT_TRUE(
        RingWeightedAllReduce(ep, members, weights, i, 11, &data[i]).ok());
  });
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 10; ++j) EXPECT_NEAR(data[i][j], expected[j], 1e-5);
  }
}

TEST(CollectivesTest, ConcurrentGroupsWithDistinctTags) {
  // Two disjoint groups reduce simultaneously over one transport.
  std::vector<NodeId> g1 = {0, 1}, g2 = {2, 3};
  auto in1 = MakeInputs(2, 20, 1);
  auto in2 = MakeInputs(2, 20, 2);
  auto e1 = ExpectedWeightedSum(in1, {0.5, 0.5});
  auto e2 = ExpectedWeightedSum(in2, {0.5, 0.5});

  InProcTransport transport(4);
  auto d1 = in1;
  auto d2 = in2;
  std::vector<std::thread> threads;
  for (size_t i = 0; i < 2; ++i) {
    threads.emplace_back([&, i] {
      Endpoint ep(&transport, g1[i]);
      ASSERT_TRUE(RingAverageAllReduce(&ep, g1, i, /*tag=*/100, &d1[i]).ok());
    });
    threads.emplace_back([&, i] {
      Endpoint ep(&transport, g2[i]);
      ASSERT_TRUE(RingAverageAllReduce(&ep, g2, i, /*tag=*/200, &d2[i]).ok());
    });
  }
  for (auto& t : threads) t.join();
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 20; ++j) {
      EXPECT_NEAR(d1[i][j], e1[j], 1e-5);
      EXPECT_NEAR(d2[i][j], e2[j], 1e-5);
    }
  }
}

TEST(CollectivesTest, BroadcastDeliversRootPayload) {
  std::vector<NodeId> members = {0, 1, 2};
  InProcTransport transport(3);
  std::vector<std::vector<float>> data(3, std::vector<float>{0, 0});
  data[1] = {3.5f, -1.0f};  // root is member index 1
  RunMembers(&transport, members, [&](size_t i, Endpoint* ep) {
    ASSERT_TRUE(Broadcast(ep, members, i, /*root_index=*/1, 5, &data[i]).ok());
  });
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(data[i], (std::vector<float>{3.5f, -1.0f}));
  }
}

TEST(CollectivesTest, InvalidArgumentsRejected) {
  InProcTransport transport(2);
  Endpoint ep(&transport, 0);
  std::vector<float> data = {1.0f};
  // Mismatched weights.
  EXPECT_EQ(RingWeightedAllReduce(&ep, {0, 1}, {1.0}, 0, 1, &data).code(),
            StatusCode::kInvalidArgument);
  // my_index out of range.
  EXPECT_EQ(
      RingWeightedAllReduce(&ep, {0, 1}, {0.5, 0.5}, 2, 1, &data).code(),
      StatusCode::kInvalidArgument);
  // Empty members.
  EXPECT_EQ(RingWeightedAllReduce(&ep, {}, {}, 0, 1, &data).code(),
            StatusCode::kInvalidArgument);
}

TEST(CollectivesTest, ReduceScatterOwnedChunkHoldsSum) {
  const size_t p = 4, n = 21;
  std::vector<NodeId> members = {0, 1, 2, 3};
  auto inputs = MakeInputs(p, n, 31);
  std::vector<float> sum(n, 0.0f);
  for (const auto& in : inputs) {
    for (size_t j = 0; j < n; ++j) sum[j] += in[j];
  }
  InProcTransport transport(4);
  auto data = inputs;
  std::vector<std::pair<size_t, size_t>> chunks(p);
  RunMembers(&transport, members, [&](size_t i, Endpoint* ep) {
    ASSERT_TRUE(RingReduceScatter(ep, members, i, 5, &data[i],
                                  &chunks[i].first, &chunks[i].second)
                    .ok());
  });
  // Owned chunks are disjoint, cover [0, n), and hold the full sum.
  std::vector<bool> covered(n, false);
  for (size_t i = 0; i < p; ++i) {
    auto [b, e] = chunks[i];
    for (size_t j = b; j < e; ++j) {
      EXPECT_FALSE(covered[j]);
      covered[j] = true;
      EXPECT_NEAR(data[i][j], sum[j], 1e-4);
    }
  }
  for (size_t j = 0; j < n; ++j) EXPECT_TRUE(covered[j]);
}

TEST(CollectivesTest, ReduceScatterPlusAllGatherEqualsAllReduce) {
  const size_t p = 3, n = 17;
  std::vector<NodeId> members = {0, 1, 2};
  auto inputs = MakeInputs(p, n, 33);
  std::vector<float> sum(n, 0.0f);
  for (const auto& in : inputs) {
    for (size_t j = 0; j < n; ++j) sum[j] += in[j];
  }
  InProcTransport transport(3);
  auto data = inputs;
  RunMembers(&transport, members, [&](size_t i, Endpoint* ep) {
    ASSERT_TRUE(
        RingReduceScatter(ep, members, i, 7, &data[i], nullptr, nullptr)
            .ok());
    ASSERT_TRUE(RingAllGather(ep, members, i, 7, &data[i]).ok());
  });
  for (size_t i = 0; i < p; ++i) {
    for (size_t j = 0; j < n; ++j) EXPECT_NEAR(data[i][j], sum[j], 1e-4);
  }
}

TEST(CollectivesTest, GatherCollectsInMemberOrder) {
  std::vector<NodeId> members = {0, 1, 2};
  InProcTransport transport(3);
  std::vector<std::vector<Buffer>> gathered(3);
  RunMembers(&transport, members, [&](size_t i, Endpoint* ep) {
    std::vector<float> mine = {static_cast<float>(i + 1)};
    ASSERT_TRUE(
        Gather(ep, members, i, /*root_index=*/1, 9, mine, &gathered[i]).ok());
  });
  // Only the root received anything; contributions arrive as shared
  // Buffer handles, in member order.
  EXPECT_TRUE(gathered[0].empty());
  EXPECT_TRUE(gathered[2].empty());
  ASSERT_EQ(gathered[1].size(), 3u);
  EXPECT_EQ(gathered[1][0].ToVector(), (std::vector<float>{1.0f}));
  EXPECT_EQ(gathered[1][1].ToVector(), (std::vector<float>{2.0f}));
  EXPECT_EQ(gathered[1][2].ToVector(), (std::vector<float>{3.0f}));
}

TEST(CollectivesTest, BarrierWaitsForAllMembers) {
  std::vector<NodeId> members = {0, 1, 2, 3};
  InProcTransport transport(4);
  std::atomic<int> entered{0};
  std::atomic<int> min_seen_at_exit{100};
  RunMembers(&transport, members, [&](size_t i, Endpoint* ep) {
    if (i == 2) std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ++entered;
    ASSERT_TRUE(RingBarrier(ep, members, i, 13).ok());
    int e = entered.load();
    int expected = min_seen_at_exit.load();
    while (e < expected &&
           !min_seen_at_exit.compare_exchange_weak(expected, e)) {
    }
  });
  // Nobody may exit the barrier before everyone entered.
  EXPECT_EQ(min_seen_at_exit.load(), 4);
}

TEST(CollectivesTest, BarrierSingleMemberIsNoop) {
  InProcTransport transport(1);
  Endpoint ep(&transport, 0);
  EXPECT_TRUE(RingBarrier(&ep, {0}, 0, 1).ok());
}

// --- Segmented pipelined ring ---------------------------------------------

/// Runs the segmented ring over `inputs` with the given segment size and
/// returns each member's result.
std::vector<std::vector<float>> RunSegmented(
    const std::vector<NodeId>& members, const std::vector<double>& weights,
    std::vector<std::vector<float>> inputs, size_t segment_floats,
    int world = 0) {
  InProcTransport transport(world > 0 ? world
                                      : static_cast<int>(members.size()));
  RunMembers(&transport, members, [&](size_t i, Endpoint* ep) {
    ASSERT_TRUE(SegmentedRingWeightedAllReduce(
                    ep, members, weights, i, /*tag=*/1, inputs[i].data(),
                    inputs[i].size(), segment_floats)
                    .ok());
  });
  return inputs;
}

TEST_P(CollectiveParamTest, SegmentedBitIdenticalToClassicRing) {
  auto [p, n] = GetParam();
  std::vector<NodeId> members;
  for (size_t i = 0; i < p; ++i) members.push_back(static_cast<NodeId>(i));
  std::vector<double> weights(p);
  double total = 0.0;
  Rng wrng(p * 31 + n);
  for (auto& w : weights) {
    w = wrng.Uniform(0.1, 1.0);
    total += w;
  }
  for (auto& w : weights) w /= total;
  auto inputs = MakeInputs(p, n, 321);

  InProcTransport t1(static_cast<int>(p));
  auto classic = inputs;
  RunMembers(&t1, members, [&](size_t i, Endpoint* ep) {
    ASSERT_TRUE(
        RingWeightedAllReduce(ep, members, weights, i, 1, &classic[i]).ok());
  });

  // Small segment so every parameterization actually pipelines.
  auto segmented = RunSegmented(members, weights, inputs, /*segment=*/8);
  for (size_t i = 0; i < p; ++i) {
    ASSERT_EQ(segmented[i].size(), n);
    for (size_t j = 0; j < n; ++j) {
      // Bitwise identity, not approximate equality: the segmented pipeline
      // must perform the same additions in the same per-element order.
      EXPECT_EQ(segmented[i][j], classic[i][j])
          << "member " << i << " elem " << j;
    }
  }
}

TEST(SegmentedRingTest, VectorShorterThanGroup) {
  // n < P: some chunks are empty, yet the schedule must stay uniform.
  std::vector<NodeId> members = {0, 1, 2, 3, 4};
  std::vector<double> weights(5, 0.2);
  auto inputs = MakeInputs(5, 3, 17);
  auto expected = ExpectedWeightedSum(inputs, weights);
  auto out = RunSegmented(members, weights, inputs, /*segment=*/4);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 3; ++j) EXPECT_NEAR(out[i][j], expected[j], 1e-5);
  }
}

TEST(SegmentedRingTest, EmptyVector) {
  // n == 0: nothing to reduce, but every member must still complete.
  std::vector<NodeId> members = {0, 1, 2};
  std::vector<double> weights(3, 1.0 / 3.0);
  InProcTransport transport(3);
  RunMembers(&transport, members, [&](size_t i, Endpoint* ep) {
    ASSERT_TRUE(SegmentedRingWeightedAllReduce(ep, members, weights, i, 1,
                                               nullptr, 0)
                    .ok());
  });
}

TEST(SegmentedRingTest, SingleMemberScalesByOwnWeight) {
  InProcTransport transport(1);
  Endpoint ep(&transport, 0);
  std::vector<float> data = {2.0f, 4.0f};
  ASSERT_TRUE(SegmentedRingWeightedAllReduce(&ep, {0}, {0.5}, 0, 1,
                                             data.data(), data.size())
                  .ok());
  EXPECT_FLOAT_EQ(data[0], 1.0f);
  EXPECT_FLOAT_EQ(data[1], 2.0f);
}

TEST(SegmentedRingTest, NonDivisibleLengthManySegments) {
  // Chunk lengths differ (n % p != 0) and each chunk spans several
  // segments, with a ragged final segment.
  std::vector<NodeId> members = {0, 1, 2};
  std::vector<double> weights = {0.2, 0.3, 0.5};
  auto inputs = MakeInputs(3, 101, 23);
  auto expected = ExpectedWeightedSum(inputs, weights);
  auto out = RunSegmented(members, weights, inputs, /*segment=*/7);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 101; ++j) {
      EXPECT_NEAR(out[i][j], expected[j], 1e-4);
    }
  }
}

TEST(SegmentedRingTest, SegmentLargerThanVector) {
  // One segment per chunk: degenerates to the unsegmented schedule.
  std::vector<NodeId> members = {0, 1, 2, 3};
  std::vector<double> weights(4, 0.25);
  auto inputs = MakeInputs(4, 10, 29);
  auto expected = ExpectedWeightedSum(inputs, weights);
  auto out = RunSegmented(members, weights, inputs, /*segment=*/1u << 20);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 10; ++j) EXPECT_NEAR(out[i][j], expected[j], 1e-5);
  }
}

TEST(SegmentedRingTest, NonContiguousMemberIds) {
  std::vector<NodeId> members = {1, 4, 6};
  std::vector<double> weights = {0.5, 0.25, 0.25};
  auto inputs = MakeInputs(3, 40, 37);
  auto expected = ExpectedWeightedSum(inputs, weights);
  auto out = RunSegmented(members, weights, inputs, /*segment=*/6, /*world=*/8);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 40; ++j) EXPECT_NEAR(out[i][j], expected[j], 1e-5);
  }
}

TEST(SegmentedRingTest, GroupDispatchMatchesReference) {
  // GroupWeightedAllReduce is the strategies' single dispatch point; it must
  // agree bitwise with the unsegmented reference ring.
  const size_t p = 4, n = 333;
  std::vector<NodeId> members = {0, 1, 2, 3};
  std::vector<double> weights = {0.1, 0.2, 0.3, 0.4};
  auto inputs = MakeInputs(p, n, 41);

  InProcTransport t1(static_cast<int>(p));
  auto classic = inputs;
  RunMembers(&t1, members, [&](size_t i, Endpoint* ep) {
    ASSERT_TRUE(
        RingWeightedAllReduce(ep, members, weights, i, 1, &classic[i]).ok());
  });

  InProcTransport t2(static_cast<int>(p));
  auto dispatched = inputs;
  RunMembers(&t2, members, [&](size_t i, Endpoint* ep) {
    ASSERT_TRUE(GroupWeightedAllReduce(ep, members, weights, i, 1,
                                       &dispatched[i])
                    .ok());
  });
  for (size_t i = 0; i < p; ++i) {
    for (size_t j = 0; j < n; ++j) {
      EXPECT_EQ(dispatched[i][j], classic[i][j]);
    }
  }
}

TEST(CollectivesTest, VectorShorterThanGroupStillReduces) {
  // n < p exercises empty chunks in the ring.
  std::vector<NodeId> members = {0, 1, 2, 3, 4};
  std::vector<double> weights(5, 0.2);
  auto inputs = MakeInputs(5, 2, 13);
  auto expected = ExpectedWeightedSum(inputs, weights);
  InProcTransport transport(5);
  auto data = inputs;
  RunMembers(&transport, members, [&](size_t i, Endpoint* ep) {
    ASSERT_TRUE(
        RingWeightedAllReduce(ep, members, weights, i, 1, &data[i]).ok());
  });
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 2; ++j) EXPECT_NEAR(data[i][j], expected[j], 1e-5);
  }
}

}  // namespace
}  // namespace pr
