#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "launch/config_io.h"
#include "obs/json.h"
#include "service/job_queue.h"
#include "service/job_spec.h"
#include "service/service.h"
#include "service/worker_pool.h"

namespace pr {
namespace {

/// A tiny two-worker partial-reduce job (finishes in a few milliseconds).
JobSpec SmallThreadedJob(const std::string& tenant, int priority = 0) {
  JobSpec spec;
  spec.tenant = tenant;
  spec.priority = priority;
  spec.min_workers = 2;
  spec.max_workers = 2;
  RunConfig& config = spec.config;
  config.strategy.kind = StrategyKind::kPReduceConst;
  config.strategy.group_size = 2;
  config.run.num_workers = 2;
  config.run.iterations_per_worker = 4;
  config.run.batch_size = 8;
  config.run.model.hidden = {8};
  config.run.dataset.num_train = 64;
  config.run.dataset.num_test = 32;
  config.run.dataset.dim = 8;
  config.run.dataset.num_classes = 3;
  config.run.seed = 21;
  return spec;
}

/// A single-worker PS-ASP job (occupies exactly one pool slot).
JobSpec OneWorkerPsJob(double delay_seconds, size_t iterations) {
  JobSpec spec;
  spec.min_workers = 1;
  spec.max_workers = 1;
  RunConfig& config = spec.config;
  config.strategy.kind = StrategyKind::kPsAsp;
  config.run.num_workers = 1;
  config.run.iterations_per_worker = iterations;
  config.run.batch_size = 8;
  config.run.model.hidden = {8};
  config.run.dataset.num_train = 64;
  config.run.dataset.num_test = 32;
  config.run.dataset.dim = 8;
  config.run.dataset.num_classes = 3;
  if (delay_seconds > 0.0) {
    config.run.worker_delay_seconds = {delay_seconds};
  }
  return spec;
}

JobStatus MustInspect(TrainingService* service, int64_t id) {
  JobStatus status;
  Status found = service->Inspect(id, &status);
  EXPECT_TRUE(found.ok()) << found.message();
  return status;
}

void WaitForState(TrainingService* service, int64_t id, JobState state) {
  for (int i = 0; i < 2000; ++i) {
    if (MustInspect(service, id).state == state) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "job " << id << " never reached " << JobStateName(state)
         << " (now " << JobStateName(MustInspect(service, id).state) << ")";
}

TEST(JobSpecTest, JsonRoundTrip) {
  JobSpec spec;
  spec.name = "night-train";
  spec.tenant = "acme";
  spec.priority = 7;
  spec.min_workers = 2;
  spec.max_workers = 5;
  spec.data_shard = 3;
  spec.engine = EngineKind::kSim;
  spec.config.strategy.kind = StrategyKind::kPReduceDynamic;
  spec.config.strategy.group_size = 4;
  spec.config.run.num_workers = 6;
  spec.config.run.iterations_per_worker = 17;
  spec.config.run.model.hidden = {24, 12};
  spec.config.run.seed = 99;

  JobSpec parsed;
  Status status = JobSpecFromJson(JobSpecToJson(spec), &parsed);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(parsed.name, "night-train");
  EXPECT_EQ(parsed.tenant, "acme");
  EXPECT_EQ(parsed.priority, 7);
  EXPECT_EQ(parsed.min_workers, 2);
  EXPECT_EQ(parsed.max_workers, 5);
  EXPECT_EQ(parsed.data_shard, 3);
  EXPECT_EQ(parsed.engine, EngineKind::kSim);
  // The embedded RunConfig survives byte-for-byte in its text serialization.
  EXPECT_EQ(SerializeRunConfig(parsed.config), SerializeRunConfig(spec.config));
}

TEST(JobSpecTest, RejectsMalformedSpecs) {
  JobSpec out;
  EXPECT_FALSE(JobSpecFromJson("[]", &out).ok());
  EXPECT_FALSE(JobSpecFromJson("{\"priority\": 1}", &out).ok());  // no config
  const std::string valid = JobSpecToJson(SmallThreadedJob("t"));
  JsonValue doc;
  ASSERT_TRUE(ParseJson(valid, &doc).ok());
  doc.Set("engine", JsonValue::MakeString("quantum"));
  EXPECT_FALSE(JobSpecFromJson(doc.Dump(), &out).ok());
  ASSERT_TRUE(ParseJson(valid, &doc).ok());
  doc.Set("surprise", JsonValue::MakeNumber(1.0));
  EXPECT_FALSE(JobSpecFromJson(doc.Dump(), &out).ok());
  ASSERT_TRUE(ParseJson(valid, &doc).ok());
  doc.Set("min_workers", JsonValue::MakeNumber(4.0));
  doc.Set("max_workers", JsonValue::MakeNumber(2.0));
  EXPECT_FALSE(JobSpecFromJson(doc.Dump(), &out).ok());
}

TEST(JobQueueTest, WeightedFairShareAcrossTenants) {
  JobQueue queue;
  queue.SetTenantWeight("heavy", 2.0);
  for (int i = 0; i < 6; ++i) {
    JobQueue::Entry entry;
    entry.id = 100 + i;
    entry.tenant = "heavy";
    entry.min_workers = 2;
    queue.Push(entry);
    entry.id = 200 + i;
    entry.tenant = "light";
    queue.Push(entry);
  }
  std::vector<std::string> order;
  JobQueue::Entry popped;
  while (queue.PopAdmissible(2, &popped)) {
    order.push_back(popped.tenant);
    queue.ChargeUsage(popped.tenant, 2.0);
  }
  ASSERT_EQ(order.size(), 12u);
  // Weight 2:1 admission interleaves roughly 2 heavy per light throughout.
  int heavy_in_first_half = 0;
  for (size_t i = 0; i < 6; ++i) {
    heavy_in_first_half += order[i] == "heavy" ? 1 : 0;
  }
  EXPECT_EQ(heavy_in_first_half, 4);
  EXPECT_DOUBLE_EQ(queue.usage("heavy"), 12.0);
  EXPECT_DOUBLE_EQ(queue.usage("light"), 12.0);
}

TEST(JobQueueTest, PriorityThenFifoWithinTenant) {
  JobQueue queue;
  for (int i = 0; i < 3; ++i) {
    JobQueue::Entry entry;
    entry.id = i;
    entry.tenant = "t";
    entry.priority = i == 1 ? 5 : 0;
    entry.min_workers = 1;
    queue.Push(entry);
  }
  JobQueue::Entry popped;
  ASSERT_TRUE(queue.PopAdmissible(8, &popped));
  EXPECT_EQ(popped.id, 1);  // highest priority
  ASSERT_TRUE(queue.PopAdmissible(8, &popped));
  EXPECT_EQ(popped.id, 0);  // FIFO among equals
  ASSERT_TRUE(queue.PopAdmissible(8, &popped));
  EXPECT_EQ(popped.id, 2);
}

TEST(JobQueueTest, BigJobDoesNotBlockOtherTenants) {
  JobQueue queue;
  JobQueue::Entry big;
  big.id = 1;
  big.tenant = "a";
  big.min_workers = 8;
  queue.Push(big);
  JobQueue::Entry small;
  small.id = 2;
  small.tenant = "b";
  small.min_workers = 2;
  queue.Push(small);
  JobQueue::Entry popped;
  ASSERT_TRUE(queue.PopAdmissible(2, &popped));
  EXPECT_EQ(popped.id, 2);
  EXPECT_FALSE(queue.PopAdmissible(2, &popped));
  ASSERT_TRUE(queue.PopAdmissible(8, &popped));
  EXPECT_EQ(popped.id, 1);
}

TEST(ServiceTest, RunsJobsToCompletionWithIsolatedMetrics) {
  ServiceOptions options;
  options.pool_size = 4;
  TrainingService service(options);
  int64_t first = 0;
  int64_t second = 0;
  ASSERT_TRUE(service.Submit(SmallThreadedJob("t"), &first).ok());
  JobSpec sim = OneWorkerPsJob(0.0, 8);
  sim.engine = EngineKind::kSim;
  sim.config.run.num_workers = 4;
  ASSERT_TRUE(service.Submit(sim, &second).ok());
  service.Drain();

  JobStatus status = MustInspect(&service, first);
  EXPECT_EQ(status.state, JobState::kCompleted);
  EXPECT_EQ(status.leased_workers, 2);
  EXPECT_GT(status.sync_rounds, 0u);
  EXPECT_GE(status.queue_delay_seconds, 0.0);
  status = MustInspect(&service, second);
  EXPECT_EQ(status.state, JobState::kCompleted);
  EXPECT_EQ(status.engine, EngineKind::kSim);

  // Per-job metric namespaces, plus service-level scheduler metrics.
  const MetricsSnapshot snapshot = service.Snapshot();
  EXPECT_GT(snapshot.counter("job.1.worker.0.iterations"), 0.0);
  EXPECT_GT(snapshot.counter("job.2.worker.0.iterations"), 0.0);
  EXPECT_EQ(snapshot.counter("service.jobs_submitted"), 2.0);
  EXPECT_EQ(snapshot.counter("service.jobs_completed"), 2.0);
  EXPECT_GE(snapshot.gauge("service.pool.utilization"), 0.0);
  EXPECT_EQ(snapshot.gauge("service.pool.size"), 4.0);
}

TEST(ServiceTest, FairShareSkewsAdmissionTowardWeightedTenant) {
  ServiceOptions options;
  options.pool_size = 2;  // one 2-worker job at a time: serial admissions
  options.tenant_weights["heavy"] = 2.0;
  options.tenant_weights["light"] = 1.0;
  TrainingService service(options);
  std::vector<int64_t> heavy_ids;
  std::vector<int64_t> light_ids;
  // Mixed priorities inside each tenant; fair share operates across them.
  for (int i = 0; i < 12; ++i) {
    int64_t id = 0;
    ASSERT_TRUE(
        service.Submit(SmallThreadedJob("heavy", i % 3), &id).ok());
    heavy_ids.push_back(id);
    ASSERT_TRUE(
        service.Submit(SmallThreadedJob("light", (i + 1) % 3), &id).ok());
    light_ids.push_back(id);
  }
  service.Drain();

  // Everyone eventually ran...
  std::vector<std::pair<double, std::string>> starts;
  for (int64_t id : heavy_ids) {
    const JobStatus status = MustInspect(&service, id);
    EXPECT_EQ(status.state, JobState::kCompleted);
    starts.emplace_back(status.start_seconds, "heavy");
  }
  for (int64_t id : light_ids) {
    const JobStatus status = MustInspect(&service, id);
    EXPECT_EQ(status.state, JobState::kCompleted);
    starts.emplace_back(status.start_seconds, "light");
  }
  // ...but while both tenants were contending, the weight-2 tenant was
  // admitted about twice as often: among the first 9 admissions it held a
  // 2:1 majority (allow one admission of slack for scheduling noise).
  std::sort(starts.begin(), starts.end());
  int heavy_early = 0;
  for (size_t i = 0; i < 9; ++i) {
    heavy_early += starts[i].second == "heavy" ? 1 : 0;
  }
  EXPECT_GE(heavy_early, 5);
  EXPECT_LE(heavy_early, 7);
  // Usage accounting saw every lease.
  EXPECT_DOUBLE_EQ(service.TenantUsage("heavy"), 24.0);
  EXPECT_DOUBLE_EQ(service.TenantUsage("light"), 24.0);
  const MetricsSnapshot snapshot = service.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.counter("service.tenant.heavy.leases"), 24.0);
  EXPECT_DOUBLE_EQ(snapshot.counter("service.tenant.light.leases"), 24.0);
}

TEST(ServiceTest, CancelMidGroupDrainsAndReclaimsWorkers) {
  ServiceOptions options;
  options.pool_size = 2;
  options.cancel_grace_seconds = 5.0;  // cooperative drain must not need it
  TrainingService service(options);
  JobSpec slow = SmallThreadedJob("t");
  slow.config.run.iterations_per_worker = 100000;
  slow.config.run.worker_delay_seconds = {0.001, 0.001};
  int64_t id = 0;
  ASSERT_TRUE(service.Submit(slow, &id).ok());
  WaitForState(&service, id, JobState::kRunning);
  ASSERT_TRUE(service.Cancel(id).ok());
  WaitForState(&service, id, JobState::kCancelled);
  // Far from the budget: this really was a mid-run drain.
  const MetricsSnapshot snapshot = service.Snapshot();
  EXPECT_LT(snapshot.counter("job.1.worker.0.iterations"), 100000.0);

  // The lease came home: the pool is clean and the next job runs fine.
  EXPECT_EQ(service.pool().free_slots(), 2);
  int64_t next = 0;
  ASSERT_TRUE(service.Submit(SmallThreadedJob("t"), &next).ok());
  service.Drain();
  EXPECT_EQ(MustInspect(&service, next).state, JobState::kCompleted);
  EXPECT_TRUE(service.Cancel(id).ok());  // idempotent on terminal jobs
}

TEST(ServiceTest, CancelQueuedJobNeverRuns) {
  ServiceOptions options;
  options.pool_size = 2;
  TrainingService service(options);
  JobSpec blocker = SmallThreadedJob("t");
  blocker.config.run.iterations_per_worker = 200;
  blocker.config.run.worker_delay_seconds = {0.001, 0.001};
  int64_t blocker_id = 0;
  ASSERT_TRUE(service.Submit(blocker, &blocker_id).ok());
  WaitForState(&service, blocker_id, JobState::kRunning);
  int64_t queued = 0;
  ASSERT_TRUE(service.Submit(SmallThreadedJob("t"), &queued).ok());
  ASSERT_TRUE(service.Cancel(queued).ok());
  EXPECT_EQ(MustInspect(&service, queued).state, JobState::kCancelled);
  service.Drain();
  EXPECT_EQ(MustInspect(&service, queued).leased_workers, 0);
  EXPECT_EQ(MustInspect(&service, blocker_id).state, JobState::kCompleted);
}

TEST(ServiceTest, MonitorEvictsStalledRun) {
  ServiceOptions options;
  options.pool_size = 2;
  options.lease_seconds = 0.03;
  options.missed_threshold = 5;  // 150 ms eviction horizon
  TrainingService service(options);
  // Both workers sleep 0.5 s per iteration: the progress tick stalls far
  // past the horizon and the liveness monitor must abort the run.
  JobSpec stalled = SmallThreadedJob("t");
  stalled.config.run.iterations_per_worker = 3;
  stalled.config.run.worker_delay_seconds = {0.5, 0.5};
  int64_t id = 0;
  ASSERT_TRUE(service.Submit(stalled, &id).ok());
  WaitForState(&service, id, JobState::kEvicted);
  EXPECT_EQ(service.pool().free_slots(), 2);
  EXPECT_DOUBLE_EQ(service.Snapshot().counter("service.jobs_evicted"), 1.0);
  // The pool still serves healthy jobs afterwards.
  int64_t next = 0;
  ASSERT_TRUE(service.Submit(SmallThreadedJob("t"), &next).ok());
  service.Drain();
  EXPECT_EQ(MustInspect(&service, next).state, JobState::kCompleted);
}

TEST(ServiceTest, StashDiagnosticsResetBetweenJobsSharingAWorker) {
  ServiceOptions options;
  options.pool_size = 1;  // jobs A and B share the single agent
  TrainingService service(options);
  int64_t job_a = 0;
  ASSERT_TRUE(service.Submit(OneWorkerPsJob(0.002, 100), &job_a).ok());
  WaitForState(&service, job_a, JobState::kRunning);
  // kRunning is set at lease grant, slightly before the runner hands the
  // task to the pool agent. Wait until the agent actually picked the task
  // up (the slot turns busy, which happens after it attached job A's
  // metrics scope) so the cancel note below is stashed under A's scope.
  // (BusyFraction is time-averaged; the first nonzero reading marks the
  // single slot turning busy.)
  for (int i = 0; i < 2000 && service.pool().BusyFraction() == 0.0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GT(service.pool().BusyFraction(), 0.0);
  // Cancelling sends a kKindCancelNote to the leased slot. The agent never
  // selects that kind, so the note is stashed at the next task pickup —
  // while job A's metrics scope is still attached.
  ASSERT_TRUE(service.Cancel(job_a).ok());
  service.Drain();
  int64_t job_b = 0;
  ASSERT_TRUE(service.Submit(OneWorkerPsJob(0.0, 4), &job_b).ok());
  service.Drain();
  EXPECT_EQ(MustInspect(&service, job_b).state, JobState::kCompleted);

  const MetricsSnapshot snapshot = service.Snapshot();
  const std::string a = "job." + std::to_string(job_a) + ".";
  const std::string b = "job." + std::to_string(job_b) + ".";
  // The stray note was charged to job A: its scoped high-water grew and the
  // purge before job B's attach was counted against A's scope.
  EXPECT_GE(snapshot.gauge(a + "pool.0.stash_high_water"), 1.0);
  EXPECT_GE(snapshot.counter(a + "transport.stash_purged"), 1.0);
  // Job B starts with clean diagnostics: without ResetDiagnostics between
  // jobs, A's high-water would be re-published into B's gauges at attach.
  EXPECT_DOUBLE_EQ(snapshot.gauge(b + "pool.0.stash_high_water"), 0.0);
  EXPECT_DOUBLE_EQ(snapshot.counter(b + "transport.stash_purged"), 0.0);
}

TEST(ServiceTest, SubmitValidatesSpecs) {
  ServiceOptions options;
  options.pool_size = 2;
  TrainingService service(options);
  int64_t id = 0;
  JobSpec spec = SmallThreadedJob("t");
  spec.min_workers = 3;  // exceeds the pool
  EXPECT_FALSE(service.Submit(spec, &id).ok());
  spec = SmallThreadedJob("t");
  spec.min_workers = 1;  // P-Reduce needs 2
  EXPECT_FALSE(service.Submit(spec, &id).ok());
  spec = SmallThreadedJob("t");
  spec.max_workers = 1;  // max < min
  EXPECT_FALSE(service.Submit(spec, &id).ok());
  JobStatus status;
  EXPECT_FALSE(service.Inspect(404, &status).ok());
  EXPECT_FALSE(service.Cancel(404).ok());
}

TEST(ServiceHandleTest, JsonControlSurface) {
  ServiceOptions options;
  options.pool_size = 2;
  TrainingService service(options);
  ServiceHandle handle(&service);

  const std::string reply =
      handle.Submit(JobSpecToJson(SmallThreadedJob("acme")));
  JsonValue parsed;
  ASSERT_TRUE(ParseJson(reply, &parsed).ok()) << reply;
  ASSERT_NE(parsed.Find("ok"), nullptr);
  EXPECT_TRUE(parsed.Find("ok")->bool_value());
  const int64_t id =
      static_cast<int64_t>(parsed.Find("job")->number_value());

  const std::string rejected = handle.Submit("{\"nope\": 1}");
  ASSERT_TRUE(ParseJson(rejected, &parsed).ok());
  EXPECT_FALSE(parsed.Find("ok")->bool_value());
  EXPECT_NE(parsed.Find("error"), nullptr);

  const std::string drained = handle.Drain();
  ASSERT_TRUE(ParseJson(drained, &parsed).ok());
  const JsonValue* jobs = parsed.Find("jobs");
  ASSERT_NE(jobs, nullptr);
  ASSERT_EQ(jobs->items().size(), 1u);
  EXPECT_EQ(jobs->items()[0].Find("state")->string_value(), "completed");

  const std::string inspected = handle.Inspect(id);
  ASSERT_TRUE(ParseJson(inspected, &parsed).ok());
  EXPECT_EQ(parsed.Find("job")->Find("tenant")->string_value(), "acme");
  EXPECT_EQ(parsed.Find("job")->Find("strategy")->string_value(), "CON");

  ASSERT_TRUE(ParseJson(handle.Cancel(id), &parsed).ok());
  EXPECT_TRUE(parsed.Find("ok")->bool_value());  // idempotent
  ASSERT_TRUE(ParseJson(handle.Inspect(999), &parsed).ok());
  EXPECT_FALSE(parsed.Find("ok")->bool_value());

  JsonValue metrics;
  ASSERT_TRUE(ParseJson(handle.Metrics(), &metrics).ok());
  ASSERT_NE(metrics.Find("counters"), nullptr);
}

TEST(WorkerPoolTest, GrowAndShrinkLease) {
  WorkerPool pool(4);
  WorkerPool::Lease lease;
  ASSERT_TRUE(pool.TryLease(1, 2, 2, &lease));
  EXPECT_EQ(lease.size(), 2);
  EXPECT_EQ(pool.free_slots(), 2);

  // Grow claims the lowest free slot ids, appended to the lease tail.
  const std::vector<int> before = lease.slots;
  EXPECT_EQ(pool.GrowLease(&lease, 3), 2);  // only 2 were free
  EXPECT_EQ(lease.size(), 4);
  EXPECT_EQ(pool.free_slots(), 0);
  std::vector<int> grown(lease.slots.begin() + 2, lease.slots.end());
  EXPECT_TRUE(std::is_sorted(grown.begin(), grown.end()));
  EXPECT_EQ(std::vector<int>(lease.slots.begin(), lease.slots.begin() + 2),
            before);

  // Shrink releases from the tail (most recently acquired first) and
  // never drops below keep_min.
  const std::vector<int> released = pool.ShrinkLease(&lease, 3, 2);
  EXPECT_EQ(released, (std::vector<int>{grown[1], grown[0]}));
  EXPECT_EQ(lease.size(), 2);
  EXPECT_EQ(pool.free_slots(), 2);
  EXPECT_EQ(lease.slots, before);

  // Released slots are leasable again.
  WorkerPool::Lease second;
  ASSERT_TRUE(pool.TryLease(2, 2, 2, &second));
  pool.Release(second);
  pool.Release(lease);
  EXPECT_EQ(pool.free_slots(), 4);
}

TEST(ServiceTest, ManyConcurrentJobsOverSmallPool) {
  ServiceOptions options;
  options.pool_size = 4;
  TrainingService service(options);
  std::vector<int64_t> ids;
  for (int i = 0; i < 30; ++i) {
    JobSpec spec = SmallThreadedJob(i % 2 == 0 ? "a" : "b", i % 3);
    spec.max_workers = 4;
    spec.data_shard = i;
    int64_t id = 0;
    ASSERT_TRUE(service.Submit(spec, &id).ok());
    ids.push_back(id);
  }
  service.Drain();
  for (int64_t id : ids) {
    EXPECT_EQ(MustInspect(&service, id).state, JobState::kCompleted)
        << "job " << id;
  }
  EXPECT_EQ(service.pool().free_slots(), 4);
  EXPECT_DOUBLE_EQ(service.Snapshot().counter("service.jobs_completed"),
                   30.0);
}

}  // namespace
}  // namespace pr
