#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/eigen.h"

namespace pr {
namespace {

TEST(EigenTest, DiagonalMatrix) {
  std::vector<double> a = {3, 0, 0, 0, 1, 0, 0, 0, -2};
  auto eig = SymmetricEigenvalues(a, 3);
  ASSERT_EQ(eig.size(), 3u);
  EXPECT_NEAR(eig[0], 3.0, 1e-10);
  EXPECT_NEAR(eig[1], 1.0, 1e-10);
  EXPECT_NEAR(eig[2], -2.0, 1e-10);
}

TEST(EigenTest, TwoByTwoKnown) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  std::vector<double> a = {2, 1, 1, 2};
  auto eig = SymmetricEigenvalues(a, 2);
  EXPECT_NEAR(eig[0], 3.0, 1e-10);
  EXPECT_NEAR(eig[1], 1.0, 1e-10);
}

TEST(EigenTest, RankOneAllOnes) {
  // J/n has eigenvalues {1, 0, ..., 0}.
  const size_t n = 5;
  std::vector<double> a(n * n, 1.0 / n);
  auto eig = SymmetricEigenvalues(a, n);
  EXPECT_NEAR(eig[0], 1.0, 1e-10);
  for (size_t i = 1; i < n; ++i) EXPECT_NEAR(eig[i], 0.0, 1e-10);
}

TEST(EigenTest, TraceAndFrobeniusPreserved) {
  Rng rng(77);
  const size_t n = 8;
  std::vector<double> a(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double v = rng.Normal(0.0, 1.0);
      a[i * n + j] = v;
      a[j * n + i] = v;
    }
  }
  double trace = 0.0, frob = 0.0;
  for (size_t i = 0; i < n; ++i) trace += a[i * n + i];
  for (double v : a) frob += v * v;

  auto eig = SymmetricEigenvalues(a, n);
  double eig_sum = 0.0, eig_sq = 0.0;
  for (double v : eig) {
    eig_sum += v;
    eig_sq += v * v;
  }
  EXPECT_NEAR(eig_sum, trace, 1e-8);
  EXPECT_NEAR(eig_sq, frob, 1e-8);
}

TEST(EigenTest, EigenvaluesSortedDescending) {
  Rng rng(78);
  const size_t n = 6;
  std::vector<double> a(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double v = rng.Uniform(-1.0, 1.0);
      a[i * n + j] = v;
      a[j * n + i] = v;
    }
  }
  auto eig = SymmetricEigenvalues(a, n);
  for (size_t i = 1; i < n; ++i) EXPECT_GE(eig[i - 1], eig[i]);
}

TEST(EigenTest, SecondLargestMagnitudeDoublyStochastic) {
  // E[W] = 0.5 I + (1/6) J for N=3, P=2 homogeneous (paper Fig. 4a):
  // eigenvalues {1, 0.5, 0.5} -> rho = 0.5.
  std::vector<double> a = {2.0 / 3, 1.0 / 6, 1.0 / 6,
                           1.0 / 6, 2.0 / 3, 1.0 / 6,
                           1.0 / 6, 1.0 / 6, 2.0 / 3};
  EXPECT_NEAR(SecondLargestEigenvalueMagnitude(a, 3), 0.5, 1e-10);
}

TEST(EigenTest, SecondLargestPicksNegativeTail) {
  // [[0, 1], [1, 0]] has eigenvalues {1, -1}: magnitude of lambda_n wins.
  std::vector<double> a = {0, 1, 1, 0};
  EXPECT_NEAR(SecondLargestEigenvalueMagnitude(a, 2), 1.0, 1e-10);
}

}  // namespace
}  // namespace pr
