#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "comm/transport.h"
#include "fault/failure_detector.h"
#include "fault/fault_plan.h"
#include "fault/faulty_transport.h"

namespace pr {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan: deterministic, seed-driven decisions.
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, DisabledByDefault) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_FALSE(plan.has_message_faults());
  EXPECT_FALSE(plan.RollDrop(0, 1, 0));
}

TEST(FaultPlanTest, WorkerEventsEnableWithoutMessageFaults) {
  FaultPlan plan;
  WorkerFaultEvent e;
  e.worker = 2;
  e.kind = WorkerFaultEvent::Kind::kCrash;
  plan.worker_events.push_back(e);
  EXPECT_TRUE(plan.enabled());
  EXPECT_FALSE(plan.has_message_faults());
}

TEST(FaultPlanTest, RollsAreDeterministicInSeed) {
  FaultPlan a;
  a.seed = 42;
  a.default_edge.drop_prob = 0.3;
  a.default_edge.dup_prob = 0.2;
  a.default_edge.delay_prob = 0.1;
  FaultPlan b = a;
  for (int from = 0; from < 4; ++from) {
    for (int to = 0; to < 4; ++to) {
      for (uint64_t seq = 0; seq < 64; ++seq) {
        EXPECT_EQ(a.RollDrop(from, to, seq), b.RollDrop(from, to, seq));
        EXPECT_EQ(a.RollDup(from, to, seq), b.RollDup(from, to, seq));
        EXPECT_EQ(a.RollDelay(from, to, seq), b.RollDelay(from, to, seq));
      }
    }
  }
}

TEST(FaultPlanTest, DifferentSeedsGiveDifferentDecisions) {
  FaultPlan a;
  a.seed = 1;
  a.default_edge.drop_prob = 0.5;
  FaultPlan b = a;
  b.seed = 2;
  int differing = 0;
  for (uint64_t seq = 0; seq < 256; ++seq) {
    if (a.RollDrop(0, 1, seq) != b.RollDrop(0, 1, seq)) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultPlanTest, DropRateTracksProbability) {
  FaultPlan plan;
  plan.seed = 7;
  plan.default_edge.drop_prob = 0.25;
  int drops = 0;
  const int trials = 4000;
  for (uint64_t seq = 0; seq < trials; ++seq) {
    if (plan.RollDrop(1, 2, seq)) ++drops;
  }
  const double rate = static_cast<double>(drops) / trials;
  EXPECT_GT(rate, 0.18);
  EXPECT_LT(rate, 0.32);
}

TEST(FaultPlanTest, EdgeOverridesBeatTheDefault) {
  FaultPlan plan;
  plan.seed = 3;
  plan.default_edge.drop_prob = 0.0;
  EdgeFaultSpec lossy;
  lossy.drop_prob = 1.0;
  plan.edges[{0, 1}] = lossy;
  EXPECT_TRUE(plan.has_message_faults());
  EXPECT_TRUE(plan.RollDrop(0, 1, 0));
  EXPECT_FALSE(plan.RollDrop(1, 0, 0));  // reverse edge uses the default
}

TEST(FaultPlanTest, LinkDelaysAreSparseAndDirectional) {
  FaultPlan plan;
  EXPECT_FALSE(plan.has_link_delays());
  plan.link_delay_seconds[{0, 3}] = 0.02;
  EXPECT_TRUE(plan.has_link_delays());
  // Link delays are message faults: both engines must take the faulty path.
  EXPECT_TRUE(plan.has_message_faults());
  EXPECT_TRUE(plan.enabled());
  EXPECT_DOUBLE_EQ(plan.LinkDelay(0, 3), 0.02);
  EXPECT_DOUBLE_EQ(plan.LinkDelay(3, 0), 0.0);  // directional
  EXPECT_DOUBLE_EQ(plan.LinkDelay(1, 2), 0.0);  // unlisted edge
}

TEST(FaultPlanTest, ZeroLinkDelayEntryIsInert) {
  FaultPlan plan;
  plan.link_delay_seconds[{0, 1}] = 0.0;
  EXPECT_FALSE(plan.has_link_delays());
  EXPECT_FALSE(plan.has_message_faults());
  EXPECT_FALSE(plan.enabled());
}

TEST(FaultPlanTest, LinkDelayIsDeterministicNotRolled) {
  // Unlike delay_prob, the latency matrix never consults the seed: every
  // message on a listed edge pays exactly the listed delay.
  FaultPlan a;
  a.seed = 7;
  a.link_delay_seconds[{1, 2}] = 0.5;
  FaultPlan b = a;
  b.seed = 99;
  for (uint64_t seq = 0; seq < 32; ++seq) {
    EXPECT_DOUBLE_EQ(a.LinkDelay(1, 2), b.LinkDelay(1, 2));
    EXPECT_FALSE(a.RollDelay(1, 2, seq));  // no probabilistic component
  }
}

TEST(FaultPlanTest, ChaosPlanShape) {
  FaultPlan plan = MakeChaosPlan(/*seed=*/11, /*crash_worker=*/3,
                                 /*crash_after_iterations=*/4,
                                 /*drop_prob=*/0.01);
  EXPECT_TRUE(plan.enabled());
  EXPECT_TRUE(plan.has_message_faults());
  ASSERT_EQ(plan.worker_events.size(), 1u);
  EXPECT_EQ(plan.worker_events[0].worker, 3);
  EXPECT_EQ(plan.worker_events[0].kind, WorkerFaultEvent::Kind::kCrash);
  EXPECT_TRUE(plan.worker_events[0].in_group);
}

// ---------------------------------------------------------------------------
// FaultyTransport: deterministic injection over a real fabric.
// ---------------------------------------------------------------------------

Envelope Msg(NodeId from, int kind) {
  Envelope env;
  env.from = from;
  env.kind = kind;
  return env;
}

TEST(FaultyTransportTest, PassThroughWithInactivePlan) {
  InProcTransport inner(2);
  FaultyTransport faulty(&inner, FaultPlan{});
  ASSERT_TRUE(faulty.Send(1, Msg(0, 7)).ok());
  std::optional<Envelope> env = faulty.Recv(1);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->kind, 7);
  EXPECT_EQ(faulty.injected_drops(), 0u);
  faulty.Shutdown();
}

TEST(FaultyTransportTest, CertainDropSwallowsEverythingSilently) {
  InProcTransport inner(2);
  FaultPlan plan;
  plan.default_edge.drop_prob = 1.0;
  FaultyTransport faulty(&inner, plan);
  for (int i = 0; i < 10; ++i) {
    // A lossy network still acks locally: the sender sees OK.
    ASSERT_TRUE(faulty.Send(1, Msg(0, i)).ok());
  }
  EXPECT_EQ(faulty.injected_drops(), 10u);
  EXPECT_FALSE(faulty.TryRecv(1).has_value());
  faulty.Shutdown();
}

TEST(FaultyTransportTest, CertainDupDeliversTwice) {
  InProcTransport inner(2);
  FaultPlan plan;
  plan.default_edge.dup_prob = 1.0;
  FaultyTransport faulty(&inner, plan);
  ASSERT_TRUE(faulty.Send(1, Msg(0, 42)).ok());
  EXPECT_EQ(faulty.injected_dups(), 1u);
  std::optional<Envelope> first = faulty.Recv(1);
  std::optional<Envelope> second = faulty.Recv(1);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->kind, 42);
  EXPECT_EQ(second->kind, 42);
  faulty.Shutdown();
}

TEST(FaultyTransportTest, DelayedMessageArrivesLate) {
  InProcTransport inner(2);
  FaultPlan plan;
  plan.default_edge.delay_prob = 1.0;
  plan.default_edge.delay_seconds = 0.05;
  FaultyTransport faulty(&inner, plan);
  ASSERT_TRUE(faulty.Send(1, Msg(0, 9)).ok());
  EXPECT_EQ(faulty.injected_delays(), 1u);
  // Not there immediately...
  EXPECT_FALSE(faulty.TryRecv(1).has_value());
  // ...but it lands within the delay (bounded blocking wait).
  std::optional<Envelope> env = faulty.RecvFor(1, 2.0);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->kind, 9);
  faulty.Shutdown();
}

TEST(FaultyTransportTest, ShutdownFlushesDelayedMessages) {
  InProcTransport inner(2);
  FaultPlan plan;
  plan.default_edge.delay_prob = 1.0;
  plan.default_edge.delay_seconds = 30.0;  // far beyond the test's patience
  FaultyTransport faulty(&inner, plan);
  ASSERT_TRUE(faulty.Send(1, Msg(0, 5)).ok());
  // Delayed messages are late, not lost: Shutdown flushes them into the
  // mailboxes before closing, so drained receivers still observe them.
  faulty.Shutdown();
  std::optional<Envelope> env = faulty.Recv(1);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->kind, 5);
}

TEST(FaultyTransportTest, LinkDelayHoldsEveryMessageOnTheEdge) {
  InProcTransport inner(2);
  FaultPlan plan;
  plan.link_delay_seconds[{0, 1}] = 0.05;
  FaultyTransport faulty(&inner, plan);
  ASSERT_TRUE(faulty.Send(1, Msg(0, 9)).ok());
  ASSERT_TRUE(faulty.Send(1, Msg(0, 10)).ok());
  // Deterministic: both messages are held, and both count as injections.
  EXPECT_EQ(faulty.injected_delays(), 2u);
  EXPECT_FALSE(faulty.TryRecv(1).has_value());
  std::optional<Envelope> first = faulty.RecvFor(1, 2.0);
  std::optional<Envelope> second = faulty.RecvFor(1, 2.0);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->kind, 9);
  EXPECT_EQ(second->kind, 10);
  faulty.Shutdown();
}

TEST(FaultyTransportTest, LinkDelayLeavesOtherEdgesAlone) {
  InProcTransport inner(3);
  FaultPlan plan;
  plan.link_delay_seconds[{0, 2}] = 30.0;  // only the 0->2 edge is slow
  FaultyTransport faulty(&inner, plan);
  ASSERT_TRUE(faulty.Send(1, Msg(0, 7)).ok());
  // The 0->1 edge is unlisted: delivery is immediate.
  std::optional<Envelope> env = faulty.TryRecv(1);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->kind, 7);
  EXPECT_EQ(faulty.injected_delays(), 0u);
  faulty.Shutdown();
}

TEST(FaultyTransportTest, LinkDelayStacksWithRolledDelay) {
  InProcTransport inner(2);
  FaultPlan plan;
  plan.default_edge.delay_prob = 1.0;
  plan.default_edge.delay_seconds = 0.02;
  plan.link_delay_seconds[{0, 1}] = 0.02;
  FaultyTransport faulty(&inner, plan);
  ASSERT_TRUE(faulty.Send(1, Msg(0, 4)).ok());
  // One message, one injected-delay count — the two sources stack into a
  // single hold instead of double-counting.
  EXPECT_EQ(faulty.injected_delays(), 1u);
  std::optional<Envelope> env = faulty.RecvFor(1, 2.0);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->kind, 4);
  faulty.Shutdown();
}

TEST(FaultyTransportTest, DupTwinsShareOnePayloadAllocation) {
  InProcTransport inner(2);
  FaultPlan plan;
  plan.default_edge.dup_prob = 1.0;
  FaultyTransport faulty(&inner, plan);
  Envelope env = Msg(0, 42);
  env.payload = Buffer::FromVector({1.0f, 2.0f, 3.0f});
  ASSERT_TRUE(faulty.Send(1, std::move(env)).ok());
  std::optional<Envelope> first = faulty.Recv(1);
  std::optional<Envelope> second = faulty.Recv(1);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  // The duplication is a refcount bump, not a clone: both deliveries alias
  // the same allocation.
  EXPECT_EQ(first->payload.data(), second->payload.data());
  EXPECT_TRUE(first->payload.shared());
  faulty.Shutdown();
}

TEST(FaultyTransportTest, DupReceiverMutationDoesNotCorruptTwin) {
  InProcTransport inner(2);
  FaultPlan plan;
  plan.default_edge.dup_prob = 1.0;
  FaultyTransport faulty(&inner, plan);
  Envelope env = Msg(0, 1);
  env.payload = Buffer::FromVector({5.0f});
  ASSERT_TRUE(faulty.Send(1, std::move(env)).ok());
  std::optional<Envelope> first = faulty.Recv(1);
  std::optional<Envelope> second = faulty.Recv(1);
  ASSERT_TRUE(first.has_value() && second.has_value());
  // Copy-on-write: a receiver accumulating into the duplicate's payload
  // clones it first, so the twin still reads the original bytes.
  first->payload.mutable_data()[0] = 99.0f;
  EXPECT_EQ(second->payload[0], 5.0f);
  faulty.Shutdown();
}

TEST(FaultyTransportTest, SenderMutationAfterSendDoesNotReachDelayed) {
  InProcTransport inner(2);
  FaultPlan plan;
  plan.default_edge.delay_prob = 1.0;
  plan.default_edge.delay_seconds = 30.0;
  FaultyTransport faulty(&inner, plan);
  Buffer payload = Buffer::FromVector({1.0f});
  Envelope env = Msg(0, 3);
  env.payload = payload;  // sender keeps a handle, as collectives do
  ASSERT_TRUE(faulty.Send(1, std::move(env)).ok());
  // While the message sits in the delay queue the sender reuses its buffer;
  // COW isolates the queued copy from the mutation.
  payload.mutable_data()[0] = -1.0f;
  faulty.Shutdown();  // flushes the delayed message
  std::optional<Envelope> delivered = faulty.Recv(1);
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(delivered->payload[0], 1.0f);
}

TEST(FaultyTransportTest, InjectionIsDeterministicAcrossRuns) {
  auto run = [] {
    InProcTransport inner(3);
    FaultPlan plan;
    plan.seed = 99;
    plan.default_edge.drop_prob = 0.3;
    FaultyTransport faulty(&inner, plan);
    std::vector<int> delivered;
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(faulty.Send(1, Msg(0, i)).ok());
    }
    while (std::optional<Envelope> env = faulty.TryRecv(1)) {
      delivered.push_back(env->kind);
    }
    faulty.Shutdown();
    return delivered;
  };
  EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------------
// FailureDetector: lease expiry, suspension, and resurrection.
// ---------------------------------------------------------------------------

TEST(FailureDetectorTest, SilentWorkerExpiresOnce) {
  FailureDetector det(/*num_workers=*/3, /*lease_seconds=*/1.0,
                      /*missed_threshold=*/2, /*start_now=*/0.0);
  EXPECT_TRUE(det.Expired(1.9).empty());  // within the horizon
  std::vector<int> dead = det.Expired(2.1);
  EXPECT_EQ(dead.size(), 3u);  // nobody ever beat
  EXPECT_TRUE(det.Expired(10.0).empty());  // reported at most once
  EXPECT_FALSE(det.alive(0));
}

TEST(FailureDetectorTest, BeatingKeepsAWorkerAlive) {
  FailureDetector det(2, 1.0, 2, 0.0);
  det.Beat(0, 1.5);
  det.Beat(0, 3.0);
  std::vector<int> dead = det.Expired(3.5);  // worker 1 lapsed at 2.0
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], 1);
  EXPECT_TRUE(det.alive(0));
  EXPECT_EQ(det.last_beat(0), 3.0);
}

TEST(FailureDetectorTest, SuspendedWorkersNeverExpire) {
  FailureDetector det(2, 1.0, 2, 0.0);
  det.Suspend(0);
  std::vector<int> dead = det.Expired(100.0);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], 1);
}

TEST(FailureDetectorTest, BeatsIgnoredWhileSuspendedOrDead) {
  FailureDetector det(1, 1.0, 2, 0.0);
  det.Suspend(0);
  det.Beat(0, 5.0);  // must not half-resurrect the worker
  det.Resume(0, 10.0);
  EXPECT_TRUE(det.alive(0));
  EXPECT_EQ(det.last_beat(0), 10.0);
  // Let it die, then beat: still dead until Resume.
  ASSERT_EQ(det.Expired(20.0).size(), 1u);
  det.Beat(0, 20.1);
  EXPECT_FALSE(det.alive(0));
  det.Resume(0, 21.0);
  EXPECT_TRUE(det.alive(0));
  // Alive again means it can die again.
  ASSERT_EQ(det.Expired(30.0).size(), 1u);
}

TEST(FailureDetectorTest, HorizonIsLeaseTimesThreshold) {
  FailureDetector det(1, 0.25, 2, 0.0);
  EXPECT_DOUBLE_EQ(det.eviction_horizon(), 0.5);
  EXPECT_TRUE(det.Expired(0.49).empty());
  EXPECT_EQ(det.Expired(0.51).size(), 1u);
}


// ---------------------------------------------------------------------------
// Controller-fault plan shapes (failover chaos variants).
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, ControllerCrashPlanShape) {
  FaultPlan plan = MakeControllerCrashPlan(7, 3, 0.0);
  EXPECT_TRUE(plan.enabled());
  EXPECT_TRUE(plan.has_controller_faults());
  // drop_prob 0 means the only fault is the outage itself.
  EXPECT_FALSE(plan.has_message_faults());
  ASSERT_EQ(plan.controller_events.size(), 1u);
  EXPECT_EQ(plan.controller_events[0].after_groups, 3u);
  EXPECT_FALSE(plan.controller_events[0].restart);
  // The permanent-crash plan shortens the give-up valve so tests finish.
  EXPECT_DOUBLE_EQ(plan.max_controller_outage_seconds, 1.0);
}

TEST(FaultPlanTest, ControllerRestartPlanShape) {
  FaultPlan plan = MakeControllerRestartPlan(7, 2, 0.25, 0.0);
  EXPECT_TRUE(plan.enabled());
  EXPECT_TRUE(plan.has_controller_faults());
  ASSERT_EQ(plan.controller_events.size(), 1u);
  EXPECT_EQ(plan.controller_events[0].after_groups, 2u);
  EXPECT_TRUE(plan.controller_events[0].restart);
  EXPECT_DOUBLE_EQ(plan.controller_events[0].down_seconds, 0.25);
  // Workers must keep probing at least as long as the recovery window.
  EXPECT_GT(plan.reregister_window_seconds,
            plan.reregister_backoff_max_seconds);
}

// ---------------------------------------------------------------------------
// Severed endpoints: the transport-level face of a controller crash.
// ---------------------------------------------------------------------------

TEST(FaultyTransportTest, SeveredNodeEatsTraffic) {
  InProcTransport inner(3);
  FaultyTransport faulty(&inner, FaultPlan{});
  faulty.SeverNode(0);
  EXPECT_TRUE(faulty.node_severed(0));
  // The sender still sees OK — a dead endpoint looks like a lossy one.
  ASSERT_TRUE(faulty.Send(0, Msg(1, 4)).ok());
  EXPECT_EQ(faulty.severed_drops(), 1u);
  EXPECT_FALSE(faulty.TryRecv(0).has_value());
  // Other endpoints are unaffected.
  ASSERT_TRUE(faulty.Send(2, Msg(1, 5)).ok());
  std::optional<Envelope> env = faulty.Recv(2);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->kind, 5);
  faulty.Shutdown();
}

TEST(FaultyTransportTest, RestoredNodeReceivesAgain) {
  InProcTransport inner(2);
  FaultyTransport faulty(&inner, FaultPlan{});
  faulty.SeverNode(1);
  ASSERT_TRUE(faulty.Send(1, Msg(0, 1)).ok());
  faulty.RestoreNode(1);
  EXPECT_FALSE(faulty.node_severed(1));
  // The message swallowed during the outage stays lost...
  EXPECT_FALSE(faulty.TryRecv(1).has_value());
  // ...but fresh traffic flows again.
  ASSERT_TRUE(faulty.Send(1, Msg(0, 2)).ok());
  std::optional<Envelope> env = faulty.Recv(1);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->kind, 2);
  EXPECT_EQ(faulty.severed_drops(), 1u);
  faulty.Shutdown();
}

TEST(FaultyTransportTest, SeverDropsDelayedInFlightMessages) {
  InProcTransport inner(2);
  FaultPlan plan;
  plan.default_edge.delay_prob = 1.0;
  plan.default_edge.delay_seconds = 0.05;
  FaultyTransport faulty(&inner, plan);
  ASSERT_TRUE(faulty.Send(1, Msg(0, 8)).ok());
  // Sever while the message sits in the delay queue: the crash must also
  // eat traffic that was already in flight toward the endpoint.
  faulty.SeverNode(1);
  EXPECT_FALSE(faulty.RecvFor(1, 0.5).has_value());
  EXPECT_EQ(faulty.severed_drops(), 1u);
  faulty.Shutdown();
}

// ---------------------------------------------------------------------------
// FailureDetector: re-registration edges around controller recovery.
// ---------------------------------------------------------------------------

TEST(FailureDetectorTest, LeaseExpiryRacingRejoinFavorsTheRejoin) {
  FailureDetector det(1, 1.0, 2, 0.0);
  // The worker rejoins a hair before the sweep that would have killed it:
  // Resume re-anchors the lease, so the sweep sees a fresh beat.
  det.Resume(0, 2.5);
  EXPECT_TRUE(det.Expired(2.6).empty());
  EXPECT_TRUE(det.alive(0));
  // The fresh lease runs its full horizon from the rejoin.
  EXPECT_TRUE(det.Expired(4.4).empty());
  ASSERT_EQ(det.Expired(4.6).size(), 1u);
}

TEST(FailureDetectorTest, DuplicateReregistrationIsIdempotent) {
  FailureDetector det(1, 1.0, 2, 0.0);
  det.Suspend(0);
  // A retried Reregister lands twice (backoff loops do that); the second
  // Resume just re-anchors the lease at the later time.
  det.Resume(0, 1.0);
  det.Resume(0, 1.5);
  EXPECT_TRUE(det.alive(0));
  EXPECT_EQ(det.last_beat(0), 1.5);
  EXPECT_TRUE(det.Expired(2.0).empty());
  ASSERT_EQ(det.Expired(3.6).size(), 1u);
}

TEST(FailureDetectorTest, HeartbeatsFromEvictedWorkerStayIgnored) {
  FailureDetector det(1, 1.0, 2, 0.0);
  det.Suspend(0);
  // Beats from a suspended (evicted) worker never expire it either way:
  // it is off the books until an explicit rejoin.
  for (double t = 0.5; t < 10.0; t += 0.5) det.Beat(0, t);
  EXPECT_FALSE(det.alive(0));
  EXPECT_TRUE(det.Expired(100.0).empty());
  det.Resume(0, 100.0);
  EXPECT_TRUE(det.alive(0));
}

}  // namespace
}  // namespace pr
