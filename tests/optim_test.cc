#include <gtest/gtest.h>

#include "optim/sgd.h"

namespace pr {
namespace {

TEST(SgdTest, PlainStepWithoutMomentumOrDecay) {
  SgdOptions opt;
  opt.learning_rate = 0.5;
  opt.momentum = 0.0;
  opt.weight_decay = 0.0;
  Sgd sgd(2, opt);
  std::vector<float> p = {1.0f, 2.0f};
  float g[2] = {0.2f, -0.4f};
  sgd.Step(g, &p);
  EXPECT_FLOAT_EQ(p[0], 1.0f - 0.5f * 0.2f);
  EXPECT_FLOAT_EQ(p[1], 2.0f + 0.5f * 0.4f);
}

TEST(SgdTest, MomentumAccumulatesVelocity) {
  SgdOptions opt;
  opt.learning_rate = 1.0;
  opt.momentum = 0.9;
  opt.weight_decay = 0.0;
  Sgd sgd(1, opt);
  std::vector<float> p = {0.0f};
  float g[1] = {1.0f};
  sgd.Step(g, &p);  // v = 1, p = -1
  EXPECT_FLOAT_EQ(p[0], -1.0f);
  sgd.Step(g, &p);  // v = 1.9, p = -2.9
  EXPECT_FLOAT_EQ(p[0], -2.9f);
  sgd.Step(g, &p);  // v = 2.71, p = -5.61
  EXPECT_NEAR(p[0], -5.61f, 1e-5);
}

TEST(SgdTest, WeightDecayPullsTowardZero) {
  SgdOptions opt;
  opt.learning_rate = 0.1;
  opt.momentum = 0.0;
  opt.weight_decay = 0.5;
  Sgd sgd(1, opt);
  std::vector<float> p = {2.0f};
  float g[1] = {0.0f};
  sgd.Step(g, &p);  // v = 0.5 * 2 = 1, p = 2 - 0.1 = 1.9
  EXPECT_FLOAT_EQ(p[0], 1.9f);
}

TEST(SgdTest, LrScaleDampsStep) {
  SgdOptions opt;
  opt.learning_rate = 1.0;
  opt.momentum = 0.0;
  opt.weight_decay = 0.0;
  Sgd sgd(1, opt);
  std::vector<float> p = {0.0f};
  float g[1] = {1.0f};
  sgd.Step(g, &p, /*lr_scale=*/0.25);
  EXPECT_FLOAT_EQ(p[0], -0.25f);
}

TEST(SgdTest, ResetStateClearsVelocity) {
  SgdOptions opt;
  opt.learning_rate = 1.0;
  opt.momentum = 0.9;
  opt.weight_decay = 0.0;
  Sgd sgd(1, opt);
  std::vector<float> p = {0.0f};
  float g[1] = {1.0f};
  sgd.Step(g, &p);
  sgd.ResetState();
  p[0] = 0.0f;
  sgd.Step(g, &p);
  EXPECT_FLOAT_EQ(p[0], -1.0f);  // no leftover velocity
}

TEST(SgdTest, SetLearningRateTakesEffect) {
  SgdOptions opt;
  opt.learning_rate = 1.0;
  opt.momentum = 0.0;
  opt.weight_decay = 0.0;
  Sgd sgd(1, opt);
  sgd.set_learning_rate(0.1);
  std::vector<float> p = {0.0f};
  float g[1] = {1.0f};
  sgd.Step(g, &p);
  EXPECT_FLOAT_EQ(p[0], -0.1f);
}

TEST(StepDecayTest, DecaysAtBoundaries) {
  StepDecaySchedule sched(0.1, 0.1, 100);
  EXPECT_DOUBLE_EQ(sched.LearningRateAt(0), 0.1);
  EXPECT_DOUBLE_EQ(sched.LearningRateAt(99), 0.1);
  EXPECT_NEAR(sched.LearningRateAt(100), 0.01, 1e-12);
  EXPECT_NEAR(sched.LearningRateAt(250), 0.001, 1e-12);
}

TEST(StalenessLrScaleTest, InverseDecay) {
  EXPECT_DOUBLE_EQ(StalenessLrScale(0), 1.0);
  EXPECT_DOUBLE_EQ(StalenessLrScale(1), 0.5);
  EXPECT_DOUBLE_EQ(StalenessLrScale(4), 0.2);
}

TEST(StalenessLrScaleTest, MonotoneNonIncreasing) {
  double prev = 2.0;
  for (size_t s = 0; s < 50; ++s) {
    double cur = StalenessLrScale(s);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(ExcessStalenessLrScaleTest, NoDampingWithinExpectedAsynchrony) {
  // In an N-worker async PS every push is ~N-1 versions stale; that level
  // must not be penalized.
  EXPECT_DOUBLE_EQ(ExcessStalenessLrScale(0, 8), 1.0);
  EXPECT_DOUBLE_EQ(ExcessStalenessLrScale(7, 8), 1.0);
}

TEST(ExcessStalenessLrScaleTest, DampsDeepStalenessProportionally) {
  EXPECT_DOUBLE_EQ(ExcessStalenessLrScale(15, 8), 0.5);
  EXPECT_DOUBLE_EQ(ExcessStalenessLrScale(31, 8), 0.25);
}

TEST(ExcessStalenessLrScaleTest, MonotoneInStaleness) {
  double prev = 2.0;
  for (size_t s = 0; s < 100; s += 5) {
    double cur = ExcessStalenessLrScale(s, 8);
    EXPECT_LE(cur, prev);
    prev = cur;
  }
}

}  // namespace
}  // namespace pr
