#include <gtest/gtest.h>

#include <numeric>

#include "runtime/threaded_ps.h"

namespace pr {
namespace {

ThreadedPsOptions SmallOptions() {
  ThreadedPsOptions opt;
  opt.num_workers = 4;
  opt.iterations_per_worker = 30;
  opt.hidden = {16};
  opt.batch_size = 16;
  opt.dataset.num_train = 1024;
  opt.dataset.num_test = 512;
  opt.dataset.dim = 16;
  opt.dataset.num_classes = 4;
  opt.dataset.separation = 3.0;
  opt.seed = 5;
  return opt;
}

TEST(ThreadedPsTest, BspCompletesAndLearns) {
  ThreadedPsOptions opt = SmallOptions();
  opt.mode = PsMode::kBsp;
  ThreadedPsResult result = RunThreadedPs(opt);
  // BSP: one version per round, iterations_per_worker rounds.
  EXPECT_EQ(result.versions, opt.iterations_per_worker);
  EXPECT_GT(result.final_accuracy, 0.6);
}

TEST(ThreadedPsTest, BspHasZeroStaleness) {
  ThreadedPsOptions opt = SmallOptions();
  opt.mode = PsMode::kBsp;
  ThreadedPsResult result = RunThreadedPs(opt);
  // Lockstep: every push targets the version it pulled.
  ASSERT_FALSE(result.staleness_histogram.empty());
  const uint64_t total = std::accumulate(
      result.staleness_histogram.begin(), result.staleness_histogram.end(),
      uint64_t{0});
  EXPECT_EQ(result.staleness_histogram[0], total);
}

TEST(ThreadedPsTest, AspCompletesAndLearns) {
  ThreadedPsOptions opt = SmallOptions();
  opt.mode = PsMode::kAsp;
  opt.iterations_per_worker = 60;
  ThreadedPsResult result = RunThreadedPs(opt);
  // ASP: one version per push.
  EXPECT_EQ(result.versions,
            static_cast<uint64_t>(opt.num_workers) *
                opt.iterations_per_worker);
  EXPECT_GT(result.final_accuracy, 0.6);
}

TEST(ThreadedPsTest, AspObservesStalenessUnderStraggler) {
  ThreadedPsOptions opt = SmallOptions();
  opt.mode = PsMode::kAsp;
  opt.iterations_per_worker = 20;
  opt.worker_delay_seconds = {0.0, 0.0, 0.0, 0.004};
  ThreadedPsResult result = RunThreadedPs(opt);
  // Some push must have seen staleness >= 1 (fast workers advance the
  // version while the straggler computes).
  uint64_t stale_pushes = 0;
  for (size_t s = 1; s < result.staleness_histogram.size(); ++s) {
    stale_pushes += result.staleness_histogram[s];
  }
  EXPECT_GT(stale_pushes, 0u);
}

TEST(ThreadedPsTest, StragglerDoesNotBlockAspCompletion) {
  ThreadedPsOptions opt = SmallOptions();
  opt.mode = PsMode::kAsp;
  opt.iterations_per_worker = 15;
  opt.worker_delay_seconds = {0.0, 0.0, 0.0, 0.01};
  ThreadedPsResult result = RunThreadedPs(opt);
  EXPECT_EQ(result.versions, 4u * 15u);
}

TEST(ThreadedPsTest, SingleWorkerDegeneratesToSequentialSgd) {
  ThreadedPsOptions opt = SmallOptions();
  opt.num_workers = 1;
  opt.mode = PsMode::kBsp;
  opt.iterations_per_worker = 100;
  ThreadedPsResult result = RunThreadedPs(opt);
  EXPECT_EQ(result.versions, 100u);
  EXPECT_GT(result.final_accuracy, 0.6);
}

}  // namespace
}  // namespace pr
