// Cross-module integration tests: end-to-end properties the paper's
// evaluation relies on, checked at small scale so they stay fast.

#include <gtest/gtest.h>

#include "core/spectral.h"
#include "train/experiment.h"

namespace pr {
namespace {

ExperimentConfig BaseConfig() {
  ExperimentConfig config;
  config.training.num_workers = 8;
  config.training.model.hidden = {16};
  config.training.batch_size = 16;
  SyntheticSpec spec;
  spec.num_train = 2048;
  spec.num_test = 512;
  spec.dim = 16;
  spec.num_classes = 4;
  spec.separation = 3.0;
  config.training.custom_dataset = spec;
  config.training.paper_model = "resnet34";
  config.training.accuracy_threshold = 0.9;
  config.training.max_updates = 8000;
  config.training.eval_every = 25;
  config.training.seed = 21;
  config.strategy.group_size = 3;
  return config;
}

TEST(IntegrationTest, PReduceBeatsAllReduceUnderHeterogeneity) {
  // The paper's headline: under HL>1, P-Reduce's total run time beats AR.
  ExperimentConfig ar = BaseConfig();
  ar.strategy.kind = StrategyKind::kAllReduce;
  ar.training.hetero = HeteroSpec::GpuSharing(3);
  ExperimentConfig con = BaseConfig();
  con.strategy.kind = StrategyKind::kPReduceConst;
  con.training.hetero = HeteroSpec::GpuSharing(3);

  auto r_ar = RunExperiment(ar);
  auto r_con = RunExperiment(con);
  ASSERT_TRUE(r_ar.converged);
  ASSERT_TRUE(r_con.converged);
  EXPECT_LT(r_con.sim_seconds, r_ar.sim_seconds);
}

TEST(IntegrationTest, PReducePerUpdateTimeWellBelowAllReduce) {
  ExperimentConfig ar = BaseConfig();
  ar.strategy.kind = StrategyKind::kAllReduce;
  ar.training.hetero = HeteroSpec::GpuSharing(3);
  ExperimentConfig con = BaseConfig();
  con.strategy.kind = StrategyKind::kPReduceConst;
  con.training.hetero = HeteroSpec::GpuSharing(3);

  auto r_ar = RunExperiment(ar);
  auto r_con = RunExperiment(con);
  EXPECT_LT(r_con.per_update_seconds, 0.5 * r_ar.per_update_seconds);
}

TEST(IntegrationTest, PReduceNeedsMoreUpdatesButLessTime) {
  // Table 1 shape: #updates(P-Reduce) > #updates(AR), run time smaller.
  ExperimentConfig ar = BaseConfig();
  ar.strategy.kind = StrategyKind::kAllReduce;
  ar.training.hetero = HeteroSpec::GpuSharing(3);
  ExperimentConfig con = BaseConfig();
  con.strategy.kind = StrategyKind::kPReduceConst;
  con.training.hetero = HeteroSpec::GpuSharing(3);

  auto r_ar = RunExperiment(ar);
  auto r_con = RunExperiment(con);
  ASSERT_TRUE(r_ar.converged);
  ASSERT_TRUE(r_con.converged);
  EXPECT_GT(r_con.updates, r_ar.updates);
}

TEST(IntegrationTest, MeasuredRhoMatchesClosedFormInHomogeneousRun) {
  ExperimentConfig config = BaseConfig();
  config.strategy.kind = StrategyKind::kPReduceConst;
  config.strategy.group_size = 3;
  config.strategy.record_sync_matrices = true;
  config.training.timing_only = true;
  config.training.timing_updates = 8000;

  SimTraining ctx(config.training);
  auto strategy = MakeStrategy(config.strategy, &ctx);
  strategy->Start();
  ctx.engine()->RunUntil([&] { return ctx.stopped(); });
  const double rho = SpectralRho(strategy->controller()->ExpectedSyncMatrix());
  // Homogeneous N=8, P=3: closed form 1 - 2/7 ~= 0.714. Group formation is
  // arrival-order (not i.i.d. uniform), so allow a loose band.
  EXPECT_NEAR(rho, HomogeneousRho(8, 3), 0.15);
}

TEST(IntegrationTest, HeterogeneityRaisesMeasuredRho) {
  auto measure = [](const HeteroSpec& hetero) {
    ExperimentConfig config;
    config.training.num_workers = 4;
    config.training.timing_only = true;
    config.training.timing_updates = 6000;
    config.training.hetero = hetero;
    config.training.seed = 9;
    config.strategy.kind = StrategyKind::kPReduceConst;
    config.strategy.group_size = 2;
    config.strategy.record_sync_matrices = true;
    SimTraining ctx(config.training);
    auto strategy = MakeStrategy(config.strategy, &ctx);
    strategy->Start();
    ctx.engine()->RunUntil([&] { return ctx.stopped(); });
    return SpectralRho(strategy->controller()->ExpectedSyncMatrix());
  };
  const double rho_hom = measure(HeteroSpec::Homogeneous());
  const double rho_het = measure(HeteroSpec::GpuSharing(2));
  // Fig. 4's lesson: heterogeneity widens the spectral bound.
  EXPECT_GT(rho_het, rho_hom);
}

TEST(IntegrationTest, FrozenAvoidanceKeepsAccuracyUnderAdversarialDelays) {
  // Two speed classes that naturally pair with themselves (group frozen
  // risk). With avoidance on, all replicas converge together.
  HeteroSpec spec;
  spec.kind = HeteroSpec::Kind::kGpuSharing;
  spec.sharing_level = 2;
  spec.jitter_sigma = 0.001;  // nearly deterministic -> stable pairing

  ExperimentConfig on = BaseConfig();
  on.training.num_workers = 4;
  on.strategy.kind = StrategyKind::kPReduceConst;
  on.strategy.group_size = 2;
  on.training.hetero = spec;
  on.strategy.frozen_avoidance = true;
  auto r_on = RunExperiment(on);
  EXPECT_TRUE(r_on.converged);
}

TEST(IntegrationTest, CurvesAreMonotoneInTimeAndUpdates) {
  ExperimentConfig config = BaseConfig();
  config.strategy.kind = StrategyKind::kPReduceConst;
  auto result = RunExperiment(config);
  ASSERT_GE(result.curve.size(), 2u);
  for (size_t i = 1; i < result.curve.size(); ++i) {
    EXPECT_GE(result.curve[i].time, result.curve[i - 1].time);
    EXPECT_GT(result.curve[i].updates, result.curve[i - 1].updates);
  }
}

TEST(IntegrationTest, ScalingWorkersReducesTimeToAccuracyForPReduce) {
  ExperimentConfig small = BaseConfig();
  small.strategy.kind = StrategyKind::kPReduceConst;
  small.training.num_workers = 2;
  small.strategy.group_size = 2;
  ExperimentConfig large = BaseConfig();
  large.strategy.kind = StrategyKind::kPReduceConst;
  large.training.num_workers = 8;
  large.strategy.group_size = 2;

  auto r_small = RunExperiment(small);
  auto r_large = RunExperiment(large);
  ASSERT_TRUE(r_small.converged);
  ASSERT_TRUE(r_large.converged);
  EXPECT_LT(r_large.sim_seconds, r_small.sim_seconds);
}

}  // namespace
}  // namespace pr
