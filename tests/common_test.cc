#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "common/blocking_queue.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"

namespace pr {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad P");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad P");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad P");
}

TEST(StatusTest, FactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Timeout("x").code(), StatusCode::kTimeout);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.ValueOr("fallback"), "hello");
}

Status FailingOp() { return Status::Unavailable("down"); }
Status ChainedOp() {
  PR_RETURN_NOT_OK(FailingOp());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_EQ(ChainedOp().code(), StatusCode::kUnavailable);
}

Result<int> ProduceValue() { return 7; }
Result<int> ProduceError() { return Status::Internal("boom"); }
Status ConsumeAssign(int* out) {
  PR_ASSIGN_OR_RETURN(*out, ProduceValue());
  return Status::OK();
}
Status ConsumeAssignError(int* out) {
  PR_ASSIGN_OR_RETURN(*out, ProduceError());
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int v = 0;
  EXPECT_TRUE(ConsumeAssign(&v).ok());
  EXPECT_EQ(v, 7);
  EXPECT_EQ(ConsumeAssignError(&v).code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanApproximatesHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntInRangeAndCoversAllValues) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformInt(5);
    EXPECT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntSignedRangeInclusive) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsMatchStandard) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(RngTest, NormalWithMeanStddev) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, LogNormalIsPositiveWithUnitMedian) {
  Rng rng(29);
  const int n = 50001;
  std::vector<double> xs(n);
  for (auto& x : xs) {
    x = rng.LogNormal(0.0, 0.5);
    EXPECT_GT(x, 0.0);
  }
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[n / 2], 1.0, 0.05);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(31);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(37);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(43);
  for (int trial = 0; trial < 50; ++trial) {
    auto s = rng.SampleWithoutReplacement(20, 7);
    EXPECT_EQ(s.size(), 7u);
    std::set<size_t> distinct(s.begin(), s.end());
    EXPECT_EQ(distinct.size(), 7u);
    for (size_t x : s) EXPECT_LT(x, 20u);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(99);
  Rng child = a.Fork();
  // Child should not replay the parent's stream.
  Rng parent_copy(99);
  parent_copy.Next();  // parent consumed one value in Fork
  EXPECT_NE(child.Next(), parent_copy.Next());
}

// ---------------------------------------------------------------------------
// RunningStat / SampleSet
// ---------------------------------------------------------------------------

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, MeanVarianceExtrema) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat all, a, b;
  Rng rng(53);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Normal(3.0, 2.0);
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a, b;
  a.Add(1.0);
  a.Add(3.0);
  RunningStat a_before = a;
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), a_before.mean());
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), 2.0);
}

TEST(SampleSetTest, PercentilesOnKnownData) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 100.0);
  EXPECT_NEAR(s.Percentile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.Mean(), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.Percentile(1.0), 100.0, 1e-9);
}

TEST(SampleSetTest, SingleSample) {
  SampleSet s;
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 3.5);
  EXPECT_DOUBLE_EQ(s.Percentile(0.5), 3.5);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 3.5);
}

TEST(SampleSetTest, AddAfterPercentileInvalidatesCache) {
  SampleSet s;
  s.Add(1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 1.0);
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 10.0);
}

// ---------------------------------------------------------------------------
// BlockingQueue
// ---------------------------------------------------------------------------

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.Push(i));
  for (int i = 0; i < 10; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BlockingQueueTest, TryPopEmptyReturnsNullopt) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.TryPop().has_value());
  q.Push(5);
  auto v = q.TryPop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 5);
}

TEST(BlockingQueueTest, CloseWakesBlockedConsumer) {
  BlockingQueue<int> q;
  std::thread consumer([&] {
    auto v = q.Pop();
    EXPECT_FALSE(v.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  consumer.join();
}

TEST(BlockingQueueTest, CloseDrainsRemainingItems) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));  // rejected after close
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, ConcurrentProducersConsumersDeliverAll) {
  BlockingQueue<int> q;
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::atomic<int> consumed{0};
  std::atomic<long long> sum{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.Push(p * kPerProducer + i);
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (true) {
        auto v = q.Pop();
        if (!v.has_value()) return;
        sum += *v;
        ++consumed;
      }
    });
  }
  for (auto& t : producers) t.join();
  while (consumed.load() < kPerProducer * kProducers) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(consumed.load(), kPerProducer * kProducers);
  const long long n = kPerProducer * kProducers;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace pr
