#include <gtest/gtest.h>

#include <thread>

#include "comm/transport.h"

namespace pr {
namespace {

TEST(TransportTest, SendRecvRoundTrip) {
  InProcTransport transport(2);
  Endpoint a(&transport, 0), b(&transport, 1);
  ASSERT_TRUE(a.Send(1, /*tag=*/7, /*kind=*/1, {42}, {1.5f}).ok());
  auto env = b.RecvAny();
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->from, 0);
  EXPECT_EQ(env->tag, 7u);
  EXPECT_EQ(env->kind, 1);
  EXPECT_EQ(env->ints, (std::vector<int64_t>{42}));
  EXPECT_EQ(env->floats, (std::vector<float>{1.5f}));
}

TEST(TransportTest, SendToInvalidNodeFails) {
  InProcTransport transport(2);
  Envelope env;
  EXPECT_EQ(transport.Send(5, env).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(transport.Send(-1, env).code(), StatusCode::kInvalidArgument);
}

TEST(TransportTest, PairwiseFifoOrder) {
  InProcTransport transport(2);
  Endpoint a(&transport, 0), b(&transport, 1);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(a.Send(1, 0, 1, {i}, {}).ok());
  }
  for (int i = 0; i < 10; ++i) {
    auto env = b.RecvAny();
    ASSERT_TRUE(env.has_value());
    EXPECT_EQ(env->ints[0], i);
  }
}

TEST(TransportTest, RecvMatchingStashesOtherMessages) {
  InProcTransport transport(3);
  Endpoint a(&transport, 0), b(&transport, 1), c(&transport, 2);
  ASSERT_TRUE(a.Send(2, /*tag=*/1, /*kind=*/5, {}, {1.0f}).ok());
  ASSERT_TRUE(b.Send(2, /*tag=*/9, /*kind=*/5, {}, {2.0f}).ok());

  // Ask for b's message first although a's arrived first.
  auto from_b = c.RecvMatching(1, 9, 5);
  ASSERT_TRUE(from_b.has_value());
  EXPECT_EQ(from_b->floats[0], 2.0f);
  // a's message was stashed and is still deliverable.
  auto from_a = c.RecvMatching(0, 1, 5);
  ASSERT_TRUE(from_a.has_value());
  EXPECT_EQ(from_a->floats[0], 1.0f);
}

TEST(TransportTest, RecvFromFiltersBySender) {
  InProcTransport transport(3);
  Endpoint a(&transport, 0), b(&transport, 1), c(&transport, 2);
  ASSERT_TRUE(b.Send(2, 0, 1, {}, {}).ok());
  ASSERT_TRUE(a.Send(2, 0, 2, {}, {}).ok());
  auto env = c.RecvFrom(0);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->from, 0);
  EXPECT_EQ(env->kind, 2);
  // b's earlier message is stashed for later RecvAny.
  auto env2 = c.RecvAny();
  ASSERT_TRUE(env2.has_value());
  EXPECT_EQ(env2->from, 1);
}

TEST(TransportTest, StashCountersTrackParkedMessages) {
  InProcTransport transport(3);
  Endpoint a(&transport, 0), b(&transport, 1), c(&transport, 2);
  EXPECT_EQ(c.stash_size(), 0u);
  EXPECT_EQ(c.stash_high_water(), 0u);

  // Two out-of-order messages park while c waits for a specific one.
  ASSERT_TRUE(a.Send(2, /*tag=*/1, /*kind=*/5, {}, {}).ok());
  ASSERT_TRUE(a.Send(2, /*tag=*/2, /*kind=*/5, {}, {}).ok());
  ASSERT_TRUE(b.Send(2, /*tag=*/3, /*kind=*/5, {}, {}).ok());
  auto env = c.RecvMatching(1, 3, 5);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(c.stash_size(), 2u);
  EXPECT_EQ(c.stash_high_water(), 2u);

  // Draining the stash lowers the size but never the high-water mark.
  ASSERT_TRUE(c.RecvMatching(0, 2, 5).has_value());
  ASSERT_TRUE(c.RecvMatching(0, 1, 5).has_value());
  EXPECT_EQ(c.stash_size(), 0u);
  EXPECT_EQ(c.stash_high_water(), 2u);
}

TEST(TransportTest, StashedMessagesDrainInFifoOrderViaRecvAny) {
  InProcTransport transport(3);
  Endpoint a(&transport, 0), b(&transport, 1), c(&transport, 2);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(a.Send(2, /*tag=*/static_cast<uint64_t>(i), 1, {i}, {}).ok());
  }
  ASSERT_TRUE(b.Send(2, 0, 1, {99}, {}).ok());
  // Waiting on b parks all five of a's messages.
  auto from_b = c.RecvFrom(1);
  ASSERT_TRUE(from_b.has_value());
  EXPECT_EQ(c.stash_size(), 5u);
  // RecvAny replays the stash oldest-first, preserving a's send order.
  for (int i = 0; i < 5; ++i) {
    auto env = c.RecvAny();
    ASSERT_TRUE(env.has_value());
    EXPECT_EQ(env->ints[0], i);
  }
  EXPECT_EQ(c.stash_size(), 0u);
}

TEST(TransportTest, ShutdownUnblocksReceiver) {
  InProcTransport transport(1);
  std::thread receiver([&] {
    Endpoint ep(&transport, 0);
    auto env = ep.RecvAny();
    EXPECT_FALSE(env.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  transport.Shutdown();
  receiver.join();
}

TEST(TransportTest, SendAfterShutdownFails) {
  InProcTransport transport(2);
  transport.Shutdown();
  Endpoint a(&transport, 0);
  EXPECT_EQ(a.Send(1, 0, 0, {}, {}).code(), StatusCode::kFailedPrecondition);
}

TEST(TransportTest, CrossThreadDelivery) {
  InProcTransport transport(2);
  std::thread sender([&] {
    Endpoint a(&transport, 0);
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(a.Send(1, 0, 1, {i}, {}).ok());
    }
  });
  Endpoint b(&transport, 1);
  for (int i = 0; i < 100; ++i) {
    auto env = b.RecvAny();
    ASSERT_TRUE(env.has_value());
    EXPECT_EQ(env->ints[0], i);
  }
  sender.join();
}

}  // namespace
}  // namespace pr
