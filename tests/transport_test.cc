#include <gtest/gtest.h>

#include <thread>

#include "comm/transport.h"

namespace pr {
namespace {

TEST(TransportTest, SendRecvRoundTrip) {
  InProcTransport transport(2);
  Endpoint a(&transport, 0), b(&transport, 1);
  ASSERT_TRUE(a.Send(1, /*tag=*/7, /*kind=*/1, {42}, {1.5f}).ok());
  auto env = b.RecvAny();
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->from, 0);
  EXPECT_EQ(env->tag, 7u);
  EXPECT_EQ(env->kind, 1);
  EXPECT_EQ(env->ints, (std::vector<int64_t>{42}));
  EXPECT_EQ(env->payload.ToVector(), (std::vector<float>{1.5f}));
}

TEST(TransportTest, SendToInvalidNodeFails) {
  InProcTransport transport(2);
  Envelope env;
  EXPECT_EQ(transport.Send(5, env).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(transport.Send(-1, env).code(), StatusCode::kInvalidArgument);
}

TEST(TransportTest, PairwiseFifoOrder) {
  InProcTransport transport(2);
  Endpoint a(&transport, 0), b(&transport, 1);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(a.Send(1, 0, 1, {i}).ok());
  }
  for (int i = 0; i < 10; ++i) {
    auto env = b.RecvAny();
    ASSERT_TRUE(env.has_value());
    EXPECT_EQ(env->ints[0], i);
  }
}

TEST(TransportTest, RecvMatchingStashesOtherMessages) {
  InProcTransport transport(3);
  Endpoint a(&transport, 0), b(&transport, 1), c(&transport, 2);
  ASSERT_TRUE(a.Send(2, /*tag=*/1, /*kind=*/5, {}, {1.0f}).ok());
  ASSERT_TRUE(b.Send(2, /*tag=*/9, /*kind=*/5, {}, {2.0f}).ok());

  // Ask for b's message first although a's arrived first.
  auto from_b = c.RecvMatching(1, 9, 5);
  ASSERT_TRUE(from_b.has_value());
  EXPECT_EQ(from_b->payload[0], 2.0f);
  // a's message was stashed and is still deliverable.
  auto from_a = c.RecvMatching(0, 1, 5);
  ASSERT_TRUE(from_a.has_value());
  EXPECT_EQ(from_a->payload[0], 1.0f);
}

TEST(TransportTest, RecvFromFiltersBySender) {
  InProcTransport transport(3);
  Endpoint a(&transport, 0), b(&transport, 1), c(&transport, 2);
  ASSERT_TRUE(b.Send(2, 0, 1, {}).ok());
  ASSERT_TRUE(a.Send(2, 0, 2, {}).ok());
  auto env = c.RecvFrom(0);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->from, 0);
  EXPECT_EQ(env->kind, 2);
  // b's earlier message is stashed for later RecvAny.
  auto env2 = c.RecvAny();
  ASSERT_TRUE(env2.has_value());
  EXPECT_EQ(env2->from, 1);
}

TEST(TransportTest, StashCountersTrackParkedMessages) {
  InProcTransport transport(3);
  Endpoint a(&transport, 0), b(&transport, 1), c(&transport, 2);
  EXPECT_EQ(c.stash_size(), 0u);
  EXPECT_EQ(c.stash_high_water(), 0u);

  // Two out-of-order messages park while c waits for a specific one.
  ASSERT_TRUE(a.Send(2, /*tag=*/1, /*kind=*/5, {}).ok());
  ASSERT_TRUE(a.Send(2, /*tag=*/2, /*kind=*/5, {}).ok());
  ASSERT_TRUE(b.Send(2, /*tag=*/3, /*kind=*/5, {}).ok());
  auto env = c.RecvMatching(1, 3, 5);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(c.stash_size(), 2u);
  EXPECT_EQ(c.stash_high_water(), 2u);

  // Draining the stash lowers the size but never the high-water mark.
  ASSERT_TRUE(c.RecvMatching(0, 2, 5).has_value());
  ASSERT_TRUE(c.RecvMatching(0, 1, 5).has_value());
  EXPECT_EQ(c.stash_size(), 0u);
  EXPECT_EQ(c.stash_high_water(), 2u);
}

TEST(TransportTest, StashedMessagesDrainInFifoOrderViaRecvAny) {
  InProcTransport transport(3);
  Endpoint a(&transport, 0), b(&transport, 1), c(&transport, 2);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(a.Send(2, /*tag=*/static_cast<uint64_t>(i), 1, {i}).ok());
  }
  ASSERT_TRUE(b.Send(2, 0, 1, {99}).ok());
  // Waiting on b parks all five of a's messages.
  auto from_b = c.RecvFrom(1);
  ASSERT_TRUE(from_b.has_value());
  EXPECT_EQ(c.stash_size(), 5u);
  // RecvAny replays the stash oldest-first, preserving a's send order.
  for (int i = 0; i < 5; ++i) {
    auto env = c.RecvAny();
    ASSERT_TRUE(env.has_value());
    EXPECT_EQ(env->ints[0], i);
  }
  EXPECT_EQ(c.stash_size(), 0u);
}

TEST(TransportTest, ShutdownUnblocksReceiver) {
  InProcTransport transport(1);
  std::thread receiver([&] {
    Endpoint ep(&transport, 0);
    auto env = ep.RecvAny();
    EXPECT_FALSE(env.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  transport.Shutdown();
  receiver.join();
}

TEST(TransportTest, SendAfterShutdownFails) {
  InProcTransport transport(2);
  transport.Shutdown();
  Endpoint a(&transport, 0);
  EXPECT_EQ(a.Send(1, 0, 0, {}).code(), StatusCode::kFailedPrecondition);
}

TEST(TransportTest, RecvMatchingForTimesOutWithoutLosingStash) {
  InProcTransport transport(2);
  Endpoint a(&transport, 0), b(&transport, 1);
  ASSERT_TRUE(a.Send(1, /*tag=*/1, /*kind=*/5, {}).ok());
  // Waiting for a message that never comes returns nullopt on deadline —
  // and the fabric is still open, so the caller knows it was a timeout.
  auto missing = b.RecvMatchingFor(0, /*tag=*/99, /*kind=*/5, 0.02);
  EXPECT_FALSE(missing.has_value());
  EXPECT_FALSE(b.closed());
  // The non-matching arrival was parked, not dropped.
  EXPECT_EQ(b.stash_size(), 1u);
  auto parked = b.RecvMatching(0, 1, 5);
  ASSERT_TRUE(parked.has_value());
}

TEST(TransportTest, TimedRecvDistinguishesShutdownFromTimeout) {
  InProcTransport transport(1);
  Endpoint ep(&transport, 0);
  EXPECT_FALSE(ep.RecvAnyFor(0.01).has_value());
  EXPECT_FALSE(ep.closed());  // timeout: fabric still up
  transport.Shutdown();
  EXPECT_FALSE(ep.RecvAnyFor(0.01).has_value());
  EXPECT_TRUE(ep.closed());  // shutdown: unwind, don't retry
}

TEST(TransportTest, RecvWhereForMatchesOnPayloadFields) {
  InProcTransport transport(2);
  Endpoint a(&transport, 0), b(&transport, 1);
  // Two chunks from the same (from, tag, kind) conversation differing only
  // in their step counter — the case plain RecvMatching cannot split.
  ASSERT_TRUE(a.Send(1, /*tag=*/4, /*kind=*/101, {/*step=*/2, 0}).ok());
  ASSERT_TRUE(a.Send(1, /*tag=*/4, /*kind=*/101, {/*step=*/1, 0}).ok());
  auto step1 = b.RecvWhereFor(
      [](const Envelope& env) {
        return env.kind == 101 && !env.ints.empty() && env.ints[0] == 1;
      },
      1.0);
  ASSERT_TRUE(step1.has_value());
  EXPECT_EQ(step1->ints[0], 1);
  // The step-2 chunk was parked for its turn.
  EXPECT_EQ(b.stash_size(), 1u);
}

TEST(TransportTest, TryTakeStashedLiftsParkedControlMessages) {
  InProcTransport transport(3);
  Endpoint a(&transport, 0), b(&transport, 1), c(&transport, 2);
  // An out-of-band abort (kind 10) parks while c waits on a data chunk.
  ASSERT_TRUE(b.Send(2, /*tag=*/8, /*kind=*/10, {}).ok());
  ASSERT_TRUE(a.Send(2, /*tag=*/8, /*kind=*/101, {}).ok());
  ASSERT_TRUE(c.RecvMatching(0, 8, 101).has_value());
  EXPECT_EQ(c.stash_size(), 1u);
  // Nothing matching: stash untouched.
  EXPECT_FALSE(
      c.TryTakeStashed([](const Envelope& env) { return env.kind == 99; })
          .has_value());
  EXPECT_EQ(c.stash_size(), 1u);
  auto abort_msg =
      c.TryTakeStashed([](const Envelope& env) { return env.kind == 10; });
  ASSERT_TRUE(abort_msg.has_value());
  EXPECT_EQ(abort_msg->from, 1);
  EXPECT_EQ(c.stash_size(), 0u);
}

TEST(TransportTest, PurgeStashDropsOnlyMatchingMessages) {
  InProcTransport transport(2);
  Endpoint a(&transport, 0), b(&transport, 1);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(a.Send(1, /*tag=*/7, /*kind=*/101, {i}).ok());
  }
  ASSERT_TRUE(a.Send(1, /*tag=*/3, /*kind=*/1, {}).ok());
  // Park everything behind a selective receive for the tag-3 message.
  ASSERT_TRUE(b.RecvMatching(0, 3, 1).has_value());
  EXPECT_EQ(b.stash_size(), 4u);
  // Abort conversation 7: its chunks must not rot in the stash.
  size_t purged =
      b.PurgeStash([](const Envelope& env) { return env.tag == 7; });
  EXPECT_EQ(purged, 4u);
  EXPECT_EQ(b.stash_size(), 0u);
}

TEST(TransportTest, StashGrowsWhenPeerExitsMidConversation) {
  InProcTransport transport(3);
  Endpoint a(&transport, 0), b(&transport, 1), c(&transport, 2);
  // a starts a conversation with c, then "exits" without finishing it; b's
  // messages are what c actually wants next.
  ASSERT_TRUE(a.Send(2, /*tag=*/1, /*kind=*/101, {0}).ok());
  ASSERT_TRUE(a.Send(2, /*tag=*/1, /*kind=*/101, {1}).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(b.Send(2, /*tag=*/2, /*kind=*/101, {i}).ok());
    auto env = c.RecvMatchingFor(1, 2, 101, 1.0);
    ASSERT_TRUE(env.has_value());
    EXPECT_EQ(env->ints[0], i);
  }
  // The dead conversation's chunks accumulated: visible in both the live
  // size and the high-water mark, which is the leak signal operators watch.
  EXPECT_EQ(c.stash_size(), 2u);
  EXPECT_GE(c.stash_high_water(), 2u);
  EXPECT_EQ(c.PurgeStash([](const Envelope& env) { return env.tag == 1; }),
            2u);
  EXPECT_EQ(c.stash_size(), 0u);
  EXPECT_GE(c.stash_high_water(), 2u);  // high water never decreases
}

TEST(TransportTest, PurgeStashFromDropsOnlyThatPeersMessages) {
  InProcTransport transport(4);
  Endpoint a(&transport, 0), b(&transport, 1), c(&transport, 2);
  Endpoint d(&transport, 3);
  // Two conversations park behind a selective receive; then peer 0 dies.
  ASSERT_TRUE(a.Send(3, /*tag=*/1, /*kind=*/101, {0}).ok());
  ASSERT_TRUE(a.Send(3, /*tag=*/2, /*kind=*/101, {1}).ok());
  ASSERT_TRUE(b.Send(3, /*tag=*/1, /*kind=*/101, {2}).ok());
  ASSERT_TRUE(c.Send(3, /*tag=*/9, /*kind=*/1, {}).ok());
  ASSERT_TRUE(d.RecvMatching(2, 9, 1).has_value());
  EXPECT_EQ(d.stash_size(), 3u);

  // Peer-death hygiene: everything the dead peer ever sent goes, nothing
  // from the survivors does.
  EXPECT_EQ(d.PurgeStashFrom(0), 2u);
  EXPECT_EQ(d.stash_size(), 1u);
  auto kept = d.TryTakeStashed([](const Envelope&) { return true; });
  ASSERT_TRUE(kept.has_value());
  EXPECT_EQ(kept->from, 1);
}

TEST(TransportTest, StashPurgesAreCounted) {
  InProcTransport transport(3);
  Endpoint a(&transport, 0), b(&transport, 1), c(&transport, 2);
  MetricsRegistry registry;
  MetricsShard* mc = registry.NewShard();
  c.AttachObservers(mc, "", nullptr, nullptr);

  ASSERT_TRUE(a.Send(2, /*tag=*/1, /*kind=*/101, {0}).ok());
  ASSERT_TRUE(a.Send(2, /*tag=*/1, /*kind=*/101, {1}).ok());
  ASSERT_TRUE(b.Send(2, /*tag=*/5, /*kind=*/1, {}).ok());
  ASSERT_TRUE(c.RecvMatching(1, 5, 1).has_value());
  EXPECT_EQ(c.stash_size(), 2u);

  EXPECT_EQ(c.PurgeStashFrom(0), 2u);
  EXPECT_EQ(mc->GetCounter("transport.stash_purged")->value(), 2.0);
  // Purging an empty stash adds nothing.
  EXPECT_EQ(c.PurgeStashFrom(0), 0u);
  EXPECT_EQ(mc->GetCounter("transport.stash_purged")->value(), 2.0);
}

TEST(TransportTest, ResetDiagnosticsClearsHighWaterBetweenAttachments) {
  InProcTransport transport(3);
  Endpoint a(&transport, 0), b(&transport, 1), c(&transport, 2);
  MetricsRegistry job_a_registry;
  MetricsShard* job_a = job_a_registry.NewShard();
  c.AttachObservers(job_a, "job_a", nullptr, nullptr);

  // Two strays from node 0 park while c selectively receives from node 1.
  ASSERT_TRUE(a.Send(2, /*tag=*/1, /*kind=*/101, {0}).ok());
  ASSERT_TRUE(a.Send(2, /*tag=*/1, /*kind=*/101, {1}).ok());
  ASSERT_TRUE(b.Send(2, /*tag=*/5, /*kind=*/1, {}).ok());
  ASSERT_TRUE(c.RecvMatching(1, 5, 1).has_value());
  EXPECT_EQ(c.stash_high_water(), 2u);
  EXPECT_EQ(job_a->GetGauge("job_a.stash_high_water")->value(), 2.0);

  // Handoff hygiene: purge leftovers (charged to job A), then reset.
  EXPECT_EQ(c.PurgeStash([](const Envelope&) { return true; }), 2u);
  c.ResetDiagnostics();
  EXPECT_EQ(c.stash_high_water(), 0u);

  // The next tenant's scope starts clean and only counts its own strays.
  MetricsRegistry job_b_registry;
  MetricsShard* job_b = job_b_registry.NewShard();
  c.AttachObservers(job_b, "job_b", nullptr, nullptr);
  EXPECT_EQ(job_b->GetGauge("job_b.stash_high_water")->value(), 0.0);
  ASSERT_TRUE(a.Send(2, /*tag=*/1, /*kind=*/101, {2}).ok());
  ASSERT_TRUE(b.Send(2, /*tag=*/6, /*kind=*/1, {}).ok());
  ASSERT_TRUE(c.RecvMatching(1, 6, 1).has_value());
  EXPECT_EQ(c.stash_high_water(), 1u);
  EXPECT_EQ(job_b->GetGauge("job_b.stash_high_water")->value(), 1.0);
  // Detached observers saw none of job B's traffic.
  EXPECT_EQ(job_a->GetGauge("job_a.stash_high_water")->value(), 2.0);
  EXPECT_EQ(job_a->GetCounter("transport.messages_received")->value(), 1.0);
}

TEST(TransportTest, SkippedResetChargesStaleHighWaterToNewScope) {
  InProcTransport transport(3);
  Endpoint a(&transport, 0), b(&transport, 1), c(&transport, 2);
  MetricsRegistry job_a_registry;
  MetricsShard* job_a = job_a_registry.NewShard();
  c.AttachObservers(job_a, "job_a", nullptr, nullptr);
  ASSERT_TRUE(a.Send(2, /*tag=*/1, /*kind=*/101, {0}).ok());
  ASSERT_TRUE(a.Send(2, /*tag=*/1, /*kind=*/101, {1}).ok());
  ASSERT_TRUE(b.Send(2, /*tag=*/5, /*kind=*/1, {}).ok());
  ASSERT_TRUE(c.RecvMatching(1, 5, 1).has_value());
  EXPECT_EQ(job_a->GetGauge("job_a.stash_high_water")->value(), 2.0);

  // Re-attach WITHOUT ResetDiagnostics: the stale mark is republished into
  // the new scope at attach time, so the leak is visible there instead of
  // surfacing only after the next stash growth.
  MetricsRegistry job_b_registry;
  MetricsShard* job_b = job_b_registry.NewShard();
  c.AttachObservers(job_b, "job_b", nullptr, nullptr);
  EXPECT_EQ(job_b->GetGauge("job_b.stash_high_water")->value(), 2.0);
  EXPECT_EQ(job_b->GetGauge("transport.stash_high_water")->value(), 2.0);
}

TEST(TransportTest, EndpointSendAfterShutdownFailsPrecondition) {
  InProcTransport transport(2);
  Endpoint a(&transport, 0), b(&transport, 1);
  ASSERT_TRUE(a.Send(1, 0, 1, {}).ok());
  transport.Shutdown();
  EXPECT_EQ(a.Send(1, 0, 2, {}).code(),
            StatusCode::kFailedPrecondition);
  // Messages sent before shutdown still drain.
  auto env = b.RecvAny();
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->kind, 1);
  // Once drained, receives report closure instead of blocking.
  EXPECT_FALSE(b.RecvAny().has_value());
  EXPECT_TRUE(b.closed());
}

TEST(TransportTest, StashReplayInterleavesWithMailboxOnRecvAny) {
  InProcTransport transport(3);
  Endpoint a(&transport, 0), b(&transport, 1), c(&transport, 2);
  ASSERT_TRUE(a.Send(2, /*tag=*/1, /*kind=*/101, {10}).ok());
  ASSERT_TRUE(a.Send(2, /*tag=*/1, /*kind=*/101, {11}).ok());
  ASSERT_TRUE(b.Send(2, /*tag=*/9, /*kind=*/1, {}).ok());
  // Park a's two chunks behind a selective receive for b's message.
  ASSERT_TRUE(c.RecvMatching(1, 9, 1).has_value());
  ASSERT_EQ(c.stash_size(), 2u);
  // New mailbox arrivals queue *behind* the stash: RecvAny replays parked
  // messages first (oldest-first), then reads fresh ones.
  ASSERT_TRUE(b.Send(2, /*tag=*/9, /*kind=*/2, {}).ok());
  auto first = c.RecvAny();
  auto second = c.RecvAny();
  auto third = c.RecvAny();
  ASSERT_TRUE(first.has_value() && second.has_value() && third.has_value());
  EXPECT_EQ(first->ints[0], 10);
  EXPECT_EQ(second->ints[0], 11);
  EXPECT_EQ(third->kind, 2);
}

TEST(TransportTest, ByteCountersTrackPayloadTraffic) {
  InProcTransport transport(2);
  Endpoint a(&transport, 0), b(&transport, 1);
  MetricsRegistry registry;
  MetricsShard* ma = registry.NewShard();
  MetricsShard* mb = registry.NewShard();
  a.AttachObservers(ma, "", nullptr, nullptr);
  b.AttachObservers(mb, "", nullptr, nullptr);

  ASSERT_TRUE(a.Send(1, 1, 1, {}, std::vector<float>{1.0f, 2.0f, 3.0f}).ok());
  ASSERT_TRUE(a.Send(1, 2, 1, {}).ok());  // control message: no payload bytes
  ASSERT_TRUE(b.RecvMatching(0, 1, 1).has_value());
  ASSERT_TRUE(b.RecvMatching(0, 2, 1).has_value());

  EXPECT_EQ(ma->GetCounter("transport.bytes_sent")->value(),
            3 * sizeof(float));
  EXPECT_EQ(mb->GetCounter("transport.bytes_received")->value(),
            3 * sizeof(float));
  // The vector-adopting send is exactly one payload materialization.
  EXPECT_EQ(ma->GetCounter("transport.payload_copies")->value(), 1.0);
}

TEST(TransportTest, BroadcastCopiesPayloadOnce) {
  // One MakePayload + P shared-handle sends: payload_copies stays O(1) in
  // the receiver count — the zero-copy data plane's core invariant.
  const int kReceivers = 7;
  InProcTransport transport(kReceivers + 1);
  Endpoint root(&transport, 0);
  MetricsRegistry registry;
  MetricsShard* metrics = registry.NewShard();
  root.AttachObservers(metrics, "", nullptr, nullptr);

  std::vector<float> model(256, 1.25f);
  Buffer payload = root.MakePayload(model.data(), model.size());
  for (int r = 1; r <= kReceivers; ++r) {
    ASSERT_TRUE(root.Send(r, 0, 1, {}, payload).ok());
  }
  EXPECT_EQ(metrics->GetCounter("transport.payload_copies")->value(), 1.0);
  EXPECT_EQ(metrics->GetCounter("transport.bytes_sent")->value(),
            static_cast<double>(kReceivers * 256 * sizeof(float)));

  // Every receiver sees the same allocation (refcount share, not a clone).
  for (int r = 1; r <= kReceivers; ++r) {
    Endpoint ep(&transport, r);
    auto env = ep.RecvAny();
    ASSERT_TRUE(env.has_value());
    EXPECT_EQ(env->payload.data(), payload.data());
  }
}

TEST(TransportTest, SharedPayloadSendDoesNotCountACopy) {
  InProcTransport transport(2);
  Endpoint a(&transport, 0);
  MetricsRegistry registry;
  MetricsShard* metrics = registry.NewShard();
  a.AttachObservers(metrics, "", nullptr, nullptr);

  std::vector<float> v = {1.0f, 2.0f};
  Buffer payload = a.MakePayload(v.data(), v.size());
  EXPECT_EQ(metrics->GetCounter("transport.payload_copies")->value(), 1.0);
  ASSERT_TRUE(a.Send(1, 0, 1, {}, payload).ok());
  ASSERT_TRUE(a.Send(1, 1, 1, {}, payload).ok());
  EXPECT_EQ(metrics->GetCounter("transport.payload_copies")->value(), 1.0);
}

TEST(TransportTest, CrossThreadDelivery) {
  InProcTransport transport(2);
  std::thread sender([&] {
    Endpoint a(&transport, 0);
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(a.Send(1, 0, 1, {i}).ok());
    }
  });
  Endpoint b(&transport, 1);
  for (int i = 0; i < 100; ++i) {
    auto env = b.RecvAny();
    ASSERT_TRUE(env.has_value());
    EXPECT_EQ(env->ints[0], i);
  }
  sender.join();
}

}  // namespace
}  // namespace pr
