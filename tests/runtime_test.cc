#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "runtime/threaded_runtime.h"
#include "train/experiment.h"

namespace pr {
namespace {

ThreadedRunOptions SmallOptions() {
  ThreadedRunOptions opt;
  opt.num_workers = 4;
  opt.iterations_per_worker = 30;
  opt.model.hidden = {16};
  opt.batch_size = 16;
  opt.dataset.num_train = 1024;
  opt.dataset.num_test = 512;
  opt.dataset.dim = 16;
  opt.dataset.num_classes = 4;
  opt.dataset.separation = 3.0;
  opt.seed = 5;
  return opt;
}

StrategyOptions Strat(StrategyKind kind, int group_size = 2) {
  StrategyOptions s;
  s.kind = kind;
  s.group_size = group_size;
  return s;
}

ThreadedRunResult RunPair(const StrategyOptions& strategy,
                      const ThreadedRunOptions& run) {
  RunConfig config;
  config.strategy = strategy;
  config.run = run;
  return RunThreaded(config);
}

TEST(ThreadedRuntimeTest, PReduceCompletesAndLearns) {
  ThreadedRunResult result =
      RunPair(Strat(StrategyKind::kPReduceConst), SmallOptions());
  EXPECT_EQ(result.strategy, "CON");
  EXPECT_GT(result.group_reduces, 0u);
  EXPECT_GT(result.final_accuracy, 0.6);
  EXPECT_EQ(result.worker_iterations.size(), 4u);
  // Each ready signal that grouped consumed exactly P signals.
  EXPECT_LE(result.group_reduces, 4u * 30u / 2u);
}

TEST(ThreadedRuntimeTest, AllReduceCompletesAndLearns) {
  ThreadedRunResult result =
      RunPair(Strat(StrategyKind::kAllReduce), SmallOptions());
  EXPECT_EQ(result.strategy, "AR");
  EXPECT_GT(result.final_accuracy, 0.6);
  // AR keeps replicas bitwise identical.
  EXPECT_EQ(result.replica_spread, 0.0);
}

TEST(ThreadedRuntimeTest, PReduceReplicasStayClose) {
  ThreadedRunResult result =
      RunPair(Strat(StrategyKind::kPReduceConst), SmallOptions());
  // Replicas drift between reduces but must remain in the same basin.
  EXPECT_LT(result.replica_spread, 2.0);
}

TEST(ThreadedRuntimeTest, GroupSizeEqualsWorkers) {
  ThreadedRunResult result = RunPair(
      Strat(StrategyKind::kPReduceConst, /*group_size=*/4), SmallOptions());
  EXPECT_GT(result.group_reduces, 0u);
  EXPECT_GT(result.final_accuracy, 0.6);
}

TEST(ThreadedRuntimeTest, LargerGroupSizeFewerReduces) {
  auto p2 = RunPair(Strat(StrategyKind::kPReduceConst, 2),
                        SmallOptions());
  auto p4 = RunPair(Strat(StrategyKind::kPReduceConst, 4),
                        SmallOptions());
  EXPECT_GT(p2.group_reduces, p4.group_reduces);
}

TEST(ThreadedRuntimeTest, DynamicModeRuns) {
  StrategyOptions strat = Strat(StrategyKind::kPReduceDynamic);
  strat.dynamic.alpha = 0.5;
  ThreadedRunOptions opt = SmallOptions();
  opt.worker_delay_seconds = {0.0, 0.0, 0.0, 0.003};  // a straggler
  ThreadedRunResult result = RunPair(strat, opt);
  EXPECT_EQ(result.strategy, "DYN");
  EXPECT_GT(result.group_reduces, 0u);
  EXPECT_GT(result.final_accuracy, 0.6);
}

TEST(ThreadedRuntimeTest, StragglerDoesNotBlockPReduceCompletion) {
  ThreadedRunOptions opt = SmallOptions();
  opt.iterations_per_worker = 15;
  opt.worker_delay_seconds = {0.0, 0.0, 0.0, 0.01};
  ThreadedRunResult result =
      RunPair(Strat(StrategyKind::kPReduceConst), opt);
  // Run completes despite the straggler; all workers did their iterations.
  for (size_t iters : result.worker_iterations) EXPECT_EQ(iters, 15u);
}

TEST(ThreadedRuntimeTest, ControllerStatsPropagated) {
  ThreadedRunResult result =
      RunPair(Strat(StrategyKind::kPReduceConst), SmallOptions());
  EXPECT_EQ(result.controller_stats.groups_formed, result.group_reduces);
  EXPECT_GT(result.controller_stats.signals_received,
            result.controller_stats.groups_formed);
}

TEST(ThreadedRuntimeTest, FastWorkersFinishEarlyUnderPReduce) {
  ThreadedRunOptions opt = SmallOptions();
  opt.iterations_per_worker = 25;
  opt.worker_delay_seconds = {0.001, 0.001, 0.001, 0.008};
  ThreadedRunResult pr_run =
      RunPair(Strat(StrategyKind::kPReduceConst), opt);
  ThreadedRunResult ar_run =
      RunPair(Strat(StrategyKind::kAllReduce), opt);
  ASSERT_EQ(pr_run.worker_finish_seconds.size(), 4u);
  const double pr_fast =
      *std::min_element(pr_run.worker_finish_seconds.begin(),
                        pr_run.worker_finish_seconds.end());
  const double ar_fast =
      *std::min_element(ar_run.worker_finish_seconds.begin(),
                        ar_run.worker_finish_seconds.end());
  // Under the barrier even the fastest worker is dragged to straggler pace.
  EXPECT_LT(pr_fast, 0.8 * ar_fast);
}

TEST(ThreadedRuntimeTest, AdversarialSpeedClassesDoNotDeadlock) {
  // Two deterministic speed classes, P=2: the frozen-avoidance hold path
  // (queue held until a cross-component signal or departure) is exercised
  // constantly. The run must terminate with every worker completing, even
  // though holds and Leaves race at the end.
  ThreadedRunOptions opt = SmallOptions();
  opt.iterations_per_worker = 25;
  opt.worker_delay_seconds = {0.0, 0.0, 0.003, 0.003};
  ThreadedRunResult result =
      RunPair(Strat(StrategyKind::kPReduceConst), opt);
  for (size_t iters : result.worker_iterations) EXPECT_EQ(iters, 25u);
  EXPECT_GT(result.group_reduces, 0u);
}

TEST(ThreadedRuntimeTest, RepeatedRunsTerminate) {
  // Shake out rare interleavings in the termination protocol.
  for (int trial = 0; trial < 10; ++trial) {
    ThreadedRunOptions opt = SmallOptions();
    opt.iterations_per_worker = 8;
    opt.seed = 100 + static_cast<uint64_t>(trial);
    ThreadedRunResult result =
        RunPair(Strat(StrategyKind::kPReduceConst), opt);
    EXPECT_EQ(result.worker_iterations.size(), 4u);
  }
}

TEST(ThreadedRuntimeTest, ManyWorkersSmokeTest) {
  ThreadedRunOptions opt = SmallOptions();
  opt.num_workers = 8;
  opt.iterations_per_worker = 12;
  ThreadedRunResult result =
      RunPair(Strat(StrategyKind::kPReduceConst, 3), opt);
  EXPECT_GT(result.group_reduces, 0u);
}

// ---------------------------------------------------------------------------
// Baselines on real threads (new with the pluggable strategy layer).
// ---------------------------------------------------------------------------

TEST(ThreadedRuntimeTest, EagerReduceCompletesAndLearns) {
  ThreadedRunResult result =
      RunPair(Strat(StrategyKind::kEagerReduce), SmallOptions());
  EXPECT_EQ(result.strategy, "ER");
  EXPECT_GT(result.group_reduces, 0u);
  EXPECT_GT(result.final_accuracy, 0.6);
}

TEST(ThreadedRuntimeTest, AdPsgdCompletesAndLearns) {
  ThreadedRunResult result =
      RunPair(Strat(StrategyKind::kAdPsgd), SmallOptions());
  EXPECT_EQ(result.strategy, "AD");
  // group_reduces counts completed pair averages.
  EXPECT_GT(result.group_reduces, 0u);
  EXPECT_GT(result.final_accuracy, 0.6);
}

TEST(ThreadedRuntimeTest, PsHeteLearnsAndVersionsPerPush) {
  ThreadedRunOptions opt = SmallOptions();
  opt.iterations_per_worker = 60;
  opt.worker_delay_seconds = {0.0, 0.0, 0.0, 0.002};
  ThreadedRunResult result =
      RunPair(Strat(StrategyKind::kPsHete), opt);
  EXPECT_EQ(result.strategy, "PS-HETE");
  // HETE is asynchronous: one version per push.
  EXPECT_EQ(result.versions, 4u * 60u);
  EXPECT_GT(result.final_accuracy, 0.6);
}

TEST(ThreadedRuntimeTest, PsBackupDropsStaleGradients) {
  StrategyOptions strat = Strat(StrategyKind::kPsBackup);
  strat.backup_workers = 1;
  ThreadedRunOptions opt = SmallOptions();
  opt.iterations_per_worker = 20;
  opt.worker_delay_seconds = {0.0, 0.0, 0.0, 0.004};
  ThreadedRunResult result = RunPair(strat, opt);
  EXPECT_EQ(result.strategy, "PS-BK");
  EXPECT_GT(result.versions, 0u);
  // The straggler's gradients target superseded versions and are dropped.
  EXPECT_GT(result.metrics.counter("ps.wasted_gradients"), 0.0);
  EXPECT_GT(result.final_accuracy, 0.6);
}

TEST(ThreadedRuntimeTest, PsBspMatchesWrapperSemantics) {
  ThreadedRunResult result =
      RunPair(Strat(StrategyKind::kPsBsp), SmallOptions());
  EXPECT_EQ(result.strategy, "PS-BSP");
  // BSP: one version per round, zero staleness everywhere.
  EXPECT_EQ(result.versions, 30u);
  const HistogramSnapshot* hist =
      result.metrics.histogram("ps.push_staleness");
  ASSERT_NE(hist, nullptr);
  ASSERT_FALSE(hist->counts.empty());
  EXPECT_GT(hist->total_count, 0u);
  EXPECT_EQ(hist->counts[0], hist->total_count);
}

TEST(ThreadedRuntimeTest, EveryStrategyKindRunsOnThreads) {
  const StrategyKind kinds[] = {
      StrategyKind::kAllReduce,    StrategyKind::kEagerReduce,
      StrategyKind::kAdPsgd,       StrategyKind::kPsBsp,
      StrategyKind::kPsAsp,        StrategyKind::kPsHete,
      StrategyKind::kPsBackup,     StrategyKind::kPReduceConst,
      StrategyKind::kPReduceDynamic};
  for (StrategyKind kind : kinds) {
    StrategyOptions strat = Strat(kind);
    strat.backup_workers = 1;
    ThreadedRunOptions opt = SmallOptions();
    opt.iterations_per_worker = 6;
    opt.worker_delay_seconds = {0.0, 0.0, 0.001, 0.002};
    ThreadedRunResult result = RunPair(strat, opt);
    EXPECT_EQ(result.strategy, StrategyKindName(kind));
    EXPECT_EQ(result.worker_iterations.size(), 4u);
    for (size_t iters : result.worker_iterations) EXPECT_EQ(iters, 6u);
  }
}

// ---------------------------------------------------------------------------
// Elastic membership, ConvNet proxy, timeline recording.
// ---------------------------------------------------------------------------

TEST(ThreadedRuntimeTest, ElasticWorkerPausesAndRejoins) {
  // Worker 1 leaves the pool mid-run, naps, and rejoins through
  // Controller::NotifyWorkerRejoined — the run must finish every budget.
  ThreadedRunOptions opt = SmallOptions();
  opt.churn.push_back(ThreadedChurnEvent{/*worker=*/1,
                                         /*after_iterations=*/5,
                                         /*pause_seconds=*/0.02});
  ThreadedRunResult result =
      RunPair(Strat(StrategyKind::kPReduceConst), opt);
  for (size_t iters : result.worker_iterations) EXPECT_EQ(iters, 30u);
  EXPECT_GT(result.group_reduces, 0u);
  EXPECT_GT(result.final_accuracy, 0.6);
  // The pause keeps worker 1 busy at least that long.
  EXPECT_GE(result.worker_finish_seconds[1], 0.02);
}

TEST(ThreadedRuntimeTest, ConvNetTrainsOnThreads) {
  ThreadedRunOptions opt = SmallOptions();
  opt.model.kind = ThreadedModelSpec::Kind::kConvNet;
  opt.model.conv_filters = 8;  // dataset dim 16 -> 4x4 single-channel
  ThreadedRunResult result =
      RunPair(Strat(StrategyKind::kPReduceConst), opt);
  EXPECT_GT(result.group_reduces, 0u);
  EXPECT_GT(result.final_accuracy, 0.5);
}

TEST(ThreadedRuntimeTest, TimelineRecordsWorkerActivity) {
  ThreadedRunOptions opt = SmallOptions();
  opt.iterations_per_worker = 10;
  opt.record_timeline = true;
  opt.worker_delay_seconds = {0.001, 0.001, 0.001, 0.002};
  ThreadedRunResult result =
      RunPair(Strat(StrategyKind::kPReduceConst), opt);
  EXPECT_EQ(result.timeline.num_workers(), 4);
  EXPECT_FALSE(result.timeline.intervals().empty());
  for (int w = 0; w < 4; ++w) {
    EXPECT_GT(result.timeline.TotalTime(w, WorkerActivity::kCompute), 0.0);
  }
  // Waiting on the controller's verdict shows up as idle time somewhere.
  double idle = 0.0;
  for (int w = 0; w < 4; ++w) {
    idle += result.timeline.TotalTime(w, WorkerActivity::kIdle);
  }
  EXPECT_GT(idle, 0.0);
  EXPECT_GT(result.timeline.EndTime(), 0.0);
}

// ---------------------------------------------------------------------------
// Observability: metrics agree with the legacy diagnostics, and the sim and
// threaded engines publish the same metric names.
// ---------------------------------------------------------------------------

TEST(ThreadedRuntimeTest, ControllerMetricsMatchControllerStats) {
  ThreadedRunResult result =
      RunPair(Strat(StrategyKind::kPReduceConst), SmallOptions());
  EXPECT_EQ(result.metrics.counter("controller.groups_formed"),
            static_cast<double>(result.controller_stats.groups_formed));
  EXPECT_EQ(result.metrics.counter("controller.signals_received"),
            static_cast<double>(result.controller_stats.signals_received));
  // Every decision was timed.
  const HistogramSnapshot* latency =
      result.metrics.histogram("controller.decision_latency_seconds");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->total_count, result.controller_stats.signals_received);
  EXPECT_GT(latency->Mean(), 0.0);
}

TEST(ThreadedRuntimeTest, RunLevelMetricsPublished) {
  ThreadedRunResult result =
      RunPair(Strat(StrategyKind::kPReduceConst), SmallOptions());
  EXPECT_GT(result.metrics.gauge("run.wall_seconds"), 0.0);
  EXPECT_EQ(result.metrics.counter("run.updates"),
            static_cast<double>(result.group_reduces));
  for (int w = 0; w < 4; ++w) {
    const std::string prefix = "worker." + std::to_string(w) + ".";
    EXPECT_EQ(result.metrics.counter(prefix + "iterations"), 30.0);
    const double idle = result.metrics.gauge(prefix + "idle_fraction");
    EXPECT_GE(idle, 0.0);
    EXPECT_LE(idle, 1.0);
  }
  // Convenience accessor mirrors the gauges.
  const std::vector<double> idle = result.worker_idle_fraction();
  ASSERT_EQ(idle.size(), 4u);
}

TEST(ThreadedRuntimeTest, SimAndThreadedShareMetricNames) {
  // The acceptance criterion for the observability layer: both engines
  // publish the controller, per-worker, and run-level families under
  // identical names, so a dashboard built on one works on the other.
  ThreadedRunResult threaded =
      RunPair(Strat(StrategyKind::kPReduceConst), SmallOptions());

  ExperimentConfig sim;
  sim.training.num_workers = 4;
  sim.training.max_updates = 60;
  sim.training.accuracy_threshold = -1.0;
  sim.strategy.kind = StrategyKind::kPReduceConst;
  sim.strategy.group_size = 2;
  SimRunResult simulated = RunExperiment(sim);

  const char* shared_counters[] = {
      "controller.signals_received", "controller.groups_formed",
      "run.updates", "worker.0.iterations", "worker.3.iterations",
      "transport.bytes_sent", "transport.bytes_received",
      "transport.payload_copies"};
  for (const char* name : shared_counters) {
    EXPECT_GT(threaded.metrics.counter(name), 0.0) << "threaded: " << name;
    EXPECT_GT(simulated.metrics.counter(name), 0.0) << "sim: " << name;
  }
  for (int w = 0; w < 4; ++w) {
    const std::string gauge =
        "worker." + std::to_string(w) + ".idle_fraction";
    EXPECT_TRUE(threaded.metrics.gauges.count(gauge)) << gauge;
    EXPECT_TRUE(simulated.metrics.gauges.count(gauge)) << gauge;
  }
  // Same decision-latency histogram instrument under both engines (measured
  // on the real clock in both — the controller does real work either way).
  EXPECT_NE(
      threaded.metrics.histogram("controller.decision_latency_seconds"),
      nullptr);
  EXPECT_NE(
      simulated.metrics.histogram("controller.decision_latency_seconds"),
      nullptr);
  // Engine-specific wall clocks keep distinct names on purpose.
  EXPECT_GT(threaded.metrics.gauge("run.wall_seconds"), 0.0);
  EXPECT_GT(simulated.metrics.gauge("run.sim_seconds"), 0.0);
  // Topology instruments are registered eagerly, so even these flat runs
  // expose the names (at zero) — a dashboard never sees a missing series.
  for (const char* name : {"topo.cross_node_groups", "topo.intra_node_groups",
                           "transport.inter_node_bytes"}) {
    EXPECT_TRUE(threaded.metrics.counters.count(name)) << "threaded: " << name;
    EXPECT_TRUE(simulated.metrics.counters.count(name)) << "sim: " << name;
  }
}

TEST(ThreadedRuntimeTest, TopologyMetricsAgreeAcrossEngines) {
  // Hierarchical run on 2x2 nodes in both engines: the topo.* and
  // transport.inter_node_bytes families must be live (non-zero) under the
  // same names, and the group split must mirror the controller stats.
  StrategyOptions strat = Strat(StrategyKind::kPReduceConst);
  strat.hierarchy.enabled = true;
  strat.hierarchy.cross_period = 2;

  ThreadedRunOptions opt = SmallOptions();
  ASSERT_TRUE(Topology::FromNodes({{0, 1}, {2, 3}}, &opt.topology).ok());
  ThreadedRunResult threaded = RunPair(strat, opt);

  ExperimentConfig sim;
  sim.training.num_workers = 4;
  sim.training.max_updates = 60;
  sim.training.accuracy_threshold = -1.0;
  ASSERT_TRUE(
      Topology::FromNodes({{0, 1}, {2, 3}}, &sim.training.topology).ok());
  sim.strategy = strat;
  SimRunResult simulated = RunExperiment(sim);

  for (const auto* r : {&threaded.metrics, &simulated.metrics}) {
    EXPECT_GT(r->counter("topo.intra_node_groups"), 0.0);
    EXPECT_GT(r->counter("topo.cross_node_groups"), 0.0);
    EXPECT_GT(r->counter("transport.inter_node_bytes"), 0.0);
  }
  EXPECT_EQ(threaded.metrics.counter("topo.intra_node_groups"),
            static_cast<double>(threaded.controller_stats.intra_node_groups));
  EXPECT_EQ(threaded.metrics.counter("topo.cross_node_groups"),
            static_cast<double>(threaded.controller_stats.cross_node_groups));
  // Inter-node traffic must be a strict subset of total traffic.
  EXPECT_LT(threaded.metrics.counter("transport.inter_node_bytes"),
            threaded.metrics.counter("transport.bytes_sent"));
}

TEST(ThreadedRuntimeTest, TraceDisabledByDefaultAndBoundedWhenOn) {
  ThreadedRunOptions opt = SmallOptions();
  ThreadedRunResult off =
      RunPair(Strat(StrategyKind::kPReduceConst), opt);
  EXPECT_TRUE(off.trace.events.empty());

  RunConfig config;
  config.strategy = Strat(StrategyKind::kPReduceConst);
  config.run = SmallOptions();
  config.run.trace_capacity = 64;
  ThreadedRunResult on = RunThreaded(config);
  EXPECT_FALSE(on.trace.events.empty());
  EXPECT_LE(on.trace.events.size(), 64u);
  // A run of 4x30 iterations generates far more than 64 events; the ring
  // must report the overflow.
  EXPECT_GT(on.trace.dropped, 0u);
}

TEST(ThreadedRuntimeTest, TimelineOffByDefault) {
  ThreadedRunOptions opt = SmallOptions();
  opt.iterations_per_worker = 5;
  ThreadedRunResult result =
      RunPair(Strat(StrategyKind::kAllReduce), opt);
  EXPECT_TRUE(result.timeline.intervals().empty());
}

}  // namespace
}  // namespace pr
