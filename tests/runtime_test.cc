#include <gtest/gtest.h>

#include <algorithm>

#include "runtime/threaded_runtime.h"

namespace pr {
namespace {

ThreadedRunOptions SmallOptions() {
  ThreadedRunOptions opt;
  opt.num_workers = 4;
  opt.group_size = 2;
  opt.iterations_per_worker = 30;
  opt.hidden = {16};
  opt.batch_size = 16;
  opt.dataset.num_train = 1024;
  opt.dataset.num_test = 512;
  opt.dataset.dim = 16;
  opt.dataset.num_classes = 4;
  opt.dataset.separation = 3.0;
  opt.seed = 5;
  return opt;
}

TEST(ThreadedRuntimeTest, PReduceCompletesAndLearns) {
  ThreadedRunResult result = RunThreadedPReduce(SmallOptions());
  EXPECT_GT(result.group_reduces, 0u);
  EXPECT_GT(result.final_accuracy, 0.6);
  EXPECT_EQ(result.worker_iterations.size(), 4u);
  // Each ready signal that grouped consumed exactly P signals.
  EXPECT_LE(result.group_reduces,
            4u * 30u / 2u);
}

TEST(ThreadedRuntimeTest, AllReduceCompletesAndLearns) {
  ThreadedRunResult result = RunThreadedAllReduce(SmallOptions());
  EXPECT_GT(result.final_accuracy, 0.6);
  // AR keeps replicas bitwise identical.
  EXPECT_EQ(result.replica_spread, 0.0);
}

TEST(ThreadedRuntimeTest, PReduceReplicasStayClose) {
  ThreadedRunResult result = RunThreadedPReduce(SmallOptions());
  // Replicas drift between reduces but must remain in the same basin.
  EXPECT_LT(result.replica_spread, 2.0);
}

TEST(ThreadedRuntimeTest, GroupSizeEqualsWorkers) {
  ThreadedRunOptions opt = SmallOptions();
  opt.group_size = 4;
  ThreadedRunResult result = RunThreadedPReduce(opt);
  EXPECT_GT(result.group_reduces, 0u);
  EXPECT_GT(result.final_accuracy, 0.6);
}

TEST(ThreadedRuntimeTest, LargerGroupSizeFewerReduces) {
  ThreadedRunOptions opt = SmallOptions();
  opt.group_size = 2;
  auto p2 = RunThreadedPReduce(opt);
  opt.group_size = 4;
  auto p4 = RunThreadedPReduce(opt);
  EXPECT_GT(p2.group_reduces, p4.group_reduces);
}

TEST(ThreadedRuntimeTest, DynamicModeRuns) {
  ThreadedRunOptions opt = SmallOptions();
  opt.mode = PartialReduceMode::kDynamic;
  opt.dynamic.alpha = 0.5;
  opt.worker_delay_seconds = {0.0, 0.0, 0.0, 0.003};  // a straggler
  ThreadedRunResult result = RunThreadedPReduce(opt);
  EXPECT_GT(result.group_reduces, 0u);
  EXPECT_GT(result.final_accuracy, 0.6);
}

TEST(ThreadedRuntimeTest, StragglerDoesNotBlockPReduceCompletion) {
  ThreadedRunOptions opt = SmallOptions();
  opt.iterations_per_worker = 15;
  opt.worker_delay_seconds = {0.0, 0.0, 0.0, 0.01};
  ThreadedRunResult result = RunThreadedPReduce(opt);
  // Run completes despite the straggler; all workers did their iterations.
  for (size_t iters : result.worker_iterations) EXPECT_EQ(iters, 15u);
}

TEST(ThreadedRuntimeTest, ControllerStatsPropagated) {
  ThreadedRunResult result = RunThreadedPReduce(SmallOptions());
  EXPECT_EQ(result.controller_stats.groups_formed, result.group_reduces);
  EXPECT_GT(result.controller_stats.signals_received,
            result.controller_stats.groups_formed);
}

TEST(ThreadedRuntimeTest, FastWorkersFinishEarlyUnderPReduce) {
  ThreadedRunOptions opt = SmallOptions();
  opt.iterations_per_worker = 25;
  opt.worker_delay_seconds = {0.001, 0.001, 0.001, 0.008};
  ThreadedRunResult pr_run = RunThreadedPReduce(opt);
  ThreadedRunResult ar_run = RunThreadedAllReduce(opt);
  ASSERT_EQ(pr_run.worker_finish_seconds.size(), 4u);
  const double pr_fast = *std::min_element(
      pr_run.worker_finish_seconds.begin(),
      pr_run.worker_finish_seconds.end());
  const double ar_fast = *std::min_element(
      ar_run.worker_finish_seconds.begin(),
      ar_run.worker_finish_seconds.end());
  // Under the barrier even the fastest worker is dragged to straggler pace.
  EXPECT_LT(pr_fast, 0.8 * ar_fast);
}

TEST(ThreadedRuntimeTest, AdversarialSpeedClassesDoNotDeadlock) {
  // Two deterministic speed classes, P=2: the frozen-avoidance hold path
  // (queue held until a cross-component signal or departure) is exercised
  // constantly. The run must terminate with every worker completing, even
  // though holds and Leaves race at the end.
  ThreadedRunOptions opt = SmallOptions();
  opt.num_workers = 4;
  opt.group_size = 2;
  opt.iterations_per_worker = 25;
  opt.worker_delay_seconds = {0.0, 0.0, 0.003, 0.003};
  ThreadedRunResult result = RunThreadedPReduce(opt);
  for (size_t iters : result.worker_iterations) EXPECT_EQ(iters, 25u);
  EXPECT_GT(result.group_reduces, 0u);
}

TEST(ThreadedRuntimeTest, RepeatedRunsTerminate) {
  // Shake out rare interleavings in the termination protocol.
  for (int trial = 0; trial < 10; ++trial) {
    ThreadedRunOptions opt = SmallOptions();
    opt.iterations_per_worker = 8;
    opt.seed = 100 + static_cast<uint64_t>(trial);
    ThreadedRunResult result = RunThreadedPReduce(opt);
    EXPECT_EQ(result.worker_iterations.size(), 4u);
  }
}

TEST(ThreadedRuntimeTest, ManyWorkersSmokeTest) {
  ThreadedRunOptions opt = SmallOptions();
  opt.num_workers = 8;
  opt.group_size = 3;
  opt.iterations_per_worker = 12;
  ThreadedRunResult result = RunThreadedPReduce(opt);
  EXPECT_GT(result.group_reduces, 0u);
}

}  // namespace
}  // namespace pr
