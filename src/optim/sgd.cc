#include "optim/sgd.h"

#include <cmath>

#include "common/check.h"

namespace pr {

Sgd::Sgd(size_t num_params, SgdOptions options)
    : options_(options), velocity_(num_params, 0.0f) {
  PR_CHECK_GT(num_params, 0u);
  PR_CHECK_GE(options.momentum, 0.0);
  PR_CHECK_LT(options.momentum, 1.0);
  PR_CHECK_GE(options.weight_decay, 0.0);
}

void Sgd::Step(const float* grad, float* params, size_t n, double lr_scale) {
  PR_CHECK(grad != nullptr);
  PR_CHECK(params != nullptr);
  PR_CHECK_EQ(n, velocity_.size());
  const float mu = static_cast<float>(options_.momentum);
  const float wd = static_cast<float>(options_.weight_decay);
  const float step = static_cast<float>(options_.learning_rate * lr_scale);
  float* v = velocity_.data();
  for (size_t i = 0; i < n; ++i) {
    v[i] = mu * v[i] + grad[i] + wd * params[i];
    params[i] -= step * v[i];
  }
}

void Sgd::Step(const float* grad, std::vector<float>* params,
               double lr_scale) {
  PR_CHECK(params != nullptr);
  Step(grad, params->data(), params->size(), lr_scale);
}

void Sgd::ResetState() {
  std::fill(velocity_.begin(), velocity_.end(), 0.0f);
}

StepDecaySchedule::StepDecaySchedule(double base_lr, double decay_factor,
                                     size_t updates_per_decay)
    : base_lr_(base_lr),
      decay_factor_(decay_factor),
      updates_per_decay_(updates_per_decay) {
  PR_CHECK_GT(base_lr, 0.0);
  PR_CHECK_GT(decay_factor, 0.0);
  PR_CHECK_LE(decay_factor, 1.0);
  PR_CHECK_GT(updates_per_decay, 0u);
}

double StepDecaySchedule::LearningRateAt(size_t update) const {
  const size_t stage = update / updates_per_decay_;
  return base_lr_ * std::pow(decay_factor_, static_cast<double>(stage));
}

double StalenessLrScale(size_t staleness) {
  return 1.0 / (1.0 + static_cast<double>(staleness));
}

double ExcessStalenessLrScale(size_t staleness, size_t expected_staleness) {
  PR_CHECK_GE(expected_staleness, 1u);
  const double scale = static_cast<double>(expected_staleness) /
                       (1.0 + static_cast<double>(staleness));
  return scale < 1.0 ? scale : 1.0;
}

}  // namespace pr
