#pragma once

#include <cstddef>
#include <vector>

namespace pr {

/// \brief Hyperparameters for SGD, defaulting to the paper's experimental
/// setting (lr 0.1, momentum 0.9, weight decay 1e-4).
struct SgdOptions {
  double learning_rate = 0.1;
  double momentum = 0.9;
  double weight_decay = 1e-4;
};

/// \brief SGD with (heavy-ball) momentum and L2 weight decay over a flat
/// parameter vector.
///
/// The optimizer state (velocity buffer) is local to each worker replica,
/// matching the paper's prototype where only *model parameters* are averaged
/// during a partial reduce — momentum buffers stay local.
class Sgd {
 public:
  Sgd(size_t num_params, SgdOptions options);

  /// Applies one update in place over `n` parameters (n must equal the
  /// velocity length):
  ///   v   <- momentum * v + (grad + weight_decay * params)
  ///   params <- params - lr_scale * lr * v
  ///
  /// `lr_scale` multiplies the base learning rate for this step only; the
  /// staleness-aware strategies (PS-HETE) pass a scale < 1 for stale
  /// gradients. The span form updates a replica directly in the runtime's
  /// parameter arena.
  void Step(const float* grad, float* params, size_t n, double lr_scale = 1.0);

  /// Convenience overload over a whole vector.
  void Step(const float* grad, std::vector<float>* params,
            double lr_scale = 1.0);

  /// Updates the base learning rate (for schedules).
  void set_learning_rate(double lr) { options_.learning_rate = lr; }
  double learning_rate() const { return options_.learning_rate; }
  const SgdOptions& options() const { return options_; }

  /// Resets the velocity buffer to zero.
  void ResetState();

  /// Direct access to the momentum (velocity) buffer. The paper's partial
  /// reduce averages only *model parameters*; exposing the buffer lets the
  /// momentum-averaging ablation also merge optimizer state across a group.
  std::vector<float>* mutable_velocity() { return &velocity_; }
  const std::vector<float>& velocity() const { return velocity_; }

 private:
  SgdOptions options_;
  std::vector<float> velocity_;
};

/// \brief Step-decay learning-rate schedule: lr = base * decay^(epoch /
/// interval), the scheme the paper uses on ImageNet ("start from 0.1 and
/// decay by 10 every 20 epochs").
class StepDecaySchedule {
 public:
  StepDecaySchedule(double base_lr, double decay_factor,
                    size_t updates_per_decay);

  /// Learning rate to use at global update index `update`.
  double LearningRateAt(size_t update) const;

 private:
  double base_lr_;
  double decay_factor_;
  size_t updates_per_decay_;
};

/// \brief Staleness-aware learning-rate scale used by the PS-HETE baseline
/// (Jiang et al., "Heterogeneity-aware Distributed Parameter Servers"):
/// a gradient computed `staleness` versions ago is applied with its
/// contribution damped as 1 / (1 + staleness).
double StalenessLrScale(size_t staleness);

/// \brief Damping for staleness *beyond* the level inherent to asynchrony.
///
/// In an N-worker async PS, every push is ~N-1 versions stale by
/// construction; only staleness beyond that signals a straggler whose
/// gradient should be damped. Returns min(1, expected_staleness / (1 +
/// staleness)), i.e. 1 while staleness <= expected - 1 and ~expected/s for
/// deep staleness.
double ExcessStalenessLrScale(size_t staleness, size_t expected_staleness);

}  // namespace pr
