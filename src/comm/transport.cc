#include "comm/transport.h"

#include "common/check.h"

namespace pr {

InProcTransport::InProcTransport(int num_nodes) : num_nodes_(num_nodes) {
  PR_CHECK_GE(num_nodes, 1);
  mailboxes_.reserve(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    mailboxes_.push_back(std::make_unique<BlockingQueue<Envelope>>());
  }
}

Status InProcTransport::Send(NodeId to, Envelope env) {
  if (to < 0 || to >= num_nodes_) {
    return Status::InvalidArgument("Send: node id out of range");
  }
  if (!mailboxes_[static_cast<size_t>(to)]->Push(std::move(env))) {
    return Status::FailedPrecondition("Send: transport is shut down");
  }
  return Status::OK();
}

std::optional<Envelope> InProcTransport::Recv(NodeId me) {
  PR_CHECK_GE(me, 0);
  PR_CHECK_LT(me, num_nodes_);
  return mailboxes_[static_cast<size_t>(me)]->Pop();
}

std::optional<Envelope> InProcTransport::TryRecv(NodeId me) {
  PR_CHECK_GE(me, 0);
  PR_CHECK_LT(me, num_nodes_);
  return mailboxes_[static_cast<size_t>(me)]->TryPop();
}

void InProcTransport::Shutdown() {
  for (auto& box : mailboxes_) box->Close();
}

Endpoint::Endpoint(InProcTransport* transport, NodeId me)
    : transport_(transport), me_(me) {
  PR_CHECK(transport != nullptr);
  PR_CHECK_GE(me, 0);
  PR_CHECK_LT(me, transport->num_nodes());
}

Status Endpoint::Send(NodeId to, uint64_t tag, int kind,
                      std::vector<int64_t> ints, std::vector<float> floats) {
  Envelope env;
  env.from = me_;
  env.tag = tag;
  env.kind = kind;
  env.ints = std::move(ints);
  env.floats = std::move(floats);
  return transport_->Send(to, std::move(env));
}

std::optional<Envelope> Endpoint::RecvMatching(NodeId from, uint64_t tag,
                                               int kind) {
  for (size_t i = 0; i < stash_.size(); ++i) {
    if (stash_[i].from == from && stash_[i].tag == tag &&
        stash_[i].kind == kind) {
      Envelope env = std::move(stash_[i]);
      stash_.erase(stash_.begin() + static_cast<ptrdiff_t>(i));
      return env;
    }
  }
  while (true) {
    std::optional<Envelope> env = transport_->Recv(me_);
    if (!env.has_value()) return std::nullopt;
    if (env->from == from && env->tag == tag && env->kind == kind) {
      return env;
    }
    stash_.push_back(std::move(*env));
  }
}

std::optional<Envelope> Endpoint::RecvFrom(NodeId from) {
  for (size_t i = 0; i < stash_.size(); ++i) {
    if (stash_[i].from == from) {
      Envelope env = std::move(stash_[i]);
      stash_.erase(stash_.begin() + static_cast<ptrdiff_t>(i));
      return env;
    }
  }
  while (true) {
    std::optional<Envelope> env = transport_->Recv(me_);
    if (!env.has_value()) return std::nullopt;
    if (env->from == from) return env;
    stash_.push_back(std::move(*env));
  }
}

std::optional<Envelope> Endpoint::RecvAny() {
  if (!stash_.empty()) {
    Envelope env = std::move(stash_.front());
    stash_.erase(stash_.begin());
    return env;
  }
  return transport_->Recv(me_);
}

}  // namespace pr
