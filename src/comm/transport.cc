#include "comm/transport.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"

namespace pr {

InProcTransport::InProcTransport(int num_nodes) : num_nodes_(num_nodes) {
  PR_CHECK_GE(num_nodes, 1);
  mailboxes_.reserve(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    mailboxes_.push_back(std::make_unique<BlockingQueue<Envelope>>());
  }
}

Status InProcTransport::Send(NodeId to, Envelope env) {
  if (to < 0 || to >= num_nodes_) {
    return Status::InvalidArgument("Send: node id out of range");
  }
  if (!mailboxes_[static_cast<size_t>(to)]->Push(std::move(env))) {
    return Status::FailedPrecondition("Send: transport is shut down");
  }
  return Status::OK();
}

std::optional<Envelope> InProcTransport::Recv(NodeId me) {
  PR_CHECK_GE(me, 0);
  PR_CHECK_LT(me, num_nodes_);
  return mailboxes_[static_cast<size_t>(me)]->Pop();
}

std::optional<Envelope> InProcTransport::RecvFor(NodeId me,
                                                 double timeout_seconds) {
  PR_CHECK_GE(me, 0);
  PR_CHECK_LT(me, num_nodes_);
  return mailboxes_[static_cast<size_t>(me)]->PopFor(timeout_seconds);
}

std::optional<Envelope> InProcTransport::TryRecv(NodeId me) {
  PR_CHECK_GE(me, 0);
  PR_CHECK_LT(me, num_nodes_);
  return mailboxes_[static_cast<size_t>(me)]->TryPop();
}

void InProcTransport::Shutdown() {
  closed_.store(true, std::memory_order_release);
  for (auto& box : mailboxes_) box->Close();
}

Endpoint::Endpoint(Transport* transport, NodeId me)
    : transport_(transport), me_(me) {
  PR_CHECK(transport != nullptr);
  PR_CHECK_GE(me, 0);
  PR_CHECK_LT(me, transport->num_nodes());
}

void Endpoint::AttachObservers(MetricsShard* metrics, const std::string& scope,
                               TraceRecorder* trace,
                               std::function<double()> now) {
  trace_ = trace;
  now_ = std::move(now);
  if (metrics != nullptr) {
    sent_counter_ = metrics->GetCounter("transport.messages_sent");
    received_counter_ = metrics->GetCounter("transport.messages_received");
    bytes_sent_counter_ = metrics->GetCounter("transport.bytes_sent");
    bytes_received_counter_ = metrics->GetCounter("transport.bytes_received");
    payload_copies_counter_ = metrics->GetCounter("transport.payload_copies");
    stash_purged_counter_ = metrics->GetCounter("transport.stash_purged");
    // Eagerly registered (even without a classifier) so flat runs expose
    // the same metric names as topology-aware ones — cross-engine parity
    // tests diff the full name set.
    inter_node_bytes_counter_ =
        metrics->GetCounter("transport.inter_node_bytes");
    stash_gauge_ = metrics->GetGauge("transport.stash_high_water");
    if (!scope.empty()) {
      scoped_stash_gauge_ = metrics->GetGauge(scope + ".stash_high_water");
    }
    // Publish the current mark immediately: on a fresh endpoint this is a
    // no-op, while a re-attached endpoint that skipped ResetDiagnostics()
    // visibly charges its stale high-water to the new scope instead of
    // silently dropping it until the next stash growth.
    if (stash_high_water_ > 0) {
      const double hw = static_cast<double>(stash_high_water_);
      stash_gauge_->SetMax(hw);
      if (scoped_stash_gauge_ != nullptr) scoped_stash_gauge_->SetMax(hw);
    }
  }
}

void Endpoint::ResetDiagnostics() {
  stash_high_water_ = 0;
  sent_counter_ = nullptr;
  received_counter_ = nullptr;
  bytes_sent_counter_ = nullptr;
  bytes_received_counter_ = nullptr;
  payload_copies_counter_ = nullptr;
  stash_purged_counter_ = nullptr;
  inter_node_bytes_counter_ = nullptr;
  is_inter_node_ = nullptr;
  stash_gauge_ = nullptr;
  scoped_stash_gauge_ = nullptr;
  trace_ = nullptr;
  now_ = nullptr;
}

void Endpoint::NoteStashed() {
  if (stash_.size() <= stash_high_water_) return;
  stash_high_water_ = stash_.size();
  const double hw = static_cast<double>(stash_high_water_);
  if (stash_gauge_ != nullptr) stash_gauge_->SetMax(hw);
  if (scoped_stash_gauge_ != nullptr) scoped_stash_gauge_->SetMax(hw);
  if (trace_ != nullptr) {
    trace_->Record(now_ ? now_() : 0.0, TraceEventKind::kStashHighWater, me_,
                   static_cast<int64_t>(stash_high_water_));
  }
}

void Endpoint::NoteReceived(const Envelope& env) {
  if (received_counter_ != nullptr) received_counter_->Increment();
  if (bytes_received_counter_ != nullptr && !env.payload.empty()) {
    bytes_received_counter_->Increment(
        static_cast<double>(env.payload.size() * sizeof(float)));
  }
}

Status Endpoint::Send(NodeId to, uint64_t tag, int kind,
                      std::vector<int64_t> ints, Buffer payload) {
  return Send(to, tag, kind, std::move(ints), std::move(payload),
              /*encoding=*/0);
}

Status Endpoint::Send(NodeId to, uint64_t tag, int kind,
                      std::vector<int64_t> ints, Buffer payload,
                      uint8_t encoding) {
  const size_t payload_floats = payload.size();
  Envelope env;
  env.from = me_;
  env.tag = tag;
  env.kind = kind;
  env.ints = std::move(ints);
  env.payload = std::move(payload);
  env.encoding = encoding;
  Status status = transport_->Send(to, std::move(env));
  if (status.ok()) {
    if (sent_counter_ != nullptr) sent_counter_->Increment();
    if (bytes_sent_counter_ != nullptr && payload_floats > 0) {
      const double bytes =
          static_cast<double>(payload_floats * sizeof(float));
      bytes_sent_counter_->Increment(bytes);
      if (inter_node_bytes_counter_ != nullptr && is_inter_node_ &&
          is_inter_node_(to)) {
        inter_node_bytes_counter_->Increment(bytes);
      }
    }
  }
  return status;
}

void Endpoint::SetInterNodeClassifier(std::function<bool(NodeId)> is_inter) {
  is_inter_node_ = std::move(is_inter);
}

Status Endpoint::Send(NodeId to, uint64_t tag, int kind,
                      std::vector<int64_t> ints, std::vector<float> floats) {
  if (payload_copies_counter_ != nullptr && !floats.empty()) {
    payload_copies_counter_->Increment();
  }
  return Send(to, tag, kind, std::move(ints),
              Buffer::FromVector(std::move(floats)));
}

Buffer Endpoint::MakePayload(const float* data, size_t n) {
  if (payload_copies_counter_ != nullptr && n > 0) {
    payload_copies_counter_->Increment();
  }
  return Buffer::CopyOf(data, n);
}

std::optional<Envelope> Endpoint::RecvWhere(
    const std::function<bool(const Envelope&)>& match, double timeout_seconds) {
  for (auto it = stash_.begin(); it != stash_.end(); ++it) {
    if (match(*it)) {
      Envelope env = std::move(*it);
      stash_.erase(it);
      NoteReceived(env);
      return env;
    }
  }
  const bool bounded = timeout_seconds >= 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(bounded ? timeout_seconds : 0.0));
  while (true) {
    std::optional<Envelope> env;
    if (bounded) {
      const double left =
          std::chrono::duration<double>(deadline -
                                        std::chrono::steady_clock::now())
              .count();
      if (left <= 0.0) return std::nullopt;
      env = transport_->RecvFor(me_, left);
      // A timed-out wait and a closed-and-drained mailbox both surface as
      // nullopt here; either way the deadline loop decides, so fall through
      // unless the fabric is closed (no more messages will ever arrive).
      if (!env.has_value()) {
        if (transport_->closed()) return std::nullopt;
        continue;
      }
    } else {
      env = transport_->Recv(me_);
      if (!env.has_value()) return std::nullopt;
    }
    if (match(*env)) {
      NoteReceived(*env);
      return env;
    }
    stash_.push_back(std::move(*env));
    NoteStashed();
  }
}

std::optional<Envelope> Endpoint::RecvMatching(NodeId from, uint64_t tag,
                                               int kind) {
  return RecvWhere([&](const Envelope& env) {
    return env.from == from && env.tag == tag && env.kind == kind;
  });
}

std::optional<Envelope> Endpoint::RecvMatchingFor(NodeId from, uint64_t tag,
                                                  int kind,
                                                  double timeout_seconds) {
  return RecvWhere(
      [&](const Envelope& env) {
        return env.from == from && env.tag == tag && env.kind == kind;
      },
      timeout_seconds);
}

std::optional<Envelope> Endpoint::RecvFrom(NodeId from) {
  return RecvWhere([&](const Envelope& env) { return env.from == from; });
}

std::optional<Envelope> Endpoint::RecvFromFor(NodeId from,
                                              double timeout_seconds) {
  return RecvWhere([&](const Envelope& env) { return env.from == from; },
                   timeout_seconds);
}

std::optional<Envelope> Endpoint::RecvAny() {
  if (!stash_.empty()) {
    Envelope env = std::move(stash_.front());
    stash_.pop_front();
    NoteReceived(env);
    return env;
  }
  std::optional<Envelope> env = transport_->Recv(me_);
  if (env.has_value()) NoteReceived(*env);
  return env;
}

std::optional<Envelope> Endpoint::RecvAnyFor(double timeout_seconds) {
  if (!stash_.empty()) {
    Envelope env = std::move(stash_.front());
    stash_.pop_front();
    NoteReceived(env);
    return env;
  }
  std::optional<Envelope> env = transport_->RecvFor(me_, timeout_seconds);
  if (env.has_value()) NoteReceived(*env);
  return env;
}

std::optional<Envelope> Endpoint::RecvWhereFor(
    const std::function<bool(const Envelope&)>& match, double timeout_seconds) {
  return RecvWhere(match, timeout_seconds);
}

std::optional<Envelope> Endpoint::TryTakeStashed(
    const std::function<bool(const Envelope&)>& match) {
  for (auto it = stash_.begin(); it != stash_.end(); ++it) {
    if (match(*it)) {
      Envelope env = std::move(*it);
      stash_.erase(it);
      NoteReceived(env);
      return env;
    }
  }
  return std::nullopt;
}

size_t Endpoint::PurgeStash(const std::function<bool(const Envelope&)>& match) {
  const size_t before = stash_.size();
  stash_.erase(std::remove_if(stash_.begin(), stash_.end(),
                              [&](const Envelope& env) { return match(env); }),
               stash_.end());
  const size_t purged = before - stash_.size();
  if (purged > 0 && stash_purged_counter_ != nullptr) {
    stash_purged_counter_->Increment(static_cast<double>(purged));
  }
  return purged;
}

}  // namespace pr
