#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "comm/transport.h"
#include "common/status.h"

namespace pr {

/// Framed wire protocol for Envelopes (DESIGN.md §5g).
///
/// Every frame is preamble + header + payload, all little-endian:
///
///   preamble (16 bytes):
///     u32 magic          "PRW1"
///     u8  version        kWireVersion
///     u8  flags          payload-encoding tag (v2; a CompressionKind value:
///                        0 = raw fp32, 1 = fp16, 2 = int8, 3 = top-k).
///                        v1 frames carry 0 here and decode as raw fp32, so
///                        old streams stay readable.
///     u16 reserved       0
///     u32 header_bytes   size of the header section
///     u32 payload_floats number of 4-byte payload words following the
///                        header (encoded blobs count their words, so this
///                        is always the exact wire size)
///   header (header_bytes):
///     i32 to             destination node (frames self-describe routing,
///                        so connections need no hello handshake)
///     i32 from           sender node
///     u64 tag
///     i32 kind
///     u32 num_ints
///     i64 ints[num_ints]
///   payload (payload_floats * 4 bytes): raw IEEE-754 floats
///
/// The fixed preamble makes torn frames detectable: a reader that sees a
/// wrong magic/version, an inconsistent header_bytes, or an oversize length
/// treats the stream as corrupt and drops the connection; EOF mid-frame is a
/// torn frame (the peer died mid-write), distinct from a clean close at a
/// frame boundary.

inline constexpr uint32_t kWireMagic = 0x31575250u;  // "PRW1" little-endian
/// v2 repurposed the reserved flags byte as the payload-encoding tag.
/// Writers emit v2; readers accept v1 (whose flags byte must be 0, decoding
/// as raw fp32) and v2 (whose flags byte must be a known encoding tag).
inline constexpr uint8_t kWireVersion = 2;
inline constexpr uint8_t kWireMinVersion = 1;
inline constexpr size_t kWirePreambleBytes = 16;
inline constexpr size_t kWireHeaderFixedBytes = 24;
/// Caps reject absurd lengths before any allocation happens, so a corrupt
/// or hostile length field cannot OOM the receiver.
inline constexpr uint32_t kWireMaxInts = 1u << 16;
inline constexpr uint32_t kWireMaxPayloadFloats = 1u << 28;  // 1 GiB

/// Serialized preamble + header for a frame addressed to `to`. The payload
/// is deliberately not included: the send path writev()s this header block
/// and the Buffer's floats as two iovecs, so the payload is never copied.
std::vector<uint8_t> EncodeFrameHeader(NodeId to, const Envelope& env);

/// Whole frame including the payload bytes (tests/diagnostics; the copy is
/// the point of not using this on the hot path).
std::vector<uint8_t> EncodeFrame(NodeId to, const Envelope& env);

enum class WireDecode {
  kOk,        ///< one frame decoded, `consumed` bytes used
  kNeedMore,  ///< prefix of a valid frame; feed more bytes
  kCorrupt,   ///< bad magic/version or inconsistent/oversize lengths
};

/// Decodes one frame from `data`. On kOk fills to/env/consumed; on kCorrupt
/// `error` (optional) says what failed. Never reads past `size`.
WireDecode DecodeFrame(const uint8_t* data, size_t size, NodeId* to,
                       Envelope* env, size_t* consumed,
                       std::string* error = nullptr);

/// Writes one frame to `fd` with scatter/gather writev: one iovec for the
/// encoded header block, one aliasing the Buffer's floats. Retries partial
/// writes; no payload copy on this path.
Status WriteFrameFd(int fd, NodeId to, const Envelope& env);

/// Reads one frame from `fd`. The payload is read straight into a single
/// fresh allocation that becomes env->payload (no intermediate buffer).
/// Distinguishes stream endings:
///   Cancelled       clean EOF at a frame boundary (peer closed politely)
///   Unavailable     EOF or error mid-frame (torn frame: peer died)
///   InvalidArgument corrupt preamble/header (protocol violation)
Status ReadFrameFd(int fd, NodeId* to, Envelope* env);

}  // namespace pr
