#pragma once

#include <cstdint>
#include <vector>

#include "comm/transport.h"
#include "common/status.h"

namespace pr {

/// Collective operations over an explicit member list of an InProcTransport.
/// Every member must call the same collective with the same `members`,
/// `weights` and `tag`; `tag` isolates concurrent collectives (two parallel
/// partial-reduce groups use distinct tags).
///
/// These are the data-plane of the threaded P-Reduce runtime and are also
/// exercised standalone in tests/benchmarks as the reproduction of the
/// paper's "collective operation" substrate.

/// \brief Weighted all-reduce via a leader: members send their vectors to
/// members[0], which computes sum_j weights[j] * x_j and broadcasts the
/// result. Simple O(P * n) reference implementation used for validation and
/// for small groups.
///
/// `data` is this member's vector (length must agree across members) and is
/// overwritten with the weighted sum. `my_index` is this member's position
/// in `members`.
Status LeaderWeightedAllReduce(Endpoint* ep,
                               const std::vector<NodeId>& members,
                               const std::vector<double>& weights,
                               size_t my_index, uint64_t tag,
                               std::vector<float>* data);

/// \brief Bandwidth-optimal ring all-reduce (reduce-scatter + all-gather,
/// Patarasuk & Yuan) computing the weighted sum sum_j weights[j] * x_j.
///
/// Each member pre-scales its vector by its own weight, then the ring runs a
/// plain sum. 2(P-1) steps, each moving ~n/P floats per member.
Status RingWeightedAllReduce(Endpoint* ep, const std::vector<NodeId>& members,
                             const std::vector<double>& weights,
                             size_t my_index, uint64_t tag,
                             std::vector<float>* data);

/// \brief Broadcast from members[root_index] to the rest of `members`.
/// On the root, `data` is the payload; on others it is overwritten.
Status Broadcast(Endpoint* ep, const std::vector<NodeId>& members,
                 size_t my_index, size_t root_index, uint64_t tag,
                 std::vector<float>* data);

/// \brief Uniform-average all-reduce (weights = 1/P each), the classic
/// All-Reduce primitive, over the ring algorithm.
Status RingAverageAllReduce(Endpoint* ep, const std::vector<NodeId>& members,
                            size_t my_index, uint64_t tag,
                            std::vector<float>* data);

/// \brief Ring reduce-scatter: on return, `data`'s chunk
/// (my_index + 1) % P holds the element-wise sum over all members; other
/// chunks hold partial sums and must be treated as garbage. `chunk_begin` /
/// `chunk_end` receive this member's owned range.
Status RingReduceScatter(Endpoint* ep, const std::vector<NodeId>& members,
                         size_t my_index, uint64_t tag,
                         std::vector<float>* data, size_t* chunk_begin,
                         size_t* chunk_end);

/// \brief Ring all-gather: each member owns chunk (my_index + 1) % P of
/// `data` on entry; on return every member holds all chunks. Composes with
/// RingReduceScatter into an all-reduce (which is exactly how
/// RingWeightedAllReduce is built — these entry points expose the halves
/// for gradient-bucketing use cases).
Status RingAllGather(Endpoint* ep, const std::vector<NodeId>& members,
                     size_t my_index, uint64_t tag, std::vector<float>* data);

/// \brief Gather: every member sends its vector to members[root_index];
/// on the root, `gathered` receives P vectors in member order (empty
/// elsewhere).
Status Gather(Endpoint* ep, const std::vector<NodeId>& members,
              size_t my_index, size_t root_index, uint64_t tag,
              const std::vector<float>& data,
              std::vector<std::vector<float>>* gathered);

/// \brief Barrier over `members`: returns once every member has entered.
/// Implemented as a zero-payload ring circulation (2(P-1) messages).
Status RingBarrier(Endpoint* ep, const std::vector<NodeId>& members,
                   size_t my_index, uint64_t tag);

}  // namespace pr
