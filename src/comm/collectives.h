#pragma once

#include <cstdint>
#include <vector>

#include "comm/transport.h"
#include "common/status.h"

namespace pr {

class Compressor;

/// Collective operations over an explicit member list of an InProcTransport.
/// Every member must call the same collective with the same `members`,
/// `weights` and `tag`; `tag` isolates concurrent collectives (two parallel
/// partial-reduce groups use distinct tags).
///
/// These are the data-plane of the threaded P-Reduce runtime and are also
/// exercised standalone in tests/benchmarks as the reproduction of the
/// paper's "collective operation" substrate.

/// \brief Weighted all-reduce via a leader: members send their vectors to
/// members[0], which computes sum_j weights[j] * x_j and broadcasts the
/// result. Simple O(P * n) reference implementation used for validation and
/// for small groups.
///
/// `data` is this member's vector (length must agree across members) and is
/// overwritten with the weighted sum. `my_index` is this member's position
/// in `members`.
Status LeaderWeightedAllReduce(Endpoint* ep,
                               const std::vector<NodeId>& members,
                               const std::vector<double>& weights,
                               size_t my_index, uint64_t tag,
                               std::vector<float>* data);

/// \brief Bandwidth-optimal ring all-reduce (reduce-scatter + all-gather,
/// Patarasuk & Yuan) computing the weighted sum sum_j weights[j] * x_j.
///
/// Each member pre-scales its vector by its own weight, then the ring runs a
/// plain sum. 2(P-1) steps, each moving ~n/P floats per member. This is the
/// unsegmented reference schedule: every hop materializes a fresh payload
/// copy of the outgoing chunk.
Status RingWeightedAllReduce(Endpoint* ep, const std::vector<NodeId>& members,
                             const std::vector<double>& weights,
                             size_t my_index, uint64_t tag,
                             std::vector<float>* data);

/// Segment granularity (in floats) for the pipelined ring: 32Ki floats =
/// 128 KiB per message, small enough to overlap transfer of segment k with
/// accumulation of segment k-1, large enough to amortize envelope overhead.
inline constexpr size_t kDefaultSegmentFloats = size_t{1} << 15;

/// \brief Segmented, pipelined ring weighted all-reduce with buffer
/// forwarding.
///
/// Same schedule as RingWeightedAllReduce (pre-scale, reduce-scatter,
/// all-gather) but each chunk is split into fixed-size segments that flow
/// through the ring independently: the send of segment k overlaps the
/// receive+accumulate of segment k-1. Payload handles are *forwarded*, not
/// re-materialized — an intermediate hop accumulates its contribution into
/// the received Buffer in place (it is uniquely owned on arrival) and sends
/// the same handle on, so a full all-reduce performs one payload
/// materialization per own-chunk segment instead of one per hop. The
/// reduced owned-chunk buffers from the last reduce-scatter hop are retained
/// and re-circulated as the all-gather's first hop, making it zero-copy.
///
/// Bitwise-identical to RingWeightedAllReduce for the same members/weights:
/// the same additions happen in the same order per element (float addition
/// is commutative), and segmentation only splits the element ranges.
///
/// `data` may be null only when n == 0. Every chunk circulates at least one
/// (possibly empty) segment so the message schedule is uniform even when
/// n < P or n == 0.
Status SegmentedRingWeightedAllReduce(Endpoint* ep,
                                      const std::vector<NodeId>& members,
                                      const std::vector<double>& weights,
                                      size_t my_index, uint64_t tag,
                                      float* data, size_t n,
                                      size_t segment_floats =
                                          kDefaultSegmentFloats);

/// \brief Segmented ring all-reduce with per-hop payload compression
/// (DESIGN.md §5i). Same pipelined schedule as the uncompressed segmented
/// ring, but every hop's segment travels as `compressor`'s encoded blob:
/// reduce-scatter hops decode, accumulate their contribution, and re-encode
/// with error feedback; all-gather hops decode into place and forward the
/// *same* blob unchanged, so every member publishes bitwise-identical
/// values. Lossy by design — the per-worker error-feedback residual inside
/// `compressor` carries each encode's error into the worker's next encode
/// at the same element positions.
///
/// `compressor` must be enabled and is this member's private state (one per
/// worker, reused across reduces so residuals accumulate).
Status SegmentedRingCompressedAllReduce(Endpoint* ep,
                                        const std::vector<NodeId>& members,
                                        const std::vector<double>& weights,
                                        size_t my_index, uint64_t tag,
                                        float* data, size_t n,
                                        Compressor* compressor,
                                        size_t segment_floats =
                                            kDefaultSegmentFloats);

/// \brief The single dispatch point strategies use for a group's weighted
/// reduce. With no compressor (or a disabled one) this is the segmented
/// pipelined ring, bitwise-identical to the unsegmented reference; an
/// enabled compressor selects the compressed ring, which reuses the same
/// segmented schedule with encoded payloads.
Status GroupWeightedAllReduce(Endpoint* ep, const std::vector<NodeId>& members,
                              const std::vector<double>& weights,
                              size_t my_index, uint64_t tag, float* data,
                              size_t n, Compressor* compressor = nullptr);

/// Compatibility overload over a whole vector.
Status GroupWeightedAllReduce(Endpoint* ep, const std::vector<NodeId>& members,
                              const std::vector<double>& weights,
                              size_t my_index, uint64_t tag,
                              std::vector<float>* data,
                              Compressor* compressor = nullptr);

/// \brief Uniform-average (weights = 1/P) dispatch, the All-Reduce
/// strategy's entry point.
Status GroupAverageAllReduce(Endpoint* ep, const std::vector<NodeId>& members,
                             size_t my_index, uint64_t tag, float* data,
                             size_t n, Compressor* compressor = nullptr);

/// \brief Broadcast from members[root_index] to the rest of `members`.
/// On the root, `data` is the payload; on others it is overwritten.
Status Broadcast(Endpoint* ep, const std::vector<NodeId>& members,
                 size_t my_index, size_t root_index, uint64_t tag,
                 std::vector<float>* data);

/// \brief Uniform-average all-reduce (weights = 1/P each), the classic
/// All-Reduce primitive, over the ring algorithm.
Status RingAverageAllReduce(Endpoint* ep, const std::vector<NodeId>& members,
                            size_t my_index, uint64_t tag,
                            std::vector<float>* data);

/// \brief Ring reduce-scatter: on return, `data`'s chunk
/// (my_index + 1) % P holds the element-wise sum over all members; other
/// chunks hold partial sums and must be treated as garbage. `chunk_begin` /
/// `chunk_end` receive this member's owned range.
Status RingReduceScatter(Endpoint* ep, const std::vector<NodeId>& members,
                         size_t my_index, uint64_t tag,
                         std::vector<float>* data, size_t* chunk_begin,
                         size_t* chunk_end);

/// \brief Ring all-gather: each member owns chunk (my_index + 1) % P of
/// `data` on entry; on return every member holds all chunks. Composes with
/// RingReduceScatter into an all-reduce (which is exactly how
/// RingWeightedAllReduce is built — these entry points expose the halves
/// for gradient-bucketing use cases).
Status RingAllGather(Endpoint* ep, const std::vector<NodeId>& members,
                     size_t my_index, uint64_t tag, std::vector<float>* data);

/// \brief Gather: every member sends its vector to members[root_index];
/// on the root, `gathered` receives P shared payload handles in member
/// order (empty elsewhere). The root adopts each arriving Buffer instead of
/// materializing P full float-vector copies; callers needing a private
/// vector use Buffer::Take() per entry.
Status Gather(Endpoint* ep, const std::vector<NodeId>& members,
              size_t my_index, size_t root_index, uint64_t tag,
              const std::vector<float>& data, std::vector<Buffer>* gathered);

/// \brief Barrier over `members`: returns once every member has entered.
/// Implemented as a zero-payload ring circulation (2(P-1) messages).
Status RingBarrier(Endpoint* ep, const std::vector<NodeId>& members,
                   size_t my_index, uint64_t tag);

}  // namespace pr
