#include "comm/wire.h"

#include <errno.h>
#include <string.h>
#include <sys/uio.h>
#include <unistd.h>

#include <bit>
#include <cstring>

#include "common/check.h"
#include "compress/codec.h"

// The encoders below memcpy scalar values directly; the format is defined as
// little-endian, which every platform this repo targets is.
static_assert(std::endian::native == std::endian::little,
              "wire format assumes a little-endian host");

namespace pr {

namespace {

template <typename T>
void Put(std::vector<uint8_t>* out, T value) {
  const size_t at = out->size();
  out->resize(at + sizeof(T));
  std::memcpy(out->data() + at, &value, sizeof(T));
}

template <typename T>
T Get(const uint8_t* data) {
  T value;
  std::memcpy(&value, data, sizeof(T));
  return value;
}

bool Fail(std::string* error, const char* what) {
  if (error != nullptr) *error = what;
  return false;
}

/// Version bytes the readers accept (see kWireVersion in wire.h).
bool IsReadableVersion(uint8_t version) {
  return version >= kWireMinVersion && version <= kWireVersion;
}

/// Validates the preamble and returns the section sizes plus the payload
/// encoding tag. `false` means corrupt (outputs untouched); a too-short
/// `size` is signalled separately.
bool CheckPreamble(const uint8_t* data, uint32_t* header_bytes,
                   uint32_t* payload_floats, uint8_t* encoding,
                   std::string* error) {
  if (Get<uint32_t>(data) != kWireMagic) return Fail(error, "bad magic");
  if (!IsReadableVersion(data[4])) return Fail(error, "bad version");
  // v1 reserved the flags byte as zero; v2 made it the encoding tag. Either
  // way an unknown value means a torn or corrupt stream, not a raw payload.
  if (data[4] == 1) {
    if (data[5] != 0) return Fail(error, "bad flags");
  } else if (!IsValidEncodingTag(data[5])) {
    return Fail(error, "bad payload encoding");
  }
  *encoding = data[5];
  const uint32_t hb = Get<uint32_t>(data + 8);
  const uint32_t pf = Get<uint32_t>(data + 12);
  if (hb < kWireHeaderFixedBytes ||
      hb > kWireHeaderFixedBytes + 8ull * kWireMaxInts) {
    return Fail(error, "header_bytes out of range");
  }
  if ((hb - kWireHeaderFixedBytes) % 8 != 0) {
    return Fail(error, "header_bytes misaligned");
  }
  if (pf > kWireMaxPayloadFloats) return Fail(error, "payload oversize");
  *header_bytes = hb;
  *payload_floats = pf;
  return true;
}

}  // namespace

std::vector<uint8_t> EncodeFrameHeader(NodeId to, const Envelope& env) {
  PR_CHECK_LE(env.ints.size(), static_cast<size_t>(kWireMaxInts));
  PR_CHECK_LE(env.payload.size(), static_cast<size_t>(kWireMaxPayloadFloats));
  const uint32_t header_bytes = static_cast<uint32_t>(
      kWireHeaderFixedBytes + 8 * env.ints.size());
  std::vector<uint8_t> out;
  out.reserve(kWirePreambleBytes + header_bytes);
  PR_CHECK(IsValidEncodingTag(env.encoding));
  Put<uint32_t>(&out, kWireMagic);
  Put<uint8_t>(&out, kWireVersion);
  Put<uint8_t>(&out, env.encoding);  // flags byte = payload encoding tag
  Put<uint16_t>(&out, 0);            // reserved
  Put<uint32_t>(&out, header_bytes);
  Put<uint32_t>(&out, static_cast<uint32_t>(env.payload.size()));
  Put<int32_t>(&out, static_cast<int32_t>(to));
  Put<int32_t>(&out, static_cast<int32_t>(env.from));
  Put<uint64_t>(&out, env.tag);
  Put<int32_t>(&out, static_cast<int32_t>(env.kind));
  Put<uint32_t>(&out, static_cast<uint32_t>(env.ints.size()));
  for (int64_t v : env.ints) Put<int64_t>(&out, v);
  return out;
}

std::vector<uint8_t> EncodeFrame(NodeId to, const Envelope& env) {
  std::vector<uint8_t> out = EncodeFrameHeader(to, env);
  if (!env.payload.empty()) {
    const size_t at = out.size();
    out.resize(at + env.payload.size() * sizeof(float));
    std::memcpy(out.data() + at, env.payload.data(),
                env.payload.size() * sizeof(float));
  }
  return out;
}

WireDecode DecodeFrame(const uint8_t* data, size_t size, NodeId* to,
                       Envelope* env, size_t* consumed, std::string* error) {
  if (size < kWirePreambleBytes) {
    // Magic/version mismatches are detectable from the first bytes even in a
    // short prefix — reject early instead of waiting for more garbage.
    if (size >= 4 && Get<uint32_t>(data) != kWireMagic) {
      Fail(error, "bad magic");
      return WireDecode::kCorrupt;
    }
    if (size >= 5 && !IsReadableVersion(data[4])) {
      Fail(error, "bad version");
      return WireDecode::kCorrupt;
    }
    return WireDecode::kNeedMore;
  }
  uint32_t header_bytes = 0;
  uint32_t payload_floats = 0;
  uint8_t encoding = 0;
  if (!CheckPreamble(data, &header_bytes, &payload_floats, &encoding, error)) {
    return WireDecode::kCorrupt;
  }
  const size_t total = kWirePreambleBytes + header_bytes +
                       static_cast<size_t>(payload_floats) * sizeof(float);
  if (size < total) return WireDecode::kNeedMore;

  const uint8_t* h = data + kWirePreambleBytes;
  const uint32_t num_ints = Get<uint32_t>(h + 20);
  if (kWireHeaderFixedBytes + 8ull * num_ints != header_bytes) {
    Fail(error, "num_ints inconsistent with header_bytes");
    return WireDecode::kCorrupt;
  }
  *to = static_cast<NodeId>(Get<int32_t>(h));
  env->from = static_cast<NodeId>(Get<int32_t>(h + 4));
  env->tag = Get<uint64_t>(h + 8);
  env->kind = static_cast<int>(Get<int32_t>(h + 16));
  env->encoding = encoding;
  env->ints.resize(num_ints);
  for (uint32_t i = 0; i < num_ints; ++i) {
    env->ints[i] = Get<int64_t>(h + kWireHeaderFixedBytes + 8ull * i);
  }
  if (payload_floats > 0) {
    std::vector<float> payload(payload_floats);
    std::memcpy(payload.data(), data + kWirePreambleBytes + header_bytes,
                static_cast<size_t>(payload_floats) * sizeof(float));
    env->payload = Buffer::FromVector(std::move(payload));
  } else {
    env->payload = Buffer();
  }
  *consumed = total;
  return WireDecode::kOk;
}

Status WriteFrameFd(int fd, NodeId to, const Envelope& env) {
  const std::vector<uint8_t> header = EncodeFrameHeader(to, env);
  struct iovec iov[2];
  iov[0].iov_base = const_cast<uint8_t*>(header.data());
  iov[0].iov_len = header.size();
  // Aliases the shared Buffer block directly — the payload floats are never
  // copied on the send path; writev gathers them from their home allocation.
  iov[1].iov_base = const_cast<float*>(env.payload.data());
  iov[1].iov_len = env.payload.size() * sizeof(float);
  int iovcnt = env.payload.empty() ? 1 : 2;
  struct iovec* cur = iov;
  while (iovcnt > 0) {
    const ssize_t n = ::writev(fd, cur, iovcnt);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("writev: ") + strerror(errno));
    }
    size_t left = static_cast<size_t>(n);
    while (iovcnt > 0 && left >= cur->iov_len) {
      left -= cur->iov_len;
      ++cur;
      --iovcnt;
    }
    if (iovcnt > 0) {
      cur->iov_base = static_cast<uint8_t*>(cur->iov_base) + left;
      cur->iov_len -= left;
    }
  }
  return Status::OK();
}

namespace {

/// Reads exactly `n` bytes. `*got` reports progress so the caller can tell a
/// clean EOF (got == 0 on the first section) from a torn frame.
Status ReadExact(int fd, uint8_t* out, size_t n, size_t* got) {
  *got = 0;
  while (*got < n) {
    const ssize_t r = ::read(fd, out + *got, n - *got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("read: ") + strerror(errno));
    }
    if (r == 0) return Status::Unavailable("eof");
    *got += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

Status ReadFrameFd(int fd, NodeId* to, Envelope* env) {
  uint8_t preamble[kWirePreambleBytes];
  size_t got = 0;
  Status status = ReadExact(fd, preamble, kWirePreambleBytes, &got);
  if (!status.ok()) {
    if (got == 0) return Status::Cancelled("connection closed");
    return Status::Unavailable("torn frame: eof in preamble");
  }
  uint32_t header_bytes = 0;
  uint32_t payload_floats = 0;
  uint8_t encoding = 0;
  std::string why;
  if (!CheckPreamble(preamble, &header_bytes, &payload_floats, &encoding,
                     &why)) {
    return Status::InvalidArgument("corrupt frame: " + why);
  }
  std::vector<uint8_t> header(header_bytes);
  status = ReadExact(fd, header.data(), header_bytes, &got);
  if (!status.ok()) return Status::Unavailable("torn frame: eof in header");
  const uint32_t num_ints = Get<uint32_t>(header.data() + 20);
  if (kWireHeaderFixedBytes + 8ull * num_ints != header_bytes) {
    return Status::InvalidArgument(
        "corrupt frame: num_ints inconsistent with header_bytes");
  }
  *to = static_cast<NodeId>(Get<int32_t>(header.data()));
  env->from = static_cast<NodeId>(Get<int32_t>(header.data() + 4));
  env->tag = Get<uint64_t>(header.data() + 8);
  env->kind = static_cast<int>(Get<int32_t>(header.data() + 16));
  env->encoding = encoding;
  env->ints.resize(num_ints);
  for (uint32_t i = 0; i < num_ints; ++i) {
    env->ints[i] =
        Get<int64_t>(header.data() + kWireHeaderFixedBytes + 8ull * i);
  }
  if (payload_floats > 0) {
    // Single allocation: the vector that will back the Buffer is the read
    // destination, so the floats land in their final home directly.
    std::vector<float> payload(payload_floats);
    status = ReadExact(fd, reinterpret_cast<uint8_t*>(payload.data()),
                       static_cast<size_t>(payload_floats) * sizeof(float),
                       &got);
    if (!status.ok()) return Status::Unavailable("torn frame: eof in payload");
    env->payload = Buffer::FromVector(std::move(payload));
  } else {
    env->payload = Buffer();
  }
  return Status::OK();
}

}  // namespace pr
