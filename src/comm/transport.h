#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/blocking_queue.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pr {

/// Worker identifier within a communication world. The controller, when
/// present, occupies a dedicated id outside the worker range.
using NodeId = int;

/// \brief A typed, tagged message between nodes.
///
/// `tag` disambiguates concurrent conversations (e.g. two parallel partial
/// reduce groups, or the steps of a ring all-reduce); `kind` is a small
/// application-defined discriminator; `floats` carries tensor payloads and
/// `ints` carries control fields. This flat structure keeps the transport
/// free of knowledge about upper layers.
struct Envelope {
  NodeId from = -1;
  uint64_t tag = 0;
  int kind = 0;
  std::vector<int64_t> ints;
  std::vector<float> floats;
};

/// \brief An in-process, thread-safe message-passing fabric.
///
/// Stands in for the paper's Gloo/TCP transport: `num_nodes` endpoints with
/// unbounded FIFO mailboxes. Sends never block (unbounded queues), so
/// collective algorithms written in send-then-receive order cannot deadlock.
/// Messages between a given pair of nodes are delivered in send order.
class InProcTransport {
 public:
  explicit InProcTransport(int num_nodes);

  int num_nodes() const { return num_nodes_; }

  /// Delivers `env` (with from/tag/kind already set by the caller via the
  /// Endpoint wrapper) to node `to`. Returns FailedPrecondition after
  /// Shutdown().
  Status Send(NodeId to, Envelope env);

  /// Blocking receive of the next mailbox message for `me`; nullopt after
  /// Shutdown() once drained.
  std::optional<Envelope> Recv(NodeId me);

  /// Non-blocking receive.
  std::optional<Envelope> TryRecv(NodeId me);

  /// Closes every mailbox, waking all blocked receivers.
  void Shutdown();

 private:
  int num_nodes_;
  std::vector<std::unique_ptr<BlockingQueue<Envelope>>> mailboxes_;
};

/// \brief A node's view of the transport with out-of-order stashing.
///
/// Collectives need *selective* receive ("the step-3 chunk from my left
/// neighbour in group 17"), but mailboxes are plain FIFOs; Endpoint buffers
/// non-matching messages locally and replays them to later matching calls.
/// One Endpoint instance per node thread; not itself thread-safe.
class Endpoint {
 public:
  Endpoint(InProcTransport* transport, NodeId me);

  NodeId id() const { return me_; }

  /// Attaches observability sinks (all optional; pass null to skip).
  ///
  /// `metrics` receives `transport.messages_sent` / `transport.messages_received`
  /// counters and the `transport.stash_high_water` gauge; when `scope` is
  /// non-empty, a per-endpoint `<scope>.stash_high_water` gauge is published
  /// too (e.g. scope "worker.3"). `trace` gets a kStashHighWater event
  /// stamped with `now()` each time the stash grows to a new maximum.
  /// Call before the endpoint's thread starts receiving.
  void AttachObservers(MetricsShard* metrics, const std::string& scope,
                       TraceRecorder* trace, std::function<double()> now);

  /// Sends a message to `to`.
  Status Send(NodeId to, uint64_t tag, int kind, std::vector<int64_t> ints,
              std::vector<float> floats);

  /// Blocks until a message with matching (from, tag, kind) arrives,
  /// stashing anything else. Returns nullopt if the transport shuts down
  /// first.
  std::optional<Envelope> RecvMatching(NodeId from, uint64_t tag, int kind);

  /// Blocks until a message *from* `from` arrives (any tag/kind), stashing
  /// everything else. Lets a worker wait on the controller while data-plane
  /// chunks from concurrent collectives pile up safely in the stash.
  std::optional<Envelope> RecvFrom(NodeId from);

  /// Blocks for any message (stash first, then mailbox).
  std::optional<Envelope> RecvAny();

  /// Messages currently parked out-of-order. A persistently growing stash
  /// means some sender's messages are never selected — usually a protocol
  /// bug (wrong tag/kind, or a peer that exited mid-conversation).
  size_t stash_size() const { return stash_.size(); }

  /// Largest stash size ever observed on this endpoint.
  size_t stash_high_water() const { return stash_high_water_; }

 private:
  /// Blocks until a message satisfying `match` arrives, checking the stash
  /// in one pass first and parking every non-matching mailbox message.
  std::optional<Envelope> RecvWhere(
      const std::function<bool(const Envelope&)>& match);

  void NoteStashed();
  void NoteReceived();

  InProcTransport* transport_;
  NodeId me_;
  // Deque: RecvAny pops the oldest parked message in O(1); selective
  // receives scan front-to-back, preserving per-sender FIFO order.
  std::deque<Envelope> stash_;
  size_t stash_high_water_ = 0;

  // Observability sinks (null unless AttachObservers was called).
  Counter* sent_counter_ = nullptr;
  Counter* received_counter_ = nullptr;
  Gauge* stash_gauge_ = nullptr;
  Gauge* scoped_stash_gauge_ = nullptr;
  TraceRecorder* trace_ = nullptr;
  std::function<double()> now_;
};

}  // namespace pr
