#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/blocking_queue.h"
#include "common/buffer.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pr {

/// Worker identifier within a communication world. The controller, when
/// present, occupies a dedicated id outside the worker range.
using NodeId = int;

/// \brief A typed, tagged message between nodes.
///
/// `tag` disambiguates concurrent conversations (e.g. two parallel partial
/// reduce groups, or the steps of a ring all-reduce); `kind` is a small
/// application-defined discriminator; `payload` carries tensor data as a
/// shared, immutable-while-shared Buffer handle and `ints` carries control
/// fields. Copying an Envelope (a broadcast fan-out, a FaultyTransport
/// duplication, a delay-queue entry) bumps the payload's refcount instead of
/// cloning the floats. This flat structure keeps the transport free of
/// knowledge about upper layers.
struct Envelope {
  NodeId from = -1;
  uint64_t tag = 0;
  int kind = 0;
  std::vector<int64_t> ints;
  Buffer payload;
  /// Payload-encoding tag (a CompressionKind value): 0 = raw fp32 floats,
  /// anything else marks `payload` as an encoded blob whose floats are raw
  /// 4-byte words of the named codec's format. Travels in the flags byte of
  /// the PRW1 v2 preamble; transports and decorators pass it through
  /// untouched.
  uint8_t encoding = 0;
};

/// \brief The message fabric seen by endpoints, collectives, and both
/// engines.
///
/// Extracted from the concrete in-process implementation so decorators (the
/// fault-injecting transport in src/fault) can wrap a fabric without the
/// upper layers noticing. Implementations must be thread-safe: any thread
/// may Send, each node's Recv side is typically one thread.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual int num_nodes() const = 0;

  /// Delivers `env` (with from/tag/kind already set by the caller via the
  /// Endpoint wrapper) to node `to`. Returns FailedPrecondition after
  /// Shutdown().
  virtual Status Send(NodeId to, Envelope env) = 0;

  /// Blocking receive of the next mailbox message for `me`; nullopt after
  /// Shutdown() once drained.
  virtual std::optional<Envelope> Recv(NodeId me) = 0;

  /// Bounded-wait receive: nullopt on timeout as well as after shutdown;
  /// callers distinguish via closed().
  virtual std::optional<Envelope> RecvFor(NodeId me,
                                          double timeout_seconds) = 0;

  /// Non-blocking receive.
  virtual std::optional<Envelope> TryRecv(NodeId me) = 0;

  /// True once Shutdown() has been called.
  virtual bool closed() const = 0;

  /// Closes every mailbox, waking all blocked receivers.
  virtual void Shutdown() = 0;
};

/// \brief An in-process, thread-safe message-passing fabric.
///
/// Stands in for the paper's Gloo/TCP transport: `num_nodes` endpoints with
/// unbounded FIFO mailboxes. Sends never block (unbounded queues), so
/// collective algorithms written in send-then-receive order cannot deadlock.
/// Messages between a given pair of nodes are delivered in send order.
class InProcTransport : public Transport {
 public:
  explicit InProcTransport(int num_nodes);

  int num_nodes() const override { return num_nodes_; }
  Status Send(NodeId to, Envelope env) override;
  std::optional<Envelope> Recv(NodeId me) override;
  std::optional<Envelope> RecvFor(NodeId me, double timeout_seconds) override;
  std::optional<Envelope> TryRecv(NodeId me) override;
  bool closed() const override {
    return closed_.load(std::memory_order_acquire);
  }
  void Shutdown() override;

 private:
  int num_nodes_;
  std::vector<std::unique_ptr<BlockingQueue<Envelope>>> mailboxes_;
  std::atomic<bool> closed_{false};
};

/// \brief A node's view of the transport with out-of-order stashing.
///
/// Collectives need *selective* receive ("the step-3 chunk from my left
/// neighbour in group 17"), but mailboxes are plain FIFOs; Endpoint buffers
/// non-matching messages locally and replays them to later matching calls.
/// One Endpoint instance per node thread; not itself thread-safe.
class Endpoint {
 public:
  Endpoint(Transport* transport, NodeId me);

  NodeId id() const { return me_; }

  /// True once the underlying transport has shut down — how callers of the
  /// timed receives tell a timeout (peer silent, retry/escalate) from a
  /// closed fabric (run over, unwind).
  bool closed() const { return transport_->closed(); }

  /// Attaches observability sinks (all optional; pass null to skip).
  ///
  /// `metrics` receives the `transport.messages_sent` /
  /// `transport.messages_received` / `transport.bytes_sent` /
  /// `transport.bytes_received` / `transport.payload_copies` /
  /// `transport.stash_purged` counters and
  /// the `transport.stash_high_water` gauge; when `scope` is non-empty, a
  /// per-endpoint `<scope>.stash_high_water` gauge is published too (e.g.
  /// scope "worker.3"). `trace` gets a kStashHighWater event stamped with
  /// `now()` each time the stash grows to a new maximum. Call before the
  /// endpoint's thread starts receiving.
  void AttachObservers(MetricsShard* metrics, const std::string& scope,
                       TraceRecorder* trace, std::function<double()> now);

  /// Detaches the observers and zeroes the per-endpoint stash diagnostics
  /// (high-water mark). A long-lived endpoint being handed from one run's
  /// metrics scope to the next (a pool worker picking up its next job) must
  /// call this between AttachObservers calls — otherwise the previous job's
  /// high-water is re-published into the new job's gauges at attach time and
  /// the new tenant is charged for the old tenant's backlog. Stashed
  /// *messages* are not touched; purge those separately, while the scope the
  /// purge should be charged to is still attached.
  void ResetDiagnostics();

  /// Installs the topology hook behind `transport.inter_node_bytes`:
  /// payload bytes sent to a peer `is_inter` classifies as off-node are
  /// counted separately from total bytes_sent. The transport layer stays
  /// topology-free — the runtime captures its Topology in the closure.
  /// Cleared by ResetDiagnostics.
  void SetInterNodeClassifier(std::function<bool(NodeId)> is_inter);

  /// Sends a message carrying a shared payload handle. This is the zero-copy
  /// path: the buffer's refcount is bumped, nothing is cloned, and
  /// `transport.payload_copies` does not move.
  Status Send(NodeId to, uint64_t tag, int kind, std::vector<int64_t> ints,
              Buffer payload);

  /// Send with an explicit payload-encoding tag (see Envelope::encoding):
  /// `payload` is an encoded blob, and `transport.bytes_sent` counts its
  /// encoded size — the actual bytes on the wire — not the element count it
  /// decodes to.
  Status Send(NodeId to, uint64_t tag, int kind, std::vector<int64_t> ints,
              Buffer payload, uint8_t encoding);

  /// Convenience overload adopting a float vector as the payload (a move,
  /// not a memcpy). Counted as one payload materialization: callers on this
  /// path built a fresh vector for the send, which is exactly the cost the
  /// `transport.payload_copies` counter makes visible.
  Status Send(NodeId to, uint64_t tag, int kind, std::vector<int64_t> ints,
              std::vector<float> floats);

  /// Payload-free control message.
  Status Send(NodeId to, uint64_t tag, int kind, std::vector<int64_t> ints) {
    return Send(to, tag, kind, std::move(ints), Buffer());
  }

  /// Copies `n` floats into a fresh Buffer and counts the materialization.
  /// The broadcast pattern is one MakePayload + P shared-handle Sends, so
  /// `transport.payload_copies` per broadcast is O(1) instead of O(P).
  Buffer MakePayload(const float* data, size_t n);

  /// Blocks until a message with matching (from, tag, kind) arrives,
  /// stashing anything else. Returns nullopt if the transport shuts down
  /// first.
  std::optional<Envelope> RecvMatching(NodeId from, uint64_t tag, int kind);

  /// Deadline variant of RecvMatching: additionally returns nullopt once
  /// `timeout_seconds` elapse with no matching message (non-matching
  /// arrivals are stashed as usual and do not reset the deadline). Callers
  /// tell timeout from shutdown via closed(). This is the primitive under
  /// the data-plane retry/escalation loop: a worker stuck waiting on a dead
  /// group peer wakes up here and escalates to the controller instead of
  /// blocking forever.
  std::optional<Envelope> RecvMatchingFor(NodeId from, uint64_t tag, int kind,
                                          double timeout_seconds);

  /// Blocks until a message *from* `from` arrives (any tag/kind), stashing
  /// everything else. Lets a worker wait on the controller while data-plane
  /// chunks from concurrent collectives pile up safely in the stash.
  std::optional<Envelope> RecvFrom(NodeId from);

  /// Deadline variant of RecvFrom (same timeout semantics as
  /// RecvMatchingFor).
  std::optional<Envelope> RecvFromFor(NodeId from, double timeout_seconds);

  /// Blocks for any message (stash first, then mailbox).
  std::optional<Envelope> RecvAny();

  /// Deadline variant of RecvAny.
  std::optional<Envelope> RecvAnyFor(double timeout_seconds);

  /// Fully general deadline receive: blocks until a message satisfying
  /// `match` arrives (stash first, parking non-matches), or the deadline
  /// passes. The fault-tolerant ring reduce uses this to match on payload
  /// fields (the step counter) so duplicated chunks cannot be mistaken for
  /// the next step's.
  std::optional<Envelope> RecvWhereFor(
      const std::function<bool(const Envelope&)>& match,
      double timeout_seconds);

  /// Removes and returns the oldest stashed message satisfying `match`
  /// without touching the mailbox. Lets a blocked conversation notice
  /// out-of-band control messages (e.g. a group abort) that were parked by
  /// an earlier selective receive.
  std::optional<Envelope> TryTakeStashed(
      const std::function<bool(const Envelope&)>& match);

  /// Drops every stashed message satisfying `match`; returns how many were
  /// dropped and counts them in `transport.stash_purged`. Recovery hygiene:
  /// after a group abort, the aborted conversation's chunks would otherwise
  /// rot in the stash forever.
  size_t PurgeStash(const std::function<bool(const Envelope&)>& match);

  /// Drops every stashed message sent by `peer`. Called on a peer-death
  /// notification (eviction broadcast, severed connection): a dead peer's
  /// parked chunks can never be selected again, so without this the deque
  /// grows until run end.
  size_t PurgeStashFrom(NodeId peer) {
    return PurgeStash(
        [peer](const Envelope& env) { return env.from == peer; });
  }

  /// Messages currently parked out-of-order. A persistently growing stash
  /// means some sender's messages are never selected — usually a protocol
  /// bug (wrong tag/kind, or a peer that exited mid-conversation).
  size_t stash_size() const { return stash_.size(); }

  /// Largest stash size ever observed on this endpoint.
  size_t stash_high_water() const { return stash_high_water_; }

 private:
  /// Blocks until a message satisfying `match` arrives, checking the stash
  /// in one pass first and parking every non-matching mailbox message.
  /// A negative `timeout_seconds` means no deadline.
  std::optional<Envelope> RecvWhere(
      const std::function<bool(const Envelope&)>& match,
      double timeout_seconds = -1.0);

  void NoteStashed();
  void NoteReceived(const Envelope& env);

  Transport* transport_;
  NodeId me_;
  // Deque: RecvAny pops the oldest parked message in O(1); selective
  // receives scan front-to-back, preserving per-sender FIFO order.
  std::deque<Envelope> stash_;
  size_t stash_high_water_ = 0;

  // Observability sinks (null unless AttachObservers was called).
  Counter* sent_counter_ = nullptr;
  Counter* received_counter_ = nullptr;
  Counter* bytes_sent_counter_ = nullptr;
  Counter* bytes_received_counter_ = nullptr;
  Counter* payload_copies_counter_ = nullptr;
  Counter* stash_purged_counter_ = nullptr;
  Counter* inter_node_bytes_counter_ = nullptr;
  std::function<bool(NodeId)> is_inter_node_;
  Gauge* stash_gauge_ = nullptr;
  Gauge* scoped_stash_gauge_ = nullptr;
  TraceRecorder* trace_ = nullptr;
  std::function<double()> now_;
};

}  // namespace pr
