#include "comm/socket_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <stdio.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "comm/wire.h"
#include "common/check.h"

namespace pr {

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SleepFor(double seconds) {
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

SocketTransport::SocketTransport(const SocketConfig& config,
                                 std::vector<NodeId> local_nodes,
                                 int num_nodes)
    : config_(config), local_nodes_(std::move(local_nodes)),
      num_nodes_(num_nodes) {
  PR_CHECK_GE(num_nodes_, 1);
  PR_CHECK(!config_.dir.empty());
  inboxes_.resize(static_cast<size_t>(num_nodes_));
  for (NodeId id : local_nodes_) {
    PR_CHECK_GE(id, 0);
    PR_CHECK_LT(id, num_nodes_);
    PR_CHECK(inboxes_[static_cast<size_t>(id)] == nullptr);
    inboxes_[static_cast<size_t>(id)] =
        std::make_unique<BlockingQueue<Envelope>>();
  }
  peers_.resize(static_cast<size_t>(num_nodes_));
  for (auto& p : peers_) p = std::make_unique<Peer>();
}

SocketTransport::~SocketTransport() { Shutdown(); }

bool SocketTransport::is_local(NodeId id) const {
  return id >= 0 && id < num_nodes_ &&
         inboxes_[static_cast<size_t>(id)] != nullptr;
}

std::string SocketTransport::AddressPath(NodeId id) const {
  return config_.dir + "/node-" + std::to_string(id) +
         (config_.tcp ? ".port" : ".sock");
}

Status SocketTransport::BindListener(NodeId id, int* out_fd) {
  const std::string path = AddressPath(id);
  int fd = -1;
  if (!config_.tcp) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Status::Internal("socket: " + std::string(strerror(errno)));
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    PR_CHECK_LT(path.size(), sizeof(addr.sun_path));
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ::unlink(path.c_str());  // stale socket from a previous incarnation
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(fd);
      return Status::Internal("bind " + path + ": " + strerror(errno));
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Status::Internal("socket: " + std::string(strerror(errno)));
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = ::inet_addr(config_.host.c_str());
    addr.sin_port = 0;  // ephemeral; advertised via the port file
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(fd);
      return Status::Internal("bind: " + std::string(strerror(errno)));
    }
  }
  if (::listen(fd, 128) < 0) {
    ::close(fd);
    return Status::Internal("listen: " + std::string(strerror(errno)));
  }
  if (config_.tcp) {
    struct sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) <
        0) {
      ::close(fd);
      return Status::Internal("getsockname: " + std::string(strerror(errno)));
    }
    // Atomic advertise: dialers must never read a half-written port file.
    const std::string tmp = path + ".tmp";
    FILE* f = ::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
      ::close(fd);
      return Status::Internal("open " + tmp + ": " + strerror(errno));
    }
    ::fprintf(f, "%d\n", static_cast<int>(ntohs(bound.sin_port)));
    ::fclose(f);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
      ::close(fd);
      return Status::Internal("rename " + path + ": " + strerror(errno));
    }
  }
  *out_fd = fd;
  return Status::OK();
}

Status SocketTransport::Start() {
  PR_CHECK(!started_.load());
  // A peer dying mid-conversation must surface as a failed write, not a
  // process-killing SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);
  listen_fds_.resize(local_nodes_.size(), -1);
  for (size_t i = 0; i < local_nodes_.size(); ++i) {
    Status status = BindListener(local_nodes_[i], &listen_fds_[i]);
    if (!status.ok()) return status;
  }
  for (size_t i = 0; i < local_nodes_.size(); ++i) {
    accept_threads_.emplace_back(&SocketTransport::AcceptLoop, this,
                                 local_nodes_[i], listen_fds_[i]);
  }
  started_.store(true);
  return Status::OK();
}

void SocketTransport::RegisterConnFd(int fd) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  conn_fds_.push_back(fd);
  conn_threads_.emplace_back(&SocketTransport::ReadLoop, this, fd);
}

void SocketTransport::AcceptLoop(NodeId id, int listen_fd) {
  (void)id;
  while (!closed_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener shut down (or unrecoverable)
    }
    if (closed_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    if (config_.tcp) SetNoDelay(fd);
    RegisterConnFd(fd);
  }
}

void SocketTransport::ReadLoop(int fd) {
  while (true) {
    NodeId to = -1;
    Envelope env;
    Status status = ReadFrameFd(fd, &to, &env);
    if (!status.ok()) {
      // Clean close (Cancelled) is normal teardown. Anything else is a torn
      // frame or corruption: the peer died mid-write or the stream is
      // garbage. Either way the connection is done; the peer's silence is
      // what upper layers (leases) react to.
      if (status.code() != StatusCode::kCancelled &&
          !closed_.load(std::memory_order_acquire)) {
        torn_frames_.fetch_add(1);
      }
      return;
    }
    frames_received_.fetch_add(1);
    if (!is_local(to)) {
      misroutes_.fetch_add(1);
      continue;
    }
    inboxes_[static_cast<size_t>(to)]->Push(std::move(env));
  }
}

double JitteredBackoff(double base_seconds, double jitter_fraction,
                       uint64_t salt, uint64_t attempt) {
  if (base_seconds <= 0.0) return 0.0;
  double j = jitter_fraction;
  if (j < 0.0) j = 0.0;
  if (j >= 1.0) j = 0.999;
  if (j == 0.0) return base_seconds;
  // splitmix64 finalizer over (salt, attempt): pure, no shared RNG state.
  uint64_t x = salt * 0x9e3779b97f4a7c15ULL + attempt + 1;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  const double u = static_cast<double>(x >> 11) * 0x1.0p-53;  // [0, 1)
  return base_seconds * (1.0 - j + 2.0 * j * u);
}

uint64_t SocketTransport::JitterSalt(NodeId to) const {
  const uint64_t me =
      local_nodes_.empty() ? 0 : static_cast<uint64_t>(local_nodes_[0]);
  return (me << 32) ^ static_cast<uint64_t>(static_cast<uint32_t>(to));
}

int SocketTransport::DialWithRetry(NodeId to, double window_seconds) {
  const std::string path = AddressPath(to);
  const double start = Now();
  const uint64_t salt = JitterSalt(to);
  uint64_t attempt = 0;
  double backoff = config_.backoff_initial_seconds;
  while (true) {
    if (closed_.load(std::memory_order_acquire)) return -1;
    int fd = -1;
    if (!config_.tcp) {
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd >= 0) {
        struct sockaddr_un addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sun_family = AF_UNIX;
        PR_CHECK_LT(path.size(), sizeof(addr.sun_path));
        std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
        if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
          dials_.fetch_add(1);
          return fd;
        }
        ::close(fd);
      }
    } else {
      int port = -1;
      if (FILE* f = ::fopen(path.c_str(), "r")) {
        if (::fscanf(f, "%d", &port) != 1) port = -1;
        ::fclose(f);
      }
      if (port > 0) {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd >= 0) {
          struct sockaddr_in addr;
          std::memset(&addr, 0, sizeof(addr));
          addr.sin_family = AF_INET;
          addr.sin_addr.s_addr = ::inet_addr(config_.host.c_str());
          addr.sin_port = htons(static_cast<uint16_t>(port));
          if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                        sizeof(addr)) == 0) {
            SetNoDelay(fd);
            dials_.fetch_add(1);
            return fd;
          }
          ::close(fd);
        }
      }
    }
    const double left = window_seconds - (Now() - start);
    if (left <= 0.0) return -1;
    SleepFor(std::min(
        JitteredBackoff(backoff, config_.backoff_jitter, salt, attempt++),
        left));
    backoff = std::min(backoff * 2.0, config_.backoff_max_seconds);
  }
}

void SocketTransport::MarkPeerDown(Peer* peer, NodeId to) {
  peer->backoff = peer->backoff <= 0.0
                      ? config_.backoff_initial_seconds
                      : std::min(peer->backoff * 2.0,
                                 config_.backoff_max_seconds);
  peer->down_until =
      Now() + JitteredBackoff(peer->backoff, config_.backoff_jitter,
                              JitterSalt(to), ++peer->down_attempts);
}

bool SocketTransport::EnsureConnected(Peer* peer, NodeId to) {
  if (peer->fd >= 0) return true;
  if (closed_.load(std::memory_order_acquire)) return false;
  if (Now() < peer->down_until) return false;
  // Rendezvous gets the long window (processes start in any order); a peer
  // that was connected and then lost gets a single fast attempt — dead hosts
  // must look silent, and the per-peer backoff paces later retries.
  const double window =
      peer->ever_connected ? config_.redial_window_seconds
                           : config_.connect_window_seconds;
  const int fd = DialWithRetry(to, window);
  if (fd < 0) {
    MarkPeerDown(peer, to);
    return false;
  }
  if (peer->ever_connected) reconnects_.fetch_add(1);
  peer->ever_connected = true;
  peer->backoff = 0.0;
  peer->down_until = 0.0;
  peer->down_attempts = 0;
  peer->fd = fd;
  return true;
}

Status SocketTransport::Send(NodeId to, Envelope env) {
  if (to < 0 || to >= num_nodes_) {
    return Status::InvalidArgument("Send: node id out of range");
  }
  if (closed_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("Send: transport is shut down");
  }
  if (is_local(to)) {
    if (!inboxes_[static_cast<size_t>(to)]->Push(std::move(env))) {
      return Status::FailedPrecondition("Send: transport is shut down");
    }
    return Status::OK();
  }
  Peer* peer = peers_[static_cast<size_t>(to)].get();
  std::lock_guard<std::mutex> lock(peer->mu);
  if (!EnsureConnected(peer, to)) {
    send_drops_.fetch_add(1);
    return Status::OK();  // dead host: drop silently, leases do the rest
  }
  Status status = WriteFrameFd(peer->fd, to, env);
  if (status.ok()) return Status::OK();
  // Broken mid-write. One immediate redial+rewrite handles the benign case
  // (peer restarted between our sends); failing that, drop and back off.
  ::close(peer->fd);
  peer->fd = -1;
  if (EnsureConnected(peer, to)) {
    status = WriteFrameFd(peer->fd, to, env);
    if (status.ok()) return Status::OK();
    ::close(peer->fd);
    peer->fd = -1;
  }
  MarkPeerDown(peer, to);
  send_drops_.fetch_add(1);
  return Status::OK();
}

std::optional<Envelope> SocketTransport::Recv(NodeId me) {
  PR_CHECK(is_local(me));
  return inboxes_[static_cast<size_t>(me)]->Pop();
}

std::optional<Envelope> SocketTransport::RecvFor(NodeId me,
                                                 double timeout_seconds) {
  PR_CHECK(is_local(me));
  return inboxes_[static_cast<size_t>(me)]->PopFor(timeout_seconds);
}

std::optional<Envelope> SocketTransport::TryRecv(NodeId me) {
  PR_CHECK(is_local(me));
  return inboxes_[static_cast<size_t>(me)]->TryPop();
}

void SocketTransport::Shutdown() {
  {
    bool expected = false;
    if (!closed_.compare_exchange_strong(expected, true)) {
      // Another caller won the race; wait for its teardown to finish so the
      // destructor never returns with threads still running.
      std::lock_guard<std::mutex> lock(shutdown_mu_);
      return;
    }
  }
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  for (auto& box : inboxes_) {
    if (box) box->Close();
  }
  for (int fd : listen_fds_) {
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& t : accept_threads_) {
    if (t.joinable()) t.join();
  }
  accept_threads_.clear();
  {
    std::lock_guard<std::mutex> conn_lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  conn_threads_.clear();
  for (int fd : conn_fds_) ::close(fd);
  conn_fds_.clear();
  for (int fd : listen_fds_) {
    if (fd >= 0) ::close(fd);
  }
  listen_fds_.clear();
  for (auto& peer : peers_) {
    std::lock_guard<std::mutex> peer_lock(peer->mu);
    if (peer->fd >= 0) {
      ::shutdown(peer->fd, SHUT_RDWR);
      ::close(peer->fd);
      peer->fd = -1;
    }
  }
  if (!config_.tcp) {
    for (NodeId id : local_nodes_) ::unlink(AddressPath(id).c_str());
  }
}

SocketFabric::SocketFabric(const SocketConfig& config, int num_nodes)
    : num_nodes_(num_nodes) {
  nodes_.reserve(static_cast<size_t>(num_nodes));
  for (NodeId id = 0; id < num_nodes; ++id) {
    nodes_.push_back(
        std::make_unique<SocketTransport>(config, std::vector<NodeId>{id},
                                          num_nodes));
  }
}

Status SocketFabric::Start() {
  for (auto& node : nodes_) {
    Status status = node->Start();
    if (!status.ok()) return status;
  }
  return Status::OK();
}

SocketTransport* SocketFabric::node(NodeId id) {
  PR_CHECK_GE(id, 0);
  PR_CHECK_LT(id, num_nodes_);
  return nodes_[static_cast<size_t>(id)].get();
}

Status SocketFabric::Send(NodeId to, Envelope env) {
  const NodeId from = env.from;
  if (from < 0 || from >= num_nodes_) {
    return Status::InvalidArgument("Send: env.from out of range");
  }
  return nodes_[static_cast<size_t>(from)]->Send(to, std::move(env));
}

std::optional<Envelope> SocketFabric::Recv(NodeId me) {
  PR_CHECK_GE(me, 0);
  PR_CHECK_LT(me, num_nodes_);
  return nodes_[static_cast<size_t>(me)]->Recv(me);
}

std::optional<Envelope> SocketFabric::RecvFor(NodeId me,
                                              double timeout_seconds) {
  PR_CHECK_GE(me, 0);
  PR_CHECK_LT(me, num_nodes_);
  return nodes_[static_cast<size_t>(me)]->RecvFor(me, timeout_seconds);
}

std::optional<Envelope> SocketFabric::TryRecv(NodeId me) {
  PR_CHECK_GE(me, 0);
  PR_CHECK_LT(me, num_nodes_);
  return nodes_[static_cast<size_t>(me)]->TryRecv(me);
}

bool SocketFabric::closed() const { return nodes_[0]->closed(); }

void SocketFabric::Shutdown() {
  for (auto& node : nodes_) node->Shutdown();
}

}  // namespace pr
