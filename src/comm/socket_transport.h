#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "comm/transport.h"
#include "common/status.h"

namespace pr {

/// \brief Addressing and reconnect policy for the socket engine.
///
/// Rendezvous is directory-based: node `i` listens at `<dir>/node-<i>.sock`
/// (Unix-domain, the default) or binds an ephemeral TCP port advertised in
/// `<dir>/node-<i>.port`. Dialers retry inside `connect_window_seconds`, so
/// processes may start in any order (listen-then-connect with a retry
/// window). Unix-domain paths live under `dir`, which must be short enough
/// for sockaddr_un (~100 bytes).
struct SocketConfig {
  std::string dir;
  bool tcp = false;
  std::string host = "127.0.0.1";
  /// Dial budget for a peer that has never been reachable (rendezvous).
  double connect_window_seconds = 10.0;
  /// Dial budget for a peer that was connected and then lost. Kept short:
  /// a dead peer must look *silent*, not wedge senders, so the lease /
  /// FailureDetector machinery can do the evicting.
  double redial_window_seconds = 0.1;
  double backoff_initial_seconds = 0.002;
  double backoff_max_seconds = 0.25;
  /// Multiplicative jitter spread on every backoff sleep: each wait is drawn
  /// deterministically from [base*(1-j), base*(1+j)). Without it, a
  /// rack-wide departure has every survivor redialing the same dead peers on
  /// the same exponential schedule — a reconnect stampede that lands
  /// synchronized connect() bursts exactly when the rack returns. 0 disables.
  double backoff_jitter = 0.5;
};

/// \brief Deterministic jittered backoff: `base_seconds` spread to
/// [base*(1-j), base*(1+j)) by a splitmix64 hash of (salt, attempt).
///
/// Pure in its inputs — distinct (salt, attempt) pairs desynchronize
/// identical backoff schedules without any shared RNG state, and tests can
/// assert exact values. `jitter_fraction` is clamped to [0, 1).
double JitteredBackoff(double base_seconds, double jitter_fraction,
                       uint64_t salt, uint64_t attempt);

/// \brief A Transport over real sockets for the node(s) hosted in this
/// process.
///
/// Each local node owns a listener; an accept thread spawns one reader
/// thread per inbound connection, which decodes frames (comm/wire.h) and
/// routes them by the frame's `to` field into per-node inboxes — the same
/// BlockingQueue mailboxes InProcTransport uses, so Recv semantics are
/// identical. Connections are unidirectional: the connection manager dials
/// the destination's listener on first send and keeps the socket for reuse.
///
/// Failure model: a send to a peer that cannot be (re)dialed, or whose
/// connection breaks mid-write, is silently dropped after a bounded-backoff
/// redial (`send_drops()` counts them) — exactly how a dead host behaves.
/// Upper layers never see a transport error for a dead peer; its silence
/// trips heartbeat leases and the FailureDetector evicts it, producing the
/// same `fault.*` events the in-proc chaos harness produces via
/// FaultyTransport.
class SocketTransport : public Transport {
 public:
  /// `local_nodes` are the node ids hosted by this process; ids outside the
  /// list are remote and reached via `config.dir` rendezvous.
  SocketTransport(const SocketConfig& config, std::vector<NodeId> local_nodes,
                  int num_nodes);
  ~SocketTransport() override;

  /// Binds and starts listening for every local node. Call once before any
  /// Send/Recv; remote peers may start later (dials retry).
  Status Start();

  int num_nodes() const override { return num_nodes_; }
  Status Send(NodeId to, Envelope env) override;
  std::optional<Envelope> Recv(NodeId me) override;
  std::optional<Envelope> RecvFor(NodeId me, double timeout_seconds) override;
  std::optional<Envelope> TryRecv(NodeId me) override;
  bool closed() const override {
    return closed_.load(std::memory_order_acquire);
  }
  void Shutdown() override;

  bool is_local(NodeId id) const;

  /// Connection-manager diagnostics (plain counters, not MetricsShard
  /// entries: the metric-name set must stay identical across engines).
  uint64_t dials() const { return dials_.load(); }
  uint64_t reconnects() const { return reconnects_.load(); }
  uint64_t send_drops() const { return send_drops_.load(); }
  uint64_t torn_frames() const { return torn_frames_.load(); }
  uint64_t frames_received() const { return frames_received_.load(); }

 private:
  struct Peer {
    std::mutex mu;
    int fd = -1;
    bool ever_connected = false;
    double down_until = 0.0;   // steady-clock seconds; dials suppressed until
    double backoff = 0.0;
    uint64_t down_attempts = 0;  // jitter stream position for this peer
  };

  std::string AddressPath(NodeId id) const;
  Status BindListener(NodeId id, int* out_fd);
  /// Dials `to`'s listener, retrying with bounded backoff for up to
  /// `window_seconds`. Returns the connected fd or -1.
  int DialWithRetry(NodeId to, double window_seconds);
  /// Ensures peer->fd is connected (dialing if allowed). Caller holds
  /// peer->mu. Returns false when the peer is down and the send should drop.
  bool EnsureConnected(Peer* peer, NodeId to);
  void MarkPeerDown(Peer* peer, NodeId to);
  /// Salt for this transport's jitter stream toward `to`: distinct
  /// (dialer, target) pairs draw uncorrelated backoff sequences.
  uint64_t JitterSalt(NodeId to) const;
  void AcceptLoop(NodeId id, int listen_fd);
  void ReadLoop(int fd);
  void RegisterConnFd(int fd);

  SocketConfig config_;
  std::vector<NodeId> local_nodes_;
  int num_nodes_;
  // inboxes_[i] is non-null only for local nodes.
  std::vector<std::unique_ptr<BlockingQueue<Envelope>>> inboxes_;
  std::vector<int> listen_fds_;  // parallel to local_nodes_
  std::vector<std::unique_ptr<Peer>> peers_;  // per destination node
  std::vector<std::thread> accept_threads_;

  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
  std::mutex shutdown_mu_;

  std::atomic<bool> started_{false};
  std::atomic<bool> closed_{false};
  std::atomic<uint64_t> dials_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> send_drops_{0};
  std::atomic<uint64_t> torn_frames_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> misroutes_{0};
};

/// \brief All N nodes of a socket world inside one process, behind a single
/// Transport.
///
/// Builds one SocketTransport per node over a shared rendezvous directory
/// and routes Send by `env.from` / Recv by `me` to the owning instance. This
/// is how the threaded runtime — and the chaos/failover suites via a
/// FaultyTransport wrapper — run unchanged over real sockets in-process;
/// multi-process runs use one SocketTransport per process instead (see
/// src/launch).
class SocketFabric : public Transport {
 public:
  SocketFabric(const SocketConfig& config, int num_nodes);

  Status Start();

  int num_nodes() const override { return num_nodes_; }
  Status Send(NodeId to, Envelope env) override;
  std::optional<Envelope> Recv(NodeId me) override;
  std::optional<Envelope> RecvFor(NodeId me, double timeout_seconds) override;
  std::optional<Envelope> TryRecv(NodeId me) override;
  bool closed() const override;
  void Shutdown() override;

  SocketTransport* node(NodeId id);

 private:
  int num_nodes_;
  std::vector<std::unique_ptr<SocketTransport>> nodes_;
};

}  // namespace pr
