#include "comm/collectives.h"

#include <algorithm>

#include "common/check.h"
#include "compress/compressor.h"
#include "tensor/ops.h"

namespace pr {
namespace {

// Message kinds used by the collectives; upper layers use other values.
constexpr int kKindLeaderGather = 101;
constexpr int kKindLeaderResult = 102;
constexpr int kKindRsChunk = 103;
constexpr int kKindBroadcast = 104;
constexpr int kKindAgChunk = 105;
constexpr int kKindGather = 106;
constexpr int kKindBarrier = 107;
constexpr int kKindSegRsChunk = 108;
constexpr int kKindSegAgChunk = 109;

Status ValidateGroup(const std::vector<NodeId>& members, size_t my_index) {
  if (members.empty()) {
    return Status::InvalidArgument("collective: empty member list");
  }
  if (my_index >= members.size()) {
    return Status::InvalidArgument("collective: my_index out of range");
  }
  return Status::OK();
}

Status ValidateWeights(const std::vector<NodeId>& members,
                       const std::vector<double>& weights) {
  if (weights.size() != members.size()) {
    return Status::InvalidArgument(
        "collective: weights/members size mismatch");
  }
  return Status::OK();
}

/// Chunk boundaries for splitting `n` elements into `p` near-equal parts.
std::pair<size_t, size_t> ChunkBounds(size_t n, size_t p, size_t chunk) {
  const size_t base = n / p;
  const size_t rem = n % p;
  const size_t begin = chunk * base + std::min(chunk, rem);
  const size_t len = base + (chunk < rem ? 1 : 0);
  return {begin, begin + len};
}

/// Segments per chunk. An empty chunk still circulates one empty segment so
/// every (step, chunk) transfer has a uniform message schedule.
size_t NumSegments(size_t chunk_len, size_t segment_floats) {
  if (chunk_len == 0) return 1;
  return (chunk_len + segment_floats - 1) / segment_floats;
}

/// Bounds of segment `j` within chunk [chunk_begin, chunk_end).
std::pair<size_t, size_t> SegmentBounds(size_t chunk_begin, size_t chunk_end,
                                        size_t segment_floats, size_t j) {
  const size_t b = std::min(chunk_begin + j * segment_floats, chunk_end);
  const size_t e = std::min(b + segment_floats, chunk_end);
  return {b, e};
}

}  // namespace

Status LeaderWeightedAllReduce(Endpoint* ep,
                               const std::vector<NodeId>& members,
                               const std::vector<double>& weights,
                               size_t my_index, uint64_t tag,
                               std::vector<float>* data) {
  PR_CHECK(ep != nullptr);
  PR_CHECK(data != nullptr);
  PR_RETURN_NOT_OK(ValidateGroup(members, my_index));
  PR_RETURN_NOT_OK(ValidateWeights(members, weights));
  const size_t p = members.size();
  if (p == 1) {
    Scale(static_cast<float>(weights[0]), data->data(), data->size());
    return Status::OK();
  }
  const NodeId leader = members[0];
  if (my_index == 0) {
    std::vector<float> acc(data->size(), 0.0f);
    Axpy(static_cast<float>(weights[0]), data->data(), acc.data(),
         data->size());
    for (size_t j = 1; j < p; ++j) {
      std::optional<Envelope> env =
          ep->RecvMatching(members[j], tag, kKindLeaderGather);
      if (!env.has_value()) {
        return Status::Cancelled("transport shut down during all-reduce");
      }
      if (env->payload.size() != data->size()) {
        return Status::InvalidArgument(
            "all-reduce: member vector length mismatch");
      }
      Axpy(static_cast<float>(weights[j]), env->payload.data(), acc.data(),
           acc.size());
    }
    *data = std::move(acc);
    // One materialization, P-1 shared handles.
    Buffer result = ep->MakePayload(data->data(), data->size());
    for (size_t j = 1; j < p; ++j) {
      PR_RETURN_NOT_OK(
          ep->Send(members[j], tag, kKindLeaderResult, {}, result));
    }
    return Status::OK();
  }
  PR_RETURN_NOT_OK(ep->Send(leader, tag, kKindLeaderGather, {}, *data));
  std::optional<Envelope> env = ep->RecvMatching(leader, tag,
                                                 kKindLeaderResult);
  if (!env.has_value()) {
    return Status::Cancelled("transport shut down during all-reduce");
  }
  *data = env->payload.Take();
  return Status::OK();
}

Status RingReduceScatter(Endpoint* ep, const std::vector<NodeId>& members,
                         size_t my_index, uint64_t tag,
                         std::vector<float>* data, size_t* chunk_begin,
                         size_t* chunk_end) {
  PR_CHECK(ep != nullptr);
  PR_CHECK(data != nullptr);
  PR_RETURN_NOT_OK(ValidateGroup(members, my_index));
  const size_t p = members.size();
  const size_t n = data->size();
  const size_t owned = (my_index + 1) % p;
  if (chunk_begin != nullptr && chunk_end != nullptr) {
    auto [ob, oe] = ChunkBounds(n, p, owned);
    *chunk_begin = ob;
    *chunk_end = oe;
  }
  if (p == 1) return Status::OK();

  const NodeId right = members[(my_index + 1) % p];
  const NodeId left = members[(my_index + p - 1) % p];
  float* buf = data->data();

  // After P-1 steps, chunk (my_index + 1) % p holds the full sum here.
  for (size_t step = 0; step < p - 1; ++step) {
    const size_t send_chunk = (my_index + p - step) % p;
    const size_t recv_chunk = (my_index + p - step - 1) % p;
    auto [sb, se] = ChunkBounds(n, p, send_chunk);
    PR_RETURN_NOT_OK(
        ep->Send(right, tag, kKindRsChunk,
                 {static_cast<int64_t>(step), static_cast<int64_t>(send_chunk)},
                 std::vector<float>(buf + sb, buf + se)));
    std::optional<Envelope> env = ep->RecvMatching(left, tag, kKindRsChunk);
    if (!env.has_value()) {
      return Status::Cancelled("transport shut down during reduce-scatter");
    }
    PR_CHECK_EQ(env->ints[0], static_cast<int64_t>(step));
    PR_CHECK_EQ(env->ints[1], static_cast<int64_t>(recv_chunk));
    auto [rb, re] = ChunkBounds(n, p, recv_chunk);
    PR_CHECK_EQ(env->payload.size(), re - rb);
    Axpy(1.0f, env->payload.data(), buf + rb, re - rb);
  }
  return Status::OK();
}

Status RingAllGather(Endpoint* ep, const std::vector<NodeId>& members,
                     size_t my_index, uint64_t tag,
                     std::vector<float>* data) {
  PR_CHECK(ep != nullptr);
  PR_CHECK(data != nullptr);
  PR_RETURN_NOT_OK(ValidateGroup(members, my_index));
  const size_t p = members.size();
  const size_t n = data->size();
  if (p == 1) return Status::OK();

  const NodeId right = members[(my_index + 1) % p];
  const NodeId left = members[(my_index + p - 1) % p];
  float* buf = data->data();

  // Circulate the owned chunks: member i starts owning chunk (i + 1) % p.
  for (size_t step = 0; step < p - 1; ++step) {
    const size_t send_chunk = (my_index + 1 + p - step) % p;
    const size_t recv_chunk = (my_index + p - step) % p;
    auto [sb, se] = ChunkBounds(n, p, send_chunk);
    PR_RETURN_NOT_OK(ep->Send(
        right, tag, kKindAgChunk,
        {static_cast<int64_t>(step), static_cast<int64_t>(send_chunk)},
        std::vector<float>(buf + sb, buf + se)));
    std::optional<Envelope> env = ep->RecvMatching(left, tag, kKindAgChunk);
    if (!env.has_value()) {
      return Status::Cancelled("transport shut down during all-gather");
    }
    PR_CHECK_EQ(env->ints[0], static_cast<int64_t>(step));
    PR_CHECK_EQ(env->ints[1], static_cast<int64_t>(recv_chunk));
    auto [rb, re] = ChunkBounds(n, p, recv_chunk);
    PR_CHECK_EQ(env->payload.size(), re - rb);
    std::copy(env->payload.begin(), env->payload.end(), buf + rb);
  }
  return Status::OK();
}

Status RingWeightedAllReduce(Endpoint* ep, const std::vector<NodeId>& members,
                             const std::vector<double>& weights,
                             size_t my_index, uint64_t tag,
                             std::vector<float>* data) {
  PR_CHECK(ep != nullptr);
  PR_CHECK(data != nullptr);
  PR_RETURN_NOT_OK(ValidateGroup(members, my_index));
  PR_RETURN_NOT_OK(ValidateWeights(members, weights));

  // Pre-scale by our weight; reduce-scatter + all-gather then compute a
  // plain sum (Patarasuk & Yuan's bandwidth-optimal composition).
  Scale(static_cast<float>(weights[my_index]), data->data(), data->size());
  PR_RETURN_NOT_OK(RingReduceScatter(ep, members, my_index, tag, data,
                                     nullptr, nullptr));
  return RingAllGather(ep, members, my_index, tag, data);
}

Status SegmentedRingWeightedAllReduce(Endpoint* ep,
                                      const std::vector<NodeId>& members,
                                      const std::vector<double>& weights,
                                      size_t my_index, uint64_t tag,
                                      float* data, size_t n,
                                      size_t segment_floats) {
  PR_CHECK(ep != nullptr);
  PR_CHECK(data != nullptr || n == 0);
  PR_CHECK_GE(segment_floats, size_t{1});
  PR_RETURN_NOT_OK(ValidateGroup(members, my_index));
  PR_RETURN_NOT_OK(ValidateWeights(members, weights));
  const size_t p = members.size();

  Scale(static_cast<float>(weights[my_index]), data, n);
  if (p == 1) return Status::OK();

  const NodeId right = members[(my_index + 1) % p];
  const NodeId left = members[(my_index + p - 1) % p];
  const size_t owned = (my_index + 1) % p;

  auto send_seg = [&](int kind, size_t step, size_t chunk, size_t j,
                      Buffer b) -> Status {
    return ep->Send(right, tag, kind,
                    {static_cast<int64_t>(step), static_cast<int64_t>(chunk),
                     static_cast<int64_t>(j)},
                    std::move(b));
  };
  // Per-pair FIFO plus the deterministic (step, chunk, segment) schedule
  // means the next left-neighbour message of this kind *is* the expected
  // one; the PR_CHECKs assert the protocol rather than select.
  auto recv_seg = [&](int kind, size_t step, size_t chunk, size_t j,
                      size_t expect_len) -> std::optional<Buffer> {
    std::optional<Envelope> env = ep->RecvMatching(left, tag, kind);
    if (!env.has_value()) return std::nullopt;
    PR_CHECK_EQ(env->ints[0], static_cast<int64_t>(step));
    PR_CHECK_EQ(env->ints[1], static_cast<int64_t>(chunk));
    PR_CHECK_EQ(env->ints[2], static_cast<int64_t>(j));
    PR_CHECK_EQ(env->payload.size(), expect_len);
    return std::move(env->payload);
  };

  // Reduce-scatter, buffer-forwarding form. The only payload
  // materializations are the step-0 copies of this member's own chunk; every
  // later hop accumulates into the received buffer in place (it is uniquely
  // owned on arrival) and forwards the same handle.
  {
    auto [ob, oe] = ChunkBounds(n, p, my_index);
    const size_t nseg = NumSegments(oe - ob, segment_floats);
    for (size_t j = 0; j < nseg; ++j) {
      auto [sb, se] = SegmentBounds(ob, oe, segment_floats, j);
      PR_RETURN_NOT_OK(send_seg(kKindSegRsChunk, 0, my_index, j,
                                ep->MakePayload(data + sb, se - sb)));
    }
  }
  std::vector<Buffer> retained;  // Reduced owned-chunk segments, for the AG.
  for (size_t step = 0; step + 1 < p; ++step) {
    const size_t recv_chunk = (my_index + p - step - 1) % p;
    auto [rb, re] = ChunkBounds(n, p, recv_chunk);
    const size_t nseg = NumSegments(re - rb, segment_floats);
    const bool final_hop = (step + 2 == p);
    if (final_hop) retained.resize(nseg);
    for (size_t j = 0; j < nseg; ++j) {
      auto [sb, se] = SegmentBounds(rb, re, segment_floats, j);
      std::optional<Buffer> got =
          recv_seg(kKindSegRsChunk, step, recv_chunk, j, se - sb);
      if (!got.has_value()) {
        return Status::Cancelled("transport shut down during reduce-scatter");
      }
      Buffer b = std::move(*got);
      if (se > sb) {
        // partial += mine: same per-element additions as the classic ring's
        // mine += partial (float addition commutes), so results are
        // bitwise-identical.
        Axpy(1.0f, data + sb, b.mutable_data(), se - sb);
      }
      if (!final_hop) {
        PR_RETURN_NOT_OK(
            send_seg(kKindSegRsChunk, step + 1, recv_chunk, j, std::move(b)));
      } else {
        // recv_chunk == owned here: the segment is fully reduced. Publish it
        // into the caller's buffer and retain the handle so the all-gather's
        // first hop re-circulates it without copying.
        if (se > sb) std::copy(b.data(), b.data() + (se - sb), data + sb);
        retained[j] = std::move(b);
      }
    }
  }

  // All-gather: zero payload materializations — the first hop sends the
  // retained reduced buffers, later hops copy into place and forward.
  {
    auto [ob, oe] = ChunkBounds(n, p, owned);
    const size_t nseg = NumSegments(oe - ob, segment_floats);
    PR_CHECK_EQ(nseg, retained.size());
    for (size_t j = 0; j < nseg; ++j) {
      PR_RETURN_NOT_OK(
          send_seg(kKindSegAgChunk, 0, owned, j, std::move(retained[j])));
    }
  }
  for (size_t step = 0; step + 1 < p; ++step) {
    const size_t recv_chunk = (my_index + p - step) % p;
    auto [rb, re] = ChunkBounds(n, p, recv_chunk);
    const size_t nseg = NumSegments(re - rb, segment_floats);
    const bool final_hop = (step + 2 == p);
    for (size_t j = 0; j < nseg; ++j) {
      auto [sb, se] = SegmentBounds(rb, re, segment_floats, j);
      std::optional<Buffer> got =
          recv_seg(kKindSegAgChunk, step, recv_chunk, j, se - sb);
      if (!got.has_value()) {
        return Status::Cancelled("transport shut down during all-gather");
      }
      if (se > sb) std::copy(got->data(), got->data() + (se - sb), data + sb);
      if (!final_hop) {
        PR_RETURN_NOT_OK(
            send_seg(kKindSegAgChunk, step + 1, recv_chunk, j,
                     std::move(*got)));
      }
    }
  }
  return Status::OK();
}

Status SegmentedRingCompressedAllReduce(Endpoint* ep,
                                        const std::vector<NodeId>& members,
                                        const std::vector<double>& weights,
                                        size_t my_index, uint64_t tag,
                                        float* data, size_t n,
                                        Compressor* compressor,
                                        size_t segment_floats) {
  PR_CHECK(ep != nullptr);
  PR_CHECK(compressor != nullptr);
  PR_CHECK(compressor->enabled());
  PR_CHECK(data != nullptr || n == 0);
  PR_CHECK_GE(segment_floats, size_t{1});
  PR_RETURN_NOT_OK(ValidateGroup(members, my_index));
  PR_RETURN_NOT_OK(ValidateWeights(members, weights));
  const size_t p = members.size();

  Scale(static_cast<float>(weights[my_index]), data, n);
  if (p == 1) return Status::OK();

  const NodeId right = members[(my_index + 1) % p];
  const NodeId left = members[(my_index + p - 1) % p];
  const size_t owned = (my_index + 1) % p;
  const uint8_t enc = compressor->encoding_tag();

  auto send_seg = [&](int kind, size_t step, size_t chunk, size_t j,
                      Buffer blob) -> Status {
    return ep->Send(right, tag, kind,
                    {static_cast<int64_t>(step), static_cast<int64_t>(chunk),
                     static_cast<int64_t>(j)},
                    std::move(blob), enc);
  };
  // Unlike the raw ring, the payload length is *not* asserted on receive:
  // blob sizes are codec-dependent (top-k blobs scale with k, not the
  // segment length). DecodeInto validates the decoded element count instead,
  // turning a mismatched blob into an error status rather than a crash.
  auto recv_seg = [&](int kind, size_t step, size_t chunk,
                      size_t j) -> std::optional<Buffer> {
    std::optional<Envelope> env = ep->RecvMatching(left, tag, kind);
    if (!env.has_value()) return std::nullopt;
    PR_CHECK_EQ(env->ints[0], static_cast<int64_t>(step));
    PR_CHECK_EQ(env->ints[1], static_cast<int64_t>(chunk));
    PR_CHECK_EQ(env->ints[2], static_cast<int64_t>(j));
    return std::move(env->payload);
  };

  std::vector<float> scratch;

  // Reduce-scatter. Step 0 encodes this member's own chunk; every later hop
  // decodes the incoming partial sum, folds in its own (pre-scaled)
  // contribution, and re-encodes. Each re-encode's loss is charged to this
  // member's error-feedback residual at those element positions and folded
  // into its next encode there.
  {
    auto [ob, oe] = ChunkBounds(n, p, my_index);
    const size_t nseg = NumSegments(oe - ob, segment_floats);
    for (size_t j = 0; j < nseg; ++j) {
      auto [sb, se] = SegmentBounds(ob, oe, segment_floats, j);
      PR_RETURN_NOT_OK(
          send_seg(kKindSegRsChunk, 0, my_index, j,
                   compressor->EncodeRange(data + sb, sb, se - sb)));
    }
  }
  for (size_t step = 0; step + 1 < p; ++step) {
    const size_t recv_chunk = (my_index + p - step - 1) % p;
    auto [rb, re] = ChunkBounds(n, p, recv_chunk);
    const size_t nseg = NumSegments(re - rb, segment_floats);
    const bool final_hop = (step + 2 == p);
    for (size_t j = 0; j < nseg; ++j) {
      auto [sb, se] = SegmentBounds(rb, re, segment_floats, j);
      std::optional<Buffer> got =
          recv_seg(kKindSegRsChunk, step, recv_chunk, j);
      if (!got.has_value()) {
        return Status::Cancelled("transport shut down during reduce-scatter");
      }
      const size_t len = se - sb;
      scratch.resize(len);
      PR_RETURN_NOT_OK(compressor->DecodeInto(*got, scratch.data(), len));
      if (len > 0) Axpy(1.0f, data + sb, scratch.data(), len);
      if (!final_hop) {
        PR_RETURN_NOT_OK(
            send_seg(kKindSegRsChunk, step + 1, recv_chunk, j,
                     compressor->EncodeRange(scratch.data(), sb, len)));
      } else {
        // recv_chunk == owned: fully reduced. The owner's own contribution
        // was just added exactly (never re-encoded before the all-gather).
        if (len > 0) std::copy(scratch.data(), scratch.data() + len,
                               data + sb);
      }
    }
  }

  // All-gather. The chunk owner encodes once and *publishes the decoded
  // values locally* (EncodeRangePublish); every later hop decodes into place
  // and forwards the same blob unchanged — so all members publish bitwise
  // the same chunk values, exactly like the uncompressed ring.
  {
    auto [ob, oe] = ChunkBounds(n, p, owned);
    const size_t nseg = NumSegments(oe - ob, segment_floats);
    for (size_t j = 0; j < nseg; ++j) {
      auto [sb, se] = SegmentBounds(ob, oe, segment_floats, j);
      PR_RETURN_NOT_OK(
          send_seg(kKindSegAgChunk, 0, owned, j,
                   compressor->EncodeRangePublish(data + sb, sb, se - sb)));
    }
  }
  for (size_t step = 0; step + 1 < p; ++step) {
    const size_t recv_chunk = (my_index + p - step) % p;
    auto [rb, re] = ChunkBounds(n, p, recv_chunk);
    const size_t nseg = NumSegments(re - rb, segment_floats);
    const bool final_hop = (step + 2 == p);
    for (size_t j = 0; j < nseg; ++j) {
      auto [sb, se] = SegmentBounds(rb, re, segment_floats, j);
      std::optional<Buffer> got =
          recv_seg(kKindSegAgChunk, step, recv_chunk, j);
      if (!got.has_value()) {
        return Status::Cancelled("transport shut down during all-gather");
      }
      PR_RETURN_NOT_OK(compressor->DecodeInto(*got, data + sb, se - sb));
      if (!final_hop) {
        PR_RETURN_NOT_OK(send_seg(kKindSegAgChunk, step + 1, recv_chunk, j,
                                  std::move(*got)));
      }
    }
  }
  return Status::OK();
}

Status GroupWeightedAllReduce(Endpoint* ep, const std::vector<NodeId>& members,
                              const std::vector<double>& weights,
                              size_t my_index, uint64_t tag, float* data,
                              size_t n, Compressor* compressor) {
  if (compressor != nullptr && compressor->enabled()) {
    return SegmentedRingCompressedAllReduce(ep, members, weights, my_index,
                                            tag, data, n, compressor,
                                            kDefaultSegmentFloats);
  }
  return SegmentedRingWeightedAllReduce(ep, members, weights, my_index, tag,
                                        data, n, kDefaultSegmentFloats);
}

Status GroupWeightedAllReduce(Endpoint* ep, const std::vector<NodeId>& members,
                              const std::vector<double>& weights,
                              size_t my_index, uint64_t tag,
                              std::vector<float>* data,
                              Compressor* compressor) {
  PR_CHECK(data != nullptr);
  return GroupWeightedAllReduce(ep, members, weights, my_index, tag,
                                data->data(), data->size(), compressor);
}

Status GroupAverageAllReduce(Endpoint* ep, const std::vector<NodeId>& members,
                             size_t my_index, uint64_t tag, float* data,
                             size_t n, Compressor* compressor) {
  const std::vector<double> weights(members.size(),
                                    1.0 / static_cast<double>(members.size()));
  return GroupWeightedAllReduce(ep, members, weights, my_index, tag, data, n,
                                compressor);
}

Status Broadcast(Endpoint* ep, const std::vector<NodeId>& members,
                 size_t my_index, size_t root_index, uint64_t tag,
                 std::vector<float>* data) {
  PR_CHECK(ep != nullptr);
  PR_CHECK(data != nullptr);
  if (members.empty() || my_index >= members.size() ||
      root_index >= members.size()) {
    return Status::InvalidArgument("broadcast: bad member indices");
  }
  if (my_index == root_index) {
    // One materialization shared by every receiver: payload copies per
    // broadcast are O(1), not O(P).
    Buffer payload = ep->MakePayload(data->data(), data->size());
    for (size_t j = 0; j < members.size(); ++j) {
      if (j == root_index) continue;
      PR_RETURN_NOT_OK(
          ep->Send(members[j], tag, kKindBroadcast, {}, payload));
    }
    return Status::OK();
  }
  std::optional<Envelope> env =
      ep->RecvMatching(members[root_index], tag, kKindBroadcast);
  if (!env.has_value()) {
    return Status::Cancelled("transport shut down during broadcast");
  }
  *data = env->payload.Take();
  return Status::OK();
}

Status RingAverageAllReduce(Endpoint* ep, const std::vector<NodeId>& members,
                            size_t my_index, uint64_t tag,
                            std::vector<float>* data) {
  const std::vector<double> weights(members.size(),
                                    1.0 / static_cast<double>(members.size()));
  return RingWeightedAllReduce(ep, members, weights, my_index, tag, data);
}

Status Gather(Endpoint* ep, const std::vector<NodeId>& members,
              size_t my_index, size_t root_index, uint64_t tag,
              const std::vector<float>& data, std::vector<Buffer>* gathered) {
  PR_CHECK(ep != nullptr);
  PR_CHECK(gathered != nullptr);
  PR_RETURN_NOT_OK(ValidateGroup(members, my_index));
  if (root_index >= members.size()) {
    return Status::InvalidArgument("gather: root_index out of range");
  }
  gathered->clear();
  if (my_index != root_index) {
    return ep->Send(members[root_index], tag, kKindGather, {},
                    ep->MakePayload(data.data(), data.size()));
  }
  gathered->resize(members.size());
  (*gathered)[root_index] = ep->MakePayload(data.data(), data.size());
  for (size_t j = 0; j < members.size(); ++j) {
    if (j == root_index) continue;
    std::optional<Envelope> env =
        ep->RecvMatching(members[j], tag, kKindGather);
    if (!env.has_value()) {
      return Status::Cancelled("transport shut down during gather");
    }
    (*gathered)[j] = std::move(env->payload);
  }
  return Status::OK();
}

Status RingBarrier(Endpoint* ep, const std::vector<NodeId>& members,
                   size_t my_index, uint64_t tag) {
  PR_CHECK(ep != nullptr);
  PR_RETURN_NOT_OK(ValidateGroup(members, my_index));
  const size_t p = members.size();
  if (p == 1) return Status::OK();
  const NodeId right = members[(my_index + 1) % p];
  const NodeId left = members[(my_index + p - 1) % p];
  // Token circulation: a token originating at member 0 completes a full
  // circle only once every member has entered (round 0); a second circle
  // (round 1) releases everyone.
  auto pass = [&](int64_t round) -> Status {
    std::optional<Envelope> env = ep->RecvMatching(left, tag, kKindBarrier);
    if (!env.has_value()) {
      return Status::Cancelled("transport shut down during barrier");
    }
    PR_CHECK_EQ(env->ints[0], round);
    return ep->Send(right, tag, kKindBarrier, {round}, Buffer());
  };
  for (int64_t round = 0; round < 2; ++round) {
    if (my_index == 0) {
      PR_RETURN_NOT_OK(ep->Send(right, tag, kKindBarrier, {round}, Buffer()));
      std::optional<Envelope> env =
          ep->RecvMatching(left, tag, kKindBarrier);
      if (!env.has_value()) {
        return Status::Cancelled("transport shut down during barrier");
      }
      PR_CHECK_EQ(env->ints[0], round);
    } else {
      PR_RETURN_NOT_OK(pass(round));
    }
  }
  return Status::OK();
}

}  // namespace pr
