#include "comm/collectives.h"

#include <algorithm>

#include "common/check.h"
#include "tensor/ops.h"

namespace pr {
namespace {

// Message kinds used by the collectives; upper layers use other values.
constexpr int kKindLeaderGather = 101;
constexpr int kKindLeaderResult = 102;
constexpr int kKindRsChunk = 103;
constexpr int kKindBroadcast = 104;
constexpr int kKindAgChunk = 105;
constexpr int kKindGather = 106;
constexpr int kKindBarrier = 107;

Status ValidateGroup(const std::vector<NodeId>& members, size_t my_index) {
  if (members.empty()) {
    return Status::InvalidArgument("collective: empty member list");
  }
  if (my_index >= members.size()) {
    return Status::InvalidArgument("collective: my_index out of range");
  }
  return Status::OK();
}

Status ValidateWeights(const std::vector<NodeId>& members,
                       const std::vector<double>& weights) {
  if (weights.size() != members.size()) {
    return Status::InvalidArgument(
        "collective: weights/members size mismatch");
  }
  return Status::OK();
}

/// Chunk boundaries for splitting `n` elements into `p` near-equal parts.
std::pair<size_t, size_t> ChunkBounds(size_t n, size_t p, size_t chunk) {
  const size_t base = n / p;
  const size_t rem = n % p;
  const size_t begin = chunk * base + std::min(chunk, rem);
  const size_t len = base + (chunk < rem ? 1 : 0);
  return {begin, begin + len};
}

}  // namespace

Status LeaderWeightedAllReduce(Endpoint* ep,
                               const std::vector<NodeId>& members,
                               const std::vector<double>& weights,
                               size_t my_index, uint64_t tag,
                               std::vector<float>* data) {
  PR_CHECK(ep != nullptr);
  PR_CHECK(data != nullptr);
  PR_RETURN_NOT_OK(ValidateGroup(members, my_index));
  PR_RETURN_NOT_OK(ValidateWeights(members, weights));
  const size_t p = members.size();
  if (p == 1) {
    Scale(static_cast<float>(weights[0]), data->data(), data->size());
    return Status::OK();
  }
  const NodeId leader = members[0];
  if (my_index == 0) {
    std::vector<float> acc(data->size(), 0.0f);
    Axpy(static_cast<float>(weights[0]), data->data(), acc.data(),
         data->size());
    for (size_t j = 1; j < p; ++j) {
      std::optional<Envelope> env =
          ep->RecvMatching(members[j], tag, kKindLeaderGather);
      if (!env.has_value()) {
        return Status::Cancelled("transport shut down during all-reduce");
      }
      if (env->floats.size() != data->size()) {
        return Status::InvalidArgument(
            "all-reduce: member vector length mismatch");
      }
      Axpy(static_cast<float>(weights[j]), env->floats.data(), acc.data(),
           acc.size());
    }
    *data = acc;
    for (size_t j = 1; j < p; ++j) {
      PR_RETURN_NOT_OK(
          ep->Send(members[j], tag, kKindLeaderResult, {}, *data));
    }
    return Status::OK();
  }
  PR_RETURN_NOT_OK(ep->Send(leader, tag, kKindLeaderGather, {}, *data));
  std::optional<Envelope> env = ep->RecvMatching(leader, tag,
                                                 kKindLeaderResult);
  if (!env.has_value()) {
    return Status::Cancelled("transport shut down during all-reduce");
  }
  *data = std::move(env->floats);
  return Status::OK();
}

Status RingReduceScatter(Endpoint* ep, const std::vector<NodeId>& members,
                         size_t my_index, uint64_t tag,
                         std::vector<float>* data, size_t* chunk_begin,
                         size_t* chunk_end) {
  PR_CHECK(ep != nullptr);
  PR_CHECK(data != nullptr);
  PR_RETURN_NOT_OK(ValidateGroup(members, my_index));
  const size_t p = members.size();
  const size_t n = data->size();
  const size_t owned = (my_index + 1) % p;
  if (chunk_begin != nullptr && chunk_end != nullptr) {
    auto [ob, oe] = ChunkBounds(n, p, owned);
    *chunk_begin = ob;
    *chunk_end = oe;
  }
  if (p == 1) return Status::OK();

  const NodeId right = members[(my_index + 1) % p];
  const NodeId left = members[(my_index + p - 1) % p];
  float* buf = data->data();

  // After P-1 steps, chunk (my_index + 1) % p holds the full sum here.
  for (size_t step = 0; step < p - 1; ++step) {
    const size_t send_chunk = (my_index + p - step) % p;
    const size_t recv_chunk = (my_index + p - step - 1) % p;
    auto [sb, se] = ChunkBounds(n, p, send_chunk);
    PR_RETURN_NOT_OK(
        ep->Send(right, tag, kKindRsChunk,
                 {static_cast<int64_t>(step), static_cast<int64_t>(send_chunk)},
                 std::vector<float>(buf + sb, buf + se)));
    std::optional<Envelope> env = ep->RecvMatching(left, tag, kKindRsChunk);
    if (!env.has_value()) {
      return Status::Cancelled("transport shut down during reduce-scatter");
    }
    PR_CHECK_EQ(env->ints[0], static_cast<int64_t>(step));
    PR_CHECK_EQ(env->ints[1], static_cast<int64_t>(recv_chunk));
    auto [rb, re] = ChunkBounds(n, p, recv_chunk);
    PR_CHECK_EQ(env->floats.size(), re - rb);
    Axpy(1.0f, env->floats.data(), buf + rb, re - rb);
  }
  return Status::OK();
}

Status RingAllGather(Endpoint* ep, const std::vector<NodeId>& members,
                     size_t my_index, uint64_t tag,
                     std::vector<float>* data) {
  PR_CHECK(ep != nullptr);
  PR_CHECK(data != nullptr);
  PR_RETURN_NOT_OK(ValidateGroup(members, my_index));
  const size_t p = members.size();
  const size_t n = data->size();
  if (p == 1) return Status::OK();

  const NodeId right = members[(my_index + 1) % p];
  const NodeId left = members[(my_index + p - 1) % p];
  float* buf = data->data();

  // Circulate the owned chunks: member i starts owning chunk (i + 1) % p.
  for (size_t step = 0; step < p - 1; ++step) {
    const size_t send_chunk = (my_index + 1 + p - step) % p;
    const size_t recv_chunk = (my_index + p - step) % p;
    auto [sb, se] = ChunkBounds(n, p, send_chunk);
    PR_RETURN_NOT_OK(ep->Send(
        right, tag, kKindAgChunk,
        {static_cast<int64_t>(step), static_cast<int64_t>(send_chunk)},
        std::vector<float>(buf + sb, buf + se)));
    std::optional<Envelope> env = ep->RecvMatching(left, tag, kKindAgChunk);
    if (!env.has_value()) {
      return Status::Cancelled("transport shut down during all-gather");
    }
    PR_CHECK_EQ(env->ints[0], static_cast<int64_t>(step));
    PR_CHECK_EQ(env->ints[1], static_cast<int64_t>(recv_chunk));
    auto [rb, re] = ChunkBounds(n, p, recv_chunk);
    PR_CHECK_EQ(env->floats.size(), re - rb);
    std::copy(env->floats.begin(), env->floats.end(), buf + rb);
  }
  return Status::OK();
}

Status RingWeightedAllReduce(Endpoint* ep, const std::vector<NodeId>& members,
                             const std::vector<double>& weights,
                             size_t my_index, uint64_t tag,
                             std::vector<float>* data) {
  PR_CHECK(ep != nullptr);
  PR_CHECK(data != nullptr);
  PR_RETURN_NOT_OK(ValidateGroup(members, my_index));
  PR_RETURN_NOT_OK(ValidateWeights(members, weights));

  // Pre-scale by our weight; reduce-scatter + all-gather then compute a
  // plain sum (Patarasuk & Yuan's bandwidth-optimal composition).
  Scale(static_cast<float>(weights[my_index]), data->data(), data->size());
  PR_RETURN_NOT_OK(RingReduceScatter(ep, members, my_index, tag, data,
                                     nullptr, nullptr));
  return RingAllGather(ep, members, my_index, tag, data);
}

Status Broadcast(Endpoint* ep, const std::vector<NodeId>& members,
                 size_t my_index, size_t root_index, uint64_t tag,
                 std::vector<float>* data) {
  PR_CHECK(ep != nullptr);
  PR_CHECK(data != nullptr);
  if (members.empty() || my_index >= members.size() ||
      root_index >= members.size()) {
    return Status::InvalidArgument("broadcast: bad member indices");
  }
  if (my_index == root_index) {
    for (size_t j = 0; j < members.size(); ++j) {
      if (j == root_index) continue;
      PR_RETURN_NOT_OK(ep->Send(members[j], tag, kKindBroadcast, {}, *data));
    }
    return Status::OK();
  }
  std::optional<Envelope> env =
      ep->RecvMatching(members[root_index], tag, kKindBroadcast);
  if (!env.has_value()) {
    return Status::Cancelled("transport shut down during broadcast");
  }
  *data = std::move(env->floats);
  return Status::OK();
}

Status RingAverageAllReduce(Endpoint* ep, const std::vector<NodeId>& members,
                            size_t my_index, uint64_t tag,
                            std::vector<float>* data) {
  const std::vector<double> weights(members.size(),
                                    1.0 / static_cast<double>(members.size()));
  return RingWeightedAllReduce(ep, members, weights, my_index, tag, data);
}

Status Gather(Endpoint* ep, const std::vector<NodeId>& members,
              size_t my_index, size_t root_index, uint64_t tag,
              const std::vector<float>& data,
              std::vector<std::vector<float>>* gathered) {
  PR_CHECK(ep != nullptr);
  PR_CHECK(gathered != nullptr);
  PR_RETURN_NOT_OK(ValidateGroup(members, my_index));
  if (root_index >= members.size()) {
    return Status::InvalidArgument("gather: root_index out of range");
  }
  gathered->clear();
  if (my_index != root_index) {
    return ep->Send(members[root_index], tag, kKindGather, {}, data);
  }
  gathered->resize(members.size());
  (*gathered)[root_index] = data;
  for (size_t j = 0; j < members.size(); ++j) {
    if (j == root_index) continue;
    std::optional<Envelope> env =
        ep->RecvMatching(members[j], tag, kKindGather);
    if (!env.has_value()) {
      return Status::Cancelled("transport shut down during gather");
    }
    (*gathered)[j] = std::move(env->floats);
  }
  return Status::OK();
}

Status RingBarrier(Endpoint* ep, const std::vector<NodeId>& members,
                   size_t my_index, uint64_t tag) {
  PR_CHECK(ep != nullptr);
  PR_RETURN_NOT_OK(ValidateGroup(members, my_index));
  const size_t p = members.size();
  if (p == 1) return Status::OK();
  const NodeId right = members[(my_index + 1) % p];
  const NodeId left = members[(my_index + p - 1) % p];
  // Token circulation: a token originating at member 0 completes a full
  // circle only once every member has entered (round 0); a second circle
  // (round 1) releases everyone.
  auto pass = [&](int64_t round) -> Status {
    std::optional<Envelope> env = ep->RecvMatching(left, tag, kKindBarrier);
    if (!env.has_value()) {
      return Status::Cancelled("transport shut down during barrier");
    }
    PR_CHECK_EQ(env->ints[0], round);
    return ep->Send(right, tag, kKindBarrier, {round}, {});
  };
  for (int64_t round = 0; round < 2; ++round) {
    if (my_index == 0) {
      PR_RETURN_NOT_OK(ep->Send(right, tag, kKindBarrier, {round}, {}));
      std::optional<Envelope> env =
          ep->RecvMatching(left, tag, kKindBarrier);
      if (!env.has_value()) {
        return Status::Cancelled("transport shut down during barrier");
      }
      PR_CHECK_EQ(env->ints[0], round);
    } else {
      PR_RETURN_NOT_OK(pass(round));
    }
  }
  return Status::OK();
}

}  // namespace pr
