#include "fault/failure_detector.h"

#include "common/check.h"

namespace pr {

FailureDetector::FailureDetector(int num_workers, double lease_seconds,
                                 int missed_threshold, double start_now)
    : lease_seconds_(lease_seconds),
      missed_(static_cast<double>(missed_threshold)),
      states_(static_cast<size_t>(num_workers), State::kAlive),
      last_beat_(static_cast<size_t>(num_workers), start_now) {
  PR_CHECK_GE(num_workers, 1);
  PR_CHECK_GT(lease_seconds, 0.0);
  PR_CHECK_GE(missed_threshold, 1);
}

void FailureDetector::Beat(int worker, double now) {
  PR_CHECK_GE(worker, 0);
  PR_CHECK_LT(worker, static_cast<int>(states_.size()));
  if (states_[static_cast<size_t>(worker)] != State::kAlive) return;
  last_beat_[static_cast<size_t>(worker)] = now;
}

void FailureDetector::Suspend(int worker) {
  PR_CHECK_GE(worker, 0);
  PR_CHECK_LT(worker, static_cast<int>(states_.size()));
  states_[static_cast<size_t>(worker)] = State::kSuspended;
}

void FailureDetector::Resume(int worker, double now) {
  PR_CHECK_GE(worker, 0);
  PR_CHECK_LT(worker, static_cast<int>(states_.size()));
  states_[static_cast<size_t>(worker)] = State::kAlive;
  last_beat_[static_cast<size_t>(worker)] = now;
}

std::vector<int> FailureDetector::Expired(double now) {
  std::vector<int> dead;
  const double horizon = eviction_horizon();
  for (size_t w = 0; w < states_.size(); ++w) {
    if (states_[w] != State::kAlive) continue;
    if (now - last_beat_[w] >= horizon) {
      states_[w] = State::kDead;
      dead.push_back(static_cast<int>(w));
    }
  }
  return dead;
}

bool FailureDetector::alive(int worker) const {
  PR_CHECK_GE(worker, 0);
  PR_CHECK_LT(worker, static_cast<int>(states_.size()));
  return states_[static_cast<size_t>(worker)] == State::kAlive;
}

double FailureDetector::last_beat(int worker) const {
  PR_CHECK_GE(worker, 0);
  PR_CHECK_LT(worker, static_cast<int>(states_.size()));
  return last_beat_[static_cast<size_t>(worker)];
}

}  // namespace pr
