#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace pr {

/// \brief Per-edge message fault probabilities.
///
/// Applied independently to every message on a (from, to) edge. A message is
/// first rolled for drop; survivors are rolled for duplication and delay
/// (both can apply to the same message). All probabilities in [0, 1].
struct EdgeFaultSpec {
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  double delay_prob = 0.0;
  double delay_seconds = 0.0;  ///< latency added when the delay roll hits

  bool active() const {
    return drop_prob > 0.0 || dup_prob > 0.0 || delay_prob > 0.0;
  }
};

/// \brief One scheduled per-worker lifecycle fault.
struct WorkerFaultEvent {
  enum class Kind {
    kCrash,     ///< worker stops participating forever
    kHang,      ///< worker goes silent for hang_seconds, then rejoins
    kSlowdown,  ///< compute cost multiplied for slowdown_iterations
  };

  int worker = -1;
  Kind kind = Kind::kCrash;
  /// The fault fires when the worker finishes this many iterations.
  int after_iterations = 0;
  /// Crash only: fire *inside* the next group reduce (after the worker has
  /// received its group assignment) instead of at the iteration boundary —
  /// the nastiest spot, since peers are already blocked on its chunks.
  bool in_group = false;
  double hang_seconds = 0.0;        ///< kHang
  double slowdown_factor = 1.0;     ///< kSlowdown: compute time multiplier
  int slowdown_iterations = 0;      ///< kSlowdown: 0 = rest of run
};

/// \brief One scheduled network partition: a worker's links are severed for
/// a window of time, then restored.
///
/// Unlike a crash the worker itself keeps computing; only its messages
/// vanish in both directions, exactly like an unplugged cable. The threaded
/// engine applies the window on the wall clock via
/// FaultyTransport::SeverNode/RestoreNode (the failure detector evicts the
/// silent worker and the rejoin path readmits it); the simulator applies the
/// same window on virtual time by taking the worker out of membership for
/// the duration. Scenario compilation emits these from kPartition events.
struct PartitionEvent {
  int worker = -1;
  double start_seconds = 0.0;     ///< run time at which links are severed
  double duration_seconds = 0.0;  ///< window length; links restore after
};

/// \brief One scheduled controller outage.
///
/// The controller crashes once `after_groups` groups have been formed
/// (both engines count formed groups identically, so the trigger is
/// engine-agnostic). Its endpoint is severed — messages to it vanish like
/// on a dead host — its entire in-memory state is discarded, and, when
/// `restart` is set, a fresh controller comes back `down_seconds` later
/// and rebuilds from worker re-registrations. Without `restart` the
/// outage is permanent: workers park, give up after
/// max_controller_outage_seconds, and finish their budgets locally.
struct ControllerFaultEvent {
  uint64_t after_groups = 1;
  double down_seconds = 0.2;
  bool restart = true;
};

/// \brief A deterministic, seed-driven schedule of faults for one run.
///
/// Message-level decisions are pure functions of (seed, from, to, per-edge
/// sequence number), so a plan replays identically regardless of thread
/// interleaving — the property the chaos suite's cross-seed determinism
/// check rests on. Worker events fire at iteration boundaries, which both
/// engines count identically.
struct FaultPlan {
  uint64_t seed = 0;
  EdgeFaultSpec default_edge;
  /// Overrides for specific (from, to) edges; edges not listed use
  /// default_edge.
  std::map<std::pair<int, int>, EdgeFaultSpec> edges;
  /// Deterministic per-edge latency matrix (sparse): every message on a
  /// listed (from, to) edge is delayed by this many seconds, no roll
  /// involved. The knob that models slow inter-node links — a topology-aware
  /// run lists its cross-node edges here and both engines stretch them
  /// identically (FaultyTransport holds real messages, the simulator adds
  /// virtual time).
  std::map<std::pair<int, int>, double> link_delay_seconds;
  std::vector<WorkerFaultEvent> worker_events;
  /// Scheduled controller outages, applied in order of `after_groups`.
  std::vector<ControllerFaultEvent> controller_events;
  /// Timed per-worker link severances, applied in order of `start_seconds`.
  std::vector<PartitionEvent> partition_events;

  // --- Failure-detection / retry knobs (threaded engine) ---
  /// A worker's lease lapses this long after its last message; it must beat
  /// faster than this (leases renew on *any* message, ready signals
  /// included). Must exceed the longest silent stretch of a healthy worker
  /// (compute time + injected delays).
  double lease_seconds = 0.25;
  /// Consecutive lapsed leases before the detector declares death. >1
  /// tolerates a single dropped heartbeat.
  int missed_threshold = 2;
  /// How long a worker waits on a peer/controller message before waking up
  /// to beat its heartbeat and re-check for aborts.
  double recv_timeout_seconds = 0.05;
  /// Timeout ticks between escalations to the controller while stuck in a
  /// group reduce.
  int stuck_report_ticks = 3;
  /// Ready re-sends while waiting on a verdict are spaced this many timeout
  /// ticks apart (controller deduplicates).
  int resend_ready_ticks = 4;
  /// Stuck reports for one group before the controller aborts it even when
  /// every member looks alive (a dropped data chunk stalls the ring with no
  /// one dead).
  int stuck_abort_reports = 2;
  /// Liveness valves: a worker gives up on a controller verdict / a stalled
  /// reduce after this long and falls back to local computation (verdict)
  /// or a self-abort + retry (reduce). Last-ditch only — controller-driven
  /// recovery is expected to fire much earlier.
  double max_verdict_wait_seconds = 2.0;
  double max_reduce_stall_seconds = 1.5;

  // --- Controller-failover knobs ---
  /// While the controller is unreachable a worker parks in a bounded
  /// backoff loop: it re-sends its registration (iteration counter, last
  /// group id, ready status) starting at `reregister_backoff_seconds`
  /// between attempts, doubling up to `reregister_backoff_max_seconds`.
  double reregister_backoff_seconds = 0.05;
  double reregister_backoff_max_seconds = 0.4;
  /// A restarted controller collects re-registrations for this long before
  /// rebuilding its pending queue / history and resuming group formation.
  /// Must exceed reregister_backoff_max_seconds so every parked worker
  /// lands at least one attempt inside the window.
  double reregister_window_seconds = 0.6;
  /// A parked worker abandons the controller for good after this long and
  /// falls back to local computation — the liveness valve that lets a run
  /// survive a permanent (no-restart) controller loss.
  double max_controller_outage_seconds = 5.0;
  /// How many recently completed group ids a worker reports when it
  /// re-registers (the restarted controller rebuilds its group-history
  /// window from these).
  int reregister_report_groups = 8;

  /// Runs the fault-tolerant protocol (leases, eviction, abort/retry) even
  /// with nothing scheduled above. Multi-process runs set this so *real*
  /// failures — a killed worker process, a torn connection — are survived:
  /// over sockets a dead peer is simply silent, and only the hardened
  /// protocol reacts to silence.
  bool force_fault_tolerant = false;

  /// True when this plan can inject anything (or force_fault_tolerant is
  /// set); false plans leave every runtime code path on the fault-free fast
  /// path.
  bool enabled() const;

  /// Fault plans are only meaningful for a controller-mediated P-Reduce run;
  /// other strategies would need their own recovery protocol.
  bool has_message_faults() const;

  /// True when the plan schedules at least one controller outage (switches
  /// the runtime to the severable transport + re-registration protocol).
  bool has_controller_faults() const;

  /// True when the plan schedules at least one network partition (switches
  /// the threaded runtime to the severable transport + hardened protocol).
  bool has_partitions() const;

  const EdgeFaultSpec& EdgeSpec(int from, int to) const;

  /// Deterministic latency of the (from, to) edge; 0 when unlisted.
  double LinkDelay(int from, int to) const;
  bool has_link_delays() const;

  /// Deterministic uniform [0,1) roll for message `seq` on edge
  /// (from, to) with salt `salt` distinguishing drop/dup/delay rolls.
  double Roll(int from, int to, uint64_t seq, uint64_t salt) const;

  /// Deterministic per-message decisions (pure in seed/from/to/seq). Both
  /// the FaultyTransport and the simulator's mirrored fault model go
  /// through these, so the two engines interpret a plan identically.
  bool RollDrop(int from, int to, uint64_t seq) const;
  bool RollDup(int from, int to, uint64_t seq) const;
  bool RollDelay(int from, int to, uint64_t seq) const;
};

/// SplitMix64-style mix: uncorrelated 64-bit output for consecutive inputs.
uint64_t FaultHash(uint64_t seed, uint64_t a, uint64_t b, uint64_t c);

/// \brief A canned chaos plan used by tests and benchmarks: one mid-group
/// crash on `crash_worker` plus uniform `drop_prob` message drops.
FaultPlan MakeChaosPlan(uint64_t seed, int crash_worker,
                        int crash_after_iterations, double drop_prob);

/// \brief Chaos-plan variant: a permanent controller crash after
/// `after_groups` formed groups (no restart — workers park, give up, and
/// finish locally), plus uniform `drop_prob` message drops.
FaultPlan MakeControllerCrashPlan(uint64_t seed, uint64_t after_groups,
                                  double drop_prob);

/// \brief Chaos-plan variant: controller crash after `after_groups` formed
/// groups followed by a restart `down_seconds` later, recovering via worker
/// re-registration, plus uniform `drop_prob` message drops.
FaultPlan MakeControllerRestartPlan(uint64_t seed, uint64_t after_groups,
                                    double down_seconds, double drop_prob);

}  // namespace pr
