#include "fault/fault_plan.h"

namespace pr {
namespace {

// Salts separating the drop / dup / delay rolls for one message.
constexpr uint64_t kDropSalt = 0x64726f70ULL;   // "drop"
constexpr uint64_t kDupSalt = 0x647570ULL;      // "dup"
constexpr uint64_t kDelaySalt = 0x64656c61ULL;  // "dela"

}  // namespace

bool FaultPlan::enabled() const {
  return force_fault_tolerant || has_message_faults() ||
         !worker_events.empty() || has_controller_faults() ||
         has_partitions();
}

bool FaultPlan::has_controller_faults() const {
  return !controller_events.empty();
}

bool FaultPlan::has_partitions() const { return !partition_events.empty(); }

bool FaultPlan::has_message_faults() const {
  if (default_edge.active()) return true;
  for (const auto& [edge, spec] : edges) {
    (void)edge;
    if (spec.active()) return true;
  }
  return has_link_delays();
}

bool FaultPlan::has_link_delays() const {
  for (const auto& [edge, delay] : link_delay_seconds) {
    (void)edge;
    if (delay > 0.0) return true;
  }
  return false;
}

const EdgeFaultSpec& FaultPlan::EdgeSpec(int from, int to) const {
  auto it = edges.find({from, to});
  return it != edges.end() ? it->second : default_edge;
}

double FaultPlan::LinkDelay(int from, int to) const {
  auto it = link_delay_seconds.find({from, to});
  return it != link_delay_seconds.end() ? it->second : 0.0;
}

uint64_t FaultHash(uint64_t seed, uint64_t a, uint64_t b, uint64_t c) {
  // SplitMix64 finalizer applied to a simple combine; the finalizer's
  // avalanche is what buys decision independence across (from, to, seq).
  uint64_t x = seed;
  x ^= a + 0x9e3779b97f4a7c15ULL + (x << 6) + (x >> 2);
  x ^= b + 0x9e3779b97f4a7c15ULL + (x << 6) + (x >> 2);
  x ^= c + 0x9e3779b97f4a7c15ULL + (x << 6) + (x >> 2);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double FaultPlan::Roll(int from, int to, uint64_t seq, uint64_t salt) const {
  const uint64_t edge_key =
      (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
      static_cast<uint64_t>(static_cast<uint32_t>(to));
  const uint64_t h = FaultHash(seed ^ salt, edge_key, seq, salt);
  // Top 53 bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultPlan::RollDrop(int from, int to, uint64_t seq) const {
  const EdgeFaultSpec& spec = EdgeSpec(from, to);
  return spec.drop_prob > 0.0 &&
         Roll(from, to, seq, kDropSalt) < spec.drop_prob;
}

bool FaultPlan::RollDup(int from, int to, uint64_t seq) const {
  const EdgeFaultSpec& spec = EdgeSpec(from, to);
  return spec.dup_prob > 0.0 && Roll(from, to, seq, kDupSalt) < spec.dup_prob;
}

bool FaultPlan::RollDelay(int from, int to, uint64_t seq) const {
  const EdgeFaultSpec& spec = EdgeSpec(from, to);
  return spec.delay_prob > 0.0 &&
         Roll(from, to, seq, kDelaySalt) < spec.delay_prob;
}

FaultPlan MakeChaosPlan(uint64_t seed, int crash_worker,
                        int crash_after_iterations, double drop_prob) {
  FaultPlan plan;
  plan.seed = seed;
  plan.default_edge.drop_prob = drop_prob;
  WorkerFaultEvent crash;
  crash.worker = crash_worker;
  crash.kind = WorkerFaultEvent::Kind::kCrash;
  crash.after_iterations = crash_after_iterations;
  crash.in_group = true;
  plan.worker_events.push_back(crash);
  return plan;
}

FaultPlan MakeControllerCrashPlan(uint64_t seed, uint64_t after_groups,
                                  double drop_prob) {
  FaultPlan plan;
  plan.seed = seed;
  plan.default_edge.drop_prob = drop_prob;
  ControllerFaultEvent crash;
  crash.after_groups = after_groups;
  crash.restart = false;
  // A permanent outage ends with every worker exhausting its park budget;
  // keep that budget short enough for tests while leaving several
  // re-registration attempts before the give-up.
  plan.max_controller_outage_seconds = 1.0;
  plan.controller_events.push_back(crash);
  return plan;
}

FaultPlan MakeControllerRestartPlan(uint64_t seed, uint64_t after_groups,
                                    double down_seconds, double drop_prob) {
  FaultPlan plan;
  plan.seed = seed;
  plan.default_edge.drop_prob = drop_prob;
  ControllerFaultEvent crash;
  crash.after_groups = after_groups;
  crash.down_seconds = down_seconds;
  crash.restart = true;
  plan.controller_events.push_back(crash);
  return plan;
}

}  // namespace pr
