#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "comm/transport.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pr {

/// \brief A fault-injecting Transport decorator.
///
/// Wraps any inner fabric and applies a FaultPlan's per-edge message faults
/// on the send path: drops (silently swallowed — the sender still sees OK,
/// exactly like a lossy network), duplications (a second copy follows the
/// original), and delays (delivery deferred by a background thread). The
/// receive path is untouched, so Endpoint, collectives, and both engines run
/// unmodified over either fabric.
///
/// Decisions are deterministic functions of (plan seed, from, to, per-edge
/// sequence number); the only scheduling freedom faults add is *when* a
/// delayed message lands, never *which* messages are affected.
class FaultyTransport : public Transport {
 public:
  /// `inner` must outlive this object. The plan is copied.
  FaultyTransport(Transport* inner, FaultPlan plan);
  ~FaultyTransport() override;

  /// Publishes fault.injected_{drops,dups,delays} counters (eagerly
  /// registered so they appear in reports even when zero) and, when `trace`
  /// is non-null, kFaultInjected events stamped with `now()`.
  void AttachObservers(MetricsShard* metrics, TraceRecorder* trace,
                       std::function<double()> now);

  int num_nodes() const override { return inner_->num_nodes(); }
  Status Send(NodeId to, Envelope env) override;
  std::optional<Envelope> Recv(NodeId me) override { return inner_->Recv(me); }
  std::optional<Envelope> RecvFor(NodeId me, double timeout_seconds) override {
    return inner_->RecvFor(me, timeout_seconds);
  }
  std::optional<Envelope> TryRecv(NodeId me) override {
    return inner_->TryRecv(me);
  }
  bool closed() const override { return inner_->closed(); }

  /// Flushes still-delayed messages (delivered immediately — a delayed
  /// message is late, not lost) and shuts the inner fabric down.
  void Shutdown() override;

  uint64_t injected_drops() const { return drops_.load(); }
  uint64_t injected_dups() const { return dups_.load(); }
  uint64_t injected_delays() const { return delays_.load(); }
  uint64_t severed_drops() const { return severed_drops_.load(); }

  /// Isolates `node` in both directions: every Send addressed to it or
  /// originating from it (including delayed deliveries coming due) is
  /// swallowed, exactly like a host that dropped off the network. The
  /// sender still sees OK. Used to take the controller endpoint down for a
  /// scheduled outage and to partition workers in scenario replays.
  void SeverNode(NodeId node);
  /// Reconnects a severed node. Messages swallowed in between stay lost —
  /// the failover protocol (re-registration) must tolerate that.
  void RestoreNode(NodeId node);
  bool node_severed(NodeId node) const;

 private:
  struct Delayed {
    std::chrono::steady_clock::time_point due;
    NodeId to;
    Envelope env;
    bool operator>(const Delayed& other) const { return due > other.due; }
  };

  void DeliveryLoop();
  void ScheduleDelayed(NodeId to, Envelope env, double delay_seconds);

  Transport* inner_;
  FaultPlan plan_;
  // Per-(from, to) send sequence numbers; indexed from * num_nodes + to.
  std::vector<std::atomic<uint64_t>> seq_;
  // Severed (unreachable) nodes; one flag per node id.
  std::vector<std::atomic<bool>> severed_;

  std::atomic<uint64_t> severed_drops_{0};
  std::atomic<uint64_t> drops_{0};
  std::atomic<uint64_t> dups_{0};
  std::atomic<uint64_t> delays_{0};
  Counter* severed_counter_ = nullptr;
  Counter* drop_counter_ = nullptr;
  Counter* dup_counter_ = nullptr;
  Counter* delay_counter_ = nullptr;
  TraceRecorder* trace_ = nullptr;
  std::function<double()> now_;

  // Delayed-delivery machinery (thread started lazily on first delay).
  std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Delayed, std::vector<Delayed>, std::greater<Delayed>>
      pending_;
  std::thread delivery_thread_;
  bool stop_delivery_ = false;
};

}  // namespace pr
