#pragma once

#include <vector>

namespace pr {

/// \brief Lease-based failure detector for the controller's service loop.
///
/// Every message from a worker (ready signal, heartbeat, group-done report)
/// renews its lease via Beat. A worker whose lease has lapsed for
/// `missed_threshold` consecutive lease periods is declared dead exactly
/// once by Expired. Workers that leave voluntarily (or are evicted) are
/// Suspended — their silence is expected — and Resume re-arms the lease when
/// they rejoin.
///
/// Single-threaded by design: only the controller's service thread calls it.
/// The clock is whatever monotonic `now` the caller passes (wall seconds in
/// the threaded engine, virtual time in the simulator), so the detector is
/// engine-agnostic.
class FailureDetector {
 public:
  /// All workers start alive with leases anchored at `start_now`.
  FailureDetector(int num_workers, double lease_seconds, int missed_threshold,
                  double start_now);

  /// Renews `worker`'s lease. Ignored while suspended or dead — a late
  /// message from an evicted worker must not half-resurrect it; rejoin goes
  /// through Resume explicitly.
  void Beat(int worker, double now);

  /// Stops watching `worker` (voluntary leave or eviction).
  void Suspend(int worker);

  /// Re-arms `worker`'s lease after a rejoin, also clearing a dead verdict
  /// (a hung worker that comes back is welcome).
  void Resume(int worker, double now);

  /// Returns workers newly declared dead as of `now` (each worker is
  /// reported at most once; Expired marks them dead internally).
  std::vector<int> Expired(double now);

  bool alive(int worker) const;
  double last_beat(int worker) const;
  /// Silence longer than this means death: lease * missed_threshold.
  double eviction_horizon() const { return lease_seconds_ * missed_; }

 private:
  enum class State { kAlive, kSuspended, kDead };

  double lease_seconds_;
  double missed_;
  std::vector<State> states_;
  std::vector<double> last_beat_;
};

}  // namespace pr
