#include "fault/faulty_transport.h"

#include <utility>

#include "common/check.h"

namespace pr {

namespace {
// FaultAction values carried in the kFaultInjected trace payload.
constexpr int64_t kActionDrop = 1;
constexpr int64_t kActionDup = 2;
constexpr int64_t kActionDelay = 3;
}  // namespace

FaultyTransport::FaultyTransport(Transport* inner, FaultPlan plan)
    : inner_(inner),
      plan_(std::move(plan)),
      seq_(static_cast<size_t>(inner->num_nodes()) *
           static_cast<size_t>(inner->num_nodes())),
      severed_(static_cast<size_t>(inner->num_nodes())) {
  PR_CHECK(inner != nullptr);
}

void FaultyTransport::SeverNode(NodeId node) {
  PR_CHECK_GE(node, 0);
  PR_CHECK_LT(node, inner_->num_nodes());
  severed_[static_cast<size_t>(node)].store(true, std::memory_order_release);
}

void FaultyTransport::RestoreNode(NodeId node) {
  PR_CHECK_GE(node, 0);
  PR_CHECK_LT(node, inner_->num_nodes());
  severed_[static_cast<size_t>(node)].store(false,
                                            std::memory_order_release);
}

bool FaultyTransport::node_severed(NodeId node) const {
  return node >= 0 && node < inner_->num_nodes() &&
         severed_[static_cast<size_t>(node)].load(std::memory_order_acquire);
}

FaultyTransport::~FaultyTransport() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_delivery_ = true;
  }
  cv_.notify_all();
  if (delivery_thread_.joinable()) delivery_thread_.join();
}

void FaultyTransport::AttachObservers(MetricsShard* metrics,
                                      TraceRecorder* trace,
                                      std::function<double()> now) {
  trace_ = trace;
  now_ = std::move(now);
  if (metrics != nullptr) {
    drop_counter_ = metrics->GetCounter("fault.injected_drops");
    dup_counter_ = metrics->GetCounter("fault.injected_dups");
    delay_counter_ = metrics->GetCounter("fault.injected_delays");
    severed_counter_ = metrics->GetCounter("fault.severed_drops");
  }
}

Status FaultyTransport::Send(NodeId to, Envelope env) {
  const bool from_severed = env.from >= 0 && env.from < inner_->num_nodes() &&
                            node_severed(env.from);
  if (node_severed(to) || from_severed) {
    // The severed host is off the network in both directions: a message
    // addressed to it vanishes, and a message *from* it never escapes its
    // partition. Either way the sender cannot tell (it would need an ack
    // protocol to notice).
    severed_drops_.fetch_add(1, std::memory_order_relaxed);
    if (severed_counter_ != nullptr) severed_counter_->Increment();
    return Status::OK();
  }
  const int n = inner_->num_nodes();
  const int from = env.from;
  const bool edge_valid = from >= 0 && from < n && to >= 0 && to < n;
  const EdgeFaultSpec& spec =
      edge_valid ? plan_.EdgeSpec(from, to) : plan_.default_edge;
  // Deterministic link latency applies to every message on a listed edge
  // (no roll) — slow inter-node links delay everything, not a sample.
  const double link_delay = edge_valid ? plan_.LinkDelay(from, to) : 0.0;
  if (!edge_valid || (!spec.active() && link_delay <= 0.0)) {
    return inner_->Send(to, std::move(env));
  }
  const uint64_t seq =
      seq_[static_cast<size_t>(from) * static_cast<size_t>(n) +
           static_cast<size_t>(to)]
          .fetch_add(1, std::memory_order_relaxed);

  if (plan_.RollDrop(from, to, seq)) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    if (drop_counter_ != nullptr) drop_counter_->Increment();
    if (trace_ != nullptr) {
      trace_->Record(now_ ? now_() : 0.0, TraceEventKind::kFaultInjected, from,
                     kActionDrop, to);
    }
    // The network ate it; the sender has no way to know.
    return Status::OK();
  }

  const bool duplicate = plan_.RollDup(from, to, seq);
  const bool delay = plan_.RollDelay(from, to, seq);

  if (duplicate) {
    dups_.fetch_add(1, std::memory_order_relaxed);
    if (dup_counter_ != nullptr) dup_counter_->Increment();
    if (trace_ != nullptr) {
      trace_->Record(now_ ? now_() : 0.0, TraceEventKind::kFaultInjected, from,
                     kActionDup, to);
    }
    // Best-effort: a dup lost to shutdown is indistinguishable from no dup.
    (void)inner_->Send(to, env);
  }

  // Probabilistic roll delay and deterministic link delay stack (a slow
  // link can also glitch); one injected-delay count per delayed message.
  double delay_s = link_delay;
  if (delay) delay_s += spec.delay_seconds;
  if (delay_s > 0.0) {
    delays_.fetch_add(1, std::memory_order_relaxed);
    if (delay_counter_ != nullptr) delay_counter_->Increment();
    if (trace_ != nullptr) {
      trace_->Record(now_ ? now_() : 0.0, TraceEventKind::kFaultInjected, from,
                     kActionDelay, to);
    }
    ScheduleDelayed(to, std::move(env), delay_s);
    return Status::OK();
  }
  return inner_->Send(to, std::move(env));
}

void FaultyTransport::ScheduleDelayed(NodeId to, Envelope env,
                                      double delay_seconds) {
  const auto due =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(delay_seconds));
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push(Delayed{due, to, std::move(env)});
    if (!delivery_thread_.joinable()) {
      delivery_thread_ = std::thread([this] { DeliveryLoop(); });
    }
  }
  cv_.notify_all();
}

void FaultyTransport::DeliveryLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (pending_.empty()) {
      if (stop_delivery_) return;
      cv_.wait(lock,
               [&] { return stop_delivery_ || !pending_.empty(); });
      continue;
    }
    const auto due = pending_.top().due;
    // Stop requests flush immediately: a delayed message is late, not lost.
    if (!stop_delivery_ && std::chrono::steady_clock::now() < due) {
      cv_.wait_until(lock, due);
      continue;
    }
    // priority_queue::top() is const-ref; the envelope payload may be large,
    // so cast away constness for the move — the element is popped right after.
    Delayed item = std::move(const_cast<Delayed&>(pending_.top()));
    pending_.pop();
    lock.unlock();
    if (node_severed(item.to)) {
      // The destination dropped off the network while the message was in
      // flight: it is lost, not merely late.
      severed_drops_.fetch_add(1, std::memory_order_relaxed);
      if (severed_counter_ != nullptr) severed_counter_->Increment();
    } else {
      (void)inner_->Send(item.to, std::move(item.env));
    }
    lock.lock();
  }
}

void FaultyTransport::Shutdown() {
  // Flush delayed messages into still-open mailboxes before closing them.
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_delivery_ = true;
  }
  cv_.notify_all();
  if (delivery_thread_.joinable()) delivery_thread_.join();
  inner_->Shutdown();
}

}  // namespace pr
