#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace pr {

/// \brief Parametric description of a heterogeneous environment.
///
/// The paper models heterogeneity as independent per-update time
/// distributions (§2.3); a HeterogeneityModel samples the multiplicative
/// slowdown applied to a worker's base compute time for one iteration.
struct HeteroSpec {
  enum class Kind {
    /// All workers equal, small lognormal jitter.
    kHomogeneous,
    /// The paper's synthetic setup (§5.2): `sharing_level` (HL) workers
    /// share one GPU (each slowed ~HL x with contention jitter); the rest
    /// run on dedicated devices. HL = 1 degenerates to homogeneous.
    kGpuSharing,
    /// Per-iteration lognormal slowdown with unit median — mild cloud noise.
    kLognormal,
    /// Production cluster shape (§5.3): per-worker base speed drawn from a
    /// heavy-tailed distribution plus per-iteration jitter plus transient
    /// multi-x stalls. Calibrated so All-Reduce's max-of-N round time
    /// degrades severely at N = 16..32, as in Fig. 9.
    kProduction,
    /// Mostly homogeneous with rare transient stragglers.
    kTransient,
    /// Explicit per-worker slowdown factors (e.g. {2, 1, 1} = "worker 0 is
    /// twice as slow", the paper's Fig. 4(b) scenario), with the usual
    /// jitter on top.
    kFixedFactors,
    /// Replays a recorded trace: per-worker sequences of slowdown factors,
    /// cycled when a worker outruns its row. This is how measured
    /// production per-update times (e.g. from a real cluster profile)
    /// plug into the simulator. See LoadHeteroTraceCsv.
    kTrace,
  };

  Kind kind = Kind::kHomogeneous;

  /// HL for kGpuSharing: how many workers share the first GPU.
  int sharing_level = 1;
  /// Stddev of the always-on lognormal jitter (all kinds).
  double jitter_sigma = 0.05;
  /// Sigma for kLognormal's per-iteration slowdown.
  double lognormal_sigma = 0.3;
  /// kProduction: sigma of per-worker base slowdown (lognormal, median 1).
  double production_sigma = 0.7;
  /// kProduction / kTransient: probability an iteration stalls, and the
  /// stall multiplier range.
  double straggler_prob = 0.02;
  double straggler_min = 4.0;
  double straggler_max = 16.0;
  /// kFixedFactors: per-worker slowdown multipliers (length must equal the
  /// worker count).
  std::vector<double> fixed_factors;
  /// kTrace: trace[w][i] is worker w's slowdown at its i-th sample, cycled.
  /// Every row must be non-empty; one row per worker.
  std::vector<std::vector<double>> trace;

  static HeteroSpec Homogeneous();
  static HeteroSpec GpuSharing(int sharing_level);
  static HeteroSpec Production();
  static HeteroSpec FixedFactors(std::vector<double> factors);
  static HeteroSpec Trace(std::vector<std::vector<double>> trace);
};

/// \brief Samples per-iteration compute-time slowdowns for a fixed worker
/// population. Implementations are deterministic in (spec, num_workers,
/// seed) and the call sequence.
class HeterogeneityModel {
 public:
  virtual ~HeterogeneityModel() = default;

  /// Multiplicative slowdown (>= a small positive floor) for `worker`'s
  /// iteration `iteration`.
  virtual double Sample(int worker, int64_t iteration) = 0;

  virtual std::string Name() const = 0;
};

/// \brief Factory from a spec. `seed` controls all draws.
std::unique_ptr<HeterogeneityModel> MakeHeterogeneityModel(
    const HeteroSpec& spec, int num_workers, uint64_t seed);

/// \brief Loads a slowdown trace from CSV: one row per worker, one comma-
/// separated positive factor per column (rows may have different lengths;
/// blank lines are skipped). Returns the trace or a parse error.
Result<std::vector<std::vector<double>>> LoadHeteroTraceCsv(
    const std::string& path);

/// \brief Writes a trace in the same CSV format (for recording simulated
/// or profiled environments).
Status SaveHeteroTraceCsv(const std::string& path,
                          const std::vector<std::vector<double>>& trace);

}  // namespace pr
