#include "hetero/hetero.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.h"

namespace pr {
namespace {

constexpr double kFloor = 0.05;  // slowdowns never drop below this

/// Shared base: per-call lognormal jitter with unit median.
class ModelBase : public HeterogeneityModel {
 public:
  ModelBase(int num_workers, uint64_t seed, double jitter_sigma)
      : num_workers_(num_workers), rng_(seed), jitter_sigma_(jitter_sigma) {
    PR_CHECK_GE(num_workers, 1);
  }

 protected:
  double Jitter() {
    if (jitter_sigma_ <= 0.0) return 1.0;
    return rng_.LogNormal(0.0, jitter_sigma_);
  }

  void ValidateWorker(int worker) const {
    PR_CHECK_GE(worker, 0);
    PR_CHECK_LT(worker, num_workers_);
  }

  int num_workers_;
  Rng rng_;
  double jitter_sigma_;
};

class HomogeneousModel : public ModelBase {
 public:
  using ModelBase::ModelBase;

  double Sample(int worker, int64_t) override {
    ValidateWorker(worker);
    return std::max(kFloor, Jitter());
  }

  std::string Name() const override { return "homogeneous"; }
};

class GpuSharingModel : public ModelBase {
 public:
  GpuSharingModel(int num_workers, uint64_t seed, double jitter_sigma,
                  int sharing_level)
      : ModelBase(num_workers, seed, jitter_sigma),
        sharing_level_(sharing_level) {
    PR_CHECK_GE(sharing_level, 1);
    PR_CHECK_LE(sharing_level, num_workers);
  }

  double Sample(int worker, int64_t) override {
    ValidateWorker(worker);
    // Workers [0, HL) share one physical GPU: each sees ~HL x slowdown with
    // extra contention noise (time-slicing is not perfectly fair).
    double base = 1.0;
    if (sharing_level_ > 1 && worker < sharing_level_) {
      base = static_cast<double>(sharing_level_) *
             rng_.Uniform(0.85, 1.25);
    }
    return std::max(kFloor, base * Jitter());
  }

  std::string Name() const override {
    return "gpu-sharing(HL=" + std::to_string(sharing_level_) + ")";
  }

 private:
  int sharing_level_;
};

class LognormalModel : public ModelBase {
 public:
  LognormalModel(int num_workers, uint64_t seed, double jitter_sigma,
                 double sigma)
      : ModelBase(num_workers, seed, jitter_sigma), sigma_(sigma) {}

  double Sample(int worker, int64_t) override {
    ValidateWorker(worker);
    return std::max(kFloor, rng_.LogNormal(0.0, sigma_) * Jitter());
  }

  std::string Name() const override { return "lognormal"; }

 private:
  double sigma_;
};

class TransientStragglerModel : public ModelBase {
 public:
  TransientStragglerModel(int num_workers, uint64_t seed, double jitter_sigma,
                          double prob, double lo, double hi)
      : ModelBase(num_workers, seed, jitter_sigma),
        prob_(prob), lo_(lo), hi_(hi) {
    PR_CHECK_GE(prob, 0.0);
    PR_CHECK_LE(prob, 1.0);
    PR_CHECK_LE(lo, hi);
  }

  double Sample(int worker, int64_t) override {
    ValidateWorker(worker);
    double stall = rng_.Bernoulli(prob_) ? rng_.Uniform(lo_, hi_) : 1.0;
    return std::max(kFloor, stall * Jitter());
  }

  std::string Name() const override { return "transient-straggler"; }

 private:
  double prob_, lo_, hi_;
};

class FixedFactorsModel : public ModelBase {
 public:
  FixedFactorsModel(int num_workers, uint64_t seed, double jitter_sigma,
                    std::vector<double> factors)
      : ModelBase(num_workers, seed, jitter_sigma),
        factors_(std::move(factors)) {
    PR_CHECK_EQ(factors_.size(), static_cast<size_t>(num_workers))
        << "fixed_factors length must match worker count";
    for (double f : factors_) PR_CHECK_GT(f, 0.0);
  }

  double Sample(int worker, int64_t) override {
    ValidateWorker(worker);
    return std::max(kFloor,
                    factors_[static_cast<size_t>(worker)] * Jitter());
  }

  std::string Name() const override { return "fixed-factors"; }

 private:
  std::vector<double> factors_;
};

class TraceModel : public ModelBase {
 public:
  TraceModel(int num_workers, uint64_t seed, double jitter_sigma,
             std::vector<std::vector<double>> trace)
      : ModelBase(num_workers, seed, jitter_sigma),
        trace_(std::move(trace)),
        cursor_(static_cast<size_t>(num_workers), 0) {
    PR_CHECK_EQ(trace_.size(), static_cast<size_t>(num_workers))
        << "trace must have one row per worker";
    for (const auto& row : trace_) {
      PR_CHECK(!row.empty()) << "trace rows must be non-empty";
      for (double f : row) PR_CHECK_GT(f, 0.0);
    }
  }

  double Sample(int worker, int64_t) override {
    ValidateWorker(worker);
    const auto& row = trace_[static_cast<size_t>(worker)];
    size_t& cur = cursor_[static_cast<size_t>(worker)];
    const double base = row[cur];
    cur = (cur + 1) % row.size();
    return std::max(kFloor, base * Jitter());
  }

  std::string Name() const override { return "trace"; }

 private:
  std::vector<std::vector<double>> trace_;
  std::vector<size_t> cursor_;
};

class ProductionModel : public ModelBase {
 public:
  ProductionModel(int num_workers, uint64_t seed, const HeteroSpec& spec)
      : ModelBase(num_workers, seed, spec.jitter_sigma), spec_(spec) {
    // Per-worker persistent base slowdown: resource sharing pins some
    // containers on busy hosts for the life of the job.
    base_.resize(static_cast<size_t>(num_workers));
    for (auto& b : base_) {
      b = rng_.LogNormal(0.0, spec.production_sigma);
    }
  }

  double Sample(int worker, int64_t) override {
    ValidateWorker(worker);
    double stall = rng_.Bernoulli(spec_.straggler_prob)
                       ? rng_.Uniform(spec_.straggler_min, spec_.straggler_max)
                       : 1.0;
    // Moderate per-iteration wobble on top of the persistent base.
    double wobble = rng_.LogNormal(0.0, 0.25);
    return std::max(kFloor,
                    base_[static_cast<size_t>(worker)] * wobble * stall);
  }

  std::string Name() const override { return "production"; }

 private:
  HeteroSpec spec_;
  std::vector<double> base_;
};

}  // namespace

HeteroSpec HeteroSpec::Homogeneous() { return HeteroSpec{}; }

HeteroSpec HeteroSpec::GpuSharing(int sharing_level) {
  HeteroSpec spec;
  spec.kind = Kind::kGpuSharing;
  spec.sharing_level = sharing_level;
  return spec;
}

HeteroSpec HeteroSpec::Production() {
  HeteroSpec spec;
  spec.kind = Kind::kProduction;
  return spec;
}

HeteroSpec HeteroSpec::FixedFactors(std::vector<double> factors) {
  HeteroSpec spec;
  spec.kind = Kind::kFixedFactors;
  spec.fixed_factors = std::move(factors);
  return spec;
}

HeteroSpec HeteroSpec::Trace(std::vector<std::vector<double>> trace) {
  HeteroSpec spec;
  spec.kind = Kind::kTrace;
  spec.trace = std::move(trace);
  return spec;
}

Result<std::vector<std::vector<double>>> LoadHeteroTraceCsv(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("trace file not found: " + path);
  }
  std::vector<std::vector<double>> trace;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::vector<double> row;
    std::stringstream cells(line);
    std::string cell;
    while (std::getline(cells, cell, ',')) {
      char* end = nullptr;
      const double value = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() || value <= 0.0) {
        return Status::InvalidArgument(
            "bad trace value '" + cell + "' at " + path + ":" +
            std::to_string(lineno));
      }
      row.push_back(value);
    }
    if (row.empty()) {
      return Status::InvalidArgument("empty trace row at " + path + ":" +
                                     std::to_string(lineno));
    }
    trace.push_back(std::move(row));
  }
  if (trace.empty()) {
    return Status::InvalidArgument("trace file has no rows: " + path);
  }
  return trace;
}

Status SaveHeteroTraceCsv(const std::string& path,
                          const std::vector<std::vector<double>>& trace) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::Unavailable("cannot open trace for writing: " + path);
  }
  for (const auto& row : trace) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ",";
      out << row[i];
    }
    out << "\n";
  }
  if (!out) return Status::Unavailable("short write to trace: " + path);
  return Status::OK();
}

std::unique_ptr<HeterogeneityModel> MakeHeterogeneityModel(
    const HeteroSpec& spec, int num_workers, uint64_t seed) {
  switch (spec.kind) {
    case HeteroSpec::Kind::kHomogeneous:
      return std::make_unique<HomogeneousModel>(num_workers, seed,
                                                spec.jitter_sigma);
    case HeteroSpec::Kind::kGpuSharing:
      return std::make_unique<GpuSharingModel>(num_workers, seed,
                                               spec.jitter_sigma,
                                               spec.sharing_level);
    case HeteroSpec::Kind::kLognormal:
      return std::make_unique<LognormalModel>(num_workers, seed,
                                              spec.jitter_sigma,
                                              spec.lognormal_sigma);
    case HeteroSpec::Kind::kProduction:
      return std::make_unique<ProductionModel>(num_workers, seed, spec);
    case HeteroSpec::Kind::kTransient:
      return std::make_unique<TransientStragglerModel>(
          num_workers, seed, spec.jitter_sigma, spec.straggler_prob,
          spec.straggler_min, spec.straggler_max);
    case HeteroSpec::Kind::kFixedFactors:
      return std::make_unique<FixedFactorsModel>(
          num_workers, seed, spec.jitter_sigma, spec.fixed_factors);
    case HeteroSpec::Kind::kTrace:
      return std::make_unique<TraceModel>(num_workers, seed,
                                          spec.jitter_sigma, spec.trace);
  }
  PR_CHECK(false) << "unreachable";
  return nullptr;
}

}  // namespace pr
