#include "train/run.h"

#include <algorithm>

#include "common/check.h"

namespace pr {
namespace {

/// Global updates the sim engine should run to consume the same gradient
/// budget the threaded engine would (num_workers x iterations_per_worker).
size_t DerivedUpdateBudget(const RunConfig& config) {
  const double total_gradients =
      static_cast<double>(config.run.num_workers) *
      static_cast<double>(config.run.iterations_per_worker);
  double per_update = 1.0;
  switch (config.strategy.kind) {
    case StrategyKind::kAllReduce:
    case StrategyKind::kPsBsp:
    case StrategyKind::kPsBackup:
      per_update = static_cast<double>(config.run.num_workers);
      break;
    case StrategyKind::kPReduceConst:
    case StrategyKind::kPReduceDynamic:
      per_update = static_cast<double>(std::max(1, config.strategy.group_size));
      break;
    case StrategyKind::kEagerReduce:
      per_update = static_cast<double>(std::max(1, config.strategy.er_quorum));
      break;
    case StrategyKind::kAdPsgd:
      per_update = 2.0;
      break;
    case StrategyKind::kPsAsp:
    case StrategyKind::kPsHete:
      per_update = 1.0;
      break;
  }
  const double updates = total_gradients / per_update;
  return static_cast<size_t>(std::max(1.0, updates + 0.5));
}

RunOutcome FromThreaded(ThreadedRunResult result) {
  RunOutcome out;
  out.engine = EngineKind::kThreaded;
  out.strategy = result.strategy;
  out.clock_seconds = result.wall_seconds;
  out.sync_rounds = result.group_reduces;
  out.final_accuracy = result.final_accuracy;
  out.final_loss = result.final_loss;
  out.metrics = result.metrics;
  out.trace = result.trace;
  out.threaded = std::move(result);
  return out;
}

RunOutcome FromSim(SimRunResult result) {
  RunOutcome out;
  out.engine = EngineKind::kSim;
  out.strategy = result.strategy;
  out.clock_seconds = result.sim_seconds;
  out.sync_rounds = result.updates;
  out.final_accuracy = result.final_accuracy;
  out.final_loss = result.curve.empty() ? 0.0 : result.curve.back().loss;
  out.metrics = result.metrics;
  out.trace = result.trace;
  out.sim = std::move(result);
  return out;
}

}  // namespace

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kThreaded:
      return "threaded";
    case EngineKind::kSim:
      return "sim";
  }
  return "threaded";
}

bool ParseEngineKind(const std::string& token, EngineKind* out) {
  if (token == "threaded") {
    *out = EngineKind::kThreaded;
    return true;
  }
  if (token == "sim") {
    *out = EngineKind::kSim;
    return true;
  }
  return false;
}

ExperimentConfig ToExperimentConfig(const RunConfig& config) {
  ExperimentConfig out;
  out.strategy = config.strategy;
  SimTrainingOptions& t = out.training;
  const ThreadedRunOptions& r = config.run;
  t.num_workers = r.num_workers;
  t.batch_size = r.batch_size;
  t.sgd = r.sgd;
  t.model = r.model;
  t.custom_dataset = r.dataset;
  t.fault = r.fault;
  t.scenario = r.scenario;
  t.topology = r.topology;
  t.ckpt = r.ckpt;
  t.seed = r.seed;
  t.trace_capacity = r.trace_capacity;
  t.record_timeline = r.record_timeline;
  // Budget-driven stop, matching the threaded engine's semantics: no
  // accuracy early-exit, one evaluation at the end.
  t.accuracy_threshold = -1.0;
  t.max_updates = DerivedUpdateBudget(config);
  t.eval_every = t.max_updates + 1;
  return out;
}

RunOutcome StartRun(const RunConfig& config, EngineKind engine) {
  switch (engine) {
    case EngineKind::kThreaded:
      return FromThreaded(RunThreaded(config));
    case EngineKind::kSim:
      return FromSim(RunExperiment(ToExperimentConfig(config)));
  }
  PR_CHECK(false) << "unknown engine kind";
  return RunOutcome{};
}

RunOutcome ResumeRun(const RunConfig& config, EngineKind engine,
                     const std::string& manifest_path) {
  switch (engine) {
    case EngineKind::kThreaded:
      return FromThreaded(RestoreThreadedRun(config, manifest_path));
    case EngineKind::kSim:
      return FromSim(
          RestoreSimRun(ToExperimentConfig(config), manifest_path));
  }
  PR_CHECK(false) << "unknown engine kind";
  return RunOutcome{};
}

}  // namespace pr
