#pragma once

#include <string>
#include <vector>

#include "sim/sim_training.h"
#include "strategies/strategy.h"

namespace pr {

/// \brief One experiment cell: a training configuration plus a strategy.
struct ExperimentConfig {
  SimTrainingOptions training;
  StrategyOptions strategy;
};

/// \brief Runs one simulated experiment to completion (convergence, update
/// cap, or time cap) and returns its result record.
SimRunResult RunExperiment(const ExperimentConfig& config);

/// \brief Resumes a simulated experiment from a checkpoint manifest written
/// by an earlier run of the same cell (see SimTrainingOptions::ckpt).
///
/// Replicas, optimizer velocity, iteration counters, the global update
/// count, and the P-Reduce controller's history/watermark all come from the
/// manifest; each worker's batch sampler is fast-forwarded past the
/// restored draws. `config` must match the original run (strategy kind,
/// worker count, model, seed); mismatches fail a check. The virtual clock
/// restarts at 0 — the resumed run's sim_seconds covers only the remaining
/// work. Restoring the same manifest twice yields identical results.
SimRunResult RestoreSimRun(const ExperimentConfig& config,
                           const std::string& manifest_path);

/// \brief Seed-averaged metrics over repeated runs of one cell (the paper
/// averages five runs per cell).
struct AggregateResult {
  std::string strategy;
  size_t num_runs = 0;
  size_t num_converged = 0;
  double mean_run_time = 0.0;        ///< virtual seconds to stop
  double mean_updates = 0.0;
  double mean_per_update = 0.0;
  double mean_final_accuracy = 0.0;
  double mean_idle_fraction = 0.0;
  std::vector<SimRunResult> runs;

  bool AllConverged() const { return num_converged == num_runs; }
};

/// \brief Runs `num_seeds` replicas of the cell with seeds seed, seed+1, ...
AggregateResult RunExperimentSeeds(const ExperimentConfig& config,
                                   size_t num_seeds);

}  // namespace pr
