#pragma once

#include <string>
#include <vector>

#include "runtime/threaded_runtime.h"
#include "sim/sim_training.h"

namespace pr {

/// \brief Minimal fixed-width table printer for benchmark reports.
///
/// Benches print paper-style tables (Table 1 rows, figure series) to
/// stdout; this keeps the formatting consistent and dependency-free.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a header rule. Column widths fit the content.
  std::string Render() const;

  /// Convenience: renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
std::string FormatDouble(double value, int digits = 3);

/// Formats a ratio as "1.84x".
std::string FormatSpeedup(double value);

/// Writes rows as CSV to `path` (headers first). Returns false on IO error.
bool WriteCsv(const std::string& path,
              const std::vector<std::string>& headers,
              const std::vector<std::vector<std::string>>& rows);

/// Writes `content` verbatim to `path`. Returns false on IO error.
bool WriteTextFile(const std::string& path, const std::string& content);

/// JSON report of one threaded run: headline numbers ("strategy",
/// "wall_seconds", "updates", "final_accuracy") plus the full "metrics"
/// snapshot and "trace" log under the shared observability naming.
std::string RunReportJson(const ThreadedRunResult& result);

/// Same for a simulated run ("sim_seconds" instead of "wall_seconds"); the
/// metric names inside "metrics" match the threaded report by construction.
std::string RunReportJson(const SimRunResult& result);

}  // namespace pr
