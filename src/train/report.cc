#include "train/report.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/check.h"
#include "obs/json.h"

namespace pr {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  PR_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  PR_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(headers_);
  out << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::Print() const { std::cout << Render() << std::flush; }

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatSpeedup(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2fx", value);
  return buf;
}

bool WriteCsv(const std::string& path,
              const std::vector<std::string>& headers,
              const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path);
  if (!out) return false;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out << ",";
      out << cells[i];
    }
    out << "\n";
  };
  emit(headers);
  for (const auto& row : rows) emit(row);
  return static_cast<bool>(out);
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

namespace {

void WriteRunReportBody(JsonWriter* w, const std::string& strategy,
                        const char* clock_key, double clock_seconds,
                        size_t updates, double final_accuracy,
                        const MetricsSnapshot& metrics,
                        const TraceLog& trace) {
  w->BeginObject();
  w->Key("strategy").String(strategy);
  w->Key(clock_key).Number(clock_seconds);
  w->Key("updates").UInt(updates);
  w->Key("final_accuracy").Number(final_accuracy);
  w->Key("metrics");
  WriteMetricsSnapshot(w, metrics);
  w->Key("trace");
  WriteTraceLog(w, trace);
  w->EndObject();
}

}  // namespace

std::string RunReportJson(const ThreadedRunResult& result) {
  JsonWriter w;
  WriteRunReportBody(&w, result.strategy, "wall_seconds",
                     result.wall_seconds, result.group_reduces,
                     result.final_accuracy, result.metrics, result.trace);
  return w.str();
}

std::string RunReportJson(const SimRunResult& result) {
  JsonWriter w;
  WriteRunReportBody(&w, result.strategy, "sim_seconds", result.sim_seconds,
                     result.updates, result.final_accuracy, result.metrics,
                     result.trace);
  return w.str();
}

}  // namespace pr
