#include "train/experiment.h"

#include "common/check.h"

namespace pr {

SimRunResult RunExperiment(const ExperimentConfig& config) {
  SimTraining ctx(config.training);
  std::unique_ptr<Strategy> strategy = MakeStrategy(config.strategy, &ctx);
  strategy->Start();
  ctx.engine()->RunUntil([&] { return ctx.stopped(); },
                         config.training.max_sim_seconds);
  // Final evaluation if the run ended between periodic evals.
  ctx.EvaluateNow();
  SimRunResult result = ctx.BuildResult(strategy->Name());
  if (const Controller* controller = strategy->controller()) {
    result.bridged_groups = controller->stats().bridged_groups;
    result.frozen_detections = controller->stats().frozen_detections;
  }
  return result;
}

AggregateResult RunExperimentSeeds(const ExperimentConfig& config,
                                   size_t num_seeds) {
  PR_CHECK_GE(num_seeds, 1u);
  AggregateResult agg;
  agg.num_runs = num_seeds;
  for (size_t s = 0; s < num_seeds; ++s) {
    ExperimentConfig cfg = config;
    cfg.training.seed = config.training.seed + s;
    SimRunResult run = RunExperiment(cfg);
    agg.strategy = run.strategy;
    if (run.converged) ++agg.num_converged;
    agg.mean_run_time += run.sim_seconds;
    agg.mean_updates += static_cast<double>(run.updates);
    agg.mean_per_update += run.per_update_seconds;
    agg.mean_final_accuracy += run.final_accuracy;
    agg.mean_idle_fraction += run.mean_idle_fraction;
    agg.runs.push_back(std::move(run));
  }
  const double inv = 1.0 / static_cast<double>(num_seeds);
  agg.mean_run_time *= inv;
  agg.mean_updates *= inv;
  agg.mean_per_update *= inv;
  agg.mean_final_accuracy *= inv;
  agg.mean_idle_fraction *= inv;
  return agg;
}

}  // namespace pr
