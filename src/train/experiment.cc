#include "train/experiment.h"

#include <filesystem>

#include "ckpt/manifest.h"
#include "common/check.h"

namespace pr {
namespace {

SimRunResult RunPrepared(SimTraining* ctx, const ExperimentConfig& config) {
  std::unique_ptr<Strategy> strategy = MakeStrategy(config.strategy, ctx);
  PR_CHECK(!config.training.ckpt.enabled() || ctx->checkpoint_configured())
      << "strategy " << strategy->Name()
      << " does not support coordinated checkpointing";
  strategy->Start();
  ctx->engine()->RunUntil([&] { return ctx->stopped(); },
                          config.training.max_sim_seconds);
  // Final evaluation if the run ended between periodic evals.
  ctx->EvaluateNow();
  SimRunResult result = ctx->BuildResult(strategy->Name());
  if (const Controller* controller = strategy->controller()) {
    result.bridged_groups = controller->stats().bridged_groups;
    result.frozen_detections = controller->stats().frozen_detections;
  }
  return result;
}

}  // namespace

SimRunResult RunExperiment(const ExperimentConfig& config) {
  SimTraining ctx(config.training);
  return RunPrepared(&ctx, config);
}

SimRunResult RestoreSimRun(const ExperimentConfig& config,
                           const std::string& manifest_path) {
  RunManifest manifest;
  Status s = LoadManifest(manifest_path, &manifest);
  PR_CHECK(s.ok()) << "loading manifest " << manifest_path << ": "
                   << s.message();
  PR_CHECK(manifest.strategy == StrategyKindName(config.strategy.kind))
      << "manifest strategy " << manifest.strategy
      << " does not match the requested "
      << StrategyKindName(config.strategy.kind);
  SimTraining ctx(config.training);
  ctx.RestoreFromManifest(
      manifest, std::filesystem::path(manifest_path).parent_path().string());
  return RunPrepared(&ctx, config);
}

AggregateResult RunExperimentSeeds(const ExperimentConfig& config,
                                   size_t num_seeds) {
  PR_CHECK_GE(num_seeds, 1u);
  AggregateResult agg;
  agg.num_runs = num_seeds;
  for (size_t s = 0; s < num_seeds; ++s) {
    ExperimentConfig cfg = config;
    cfg.training.seed = config.training.seed + s;
    SimRunResult run = RunExperiment(cfg);
    agg.strategy = run.strategy;
    if (run.converged) ++agg.num_converged;
    agg.mean_run_time += run.sim_seconds;
    agg.mean_updates += static_cast<double>(run.updates);
    agg.mean_per_update += run.per_update_seconds;
    agg.mean_final_accuracy += run.final_accuracy;
    agg.mean_idle_fraction += run.mean_idle_fraction;
    agg.runs.push_back(std::move(run));
  }
  const double inv = 1.0 / static_cast<double>(num_seeds);
  agg.mean_run_time *= inv;
  agg.mean_updates *= inv;
  agg.mean_per_update *= inv;
  agg.mean_final_accuracy *= inv;
  agg.mean_idle_fraction *= inv;
  return agg;
}

}  // namespace pr
