#pragma once

#include <string>

#include "runtime/threaded_runtime.h"
#include "train/experiment.h"

namespace pr {

/// \brief Which execution engine carries a run.
///
/// The same RunConfig drives both: kThreaded executes on real OS threads
/// through WorkerRuntime (wall-clock time, real transport), kSim executes
/// under the discrete-event simulator (virtual time, cost-model transport).
/// Callers that schedule runs as workload — the job service, benches,
/// examples — pick an engine per run instead of hard-coding an entry point.
enum class EngineKind {
  kThreaded,
  kSim,
};

/// "threaded" / "sim".
const char* EngineKindName(EngineKind kind);

/// Parses the names EngineKindName emits; false on anything else.
bool ParseEngineKind(const std::string& token, EngineKind* out);

/// \brief Engine-agnostic outcome of a run started through StartRun.
///
/// The shared fields mean the same thing under either engine (metric names
/// already match by construction); the engine-specific records are kept in
/// full for callers that need detail, with exactly one of them populated.
struct RunOutcome {
  EngineKind engine = EngineKind::kThreaded;
  /// Display name of the strategy that ran ("CON", "AR", "PS-BSP", ...).
  std::string strategy;
  /// Wall-clock seconds (threaded) or virtual seconds (sim) to completion.
  double clock_seconds = 0.0;
  /// Global synchronizations performed (group reduces / rounds / pushes).
  uint64_t sync_rounds = 0;
  double final_accuracy = 0.0;
  double final_loss = 0.0;
  /// Merged metrics + trace under the cross-engine naming convention.
  MetricsSnapshot metrics;
  TraceLog trace;

  /// Engine-specific detail; valid only for the matching `engine`.
  ThreadedRunResult threaded;
  SimRunResult sim;
};

/// \brief Maps a threaded-run request onto the simulator's configuration.
///
/// Workers, batch size, SGD options, model spec, dataset spec, fault plan,
/// checkpoint config, seed, and observability knobs carry over directly.
/// The simulator stops on an update budget rather than per-worker iteration
/// counts, so the threaded gradient budget (num_workers x
/// iterations_per_worker) is converted into the equivalent number of global
/// updates for the strategy kind (AR/PS rounds consume N gradients each,
/// P-Reduce groups consume group_size, AD-PSGD pairs consume 2, asynchronous
/// pushes consume 1). Accuracy-based stopping is disabled: a facade run
/// executes its budget, like the threaded engine does.
ExperimentConfig ToExperimentConfig(const RunConfig& config);

/// \brief Unified run entry: executes `config` end-to-end on the chosen
/// engine and returns the engine-agnostic outcome. RunThreaded/RunExperiment
/// remain as the engine-specific entry points beneath this facade.
RunOutcome StartRun(const RunConfig& config,
                    EngineKind engine = EngineKind::kThreaded);

/// \brief Unified resume entry over RestoreThreadedRun / RestoreSimRun:
/// resumes `config` from a checkpoint manifest written by an earlier run of
/// the same configuration on the same engine.
RunOutcome ResumeRun(const RunConfig& config, EngineKind engine,
                     const std::string& manifest_path);

}  // namespace pr
