#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace pr {

/// \brief Kinds of structured run events. The `a`/`b` payload fields are
/// kind-specific (documented per enumerator).
enum class TraceEventKind {
  kSignalEnqueued,   ///< worker sent a ready signal; a = iteration
  kGroupFormed,      ///< controller formed a group; a = group id, b = size
  kGroupBridged,     ///< frozen-avoidance repair group; a = group id
  kGroupHeld,        ///< formation held for a bridging signal; a = queue size
  kReduceStart,      ///< worker entered a group reduce; a = group id
  kReduceEnd,        ///< worker finished a group reduce; a = group id
  kStashHighWater,   ///< endpoint stash grew to a new max; a = new high water
  kPsPull,           ///< PS served a pull; a = model version
  kPsPush,           ///< PS received a push; a = staleness, b = 1 if dropped
  kChurnLeave,       ///< worker left the pool (elastic pause)
  kChurnRejoin,      ///< worker rejoined the pool
  kFaultInjected,    ///< transport injected a fault; a = FaultAction
  kHeartbeat,        ///< controller renewed a worker's lease off-cycle
  kWorkerEvicted,    ///< failure detector declared a worker dead
  kGroupAborted,     ///< controller aborted an in-flight group; a = group id
  kWorkerRetry,      ///< worker re-sent a ready signal after a stall
  kControllerCrash,  ///< controller endpoint went down; a = groups formed
  kControllerRestart,  ///< controller came back; a = failover count
  kWorkerReregister,   ///< worker re-registered with a restarted controller
  kCkptSaved,        ///< checkpoint manifest written; a = epoch, b = updates
};

/// Stable lower_snake name ("group_formed", ...), used in JSON output.
const char* TraceEventKindName(TraceEventKind kind);

/// \brief One timestamped run event. `time` is seconds on the recording
/// engine's clock: wall-clock since run start (threaded) or virtual time
/// (simulator). `worker` is the subject worker id, -1 for controller/server
/// global events.
struct TraceEvent {
  double time = 0.0;
  TraceEventKind kind = TraceEventKind::kSignalEnqueued;
  int worker = -1;
  int64_t a = 0;
  int64_t b = 0;
};

/// \brief The surviving tail of a recorded trace: the newest events in
/// record order, plus how many older events the ring buffer evicted.
struct TraceLog {
  std::vector<TraceEvent> events;
  uint64_t dropped = 0;
};

/// \brief Bounded, thread-safe recorder of structured run events.
///
/// Storage is a fixed-capacity ring buffer: once full, each new event
/// evicts the oldest (keeping the newest window and counting drops), so a
/// long run can leave tracing on without unbounded memory. Record takes a
/// mutex — events fire at synchronization granularity (signals, groups,
/// pushes), not per parameter, so contention is negligible.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity = 4096);

  /// Appends one event; drops the oldest when full. No-op if capacity is 0.
  void Record(double time, TraceEventKind kind, int worker = -1,
              int64_t a = 0, int64_t b = 0);

  /// Copies out the surviving events, oldest first.
  TraceLog Log() const;

  size_t capacity() const { return capacity_; }
  uint64_t recorded() const;
  bool enabled() const { return capacity_ > 0; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;          ///< slot the next event lands in
  uint64_t recorded_ = 0;    ///< events ever recorded (kept + dropped)
};

}  // namespace pr
