#include "obs/metrics.h"

#include <algorithm>

#include "common/check.h"

namespace pr {
namespace {

// Relaxed atomic add for doubles via CAS (std::atomic<double>::fetch_add is
// C++20 but not guaranteed lock-free everywhere; the CAS loop compiles to
// the same thing where it is).
void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

void Counter::Increment(double delta) { AtomicAdd(&value_, delta); }

void Gauge::SetMax(double value) {
  double current = value_.load(std::memory_order_relaxed);
  while (current < value &&
         !value_.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

double HistogramSnapshot::Mean() const {
  return total_count == 0 ? 0.0 : sum / static_cast<double>(total_count);
}

double HistogramSnapshot::QuantileUpperBound(double q) const {
  if (total_count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank = static_cast<uint64_t>(
      q * static_cast<double>(total_count - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen > rank) {
      return i < upper_bounds.size() ? upper_bounds[i] : upper_bounds.back();
    }
  }
  return upper_bounds.empty() ? 0.0 : upper_bounds.back();
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      counts_(upper_bounds_.size() + 1) {
  PR_CHECK(!upper_bounds_.empty());
  PR_CHECK(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()));
}

void Histogram::Observe(double value) {
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value) -
      upper_bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.upper_bounds = upper_bounds_;
  snap.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    snap.counts.push_back(c.load(std::memory_order_relaxed));
  }
  snap.total_count = total_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

double MetricsSnapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0.0 : it->second;
}

double MetricsSnapshot::gauge(const std::string& name) const {
  auto it = gauges.find(name);
  return it == gauges.end() ? 0.0 : it->second;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    const std::string& name) const {
  auto it = histograms.find(name);
  return it == histograms.end() ? nullptr : &it->second;
}

Counter* MetricsShard::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsShard::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsShard::GetHistogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  } else {
    PR_CHECK(slot->upper_bounds() == upper_bounds)
        << "histogram " << name << " re-registered with different buckets";
  }
  return slot.get();
}

MetricsShard* MetricsRegistry::NewShard() {
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::unique_ptr<MetricsShard>(new MetricsShard()));
  return shards_.back().get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu_);
    for (const auto& [name, counter] : shard->counters_) {
      snap.counters[name] += counter->value();
    }
    for (const auto& [name, gauge] : shard->gauges_) {
      auto [it, inserted] = snap.gauges.try_emplace(name, gauge->value());
      if (!inserted) it->second = std::max(it->second, gauge->value());
    }
    for (const auto& [name, histogram] : shard->histograms_) {
      HistogramSnapshot h = histogram->Snapshot();
      auto [it, inserted] = snap.histograms.try_emplace(name, h);
      if (!inserted) {
        HistogramSnapshot& merged = it->second;
        PR_CHECK(merged.upper_bounds == h.upper_bounds)
            << "histogram " << name << " has mismatched buckets across shards";
        for (size_t i = 0; i < merged.counts.size(); ++i) {
          merged.counts[i] += h.counts[i];
        }
        merged.total_count += h.total_count;
        merged.sum += h.sum;
      }
    }
  }
  return snap;
}

MetricsSnapshot MergeSnapshots(const std::vector<MetricsSnapshot>& parts) {
  MetricsSnapshot merged;
  for (const MetricsSnapshot& part : parts) {
    for (const auto& [name, value] : part.counters) {
      merged.counters[name] += value;
    }
    for (const auto& [name, value] : part.gauges) {
      auto [it, inserted] = merged.gauges.try_emplace(name, value);
      if (!inserted) it->second = std::max(it->second, value);
    }
    for (const auto& [name, h] : part.histograms) {
      auto [it, inserted] = merged.histograms.try_emplace(name, h);
      if (inserted) continue;
      HistogramSnapshot& into = it->second;
      if (into.upper_bounds != h.upper_bounds) continue;  // first wins
      for (size_t i = 0; i < into.counts.size() && i < h.counts.size(); ++i) {
        into.counts[i] += h.counts[i];
      }
      into.total_count += h.total_count;
      into.sum += h.sum;
    }
  }
  return merged;
}

const std::vector<double>& DecisionLatencyBuckets() {
  static const std::vector<double> kBuckets = {
      1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5,
      2.5e-5, 5e-5, 1e-4, 2.5e-4, 1e-3, 1e-2};
  return kBuckets;
}

const std::vector<double>& StalenessBuckets() {
  static const std::vector<double> kBuckets = {0, 1, 2,  3,  4,  5,  6,  7,
                                               8, 9, 10, 11, 12, 13, 14, 15};
  return kBuckets;
}

const std::vector<double>& CkptSaveSecondsBuckets() {
  // Checkpoint writes are filesystem-bound: decades from 10us to 10s cover
  // everything from a tiny proxy-model shard on tmpfs to a slow disk.
  static const std::vector<double> kBuckets = {
      1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
  return kBuckets;
}

}  // namespace pr
