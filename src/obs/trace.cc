#include "obs/trace.h"

namespace pr {

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSignalEnqueued:
      return "signal_enqueued";
    case TraceEventKind::kGroupFormed:
      return "group_formed";
    case TraceEventKind::kGroupBridged:
      return "group_bridged";
    case TraceEventKind::kGroupHeld:
      return "group_held";
    case TraceEventKind::kReduceStart:
      return "reduce_start";
    case TraceEventKind::kReduceEnd:
      return "reduce_end";
    case TraceEventKind::kStashHighWater:
      return "stash_high_water";
    case TraceEventKind::kPsPull:
      return "ps_pull";
    case TraceEventKind::kPsPush:
      return "ps_push";
    case TraceEventKind::kChurnLeave:
      return "churn_leave";
    case TraceEventKind::kChurnRejoin:
      return "churn_rejoin";
    case TraceEventKind::kFaultInjected:
      return "fault_injected";
    case TraceEventKind::kHeartbeat:
      return "heartbeat";
    case TraceEventKind::kWorkerEvicted:
      return "worker_evicted";
    case TraceEventKind::kGroupAborted:
      return "group_aborted";
    case TraceEventKind::kWorkerRetry:
      return "worker_retry";
    case TraceEventKind::kControllerCrash:
      return "controller_crash";
    case TraceEventKind::kControllerRestart:
      return "controller_restart";
    case TraceEventKind::kWorkerReregister:
      return "worker_reregister";
    case TraceEventKind::kCkptSaved:
      return "ckpt_saved";
  }
  return "unknown";
}

TraceRecorder::TraceRecorder(size_t capacity) : capacity_(capacity) {
  ring_.reserve(capacity_);
}

void TraceRecorder::Record(double time, TraceEventKind kind, int worker,
                           int64_t a, int64_t b) {
  if (capacity_ == 0) return;
  TraceEvent event{time, kind, worker, a, b};
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

TraceLog TraceRecorder::Log() const {
  TraceLog log;
  std::lock_guard<std::mutex> lock(mu_);
  log.events.reserve(ring_.size());
  if (ring_.size() < capacity_ || capacity_ == 0) {
    log.events = ring_;
  } else {
    // Full ring: next_ is the oldest slot.
    log.events.insert(log.events.end(), ring_.begin() +
                      static_cast<ptrdiff_t>(next_), ring_.end());
    log.events.insert(log.events.end(), ring_.begin(),
                      ring_.begin() + static_cast<ptrdiff_t>(next_));
  }
  log.dropped = recorded_ - ring_.size();
  return log;
}

uint64_t TraceRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

}  // namespace pr
