#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pr {

/// \brief A monotonically increasing counter (double-valued so second
/// accumulators fit; integral counts stay exact up to 2^53).
///
/// Increment is a relaxed atomic add: safe from any thread, cheap enough for
/// per-iteration use. Fetch the handle once (MetricsShard::GetCounter) and
/// hold it across the hot loop — the name lookup takes a lock, the increment
/// does not.
class Counter {
 public:
  void Increment(double delta = 1.0);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief A last-written / high-water value. Set overwrites; SetMax keeps
/// the maximum ever observed (the natural semantics for "stash high-water"
/// style diagnostics). Across shards, gauges merge by maximum.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void SetMax(double value);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Snapshot of one histogram, merged across shards.
struct HistogramSnapshot {
  /// Ascending bucket upper bounds; bucket i counts observations
  /// v <= upper_bounds[i] (first match). counts.back() is the overflow
  /// bucket (v > upper_bounds.back()).
  std::vector<double> upper_bounds;
  std::vector<uint64_t> counts;  ///< size = upper_bounds.size() + 1
  uint64_t total_count = 0;
  double sum = 0.0;

  double Mean() const;
  /// Upper bound of the bucket containing quantile `q` in [0, 1]
  /// (upper_bounds.back() for the overflow bucket); 0 when empty.
  double QuantileUpperBound(double q) const;
};

/// \brief A fixed-bucket histogram. Observe is a pair of relaxed atomic
/// increments plus a binary search over the (immutable) bounds — no locks,
/// per-iteration cheap.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);
  HistogramSnapshot Snapshot() const;
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::atomic<uint64_t>> counts_;  // upper_bounds_.size() + 1
  std::atomic<double> sum_{0.0};
  std::atomic<uint64_t> total_{0};
};

/// \brief Merged view of every instrument in a registry, keyed by name.
///
/// Merge rules across shards: counters and histogram buckets sum; gauges
/// take the maximum (per-worker metrics use shard-unique names, so the rule
/// only matters for deliberately shared high-water gauges).
struct MetricsSnapshot {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Value lookups that return 0 / null for absent names, so callers can
  /// probe optional instrumentation without branching on strategy kind.
  double counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  const HistogramSnapshot* histogram(const std::string& name) const;
};

/// \brief Merges already-scraped snapshots under the same rules a registry
/// applies to its shards: counters and histogram buckets sum, gauges take
/// the maximum. Histograms whose bucket bounds disagree keep the first
/// occurrence. The multi-process launcher uses this to fold per-process
/// reports into one run-level snapshot with the usual metric names.
MetricsSnapshot MergeSnapshots(const std::vector<MetricsSnapshot>& parts);

/// \brief One thread's (or one subsystem's) set of instruments.
///
/// Instruments are created on first Get*; the returned handles stay valid
/// for the shard's lifetime and their updates are lock-free. The Get* calls
/// themselves take the shard lock — hoist them out of hot loops.
///
/// Same-named instruments in different shards merge at snapshot time; a
/// worker thread owning its shard therefore never contends with another
/// thread on the hot path.
class MetricsShard {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `upper_bounds` must be strictly ascending and must match any earlier
  /// registration of the same name in this shard.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds);

 private:
  friend class MetricsRegistry;
  MetricsShard() = default;

  mutable std::mutex mu_;  // guards the maps, not the instruments
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// \brief The run-wide metrics registry: hands out per-thread shards and
/// merges them into a MetricsSnapshot at scrape time.
///
/// Snapshot may run concurrently with writers (all instrument updates are
/// relaxed atomics), but a consistent cut is only guaranteed once writer
/// threads have quiesced — the runtimes scrape after joining their threads.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Creates a shard owned by the registry. Thread-safe.
  MetricsShard* NewShard();

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<MetricsShard>> shards_;
};

/// Canonical buckets for controller decision latency (seconds): 100 ns up
/// to 10 ms. Shared by the simulator and threaded paths so the metric is
/// comparable across engines.
const std::vector<double>& DecisionLatencyBuckets();

/// Canonical buckets for PS push staleness: exact integer buckets 0..15
/// plus overflow, matching the legacy per-value staleness histogram.
const std::vector<double>& StalenessBuckets();

/// Canonical buckets for ckpt.save_seconds (checkpoint write latency).
const std::vector<double>& CkptSaveSecondsBuckets();

}  // namespace pr
