#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pr {

/// \brief Minimal streaming JSON writer (no external dependency).
///
/// Handles comma placement and string escaping; the caller is responsible
/// for well-formed nesting (Begin/End pairs, Key before each object value).
/// Non-finite numbers serialize as null, keeping the output strict JSON.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  std::vector<bool> need_comma_;
  bool pending_key_ = false;
};

/// Escapes `value` for inclusion in a JSON string literal (no quotes added).
std::string JsonEscape(std::string_view value);

/// Serializes a merged metrics snapshot:
/// {"counters": {...}, "gauges": {...}, "histograms": {name:
///  {"upper_bounds": [...], "counts": [...], "sum": s, "count": n}}}.
std::string MetricsSnapshotJson(const MetricsSnapshot& snapshot);

/// Appends the snapshot under the writer's current value position (the
/// building block behind MetricsSnapshotJson and the bench reports).
void WriteMetricsSnapshot(JsonWriter* writer, const MetricsSnapshot& snapshot);

/// Serializes a trace log: {"dropped": n, "events": [{"t": ...,
/// "kind": "group_formed", "worker": w, "a": ..., "b": ...}]}.
std::string TraceLogJson(const TraceLog& log);

/// Appends the trace log under the writer's current value position.
void WriteTraceLog(JsonWriter* writer, const TraceLog& log);

/// \brief A parsed JSON document node (null/bool/number/string/array/object).
///
/// The read-side counterpart of JsonWriter, still dependency-free. Objects
/// preserve insertion order (the writer's order survives a round trip) and
/// are looked up linearly — documents here are config-sized, not data-sized.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool v);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string v);
  static JsonValue MakeArray(std::vector<JsonValue> items = {});
  static JsonValue MakeObject(std::vector<Member> members = {});

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; calling one on the wrong kind is a checked programmer
  /// error (callers branch on kind() / is_*() first).
  bool bool_value() const;
  double number_value() const;
  const std::string& string_value() const;
  const std::vector<JsonValue>& items() const;
  std::vector<JsonValue>& mutable_items();
  const std::vector<Member>& members() const;
  std::vector<Member>& mutable_members();

  /// Object lookup by key; nullptr when absent (or when not an object).
  const JsonValue* Find(std::string_view key) const;

  /// Sets `key` to `value`, replacing an existing member of that name or
  /// appending a new one; requires an object.
  void Set(std::string key, JsonValue value);

  /// Appends `value`; requires an array.
  void Append(JsonValue value);

  /// Re-serializes this value through JsonWriter (canonical output: numbers
  /// in their shortest exact-round-trip form, escaped strings, no
  /// whitespace).
  std::string Dump() const;
  void Write(JsonWriter* writer) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

/// \brief Parses a complete strict-JSON document into `*out`.
///
/// Rejects trailing garbage, trailing commas, unquoted keys, and comments;
/// accepts the full escape set JsonWriter emits (including \uXXXX with
/// surrogate pairs, decoded to UTF-8). Errors carry a byte offset.
Status ParseJson(std::string_view text, JsonValue* out);

}  // namespace pr
