#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pr {

/// \brief Minimal streaming JSON writer (no external dependency).
///
/// Handles comma placement and string escaping; the caller is responsible
/// for well-formed nesting (Begin/End pairs, Key before each object value).
/// Non-finite numbers serialize as null, keeping the output strict JSON.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  std::vector<bool> need_comma_;
  bool pending_key_ = false;
};

/// Escapes `value` for inclusion in a JSON string literal (no quotes added).
std::string JsonEscape(std::string_view value);

/// Serializes a merged metrics snapshot:
/// {"counters": {...}, "gauges": {...}, "histograms": {name:
///  {"upper_bounds": [...], "counts": [...], "sum": s, "count": n}}}.
std::string MetricsSnapshotJson(const MetricsSnapshot& snapshot);

/// Appends the snapshot under the writer's current value position (the
/// building block behind MetricsSnapshotJson and the bench reports).
void WriteMetricsSnapshot(JsonWriter* writer, const MetricsSnapshot& snapshot);

/// Serializes a trace log: {"dropped": n, "events": [{"t": ...,
/// "kind": "group_formed", "worker": w, "a": ..., "b": ...}]}.
std::string TraceLogJson(const TraceLog& log);

/// Appends the trace log under the writer's current value position.
void WriteTraceLog(JsonWriter* writer, const TraceLog& log);

}  // namespace pr
