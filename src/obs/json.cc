#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace pr {

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // key already emitted the comma
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back()) out_ += ',';
    need_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  need_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  need_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!need_comma_.empty()) {
    if (need_comma_.back()) out_ += ',';
    need_comma_.back() = true;
  }
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  if (!std::isfinite(value)) return Null();
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

std::string JsonEscape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void WriteMetricsSnapshot(JsonWriter* writer,
                          const MetricsSnapshot& snapshot) {
  JsonWriter& w = *writer;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : snapshot.counters) {
    w.Key(name).Number(value);
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : snapshot.gauges) {
    w.Key(name).Number(value);
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, hist] : snapshot.histograms) {
    w.Key(name).BeginObject();
    w.Key("upper_bounds").BeginArray();
    for (double b : hist.upper_bounds) w.Number(b);
    w.EndArray();
    w.Key("counts").BeginArray();
    for (uint64_t c : hist.counts) w.UInt(c);
    w.EndArray();
    w.Key("sum").Number(hist.sum);
    w.Key("count").UInt(hist.total_count);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
}

std::string MetricsSnapshotJson(const MetricsSnapshot& snapshot) {
  JsonWriter writer;
  WriteMetricsSnapshot(&writer, snapshot);
  return writer.str();
}

void WriteTraceLog(JsonWriter* writer, const TraceLog& log) {
  JsonWriter& w = *writer;
  w.BeginObject();
  w.Key("dropped").UInt(log.dropped);
  w.Key("events").BeginArray();
  for (const TraceEvent& e : log.events) {
    w.BeginObject();
    w.Key("t").Number(e.time);
    w.Key("kind").String(TraceEventKindName(e.kind));
    w.Key("worker").Int(e.worker);
    w.Key("a").Int(e.a);
    w.Key("b").Int(e.b);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

std::string TraceLogJson(const TraceLog& log) {
  JsonWriter writer;
  WriteTraceLog(&writer, log);
  return writer.str();
}

}  // namespace pr
