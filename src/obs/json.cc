#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pr {

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // key already emitted the comma
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back()) out_ += ',';
    need_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  need_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  need_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!need_comma_.empty()) {
    if (need_comma_.back()) out_ += ',';
    need_comma_.back() = true;
  }
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  if (!std::isfinite(value)) return Null();
  BeforeValue();
  // Shortest form that parses back to the same double: %.15g covers most
  // values; fall back to %.17g (always exact) when it loses bits. Config
  // round trips (text -> JSON -> text) rely on this being lossless.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.15g", value);
  if (std::strtod(buf, nullptr) != value) {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

std::string JsonEscape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void WriteMetricsSnapshot(JsonWriter* writer,
                          const MetricsSnapshot& snapshot) {
  JsonWriter& w = *writer;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : snapshot.counters) {
    w.Key(name).Number(value);
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : snapshot.gauges) {
    w.Key(name).Number(value);
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, hist] : snapshot.histograms) {
    w.Key(name).BeginObject();
    w.Key("upper_bounds").BeginArray();
    for (double b : hist.upper_bounds) w.Number(b);
    w.EndArray();
    w.Key("counts").BeginArray();
    for (uint64_t c : hist.counts) w.UInt(c);
    w.EndArray();
    w.Key("sum").Number(hist.sum);
    w.Key("count").UInt(hist.total_count);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
}

std::string MetricsSnapshotJson(const MetricsSnapshot& snapshot) {
  JsonWriter writer;
  WriteMetricsSnapshot(&writer, snapshot);
  return writer.str();
}

void WriteTraceLog(JsonWriter* writer, const TraceLog& log) {
  JsonWriter& w = *writer;
  w.BeginObject();
  w.Key("dropped").UInt(log.dropped);
  w.Key("events").BeginArray();
  for (const TraceEvent& e : log.events) {
    w.BeginObject();
    w.Key("t").Number(e.time);
    w.Key("kind").String(TraceEventKindName(e.kind));
    w.Key("worker").Int(e.worker);
    w.Key("a").Int(e.a);
    w.Key("b").Int(e.b);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

std::string TraceLogJson(const TraceLog& log) {
  JsonWriter writer;
  WriteTraceLog(&writer, log);
  return writer.str();
}

JsonValue JsonValue::MakeBool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::MakeNumber(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::MakeString(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.items_ = std::move(items);
  return out;
}

JsonValue JsonValue::MakeObject(std::vector<Member> members) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.members_ = std::move(members);
  return out;
}

bool JsonValue::bool_value() const {
  PR_CHECK(kind_ == Kind::kBool) << "JsonValue is not a bool";
  return bool_;
}

double JsonValue::number_value() const {
  PR_CHECK(kind_ == Kind::kNumber) << "JsonValue is not a number";
  return number_;
}

const std::string& JsonValue::string_value() const {
  PR_CHECK(kind_ == Kind::kString) << "JsonValue is not a string";
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  PR_CHECK(kind_ == Kind::kArray) << "JsonValue is not an array";
  return items_;
}

std::vector<JsonValue>& JsonValue::mutable_items() {
  PR_CHECK(kind_ == Kind::kArray) << "JsonValue is not an array";
  return items_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  PR_CHECK(kind_ == Kind::kObject) << "JsonValue is not an object";
  return members_;
}

std::vector<JsonValue::Member>& JsonValue::mutable_members() {
  PR_CHECK(kind_ == Kind::kObject) << "JsonValue is not an object";
  return members_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

void JsonValue::Set(std::string key, JsonValue value) {
  PR_CHECK(kind_ == Kind::kObject) << "JsonValue is not an object";
  for (Member& member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

void JsonValue::Append(JsonValue value) {
  PR_CHECK(kind_ == Kind::kArray) << "JsonValue is not an array";
  items_.push_back(std::move(value));
}

void JsonValue::Write(JsonWriter* writer) const {
  switch (kind_) {
    case Kind::kNull:
      writer->Null();
      break;
    case Kind::kBool:
      writer->Bool(bool_);
      break;
    case Kind::kNumber:
      writer->Number(number_);
      break;
    case Kind::kString:
      writer->String(string_);
      break;
    case Kind::kArray:
      writer->BeginArray();
      for (const JsonValue& v : items_) v.Write(writer);
      writer->EndArray();
      break;
    case Kind::kObject:
      writer->BeginObject();
      for (const Member& m : members_) {
        writer->Key(m.first);
        m.second.Write(writer);
      }
      writer->EndObject();
      break;
  }
}

std::string JsonValue::Dump() const {
  JsonWriter writer;
  Write(&writer);
  return writer.str();
}

namespace {

/// Recursive-descent parser over a string_view; tracks the byte offset for
/// error messages. Depth is bounded to keep hostile inputs from overflowing
/// the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Status Parse(JsonValue* out) {
    PR_RETURN_NOT_OK(ParseValue(out, /*depth=*/0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return Status::OK();
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(std::string_view what) const {
    return Status::InvalidArgument("json parse error at byte " +
                                   std::to_string(pos_) + ": " +
                                   std::string(what));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Error("invalid literal");
    }
    pos_ += literal.size();
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        PR_RETURN_NOT_OK(ParseString(&s));
        *out = JsonValue::MakeString(std::move(s));
        return Status::OK();
      }
      case 't':
        PR_RETURN_NOT_OK(ConsumeLiteral("true"));
        *out = JsonValue::MakeBool(true);
        return Status::OK();
      case 'f':
        PR_RETURN_NOT_OK(ConsumeLiteral("false"));
        *out = JsonValue::MakeBool(false);
        return Status::OK();
      case 'n':
        PR_RETURN_NOT_OK(ConsumeLiteral("null"));
        *out = JsonValue::MakeNull();
        return Status::OK();
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
        return Error("unexpected character");
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    *out = JsonValue::MakeObject();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected '\"' to start object key");
      }
      std::string key;
      PR_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      PR_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    *out = JsonValue::MakeArray();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      PR_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("truncated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t cp = 0;
          PR_RETURN_NOT_OK(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the low half immediately after.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("lone high surrogate in \\u escape");
            }
            pos_ += 2;
            uint32_t low = 0;
            PR_RETURN_NOT_OK(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate in \\u escape");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("lone low surrogate in \\u escape");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
      // sign consumed
    }
    if (pos_ >= text_.size()) return Error("truncated number");
    if (text_[pos_] == '0') {
      ++pos_;
    } else if (text_[pos_] >= '1' && text_[pos_] <= '9') {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    } else {
      return Error("invalid number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digit required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digit required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("invalid number");
    *out = JsonValue::MakeNumber(value);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Status ParseJson(std::string_view text, JsonValue* out) {
  JsonParser parser(text);
  return parser.Parse(out);
}

}  // namespace pr
