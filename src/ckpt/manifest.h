#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"

namespace pr {

/// \brief One worker's entry in a run manifest.
struct ManifestWorker {
  int worker = -1;
  /// Protocol iteration counter (the value dynamic weighting advances); on
  /// restore the worker resumes signalling with this counter.
  int64_t iteration = 0;
  /// Local iterations completed at the cut; the resumed run executes
  /// iterations completed+1 .. budget.
  uint64_t completed = 0;
  /// Shard file name, relative to the manifest's directory.
  std::string shard_file;
};

/// \brief A coordinated checkpoint of one training run.
///
/// The manifest binds per-worker shards (params + optimizer velocity in
/// PRCKPT01 framing) to the run-level state a resume needs: iteration
/// counters, the controller's group-history window, and its group-id
/// watermark. Serialized as magic "PRMANIF1" + fields + trailing FNV-1a
/// checksum, written atomically (tmp + rename) — a torn manifest fails the
/// checksum and FindLatestManifest falls back to the previous epoch.
struct RunManifest {
  uint32_t version = 1;
  std::string engine;    ///< "threaded" or "sim"
  std::string strategy;  ///< StrategyKindName ("CON", "DYN", "AR", ...)
  int num_workers = 0;
  uint64_t num_params = 0;
  uint64_t seed = 0;
  /// Checkpoint index: k / every_iterations (threaded) or updates /
  /// every_updates (sim). Strictly increasing within one run.
  uint64_t epoch = 0;
  /// Global updates (group reduces / rounds) performed at the cut.
  uint64_t updates_done = 0;
  /// Controller group-id watermark: the restored controller hands out ids
  /// from here so workers' ascending-id dedup keeps working across a
  /// restore.
  uint64_t next_group_id = 1;
  /// Engine clock at the cut (wall seconds threaded, virtual seconds sim).
  double saved_at_seconds = 0.0;
  /// The controller's group-history DB window, oldest first.
  std::vector<std::vector<int>> history;
  std::vector<ManifestWorker> workers;
};

/// "manifest-<epoch>.prm" under `dir`.
std::string ManifestPath(const std::string& dir, uint64_t epoch);
/// "shard-e<epoch>-w<worker>.prc".
std::string ShardFileName(uint64_t epoch, int worker);
std::string ShardPath(const std::string& dir, uint64_t epoch, int worker);

/// Atomically writes `manifest` to ManifestPath(dir, manifest.epoch),
/// creating `dir` if needed.
Status SaveManifest(const std::string& dir, const RunManifest& manifest);

/// Parses and validates (magic, version, checksum) one manifest file.
Status LoadManifest(const std::string& path, RunManifest* out);

/// Scans `dir` for manifest files and loads the highest epoch that
/// validates, skipping torn or corrupt ones. NotFound when none survive.
Status FindLatestManifest(const std::string& dir, RunManifest* out,
                          std::string* path_out = nullptr);

/// Writes one worker shard: `params` immediately followed by `velocity` as
/// a single PRCKPT01 vector (2 * num_params floats), atomically and without
/// copying either span.
Status SaveWorkerShard(const std::string& path, Slice params, Slice velocity);

/// Splits a shard back into params + velocity; fails unless the shard holds
/// exactly 2 * num_params floats.
Status LoadWorkerShard(const std::string& path, size_t num_params,
                       std::vector<float>* params,
                       std::vector<float>* velocity);

}  // namespace pr
