#pragma once

#include <cstddef>
#include <string>

namespace pr {

/// \brief Periodic coordinated-checkpoint knobs, shared by both engines.
///
/// Snapshots are cut at synchronization boundaries so every shard of one
/// epoch is a consistent view: the threaded engine cuts when a worker
/// finishes local iteration k with k % every_iterations == 0 (the
/// controller assembles the manifest once every live worker reported the
/// epoch), the simulator cuts after every_updates global updates (the
/// single-threaded event loop makes any point between events consistent).
struct CheckpointConfig {
  /// Directory receiving manifests and per-worker shards; empty disables
  /// checkpointing entirely. Created on first save if missing.
  std::string dir;
  /// Threaded engine: local iterations between cuts (0 = never).
  size_t every_iterations = 0;
  /// Simulator: global updates between cuts (0 = never).
  size_t every_updates = 0;

  bool enabled() const {
    return !dir.empty() && (every_iterations > 0 || every_updates > 0);
  }
};

}  // namespace pr
