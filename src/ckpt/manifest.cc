#include "ckpt/manifest.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "models/checkpoint.h"

namespace pr {
namespace {

constexpr char kMagic[8] = {'P', 'R', 'M', 'A', 'N', 'I', 'F', '1'};
constexpr uint32_t kVersion = 1;

/// Little-endian-native append-only writer; the manifest is host-format
/// like the PRCKPT01 shards (both engines run in one process family).
class ByteWriter {
 public:
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U64(s.size());
    buf_.append(s);
  }
  void IntVec(const std::vector<int>& v) {
    U64(v.size());
    for (int x : v) {
      const int64_t wide = x;
      Raw(&wide, sizeof(wide));
    }
  }
  const std::string& str() const { return buf_; }

 private:
  void Raw(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool I64(int64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }
  bool Str(std::string* s) {
    uint64_t n = 0;
    if (!U64(&n) || n > size_ - pos_) return false;
    s->assign(data_ + pos_, static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return true;
  }
  bool IntVec(std::vector<int>* v) {
    uint64_t n = 0;
    if (!U64(&n) || n > (size_ - pos_) / sizeof(int64_t)) return false;
    v->resize(static_cast<size_t>(n));
    for (size_t i = 0; i < n; ++i) {
      int64_t wide = 0;
      if (!Raw(&wide, sizeof(wide))) return false;
      (*v)[i] = static_cast<int>(wide);
    }
    return true;
  }
  bool done() const { return pos_ == size_; }

 private:
  bool Raw(void* p, size_t n) {
    if (n > size_ - pos_) return false;
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

std::string ManifestPath(const std::string& dir, uint64_t epoch) {
  return dir + "/manifest-" + std::to_string(epoch) + ".prm";
}

std::string ShardFileName(uint64_t epoch, int worker) {
  return "shard-e" + std::to_string(epoch) + "-w" + std::to_string(worker) +
         ".prc";
}

std::string ShardPath(const std::string& dir, uint64_t epoch, int worker) {
  return dir + "/" + ShardFileName(epoch, worker);
}

Status SaveManifest(const std::string& dir, const RunManifest& manifest) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Unavailable("cannot create checkpoint dir: " + dir);
  }

  ByteWriter w;
  w.U32(kVersion);
  w.Str(manifest.engine);
  w.Str(manifest.strategy);
  w.I64(manifest.num_workers);
  w.U64(manifest.num_params);
  w.U64(manifest.seed);
  w.U64(manifest.epoch);
  w.U64(manifest.updates_done);
  w.U64(manifest.next_group_id);
  w.F64(manifest.saved_at_seconds);
  w.U64(manifest.history.size());
  for (const std::vector<int>& group : manifest.history) w.IntVec(group);
  w.U64(manifest.workers.size());
  for (const ManifestWorker& mw : manifest.workers) {
    w.I64(mw.worker);
    w.I64(mw.iteration);
    w.U64(mw.completed);
    w.Str(mw.shard_file);
  }

  const std::string path = ManifestPath(dir, manifest.epoch);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Unavailable("cannot open manifest for writing: " + tmp);
    }
    out.write(kMagic, sizeof(kMagic));
    out.write(w.str().data(),
              static_cast<std::streamsize>(w.str().size()));
    const uint64_t checksum = Fnv1a(w.str().data(), w.str().size());
    out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      return Status::Unavailable("short write to manifest: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Unavailable("cannot rename manifest into place: " + path);
  }
  return Status::OK();
}

Status LoadManifest(const std::string& path, RunManifest* out) {
  if (out == nullptr) {
    return Status::InvalidArgument("LoadManifest: null output");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("manifest not found: " + path);
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (blob.size() < sizeof(kMagic) + sizeof(uint64_t) ||
      std::memcmp(blob.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad manifest magic: " + path);
  }
  const size_t body = blob.size() - sizeof(kMagic) - sizeof(uint64_t);
  uint64_t checksum = 0;
  std::memcpy(&checksum, blob.data() + sizeof(kMagic) + body,
              sizeof(checksum));
  if (checksum != Fnv1a(blob.data() + sizeof(kMagic), body)) {
    return Status::InvalidArgument("manifest checksum mismatch: " + path);
  }

  ByteReader r(blob.data() + sizeof(kMagic), body);
  RunManifest m;
  int64_t num_workers = 0;
  uint64_t history_size = 0;
  uint64_t worker_count = 0;
  bool ok = r.U32(&m.version) && r.Str(&m.engine) && r.Str(&m.strategy) &&
            r.I64(&num_workers) && r.U64(&m.num_params) && r.U64(&m.seed) &&
            r.U64(&m.epoch) && r.U64(&m.updates_done) &&
            r.U64(&m.next_group_id) && r.F64(&m.saved_at_seconds) &&
            r.U64(&history_size);
  if (ok && m.version != kVersion) {
    return Status::InvalidArgument("unsupported manifest version: " + path);
  }
  m.num_workers = static_cast<int>(num_workers);
  for (uint64_t i = 0; ok && i < history_size; ++i) {
    std::vector<int> group;
    ok = r.IntVec(&group);
    if (ok) m.history.push_back(std::move(group));
  }
  ok = ok && r.U64(&worker_count);
  for (uint64_t i = 0; ok && i < worker_count; ++i) {
    ManifestWorker mw;
    int64_t worker = -1;
    ok = r.I64(&worker) && r.I64(&mw.iteration) && r.U64(&mw.completed) &&
         r.Str(&mw.shard_file);
    mw.worker = static_cast<int>(worker);
    if (ok) m.workers.push_back(std::move(mw));
  }
  if (!ok || !r.done()) {
    return Status::InvalidArgument("truncated manifest: " + path);
  }
  *out = std::move(m);
  return Status::OK();
}

Status FindLatestManifest(const std::string& dir, RunManifest* out,
                          std::string* path_out) {
  if (out == nullptr) {
    return Status::InvalidArgument("FindLatestManifest: null output");
  }
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return Status::NotFound("cannot scan checkpoint dir: " + dir);

  std::vector<std::pair<uint64_t, std::string>> candidates;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("manifest-", 0) != 0) continue;
    const size_t dot = name.rfind(".prm");
    if (dot == std::string::npos || dot + 4 != name.size()) continue;
    const std::string digits = name.substr(9, dot - 9);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    candidates.emplace_back(std::stoull(digits), entry.path().string());
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [epoch, path] : candidates) {
    (void)epoch;
    if (LoadManifest(path, out).ok()) {
      if (path_out != nullptr) *path_out = path;
      return Status::OK();
    }
  }
  return Status::NotFound("no valid manifest under " + dir);
}

Status SaveWorkerShard(const std::string& path, Slice params,
                       Slice velocity) {
  // Shards are written before their manifest, so the shard writer is the
  // first to touch a fresh checkpoint directory.
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      return Status::Unavailable("cannot create checkpoint dir: " +
                                 parent.string());
    }
  }
  return SaveCheckpointSpans(path, {params, velocity});
}

Status LoadWorkerShard(const std::string& path, size_t num_params,
                       std::vector<float>* params,
                       std::vector<float>* velocity) {
  if (params == nullptr || velocity == nullptr) {
    return Status::InvalidArgument("LoadWorkerShard: null output");
  }
  std::vector<float> flat;
  Status s = LoadCheckpoint(path, &flat);
  if (!s.ok()) return s;
  if (flat.size() != 2 * num_params) {
    return Status::InvalidArgument(
        "shard size mismatch (expected 2x" + std::to_string(num_params) +
        " floats): " + path);
  }
  params->assign(flat.begin(),
                 flat.begin() + static_cast<ptrdiff_t>(num_params));
  velocity->assign(flat.begin() + static_cast<ptrdiff_t>(num_params),
                   flat.end());
  return Status::OK();
}

}  // namespace pr
