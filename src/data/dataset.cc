#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace pr {

std::vector<Shard> ShardDataset(size_t n, size_t num_shards, Rng* rng) {
  PR_CHECK(rng != nullptr);
  PR_CHECK_GE(num_shards, 1u);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  rng->Shuffle(&order);

  std::vector<Shard> shards(num_shards);
  for (size_t i = 0; i < n; ++i) {
    shards[i % num_shards].indices.push_back(order[i]);
  }
  return shards;
}

std::vector<Shard> ShardDatasetDirichlet(const std::vector<int>& labels,
                                         int num_classes, size_t num_shards,
                                         double alpha, Rng* rng) {
  PR_CHECK(rng != nullptr);
  PR_CHECK_GE(num_shards, 1u);
  PR_CHECK_GE(num_classes, 1);
  PR_CHECK_GT(alpha, 0.0);

  // Bucket example indices by class, shuffled within each class.
  std::vector<std::vector<size_t>> by_class(
      static_cast<size_t>(num_classes));
  for (size_t i = 0; i < labels.size(); ++i) {
    const int c = labels[i];
    PR_CHECK_GE(c, 0);
    PR_CHECK_LT(c, num_classes);
    by_class[static_cast<size_t>(c)].push_back(i);
  }
  for (auto& bucket : by_class) rng->Shuffle(&bucket);

  std::vector<Shard> shards(num_shards);
  for (auto& bucket : by_class) {
    // Symmetric Dirichlet(alpha) over shards via normalized Gamma(alpha)
    // draws; Gamma sampled as sum-of-exponentials is wrong for alpha < 1,
    // so use the Marsaglia-Tsang boost: Gamma(a) = Gamma(a+1) * U^(1/a).
    std::vector<double> weights(num_shards);
    double total = 0.0;
    for (auto& w : weights) {
      // Marsaglia-Tsang for shape a+1 >= 1.
      const double a = alpha + 1.0;
      const double d = a - 1.0 / 3.0;
      const double c = 1.0 / std::sqrt(9.0 * d);
      double g;
      while (true) {
        double x = rng->Normal();
        double v = 1.0 + c * x;
        if (v <= 0.0) continue;
        v = v * v * v;
        double u = rng->Uniform();
        if (u < 1.0 - 0.0331 * x * x * x * x ||
            std::log(u + 1e-300) <
                0.5 * x * x + d * (1.0 - v + std::log(v))) {
          g = d * v;
          break;
        }
      }
      g *= std::pow(rng->Uniform() + 1e-300, 1.0 / alpha);
      w = g;
      total += w;
    }
    PR_CHECK_GT(total, 0.0);

    // Deal the class bucket out proportionally (largest remainder).
    size_t dealt = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      const size_t take = static_cast<size_t>(
          static_cast<double>(bucket.size()) * weights[s] / total);
      for (size_t k = 0; k < take && dealt < bucket.size(); ++k) {
        shards[s].indices.push_back(bucket[dealt++]);
      }
    }
    // Remainder round-robin, weighted order.
    size_t s = 0;
    while (dealt < bucket.size()) {
      shards[s % num_shards].indices.push_back(bucket[dealt++]);
      ++s;
    }
  }

  // Guarantee no shard is empty (a worker must be able to sample batches):
  // steal from the largest shard.
  for (auto& shard : shards) {
    while (shard.indices.empty()) {
      auto* largest = &shards[0];
      for (auto& other : shards) {
        if (other.indices.size() > largest->indices.size()) {
          largest = &other;
        }
      }
      PR_CHECK_GT(largest->indices.size(), 1u);
      shard.indices.push_back(largest->indices.back());
      largest->indices.pop_back();
    }
  }
  return shards;
}

BatchSampler::BatchSampler(const Dataset* dataset, Shard shard,
                           size_t batch_size, uint64_t seed)
    : dataset_(dataset),
      shard_(std::move(shard)),
      batch_size_(std::min(batch_size, shard_.size())),
      rng_(seed) {
  PR_CHECK(dataset_ != nullptr);
  PR_CHECK_GE(batch_size, 1u);
  PR_CHECK_GT(shard_.size(), 0u);
  Reshuffle();
}

void BatchSampler::Reshuffle() {
  rng_.Shuffle(&shard_.indices);
  cursor_ = 0;
}

void BatchSampler::NextBatch(Tensor* x, std::vector<int>* y) {
  PR_CHECK(x != nullptr);
  PR_CHECK(y != nullptr);
  const size_t dim = dataset_->dim();
  *x = Tensor(batch_size_, dim);
  y->resize(batch_size_);
  for (size_t b = 0; b < batch_size_; ++b) {
    if (cursor_ >= shard_.size()) Reshuffle();
    const size_t row = shard_.indices[cursor_++];
    std::memcpy(x->Row(b), dataset_->features.Row(row), dim * sizeof(float));
    (*y)[b] = dataset_->labels[row];
  }
}

}  // namespace pr
