#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace pr {

/// \brief Parameters for the synthetic Gaussian-mixture classification task.
///
/// Substitutes for the paper's image datasets (CIFAR10/CIFAR100/ImageNet):
/// each class c gets `modes_per_class` random unit-norm mode centers scaled
/// by `separation`; examples of class c draw a mode uniformly, then add
/// N(0, noise^2 I). With a single mode the task is (nearly) linearly
/// separable and converges in a couple of epochs; with several modes per
/// class the Bayes classifier is non-linear, so the MLP must slowly carve
/// hidden units per mode — reproducing the slow, monotone accuracy curves
/// (and the staleness sensitivity) of real CNN training. Class counts match
/// the paper's datasets so difficulty ordering carries over.
struct SyntheticSpec {
  size_t num_train = 8192;
  size_t num_test = 2048;
  size_t dim = 64;
  int num_classes = 10;
  /// Gaussian modes per class (1 = classic mixture-of-Gaussians).
  int modes_per_class = 1;
  /// Distance scale between mode centers.
  double separation = 2.2;
  /// Stddev of the isotropic within-class noise.
  double noise = 1.0;
  /// Fraction of training labels flipped uniformly at random; irreducible
  /// error that caps reachable accuracy (lets us emulate "threshold not
  /// reachable by stale-gradient methods" regimes).
  double label_noise = 0.0;
  /// Non-IID sharding: when > 0, workers receive Dirichlet(alpha)
  /// label-skewed shards (ShardDatasetDirichlet) instead of IID draws.
  /// Small alpha (0.1–0.5) gives each worker a strongly skewed class mix —
  /// the regime where model averaging and dynamic weights are stressed.
  /// 0 keeps the historical IID split. Carried on the spec (rather than the
  /// run options) so one `run.dataset.*` config block describes both the
  /// distribution and its partitioning.
  double dirichlet_alpha = 0.0;
  uint64_t seed = 42;
};

/// \brief Canned specs shaped after the paper's datasets.
///
/// `name` is one of "cifar10", "cifar100", "imagenet". The returned spec has
/// matching class counts and difficulty increasing in that order.
SyntheticSpec SpecForDataset(const std::string& name);

/// \brief Generated train/test pair sharing class centers.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// \brief Generates a train/test split from `spec`, deterministically in
/// `spec.seed`.
TrainTestSplit GenerateSynthetic(const SyntheticSpec& spec);

}  // namespace pr
