#include "data/synthetic.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "tensor/ops.h"

namespace pr {
namespace {

/// Draws `count` examples around the given mode centers into a Dataset.
/// `centers` has one row per (class, mode) pair, class-major.
Dataset Generate(const Tensor& centers, const SyntheticSpec& spec,
                 size_t count, Rng* rng, bool apply_label_noise) {
  Dataset ds;
  ds.num_classes = spec.num_classes;
  ds.features = Tensor(count, spec.dim);
  ds.labels.resize(count);
  for (size_t i = 0; i < count; ++i) {
    const int label = static_cast<int>(rng->UniformInt(
        static_cast<uint64_t>(spec.num_classes)));
    const size_t mode = rng->UniformInt(
        static_cast<uint64_t>(spec.modes_per_class));
    const float* mu = centers.Row(
        static_cast<size_t>(label) *
            static_cast<size_t>(spec.modes_per_class) + mode);
    float* row = ds.features.Row(i);
    for (size_t d = 0; d < spec.dim; ++d) {
      row[d] = mu[d] + static_cast<float>(rng->Normal(0.0, spec.noise));
    }
    int observed = label;
    if (apply_label_noise && spec.label_noise > 0.0 &&
        rng->Bernoulli(spec.label_noise)) {
      observed = static_cast<int>(
          rng->UniformInt(static_cast<uint64_t>(spec.num_classes)));
    }
    ds.labels[i] = observed;
  }
  return ds;
}

}  // namespace

SyntheticSpec SpecForDataset(const std::string& name) {
  SyntheticSpec spec;
  // Separations / label noise are calibrated so that (a) the achievable
  // test accuracy sits a little above the convergence thresholds the paper
  // uses per dataset, and (b) stale-gradient baselines plateau measurably
  // below synchronous ones (the paper's ER/ASP findings). See
  // EXPERIMENTS.md, "calibration".
  if (name == "cifar10") {
    spec.num_classes = 10;
    spec.dim = 64;
    spec.num_train = 8192;
    spec.num_test = 2048;
    spec.separation = 3.2;
    spec.noise = 1.0;
    spec.label_noise = 0.05;
  } else if (name == "cifar100") {
    spec.num_classes = 100;
    spec.dim = 96;
    spec.num_train = 12288;
    spec.num_test = 3072;
    spec.separation = 4.0;
    spec.noise = 1.0;
    spec.label_noise = 0.05;
  } else if (name == "imagenet") {
    spec.num_classes = 1000;
    spec.dim = 64;
    spec.num_train = 32768;
    spec.num_test = 2048;
    spec.separation = 5.5;
    spec.noise = 1.0;
    spec.label_noise = 0.02;
  } else {
    PR_CHECK(false) << "unknown dataset name: " << name;
  }
  return spec;
}

TrainTestSplit GenerateSynthetic(const SyntheticSpec& spec) {
  PR_CHECK_GE(spec.num_classes, 2);
  PR_CHECK_GE(spec.dim, 1u);
  PR_CHECK_GE(spec.num_train, 1u);
  PR_CHECK_GE(spec.num_test, 1u);
  PR_CHECK_GE(spec.modes_per_class, 1);
  Rng rng(spec.seed);

  // Random unit-norm mode centers scaled by `separation`, one row per
  // (class, mode) pair.
  const size_t num_centers = static_cast<size_t>(spec.num_classes) *
                             static_cast<size_t>(spec.modes_per_class);
  Tensor centers(num_centers, spec.dim);
  for (size_t c = 0; c < num_centers; ++c) {
    float* row = centers.Row(c);
    for (size_t d = 0; d < spec.dim; ++d) {
      row[d] = static_cast<float>(rng.Normal(0.0, 1.0));
    }
    const float norm = Norm2(row, spec.dim);
    PR_CHECK_GT(norm, 0.0f);
    Scale(static_cast<float>(spec.separation) / norm, row, spec.dim);
  }

  TrainTestSplit split;
  split.train = Generate(centers, spec, spec.num_train, &rng,
                         /*apply_label_noise=*/true);
  split.test = Generate(centers, spec, spec.num_test, &rng,
                        /*apply_label_noise=*/false);
  return split;
}

}  // namespace pr
