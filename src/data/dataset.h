#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.h"

namespace pr {

/// \brief An in-memory labeled classification dataset.
///
/// `features` is an [num_examples, dim] matrix; `labels[i]` is the integer
/// class of row i. Datasets are immutable once built; workers address them
/// through index shards so no copies are made per worker.
struct Dataset {
  Tensor features;          ///< [n, dim]
  std::vector<int> labels;  ///< length n, values in [0, num_classes)
  int num_classes = 0;

  size_t size() const { return labels.size(); }
  size_t dim() const { return features.cols(); }
};

/// \brief A view of a worker's portion of a dataset: a list of row indices.
struct Shard {
  std::vector<size_t> indices;
  size_t size() const { return indices.size(); }
};

/// \brief Splits `n` examples into `num_shards` disjoint, near-equal shards.
///
/// Indices are shuffled with `rng` first so shards are i.i.d. draws from the
/// dataset — the "data sharding approach" of the paper's implementation
/// section, which keeps the unbiased-gradient assumption (Assumption 1.2)
/// reasonable.
std::vector<Shard> ShardDataset(size_t n, size_t num_shards, Rng* rng);

/// \brief Non-IID sharding: class proportions per shard follow a symmetric
/// Dirichlet(alpha) draw, the standard federated/heterogeneous-data split.
///
/// Small alpha (e.g. 0.3) gives each worker a strongly skewed class mix;
/// alpha -> infinity recovers the IID split. Skewed shards make worker
/// models *biased* between synchronizations, which is what makes staleness
/// and partial aggregation genuinely costly (and the paper's dynamic
/// weights genuinely useful). Shards are disjoint, cover all examples, and
/// sizes are balanced to within a factor set by the draw.
std::vector<Shard> ShardDatasetDirichlet(const std::vector<int>& labels,
                                         int num_classes, size_t num_shards,
                                         double alpha, Rng* rng);

/// \brief Samples mini-batches from one shard, with replacement across
/// batches and epoch-style shuffling within.
///
/// Each call to NextBatch copies `batch_size` rows from the dataset into the
/// output tensors. When the shard is exhausted, the order is reshuffled
/// (a new epoch).
class BatchSampler {
 public:
  /// `dataset` must outlive the sampler. batch_size must be >= 1; if it
  /// exceeds the shard size the whole shard is used each batch.
  BatchSampler(const Dataset* dataset, Shard shard, size_t batch_size,
               uint64_t seed);

  /// Fills `x` with [b, dim] features and `y` with b labels.
  void NextBatch(Tensor* x, std::vector<int>* y);

  size_t batch_size() const { return batch_size_; }

 private:
  void Reshuffle();

  const Dataset* dataset_;
  Shard shard_;
  size_t batch_size_;
  size_t cursor_ = 0;
  Rng rng_;
};

}  // namespace pr
