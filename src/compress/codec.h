#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"

namespace pr {

/// \brief Payload compression schemes for the collective data plane
/// (DESIGN.md §5i).
///
/// The enum values double as the wire payload-encoding tag (the flags byte
/// of the PRW1 v2 preamble), so they are stable protocol constants: 0 must
/// stay "raw fp32" forever, and new codecs append.
enum class CompressionKind : uint8_t {
  kNone = 0,  ///< raw fp32 floats (the uncompressed payload path)
  kFp16 = 1,  ///< IEEE-754 half precision, software converted
  kInt8 = 2,  ///< linear 8-bit quantization, per-chunk min/scale
  kTopK = 3,  ///< deterministic top-k magnitude sparsification
};

/// Number of distinct encoding tags (for validation of wire bytes).
inline constexpr uint8_t kNumCompressionKinds = 4;

/// True when `tag` names a known encoding (a corrupt frame check).
inline bool IsValidEncodingTag(uint8_t tag) {
  return tag < kNumCompressionKinds;
}

/// Config/report token: "none" | "fp16" | "int8" | "topk".
std::string CompressionKindName(CompressionKind kind);

/// Parses a config token; false on an unknown name.
bool ParseCompressionKind(const std::string& token, CompressionKind* out);

/// Elements per int8 quantization chunk: each chunk carries its own
/// min/scale pair, so a single outlier only degrades 1 KiB of neighbours.
inline constexpr size_t kInt8ChunkElems = 1024;

/// Top-k keeps 1 in kTopKDivisor elements (at least one when n > 0).
inline constexpr size_t kTopKDivisor = 8;

/// \brief One compression scheme: float range -> self-describing blob and
/// back.
///
/// Blobs are float-backed Buffers (the transport's only payload type); the
/// codec treats the floats as a raw 4-byte word array via memcpy, so
/// `blob.size() * 4` is exactly the bytes that cross the wire. Word 0 is
/// always the element count `n`, making every blob self-describing: a
/// decoder needs only the blob and the encoding tag.
///
/// Codecs are stateless and deterministic: the same input always yields the
/// same blob on every platform (ties in top-k selection break toward the
/// lower index; int8 rounding is round-half-up via truncation).
class Codec {
 public:
  virtual ~Codec() = default;

  virtual CompressionKind kind() const = 0;

  /// Encodes `n` floats into a blob. `x` may be null only when n == 0.
  virtual Buffer Encode(const float* x, size_t n) const = 0;

  /// Decodes a blob into `out` (resized to the encoded element count).
  /// InvalidArgument on a malformed blob (truncated, inconsistent counts).
  virtual Status Decode(const Buffer& blob, std::vector<float>* out) const = 0;

  /// Exact blob size in bytes for an `n`-element encode — the analytical
  /// form of Encode(x, n).size() * 4, used by the simulator's traffic model
  /// and the bench's bytes-on-wire accounting.
  virtual size_t EncodedBytes(size_t n) const = 0;
};

/// Factory. `kind` must not be kNone (raw payloads bypass codecs entirely).
std::unique_ptr<Codec> MakeCodec(CompressionKind kind);

/// Blob (or raw payload) bytes for an `n`-element vector under `kind`;
/// kNone counts the raw fp32 bytes. Shared by the sim traffic model and the
/// bench report so both agree with the threaded engine's byte counters.
size_t EncodedBlobBytes(CompressionKind kind, size_t n);

/// Decodes a payload stamped with wire encoding `tag`: raw fp32 payloads
/// (tag 0) copy through, everything else routes to the matching codec.
Status DecodeTaggedPayload(uint8_t tag, const Buffer& payload,
                           std::vector<float>* out);

}  // namespace pr
