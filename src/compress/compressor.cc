#include "compress/compressor.h"

#include <cmath>
#include <cstring>

#include "common/check.h"

namespace pr {

Compressor::Compressor(CompressionKind kind) : kind_(kind) {
  if (kind != CompressionKind::kNone) codec_ = MakeCodec(kind);
}

void Compressor::AttachMetrics(MetricsShard* metrics) {
  if (metrics == nullptr) return;
  bytes_in_ = metrics->GetCounter("compress.bytes_in");
  bytes_out_ = metrics->GetCounter("compress.bytes_out");
  ratio_ = metrics->GetGauge("compress.ratio");
}

void Compressor::EnsureResidual(size_t end) {
  if (residual_.size() < end) residual_.resize(end, 0.0f);
}

Buffer Compressor::EncodeImpl(const float* range, size_t offset, size_t len,
                              float* publish) {
  PR_CHECK(enabled());
  PR_CHECK(range != nullptr || len == 0);
  EnsureResidual(offset + len);
  scratch_.resize(len);
  float* res = residual_.data() + offset;
  for (size_t i = 0; i < len; ++i) scratch_[i] = range[i] + res[i];
  Buffer blob = codec_->Encode(scratch_.data(), len);
  Status s = codec_->Decode(blob, &decoded_);
  PR_CHECK(s.ok()) << "codec failed to decode its own blob: " << s.message();
  PR_CHECK_EQ(decoded_.size(), len);
  for (size_t i = 0; i < len; ++i) res[i] = scratch_[i] - decoded_[i];
  if (publish != nullptr && len > 0) {
    std::memcpy(publish, decoded_.data(), len * sizeof(float));
  }
  total_in_ += static_cast<double>(len * sizeof(float));
  total_out_ += static_cast<double>(blob.size() * sizeof(float));
  if (bytes_in_ != nullptr) {
    bytes_in_->Increment(static_cast<double>(len * sizeof(float)));
    bytes_out_->Increment(static_cast<double>(blob.size() * sizeof(float)));
    if (total_out_ > 0.0) ratio_->Set(total_in_ / total_out_);
  }
  return blob;
}

Buffer Compressor::EncodeRange(const float* range, size_t offset, size_t len) {
  return EncodeImpl(range, offset, len, nullptr);
}

Buffer Compressor::EncodeRangePublish(float* range, size_t offset,
                                      size_t len) {
  return EncodeImpl(range, offset, len, range);
}

Status Compressor::Decode(const Buffer& blob, std::vector<float>* out) const {
  PR_CHECK(enabled());
  return codec_->Decode(blob, out);
}

Status Compressor::DecodeInto(const Buffer& blob, float* out,
                              size_t len) const {
  PR_CHECK(enabled());
  std::vector<float> tmp;
  PR_RETURN_NOT_OK(codec_->Decode(blob, &tmp));
  if (tmp.size() != len) {
    return Status::InvalidArgument("compressed payload: length mismatch");
  }
  if (len > 0) std::memcpy(out, tmp.data(), len * sizeof(float));
  return Status::OK();
}

size_t Compressor::EncodedBytes(size_t n) const {
  return EncodedBlobBytes(kind_, n);
}

double Compressor::ResidualL1() const {
  double sum = 0.0;
  for (float r : residual_) sum += std::abs(r);
  return sum;
}

}  // namespace pr
