#include "compress/codec.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "common/check.h"

namespace pr {
namespace {

// ---------------------------------------------------------------------------
// Word-level blob access. Blobs are float-backed Buffers treated as raw
// 4-byte words; all access goes through memcpy so no float operation ever
// touches (and possibly quietens) the packed integer bits.
// ---------------------------------------------------------------------------

void PutWord(std::vector<float>* words, uint32_t w) {
  float f;
  std::memcpy(&f, &w, sizeof(f));
  words->push_back(f);
}

void PutFloatWord(std::vector<float>* words, float v) { words->push_back(v); }

uint32_t GetWord(const Buffer& blob, size_t i) {
  uint32_t w;
  std::memcpy(&w, blob.data() + i, sizeof(w));
  return w;
}

float GetFloatWord(const Buffer& blob, size_t i) { return blob[i]; }

// ---------------------------------------------------------------------------
// Software IEEE-754 half conversion (portable: no F16C/NEON intrinsics, so
// encodes are bitwise identical across every host this repo builds on).
// ---------------------------------------------------------------------------

uint16_t FloatToHalf(float f) {
  uint32_t x;
  std::memcpy(&x, &f, sizeof(x));
  const uint16_t sign = static_cast<uint16_t>((x >> 16) & 0x8000u);
  const uint32_t exp = (x >> 23) & 0xffu;
  uint32_t mant = x & 0x7fffffu;
  if (exp == 0xffu) {  // inf / nan (keep nan-ness in the top mantissa bit)
    return sign | 0x7c00u | (mant != 0 ? 0x200u : 0u);
  }
  const int e = static_cast<int>(exp) - 127 + 15;
  if (e >= 31) return sign | 0x7c00u;  // overflow -> inf
  if (e <= 0) {
    if (e < -10) return sign;  // underflow -> signed zero
    mant |= 0x800000u;         // make the implicit bit explicit
    const uint32_t shift = static_cast<uint32_t>(14 - e);
    uint16_t h = static_cast<uint16_t>(mant >> shift);
    if ((mant >> (shift - 1)) & 1u) ++h;  // round half away from zero
    return sign | h;
  }
  uint16_t h = static_cast<uint16_t>((e << 10) | (mant >> 13));
  // Round half away from zero; a carry ripples into the exponent, which is
  // exactly the correct rounding (1.11..1 * 2^e -> 2^(e+1)).
  if (mant & 0x1000u) ++h;
  return sign | h;
}

float HalfToFloat(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1fu;
  uint32_t mant = h & 0x3ffu;
  uint32_t x;
  if (exp == 0) {
    if (mant == 0) {
      x = sign;
    } else {  // subnormal half: renormalize into a normal float
      int e = -1;
      do {
        mant <<= 1;
        ++e;
      } while ((mant & 0x400u) == 0);
      mant &= 0x3ffu;
      x = sign | (static_cast<uint32_t>(127 - 15 - e) << 23) | (mant << 13);
    }
  } else if (exp == 31) {
    x = sign | 0x7f800000u | (mant << 13);
  } else {
    x = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float f;
  std::memcpy(&f, &x, sizeof(f));
  return f;
}

// ---------------------------------------------------------------------------
// fp16 codec: word 0 = n, then ceil(n/2) words each packing two halves
// (element 2j in the low 16 bits, 2j+1 in the high).
// ---------------------------------------------------------------------------

class Fp16Codec : public Codec {
 public:
  CompressionKind kind() const override { return CompressionKind::kFp16; }

  Buffer Encode(const float* x, size_t n) const override {
    PR_CHECK(x != nullptr || n == 0);
    std::vector<float> words;
    words.reserve(1 + (n + 1) / 2);
    PutWord(&words, static_cast<uint32_t>(n));
    for (size_t i = 0; i < n; i += 2) {
      uint32_t packed = FloatToHalf(x[i]);
      if (i + 1 < n) {
        packed |= static_cast<uint32_t>(FloatToHalf(x[i + 1])) << 16;
      }
      PutWord(&words, packed);
    }
    return Buffer::FromVector(std::move(words));
  }

  Status Decode(const Buffer& blob, std::vector<float>* out) const override {
    PR_CHECK(out != nullptr);
    if (blob.empty()) return Status::InvalidArgument("fp16 blob: empty");
    const size_t n = GetWord(blob, 0);
    if (blob.size() != 1 + (n + 1) / 2) {
      return Status::InvalidArgument("fp16 blob: size/count mismatch");
    }
    out->resize(n);
    for (size_t i = 0; i < n; i += 2) {
      const uint32_t packed = GetWord(blob, 1 + i / 2);
      (*out)[i] = HalfToFloat(static_cast<uint16_t>(packed & 0xffffu));
      if (i + 1 < n) {
        (*out)[i + 1] = HalfToFloat(static_cast<uint16_t>(packed >> 16));
      }
    }
    return Status::OK();
  }

  size_t EncodedBytes(size_t n) const override {
    return 4 * (1 + (n + 1) / 2);
  }
};

// ---------------------------------------------------------------------------
// int8 codec: word 0 = n, then per kInt8ChunkElems-element chunk a float
// min word, a float scale word, and ceil(len/4) words of packed quantized
// bytes. q = round_half_up((x - min) / scale) clamped to [0, 255].
// ---------------------------------------------------------------------------

class Int8Codec : public Codec {
 public:
  CompressionKind kind() const override { return CompressionKind::kInt8; }

  Buffer Encode(const float* x, size_t n) const override {
    PR_CHECK(x != nullptr || n == 0);
    std::vector<float> words;
    words.reserve(EncodedBytes(n) / 4);
    PutWord(&words, static_cast<uint32_t>(n));
    for (size_t begin = 0; begin < n; begin += kInt8ChunkElems) {
      const size_t len = std::min(kInt8ChunkElems, n - begin);
      const float* chunk = x + begin;
      float lo = chunk[0], hi = chunk[0];
      for (size_t i = 1; i < len; ++i) {
        lo = std::min(lo, chunk[i]);
        hi = std::max(hi, chunk[i]);
      }
      const float scale = (hi - lo) / 255.0f;
      PutFloatWord(&words, lo);
      PutFloatWord(&words, scale);
      for (size_t i = 0; i < len; i += 4) {
        uint32_t packed = 0;
        for (size_t j = 0; j < 4 && i + j < len; ++j) {
          uint32_t q = 0;
          if (scale > 0.0f) {
            const float v = (chunk[i + j] - lo) / scale + 0.5f;
            q = v <= 0.0f ? 0u
                          : std::min<uint32_t>(255u,
                                               static_cast<uint32_t>(v));
          }
          packed |= q << (8 * j);
        }
        PutWord(&words, packed);
      }
    }
    return Buffer::FromVector(std::move(words));
  }

  Status Decode(const Buffer& blob, std::vector<float>* out) const override {
    PR_CHECK(out != nullptr);
    if (blob.empty()) return Status::InvalidArgument("int8 blob: empty");
    const size_t n = GetWord(blob, 0);
    if (blob.size() * 4 != EncodedBytes(n)) {
      return Status::InvalidArgument("int8 blob: size/count mismatch");
    }
    out->resize(n);
    size_t w = 1;
    for (size_t begin = 0; begin < n; begin += kInt8ChunkElems) {
      const size_t len = std::min(kInt8ChunkElems, n - begin);
      const float lo = GetFloatWord(blob, w++);
      const float scale = GetFloatWord(blob, w++);
      for (size_t i = 0; i < len; i += 4) {
        const uint32_t packed = GetWord(blob, w++);
        for (size_t j = 0; j < 4 && i + j < len; ++j) {
          const uint32_t q = (packed >> (8 * j)) & 0xffu;
          (*out)[begin + i + j] = lo + scale * static_cast<float>(q);
        }
      }
    }
    return Status::OK();
  }

  size_t EncodedBytes(size_t n) const override {
    size_t words = 1;
    for (size_t begin = 0; begin < n; begin += kInt8ChunkElems) {
      const size_t len = std::min(kInt8ChunkElems, n - begin);
      words += 2 + (len + 3) / 4;
    }
    return 4 * words;
  }
};

// ---------------------------------------------------------------------------
// top-k codec: word 0 = n, word 1 = k, then k uint32 index words (strictly
// ascending) and k float value words. Selection is deterministic: largest
// |value| first, ties broken toward the lower index.
// ---------------------------------------------------------------------------

size_t TopKCount(size_t n) {
  return n == 0 ? 0 : std::max<size_t>(1, n / kTopKDivisor);
}

class TopKCodec : public Codec {
 public:
  CompressionKind kind() const override { return CompressionKind::kTopK; }

  Buffer Encode(const float* x, size_t n) const override {
    PR_CHECK(x != nullptr || n == 0);
    const size_t k = TopKCount(n);
    std::vector<uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0u);
    auto by_magnitude = [x](uint32_t a, uint32_t b) {
      const float ma = std::abs(x[a]);
      const float mb = std::abs(x[b]);
      if (ma != mb) return ma > mb;
      return a < b;
    };
    if (k < n) {
      std::nth_element(order.begin(), order.begin() + static_cast<long>(k),
                       order.end(), by_magnitude);
    }
    order.resize(k);
    std::sort(order.begin(), order.end());  // ascending index for locality

    std::vector<float> words;
    words.reserve(2 + 2 * k);
    PutWord(&words, static_cast<uint32_t>(n));
    PutWord(&words, static_cast<uint32_t>(k));
    for (uint32_t idx : order) PutWord(&words, idx);
    for (uint32_t idx : order) PutFloatWord(&words, x[idx]);
    return Buffer::FromVector(std::move(words));
  }

  Status Decode(const Buffer& blob, std::vector<float>* out) const override {
    PR_CHECK(out != nullptr);
    if (blob.size() < 2) return Status::InvalidArgument("topk blob: empty");
    const size_t n = GetWord(blob, 0);
    const size_t k = GetWord(blob, 1);
    if (k > n || k != TopKCount(n) || blob.size() != 2 + 2 * k) {
      return Status::InvalidArgument("topk blob: size/count mismatch");
    }
    out->assign(n, 0.0f);
    for (size_t i = 0; i < k; ++i) {
      const uint32_t idx = GetWord(blob, 2 + i);
      if (idx >= n) return Status::InvalidArgument("topk blob: index oob");
      (*out)[idx] = GetFloatWord(blob, 2 + k + i);
    }
    return Status::OK();
  }

  size_t EncodedBytes(size_t n) const override {
    return 4 * (2 + 2 * TopKCount(n));
  }
};

const Codec* CodecFor(CompressionKind kind) {
  static const Fp16Codec fp16;
  static const Int8Codec int8;
  static const TopKCodec topk;
  switch (kind) {
    case CompressionKind::kFp16:
      return &fp16;
    case CompressionKind::kInt8:
      return &int8;
    case CompressionKind::kTopK:
      return &topk;
    case CompressionKind::kNone:
      break;
  }
  return nullptr;
}

}  // namespace

std::string CompressionKindName(CompressionKind kind) {
  switch (kind) {
    case CompressionKind::kNone:
      return "none";
    case CompressionKind::kFp16:
      return "fp16";
    case CompressionKind::kInt8:
      return "int8";
    case CompressionKind::kTopK:
      return "topk";
  }
  return "none";
}

bool ParseCompressionKind(const std::string& token, CompressionKind* out) {
  if (token == "none") {
    *out = CompressionKind::kNone;
  } else if (token == "fp16") {
    *out = CompressionKind::kFp16;
  } else if (token == "int8") {
    *out = CompressionKind::kInt8;
  } else if (token == "topk") {
    *out = CompressionKind::kTopK;
  } else {
    return false;
  }
  return true;
}

std::unique_ptr<Codec> MakeCodec(CompressionKind kind) {
  switch (kind) {
    case CompressionKind::kFp16:
      return std::make_unique<Fp16Codec>();
    case CompressionKind::kInt8:
      return std::make_unique<Int8Codec>();
    case CompressionKind::kTopK:
      return std::make_unique<TopKCodec>();
    case CompressionKind::kNone:
      break;
  }
  PR_CHECK(false) << "MakeCodec: kNone has no codec";
  return nullptr;
}

size_t EncodedBlobBytes(CompressionKind kind, size_t n) {
  if (kind == CompressionKind::kNone) return n * sizeof(float);
  return CodecFor(kind)->EncodedBytes(n);
}

Status DecodeTaggedPayload(uint8_t tag, const Buffer& payload,
                           std::vector<float>* out) {
  PR_CHECK(out != nullptr);
  if (!IsValidEncodingTag(tag)) {
    return Status::InvalidArgument("unknown payload encoding tag");
  }
  const CompressionKind kind = static_cast<CompressionKind>(tag);
  if (kind == CompressionKind::kNone) {
    *out = payload.ToVector();
    return Status::OK();
  }
  return CodecFor(kind)->Decode(payload, out);
}

}  // namespace pr
