#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "compress/codec.h"
#include "obs/metrics.h"

namespace pr {

/// \brief Per-worker lossy-compression state: a codec plus an error-feedback
/// residual accumulator (DESIGN.md §5i).
///
/// Lossy codecs drop information every encode; error feedback keeps the
/// dropped part alive by folding each position's accumulated quantization
/// error into the *next* value encoded at that position:
///
///     send_i     = value_i + residual_i
///     blob       = Encode(send)
///     residual_i = send_i - Decode(blob)_i
///
/// Over a run the error at every position telescopes instead of compounding,
/// which is what preserves the Theorem 1 convergence behaviour under
/// compressed P-Reduce. The residual is indexed by *global element position*
/// (the offset arguments below), so a segmented ring that encodes each
/// position once per reduce-scatter pass and once per all-gather pass keeps
/// a well-defined per-position error stream.
///
/// One instance per worker (and one for a central server), owned by its
/// context and used only from that context's thread — like the Endpoint, it
/// is not thread-safe.
class Compressor {
 public:
  /// kNone builds a disabled pass-through (enabled() == false); the
  /// collectives then take their uncompressed paths untouched.
  explicit Compressor(CompressionKind kind);

  CompressionKind kind() const { return kind_; }
  bool enabled() const { return codec_ != nullptr; }
  /// The wire payload-encoding tag this compressor's blobs carry.
  uint8_t encoding_tag() const { return static_cast<uint8_t>(kind_); }

  /// Wires the compress.bytes_in / compress.bytes_out counters and the
  /// compress.ratio gauge (bytes_in / bytes_out so far) into `metrics`.
  /// Optional; pass the owning context's shard.
  void AttachMetrics(MetricsShard* metrics);

  /// Encodes `range[0..len)`, whose global element positions are
  /// `offset..offset+len`, with error feedback: the positions' residuals are
  /// added before encoding and updated to the new encode error after.
  /// `range` is not modified. Requires enabled().
  Buffer EncodeRange(const float* range, size_t offset, size_t len);

  /// EncodeRange, additionally overwriting `range` with the decoded (lossy)
  /// values of the returned blob. The segmented ring's all-gather uses this
  /// so the chunk owner publishes bitwise the same values every other member
  /// decodes — replicas stay bitwise identical under compression.
  Buffer EncodeRangePublish(float* range, size_t offset, size_t len);

  /// Decodes a blob produced by any compressor of the same kind.
  Status Decode(const Buffer& blob, std::vector<float>* out) const;

  /// Decodes directly into `out[0..len)`; InvalidArgument when the blob's
  /// element count differs from `len`.
  Status DecodeInto(const Buffer& blob, float* out, size_t len) const;

  /// Exact blob bytes for an `n`-element encode.
  size_t EncodedBytes(size_t n) const;

  /// Sum of |residual| over all touched positions (tests / diagnostics).
  double ResidualL1() const;

 private:
  void EnsureResidual(size_t end);
  Buffer EncodeImpl(const float* range, size_t offset, size_t len,
                    float* publish);

  CompressionKind kind_;
  std::unique_ptr<Codec> codec_;  // null when kind_ == kNone
  std::vector<float> residual_;  // grown lazily to the largest offset seen
  std::vector<float> scratch_;
  std::vector<float> decoded_;
  Counter* bytes_in_ = nullptr;
  Counter* bytes_out_ = nullptr;
  Gauge* ratio_ = nullptr;
  double total_in_ = 0.0;
  double total_out_ = 0.0;
};

}  // namespace pr
