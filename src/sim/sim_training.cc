#include "sim/sim_training.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "common/check.h"
#include "common/logging.h"
#include "tensor/ops.h"

namespace pr {

SimTraining::SimTraining(const SimTrainingOptions& options)
    : options_(options),
      metrics_shard_(registry_.NewShard()),
      trace_(options.trace_capacity),
      rng_(options.seed) {
  PR_CHECK_GE(options.num_workers, 1);
  PR_CHECK_GE(options.batch_size, 1u);
  PR_CHECK(options.topology.flat() ||
           options.topology.num_workers() == options.num_workers)
      << "topology places " << options_.topology.num_workers()
      << " workers but the run has " << options.num_workers;
  // Eagerly registered so flat sim runs expose the same transport.* names
  // as topology-aware ones and as the threaded Endpoint.
  metrics_shard_->GetCounter("transport.inter_node_bytes");

  // Chaos scenario: compile the trace against this run's shape and merge
  // the result into the fault plan before anything reads it. Depart/arrive
  // windows go to scenario_churn_ for the strategy to schedule in virtual
  // time (the threaded engine walks the same compiled stream).
  if (options_.scenario.enabled()) {
    CompiledScenario compiled;
    const Status s =
        CompileScenario(options_.scenario, options_.num_workers,
                        options_.topology, options_.fault, &compiled);
    PR_CHECK(s.ok()) << "scenario '" << options_.scenario.name
                     << "': " << s.message();
    options_.fault = std::move(compiled.fault);
    scenario_churn_ = std::move(compiled.churn);
  }

  SyntheticSpec spec = options.custom_dataset.has_value()
                           ? *options.custom_dataset
                           : SpecForDataset(options.dataset);
  spec.seed = options.seed;  // the run seed controls the data too
  split_ = GenerateSynthetic(spec);

  model_ = MakeProxyModel(options.model, spec.dim, spec.num_classes);
  cost_ = std::make_unique<CostModel>(LookupPaperModel(options.paper_model),
                                      options.cost);
  hetero_ = MakeHeterogeneityModel(options.hetero, options.num_workers,
                                   rng_.Next());

  // Single shared initialization copied to all replicas (Alg. 2 requires
  // identical starting points).
  std::vector<float> init;
  model_->InitParams(&init, &rng_);

  Rng shard_rng = rng_.Fork();
  // The skew knob lives in two places: SimTrainingOptions for sim-native
  // callers and SyntheticSpec for configs that describe the dataset as one
  // block (the threaded engine's convention). Options win when both set.
  const double dirichlet_alpha = options.dirichlet_alpha > 0.0
                                     ? options.dirichlet_alpha
                                     : spec.dirichlet_alpha;
  std::vector<Shard> shards =
      dirichlet_alpha > 0.0
          ? ShardDatasetDirichlet(split_.train.labels,
                                  split_.train.num_classes,
                                  static_cast<size_t>(options.num_workers),
                                  dirichlet_alpha, &shard_rng)
          : ShardDataset(split_.train.size(),
                         static_cast<size_t>(options.num_workers),
                         &shard_rng);

  workers_.resize(static_cast<size_t>(options.num_workers));
  for (int w = 0; w < options.num_workers; ++w) {
    WorkerState& ws = workers_[static_cast<size_t>(w)];
    ws.params = init;
    ws.snapshot = init;
    ws.optimizer = std::make_unique<Sgd>(model_->NumParams(), options.sgd);
    ws.sampler = std::make_unique<BatchSampler>(
        &split_.train, std::move(shards[static_cast<size_t>(w)]),
        options.batch_size, rng_.Next());
  }

  if (options.record_timeline) {
    timeline_ = std::make_unique<Timeline>(options.num_workers);
  }
  eval_scratch_.resize(model_->NumParams());

  if (options.ckpt.enabled()) {
    PR_CHECK(!options.timing_only)
        << "checkpointing needs real training state to snapshot";
    // Eager-register the ckpt.* family so both engines' snapshots carry
    // identical metric names whether or not a cut ever happens.
    ckpt_manifests_counter_ = metrics_shard_->GetCounter("ckpt.manifests_written");
    ckpt_save_hist_ = metrics_shard_->GetHistogram("ckpt.save_seconds",
                                                   CkptSaveSecondsBuckets());
    metrics_shard_->GetCounter("ckpt.restore_count");
  }
}

void SimTraining::RecordActivity(int worker, WorkerActivity activity,
                                 double begin, double end) {
  if (timeline_) timeline_->Record(worker, activity, begin, end);
}

double SimTraining::SampleComputeSeconds(int worker) {
  double slowdown =
      hetero_->Sample(worker, iteration(worker));
  // Scheduled slowdown faults compound with the ambient heterogeneity: the
  // factor applies while the worker's iteration sits in the event's window
  // (the threaded engine scales the injected compute delay the same way).
  for (const WorkerFaultEvent& e : options_.fault.worker_events) {
    if (e.worker != worker || e.kind != WorkerFaultEvent::Kind::kSlowdown) {
      continue;
    }
    const int64_t it = iteration(worker);
    const int64_t start = e.after_iterations;
    if (it >= start && (e.slowdown_iterations == 0 ||
                        it < start + e.slowdown_iterations)) {
      slowdown *= e.slowdown_factor;
    }
  }
  return cost_->ComputeSeconds(slowdown);
}

std::vector<float>& SimTraining::params(int worker) {
  PR_CHECK_GE(worker, 0);
  PR_CHECK_LT(worker, options_.num_workers);
  return workers_[static_cast<size_t>(worker)].params;
}

const std::vector<float>& SimTraining::params(int worker) const {
  PR_CHECK_GE(worker, 0);
  PR_CHECK_LT(worker, options_.num_workers);
  return workers_[static_cast<size_t>(worker)].params;
}

void SimTraining::TakeSnapshot(int worker) {
  WorkerState& ws = workers_[static_cast<size_t>(worker)];
  ws.snapshot = ws.params;
}

const std::vector<float>& SimTraining::snapshot(int worker) const {
  return workers_[static_cast<size_t>(worker)].snapshot;
}

float SimTraining::GradientAtSnapshot(int worker, std::vector<float>* grad) {
  const WorkerState& ws = workers_[static_cast<size_t>(worker)];
  return GradientAt(worker, ws.snapshot.data(), grad);
}

float SimTraining::GradientAt(int worker, const float* at,
                              std::vector<float>* grad) {
  PR_CHECK(grad != nullptr);
  grad->assign(model_->NumParams(), 0.0f);
  ++gradients_computed_;
  if (options_.timing_only) return 0.0f;
  WorkerState& ws = workers_[static_cast<size_t>(worker)];
  Tensor x;
  std::vector<int> y;
  ws.sampler->NextBatch(&x, &y);
  ++ws.batches_drawn;
  return model_->LossAndGradient(at, x, y, grad->data());
}

Sgd* SimTraining::optimizer(int worker) {
  PR_CHECK_GE(worker, 0);
  PR_CHECK_LT(worker, options_.num_workers);
  return workers_[static_cast<size_t>(worker)].optimizer.get();
}

void SimTraining::LocalStep(int worker, const float* grad, double lr_scale) {
  WorkerState& ws = workers_[static_cast<size_t>(worker)];
  ws.optimizer->set_learning_rate(CurrentLr());
  ws.optimizer->Step(grad, &ws.params, lr_scale);
}

void SimTraining::StepWith(Sgd* opt, const float* grad,
                           std::vector<float>* params, double lr_scale) {
  PR_CHECK(opt != nullptr);
  opt->set_learning_rate(CurrentLr());
  opt->Step(grad, params, lr_scale);
}

std::unique_ptr<Sgd> SimTraining::MakeOptimizer() const {
  return std::make_unique<Sgd>(model_->NumParams(), options_.sgd);
}

double SimTraining::CurrentLr() const {
  if (!options_.lr_decay.enabled) return options_.sgd.learning_rate;
  const size_t progress =
      options_.lr_decay.per_gradient ? gradients_computed_ : updates_;
  const size_t stage = progress / options_.lr_decay.every_updates;
  double lr = options_.sgd.learning_rate;
  for (size_t s = 0; s < stage; ++s) lr *= options_.lr_decay.factor;
  return lr;
}

int64_t SimTraining::iteration(int worker) const {
  return workers_[static_cast<size_t>(worker)].iteration;
}

void SimTraining::set_iteration(int worker, int64_t it) {
  workers_[static_cast<size_t>(worker)].iteration = it;
}

void SimTraining::increment_iteration(int worker) {
  ++workers_[static_cast<size_t>(worker)].iteration;
}

void SimTraining::RecordUpdate() {
  ++updates_;
  update_intervals_.Add(engine_.now() - last_update_time_);
  last_update_time_ = engine_.now();

  if (options_.timing_only) {
    if (updates_ >= options_.timing_updates) stopped_ = true;
    return;
  }
  if (updates_ % options_.eval_every == 0) MaybeEvaluate();
  if (updates_ >= options_.max_updates ||
      engine_.now() >= options_.max_sim_seconds) {
    stopped_ = true;
  }
  if (!stopped_) MaybeCheckpoint();
}

void SimTraining::ConfigureCheckpoint(const std::string& strategy,
                                      std::function<void(RunManifest*)> fill) {
  ckpt_strategy_ = strategy;
  ckpt_fill_ = std::move(fill);
}

void SimTraining::MaybeCheckpoint() {
  const CheckpointConfig& ckpt = options_.ckpt;
  if (ckpt_fill_ == nullptr || !ckpt.enabled() || ckpt.every_updates == 0) {
    return;
  }
  if (updates_ % ckpt.every_updates != 0) return;
  const uint64_t epoch = updates_ / ckpt.every_updates;
  if (epoch <= last_ckpt_epoch_) return;  // restored epochs stay final

  // The simulator is single-threaded, so the cut is trivially coordinated:
  // every replica is quiescent right now. Best-effort — a failed write
  // leaves the previous manifest as the restore point.
  const auto begin = std::chrono::steady_clock::now();
  RunManifest m;
  m.engine = "sim";
  m.strategy = ckpt_strategy_;
  m.num_workers = options_.num_workers;
  m.num_params = num_params();
  m.seed = options_.seed;
  m.epoch = epoch;
  m.updates_done = updates_;
  m.saved_at_seconds = engine_.now();
  ckpt_fill_(&m);
  for (int w = 0; w < options_.num_workers; ++w) {
    WorkerState& ws = workers_[static_cast<size_t>(w)];
    const std::vector<float>& vel = *ws.optimizer->mutable_velocity();
    if (!SaveWorkerShard(ShardPath(ckpt.dir, epoch, w),
                         Slice(ws.params.data(), ws.params.size()),
                         Slice(vel.data(), vel.size()))
             .ok()) {
      return;
    }
    ManifestWorker mw;
    mw.worker = w;
    mw.iteration = ws.iteration;
    mw.completed = ws.batches_drawn;
    mw.shard_file = ShardFileName(epoch, w);
    m.workers.push_back(mw);
  }
  if (!SaveManifest(ckpt.dir, m).ok()) return;
  last_ckpt_epoch_ = epoch;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  ckpt_save_hist_->Observe(elapsed);
  ckpt_manifests_counter_->Increment();
  trace_.Record(engine_.now(), TraceEventKind::kCkptSaved, -1,
                static_cast<int64_t>(epoch));
}

void SimTraining::RestoreFromManifest(const RunManifest& manifest,
                                      const std::string& dir) {
  PR_CHECK(!options_.timing_only);
  PR_CHECK(manifest.engine == "sim")
      << "manifest was written by the '" << manifest.engine << "' engine";
  PR_CHECK_EQ(manifest.num_workers, options_.num_workers);
  PR_CHECK_EQ(manifest.num_params, num_params());
  PR_CHECK_EQ(manifest.seed, options_.seed)
      << "resuming with a different seed would draw different batches";
  PR_CHECK_EQ(manifest.workers.size(),
              static_cast<size_t>(options_.num_workers));

  Tensor scratch_x;
  std::vector<int> scratch_y;
  for (const ManifestWorker& mw : manifest.workers) {
    PR_CHECK_GE(mw.worker, 0);
    PR_CHECK_LT(mw.worker, options_.num_workers);
    WorkerState& ws = workers_[static_cast<size_t>(mw.worker)];
    std::vector<float> params;
    std::vector<float> velocity;
    Status s = LoadWorkerShard(dir + "/" + mw.shard_file, num_params(),
                               &params, &velocity);
    PR_CHECK(s.ok()) << "loading shard " << mw.shard_file << ": "
                     << s.message();
    ws.params = std::move(params);
    ws.snapshot = ws.params;
    *ws.optimizer->mutable_velocity() = std::move(velocity);
    ws.iteration = mw.iteration;
    for (uint64_t i = 0; i < mw.completed; ++i) {
      ws.sampler->NextBatch(&scratch_x, &scratch_y);
    }
    ws.batches_drawn = static_cast<size_t>(mw.completed);
    gradients_computed_ += static_cast<size_t>(mw.completed);
  }
  updates_ = manifest.updates_done;
  last_ckpt_epoch_ = manifest.epoch;
  resume_ = manifest;
  metrics_shard_->GetCounter("ckpt.restore_count")->Increment();
}

void SimTraining::MarkWaitStart(int worker) {
  WorkerState& ws = workers_[static_cast<size_t>(worker)];
  PR_CHECK_LT(ws.wait_started, 0.0) << "worker " << worker
                                    << " already waiting";
  ws.wait_started = engine_.now();
}

void SimTraining::MarkWaitEnd(int worker) {
  WorkerState& ws = workers_[static_cast<size_t>(worker)];
  PR_CHECK_GE(ws.wait_started, 0.0) << "worker " << worker << " not waiting";
  ws.total_wait += engine_.now() - ws.wait_started;
  RecordActivity(worker, WorkerActivity::kIdle, ws.wait_started,
                 engine_.now());
  ws.wait_started = -1.0;
}

void SimTraining::SetEvalProvider(std::function<const float*()> provider) {
  eval_provider_ = std::move(provider);
}

const float* SimTraining::EvalParams() {
  if (eval_provider_) return eval_provider_();
  // Default: mean over all replicas (Alg. 2 line 8).
  const size_t n = model_->NumParams();
  std::memset(eval_scratch_.data(), 0, n * sizeof(float));
  const float w = 1.0f / static_cast<float>(options_.num_workers);
  for (const WorkerState& ws : workers_) {
    Axpy(w, ws.params.data(), eval_scratch_.data(), n);
  }
  return eval_scratch_.data();
}

void SimTraining::MaybeEvaluate() {
  // Skip duplicate evaluations at the same update count (e.g. the final
  // EvaluateNow right after a periodic eval).
  if (!curve_.empty() && curve_.back().updates == updates_) return;
  const float* p = EvalParams();
  const double acc = EvaluateAccuracy(*model_, p, split_.test);
  const double loss = EvaluateLoss(*model_, p, split_.test);
  best_accuracy_ = std::max(best_accuracy_, acc);
  final_accuracy_ = acc;
  final_loss_ = loss;
  CurvePoint point{engine_.now(), updates_, acc, loss, 0.0};
  if (options_.record_grad_norm) {
    point.grad_norm_sq = EvaluateGradientNormSq(*model_, p, split_.train,
                                                /*max_examples=*/2048);
  }
  curve_.push_back(point);
  if (options_.accuracy_threshold > 0.0 &&
      acc >= options_.accuracy_threshold) {
    converged_ = true;
    stopped_ = true;
  }
}

void SimTraining::EvaluateNow() {
  if (!options_.timing_only) MaybeEvaluate();
}

void SimTraining::CountWastedGradient() {
  ++wasted_gradients_;
  metrics_shard_->GetCounter("ps.wasted_gradients")->Increment();
}

void SimTraining::RecordReduceTraffic(size_t p, CompressionKind kind) {
  (void)AccountReduceTraffic(p, kind);
}

void SimTraining::RecordReduceTraffic(const std::vector<int>& members,
                                      CompressionKind kind) {
  const double bytes = AccountReduceTraffic(members.size(), kind);
  if (bytes <= 0.0 || options_.topology.flat()) return;
  // Each ring edge carries an equal 1/p share of the group total; credit
  // the node-crossing edges' share to the inter-node counter.
  size_t cross_edges = 0;
  for (size_t i = 0; i < members.size(); ++i) {
    if (!options_.topology.SameNode(members[i],
                                    members[(i + 1) % members.size()])) {
      ++cross_edges;
    }
  }
  if (cross_edges > 0) {
    const double per_edge = bytes / static_cast<double>(members.size());
    metrics_shard_->GetCounter("transport.inter_node_bytes")
        ->Increment(per_edge * static_cast<double>(cross_edges));
  }
}

double SimTraining::AccountReduceTraffic(size_t p, CompressionKind kind) {
  if (p < 2) return 0.0;
  const size_t n = num_params();
  double one_way;
  if (kind == CompressionKind::kNone) {
    one_way = static_cast<double>(n) * static_cast<double>(p - 1) *
              sizeof(float);
  } else {
    // Mirror the compressed segmented ring's schedule: split the vector
    // into p chunks (the ring layout), each chunk into segments of
    // kDefaultSegmentFloats, and ship every segment's encoded blob p−1
    // hops per phase. Empty chunks still circulate one empty blob, exactly
    // like the real data plane.
    constexpr size_t kSeg = size_t{1} << 15;  // kDefaultSegmentFloats
    const size_t base = n / p;
    const size_t rem = n % p;
    double per_circulation = 0.0;
    double raw_per_circulation = 0.0;
    for (size_t c = 0; c < p; ++c) {
      const size_t len = base + (c < rem ? 1 : 0);
      const size_t nseg = len == 0 ? 1 : (len + kSeg - 1) / kSeg;
      for (size_t j = 0; j < nseg; ++j) {
        const size_t seg_len = std::min(kSeg, len - std::min(len, j * kSeg));
        per_circulation +=
            static_cast<double>(EncodedBlobBytes(kind, seg_len));
        raw_per_circulation += static_cast<double>(seg_len * sizeof(float));
      }
    }
    one_way = per_circulation * static_cast<double>(p - 1);
    // Metric-name parity with the threaded engine's Compressor: every hop
    // of every phase is one encode of a segment.
    const double encodes = 2.0 * static_cast<double>(p - 1);
    const double in_bytes = raw_per_circulation * encodes;
    const double out_bytes = per_circulation * encodes;
    metrics_shard_->GetCounter("compress.bytes_in")->Increment(in_bytes);
    metrics_shard_->GetCounter("compress.bytes_out")->Increment(out_bytes);
    compress_in_total_ += in_bytes;
    compress_out_total_ += out_bytes;
    if (compress_out_total_ > 0.0) {
      metrics_shard_->GetGauge("compress.ratio")
          ->Set(compress_in_total_ / compress_out_total_);
    }
  }
  const double bytes = 2.0 * one_way;
  metrics_shard_->GetCounter("transport.bytes_sent")->Increment(bytes);
  metrics_shard_->GetCounter("transport.bytes_received")->Increment(bytes);
  metrics_shard_->GetCounter("transport.payload_copies")
      ->Increment(static_cast<double>(p));
  return bytes;
}

SimRunResult SimTraining::BuildResult(const std::string& strategy_name) {
  SimRunResult result;
  result.strategy = strategy_name;
  result.converged = converged_;
  result.sim_seconds = engine_.now();
  result.updates = updates_;
  result.per_update_seconds =
      updates_ == 0 ? 0.0 : engine_.now() / static_cast<double>(updates_);
  result.final_accuracy = final_accuracy_;
  result.best_accuracy = best_accuracy_;
  result.curve = curve_;
  result.update_intervals = update_intervals_;
  result.wasted_gradients = wasted_gradients_;

  double idle = 0.0;
  for (size_t w = 0; w < workers_.size(); ++w) {
    WorkerState& ws = workers_[w];
    double wait = ws.total_wait;
    if (ws.wait_started >= 0.0) wait += engine_.now() - ws.wait_started;
    const double fraction = engine_.now() > 0.0 ? wait / engine_.now() : 0.0;
    idle += fraction;
    const std::string prefix = "worker." + std::to_string(w);
    metrics_shard_->GetCounter(prefix + ".idle_seconds")->Increment(wait);
    metrics_shard_->GetGauge(prefix + ".idle_fraction")->Set(fraction);
    metrics_shard_->GetCounter(prefix + ".iterations")
        ->Increment(static_cast<double>(ws.iteration));
  }
  result.mean_idle_fraction = idle / static_cast<double>(workers_.size());

  // Run-level metrics under the names shared with the threaded runtime
  // (run.sim_seconds takes wall_seconds' place: the engines differ exactly
  // in which clock they advance).
  metrics_shard_->GetGauge("run.sim_seconds")->Set(engine_.now());
  metrics_shard_->GetCounter("run.updates")
      ->Increment(static_cast<double>(updates_));
  metrics_shard_->GetCounter("engine.events_processed")
      ->Increment(static_cast<double>(engine_.events_processed()));
  // Traffic counters exist in every snapshot (zero when a strategy moved no
  // payloads), matching the threaded engine where the Endpoint registers
  // them unconditionally.
  metrics_shard_->GetCounter("transport.bytes_sent");
  metrics_shard_->GetCounter("transport.bytes_received");
  metrics_shard_->GetCounter("transport.payload_copies");
  // The sim has no out-of-order stash (event delivery is ordered), so the
  // purge counter is always zero — registered for cross-engine name parity.
  metrics_shard_->GetCounter("transport.stash_purged");
  result.metrics = registry_.Snapshot();
  result.trace = trace_.Log();
  return result;
}

}  // namespace pr
