#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/ckpt_config.h"
#include "ckpt/manifest.h"
#include "common/stats.h"
#include "compress/codec.h"
#include "data/synthetic.h"
#include "fault/fault_plan.h"
#include "hetero/hetero.h"
#include "models/catalog.h"
#include "models/model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/sgd.h"
#include "scenario/scenario.h"
#include "sim/cost_model.h"
#include "sim/engine.h"
#include "sim/timeline.h"

namespace pr {

/// \brief One point of a convergence curve (Fig. 7 / Fig. 10 series).
struct CurvePoint {
  double time = 0.0;    ///< virtual seconds
  size_t updates = 0;   ///< global update count at evaluation time
  double accuracy = 0.0;
  double loss = 0.0;
  /// ||∇F(u_k)||² at this evaluation (only when record_grad_norm is set).
  double grad_norm_sq = 0.0;
};

/// \brief Step-decay schedule knob for SimTrainingOptions.
struct LrDecaySpec {
  bool enabled = false;
  double factor = 0.1;
  size_t every_updates = 2000;
  /// When true, `every_updates` counts *gradients computed* instead of
  /// global updates. Strategies incorporate different gradient counts per
  /// update (AR: N, P-Reduce: P, ASP: 1), so a gradient-based schedule is
  /// the fair analogue of the paper's per-epoch decay.
  bool per_gradient = false;
};

/// \brief Full configuration of one simulated training run.
struct SimTrainingOptions {
  int num_workers = 8;
  /// Per-worker mini-batch. The calibrated benches use 8 (small batches
  /// keep gradient noise high enough that staleness effects are visible on
  /// the synthetic tasks).
  size_t batch_size = 8;
  SgdOptions sgd;
  LrDecaySpec lr_decay;

  /// Proxy model trained for real under virtual time, constructed through
  /// the models catalog — the same specs the threaded runtime consumes, so
  /// both engines name models identically.
  ProxyModelSpec model = {ProxyModelSpec::Kind::kMlp, {64}, 8};

  /// Synthetic dataset name ("cifar10", "cifar100", "imagenet"), or a fully
  /// custom spec when `custom_dataset` is set.
  std::string dataset = "cifar10";
  std::optional<SyntheticSpec> custom_dataset;

  /// Non-IID sharding: Dirichlet(alpha) class skew per worker. 0 disables
  /// (IID shuffled shards, the paper's assumption).
  double dirichlet_alpha = 0.0;

  /// Paper workload whose catalog entry drives the cost model.
  std::string paper_model = "resnet34";
  CostModelOptions cost;
  HeteroSpec hetero;

  /// Cluster placement. Flat (the default) reproduces the historical
  /// uniform fabric; a non-flat topology stretches cross-node ring edges in
  /// the cost model and splits traffic accounting into intra/inter-node.
  Topology topology;

  /// Fault schedule mirrored into virtual time (P-Reduce only): crashes
  /// trigger lease-horizon eviction, ready-signal drops trigger re-sends,
  /// slowdown events scale SampleComputeSeconds, controller crash/restart
  /// events park in-flight signals and rebuild a fresh controller from
  /// worker re-registration. Hang events and data-plane dup/delay are
  /// threaded-engine-only; their fault.* counters still register (as zero)
  /// for cross-engine report parity.
  FaultPlan fault;

  /// Trace-driven chaos scenario (P-Reduce only). Compiled at run start and
  /// merged into `fault` plus the strategy's churn schedule: crash/hang/
  /// slowdown events become iteration-keyed fault events, depart/arrive
  /// windows become virtual-time leave/rejoin pairs, partitions become
  /// membership-loss windows applied at their virtual start times. The
  /// compiled scenario.* counters register with names identical to the
  /// threaded engine's.
  ScenarioSpec scenario;

  /// Coordinated checkpointing (strategies that call ConfigureCheckpoint —
  /// P-Reduce kinds and AR): every `ckpt.every_updates` global updates the
  /// run snapshots every replica + optimizer into shards and writes a
  /// manifest; RestoreSimRun resumes from it. Disabled by default, and
  /// unavailable in timing-only mode.
  CheckpointConfig ckpt;

  /// Convergence criterion: stop when the evaluated model reaches this test
  /// accuracy. <= 0 disables accuracy-based stopping.
  double accuracy_threshold = 0.90;
  size_t max_updates = 100000;
  double max_sim_seconds = 1e9;
  size_t eval_every = 25;

  /// Timing-only mode: skip gradient math and evaluation; run exactly
  /// `timing_updates` updates. Used by pure hardware-efficiency experiments
  /// (idle-time, scalability sweeps).
  bool timing_only = false;
  size_t timing_updates = 1000;

  /// Record ||∇F||² of the evaluated model at every periodic evaluation
  /// (over a bounded probe of the training set) — the Theorem 1 quantity.
  bool record_grad_norm = false;

  /// Record a per-worker activity timeline (compute/comm/idle intervals,
  /// the data behind Fig. 3's Gantt). Supported by the AR and P-Reduce
  /// strategies; costs memory proportional to the number of intervals.
  bool record_timeline = false;

  /// Capacity of the structured trace ring buffer (see obs/trace.h);
  /// 0 disables tracing. Metrics are always collected.
  size_t trace_capacity = 0;

  uint64_t seed = 1;
};

/// \brief Result of one simulated run.
struct SimRunResult {
  std::string strategy;
  bool converged = false;
  double sim_seconds = 0.0;
  size_t updates = 0;
  double per_update_seconds = 0.0;
  double final_accuracy = 0.0;
  double best_accuracy = 0.0;
  std::vector<CurvePoint> curve;
  /// Mean over workers of (idle time waiting on synchronization) /
  /// (total run time). The green blocks of Fig. 3.
  double mean_idle_fraction = 0.0;
  /// Per-update intervals (time between consecutive global updates); the
  /// per-update-time distribution of Fig. 9.
  SampleSet update_intervals;
  /// Total local gradient computations that were discarded (PS-BK drops).
  size_t wasted_gradients = 0;
  /// Groups bridged by frozen avoidance (P-Reduce only).
  uint64_t bridged_groups = 0;
  uint64_t frozen_detections = 0;

  /// Merged counters/gauges/histograms of the run, under the metric names
  /// shared with the threaded runtime (controller.*, worker.<i>.*, ps.*,
  /// run.*, engine.*). Timestamps in `trace` are virtual seconds.
  MetricsSnapshot metrics;
  TraceLog trace;
};

/// \brief Shared state and services for simulated synchronization
/// strategies.
///
/// Couples *real* SGD (proxy MLP on synthetic data) with *virtual* time
/// (cost model + heterogeneity): a strategy asks for a worker's compute
/// duration, schedules the finish event, and at that event asks for the
/// actual gradient — so the staleness pattern SGD experiences is exactly
/// the one induced by simulated timing.
class SimTraining {
 public:
  explicit SimTraining(const SimTrainingOptions& options);

  SimEngine* engine() { return &engine_; }
  const SimTrainingOptions& options() const { return options_; }
  int num_workers() const { return options_.num_workers; }
  const CostModel& cost() const { return *cost_; }
  const Model& model() const { return *model_; }
  size_t num_params() const { return model_->NumParams(); }
  Rng* rng() { return &rng_; }

  /// Samples the duration of `worker`'s next local computation (base
  /// compute time x heterogeneity slowdown).
  double SampleComputeSeconds(int worker);

  /// Worker-replica parameter access.
  std::vector<float>& params(int worker);
  const std::vector<float>& params(int worker) const;

  /// Records the worker's current params as the model version its in-flight
  /// gradient will be computed against (the "read model").
  void TakeSnapshot(int worker);
  const std::vector<float>& snapshot(int worker) const;

  /// Draws the worker's next mini-batch and computes the gradient at its
  /// snapshot. Returns the batch loss (0 in timing-only mode, where the
  /// math is skipped and `grad` is zeroed).
  float GradientAtSnapshot(int worker, std::vector<float>* grad);

  /// Same, but at arbitrary parameters (PS strategies evaluate at the
  /// pulled global model).
  float GradientAt(int worker, const float* at, std::vector<float>* grad);

  /// SGD step on the worker's replica (local momentum state).
  void LocalStep(int worker, const float* grad, double lr_scale = 1.0);

  /// The worker replica's optimizer (momentum-averaging ablation).
  Sgd* optimizer(int worker);

  /// SGD step on an arbitrary parameter vector using the given optimizer
  /// (PS strategies own a server-side optimizer).
  void StepWith(Sgd* opt, const float* grad, std::vector<float>* params,
                double lr_scale = 1.0);

  /// Creates a server-side optimizer with the run's SGD options.
  std::unique_ptr<Sgd> MakeOptimizer() const;

  /// Worker iteration counters (dynamic partial reduce advances these).
  int64_t iteration(int worker) const;
  void set_iteration(int worker, int64_t it);
  void increment_iteration(int worker);

  /// Registers one global update (aggregation event). Triggers periodic
  /// evaluation, stop-condition checks, and — when checkpointing is
  /// configured — the every-K-updates coordinated cut.
  void RecordUpdate();
  size_t updates() const { return updates_; }

  /// Opts this run's strategy into coordinated checkpointing: `strategy` is
  /// the manifest's strategy name, `fill` stamps strategy-owned restore
  /// state (controller history / group-id watermark) into each manifest.
  /// Without this call an enabled ckpt config cuts nothing.
  void ConfigureCheckpoint(const std::string& strategy,
                           std::function<void(RunManifest*)> fill);
  bool checkpoint_configured() const { return ckpt_fill_ != nullptr; }

  /// Seeds this run from a checkpoint manifest written by an earlier sim
  /// run: replicas, optimizer velocity, and iteration counters come from
  /// the shards, each worker's batch sampler is fast-forwarded past the
  /// restored draws, and the global update counter resumes at the cut.
  /// Call before the strategy is constructed; ckpt.restore_count becomes 1.
  void RestoreFromManifest(const RunManifest& manifest,
                           const std::string& dir);
  /// The manifest this run resumed from, or null on a fresh run (strategies
  /// re-seed their controller from it during construction).
  const RunManifest* resume() const {
    return resume_.has_value() ? &*resume_ : nullptr;
  }

  /// Idle accounting: call when `worker` starts/stops waiting on
  /// synchronization (barrier or group wait), at current engine time.
  void MarkWaitStart(int worker);
  void MarkWaitEnd(int worker);

  /// Total synchronization-wait seconds `worker` has accumulated so far
  /// (completed waits only). Scale policies sample deltas of this to build
  /// their idle-fraction signal, mirroring the threaded engine's
  /// worker.<i>.idle_seconds counters.
  double worker_wait_seconds(int worker) const {
    return workers_[static_cast<size_t>(worker)].total_wait;
  }

  /// The run's compiled scenario churn windows (empty without a scenario).
  /// The P-Reduce strategy schedules each as a virtual-time leave/rejoin
  /// pair; partition windows live in options().fault.partition_events.
  const std::vector<ChurnWindow>& scenario_churn() const {
    return scenario_churn_;
  }

  /// Counts a discarded gradient (PS-BK).
  void CountWastedGradient();

  /// Accounts the transport traffic a `p`-member ring reduce over the full
  /// model would move, under the same transport.* names the threaded
  /// engine's real Endpoint maintains. A ring all-reduce ships
  /// 2·n·(p−1)/p floats per member, so the group total is 2·n·(p−1)
  /// floats each way; the zero-copy data plane materializes one payload
  /// copy per member (the initial chunk send), hence payload_copies += p.
  ///
  /// Under compression (`kind` != kNone) the bytes mirror the compressed
  /// segmented ring exactly: each chunk's segments circulate p−1 hops per
  /// phase as encoded blobs, so the group total is 2·(p−1)·Σ over segments
  /// of EncodedBlobBytes(kind, segment_len). The compress.bytes_in/out
  /// counters and compress.ratio gauge move by the same model, keeping
  /// cross-engine metric parity.
  void RecordReduceTraffic(size_t p,
                           CompressionKind kind = CompressionKind::kNone);

  /// Member-aware variant: additionally splits the ring traffic over the
  /// run topology, crediting the share moved over node-crossing ring edges
  /// to `transport.inter_node_bytes` (same name the threaded Endpoint
  /// maintains). Each of the group's ring edges carries an equal 1/p share
  /// of the total, which is exact for the segmented ring's uniform chunking.
  void RecordReduceTraffic(const std::vector<int>& members,
                           CompressionKind kind = CompressionKind::kNone);

  /// The run's metrics shard (the simulator is single-threaded, so one
  /// shard serves every strategy) and trace recorder. Strategies register
  /// their instruments here under the shared naming convention.
  MetricsShard* metrics() { return metrics_shard_; }
  TraceRecorder* trace() { return &trace_; }

  /// The activity timeline, or null when record_timeline is off. Idle
  /// intervals are appended automatically by MarkWaitEnd; strategies record
  /// compute/comm via RecordActivity.
  Timeline* timeline() { return timeline_.get(); }

  /// Records a compute/comm interval when the timeline is enabled
  /// (otherwise a no-op, so strategies can call it unconditionally).
  void RecordActivity(int worker, WorkerActivity activity, double begin,
                      double end);

  /// Overrides which parameters are evaluated for convergence. Default:
  /// elementwise mean over all worker replicas (Alg. 2 line 8). PS
  /// strategies point this at the global model.
  void SetEvalProvider(std::function<const float*()> provider);

  /// Forces evaluation now (used once at the end of a run).
  void EvaluateNow();

  bool stopped() const { return stopped_; }
  void Stop() { stopped_ = true; }

  /// Builds the result record; finalizes idle accounting at current time.
  SimRunResult BuildResult(const std::string& strategy_name);

  const Dataset& test_set() const { return split_.test; }

 private:
  struct WorkerState {
    std::vector<float> params;
    std::vector<float> snapshot;
    std::unique_ptr<Sgd> optimizer;
    std::unique_ptr<BatchSampler> sampler;
    int64_t iteration = 0;
    /// Mini-batches drawn so far; a restore fast-forwards the sampler by
    /// this count so the resumed run draws the batches the original would.
    size_t batches_drawn = 0;
    double wait_started = -1.0;  ///< -1 when not waiting
    double total_wait = 0.0;
  };

  void MaybeEvaluate();
  void MaybeCheckpoint();
  const float* EvalParams();
  double CurrentLr() const;
  /// Shared body of the RecordReduceTraffic overloads; returns the total
  /// bytes accounted (0 when p < 2).
  double AccountReduceTraffic(size_t p, CompressionKind kind);

  SimTrainingOptions options_;
  SimEngine engine_;
  MetricsRegistry registry_;
  MetricsShard* metrics_shard_;  // owned by registry_
  TraceRecorder trace_;
  Rng rng_;
  TrainTestSplit split_;
  std::unique_ptr<Model> model_;
  std::unique_ptr<CostModel> cost_;
  std::unique_ptr<HeterogeneityModel> hetero_;
  std::vector<WorkerState> workers_;
  std::vector<ChurnWindow> scenario_churn_;
  std::unique_ptr<Timeline> timeline_;
  std::function<const float*()> eval_provider_;
  std::vector<float> eval_scratch_;

  /// Checkpoint wiring (see ConfigureCheckpoint / RestoreFromManifest).
  std::string ckpt_strategy_;
  std::function<void(RunManifest*)> ckpt_fill_;
  uint64_t last_ckpt_epoch_ = 0;
  std::optional<RunManifest> resume_;
  Counter* ckpt_manifests_counter_ = nullptr;
  Histogram* ckpt_save_hist_ = nullptr;

  size_t updates_ = 0;
  size_t gradients_computed_ = 0;
  double last_update_time_ = 0.0;
  bool stopped_ = false;
  bool converged_ = false;
  double best_accuracy_ = 0.0;
  double final_accuracy_ = 0.0;
  double final_loss_ = 0.0;
  std::vector<CurvePoint> curve_;
  SampleSet update_intervals_;
  size_t wasted_gradients_ = 0;
  /// Running totals behind the compress.ratio gauge (compressed runs only).
  double compress_in_total_ = 0.0;
  double compress_out_total_ = 0.0;
};

}  // namespace pr
