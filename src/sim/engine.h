#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace pr {

/// Virtual time in seconds.
using SimTime = double;

/// \brief A deterministic discrete-event simulation engine.
///
/// Events are (time, sequence, closure); ties in time break by insertion
/// order, so runs are bit-for-bit reproducible. The engine knows nothing
/// about training — strategies schedule compute-finished / reduce-finished /
/// transfer-finished events against it.
class SimEngine {
 public:
  SimEngine() = default;
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  SimTime now() const { return now_; }
  uint64_t events_processed() const { return events_processed_; }
  bool empty() const { return queue_.empty(); }
  size_t pending() const { return queue_.size(); }

  /// Schedules `fn` at absolute time `at` (must be >= now()).
  void ScheduleAt(SimTime at, std::function<void()> fn);

  /// Schedules `fn` at now() + delay (delay >= 0).
  void ScheduleAfter(SimTime delay, std::function<void()> fn);

  /// Pops and runs the earliest event, advancing the clock. Returns false
  /// when no events remain.
  bool RunOne();

  /// Runs events until `stop()` returns true, the queue drains, or the
  /// clock would pass `max_time`. Returns the number of events processed by
  /// this call.
  uint64_t RunUntil(const std::function<bool()>& stop,
                    SimTime max_time = 1e18);

 private:
  struct Event {
    SimTime at;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace pr
