#pragma once

#include <vector>

#include "models/catalog.h"
#include "topo/topology.h"

namespace pr {

/// \brief Network and device parameters of the simulated cluster.
///
/// Defaults were fit jointly with the model catalog against the paper's
/// Table 1 (see models/catalog.h): an 8 x V100 node whose collective path
/// sustains ~10 GB/s with ~48 us per-tensor per-hop latency, plus a
/// CPU-side parameter-server path at a lower effective bandwidth.
struct CostModelOptions {
  /// Effective point-to-point bandwidth of the collective path (bytes/s).
  double bandwidth = 10e9;
  /// Per-tensor, per-hop latency of a collective step (seconds). Ring
  /// all-reduce pays 2(n-1) hops for each of the model's parameter tensors;
  /// this is what makes many-small-tensor models (DenseNet) sync-bound.
  double tensor_latency = 48e-6;
  /// Parameter-server link bandwidth (bytes/s); all pushes/pulls share it.
  double ps_bandwidth = 5e9;
  /// One-way delay of a controller control message (ready signal or group
  /// info). Messages are a few bytes, so this is pure latency.
  double controller_delay = 100e-6;
  /// Multiplier on compute time (e.g. ImageNet-sized inputs vs CIFAR).
  double compute_scale = 1.0;
  /// Fraction of *gradient* communication hidden behind backward
  /// computation (DistributedDataParallel-style bucketed overlap). The
  /// paper's §4 notes its prototype cannot overlap because the dynamic
  /// worker groups preclude a fixed communication world, and conjectures
  /// P-Reduce's relative benefit survives overlap; this knob implements
  /// that future work for the gradient-aggregating strategies (AR, ER, PS)
  /// so bench_ablation_overlap can test the conjecture. Model-averaging
  /// communication (P-Reduce, AD-PSGD) is never overlapped — it needs the
  /// final post-update model.
  double gradient_overlap = 0.0;
};

/// \brief Analytic timing for one workload (paper model) on the simulated
/// cluster. All collective formulas follow Patarasuk & Yuan's ring
/// all-reduce cost: 2(n-1)/n * S/B + 2(n-1) * T * alpha.
class CostModel {
 public:
  CostModel(const PaperModelInfo& model, const CostModelOptions& options);

  /// One local forward+backward at the reference batch size, scaled by the
  /// heterogeneity `slowdown`.
  double ComputeSeconds(double slowdown) const;

  /// Ring all-reduce of the full model among n participants.
  double RingAllReduceSeconds(int n) const;

  /// Topology-aware ring all-reduce among `members`: the pipelined ring
  /// moves at the pace of its slowest (bottleneck) link, so effective
  /// bandwidth divides by the worst LinkCost over the ring's edges and
  /// per-hop latency scales by the worst LinkLatencyFactor. Reduces exactly
  /// to RingAllReduceSeconds(members.size()) on a flat topology.
  double RingAllReduceSeconds(const std::vector<int>& members,
                              const Topology& topology) const;

  /// Partial reduce among a group of p (same ring formula, smaller group),
  /// plus the controller round trip for the ready signal and group info.
  double GroupReduceSeconds(int p) const;

  /// Topology-aware variant of GroupReduceSeconds over explicit members.
  double GroupReduceSeconds(const std::vector<int>& members,
                            const Topology& topology) const;

  /// AD-PSGD pairwise model exchange-and-average (two-member ring) over the
  /// collective path.
  double PairwiseAverageSeconds() const;

  /// AD-PSGD *atomic* pairwise average via the CPU-staged path: atomicity
  /// of model access forces the exchange through host memory (two full
  /// model copies over the PS-grade path) under a global lock. This is the
  /// serialization Prague (ASPLOS'20) identifies as AD-PSGD's bottleneck,
  /// and what makes the paper's measured AD iterations ~1.6x slower than
  /// P-Reduce iterations despite touching only two workers.
  double AtomicPairAverageSeconds() const;

  /// One full-model transfer over the PS link (one direction). Callers
  /// serialize concurrent transfers via PsLinkQueue.
  double PsTransferSeconds() const;

  /// Applies the gradient-overlap discount to a raw gradient-communication
  /// cost: the exposed (non-hidden) portion.
  double ExposedGradientCommSeconds(double raw_comm_seconds) const;

  double controller_delay() const { return options_.controller_delay; }
  const PaperModelInfo& model() const { return model_; }
  const CostModelOptions& options() const { return options_; }

 private:
  PaperModelInfo model_;
  CostModelOptions options_;
};

/// \brief Serializes transfers over the shared parameter-server link: the
/// central-bottleneck behaviour PS architectures exhibit (§2.2).
///
/// Acquire(now, duration) returns the completion time of a transfer
/// requested at `now`, queueing FIFO behind in-flight transfers.
class PsLinkQueue {
 public:
  double Acquire(double now, double duration);
  double busy_until() const { return busy_until_; }

 private:
  double busy_until_ = 0.0;
};

}  // namespace pr
