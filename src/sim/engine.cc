#include "sim/engine.h"

#include "common/check.h"

namespace pr {

void SimEngine::ScheduleAt(SimTime at, std::function<void()> fn) {
  PR_CHECK_GE(at, now_) << "cannot schedule into the past";
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

void SimEngine::ScheduleAfter(SimTime delay, std::function<void()> fn) {
  PR_CHECK_GE(delay, 0.0);
  ScheduleAt(now_ + delay, std::move(fn));
}

bool SimEngine::RunOne() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the closure (events are small).
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.at;
  ++events_processed_;
  ev.fn();
  return true;
}

uint64_t SimEngine::RunUntil(const std::function<bool()>& stop,
                             SimTime max_time) {
  uint64_t processed = 0;
  while (!stop() && !queue_.empty()) {
    if (queue_.top().at > max_time) break;
    RunOne();
    ++processed;
  }
  return processed;
}

}  // namespace pr
