#pragma once

#include <string>
#include <vector>

namespace pr {

/// \brief What a worker is doing during an interval of virtual time.
enum class WorkerActivity {
  kCompute,  ///< local forward/backward
  kComm,     ///< participating in a collective / transfer
  kIdle,     ///< blocked on a barrier or waiting for a group
};

/// Single-character tag used by the ASCII rendering ('#', '=', '.').
char ActivityChar(WorkerActivity activity);

/// \brief One recorded interval.
struct TimelineInterval {
  int worker = -1;
  WorkerActivity activity = WorkerActivity::kCompute;
  double begin = 0.0;
  double end = 0.0;

  double duration() const { return end - begin; }
};

/// \brief Per-worker activity record of a simulated run.
///
/// This is the data behind the paper's Fig. 3: blue (compute) / green
/// (idle) / arrow (communication) blocks per worker. Strategies record
/// compute and communication intervals; idle intervals come from the
/// trainer's wait accounting. RenderAscii draws the classic Gantt:
///
///   w0 |#####==...####==|
///   w1 |###==..######==.|
class Timeline {
 public:
  explicit Timeline(int num_workers);

  int num_workers() const { return num_workers_; }

  /// Records one interval; begin <= end, worker in range.
  void Record(int worker, WorkerActivity activity, double begin, double end);

  const std::vector<TimelineInterval>& intervals() const {
    return intervals_;
  }

  /// Total recorded time of `activity` for `worker`.
  double TotalTime(int worker, WorkerActivity activity) const;

  /// Latest interval end across all workers (0 when empty).
  double EndTime() const;

  /// Renders the window [t0, t1] as an ASCII Gantt with `cols` columns per
  /// worker row. Cells covered by several activities show the dominant one
  /// (by covered duration); uncovered cells render as spaces.
  std::string RenderAscii(double t0, double t1, int cols) const;

 private:
  int num_workers_;
  std::vector<TimelineInterval> intervals_;
};

}  // namespace pr
