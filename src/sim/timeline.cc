#include "sim/timeline.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace pr {

char ActivityChar(WorkerActivity activity) {
  switch (activity) {
    case WorkerActivity::kCompute:
      return '#';
    case WorkerActivity::kComm:
      return '=';
    case WorkerActivity::kIdle:
      return '.';
  }
  return '?';
}

Timeline::Timeline(int num_workers) : num_workers_(num_workers) {
  PR_CHECK_GE(num_workers, 1);
}

void Timeline::Record(int worker, WorkerActivity activity, double begin,
                      double end) {
  PR_CHECK_GE(worker, 0);
  PR_CHECK_LT(worker, num_workers_);
  PR_CHECK_LE(begin, end);
  if (begin == end) return;  // zero-length intervals carry no information
  intervals_.push_back(TimelineInterval{worker, activity, begin, end});
}

double Timeline::TotalTime(int worker, WorkerActivity activity) const {
  double total = 0.0;
  for (const TimelineInterval& iv : intervals_) {
    if (iv.worker == worker && iv.activity == activity) {
      total += iv.duration();
    }
  }
  return total;
}

double Timeline::EndTime() const {
  double end = 0.0;
  for (const TimelineInterval& iv : intervals_) end = std::max(end, iv.end);
  return end;
}

std::string Timeline::RenderAscii(double t0, double t1, int cols) const {
  PR_CHECK_LT(t0, t1);
  PR_CHECK_GE(cols, 1);
  const double cell = (t1 - t0) / static_cast<double>(cols);

  std::ostringstream out;
  for (int w = 0; w < num_workers_; ++w) {
    out << "w" << w << (w < 10 ? " " : "") << "|";
    for (int c = 0; c < cols; ++c) {
      const double cb = t0 + cell * c;
      const double ce = cb + cell;
      // Dominant activity by covered duration within the cell.
      double cover[3] = {0.0, 0.0, 0.0};
      for (const TimelineInterval& iv : intervals_) {
        if (iv.worker != w) continue;
        const double lo = std::max(cb, iv.begin);
        const double hi = std::min(ce, iv.end);
        if (hi > lo) cover[static_cast<int>(iv.activity)] += hi - lo;
      }
      int best = -1;
      for (int a = 0; a < 3; ++a) {
        if (cover[a] > 0.0 && (best < 0 || cover[a] > cover[best])) best = a;
      }
      out << (best < 0 ? ' '
                       : ActivityChar(static_cast<WorkerActivity>(best)));
    }
    out << "|\n";
  }
  return out.str();
}

}  // namespace pr
