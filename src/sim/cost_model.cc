#include "sim/cost_model.h"

#include <algorithm>

#include "common/check.h"

namespace pr {

CostModel::CostModel(const PaperModelInfo& model,
                     const CostModelOptions& options)
    : model_(model), options_(options) {
  PR_CHECK_GT(options.bandwidth, 0.0);
  PR_CHECK_GE(options.tensor_latency, 0.0);
  PR_CHECK_GT(options.ps_bandwidth, 0.0);
  PR_CHECK_GE(options.controller_delay, 0.0);
  PR_CHECK_GT(options.compute_scale, 0.0);
  PR_CHECK_GE(options.gradient_overlap, 0.0);
  PR_CHECK_LE(options.gradient_overlap, 1.0);
}

double CostModel::ComputeSeconds(double slowdown) const {
  PR_CHECK_GT(slowdown, 0.0);
  return model_.compute_seconds * model_.dataset_compute_scale *
         options_.compute_scale * slowdown;
}

double CostModel::RingAllReduceSeconds(int n) const {
  PR_CHECK_GE(n, 1);
  if (n == 1) return 0.0;
  const double s = static_cast<double>(model_.param_bytes());
  const double hops = 2.0 * static_cast<double>(n - 1);
  return (hops / static_cast<double>(n)) * s / options_.bandwidth +
         hops * static_cast<double>(model_.num_tensors) *
             options_.tensor_latency;
}

double CostModel::RingAllReduceSeconds(const std::vector<int>& members,
                                       const Topology& topology) const {
  const int n = static_cast<int>(members.size());
  if (n <= 1) return 0.0;
  if (topology.flat()) return RingAllReduceSeconds(n);
  // The pipelined ring is lock-step: every chunk traverses every edge, so
  // one slow inter-node edge paces the whole collective.
  double worst_cost = 1.0;
  double worst_latency = 1.0;
  for (size_t i = 0; i < members.size(); ++i) {
    const int a = members[i];
    const int b = members[(i + 1) % members.size()];
    worst_cost = std::max(worst_cost, topology.LinkCost(a, b));
    worst_latency = std::max(worst_latency, topology.LinkLatencyFactor(a, b));
  }
  const double s = static_cast<double>(model_.param_bytes());
  const double hops = 2.0 * static_cast<double>(n - 1);
  return (hops / static_cast<double>(n)) * s * worst_cost /
             options_.bandwidth +
         hops * static_cast<double>(model_.num_tensors) *
             options_.tensor_latency * worst_latency;
}

double CostModel::GroupReduceSeconds(int p) const {
  // Ready signal to controller + group info back, then the group ring.
  return 2.0 * options_.controller_delay + RingAllReduceSeconds(p);
}

double CostModel::GroupReduceSeconds(const std::vector<int>& members,
                                     const Topology& topology) const {
  return 2.0 * options_.controller_delay +
         RingAllReduceSeconds(members, topology);
}

double CostModel::PairwiseAverageSeconds() const {
  return RingAllReduceSeconds(2);
}

double CostModel::AtomicPairAverageSeconds() const {
  const double s = static_cast<double>(model_.param_bytes());
  return 2.0 * s / options_.ps_bandwidth +
         2.0 * static_cast<double>(model_.num_tensors) *
             options_.tensor_latency;
}

double CostModel::PsTransferSeconds() const {
  return static_cast<double>(model_.param_bytes()) / options_.ps_bandwidth;
}

double CostModel::ExposedGradientCommSeconds(double raw_comm_seconds) const {
  PR_CHECK_GE(raw_comm_seconds, 0.0);
  return raw_comm_seconds * (1.0 - options_.gradient_overlap);
}

double PsLinkQueue::Acquire(double now, double duration) {
  PR_CHECK_GE(duration, 0.0);
  const double start = std::max(now, busy_until_);
  busy_until_ = start + duration;
  return busy_until_;
}

}  // namespace pr
