#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/socket_transport.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "runtime/threaded_runtime.h"

namespace pr {

/// \brief Optional mid-run process kill, the multi-process analogue of the
/// chaos suite's injected crashes: the launcher SIGKILLs the chosen
/// worker's process once `after_seconds` of run time have elapsed. The
/// remaining processes must survive via the fault-tolerant protocol (the
/// launcher forces `fault.force_fault_tolerant` on when a kill is armed).
struct KillSpec {
  int worker = -1;  ///< worker node to kill; -1 disables
  double after_seconds = 0.25;

  bool armed() const { return worker >= 0; }
};

/// \brief A multi-process launch request.
struct LaunchOptions {
  RunConfig config;
  /// Socket settings shared by every process. `socket.dir` defaults to
  /// `<workdir>/sock` when empty.
  SocketConfig socket;
  /// Scratch directory for the run: config file, socket files, per-process
  /// reports and logs. Created if missing; never cleaned up (callers own
  /// the lifetime — tests use a temp dir, prlaunch prints the path).
  std::string workdir;
  /// When non-empty, children are fork+exec'd as
  /// `<self_binary> --role node ...` (prlaunch passes /proc/self/exe, which
  /// gives every child a fresh address space and — under TSan — a fresh
  /// runtime). When empty, children are plain fork()s that call RunNode
  /// directly and _exit, which is what in-process tests use.
  std::string self_binary;
  KillSpec kill;
  /// Checkpoint manifest to resume every process from (optional).
  std::string resume_manifest;
};

/// \brief Merged outcome of a multi-process run.
struct LaunchResult {
  std::string strategy;
  int num_processes = 0;
  /// Per-node process exit status (0 = clean); killed nodes record the
  /// signal as 128 + SIGKILL, matching shell convention.
  std::vector<int> exit_codes;
  /// Per-node flag: true for the process the KillSpec took down.
  std::vector<bool> killed;
  double wall_seconds = 0.0;       ///< max over process reports
  uint64_t group_reduces = 0;      ///< from the service report
  std::vector<size_t> worker_iterations;  ///< element-wise max merge
  std::vector<double> worker_finish_seconds;
  /// Average of every surviving worker's final replica, evaluated on the
  /// held-out test split (regenerated from the config seed, exactly as each
  /// process generated it).
  std::vector<float> averaged_params;
  double final_loss = 0.0;
  double final_accuracy = 0.0;
  /// MergeSnapshots over every surviving process's report: the run-level
  /// metrics view under the same names the in-proc engine produces.
  MetricsSnapshot metrics;
};

/// \brief Spawns one process per node (num_workers workers, plus the
/// service node when the strategy has one), waits for completion, applies
/// the KillSpec, collects and merges the per-process reports. Fails if any
/// non-killed process exits non-zero or leaves no report.
Status Launch(const LaunchOptions& options, LaunchResult* result);

/// Serializes a LaunchResult (including the merged metrics) as JSON for
/// scripts and CI artifacts.
std::string LaunchReportJson(const LaunchResult& result);

}  // namespace pr
