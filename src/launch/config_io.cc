#include "launch/config_io.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace pr {
namespace {

// %.17g round-trips any double exactly through strtod; good enough for every
// numeric field here (integers up to 2^53 included).
std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string StrategyKindToken(StrategyKind kind) {
  return StrategyKindName(kind);
}

bool ParseStrategyKind(const std::string& token, StrategyKind* out) {
  static const std::pair<const char*, StrategyKind> kNames[] = {
      {"AR", StrategyKind::kAllReduce},
      {"ER", StrategyKind::kEagerReduce},
      {"AD", StrategyKind::kAdPsgd},
      {"PS-BSP", StrategyKind::kPsBsp},
      {"PS-ASP", StrategyKind::kPsAsp},
      {"PS-HETE", StrategyKind::kPsHete},
      {"PS-BK", StrategyKind::kPsBackup},
      {"CON", StrategyKind::kPReduceConst},
      {"DYN", StrategyKind::kPReduceDynamic},
  };
  for (const auto& [name, kind] : kNames) {
    if (token == name) {
      *out = kind;
      return true;
    }
  }
  return false;
}

const char* MissingSlotToken(MissingSlotPolicy policy) {
  switch (policy) {
    case MissingSlotPolicy::kRenormalize:
      return "renormalize";
    case MissingSlotPolicy::kAssignToStaler:
      return "staler";
    case MissingSlotPolicy::kAssignToNearest:
      return "nearest";
  }
  return "staler";
}

bool ParseMissingSlot(const std::string& token, MissingSlotPolicy* out) {
  if (token == "renormalize") {
    *out = MissingSlotPolicy::kRenormalize;
  } else if (token == "staler") {
    *out = MissingSlotPolicy::kAssignToStaler;
  } else if (token == "nearest") {
    *out = MissingSlotPolicy::kAssignToNearest;
  } else {
    return false;
  }
  return true;
}

const char* WorkerFaultToken(WorkerFaultEvent::Kind kind) {
  switch (kind) {
    case WorkerFaultEvent::Kind::kCrash:
      return "crash";
    case WorkerFaultEvent::Kind::kHang:
      return "hang";
    case WorkerFaultEvent::Kind::kSlowdown:
      return "slowdown";
  }
  return "crash";
}

bool ParseWorkerFault(const std::string& token, WorkerFaultEvent::Kind* out) {
  if (token == "crash") {
    *out = WorkerFaultEvent::Kind::kCrash;
  } else if (token == "hang") {
    *out = WorkerFaultEvent::Kind::kHang;
  } else if (token == "slowdown") {
    *out = WorkerFaultEvent::Kind::kSlowdown;
  } else {
    return false;
  }
  return true;
}

// Parsing machinery: each line is split into a key plus a value stream; the
// Take* helpers report malformed fields as a Status naming the offending
// line so a config mismatch points straight at its cause.
class LineParser {
 public:
  LineParser(int line_no, std::string key, std::istringstream* values)
      : line_no_(line_no), key_(std::move(key)), values_(values) {}

  Status TakeDouble(double* out) {
    std::string token;
    if (!(*values_ >> token)) return Missing();
    char* end = nullptr;
    *out = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') return Bad(token);
    return Status::OK();
  }

  Status TakeInt(int64_t* out) {
    std::string token;
    if (!(*values_ >> token)) return Missing();
    char* end = nullptr;
    *out = std::strtoll(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0') return Bad(token);
    return Status::OK();
  }

  Status TakeUInt(uint64_t* out) {
    std::string token;
    if (!(*values_ >> token)) return Missing();
    char* end = nullptr;
    *out = std::strtoull(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0') return Bad(token);
    return Status::OK();
  }

  Status TakeBool(bool* out) {
    int64_t v = 0;
    PR_RETURN_NOT_OK(TakeInt(&v));
    if (v != 0 && v != 1) return Bad(std::to_string(v));
    *out = v == 1;
    return Status::OK();
  }

  Status TakeString(std::string* out) {
    if (!(*values_ >> *out)) return Missing();
    return Status::OK();
  }

  // The remainder of the line, leading whitespace stripped (for values that
  // may contain spaces, e.g. paths).
  std::string Rest() {
    std::string rest;
    std::getline(*values_, rest);
    size_t start = rest.find_first_not_of(" \t");
    return start == std::string::npos ? std::string() : rest.substr(start);
  }

  Status Missing() const {
    return Status::InvalidArgument("config line " + std::to_string(line_no_) +
                                   ": key '" + key_ + "' is missing a value");
  }

  Status Bad(const std::string& token) const {
    return Status::InvalidArgument("config line " + std::to_string(line_no_) +
                                   ": key '" + key_ + "' has bad value '" +
                                   token + "'");
  }

 private:
  int line_no_;
  std::string key_;
  std::istringstream* values_;
};

}  // namespace

std::string SerializeRunConfig(const RunConfig& config) {
  const StrategyOptions& s = config.strategy;
  const ThreadedRunOptions& r = config.run;
  std::ostringstream out;
  out << "prconfig 1\n";

  out << "strategy.kind " << StrategyKindToken(s.kind) << "\n";
  out << "strategy.group_size " << s.group_size << "\n";
  out << "strategy.backup_workers " << s.backup_workers << "\n";
  out << "strategy.er_quorum " << s.er_quorum << "\n";
  out << "strategy.frozen_avoidance " << (s.frozen_avoidance ? 1 : 0) << "\n";
  out << "strategy.history_window " << s.history_window << "\n";
  out << "strategy.record_sync_matrices " << (s.record_sync_matrices ? 1 : 0)
      << "\n";
  out << "strategy.average_momentum " << (s.average_momentum ? 1 : 0) << "\n";
  out << "strategy.compression " << CompressionKindName(s.compression)
      << "\n";
  out << "strategy.dynamic.alpha " << Num(s.dynamic.alpha) << "\n";
  out << "strategy.dynamic.staleness_tolerance "
      << s.dynamic.staleness_tolerance << "\n";
  out << "strategy.dynamic.missing_slot "
      << MissingSlotToken(s.dynamic.missing_slot_policy) << "\n";
  out << "strategy.hierarchy.enabled " << (s.hierarchy.enabled ? 1 : 0)
      << "\n";
  out << "strategy.hierarchy.cross_period " << s.hierarchy.cross_period
      << "\n";
  out << "strategy.group_cost_budget " << Num(s.group_cost_budget) << "\n";
  out << "strategy.scale_policy.kind " << ScalePolicyKindName(s.scale_policy.kind)
      << "\n";
  out << "strategy.scale_policy.interval_seconds "
      << Num(s.scale_policy.interval_seconds) << "\n";
  out << "strategy.scale_policy.idle_high " << Num(s.scale_policy.idle_high)
      << "\n";
  out << "strategy.scale_policy.idle_low " << Num(s.scale_policy.idle_low)
      << "\n";
  out << "strategy.scale_policy.min_workers " << s.scale_policy.min_workers
      << "\n";
  out << "strategy.scale_policy.max_workers " << s.scale_policy.max_workers
      << "\n";
  out << "strategy.scale_policy.trend_window " << s.scale_policy.trend_window
      << "\n";
  out << "strategy.scale_policy.min_group_size "
      << s.scale_policy.min_group_size << "\n";
  out << "strategy.scale_policy.liveness_floor "
      << s.scale_policy.liveness_floor << "\n";
  out << "strategy.scale_policy.partition_ckpt_seconds "
      << Num(s.scale_policy.partition_ckpt_seconds) << "\n";

  out << "run.num_workers " << r.num_workers << "\n";
  out << "run.iterations_per_worker " << r.iterations_per_worker << "\n";
  out << "run.batch_size " << r.batch_size << "\n";
  out << "run.seed " << r.seed << "\n";
  out << "run.record_timeline " << (r.record_timeline ? 1 : 0) << "\n";
  out << "run.trace_capacity " << r.trace_capacity << "\n";
  out << "run.sgd.learning_rate " << Num(r.sgd.learning_rate) << "\n";
  out << "run.sgd.momentum " << Num(r.sgd.momentum) << "\n";
  out << "run.sgd.weight_decay " << Num(r.sgd.weight_decay) << "\n";

  out << "run.model.kind "
      << (r.model.kind == ProxyModelSpec::Kind::kConvNet ? "conv" : "mlp")
      << "\n";
  for (size_t width : r.model.hidden) out << "run.model.hidden " << width << "\n";
  out << "run.model.conv_filters " << r.model.conv_filters << "\n";

  out << "run.dataset.num_train " << r.dataset.num_train << "\n";
  out << "run.dataset.num_test " << r.dataset.num_test << "\n";
  out << "run.dataset.dim " << r.dataset.dim << "\n";
  out << "run.dataset.num_classes " << r.dataset.num_classes << "\n";
  out << "run.dataset.modes_per_class " << r.dataset.modes_per_class << "\n";
  out << "run.dataset.separation " << Num(r.dataset.separation) << "\n";
  out << "run.dataset.noise " << Num(r.dataset.noise) << "\n";
  out << "run.dataset.label_noise " << Num(r.dataset.label_noise) << "\n";
  out << "run.dataset.dirichlet_alpha " << Num(r.dataset.dirichlet_alpha)
      << "\n";
  out << "run.dataset.seed " << r.dataset.seed << "\n";

  for (double d : r.worker_delay_seconds) out << "run.delay " << Num(d) << "\n";
  for (const ThreadedChurnEvent& e : r.churn) {
    out << "run.churn " << e.worker << " " << e.after_iterations << " "
        << Num(e.pause_seconds) << "\n";
  }

  if (!r.ckpt.dir.empty()) out << "run.ckpt.dir " << r.ckpt.dir << "\n";
  out << "run.ckpt.every_iterations " << r.ckpt.every_iterations << "\n";
  out << "run.ckpt.every_updates " << r.ckpt.every_updates << "\n";

  // Flat (default) topologies emit nothing: a pre-topology config and a flat
  // config are byte-identical.
  if (!r.topology.flat()) {
    out << "topology.inter_cost " << Num(r.topology.inter_cost()) << "\n";
    out << "topology.inter_latency_factor "
        << Num(r.topology.inter_latency_factor()) << "\n";
    for (const std::vector<int>& node : r.topology.nodes()) {
      out << "topology.node";
      for (int w : node) out << " " << w;
      out << "\n";
    }
  }

  const FaultPlan& f = r.fault;
  out << "fault.seed " << f.seed << "\n";
  out << "fault.force_fault_tolerant " << (f.force_fault_tolerant ? 1 : 0)
      << "\n";
  out << "fault.default_edge " << Num(f.default_edge.drop_prob) << " "
      << Num(f.default_edge.dup_prob) << " " << Num(f.default_edge.delay_prob)
      << " " << Num(f.default_edge.delay_seconds) << "\n";
  for (const auto& [edge, spec] : f.edges) {
    out << "fault.edge " << edge.first << " " << edge.second << " "
        << Num(spec.drop_prob) << " " << Num(spec.dup_prob) << " "
        << Num(spec.delay_prob) << " " << Num(spec.delay_seconds) << "\n";
  }
  for (const auto& [edge, delay] : f.link_delay_seconds) {
    out << "fault.link_delay " << edge.first << " " << edge.second << " "
        << Num(delay) << "\n";
  }
  for (const WorkerFaultEvent& e : f.worker_events) {
    out << "fault.worker_event " << e.worker << " " << WorkerFaultToken(e.kind)
        << " " << e.after_iterations << " " << (e.in_group ? 1 : 0) << " "
        << Num(e.hang_seconds) << " " << Num(e.slowdown_factor) << " "
        << e.slowdown_iterations << "\n";
  }
  for (const ControllerFaultEvent& e : f.controller_events) {
    out << "fault.controller_event " << e.after_groups << " "
        << Num(e.down_seconds) << " " << (e.restart ? 1 : 0) << "\n";
  }
  out << "fault.lease_seconds " << Num(f.lease_seconds) << "\n";
  out << "fault.missed_threshold " << f.missed_threshold << "\n";
  out << "fault.recv_timeout_seconds " << Num(f.recv_timeout_seconds) << "\n";
  out << "fault.stuck_report_ticks " << f.stuck_report_ticks << "\n";
  out << "fault.resend_ready_ticks " << f.resend_ready_ticks << "\n";
  out << "fault.stuck_abort_reports " << f.stuck_abort_reports << "\n";
  out << "fault.max_verdict_wait_seconds " << Num(f.max_verdict_wait_seconds)
      << "\n";
  out << "fault.max_reduce_stall_seconds " << Num(f.max_reduce_stall_seconds)
      << "\n";
  out << "fault.reregister_backoff_seconds "
      << Num(f.reregister_backoff_seconds) << "\n";
  out << "fault.reregister_backoff_max_seconds "
      << Num(f.reregister_backoff_max_seconds) << "\n";
  out << "fault.reregister_window_seconds "
      << Num(f.reregister_window_seconds) << "\n";
  out << "fault.max_controller_outage_seconds "
      << Num(f.max_controller_outage_seconds) << "\n";
  out << "fault.reregister_report_groups " << f.reregister_report_groups
      << "\n";

  // Chaos scenario: the header fields always serialize (defaults round-trip
  // like every other scalar); events are a repeated list key mirroring the
  // standalone `prtrace 1` dialect's event grammar.
  out << "scenario.name " << r.scenario.name << "\n";
  out << "scenario.seed " << r.scenario.seed << "\n";
  out << "scenario.expected_iteration_seconds "
      << Num(r.scenario.expected_iteration_seconds) << "\n";
  for (const ScenarioEvent& e : r.scenario.events) {
    out << "scenario.event " << ScenarioEventKindName(e.kind) << " "
        << Num(e.time) << " " << e.worker << " " << e.node << " "
        << Num(e.duration) << " " << Num(e.factor) << "\n";
  }
  return out.str();
}

Status ParseRunConfig(const std::string& text, RunConfig* out) {
  RunConfig config;
  // List-valued fields replace (not append to) the defaults; the first
  // occurrence of each clears the default value.
  bool saw_hidden = false;
  bool saw_delay = false;
  bool saw_churn = false;
  // Node rows accumulate here and are validated as one placement after the
  // last line, so row-level mistakes (duplicate worker, empty node) surface
  // no matter how the rows are ordered.
  std::vector<std::vector<int>> topo_nodes;

  std::istringstream lines(text);
  std::string line;
  int line_no = 0;
  bool saw_header = false;
  while (std::getline(lines, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream values(line);
    std::string key;
    values >> key;
    if (key.empty()) continue;
    LineParser p(line_no, key, &values);

    if (!saw_header) {
      uint64_t version = 0;
      if (key != "prconfig" || !p.TakeUInt(&version).ok() || version != 1) {
        return Status::InvalidArgument(
            "config does not start with a 'prconfig 1' header");
      }
      saw_header = true;
      continue;
    }

    StrategyOptions& s = config.strategy;
    ThreadedRunOptions& r = config.run;
    FaultPlan& f = r.fault;
    int64_t i64 = 0;
    uint64_t u64 = 0;
    std::string token;

    if (key == "strategy.kind") {
      PR_RETURN_NOT_OK(p.TakeString(&token));
      if (!ParseStrategyKind(token, &s.kind)) return p.Bad(token);
    } else if (key == "strategy.group_size") {
      PR_RETURN_NOT_OK(p.TakeInt(&i64));
      s.group_size = static_cast<int>(i64);
    } else if (key == "strategy.backup_workers") {
      PR_RETURN_NOT_OK(p.TakeInt(&i64));
      s.backup_workers = static_cast<int>(i64);
    } else if (key == "strategy.er_quorum") {
      PR_RETURN_NOT_OK(p.TakeInt(&i64));
      s.er_quorum = static_cast<int>(i64);
    } else if (key == "strategy.frozen_avoidance") {
      PR_RETURN_NOT_OK(p.TakeBool(&s.frozen_avoidance));
    } else if (key == "strategy.history_window") {
      PR_RETURN_NOT_OK(p.TakeUInt(&u64));
      s.history_window = u64;
    } else if (key == "strategy.record_sync_matrices") {
      PR_RETURN_NOT_OK(p.TakeBool(&s.record_sync_matrices));
    } else if (key == "strategy.average_momentum") {
      PR_RETURN_NOT_OK(p.TakeBool(&s.average_momentum));
    } else if (key == "strategy.compression") {
      PR_RETURN_NOT_OK(p.TakeString(&token));
      if (!ParseCompressionKind(token, &s.compression)) return p.Bad(token);
    } else if (key == "strategy.dynamic.alpha") {
      PR_RETURN_NOT_OK(p.TakeDouble(&s.dynamic.alpha));
    } else if (key == "strategy.dynamic.staleness_tolerance") {
      PR_RETURN_NOT_OK(p.TakeInt(&s.dynamic.staleness_tolerance));
    } else if (key == "strategy.dynamic.missing_slot") {
      PR_RETURN_NOT_OK(p.TakeString(&token));
      if (!ParseMissingSlot(token, &s.dynamic.missing_slot_policy)) {
        return p.Bad(token);
      }
    } else if (key == "strategy.hierarchy.enabled") {
      PR_RETURN_NOT_OK(p.TakeBool(&s.hierarchy.enabled));
    } else if (key == "strategy.hierarchy.cross_period") {
      PR_RETURN_NOT_OK(p.TakeInt(&i64));
      s.hierarchy.cross_period = static_cast<int>(i64);
    } else if (key == "strategy.group_cost_budget") {
      PR_RETURN_NOT_OK(p.TakeDouble(&s.group_cost_budget));
    } else if (key == "topology.inter_cost") {
      double v = 0.0;
      PR_RETURN_NOT_OK(p.TakeDouble(&v));
      if (v <= 0.0) return p.Bad(Num(v));
      r.topology.set_inter_cost(v);
    } else if (key == "topology.inter_latency_factor") {
      double v = 0.0;
      PR_RETURN_NOT_OK(p.TakeDouble(&v));
      if (v <= 0.0) return p.Bad(Num(v));
      r.topology.set_inter_latency_factor(v);
    } else if (key == "topology.node") {
      std::vector<int> node;
      while (values >> token) {
        char* end = nullptr;
        const long long w = std::strtoll(token.c_str(), &end, 10);
        if (end == token.c_str() || *end != '\0') return p.Bad(token);
        node.push_back(static_cast<int>(w));
      }
      topo_nodes.push_back(std::move(node));
    } else if (key == "run.num_workers") {
      PR_RETURN_NOT_OK(p.TakeInt(&i64));
      r.num_workers = static_cast<int>(i64);
    } else if (key == "run.iterations_per_worker") {
      PR_RETURN_NOT_OK(p.TakeUInt(&u64));
      r.iterations_per_worker = u64;
    } else if (key == "run.batch_size") {
      PR_RETURN_NOT_OK(p.TakeUInt(&u64));
      r.batch_size = u64;
    } else if (key == "run.seed") {
      PR_RETURN_NOT_OK(p.TakeUInt(&r.seed));
    } else if (key == "run.record_timeline") {
      PR_RETURN_NOT_OK(p.TakeBool(&r.record_timeline));
    } else if (key == "run.trace_capacity") {
      PR_RETURN_NOT_OK(p.TakeUInt(&u64));
      r.trace_capacity = u64;
    } else if (key == "run.sgd.learning_rate") {
      PR_RETURN_NOT_OK(p.TakeDouble(&r.sgd.learning_rate));
    } else if (key == "run.sgd.momentum") {
      PR_RETURN_NOT_OK(p.TakeDouble(&r.sgd.momentum));
    } else if (key == "run.sgd.weight_decay") {
      PR_RETURN_NOT_OK(p.TakeDouble(&r.sgd.weight_decay));
    } else if (key == "run.model.kind") {
      PR_RETURN_NOT_OK(p.TakeString(&token));
      if (token == "mlp") {
        r.model.kind = ProxyModelSpec::Kind::kMlp;
      } else if (token == "conv") {
        r.model.kind = ProxyModelSpec::Kind::kConvNet;
      } else {
        return p.Bad(token);
      }
    } else if (key == "run.model.hidden") {
      PR_RETURN_NOT_OK(p.TakeUInt(&u64));
      if (!saw_hidden) r.model.hidden.clear();
      saw_hidden = true;
      r.model.hidden.push_back(u64);
    } else if (key == "run.model.conv_filters") {
      PR_RETURN_NOT_OK(p.TakeUInt(&u64));
      r.model.conv_filters = u64;
    } else if (key == "run.dataset.num_train") {
      PR_RETURN_NOT_OK(p.TakeUInt(&u64));
      r.dataset.num_train = u64;
    } else if (key == "run.dataset.num_test") {
      PR_RETURN_NOT_OK(p.TakeUInt(&u64));
      r.dataset.num_test = u64;
    } else if (key == "run.dataset.dim") {
      PR_RETURN_NOT_OK(p.TakeUInt(&u64));
      r.dataset.dim = u64;
    } else if (key == "run.dataset.num_classes") {
      PR_RETURN_NOT_OK(p.TakeInt(&i64));
      r.dataset.num_classes = static_cast<int>(i64);
    } else if (key == "run.dataset.modes_per_class") {
      PR_RETURN_NOT_OK(p.TakeInt(&i64));
      r.dataset.modes_per_class = static_cast<int>(i64);
    } else if (key == "run.dataset.separation") {
      PR_RETURN_NOT_OK(p.TakeDouble(&r.dataset.separation));
    } else if (key == "run.dataset.noise") {
      PR_RETURN_NOT_OK(p.TakeDouble(&r.dataset.noise));
    } else if (key == "run.dataset.label_noise") {
      PR_RETURN_NOT_OK(p.TakeDouble(&r.dataset.label_noise));
    } else if (key == "run.dataset.dirichlet_alpha") {
      PR_RETURN_NOT_OK(p.TakeDouble(&r.dataset.dirichlet_alpha));
    } else if (key == "run.dataset.seed") {
      PR_RETURN_NOT_OK(p.TakeUInt(&r.dataset.seed));
    } else if (key == "run.delay") {
      double d = 0.0;
      PR_RETURN_NOT_OK(p.TakeDouble(&d));
      if (!saw_delay) r.worker_delay_seconds.clear();
      saw_delay = true;
      r.worker_delay_seconds.push_back(d);
    } else if (key == "run.churn") {
      ThreadedChurnEvent e;
      PR_RETURN_NOT_OK(p.TakeInt(&i64));
      e.worker = static_cast<int>(i64);
      PR_RETURN_NOT_OK(p.TakeUInt(&u64));
      e.after_iterations = u64;
      PR_RETURN_NOT_OK(p.TakeDouble(&e.pause_seconds));
      if (!saw_churn) r.churn.clear();
      saw_churn = true;
      r.churn.push_back(e);
    } else if (key == "run.ckpt.dir") {
      r.ckpt.dir = p.Rest();
      if (r.ckpt.dir.empty()) return p.Missing();
    } else if (key == "run.ckpt.every_iterations") {
      PR_RETURN_NOT_OK(p.TakeUInt(&u64));
      r.ckpt.every_iterations = u64;
    } else if (key == "run.ckpt.every_updates") {
      PR_RETURN_NOT_OK(p.TakeUInt(&u64));
      r.ckpt.every_updates = u64;
    } else if (key == "fault.seed") {
      PR_RETURN_NOT_OK(p.TakeUInt(&f.seed));
    } else if (key == "fault.force_fault_tolerant") {
      PR_RETURN_NOT_OK(p.TakeBool(&f.force_fault_tolerant));
    } else if (key == "fault.default_edge") {
      PR_RETURN_NOT_OK(p.TakeDouble(&f.default_edge.drop_prob));
      PR_RETURN_NOT_OK(p.TakeDouble(&f.default_edge.dup_prob));
      PR_RETURN_NOT_OK(p.TakeDouble(&f.default_edge.delay_prob));
      PR_RETURN_NOT_OK(p.TakeDouble(&f.default_edge.delay_seconds));
    } else if (key == "fault.edge") {
      int64_t from = 0, to = 0;
      EdgeFaultSpec spec;
      PR_RETURN_NOT_OK(p.TakeInt(&from));
      PR_RETURN_NOT_OK(p.TakeInt(&to));
      PR_RETURN_NOT_OK(p.TakeDouble(&spec.drop_prob));
      PR_RETURN_NOT_OK(p.TakeDouble(&spec.dup_prob));
      PR_RETURN_NOT_OK(p.TakeDouble(&spec.delay_prob));
      PR_RETURN_NOT_OK(p.TakeDouble(&spec.delay_seconds));
      f.edges[{static_cast<int>(from), static_cast<int>(to)}] = spec;
    } else if (key == "fault.link_delay") {
      int64_t from = 0, to = 0;
      double seconds = 0.0;
      PR_RETURN_NOT_OK(p.TakeInt(&from));
      PR_RETURN_NOT_OK(p.TakeInt(&to));
      PR_RETURN_NOT_OK(p.TakeDouble(&seconds));
      if (seconds < 0.0) return p.Bad(Num(seconds));
      f.link_delay_seconds[{static_cast<int>(from), static_cast<int>(to)}] =
          seconds;
    } else if (key == "fault.worker_event") {
      WorkerFaultEvent e;
      PR_RETURN_NOT_OK(p.TakeInt(&i64));
      e.worker = static_cast<int>(i64);
      PR_RETURN_NOT_OK(p.TakeString(&token));
      if (!ParseWorkerFault(token, &e.kind)) return p.Bad(token);
      PR_RETURN_NOT_OK(p.TakeInt(&i64));
      e.after_iterations = static_cast<int>(i64);
      PR_RETURN_NOT_OK(p.TakeBool(&e.in_group));
      PR_RETURN_NOT_OK(p.TakeDouble(&e.hang_seconds));
      PR_RETURN_NOT_OK(p.TakeDouble(&e.slowdown_factor));
      PR_RETURN_NOT_OK(p.TakeInt(&i64));
      e.slowdown_iterations = static_cast<int>(i64);
      f.worker_events.push_back(e);
    } else if (key == "fault.controller_event") {
      ControllerFaultEvent e;
      PR_RETURN_NOT_OK(p.TakeUInt(&e.after_groups));
      PR_RETURN_NOT_OK(p.TakeDouble(&e.down_seconds));
      PR_RETURN_NOT_OK(p.TakeBool(&e.restart));
      f.controller_events.push_back(e);
    } else if (key == "fault.lease_seconds") {
      PR_RETURN_NOT_OK(p.TakeDouble(&f.lease_seconds));
    } else if (key == "fault.missed_threshold") {
      PR_RETURN_NOT_OK(p.TakeInt(&i64));
      f.missed_threshold = static_cast<int>(i64);
    } else if (key == "fault.recv_timeout_seconds") {
      PR_RETURN_NOT_OK(p.TakeDouble(&f.recv_timeout_seconds));
    } else if (key == "fault.stuck_report_ticks") {
      PR_RETURN_NOT_OK(p.TakeInt(&i64));
      f.stuck_report_ticks = static_cast<int>(i64);
    } else if (key == "fault.resend_ready_ticks") {
      PR_RETURN_NOT_OK(p.TakeInt(&i64));
      f.resend_ready_ticks = static_cast<int>(i64);
    } else if (key == "fault.stuck_abort_reports") {
      PR_RETURN_NOT_OK(p.TakeInt(&i64));
      f.stuck_abort_reports = static_cast<int>(i64);
    } else if (key == "fault.max_verdict_wait_seconds") {
      PR_RETURN_NOT_OK(p.TakeDouble(&f.max_verdict_wait_seconds));
    } else if (key == "fault.max_reduce_stall_seconds") {
      PR_RETURN_NOT_OK(p.TakeDouble(&f.max_reduce_stall_seconds));
    } else if (key == "fault.reregister_backoff_seconds") {
      PR_RETURN_NOT_OK(p.TakeDouble(&f.reregister_backoff_seconds));
    } else if (key == "fault.reregister_backoff_max_seconds") {
      PR_RETURN_NOT_OK(p.TakeDouble(&f.reregister_backoff_max_seconds));
    } else if (key == "fault.reregister_window_seconds") {
      PR_RETURN_NOT_OK(p.TakeDouble(&f.reregister_window_seconds));
    } else if (key == "fault.max_controller_outage_seconds") {
      PR_RETURN_NOT_OK(p.TakeDouble(&f.max_controller_outage_seconds));
    } else if (key == "fault.reregister_report_groups") {
      PR_RETURN_NOT_OK(p.TakeInt(&i64));
      f.reregister_report_groups = static_cast<int>(i64);
    } else if (key == "strategy.scale_policy.kind") {
      PR_RETURN_NOT_OK(p.TakeString(&token));
      if (!ScalePolicyKindFromName(token, &s.scale_policy.kind)) {
        return p.Bad(token);
      }
    } else if (key == "strategy.scale_policy.interval_seconds") {
      PR_RETURN_NOT_OK(p.TakeDouble(&s.scale_policy.interval_seconds));
    } else if (key == "strategy.scale_policy.idle_high") {
      PR_RETURN_NOT_OK(p.TakeDouble(&s.scale_policy.idle_high));
    } else if (key == "strategy.scale_policy.idle_low") {
      PR_RETURN_NOT_OK(p.TakeDouble(&s.scale_policy.idle_low));
    } else if (key == "strategy.scale_policy.min_workers") {
      PR_RETURN_NOT_OK(p.TakeInt(&i64));
      s.scale_policy.min_workers = static_cast<int>(i64);
    } else if (key == "strategy.scale_policy.max_workers") {
      PR_RETURN_NOT_OK(p.TakeInt(&i64));
      s.scale_policy.max_workers = static_cast<int>(i64);
    } else if (key == "strategy.scale_policy.trend_window") {
      PR_RETURN_NOT_OK(p.TakeInt(&i64));
      s.scale_policy.trend_window = static_cast<int>(i64);
    } else if (key == "strategy.scale_policy.min_group_size") {
      PR_RETURN_NOT_OK(p.TakeInt(&i64));
      s.scale_policy.min_group_size = static_cast<int>(i64);
    } else if (key == "strategy.scale_policy.liveness_floor") {
      PR_RETURN_NOT_OK(p.TakeInt(&i64));
      s.scale_policy.liveness_floor = static_cast<int>(i64);
    } else if (key == "strategy.scale_policy.partition_ckpt_seconds") {
      PR_RETURN_NOT_OK(p.TakeDouble(&s.scale_policy.partition_ckpt_seconds));
    } else if (key == "scenario.name") {
      r.scenario.name = p.Rest();
      if (r.scenario.name.empty()) return p.Missing();
    } else if (key == "scenario.seed") {
      PR_RETURN_NOT_OK(p.TakeUInt(&r.scenario.seed));
    } else if (key == "scenario.expected_iteration_seconds") {
      double v = 0.0;
      PR_RETURN_NOT_OK(p.TakeDouble(&v));
      if (!(v > 0.0)) return p.Bad(Num(v));
      r.scenario.expected_iteration_seconds = v;
    } else if (key == "scenario.event") {
      ScenarioEvent e;
      PR_RETURN_NOT_OK(p.TakeString(&token));
      if (!ScenarioEventKindFromName(token, &e.kind)) return p.Bad(token);
      PR_RETURN_NOT_OK(p.TakeDouble(&e.time));
      if (!(e.time >= 0.0)) return p.Bad(Num(e.time));
      PR_RETURN_NOT_OK(p.TakeInt(&i64));
      e.worker = static_cast<int>(i64);
      PR_RETURN_NOT_OK(p.TakeInt(&i64));
      e.node = static_cast<int>(i64);
      PR_RETURN_NOT_OK(p.TakeDouble(&e.duration));
      if (e.duration < 0.0) return p.Bad(Num(e.duration));
      PR_RETURN_NOT_OK(p.TakeDouble(&e.factor));
      r.scenario.events.push_back(e);
    } else {
      return Status::InvalidArgument("config line " + std::to_string(line_no) +
                                     ": unknown key '" + key + "'");
    }
  }
  if (!saw_header) {
    return Status::InvalidArgument("config is empty (no 'prconfig 1' header)");
  }
  if (!topo_nodes.empty()) {
    PR_RETURN_NOT_OK(Topology::FromNodes(topo_nodes, &config.run.topology));
  }
  *out = std::move(config);
  return Status::OK();
}

Status SaveRunConfig(const std::string& path, const RunConfig& config) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::Internal("cannot open " + tmp + " for writing");
    out << SerializeRunConfig(config);
    out.flush();
    if (!out) return Status::Internal("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("rename " + tmp + " -> " + path + " failed");
  }
  return Status::OK();
}

Status LoadRunConfig(const std::string& path, RunConfig* out) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("config file " + path + " not readable");
  std::ostringstream text;
  text << in.rdbuf();
  return ParseRunConfig(text.str(), out);
}

namespace {

// Keys the text dialect may emit more than once; their JSON members are
// always arrays (one element per line).
bool IsListKey(std::string_view key) {
  return key == "run.model.hidden" || key == "run.delay" ||
         key == "run.churn" || key == "topology.node" ||
         key == "fault.edge" || key == "fault.link_delay" ||
         key == "fault.worker_event" || key == "fault.controller_event" ||
         key == "scenario.event";
}

// Whether the token at `index` on a `key` line is a string in the text
// dialect (everything else is numeric).
bool IsStringToken(std::string_view key, size_t index) {
  if (key == "strategy.kind" || key == "strategy.compression" ||
      key == "strategy.dynamic.missing_slot" || key == "run.model.kind" ||
      key == "strategy.scale_policy.kind" || key == "scenario.name" ||
      key == "scenario.event") {
    return index == 0;
  }
  if (key == "fault.worker_event") return index == 1;
  return false;
}

JsonValue TokenToJson(std::string_view key, size_t index,
                      const std::string& token) {
  if (IsStringToken(key, index)) return JsonValue::MakeString(token);
  char* end = nullptr;
  double value = std::strtod(token.c_str(), &end);
  // SerializeRunConfig only emits numeric tokens here; a parse failure would
  // mean the two dialects drifted, which the round-trip test catches.
  if (end == token.c_str() || *end != '\0') {
    return JsonValue::MakeString(token);
  }
  return JsonValue::MakeNumber(value);
}

// Renders a JSON scalar back into a text-dialect token. Integral doubles
// print without an exponent or trailing zeros so TakeInt/TakeUInt accept
// them; everything else uses the same %.17g as SerializeRunConfig.
Status JsonScalarToToken(const std::string& key, const JsonValue& value,
                         std::string* out) {
  switch (value.kind()) {
    case JsonValue::Kind::kString: {
      const std::string& s = value.string_value();
      if (key != "run.ckpt.dir" && key != "scenario.name" &&
          s.find_first_of(" \t\n\r") != std::string::npos) {
        return Status::InvalidArgument("json config key '" + key +
                                       "': string value contains whitespace");
      }
      if (s.find('\n') != std::string::npos ||
          s.find('\r') != std::string::npos) {
        return Status::InvalidArgument("json config key '" + key +
                                       "': string value contains a newline");
      }
      *out = s;
      return Status::OK();
    }
    case JsonValue::Kind::kNumber: {
      double v = value.number_value();
      char buf[64];
      if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e18) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));  // NOLINT(runtime/int)
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
      }
      *out = buf;
      return Status::OK();
    }
    case JsonValue::Kind::kBool:
      *out = value.bool_value() ? "1" : "0";
      return Status::OK();
    default:
      return Status::InvalidArgument("json config key '" + key +
                                     "': value must be a scalar");
  }
}

// One text line for `key` from a scalar or an array-of-scalars.
Status JsonLineToText(const std::string& key, const JsonValue& value,
                      std::ostringstream* out) {
  *out << key;
  if (value.is_array()) {
    for (const JsonValue& item : value.items()) {
      std::string token;
      PR_RETURN_NOT_OK(JsonScalarToToken(key, item, &token));
      *out << ' ' << token;
    }
  } else {
    std::string token;
    PR_RETURN_NOT_OK(JsonScalarToToken(key, value, &token));
    *out << ' ' << token;
  }
  *out << '\n';
  return Status::OK();
}

}  // namespace

std::string RunConfigToJson(const RunConfig& config) {
  // Re-encode the text dialect line by line so the two forms cannot drift:
  // the set of keys, their order, and their token grammar all come from
  // SerializeRunConfig itself.
  const std::string text = SerializeRunConfig(config);
  JsonValue root = JsonValue::MakeObject();
  root.Set("prconfig", JsonValue::MakeNumber(1));

  std::istringstream lines(text);
  std::string line;
  bool saw_header = false;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (!saw_header) {
      saw_header = true;  // "prconfig 1"
      continue;
    }
    std::istringstream values(line);
    std::string key;
    values >> key;
    if (key.empty()) continue;

    JsonValue entry;
    if (key == "run.ckpt.dir" || key == "scenario.name") {
      std::string rest;
      std::getline(values, rest);
      size_t start = rest.find_first_not_of(" \t");
      entry = JsonValue::MakeString(
          start == std::string::npos ? std::string() : rest.substr(start));
    } else {
      std::vector<JsonValue> tokens;
      std::string token;
      while (values >> token) {
        tokens.push_back(TokenToJson(key, tokens.size(), token));
      }
      if (tokens.size() == 1 && !IsListKey(key)) {
        entry = std::move(tokens[0]);
      } else {
        entry = JsonValue::MakeArray(std::move(tokens));
      }
    }

    if (IsListKey(key)) {
      JsonValue* list = nullptr;
      for (auto& member : root.mutable_members()) {
        if (member.first == key) {
          list = &member.second;
          break;
        }
      }
      if (list == nullptr) {
        root.Set(key, JsonValue::MakeArray());
        list = &root.mutable_members().back().second;
      }
      list->Append(std::move(entry));
    } else {
      root.Set(key, std::move(entry));
    }
  }
  return root.Dump();
}

Status RunConfigFromJson(const std::string& json, RunConfig* out) {
  JsonValue root;
  PR_RETURN_NOT_OK(ParseJson(json, &root));
  if (!root.is_object()) {
    return Status::InvalidArgument("json config must be an object");
  }
  const JsonValue* version = root.Find("prconfig");
  if (version == nullptr || !version->is_number() ||
      version->number_value() != 1) {
    return Status::InvalidArgument(
        "json config is missing '\"prconfig\": 1'");
  }

  // Rebuild the text form and delegate to the strict text parser, so unknown
  // keys and malformed values fail with the same diagnostics either way.
  std::ostringstream text;
  text << "prconfig 1\n";
  for (const auto& [key, value] : root.members()) {
    if (key == "prconfig") continue;
    if (IsListKey(key)) {
      if (!value.is_array()) {
        return Status::InvalidArgument("json config key '" + key +
                                       "' must be an array of entries");
      }
      for (const JsonValue& entry : value.items()) {
        PR_RETURN_NOT_OK(JsonLineToText(key, entry, &text));
      }
    } else {
      PR_RETURN_NOT_OK(JsonLineToText(key, value, &text));
    }
  }
  return ParseRunConfig(text.str(), out);
}

}  // namespace pr
