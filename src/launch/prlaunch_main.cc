// prlaunch: run a training job as real processes over the socket transport.
//
//   prlaunch -n 4 --iters 40 --strategy CON --workdir /tmp/run
//
// spawns 4 worker processes plus the controller (for P-Reduce kinds),
// connected over Unix-domain sockets under the workdir, and merges their
// reports into one run-level result. The same binary is its own node entry
// point: the launcher re-execs it with `--role node` for each process.
//
// Chaos: --kill-worker W --kill-after S SIGKILLs worker W's process mid-run;
// the survivors must finish through the fault-tolerant protocol. Parity:
// --compare-inproc re-runs the identical config on the in-proc engine and
// fails (exit 1) if the final losses differ by more than --loss-tol, or if
// an All-Reduce run's transport.payload_copies counters diverge (the
// zero-copy send-path check).

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "ckpt/manifest.h"
#include "launch/config_io.h"
#include "launch/launcher.h"
#include "launch/process_runner.h"
#include "runtime/threaded_runtime.h"
#include "scenario/scenario.h"
#include "strategies/strategy.h"
#include "topo/topology.h"

namespace pr {
namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  -n, --workers N       worker process count (default 4)\n"
      "      --iters N         local iterations per worker (default 40)\n"
      "      --strategy KIND   CON | DYN | AR (default CON)\n"
      "      --compression C   none | fp16 | int8 | topk (default none)\n"
      "      --group-size P    P-Reduce group size (default 3)\n"
      "      --seed S          run seed (default 7)\n"
      "      --batch B         batch size (default 32)\n"
      "      --lr L            SGD learning rate (default 0.1)\n"
      "      --momentum M      SGD momentum (default 0.9)\n"
      "      --delay d0,d1,... per-worker iteration delays (seconds)\n"
      "      --topology FILE   cluster topology ('prtopo 1' text or JSON);\n"
      "                        enables topology-aware group selection\n"
      "      --scenario FILE   churn trace ('prtrace 1' text or JSON);\n"
      "                        compiled into the run's fault plan\n"
      "      --hierarchical    two-level P-Reduce (needs --topology)\n"
      "      --cross-period K  cross-node merge every K groups (default 4)\n"
      "      --workdir DIR     scratch dir (default: mkdtemp under /tmp)\n"
      "      --tcp             TCP loopback instead of Unix-domain sockets\n"
      "      --ft              force the fault-tolerant protocol\n"
      "      --kill-worker W   SIGKILL worker W's process mid-run\n"
      "      --kill-after S    seconds before the kill (default 0.25)\n"
      "      --ckpt-dir DIR    coordinated checkpoint directory\n"
      "      --ckpt-every K    checkpoint every K local iterations\n"
      "      --resume PATH     resume from this manifest ('latest' picks\n"
      "                        the newest intact one in --ckpt-dir)\n"
      "      --compare-inproc  run the in-proc engine too and check parity\n"
      "      --loss-tol T      parity tolerance (default 1e-3)\n"
      "      --report PATH     write the merged result as JSON\n",
      argv0);
  return 2;
}

bool ParseDelays(const std::string& arg, std::vector<double>* out) {
  out->clear();
  size_t start = 0;
  while (start <= arg.size()) {
    size_t comma = arg.find(',', start);
    if (comma == std::string::npos) comma = arg.size();
    const std::string token = arg.substr(start, comma - start);
    char* end = nullptr;
    out->push_back(std::strtod(token.c_str(), &end));
    if (end == token.c_str() || *end != '\0') return false;
    start = comma + 1;
  }
  return true;
}

std::string SelfBinary() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  return buf;
}

// Child entry point: `prlaunch --role node --node I --config P --sockdir D
// --report P [--tcp] [--resume M]`.
int NodeMain(int argc, char** argv) {
  NodeRunOptions options;
  std::string config_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--role") {
      next();  // already dispatched on
    } else if (arg == "--node") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      options.node = std::atoi(v);
    } else if (arg == "--config") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      config_path = v;
    } else if (arg == "--sockdir") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      options.socket.dir = v;
    } else if (arg == "--report") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      options.report_path = v;
    } else if (arg == "--resume") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      options.resume_manifest = v;
    } else if (arg == "--tcp") {
      options.socket.tcp = true;
    } else {
      std::fprintf(stderr, "unknown node flag %s\n", arg.c_str());
      return 2;
    }
  }
  Status s = LoadRunConfig(config_path, &options.config);
  if (!s.ok()) {
    std::fprintf(stderr, "node %d: %s\n", options.node, s.message().c_str());
    return 3;
  }
  s = RunNode(options);
  if (!s.ok()) {
    std::fprintf(stderr, "node %d: %s\n", options.node, s.message().c_str());
    return 3;
  }
  return 0;
}

int LauncherMain(int argc, char** argv) {
  LaunchOptions options;
  RunConfig& config = options.config;
  config.strategy.kind = StrategyKind::kPReduceConst;
  config.run.iterations_per_worker = 40;
  bool compare_inproc = false;
  double loss_tol = 1e-3;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "-n" || arg == "--workers") {
      if (!(v = next())) return Usage(argv[0]);
      config.run.num_workers = std::atoi(v);
    } else if (arg == "--iters") {
      if (!(v = next())) return Usage(argv[0]);
      config.run.iterations_per_worker =
          static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--strategy") {
      if (!(v = next())) return Usage(argv[0]);
      if (std::strcmp(v, "CON") == 0) {
        config.strategy.kind = StrategyKind::kPReduceConst;
      } else if (std::strcmp(v, "DYN") == 0) {
        config.strategy.kind = StrategyKind::kPReduceDynamic;
      } else if (std::strcmp(v, "AR") == 0) {
        config.strategy.kind = StrategyKind::kAllReduce;
      } else {
        std::fprintf(stderr, "unsupported strategy %s\n", v);
        return 2;
      }
    } else if (arg == "--compression") {
      if (!(v = next())) return Usage(argv[0]);
      if (!ParseCompressionKind(v, &config.strategy.compression)) {
        std::fprintf(stderr, "unsupported compression %s\n", v);
        return 2;
      }
    } else if (arg == "--group-size") {
      if (!(v = next())) return Usage(argv[0]);
      config.strategy.group_size = std::atoi(v);
    } else if (arg == "--seed") {
      if (!(v = next())) return Usage(argv[0]);
      config.run.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--batch") {
      if (!(v = next())) return Usage(argv[0]);
      config.run.batch_size = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--lr") {
      if (!(v = next())) return Usage(argv[0]);
      config.run.sgd.learning_rate = std::strtod(v, nullptr);
    } else if (arg == "--momentum") {
      if (!(v = next())) return Usage(argv[0]);
      config.run.sgd.momentum = std::strtod(v, nullptr);
    } else if (arg == "--delay") {
      if (!(v = next())) return Usage(argv[0]);
      if (!ParseDelays(v, &config.run.worker_delay_seconds)) {
        std::fprintf(stderr, "bad --delay list %s\n", v);
        return 2;
      }
    } else if (arg == "--topology") {
      if (!(v = next())) return Usage(argv[0]);
      Status ts = Topology::Load(v, &config.run.topology);
      if (!ts.ok()) {
        std::fprintf(stderr, "--topology %s: %s\n", v, ts.message().c_str());
        return 2;
      }
    } else if (arg == "--scenario") {
      if (!(v = next())) return Usage(argv[0]);
      Status ss = LoadScenario(v, &config.run.scenario);
      if (!ss.ok()) {
        std::fprintf(stderr, "--scenario %s: %s\n", v, ss.message().c_str());
        return 2;
      }
    } else if (arg == "--hierarchical") {
      config.strategy.hierarchy.enabled = true;
    } else if (arg == "--cross-period") {
      if (!(v = next())) return Usage(argv[0]);
      config.strategy.hierarchy.cross_period = std::atoi(v);
    } else if (arg == "--workdir") {
      if (!(v = next())) return Usage(argv[0]);
      options.workdir = v;
    } else if (arg == "--tcp") {
      options.socket.tcp = true;
    } else if (arg == "--ft") {
      config.run.fault.force_fault_tolerant = true;
    } else if (arg == "--kill-worker") {
      if (!(v = next())) return Usage(argv[0]);
      options.kill.worker = std::atoi(v);
    } else if (arg == "--kill-after") {
      if (!(v = next())) return Usage(argv[0]);
      options.kill.after_seconds = std::strtod(v, nullptr);
    } else if (arg == "--ckpt-dir") {
      if (!(v = next())) return Usage(argv[0]);
      config.run.ckpt.dir = v;
    } else if (arg == "--ckpt-every") {
      if (!(v = next())) return Usage(argv[0]);
      config.run.ckpt.every_iterations =
          static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--resume") {
      if (!(v = next())) return Usage(argv[0]);
      options.resume_manifest = v;
    } else if (arg == "--compare-inproc") {
      compare_inproc = true;
    } else if (arg == "--loss-tol") {
      if (!(v = next())) return Usage(argv[0]);
      loss_tol = std::strtod(v, nullptr);
    } else if (arg == "--report") {
      if (!(v = next())) return Usage(argv[0]);
      json_path = v;
    } else if (arg == "-h" || arg == "--help") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }

  if (options.workdir.empty()) {
    char tmpl[] = "/tmp/prlaunch.XXXXXX";
    const char* dir = ::mkdtemp(tmpl);
    if (dir == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      return 1;
    }
    options.workdir = dir;
  }
  if (options.resume_manifest == "latest") {
    if (config.run.ckpt.dir.empty()) {
      std::fprintf(stderr, "--resume latest needs --ckpt-dir\n");
      return 2;
    }
    RunManifest manifest;
    Status found = FindLatestManifest(config.run.ckpt.dir, &manifest,
                                      &options.resume_manifest);
    if (!found.ok()) {
      std::fprintf(stderr, "--resume latest: %s\n", found.message().c_str());
      return 2;
    }
  }
  options.self_binary = SelfBinary();

  LaunchResult result;
  Status s = Launch(options, &result);
  if (!s.ok()) {
    std::fprintf(stderr, "launch failed: %s (workdir %s)\n",
                 s.message().c_str(), options.workdir.c_str());
    return 1;
  }
  std::printf(
      "PRLAUNCH_OK strategy=%s processes=%d loss=%.6f acc=%.4f "
      "group_reduces=%llu wall=%.3f workdir=%s\n",
      result.strategy.c_str(), result.num_processes, result.final_loss,
      result.final_accuracy,
      static_cast<unsigned long long>(result.group_reduces),
      result.wall_seconds, options.workdir.c_str());

  int rc = 0;
  if (compare_inproc) {
    // Reproduce exactly what Launch ran: a kill forces the FT protocol on
    // the socket side, so the in-proc baseline runs it too (uninterrupted).
    RunConfig inproc = config;
    if (options.kill.armed()) inproc.run.fault.force_fault_tolerant = true;
    ThreadedRunResult baseline = RunThreaded(inproc);
    const double delta = std::fabs(baseline.final_loss - result.final_loss);
    std::printf("PRLAUNCH_PARITY inproc_loss=%.6f socket_loss=%.6f "
                "delta=%.6f tol=%g\n",
                baseline.final_loss, result.final_loss, delta, loss_tol);
    if (delta > loss_tol) {
      std::fprintf(stderr, "loss parity violated: %.6f > %g\n", delta,
                   loss_tol);
      rc = 1;
    }
    if (config.strategy.kind == StrategyKind::kAllReduce &&
        !options.kill.armed()) {
      // All-Reduce is deterministic, so the copy counters must agree
      // exactly — the zero-copy guarantee of the socket send path.
      const double socket_copies =
          result.metrics.counter("transport.payload_copies");
      const double inproc_copies =
          baseline.metrics.counter("transport.payload_copies");
      std::printf("PRLAUNCH_COPIES socket=%.0f inproc=%.0f\n", socket_copies,
                  inproc_copies);
      if (socket_copies != inproc_copies) {
        std::fprintf(stderr, "payload_copies diverged: socket %.0f vs "
                             "in-proc %.0f\n",
                     socket_copies, inproc_copies);
        rc = 1;
      }
    }
  }
  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    const std::string json = LaunchReportJson(result);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  return rc;
}

}  // namespace
}  // namespace pr

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--role") == 0 && i + 1 < argc &&
        std::strcmp(argv[i + 1], "node") == 0) {
      return pr::NodeMain(argc, argv);
    }
  }
  return pr::LauncherMain(argc, argv);
}
