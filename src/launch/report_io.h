#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace pr {

/// \brief What one spawned process reports back to the launcher.
///
/// Written (atomically, temp + rename) as the process's last act before
/// exiting; the launcher reads every surviving process's report and merges
/// them into one run-level result. The format is the same line-oriented
/// text as the config file, closed by an `end` sentinel so a report cut
/// short by a crash is distinguishable from a complete one.
struct ProcessReport {
  int node = -1;               ///< transport node id this process hosted
  std::string role;            ///< "worker" or "service"
  std::string strategy;        ///< StrategyKindName of what ran
  double wall_seconds = 0.0;
  uint64_t group_reduces = 0;  ///< non-zero only where the service ran
  /// Local iteration counts, full num_workers length with non-local slots
  /// zero (the launcher merges by element-wise max).
  std::vector<size_t> worker_iterations;
  std::vector<double> worker_finish_seconds;  ///< same sparse layout
  /// Worker processes: the final local replica (this process's slice of the
  /// run-level average). Service-only processes leave it empty.
  std::vector<float> replica;
  /// This process's merged metrics under the shared metric names; the
  /// launcher folds all reports with MergeSnapshots.
  MetricsSnapshot metrics;
};

std::string SerializeProcessReport(const ProcessReport& report);
Status ParseProcessReport(const std::string& text, ProcessReport* out);

Status SaveProcessReport(const std::string& path, const ProcessReport& report);
Status LoadProcessReport(const std::string& path, ProcessReport* out);

}  // namespace pr
