#pragma once

#include <string>

#include "comm/socket_transport.h"
#include "common/status.h"
#include "runtime/threaded_runtime.h"

namespace pr {

/// \brief Everything one spawned process needs to run its slice of a
/// multi-process training job.
struct NodeRunOptions {
  RunConfig config;
  /// Transport node this process hosts: 0..num_workers-1 are workers,
  /// num_workers is the service (controller) node.
  int node = 0;
  /// Socket rendezvous settings; `socket.dir` must be the directory shared
  /// by every process of the run.
  SocketConfig socket;
  /// Where to write this process's ProcessReport before exiting.
  std::string report_path;
  /// Optional checkpoint manifest to resume from (every process of a
  /// resumed run loads the same manifest).
  std::string resume_manifest;
};

/// True when the configured strategy runs a dedicated service node (and the
/// launcher must therefore spawn num_workers + 1 processes).
bool StrategyHasService(const RunConfig& config);

/// \brief Runs one node of a multi-process job to completion: validates the
/// config, starts a SocketTransport hosting exactly this node, restricts a
/// WorkerRuntime to the local slice, runs the strategy, and writes the
/// process report. Blocking; returns once the report has landed (or with
/// the error that prevented the run).
Status RunNode(const NodeRunOptions& options);

}  // namespace pr
