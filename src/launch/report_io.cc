#include "launch/report_io.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace pr {
namespace {

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Floats get the shorter exact form: 9 significant decimal digits
// round-trip any binary32 value.
std::string NumF(float v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(v));
  return buf;
}

Status BadLine(int line_no, const std::string& what) {
  return Status::InvalidArgument("report line " + std::to_string(line_no) +
                                 ": " + what);
}

}  // namespace

std::string SerializeProcessReport(const ProcessReport& report) {
  std::ostringstream out;
  out << "prreport 1\n";
  out << "node " << report.node << "\n";
  out << "role " << report.role << "\n";
  out << "strategy " << report.strategy << "\n";
  out << "wall_seconds " << Num(report.wall_seconds) << "\n";
  out << "group_reduces " << report.group_reduces << "\n";
  for (size_t w = 0; w < report.worker_iterations.size(); ++w) {
    if (report.worker_iterations[w] == 0) continue;
    out << "iterations " << w << " " << report.worker_iterations[w] << "\n";
  }
  out << "num_workers " << report.worker_iterations.size() << "\n";
  for (size_t w = 0; w < report.worker_finish_seconds.size(); ++w) {
    if (report.worker_finish_seconds[w] == 0.0) continue;
    out << "finish " << w << " " << Num(report.worker_finish_seconds[w])
        << "\n";
  }
  out << "replica " << report.replica.size();
  for (float v : report.replica) out << " " << NumF(v);
  out << "\n";
  for (const auto& [name, value] : report.metrics.counters) {
    out << "counter " << name << " " << Num(value) << "\n";
  }
  for (const auto& [name, value] : report.metrics.gauges) {
    out << "gauge " << name << " " << Num(value) << "\n";
  }
  for (const auto& [name, h] : report.metrics.histograms) {
    out << "hist " << name << " " << h.upper_bounds.size();
    for (double b : h.upper_bounds) out << " " << Num(b);
    for (uint64_t c : h.counts) out << " " << c;
    out << " " << h.total_count << " " << Num(h.sum) << "\n";
  }
  out << "end\n";
  return out.str();
}

Status ParseProcessReport(const std::string& text, ProcessReport* out) {
  ProcessReport report;
  std::istringstream lines(text);
  std::string line;
  int line_no = 0;
  bool saw_header = false;
  bool saw_end = false;
  size_t num_workers = 0;
  // Sparse per-worker entries arrive before the num_workers line is
  // guaranteed to have been seen, so stage them and resize at the end.
  std::vector<std::pair<size_t, size_t>> iteration_entries;
  std::vector<std::pair<size_t, double>> finish_entries;

  while (std::getline(lines, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    if (saw_end) return BadLine(line_no, "content after 'end' sentinel");
    std::istringstream values(line);
    std::string key;
    values >> key;
    if (key.empty()) continue;

    if (!saw_header) {
      int version = 0;
      if (key != "prreport" || !(values >> version) || version != 1) {
        return Status::InvalidArgument(
            "report does not start with a 'prreport 1' header");
      }
      saw_header = true;
      continue;
    }

    if (key == "node") {
      if (!(values >> report.node)) return BadLine(line_no, "bad node");
    } else if (key == "role") {
      if (!(values >> report.role)) return BadLine(line_no, "bad role");
    } else if (key == "strategy") {
      if (!(values >> report.strategy)) {
        return BadLine(line_no, "bad strategy");
      }
    } else if (key == "wall_seconds") {
      if (!(values >> report.wall_seconds)) {
        return BadLine(line_no, "bad wall_seconds");
      }
    } else if (key == "group_reduces") {
      if (!(values >> report.group_reduces)) {
        return BadLine(line_no, "bad group_reduces");
      }
    } else if (key == "num_workers") {
      if (!(values >> num_workers)) return BadLine(line_no, "bad num_workers");
    } else if (key == "iterations") {
      size_t w = 0, n = 0;
      if (!(values >> w >> n)) return BadLine(line_no, "bad iterations");
      iteration_entries.emplace_back(w, n);
    } else if (key == "finish") {
      size_t w = 0;
      double t = 0.0;
      if (!(values >> w >> t)) return BadLine(line_no, "bad finish");
      finish_entries.emplace_back(w, t);
    } else if (key == "replica") {
      size_t n = 0;
      if (!(values >> n)) return BadLine(line_no, "bad replica length");
      report.replica.resize(n);
      for (size_t i = 0; i < n; ++i) {
        if (!(values >> report.replica[i])) {
          return BadLine(line_no, "replica truncated at element " +
                                      std::to_string(i));
        }
      }
    } else if (key == "counter") {
      std::string name;
      double value = 0.0;
      if (!(values >> name >> value)) return BadLine(line_no, "bad counter");
      report.metrics.counters[name] = value;
    } else if (key == "gauge") {
      std::string name;
      double value = 0.0;
      if (!(values >> name >> value)) return BadLine(line_no, "bad gauge");
      report.metrics.gauges[name] = value;
    } else if (key == "hist") {
      std::string name;
      size_t num_bounds = 0;
      if (!(values >> name >> num_bounds)) {
        return BadLine(line_no, "bad histogram");
      }
      HistogramSnapshot h;
      h.upper_bounds.resize(num_bounds);
      for (double& b : h.upper_bounds) {
        if (!(values >> b)) return BadLine(line_no, "histogram bounds cut");
      }
      h.counts.resize(num_bounds + 1);
      for (uint64_t& c : h.counts) {
        if (!(values >> c)) return BadLine(line_no, "histogram counts cut");
      }
      if (!(values >> h.total_count >> h.sum)) {
        return BadLine(line_no, "histogram tail cut");
      }
      report.metrics.histograms[name] = h;
    } else if (key == "end") {
      saw_end = true;
    } else {
      return BadLine(line_no, "unknown key '" + key + "'");
    }
  }
  if (!saw_header) return Status::InvalidArgument("report has no header");
  if (!saw_end) {
    return Status::InvalidArgument(
        "report has no 'end' sentinel (writer died mid-report?)");
  }
  report.worker_iterations.assign(num_workers, 0);
  report.worker_finish_seconds.assign(num_workers, 0.0);
  for (const auto& [w, n] : iteration_entries) {
    if (w >= num_workers) return Status::InvalidArgument("iterations index");
    report.worker_iterations[w] = n;
  }
  for (const auto& [w, t] : finish_entries) {
    if (w >= num_workers) return Status::InvalidArgument("finish index");
    report.worker_finish_seconds[w] = t;
  }
  *out = std::move(report);
  return Status::OK();
}

Status SaveProcessReport(const std::string& path,
                         const ProcessReport& report) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::Internal("cannot open " + tmp + " for writing");
    out << SerializeProcessReport(report);
    out.flush();
    if (!out) return Status::Internal("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("rename " + tmp + " -> " + path + " failed");
  }
  return Status::OK();
}

Status LoadProcessReport(const std::string& path, ProcessReport* out) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("report file " + path + " not readable");
  std::ostringstream text;
  text << in.rdbuf();
  return ParseProcessReport(text.str(), out);
}

}  // namespace pr
