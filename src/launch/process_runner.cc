#include "launch/process_runner.h"

#include <filesystem>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "ckpt/manifest.h"
#include "launch/report_io.h"
#include "runtime/threaded_strategy.h"
#include "runtime/worker_runtime.h"
#include "strategies/strategy.h"

namespace pr {

bool StrategyHasService(const RunConfig& config) {
  return MakeThreadedStrategy(config.strategy)->has_service();
}

Status RunNode(const NodeRunOptions& options) {
  const RunConfig& config = options.config;
  const int num_workers = config.run.num_workers;
  if (options.node < 0 || options.node > num_workers) {
    return Status::InvalidArgument("node " + std::to_string(options.node) +
                                   " out of range for " +
                                   std::to_string(num_workers) + " workers");
  }
  ValidateRunConfig(config);
  std::unique_ptr<ThreadedStrategy> strategy =
      MakeThreadedStrategy(config.strategy);
  const bool is_service = options.node == num_workers;
  if (is_service && !strategy->has_service()) {
    return Status::InvalidArgument("strategy " + strategy->Name() +
                                   " has no service node");
  }

  // The fabric hosts exactly this process's node; everything else is a
  // remote peer reached through the connection manager.
  SocketTransport fabric(options.socket, {options.node}, num_workers + 1);
  PR_RETURN_NOT_OK(fabric.Start());

  // Resume: every process loads the same manifest. Replica/optimizer shards
  // for non-local workers are restored and then simply unused.
  std::optional<RunManifest> manifest;
  std::string manifest_dir;
  if (!options.resume_manifest.empty()) {
    RunManifest m;
    PR_RETURN_NOT_OK(LoadManifest(options.resume_manifest, &m));
    if (m.engine != "threaded") {
      return Status::InvalidArgument("manifest engine '" + m.engine +
                                     "' is not 'threaded'");
    }
    if (m.strategy != StrategyKindName(config.strategy.kind)) {
      return Status::InvalidArgument(
          "manifest strategy " + m.strategy + " does not match requested " +
          StrategyKindName(config.strategy.kind));
    }
    if (m.seed != config.run.seed) {
      return Status::InvalidArgument(
          "resuming with a different seed would draw different batches");
    }
    manifest_dir = std::filesystem::path(options.resume_manifest)
                       .parent_path()
                       .string();
    manifest = std::move(m);
  }

  WorkerRuntime runtime(config.strategy, config.run,
                        manifest ? &*manifest : nullptr, manifest_dir);
  runtime.UseExternalFabric(&fabric);
  runtime.RestrictTo(is_service ? std::vector<int>{}
                                : std::vector<int>{options.node},
                     is_service);
  ThreadedRunResult result = runtime.Run(strategy.get());

  ProcessReport report;
  report.node = options.node;
  report.role = is_service ? "service" : "worker";
  report.strategy = result.strategy;
  report.wall_seconds = result.wall_seconds;
  report.group_reduces = result.group_reduces;
  report.worker_iterations = result.worker_iterations;
  report.worker_finish_seconds = result.worker_finish_seconds;
  if (!is_service) report.replica = std::move(result.final_params);
  report.metrics = std::move(result.metrics);
  if (!options.report_path.empty()) {
    PR_RETURN_NOT_OK(SaveProcessReport(options.report_path, report));
  }
  return Status::OK();
}

}  // namespace pr
