#include "launch/launcher.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "launch/config_io.h"
#include "launch/process_runner.h"
#include "launch/report_io.h"
#include "models/catalog.h"
#include "models/model.h"
#include "obs/json.h"
#include "strategies/strategy.h"

namespace pr {
namespace {

bool MultiProcessSupported(StrategyKind kind) {
  // The launcher merges per-process results by averaging worker replicas,
  // which is exactly the evaluation rule for the decentralized collectives.
  // Centralized strategies (PS family, ER's server-held model) and AD-PSGD's
  // gossip pairing would need their own merge rules — not implemented.
  return kind == StrategyKind::kAllReduce ||
         kind == StrategyKind::kPReduceConst ||
         kind == StrategyKind::kPReduceDynamic;
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Child-side: point stdout/stderr at the node's log file so interleaved
// process output doesn't scramble the launcher's own stream.
void RedirectOutput(const std::string& log_path) {
  int fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  ::dup2(fd, STDOUT_FILENO);
  ::dup2(fd, STDERR_FILENO);
  if (fd > STDERR_FILENO) ::close(fd);
}

}  // namespace

Status Launch(const LaunchOptions& options, LaunchResult* result) {
  RunConfig config = options.config;
  if (!MultiProcessSupported(config.strategy.kind)) {
    return Status::NotImplemented(
        std::string("multi-process launch supports AR, CON, and DYN; got ") +
        StrategyKindName(config.strategy.kind));
  }
  if (options.kill.armed()) {
    // A killed process is a real failure; only the fault-tolerant protocol
    // (leases, eviction, abort/retry) survives one.
    config.run.fault.force_fault_tolerant = true;
  }
  ValidateRunConfig(config);
  const int num_workers = config.run.num_workers;
  const bool has_service = StrategyHasService(config);
  const int num_processes = num_workers + (has_service ? 1 : 0);
  if (options.kill.armed() &&
      (options.kill.worker < 0 || options.kill.worker >= num_workers)) {
    return Status::InvalidArgument("kill.worker out of range");
  }
  if (options.workdir.empty()) {
    return Status::InvalidArgument("LaunchOptions.workdir is required");
  }

  SocketConfig socket = options.socket;
  if (socket.dir.empty()) socket.dir = options.workdir + "/sock";
  std::error_code ec;
  std::filesystem::create_directories(options.workdir, ec);
  std::filesystem::create_directories(socket.dir, ec);
  if (ec) return Status::Internal("creating workdir: " + ec.message());

  const std::string config_path = options.workdir + "/run.conf";
  PR_RETURN_NOT_OK(SaveRunConfig(config_path, config));

  auto report_path = [&](int node) {
    return options.workdir + "/node-" + std::to_string(node) + ".report";
  };
  auto log_path = [&](int node) {
    return options.workdir + "/node-" + std::to_string(node) + ".log";
  };

  std::vector<pid_t> pids(num_processes, -1);
  for (int node = 0; node < num_processes; ++node) {
    pid_t pid = ::fork();
    if (pid < 0) {
      for (pid_t p : pids) {
        if (p > 0) ::kill(p, SIGKILL);
      }
      return Status::Internal("fork failed");
    }
    if (pid == 0) {
      // Child. Either exec the node entry point of the launcher binary
      // (fresh address space) or run the node inline in the forked image.
      RedirectOutput(log_path(node));
      if (!options.self_binary.empty()) {
        std::vector<std::string> args = {
            options.self_binary, "--role",   "node",
            "--node",            std::to_string(node),
            "--config",          config_path,
            "--sockdir",         socket.dir,
            "--report",          report_path(node)};
        if (socket.tcp) args.push_back("--tcp");
        if (!options.resume_manifest.empty()) {
          args.push_back("--resume");
          args.push_back(options.resume_manifest);
        }
        std::vector<char*> argv;
        argv.reserve(args.size() + 1);
        for (std::string& a : args) argv.push_back(a.data());
        argv.push_back(nullptr);
        ::execv(options.self_binary.c_str(), argv.data());
        ::_exit(127);  // execv only returns on failure
      }
      NodeRunOptions node_options;
      node_options.config = config;
      node_options.node = node;
      node_options.socket = socket;
      node_options.report_path = report_path(node);
      node_options.resume_manifest = options.resume_manifest;
      Status s = RunNode(node_options);
      // _exit, not exit: the forked image shares the parent's atexit state
      // and must not run its destructors.
      ::_exit(s.ok() ? 0 : 3);
    }
    pids[node] = pid;
  }

  // Reap loop with the kill timer and a hard safety deadline (a wedged run
  // must fail the launcher, not hang CI).
  const double start = NowSeconds();
  const double kill_at =
      options.kill.armed() ? start + options.kill.after_seconds : -1.0;
  const double deadline = start + 120.0;
  std::vector<int> exit_codes(num_processes, -1);
  std::vector<bool> killed(num_processes, false);
  bool kill_fired = false;
  int live = num_processes;
  bool timed_out = false;
  while (live > 0) {
    const double now = NowSeconds();
    if (options.kill.armed() && !kill_fired && now >= kill_at &&
        pids[options.kill.worker] > 0 &&
        exit_codes[options.kill.worker] < 0) {
      ::kill(pids[options.kill.worker], SIGKILL);
      killed[options.kill.worker] = true;
      kill_fired = true;
    }
    if (now > deadline) {
      timed_out = true;
      for (int node = 0; node < num_processes; ++node) {
        if (exit_codes[node] < 0) ::kill(pids[node], SIGKILL);
      }
    }
    bool reaped = false;
    for (int node = 0; node < num_processes; ++node) {
      if (exit_codes[node] >= 0) continue;
      int wstatus = 0;
      pid_t r = ::waitpid(pids[node], &wstatus, timed_out ? 0 : WNOHANG);
      if (r == pids[node]) {
        exit_codes[node] = WIFSIGNALED(wstatus)
                               ? 128 + WTERMSIG(wstatus)
                               : WEXITSTATUS(wstatus);
        --live;
        reaped = true;
      }
    }
    if (!reaped && live > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  if (timed_out) {
    return Status::Timeout("multi-process run exceeded the 120 s deadline");
  }

  LaunchResult merged;
  merged.num_processes = num_processes;
  merged.exit_codes = exit_codes;
  merged.killed = killed;
  merged.worker_iterations.assign(static_cast<size_t>(num_workers), 0);
  merged.worker_finish_seconds.assign(static_cast<size_t>(num_workers), 0.0);

  std::vector<MetricsSnapshot> snapshots;
  std::vector<const std::vector<float>*> replicas;
  std::vector<ProcessReport> reports(num_processes);
  std::string failures;
  for (int node = 0; node < num_processes; ++node) {
    if (killed[node]) continue;
    if (exit_codes[node] != 0) {
      failures += " node " + std::to_string(node) + " exited " +
                  std::to_string(exit_codes[node]) + " (see " +
                  log_path(node) + ")";
      continue;
    }
    Status s = LoadProcessReport(report_path(node), &reports[node]);
    if (!s.ok()) {
      failures += " node " + std::to_string(node) + ": " + s.message();
      continue;
    }
    const ProcessReport& r = reports[node];
    if (merged.strategy.empty()) merged.strategy = r.strategy;
    merged.wall_seconds = std::max(merged.wall_seconds, r.wall_seconds);
    merged.group_reduces = std::max(merged.group_reduces, r.group_reduces);
    for (size_t w = 0; w < r.worker_iterations.size() &&
                       w < merged.worker_iterations.size();
         ++w) {
      merged.worker_iterations[w] =
          std::max(merged.worker_iterations[w], r.worker_iterations[w]);
      merged.worker_finish_seconds[w] = std::max(
          merged.worker_finish_seconds[w], r.worker_finish_seconds[w]);
    }
    snapshots.push_back(r.metrics);
    if (r.role == "worker" && !r.replica.empty()) {
      replicas.push_back(&r.replica);
    }
  }
  if (!failures.empty()) {
    return Status::Internal("multi-process run failed:" + failures);
  }
  if (replicas.empty()) {
    return Status::Internal("no surviving worker produced a replica");
  }
  merged.metrics = MergeSnapshots(snapshots);

  // Evaluate the average of the surviving replicas exactly like the
  // in-proc engine evaluates its decentralized strategies: regenerate the
  // dataset and model from the config seed (bit-identical in every process
  // and here) and score the averaged parameters on the held-out test set.
  const size_t num_params = replicas[0]->size();
  for (const std::vector<float>* r : replicas) {
    if (r->size() != num_params) {
      return Status::Internal("worker replicas disagree on parameter count");
    }
  }
  merged.averaged_params.assign(num_params, 0.0f);
  for (const std::vector<float>* r : replicas) {
    for (size_t i = 0; i < num_params; ++i) {
      merged.averaged_params[i] += (*r)[i];
    }
  }
  const float inv = 1.0f / static_cast<float>(replicas.size());
  for (float& v : merged.averaged_params) v *= inv;

  SyntheticSpec spec = config.run.dataset;
  spec.seed = config.run.seed;
  TrainTestSplit split = GenerateSynthetic(spec);
  std::unique_ptr<Model> model =
      MakeProxyModel(config.run.model, spec.dim, spec.num_classes);
  if (model->NumParams() != num_params) {
    return Status::Internal("replica size does not match the config's model");
  }
  merged.final_accuracy =
      EvaluateAccuracy(*model, merged.averaged_params.data(), split.test);
  merged.final_loss =
      EvaluateLoss(*model, merged.averaged_params.data(), split.test);

  *result = std::move(merged);
  return Status::OK();
}

std::string LaunchReportJson(const LaunchResult& result) {
  JsonWriter w;
  w.BeginObject();
  w.Key("strategy").String(result.strategy);
  w.Key("num_processes").Int(result.num_processes);
  w.Key("wall_seconds").Number(result.wall_seconds);
  w.Key("group_reduces").UInt(result.group_reduces);
  w.Key("final_loss").Number(result.final_loss);
  w.Key("final_accuracy").Number(result.final_accuracy);
  w.Key("exit_codes").BeginArray();
  for (int code : result.exit_codes) w.Int(code);
  w.EndArray();
  w.Key("killed").BeginArray();
  for (bool k : result.killed) w.Bool(k);
  w.EndArray();
  w.Key("worker_iterations").BeginArray();
  for (size_t n : result.worker_iterations) w.UInt(n);
  w.EndArray();
  w.Key("worker_finish_seconds").BeginArray();
  for (double t : result.worker_finish_seconds) w.Number(t);
  w.EndArray();
  w.Key("metrics");
  WriteMetricsSnapshot(&w, result.metrics);
  w.EndObject();
  return w.str();
}

}  // namespace pr
