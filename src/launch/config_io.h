#pragma once

#include <string>

#include "common/status.h"
#include "runtime/threaded_runtime.h"

namespace pr {

/// \brief Text serialization of a RunConfig for launcher -> worker handoff.
///
/// The launcher writes the run request once; every spawned process loads it
/// and reconstructs an identical RunConfig, which is what makes the
/// multi-process engine deterministic — dataset, model, replica init, and
/// batch order are all pure functions of the config. The format is
/// line-oriented `key value...` text (`prconfig 1` header, `#` comments,
/// repeated keys for list entries) so it round-trips without a JSON parser;
/// floating-point fields are printed with enough digits (%.17g) to restore
/// bit-identical values.
std::string SerializeRunConfig(const RunConfig& config);

/// Parses text produced by SerializeRunConfig. Strict: unknown keys, bad
/// header, or malformed values fail with kInvalidArgument (a version skew
/// between launcher and worker binaries must not be silently half-applied).
Status ParseRunConfig(const std::string& text, RunConfig* out);

/// Convenience wrappers: write (atomically, temp + rename) / read a config
/// file.
Status SaveRunConfig(const std::string& path, const RunConfig& config);
Status LoadRunConfig(const std::string& path, RunConfig* out);

/// \brief JSON view of a RunConfig, derived mechanically from the text dialect.
///
/// The JSON form is a flat object whose members mirror the `key value...`
/// lines one-to-one ({"prconfig": 1, "strategy.kind": "CON", ...}); repeated
/// keys (run.model.hidden, run.delay, run.churn, fault.edge,
/// fault.worker_event, fault.controller_event) become arrays, and
/// multi-token lines become arrays of tokens. Because both directions are
/// re-encodings of SerializeRunConfig/ParseRunConfig there is no second
/// serialization dialect to drift: every key the text parser accepts is the
/// key the JSON parser accepts, with the same strictness.
std::string RunConfigToJson(const RunConfig& config);

/// Parses the JSON form back into a RunConfig. Unknown members, malformed
/// values, or a missing/mismatched "prconfig" version fail with
/// kInvalidArgument, exactly like ParseRunConfig.
Status RunConfigFromJson(const std::string& json, RunConfig* out);

}  // namespace pr
