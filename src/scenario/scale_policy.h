#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pr {

/// \brief Which autoscaling policy watches the run.
///
/// - kNone: autoscaling off; the worker set only changes through the trace.
/// - kThreshold: classic hysteresis — shrink one worker when mean idle
///   fraction sits above `idle_high`, grow one when it sits below
///   `idle_low`.
/// - kTrend: least-squares slope over the last `trend_window` samples;
///   reacts to idle *rising* before it crosses the threshold (the paper's
///   production traces show straggler onset is gradual, so the trend fires
///   earlier than the threshold on the same schedule).
enum class ScalePolicyKind { kNone = 0, kThreshold = 1, kTrend = 2 };

const char* ScalePolicyKindName(ScalePolicyKind kind);
bool ScalePolicyKindFromName(const std::string& name, ScalePolicyKind* out);

/// \brief Autoscaling + graceful-degradation knobs, serialized under
/// `strategy.scale_policy.*` in both config dialects.
///
/// The degradation gates apply independently of `kind` (a trace-driven run
/// with no autoscaler still wants them):
/// - `min_group_size`: when fewer than P workers are live, the controller
///   forms smaller groups down to this size instead of holding workers
///   pending — partial progress beats none (the paper's P is a target, not
///   an invariant, during churn).
/// - `liveness_floor`: when the live set falls below this, workers stop
///   waiting on the controller verdict path and take local SGD steps until
///   membership recovers.
/// - `partition_ckpt_seconds`: a network partition lasting at least this
///   long forces a checkpoint cut at the next boundary, bounding lost work
///   if the partition turns out to be a prelude to failure.
struct ScalePolicyConfig {
  ScalePolicyKind kind = ScalePolicyKind::kNone;
  double interval_seconds = 0.25;  ///< evaluation cadence (both clocks)
  double idle_high = 0.5;          ///< shrink above this mean idle fraction
  double idle_low = 0.15;          ///< grow below this mean idle fraction
  int min_workers = 2;             ///< never shrink the live set below this
  int max_workers = 0;             ///< 0 = the run's num_workers
  int trend_window = 4;            ///< samples per trend fit (>= 2)

  int min_group_size = 0;
  int liveness_floor = 0;
  double partition_ckpt_seconds = 0.0;

  bool enabled() const { return kind != ScalePolicyKind::kNone; }
  bool degradation_enabled() const {
    return min_group_size > 0 || liveness_floor > 0 ||
           partition_ckpt_seconds > 0.0;
  }
};

/// \brief One observation of the run, engine-agnostic. The threaded engine
/// samples the live metrics registry on the wall clock; the simulator
/// samples its counters on virtual-time ticks. Metric sources:
/// `worker.<i>.wait_seconds` deltas for idle, `controller.updates` deltas
/// for throughput.
struct ScaleSample {
  double time = 0.0;
  double mean_idle_fraction = 0.0;
  int active_workers = 0;
  double updates_per_second = 0.0;
};

/// \brief Pure decision engine: feed samples, get desired live-set sizes.
///
/// Deterministic and side-effect free — both engines drive the same class,
/// and the unit tests exercise it with hand-written sample streams.
class ScalePolicy {
 public:
  ScalePolicy(const ScalePolicyConfig& config, int num_workers);

  /// Feeds one sample and returns the desired live worker count, clamped to
  /// [min_workers, max_workers]. Returning `sample.active_workers` means
  /// "no change". Policies move by one worker per decision: scaling is
  /// damped by design, churn is what it is reacting to.
  int Decide(const ScaleSample& sample);

  const ScalePolicyConfig& config() const { return config_; }

 private:
  int Clamp(int desired) const;

  ScalePolicyConfig config_;
  int num_workers_;
  std::vector<ScaleSample> window_;
};

/// \brief Thread-safe pause board between a scaling driver and worker loops.
///
/// The driver (the runtime's scenario thread) calls SetTarget with the
/// policy's desired live count; the board pauses the highest-id workers
/// first and resumes them in reverse, so the surviving set is always a
/// prefix — deterministic given the same decision stream. Workers poll
/// ShouldPause(me) at iteration boundaries and route through the same
/// kKindPause / kKindRejoin elastic paths a trace-driven departure uses.
class ScaleDirector {
 public:
  explicit ScaleDirector(int num_workers);

  /// Worker side (lock-free): true while `worker` should sit out.
  bool ShouldPause(int worker) const {
    return paused_[static_cast<size_t>(worker)].load(
        std::memory_order_acquire);
  }

  /// Driver side: adjusts the paused set toward `target` active workers
  /// (clamped to [1, num_workers]). Returns the signed change in the active
  /// count (positive = workers resumed, negative = workers paused).
  int SetTarget(int target);

  /// Active (unpaused) workers in the director's view. The trace may pause
  /// more behind its back; this tracks only policy-driven pauses.
  int active() const;

 private:
  int num_workers_;
  mutable std::mutex mu_;  // serializes drivers; workers read atomics
  std::unique_ptr<std::atomic<bool>[]> paused_;
};

}  // namespace pr
