#include "scenario/scenario.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/rng.h"
#include "obs/json.h"

namespace pr {
namespace {

// Mirrors config_io's number formatting: shortest exact-round-trip doubles so
// SerializeScenario(ParseScenario(...)) is byte-identical.
std::string FormatDouble(double value) {
  for (int precision = 1; precision <= 17; ++precision) {
    std::ostringstream out;
    out.precision(precision);
    out << value;
    double parsed = 0.0;
    std::istringstream in(out.str());
    in >> parsed;
    if (parsed == value) return out.str();
  }
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

bool IsNameToken(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return true;
}

// Converts a scenario time to the iteration index at which an
// iteration-keyed fault fires. floor() so an event inside step k's window
// fires at the k-th boundary in both engines.
int TimeToIteration(double time, double expected_iteration_seconds) {
  PR_CHECK_GT(expected_iteration_seconds, 0.0);
  return static_cast<int>(std::floor(time / expected_iteration_seconds));
}

}  // namespace

const char* ScenarioEventKindName(ScenarioEventKind kind) {
  switch (kind) {
    case ScenarioEventKind::kDepart:
      return "depart";
    case ScenarioEventKind::kArrive:
      return "arrive";
    case ScenarioEventKind::kSlowdown:
      return "slowdown";
    case ScenarioEventKind::kCrash:
      return "crash";
    case ScenarioEventKind::kHang:
      return "hang";
    case ScenarioEventKind::kPartition:
      return "partition";
  }
  return "unknown";
}

bool ScenarioEventKindFromName(const std::string& name,
                               ScenarioEventKind* out) {
  if (name == "depart") *out = ScenarioEventKind::kDepart;
  else if (name == "arrive") *out = ScenarioEventKind::kArrive;
  else if (name == "slowdown") *out = ScenarioEventKind::kSlowdown;
  else if (name == "crash") *out = ScenarioEventKind::kCrash;
  else if (name == "hang") *out = ScenarioEventKind::kHang;
  else if (name == "partition") *out = ScenarioEventKind::kPartition;
  else return false;
  return true;
}

std::string SerializeScenario(const ScenarioSpec& spec) {
  std::ostringstream out;
  out << "prtrace 1\n";
  out << "name " << spec.name << '\n';
  out << "seed " << spec.seed << '\n';
  out << "expected_iteration_seconds "
      << FormatDouble(spec.expected_iteration_seconds) << '\n';
  for (const ScenarioEvent& e : spec.events) {
    out << "event " << ScenarioEventKindName(e.kind) << " time "
        << FormatDouble(e.time);
    if (e.worker >= 0) out << " worker " << e.worker;
    if (e.node >= 0) out << " node " << e.node;
    if (e.duration != 0.0) out << " duration " << FormatDouble(e.duration);
    if (e.factor != 1.0) out << " factor " << FormatDouble(e.factor);
    out << '\n';
  }
  return out.str();
}

Status ParseScenario(const std::string& text, ScenarioSpec* out) {
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;
  bool saw_event = false;
  ScenarioSpec spec;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (!saw_header) {
      int version = 0;
      if (key != "prtrace" || !(fields >> version) || version != 1) {
        return Status::InvalidArgument(
            "scenario: expected 'prtrace 1' header, got: " + line);
      }
      saw_header = true;
      continue;
    }
    if (key == "name") {
      std::string name;
      if (!(fields >> name) || !IsNameToken(name)) {
        return Status::InvalidArgument("scenario: bad name in: " + line);
      }
      spec.name = name;
    } else if (key == "seed") {
      uint64_t seed = 0;
      if (!(fields >> seed)) {
        return Status::InvalidArgument("scenario: bad seed in: " + line);
      }
      spec.seed = seed;
    } else if (key == "expected_iteration_seconds") {
      double value = 0.0;
      if (!(fields >> value) || !(value > 0.0)) {
        return Status::InvalidArgument(
            "scenario: bad expected_iteration_seconds in: " + line);
      }
      spec.expected_iteration_seconds = value;
    } else if (key == "event") {
      if (!saw_event) {
        // First occurrence clears: a re-parse replaces, never appends.
        spec.events.clear();
        saw_event = true;
      }
      std::string kind_name;
      if (!(fields >> kind_name)) {
        return Status::InvalidArgument("scenario: missing event kind in: " +
                                       line);
      }
      ScenarioEvent event;
      if (!ScenarioEventKindFromName(kind_name, &event.kind)) {
        return Status::InvalidArgument("scenario: unknown event kind '" +
                                       kind_name + "' in: " + line);
      }
      bool saw_time = false;
      std::string field;
      while (fields >> field) {
        if (field == "time") {
          if (!(fields >> event.time)) {
            return Status::InvalidArgument("scenario: bad time in: " + line);
          }
          saw_time = true;
        } else if (field == "worker") {
          if (!(fields >> event.worker)) {
            return Status::InvalidArgument("scenario: bad worker in: " + line);
          }
        } else if (field == "node") {
          if (!(fields >> event.node)) {
            return Status::InvalidArgument("scenario: bad node in: " + line);
          }
        } else if (field == "duration") {
          if (!(fields >> event.duration)) {
            return Status::InvalidArgument("scenario: bad duration in: " +
                                           line);
          }
        } else if (field == "factor") {
          if (!(fields >> event.factor)) {
            return Status::InvalidArgument("scenario: bad factor in: " + line);
          }
        } else {
          return Status::InvalidArgument("scenario: unknown event field '" +
                                         field + "' in: " + line);
        }
      }
      if (!saw_time) {
        return Status::InvalidArgument("scenario: event missing time in: " +
                                       line);
      }
      spec.events.push_back(event);
    } else {
      // Unknown keys are version skew, not noise to skip.
      return Status::InvalidArgument("scenario: unknown key: " + key);
    }
  }
  if (!saw_header) {
    return Status::InvalidArgument("scenario: missing 'prtrace 1' header");
  }
  *out = std::move(spec);
  return Status::OK();
}

std::string ScenarioToJson(const ScenarioSpec& spec) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("prtrace").Int(1);
  writer.Key("name").String(spec.name);
  writer.Key("seed").Number(static_cast<double>(spec.seed));
  writer.Key("expected_iteration_seconds")
      .Number(spec.expected_iteration_seconds);
  writer.Key("events").BeginArray();
  for (const ScenarioEvent& e : spec.events) {
    writer.BeginObject();
    writer.Key("kind").String(ScenarioEventKindName(e.kind));
    writer.Key("time").Number(e.time);
    if (e.worker >= 0) writer.Key("worker").Int(e.worker);
    if (e.node >= 0) writer.Key("node").Int(e.node);
    if (e.duration != 0.0) writer.Key("duration").Number(e.duration);
    if (e.factor != 1.0) writer.Key("factor").Number(e.factor);
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  return writer.str();
}

Status ScenarioFromJson(const std::string& json, ScenarioSpec* out) {
  JsonValue doc;
  Status status = ParseJson(json, &doc);
  if (!status.ok()) return status;
  if (!doc.is_object()) {
    return Status::InvalidArgument("scenario json: not an object");
  }
  const JsonValue* marker = doc.Find("prtrace");
  if (marker == nullptr || !marker->is_number() ||
      marker->number_value() != 1.0) {
    return Status::InvalidArgument("scenario json: missing 'prtrace': 1");
  }
  ScenarioSpec spec;
  for (const auto& [key, value] : doc.members()) {
    if (key == "prtrace") continue;
    if (key == "name") {
      if (!value.is_string() || !IsNameToken(value.string_value())) {
        return Status::InvalidArgument("scenario json: bad name");
      }
      spec.name = value.string_value();
    } else if (key == "seed") {
      if (!value.is_number() || value.number_value() < 0.0) {
        return Status::InvalidArgument("scenario json: bad seed");
      }
      spec.seed = static_cast<uint64_t>(value.number_value());
    } else if (key == "expected_iteration_seconds") {
      if (!value.is_number() || !(value.number_value() > 0.0)) {
        return Status::InvalidArgument(
            "scenario json: bad expected_iteration_seconds");
      }
      spec.expected_iteration_seconds = value.number_value();
    } else if (key == "events") {
      if (!value.is_array()) {
        return Status::InvalidArgument("scenario json: 'events' not an array");
      }
      for (const JsonValue& item : value.items()) {
        if (!item.is_object()) {
          return Status::InvalidArgument(
              "scenario json: event entry not an object");
        }
        ScenarioEvent event;
        bool saw_kind = false;
        bool saw_time = false;
        for (const auto& [ekey, evalue] : item.members()) {
          if (ekey == "kind") {
            if (!evalue.is_string() ||
                !ScenarioEventKindFromName(evalue.string_value(),
                                           &event.kind)) {
              return Status::InvalidArgument(
                  "scenario json: bad event kind");
            }
            saw_kind = true;
          } else if (ekey == "time") {
            if (!evalue.is_number()) {
              return Status::InvalidArgument("scenario json: bad event time");
            }
            event.time = evalue.number_value();
            saw_time = true;
          } else if (ekey == "worker") {
            if (!evalue.is_number()) {
              return Status::InvalidArgument(
                  "scenario json: bad event worker");
            }
            event.worker = static_cast<int>(evalue.number_value());
          } else if (ekey == "node") {
            if (!evalue.is_number()) {
              return Status::InvalidArgument("scenario json: bad event node");
            }
            event.node = static_cast<int>(evalue.number_value());
          } else if (ekey == "duration") {
            if (!evalue.is_number()) {
              return Status::InvalidArgument(
                  "scenario json: bad event duration");
            }
            event.duration = evalue.number_value();
          } else if (ekey == "factor") {
            if (!evalue.is_number()) {
              return Status::InvalidArgument(
                  "scenario json: bad event factor");
            }
            event.factor = evalue.number_value();
          } else {
            return Status::InvalidArgument(
                "scenario json: unknown event field: " + ekey);
          }
        }
        if (!saw_kind || !saw_time) {
          return Status::InvalidArgument(
              "scenario json: event missing kind or time");
        }
        spec.events.push_back(event);
      }
    } else {
      return Status::InvalidArgument("scenario json: unknown key: " + key);
    }
  }
  *out = std::move(spec);
  return Status::OK();
}

Status LoadScenario(const std::string& path, ScenarioSpec* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("scenario: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  size_t first = text.find_first_not_of(" \t\r\n");
  if (first != std::string::npos && text[first] == '{') {
    return ScenarioFromJson(text, out);
  }
  return ParseScenario(text, out);
}

Status ValidateScenario(const ScenarioSpec& spec, int num_workers,
                        const Topology& topology) {
  if (!IsNameToken(spec.name)) {
    return Status::InvalidArgument("scenario: bad name '" + spec.name + "'");
  }
  if (!(spec.expected_iteration_seconds > 0.0) ||
      !std::isfinite(spec.expected_iteration_seconds)) {
    return Status::InvalidArgument(
        "scenario: expected_iteration_seconds must be positive");
  }
  for (size_t i = 0; i < spec.events.size(); ++i) {
    const ScenarioEvent& e = spec.events[i];
    const std::string where =
        "scenario: event " + std::to_string(i) + " (" +
        ScenarioEventKindName(e.kind) + ")";
    if (!std::isfinite(e.time) || e.time < 0.0) {
      return Status::InvalidArgument(where + ": time must be >= 0");
    }
    if (!std::isfinite(e.duration) || e.duration < 0.0) {
      return Status::InvalidArgument(where + ": duration must be >= 0");
    }
    const bool has_worker = e.worker >= 0;
    const bool has_node = e.node >= 0;
    if (has_worker == has_node) {
      return Status::InvalidArgument(
          where + ": exactly one of worker/node must be set");
    }
    if (has_worker && e.worker >= num_workers) {
      return Status::InvalidArgument(where + ": worker " +
                                     std::to_string(e.worker) +
                                     " out of range");
    }
    if (has_node) {
      if (topology.flat()) {
        return Status::InvalidArgument(
            where + ": node-keyed event needs a non-flat topology");
      }
      if (e.node >= topology.num_nodes()) {
        return Status::InvalidArgument(where + ": node " +
                                       std::to_string(e.node) +
                                       " out of range");
      }
    }
    switch (e.kind) {
      case ScenarioEventKind::kDepart:
      case ScenarioEventKind::kHang:
      case ScenarioEventKind::kPartition:
        if (!(e.duration > 0.0)) {
          return Status::InvalidArgument(where +
                                         ": duration must be positive");
        }
        break;
      case ScenarioEventKind::kSlowdown:
        if (!(e.duration > 0.0)) {
          return Status::InvalidArgument(where +
                                         ": duration must be positive");
        }
        if (!std::isfinite(e.factor) || e.factor < 1.0) {
          return Status::InvalidArgument(where + ": factor must be >= 1");
        }
        break;
      case ScenarioEventKind::kArrive:
        if (!(e.time > 0.0)) {
          return Status::InvalidArgument(where + ": time must be positive");
        }
        break;
      case ScenarioEventKind::kCrash:
        break;
    }
  }
  return Status::OK();
}

ScenarioSpec MakePoissonChurnTrace(const PoissonChurnOptions& options) {
  PR_CHECK_GT(options.num_workers, 0);
  ScenarioSpec spec;
  spec.name = "poisson-churn";
  spec.seed = options.seed;
  Rng rng(options.seed ^ 0x70636875726eULL);  // "pchurn"
  // Workers already absent cannot depart again until they return.
  std::vector<double> busy_until(static_cast<size_t>(options.num_workers),
                                 0.0);
  double t = 0.0;
  while (true) {
    t += rng.Exponential(options.departures_per_second);
    if (t >= options.horizon_seconds) break;
    const int worker =
        static_cast<int>(rng.UniformInt(
            static_cast<uint64_t>(options.num_workers)));
    const double absence =
        rng.Exponential(1.0 / options.mean_absence_seconds);
    if (busy_until[static_cast<size_t>(worker)] > t) continue;
    ScenarioEvent e;
    e.kind = ScenarioEventKind::kDepart;
    e.time = t;
    e.worker = worker;
    e.duration = absence;
    busy_until[static_cast<size_t>(worker)] = t + absence;
    spec.events.push_back(e);
  }
  return spec;
}

ScenarioSpec MakeHeavyTailSlowdownTrace(
    const HeavyTailSlowdownOptions& options) {
  PR_CHECK_GT(options.num_workers, 0);
  PR_CHECK_GT(options.pareto_alpha, 0.0);
  ScenarioSpec spec;
  spec.name = "heavy-tail-slowdown";
  spec.seed = options.seed;
  Rng rng(options.seed ^ 0x736c6f77ULL);  // "slow"
  double t = 0.0;
  while (true) {
    t += rng.Exponential(options.events_per_second);
    if (t >= options.horizon_seconds) break;
    // Pareto(alpha, xm): xm * (1 - U)^(-1/alpha), the heavy-tailed straggler
    // magnitude distribution; clamped so one draw cannot stall a smoke run.
    const double u = rng.Uniform();
    double factor =
        options.min_factor * std::pow(1.0 - u, -1.0 / options.pareto_alpha);
    factor = std::min(factor, options.max_factor);
    ScenarioEvent e;
    e.kind = ScenarioEventKind::kSlowdown;
    e.time = t;
    e.worker = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(options.num_workers)));
    e.duration = options.window_seconds;
    e.factor = factor;
    spec.events.push_back(e);
  }
  return spec;
}

ScenarioSpec MakeRackChurnTrace(const Topology& topology,
                                const RackChurnOptions& options) {
  PR_CHECK(!topology.flat()) << "rack churn needs a non-flat topology";
  ScenarioSpec spec;
  spec.name = "rack-churn";
  spec.seed = options.seed;
  Rng rng(options.seed ^ 0x7261636bULL);  // "rack"
  const int num_nodes = topology.num_nodes();
  std::vector<double> busy_until(static_cast<size_t>(num_nodes), 0.0);
  double t = 0.0;
  while (true) {
    t += rng.Exponential(options.departures_per_second);
    if (t >= options.horizon_seconds) break;
    const int node =
        static_cast<int>(rng.UniformInt(static_cast<uint64_t>(num_nodes)));
    const double absence =
        rng.Exponential(1.0 / options.mean_absence_seconds);
    if (busy_until[static_cast<size_t>(node)] > t) continue;
    ScenarioEvent e;
    e.kind = ScenarioEventKind::kDepart;
    e.time = t;
    e.node = node;
    e.duration = absence;
    busy_until[static_cast<size_t>(node)] = t + absence;
    spec.events.push_back(e);
  }
  return spec;
}

ScenarioSpec MakeReferenceTrace(int num_workers, const Topology& topology,
                                int iterations) {
  PR_CHECK_GE(num_workers, 2);
  PR_CHECK_GE(iterations, 10);
  ScenarioSpec spec;
  spec.name = "reference";
  spec.seed = 7;
  const double step = spec.expected_iteration_seconds;
  const double horizon = iterations * step;
  // Three event kinds on a fixed schedule: a lone departure early, a heavy
  // straggler window mid-run, and a correlated rack-wide departure (the
  // whole last node when placement is known, else the last worker) late.
  ScenarioEvent depart;
  depart.kind = ScenarioEventKind::kDepart;
  depart.time = 0.2 * horizon;
  depart.worker = 1;
  depart.duration = 0.15 * horizon;
  spec.events.push_back(depart);

  ScenarioEvent slowdown;
  slowdown.kind = ScenarioEventKind::kSlowdown;
  slowdown.time = 0.45 * horizon;
  slowdown.worker = 0;
  slowdown.duration = 0.15 * horizon;
  slowdown.factor = 3.0;
  spec.events.push_back(slowdown);

  ScenarioEvent rack;
  rack.kind = ScenarioEventKind::kDepart;
  rack.time = 0.7 * horizon;
  rack.duration = 0.15 * horizon;
  if (!topology.flat()) {
    rack.node = topology.num_nodes() - 1;
  } else {
    rack.worker = num_workers - 1;
  }
  spec.events.push_back(rack);
  return spec;
}

std::vector<std::pair<std::string, double>> ScenarioMetricCounts(
    const ScenarioSpec& spec) {
  double departs = 0, arrives = 0, slowdowns = 0, crashes = 0, hangs = 0,
         partitions = 0;
  for (const ScenarioEvent& e : spec.events) {
    switch (e.kind) {
      case ScenarioEventKind::kDepart: departs += 1; break;
      case ScenarioEventKind::kArrive: arrives += 1; break;
      case ScenarioEventKind::kSlowdown: slowdowns += 1; break;
      case ScenarioEventKind::kCrash: crashes += 1; break;
      case ScenarioEventKind::kHang: hangs += 1; break;
      case ScenarioEventKind::kPartition: partitions += 1; break;
    }
  }
  return {
      {"scenario.events_total", static_cast<double>(spec.events.size())},
      {"scenario.departs", departs},
      {"scenario.arrives", arrives},
      {"scenario.slowdowns", slowdowns},
      {"scenario.crashes", crashes},
      {"scenario.hangs", hangs},
      {"scenario.partitions", partitions},
  };
}

Status CompileScenario(const ScenarioSpec& spec, int num_workers,
                       const Topology& topology, const FaultPlan& base,
                       CompiledScenario* out) {
  Status status = ValidateScenario(spec, num_workers, topology);
  if (!status.ok()) return status;
  CompiledScenario compiled;
  compiled.fault = base;
  const double eis = spec.expected_iteration_seconds;
  // Node-keyed events expand to every worker on the node — the correlated
  // rack-wide shapes — before compilation proper.
  for (const ScenarioEvent& authored : spec.events) {
    std::vector<int> targets;
    if (authored.worker >= 0) {
      targets.push_back(authored.worker);
    } else {
      for (int w : topology.nodes()[static_cast<size_t>(authored.node)]) {
        if (w < num_workers) targets.push_back(w);
      }
    }
    for (int worker : targets) {
      switch (authored.kind) {
        case ScenarioEventKind::kDepart: {
          ChurnWindow window;
          window.worker = worker;
          window.after_iterations = TimeToIteration(authored.time, eis);
          window.pause_seconds = authored.duration;
          window.time_seconds = authored.time;
          compiled.churn.push_back(window);
          break;
        }
        case ScenarioEventKind::kArrive: {
          // Absent from the start, joining at `time`.
          ChurnWindow window;
          window.worker = worker;
          window.after_iterations = 0;
          window.pause_seconds = authored.time;
          window.time_seconds = 0.0;
          compiled.churn.push_back(window);
          break;
        }
        case ScenarioEventKind::kSlowdown: {
          WorkerFaultEvent event;
          event.worker = worker;
          event.kind = WorkerFaultEvent::Kind::kSlowdown;
          event.after_iterations = TimeToIteration(authored.time, eis);
          event.slowdown_factor = authored.factor;
          event.slowdown_iterations = std::max(
              1, TimeToIteration(authored.duration, eis));
          compiled.fault.worker_events.push_back(event);
          break;
        }
        case ScenarioEventKind::kCrash: {
          WorkerFaultEvent event;
          event.worker = worker;
          event.kind = WorkerFaultEvent::Kind::kCrash;
          event.after_iterations = TimeToIteration(authored.time, eis);
          compiled.fault.worker_events.push_back(event);
          break;
        }
        case ScenarioEventKind::kHang: {
          WorkerFaultEvent event;
          event.worker = worker;
          event.kind = WorkerFaultEvent::Kind::kHang;
          event.after_iterations = TimeToIteration(authored.time, eis);
          event.hang_seconds = authored.duration;
          compiled.fault.worker_events.push_back(event);
          break;
        }
        case ScenarioEventKind::kPartition: {
          PartitionEvent event;
          event.worker = worker;
          event.start_seconds = authored.time;
          event.duration_seconds = authored.duration;
          compiled.fault.partition_events.push_back(event);
          break;
        }
      }
    }
  }
  std::sort(compiled.churn.begin(), compiled.churn.end(),
            [](const ChurnWindow& a, const ChurnWindow& b) {
              if (a.worker != b.worker) return a.worker < b.worker;
              return a.after_iterations < b.after_iterations;
            });
  std::sort(compiled.fault.partition_events.begin(),
            compiled.fault.partition_events.end(),
            [](const PartitionEvent& a, const PartitionEvent& b) {
              return a.start_seconds < b.start_seconds;
            });
  // Crash / hang / partition recovery needs the hardened protocol even when
  // the base plan was empty.
  if (!compiled.fault.worker_events.empty() ||
      compiled.fault.has_partitions()) {
    compiled.fault.force_fault_tolerant = true;
  }
  if (compiled.fault.seed == 0) compiled.fault.seed = spec.seed;
  compiled.counts = ScenarioMetricCounts(spec);
  *out = std::move(compiled);
  return Status::OK();
}

}  // namespace pr
