#include "scenario/scale_policy.h"

#include <algorithm>

#include "common/check.h"

namespace pr {

const char* ScalePolicyKindName(ScalePolicyKind kind) {
  switch (kind) {
    case ScalePolicyKind::kNone:
      return "none";
    case ScalePolicyKind::kThreshold:
      return "threshold";
    case ScalePolicyKind::kTrend:
      return "trend";
  }
  return "unknown";
}

bool ScalePolicyKindFromName(const std::string& name, ScalePolicyKind* out) {
  if (name == "none") *out = ScalePolicyKind::kNone;
  else if (name == "threshold") *out = ScalePolicyKind::kThreshold;
  else if (name == "trend") *out = ScalePolicyKind::kTrend;
  else return false;
  return true;
}

ScalePolicy::ScalePolicy(const ScalePolicyConfig& config, int num_workers)
    : config_(config), num_workers_(num_workers) {
  PR_CHECK_GT(num_workers_, 0);
  if (config_.max_workers <= 0) config_.max_workers = num_workers_;
  config_.max_workers = std::min(config_.max_workers, num_workers_);
  config_.min_workers = std::max(1, std::min(config_.min_workers,
                                             config_.max_workers));
  config_.trend_window = std::max(2, config_.trend_window);
}

int ScalePolicy::Clamp(int desired) const {
  return std::max(config_.min_workers,
                  std::min(config_.max_workers, desired));
}

int ScalePolicy::Decide(const ScaleSample& sample) {
  const int active = Clamp(sample.active_workers);
  switch (config_.kind) {
    case ScalePolicyKind::kNone:
      return active;
    case ScalePolicyKind::kThreshold: {
      if (sample.mean_idle_fraction > config_.idle_high) {
        return Clamp(active - 1);
      }
      if (sample.mean_idle_fraction < config_.idle_low) {
        return Clamp(active + 1);
      }
      return active;
    }
    case ScalePolicyKind::kTrend: {
      window_.push_back(sample);
      const size_t w = static_cast<size_t>(config_.trend_window);
      if (window_.size() > w) {
        window_.erase(window_.begin(),
                      window_.begin() + (window_.size() - w));
      }
      if (window_.size() < w) return active;
      // Least-squares slope of idle fraction over the window, in idle
      // units per sample (sample spacing is the policy interval, so a
      // per-sample slope is already cadence-normalized).
      const double n = static_cast<double>(window_.size());
      double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
      for (size_t i = 0; i < window_.size(); ++i) {
        const double x = static_cast<double>(i);
        const double y = window_[i].mean_idle_fraction;
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
      }
      const double denom = n * sxx - sx * sx;
      const double slope = denom != 0.0 ? (n * sxy - sx * sy) / denom : 0.0;
      const double mid = 0.5 * (config_.idle_low + config_.idle_high);
      const double latest = window_.back().mean_idle_fraction;
      // Rising idle above the midpoint: capacity is going to waste, shed a
      // worker before the threshold trips. Falling idle below the midpoint:
      // demand is returning, re-admit one.
      constexpr double kSlopeEpsilon = 1e-3;
      if (slope > kSlopeEpsilon && latest > mid) return Clamp(active - 1);
      if (slope < -kSlopeEpsilon && latest < mid) return Clamp(active + 1);
      // The threshold still backstops the trend at the extremes.
      if (latest > config_.idle_high) return Clamp(active - 1);
      if (latest < config_.idle_low) return Clamp(active + 1);
      return active;
    }
  }
  return active;
}

ScaleDirector::ScaleDirector(int num_workers)
    : num_workers_(num_workers),
      paused_(new std::atomic<bool>[static_cast<size_t>(num_workers)]) {
  PR_CHECK_GT(num_workers_, 0);
  for (int w = 0; w < num_workers_; ++w) {
    paused_[static_cast<size_t>(w)].store(false, std::memory_order_relaxed);
  }
}

int ScaleDirector::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  int live = 0;
  for (int w = 0; w < num_workers_; ++w) {
    if (!paused_[static_cast<size_t>(w)].load(std::memory_order_relaxed)) {
      ++live;
    }
  }
  return live;
}

int ScaleDirector::SetTarget(int target) {
  target = std::max(1, std::min(target, num_workers_));
  std::lock_guard<std::mutex> lock(mu_);
  int live = 0;
  for (int w = 0; w < num_workers_; ++w) {
    if (!paused_[static_cast<size_t>(w)].load(std::memory_order_relaxed)) {
      ++live;
    }
  }
  int delta = 0;
  // Shed from the top of the id range, readmit from the bottom of the
  // paused range: the active set stays a prefix.
  for (int w = num_workers_ - 1; w >= 0 && live > target; --w) {
    std::atomic<bool>& p = paused_[static_cast<size_t>(w)];
    if (!p.load(std::memory_order_relaxed)) {
      p.store(true, std::memory_order_release);
      --live;
      --delta;
    }
  }
  for (int w = 0; w < num_workers_ && live < target; ++w) {
    std::atomic<bool>& p = paused_[static_cast<size_t>(w)];
    if (p.load(std::memory_order_relaxed)) {
      p.store(false, std::memory_order_release);
      ++live;
      ++delta;
    }
  }
  return delta;
}

}  // namespace pr
