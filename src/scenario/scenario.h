#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "fault/fault_plan.h"
#include "topo/topology.h"

namespace pr {

/// \brief One timed churn/fault event in a scenario trace.
///
/// Events are expressed in *scenario time* (seconds from run start). The
/// compiler maps scenario time onto the engines' native clocks: virtual
/// seconds in the simulator, iteration indices (via
/// `ScenarioSpec::expected_iteration_seconds`) for iteration-keyed faults in
/// the threaded engine, and wall-clock offsets for the threaded partition
/// scheduler. Events target either a single `worker`, or — for the
/// correlated rack-wide shapes the production traces show — a whole
/// topology `node` (every worker placed on that node receives the event).
enum class ScenarioEventKind {
  kDepart = 0,    ///< worker leaves for `duration` seconds, then rejoins
  kArrive = 1,    ///< worker is absent from run start and joins at `time`
  kSlowdown = 2,  ///< compute stretched by `factor` for `duration` seconds
  kCrash = 3,     ///< worker process dies at `time` (fault-tolerant path)
  kHang = 4,      ///< worker stops mid-protocol at `time` (lease eviction)
  kPartition = 5  ///< network severed for `duration` seconds
};

struct ScenarioEvent {
  ScenarioEventKind kind = ScenarioEventKind::kDepart;
  double time = 0.0;   ///< scenario seconds from run start; >= 0
  int worker = -1;     ///< target worker id, or -1 when `node` targets a rack
  int node = -1;       ///< topology node id for correlated events, or -1
  double duration = 0.0;  ///< absence / window length in scenario seconds
  double factor = 1.0;    ///< slowdown multiplier (> 1 stretches compute)
};

/// \brief A deterministic churn trace: named, seeded, and replayable.
///
/// `expected_iteration_seconds` is the scale that converts scenario time
/// into iteration indices for iteration-keyed fault injection; it should
/// approximate one training step's duration under the run's delay model so
/// both engines hit the same iterations.
struct ScenarioSpec {
  std::string name = "scenario";
  uint64_t seed = 1;
  double expected_iteration_seconds = 0.01;
  std::vector<ScenarioEvent> events;

  bool enabled() const { return !events.empty(); }
};

/// Event-kind token used by both dialects ("depart", "crash", ...).
const char* ScenarioEventKindName(ScenarioEventKind kind);
bool ScenarioEventKindFromName(const std::string& name,
                               ScenarioEventKind* out);

/// Text dialect: a `prtrace 1` header followed by key-value lines and one
/// `event <kind> time <t> [worker <w>] [node <n>] [duration <d>]
/// [factor <f>]` line per event. Same conventions as the `prconfig` /
/// `prtopo` dialects: '#' comments, blank lines skipped, unknown keys
/// rejected as version skew. Serialize/Parse round-trips byte-identically.
std::string SerializeScenario(const ScenarioSpec& spec);
Status ParseScenario(const std::string& text, ScenarioSpec* out);

/// JSON dialect, derived mechanically from the text dialect:
/// {"prtrace": 1, "name": "...", "seed": 1, "expected_iteration_seconds": x,
///  "events": [{"kind": "depart", "time": 0.5, "worker": 2, ...}, ...]}.
std::string ScenarioToJson(const ScenarioSpec& spec);
Status ScenarioFromJson(const std::string& json, ScenarioSpec* out);

/// Loads either dialect from a file, sniffing JSON by a leading '{'.
Status LoadScenario(const std::string& path, ScenarioSpec* out);

/// Structural validation against a concrete run: event targets must resolve
/// (worker in [0, num_workers), node in [0, topology.num_nodes()) with a
/// non-flat topology), times must be finite and non-negative, durations
/// non-negative, slowdown factors >= 1.
Status ValidateScenario(const ScenarioSpec& spec, int num_workers,
                        const Topology& topology);

// ---------------------------------------------------------------------------
// Synthetic Tencent-like generators. All are pure functions of their
// options: same options, same trace, byte-for-byte.
// ---------------------------------------------------------------------------

/// Poisson churn: departures arrive as a Poisson process of rate
/// `departures_per_second` over [0, horizon); each departed worker stays
/// away for an exponential absence of mean `mean_absence_seconds`.
struct PoissonChurnOptions {
  int num_workers = 8;
  double horizon_seconds = 10.0;
  double departures_per_second = 0.5;
  double mean_absence_seconds = 1.0;
  uint64_t seed = 1;
};
ScenarioSpec MakePoissonChurnTrace(const PoissonChurnOptions& options);

/// Heavy-tailed slowdowns: slowdown windows arrive Poisson at
/// `events_per_second`; each window's stretch factor is Pareto-distributed
/// (tail index `pareto_alpha`, scale `min_factor`), matching the
/// straggler-duration tails in the paper's production measurements.
struct HeavyTailSlowdownOptions {
  int num_workers = 8;
  double horizon_seconds = 10.0;
  double events_per_second = 1.0;
  double pareto_alpha = 1.5;
  double min_factor = 1.5;
  double max_factor = 32.0;  ///< clamp so one draw cannot stall a whole run
  double window_seconds = 0.5;
  uint64_t seed = 1;
};
ScenarioSpec MakeHeavyTailSlowdownTrace(const HeavyTailSlowdownOptions& options);

/// Correlated rack-wide departures: whole topology nodes leave together
/// (eviction of a machine takes all its workers at once). Node picks and
/// departure times are Poisson at `departures_per_second`; each outage
/// lasts an exponential absence of mean `mean_absence_seconds`.
struct RackChurnOptions {
  double horizon_seconds = 10.0;
  double departures_per_second = 0.2;
  double mean_absence_seconds = 1.0;
  uint64_t seed = 1;
};
ScenarioSpec MakeRackChurnTrace(const Topology& topology,
                                const RackChurnOptions& options);

/// The CI reference trace: a fixed, hand-written schedule exercising >= 3
/// event kinds — a single-worker departure, a heavy slowdown window, and a
/// correlated departure of topology node `rack_node` (every worker on it) —
/// sized for a short smoke run of `iterations` steps per worker.
ScenarioSpec MakeReferenceTrace(int num_workers, const Topology& topology,
                                int iterations);

// ---------------------------------------------------------------------------
// Compilation: a scenario becomes engine-native event streams.
// ---------------------------------------------------------------------------

/// One elastic absence window, engine-agnostic: the worker pauses after
/// `after_iterations` local steps and stays away `pause_seconds`. The
/// threaded engine converts these to `ThreadedChurnEvent`s; the simulator
/// converts them to time-keyed leave/rejoin pairs.
struct ChurnWindow {
  int worker = -1;
  int after_iterations = 0;
  double pause_seconds = 0.0;
  double time_seconds = 0.0;  ///< original scenario time, for virtual clocks
};

/// A compiled scenario: everything the engines consume.
///
/// - `fault` carries iteration-keyed crash/hang/slowdown events and timed
///   partition windows merged *into* the run's existing fault plan.
/// - `churn` carries depart/arrive absence windows.
/// - `counts` are the scenario.* metric values both engines register, in a
///   fixed order, so cross-engine metric-name parity is structural.
struct CompiledScenario {
  FaultPlan fault;
  std::vector<ChurnWindow> churn;
  std::vector<std::pair<std::string, double>> counts;
};

/// Compiles `spec` against a run shape. `base` is the run's existing fault
/// plan; compiled events are merged into a copy (the scenario never erases
/// hand-written faults). Fails if ValidateScenario fails or if a node-keyed
/// event is used with a flat topology.
Status CompileScenario(const ScenarioSpec& spec, int num_workers,
                       const Topology& topology, const FaultPlan& base,
                       CompiledScenario* out);

/// The scenario.* metric names and their compiled values for `spec`
/// (events_total plus one per-kind counter). Engines register these
/// eagerly — including zeros — so both engines always expose the same
/// scenario.* name set.
std::vector<std::pair<std::string, double>> ScenarioMetricCounts(
    const ScenarioSpec& spec);

}  // namespace pr
