#include <vector>

#include "comm/collectives.h"
#include "common/check.h"
#include "runtime/threaded_strategies.h"
#include "runtime/worker_runtime.h"

namespace pr {
namespace {

/// Classic all-reduce on real threads: one global ring collective per
/// iteration is the barrier — nobody advances until everyone joined, so
/// every worker runs at the straggler's pace.
class ThreadedAllReduce : public ThreadedStrategy {
 public:
  explicit ThreadedAllReduce(const StrategyOptions& options) {
    PR_CHECK(options.kind == StrategyKind::kAllReduce);
  }

  std::string Name() const override {
    return StrategyKindName(StrategyKind::kAllReduce);
  }

  void RunWorker(WorkerContext* ctx) override {
    const ThreadedRunOptions& run = ctx->run();
    Endpoint* ep = ctx->endpoint();
    MutableSlice params = ctx->params();
    std::vector<float> grad;
    std::vector<NodeId> all;
    for (int i = 0; i < run.num_workers; ++i) all.push_back(i);

    for (size_t k = 1; k <= run.iterations_per_worker; ++k) {
      ctx->ComputeGradient(params.data(), &grad);
      // The ring is the barrier: it averages the gradients of all N
      // workers, and nobody's step happens until everyone contributed.
      const double comm_begin = ctx->Now();
      ctx->trace()->Record(comm_begin, TraceEventKind::kReduceStart,
                           ctx->worker(), static_cast<int64_t>(k));
      PR_CHECK(GroupAverageAllReduce(ep, all,
                                     static_cast<size_t>(ctx->worker()),
                                     /*tag=*/k, grad.data(), grad.size())
                   .ok());
      ctx->RecordComm(comm_begin, ctx->Now());
      ctx->trace()->Record(ctx->Now(), TraceEventKind::kReduceEnd,
                           ctx->worker(), static_cast<int64_t>(k));
      ctx->sgd()->Step(grad.data(), params.data(), params.size());
    }
    ctx->MarkFinished();
    // All workers execute the same count of global reduces; worker 0 records
    // it (reads happen after the join, so this is not a race).
    if (ctx->worker() == 0) global_reduces_ = run.iterations_per_worker;
  }

  void FillResult(ThreadedRunResult* result) const override {
    result->group_reduces = global_reduces_;
  }

 private:
  uint64_t global_reduces_ = 0;
};

}  // namespace

std::unique_ptr<ThreadedStrategy> MakeThreadedAllReduce(
    const StrategyOptions& options) {
  return std::make_unique<ThreadedAllReduce>(options);
}

}  // namespace pr
