#include <vector>

#include "ckpt/manifest.h"
#include "comm/collectives.h"
#include "common/check.h"
#include "runtime/threaded_strategies.h"
#include "runtime/worker_runtime.h"

namespace pr {
namespace {

/// Classic all-reduce on real threads: one global ring collective per
/// iteration is the barrier — nobody advances until everyone joined, so
/// every worker runs at the straggler's pace.
///
/// Checkpointing exploits the barrier: after the step at iteration k every
/// replica (and its optimizer velocity) is bitwise identical, so worker 0
/// alone cuts one shard and a manifest whose entries all point at it.
class ThreadedAllReduce : public ThreadedStrategy {
 public:
  explicit ThreadedAllReduce(const StrategyOptions& options) {
    PR_CHECK(options.kind == StrategyKind::kAllReduce);
  }

  std::string Name() const override {
    return StrategyKindName(StrategyKind::kAllReduce);
  }

  void RunWorker(WorkerContext* ctx) override {
    const ThreadedRunOptions& run = ctx->run();
    Endpoint* ep = ctx->endpoint();
    MutableSlice params = ctx->params();
    std::vector<float> grad;
    std::vector<NodeId> all;
    for (int i = 0; i < run.num_workers; ++i) all.push_back(i);

    auto maybe_checkpoint = [&](size_t k) {
      const CheckpointConfig& ckpt = run.ckpt;
      if (!ckpt.enabled() || ckpt.every_iterations == 0) return;
      if (ctx->worker() != 0) return;
      if (k % ckpt.every_iterations != 0 || k >= run.iterations_per_worker) {
        return;
      }
      const int64_t epoch = static_cast<int64_t>(k / ckpt.every_iterations);
      if (!ctx->SaveCkptShard(epoch).ok()) return;
      RunManifest m;
      m.engine = "threaded";
      m.strategy = Name();
      m.num_workers = run.num_workers;
      m.num_params = ctx->num_params();
      m.seed = run.seed;
      m.epoch = static_cast<uint64_t>(epoch);
      m.updates_done = k;
      m.saved_at_seconds = ctx->Now();
      for (int w = 0; w < run.num_workers; ++w) {
        ManifestWorker mw;
        mw.worker = w;
        mw.iteration = static_cast<int64_t>(k);
        mw.completed = k;
        // Post-barrier the replicas are identical: every entry shares
        // worker 0's shard.
        mw.shard_file = ShardFileName(static_cast<uint64_t>(epoch), 0);
        m.workers.push_back(mw);
      }
      if (SaveManifest(ckpt.dir, m).ok()) {
        ctx->metrics()->GetCounter("ckpt.manifests_written")->Increment();
        ctx->trace()->Record(ctx->Now(), TraceEventKind::kCkptSaved,
                             ctx->worker(), epoch);
      }
    };

    // Resumed run: the restored `completed` count is shared by all workers
    // (the cut was at a barrier), so the loop below continues with globally
    // unique reduce tags.
    if (ctx->start_iteration() >= run.iterations_per_worker) {
      ctx->MarkFinished();
      return;
    }
    for (size_t k = ctx->start_iteration() + 1; k <= run.iterations_per_worker;
         ++k) {
      ctx->ComputeGradient(params.data(), &grad);
      // The ring is the barrier: it averages the gradients of all N
      // workers, and nobody's step happens until everyone contributed.
      const double comm_begin = ctx->Now();
      ctx->trace()->Record(comm_begin, TraceEventKind::kReduceStart,
                           ctx->worker(), static_cast<int64_t>(k));
      // The collective only fails when the fabric was shut down under us
      // (hard abort); unwind instead of crashing the process.
      if (!GroupAverageAllReduce(ep, all, static_cast<size_t>(ctx->worker()),
                                 /*tag=*/k, grad.data(), grad.size(),
                                 ctx->compressor())
               .ok()) {
        return;
      }
      ctx->RecordComm(comm_begin, ctx->Now());
      ctx->trace()->Record(ctx->Now(), TraceEventKind::kReduceEnd,
                           ctx->worker(), static_cast<int64_t>(k));
      ctx->sgd()->Step(grad.data(), params.data(), params.size());
      maybe_checkpoint(k);
    }
    ctx->MarkFinished();
    // All workers execute the same count of global reduces; worker 0 records
    // it (reads happen after the join, so this is not a race).
    if (ctx->worker() == 0) {
      global_reduces_ = run.iterations_per_worker - ctx->start_iteration();
    }
  }

  void FillResult(ThreadedRunResult* result) const override {
    result->group_reduces = global_reduces_;
  }

 private:
  uint64_t global_reduces_ = 0;
};

}  // namespace

std::unique_ptr<ThreadedStrategy> MakeThreadedAllReduce(
    const StrategyOptions& options) {
  return std::make_unique<ThreadedAllReduce>(options);
}

}  // namespace pr
