#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/manifest.h"
#include "comm/transport.h"
#include "common/rng.h"
#include "compress/compressor.h"
#include "fault/faulty_transport.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "models/model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/sgd.h"
#include "runtime/param_store.h"
#include "runtime/threaded_runtime.h"
#include "scenario/scale_policy.h"
#include "scenario/scenario.h"
#include "sim/timeline.h"
#include "strategies/strategy.h"
#include "tensor/tensor.h"

namespace pr {

class ThreadedStrategy;
class WorkerRuntime;

/// \brief A worker thread's view of the runtime: its endpoint, replica,
/// data shard, optimizer, and RNG, plus helpers that fold heterogeneity
/// delay injection, metrics accounting, and timeline recording into the
/// local-compute step.
///
/// One instance per worker thread, owned by the WorkerRuntime; never shared
/// between threads. Each context owns its MetricsShard, so its counters are
/// updated without cross-thread contention.
class WorkerContext {
 public:
  int worker() const { return worker_; }
  int num_workers() const;
  /// The service thread's transport node id (== num_workers).
  NodeId service_node() const;

  const ThreadedRunOptions& run() const;
  const StrategyOptions& strategy_options() const;
  const Model& model() const;
  size_t num_params() const;

  Endpoint* endpoint() { return &endpoint_; }
  /// This worker's gradient compressor (error-feedback residual included),
  /// or null when the run's strategy.compression is none. Strategies pass it
  /// to the group collectives and use it directly on point-to-point bulk
  /// sends; one instance per worker keeps the residual stream well-defined.
  Compressor* compressor() { return compressor_.get(); }
  /// This worker's model replica: a writable view into the runtime's shared
  /// parameter arena (all replicas start from the same initialization).
  MutableSlice params();
  /// This worker's optimizer (momentum state stays local, per the paper).
  Sgd* sgd() { return &sgd_; }
  /// Per-worker RNG (deterministic in the run seed and worker id).
  Rng* rng() { return &rng_; }

  /// This worker thread's metrics shard (worker.<i>.* instruments live
  /// here; strategies may add their own).
  MetricsShard* metrics() { return metrics_; }
  /// The run's shared trace recorder; null-safe to pass around but always
  /// non-null (a zero-capacity recorder drops everything).
  TraceRecorder* trace();

  /// Wall-clock seconds since the run started.
  double Now() const;

  /// One local computation: samples the next mini-batch from this worker's
  /// shard, computes the gradient at `at` into `grad` (resized to
  /// NumParams()), then injects this worker's configured heterogeneity
  /// delay. Records the whole thing as one compute interval and bumps the
  /// worker's iteration counter. Returns the batch loss.
  float ComputeGradient(const float* at, std::vector<float>* grad);

  /// Activity accounting. Seconds always accumulate into the worker.<i>.*
  /// counters; the interval is additionally kept for the run timeline when
  /// run().record_timeline is set.
  void RecordCompute(double begin, double end);
  void RecordComm(double begin, double end);
  void RecordIdle(double begin, double end);

  /// Stamps this worker's finish time. Call once, when the final local
  /// iteration completes (before any trailing protocol messages).
  void MarkFinished();

  /// Local iterations completed so far (crashed workers stop short of the
  /// run budget; the run result reports the true count). Starts at the
  /// restored count on a resumed run.
  size_t completed_iterations() const { return completed_iterations_; }

  /// Local iterations already completed before this run started (non-zero
  /// only on a resumed run). Strategies begin their loop at
  /// start_iteration() + 1.
  size_t start_iteration() const { return start_iteration_; }
  /// Protocol iteration counter restored from the manifest (P-Reduce's
  /// group-advanced counter, which can exceed the local count under
  /// dynamic weights). 0 on a fresh run.
  int64_t resume_iteration() const { return resume_iteration_; }

  /// Writes this worker's checkpoint shard (replica parameters + optimizer
  /// velocity) for `epoch` into run().ckpt.dir, crash-safely, and observes
  /// the write latency under ckpt.save_seconds.
  Status SaveCkptShard(int64_t epoch);

  /// Graceful-degradation gate: true while a sustained partition demands a
  /// checkpoint cut at every iteration boundary (the scenario thread sets
  /// it; the service's first completed manifest clears it).
  bool forced_ckpt() const;
  /// The run's autoscaling pause board, or null when no scale policy is
  /// configured. Workers poll it at iteration boundaries.
  ScaleDirector* scale_director();

 private:
  friend class WorkerRuntime;
  WorkerContext(WorkerRuntime* runtime, int worker);

  void Record(WorkerActivity activity, double begin, double end);

  WorkerRuntime* runtime_;
  int worker_;
  Endpoint endpoint_;
  std::unique_ptr<Compressor> compressor_;  // null when compression is none
  Sgd sgd_;
  Rng rng_;
  double delay_seconds_;
  size_t completed_iterations_ = 0;
  size_t start_iteration_ = 0;
  int64_t resume_iteration_ = 0;
  /// This worker's scheduled slowdown faults (copied from the run's plan).
  std::vector<WorkerFaultEvent> slowdown_events_;
  Tensor batch_x_;
  std::vector<int> batch_y_;
  std::vector<TimelineInterval> intervals_;

  MetricsShard* metrics_;  // owned by the runtime's registry
  Counter* iterations_counter_;
  Counter* compute_seconds_counter_;
  Counter* comm_seconds_counter_;
  Counter* idle_seconds_counter_;
};

/// \brief The service thread's view of the runtime (controller / server
/// strategies). Owns the endpoint at node `num_workers` and its own
/// metrics shard.
class ServiceContext {
 public:
  const ThreadedRunOptions& run() const;
  const StrategyOptions& strategy_options() const;
  const Model& model() const;
  size_t num_params() const;
  Endpoint* endpoint() { return &endpoint_; }
  /// The service's compressor (for centralized model broadcasts/replies),
  /// or null when compression is none. Its error-feedback residual tracks
  /// the server-side model stream, separate from every worker's.
  Compressor* compressor() { return compressor_.get(); }
  /// The shared initial parameter vector every replica starts from
  /// (centralized strategies seed their global model with it).
  const std::vector<float>& init_params() const;

  /// The service thread's metrics shard (controller.* / ps.* instruments).
  MetricsShard* metrics() { return metrics_; }
  /// The run's shared trace recorder.
  TraceRecorder* trace();
  /// Wall-clock seconds since the run started.
  double Now() const;

  /// The fault-injecting transport decorator, when the run's plan created
  /// one (message faults or controller outages); null otherwise. The
  /// P-Reduce service uses it to sever its own node while the controller
  /// is "down".
  FaultyTransport* faulty();
  /// The manifest this run resumed from, or null on a fresh run.
  const RunManifest* resume() const;

 private:
  friend class WorkerRuntime;
  explicit ServiceContext(WorkerRuntime* runtime);

  WorkerRuntime* runtime_;
  Endpoint endpoint_;
  std::unique_ptr<Compressor> compressor_;  // null when compression is none
  MetricsShard* metrics_;  // owned by the runtime's registry
};

/// \brief The generic threaded execution engine.
///
/// Owns the full lifecycle of a threaded training run: dataset generation
/// and sharding, model construction (through the models catalog), replica
/// initialization, transport wiring (N worker nodes plus one service node),
/// spawning/joining the worker and service threads, the observability
/// plumbing (metrics registry + trace recorder), and the run-level
/// accounting (wall time, per-worker finish times, replica spread, merged
/// timeline, final evaluation). Strategy-specific behaviour is delegated
/// entirely to the ThreadedStrategy passed to Run().
class WorkerRuntime {
 public:
  /// `resume` (optional) is a checkpoint manifest to restart from;
  /// `resume_dir` is the directory holding its worker shards. The manifest
  /// is copied, replicas/optimizer state are seeded from the shards, and
  /// each worker's batch sampler is fast-forwarded past the restored
  /// iterations so a resumed run draws the batches the original would have.
  WorkerRuntime(const StrategyOptions& strategy_options,
                const ThreadedRunOptions& options,
                const RunManifest* resume = nullptr,
                const std::string& resume_dir = "");

  /// Routes all traffic through `fabric` (a SocketTransport hosting this
  /// process's nodes, or a SocketFabric for in-process socket runs) instead
  /// of the built-in in-proc transport. `fabric` must expose at least
  /// num_workers + 1 nodes and outlive the runtime; Run() still calls its
  /// Shutdown(). When the run's fault plan injects message faults, the
  /// FaultyTransport decorator is rebuilt over `fabric`, so the chaos
  /// suites drive real sockets unchanged. Call before Run().
  void UseExternalFabric(Transport* fabric);

  /// Restricts Run() to a slice of the world: spawn threads only for
  /// `workers`, and the service thread only when `run_service` is set.
  /// The multi-process launcher gives each process its own slice; result
  /// accounting (iterations, finish times, replica averaging/spread, final
  /// evaluation) covers only the local workers — a service-only process
  /// skips evaluation entirely — and the launcher merges the per-process
  /// reports. Call before Run().
  void RestrictTo(std::vector<int> workers, bool run_service);

  /// Executes the run. Blocks until every thread has joined.
  ThreadedRunResult Run(ThreadedStrategy* strategy);

 private:
  friend class WorkerContext;
  friend class ServiceContext;

  double NowSeconds() const;
  void ApplyResume(const RunManifest& manifest, const std::string& dir);

  StrategyOptions strategy_options_;
  ThreadedRunOptions options_;
  TrainTestSplit split_;
  std::unique_ptr<Model> model_;
  std::vector<float> init_;
  /// All worker replicas live in one aligned arena (built once the model's
  /// parameter count is known).
  std::unique_ptr<ParamStore> replicas_;
  std::vector<std::unique_ptr<BatchSampler>> samplers_;
  std::vector<uint64_t> worker_seeds_;
  InProcTransport transport_;
  /// Present when the run's fault plan injects message faults; endpoints
  /// then talk through it instead of the raw in-proc fabric.
  std::unique_ptr<FaultyTransport> faulty_;
  Transport* fabric_;  ///< faulty_ when present, else the raw fabric
  /// Non-null after UseExternalFabric (not owned).
  Transport* external_fabric_ = nullptr;
  /// Set by RestrictTo: the workers this process runs, and whether it hosts
  /// the service thread. Unrestricted runs cover everything.
  std::vector<int> local_workers_;
  bool run_service_ = true;
  bool restricted_ = false;
  MetricsRegistry registry_;
  TraceRecorder trace_;
  std::chrono::steady_clock::time_point start_;
  std::vector<double> finish_seconds_;

  /// Scenario machinery (empty/null unless the run carries a scenario or a
  /// scale policy). The compiled plan is merged into options_.fault /
  /// options_.churn at construction; Run() drives the partition schedule
  /// and the autoscaler from a wall-clock scenario thread.
  std::unique_ptr<ScaleDirector> scale_director_;
  std::atomic<bool> force_ckpt_{false};

  /// Resume state (empty on a fresh run): the manifest this run restarted
  /// from, plus the per-worker optimizer velocity and counters read from
  /// its shards.
  std::optional<RunManifest> resume_;
  std::vector<std::vector<float>> resume_velocity_;
  std::vector<size_t> resume_completed_;
  std::vector<int64_t> resume_iteration_;
};

}  // namespace pr
