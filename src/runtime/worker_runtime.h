#pragma once

#include <chrono>
#include <memory>
#include <vector>

#include "comm/transport.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "models/model.h"
#include "optim/sgd.h"
#include "runtime/threaded_runtime.h"
#include "sim/timeline.h"
#include "strategies/strategy.h"
#include "tensor/tensor.h"

namespace pr {

class ThreadedStrategy;
class WorkerRuntime;

/// \brief A worker thread's view of the runtime: its endpoint, replica,
/// data shard, optimizer, and RNG, plus helpers that fold heterogeneity
/// delay injection and timeline recording into the local-compute step.
///
/// One instance per worker thread, owned by the WorkerRuntime; never shared
/// between threads.
class WorkerContext {
 public:
  int worker() const { return worker_; }
  int num_workers() const;
  /// The service thread's transport node id (== num_workers).
  NodeId service_node() const;

  const ThreadedRunOptions& run() const;
  const StrategyOptions& strategy_options() const;
  const Model& model() const;
  size_t num_params() const;

  Endpoint* endpoint() { return &endpoint_; }
  /// This worker's model replica (shared initialization across workers).
  std::vector<float>* params();
  /// This worker's optimizer (momentum state stays local, per the paper).
  Sgd* sgd() { return &sgd_; }
  /// Per-worker RNG (deterministic in the run seed and worker id).
  Rng* rng() { return &rng_; }

  /// Wall-clock seconds since the run started.
  double Now() const;

  /// One local computation: samples the next mini-batch from this worker's
  /// shard, computes the gradient at `at` into `grad` (resized to
  /// NumParams()), then injects this worker's configured heterogeneity
  /// delay. Records the whole thing as one compute interval. Returns the
  /// batch loss.
  float ComputeGradient(const float* at, std::vector<float>* grad);

  /// Timeline recording; no-ops unless run().record_timeline is set.
  void RecordCompute(double begin, double end);
  void RecordComm(double begin, double end);
  void RecordIdle(double begin, double end);

  /// Stamps this worker's finish time. Call once, when the final local
  /// iteration completes (before any trailing protocol messages).
  void MarkFinished();

 private:
  friend class WorkerRuntime;
  WorkerContext(WorkerRuntime* runtime, int worker);

  void Record(WorkerActivity activity, double begin, double end);

  WorkerRuntime* runtime_;
  int worker_;
  Endpoint endpoint_;
  Sgd sgd_;
  Rng rng_;
  double delay_seconds_;
  Tensor batch_x_;
  std::vector<int> batch_y_;
  std::vector<TimelineInterval> intervals_;
};

/// \brief The service thread's view of the runtime (controller / server
/// strategies). Owns the endpoint at node `num_workers`.
class ServiceContext {
 public:
  const ThreadedRunOptions& run() const;
  const StrategyOptions& strategy_options() const;
  const Model& model() const;
  size_t num_params() const;
  Endpoint* endpoint() { return &endpoint_; }
  /// The shared initial parameter vector every replica starts from
  /// (centralized strategies seed their global model with it).
  const std::vector<float>& init_params() const;

 private:
  friend class WorkerRuntime;
  explicit ServiceContext(WorkerRuntime* runtime);

  WorkerRuntime* runtime_;
  Endpoint endpoint_;
};

/// \brief The generic threaded execution engine.
///
/// Owns the full lifecycle of a threaded training run: dataset generation
/// and sharding, model construction (via the Model interface — MLP or
/// ConvNet), replica initialization, transport wiring (N worker nodes plus
/// one service node), spawning/joining the worker and service threads, and
/// the run-level accounting (wall time, per-worker finish times, replica
/// spread, merged timeline, final evaluation). Strategy-specific behaviour
/// is delegated entirely to the ThreadedStrategy passed to Run().
class WorkerRuntime {
 public:
  WorkerRuntime(const StrategyOptions& strategy_options,
                const ThreadedRunOptions& options);

  /// Executes the run. Blocks until every thread has joined.
  ThreadedRunResult Run(ThreadedStrategy* strategy);

 private:
  friend class WorkerContext;
  friend class ServiceContext;

  double NowSeconds() const;

  StrategyOptions strategy_options_;
  ThreadedRunOptions options_;
  TrainTestSplit split_;
  std::unique_ptr<Model> model_;
  std::vector<float> init_;
  std::vector<std::vector<float>> replicas_;
  std::vector<std::unique_ptr<BatchSampler>> samplers_;
  std::vector<uint64_t> worker_seeds_;
  InProcTransport transport_;
  std::chrono::steady_clock::time_point start_;
  std::vector<double> finish_seconds_;
};

}  // namespace pr
