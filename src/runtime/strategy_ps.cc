#include <algorithm>
#include <cstring>
#include <optional>
#include <vector>

#include "common/check.h"
#include "optim/sgd.h"
#include "runtime/threaded_strategies.h"
#include "runtime/worker_runtime.h"
#include "tensor/ops.h"

namespace pr {
namespace {

// Control-plane message kinds for the PS protocol.
constexpr int kKindPull = 11;
constexpr int kKindModel = 12;  // ints: [version]
constexpr int kKindPush = 13;   // ints: [pulled_version, is_last]

/// The parameter-server family on real threads — the paper's §2.2
/// centralized baselines. One server loop covers all four consistency
/// protocols; the worker body (pull -> compute -> push) is identical across
/// them, so heterogeneity comparisons isolate the server policy:
///  - BSP:  one update per N pushes; pulls racing into the next round park.
///  - ASP:  every push applies immediately, 1/N-scaled.
///  - HETE: ASP plus the staleness-aware learning rate (gradients staler
///          than asynchrony implies get damped by ExcessStalenessLrScale).
///  - BK:   synchronous with backup workers: a round closes after the first
///          (N - b) fresh gradients; stale pushes are dropped (wasted).
class ThreadedPs : public ThreadedStrategy {
 public:
  explicit ThreadedPs(const StrategyOptions& options) : options_(options) {
    PR_CHECK(options.kind == StrategyKind::kPsBsp ||
             options.kind == StrategyKind::kPsAsp ||
             options.kind == StrategyKind::kPsHete ||
             options.kind == StrategyKind::kPsBackup);
  }

  std::string Name() const override { return StrategyKindName(options_.kind); }
  bool has_service() const override { return true; }

  void RunService(ServiceContext* ctx) override;
  void RunWorker(WorkerContext* ctx) override;

  const std::vector<float>* eval_params() const override { return &global_; }

  void FillResult(ThreadedRunResult* result) const override {
    result->group_reduces = versions_;
    result->versions = versions_;
  }

 private:
  StrategyOptions options_;
  // Service-thread state; read only after every thread joined. Staleness
  // and drop accounting live in the service shard's ps.* instruments.
  std::vector<float> global_;
  uint64_t versions_ = 0;
};

void ThreadedPs::RunService(ServiceContext* ctx) {
  const StrategyKind kind = options_.kind;
  const int n = ctx->run().num_workers;
  Endpoint* ep = ctx->endpoint();
  const size_t num_params = ctx->num_params();

  int accept_count = n;
  if (kind == StrategyKind::kPsBackup) {
    PR_CHECK_GE(options_.backup_workers, 0);
    PR_CHECK_LT(options_.backup_workers, n);
    accept_count = n - options_.backup_workers;
  }

  global_ = ctx->init_params();
  Sgd opt(num_params, ctx->run().sgd);
  int active = n;

  MetricsShard* metrics = ctx->metrics();
  Histogram* staleness_hist =
      metrics->GetHistogram("ps.push_staleness", StalenessBuckets());
  Counter* wasted_counter = metrics->GetCounter("ps.wasted_gradients");
  Counter* versions_counter = metrics->GetCounter("ps.versions");
  TraceRecorder* trace = ctx->trace();

  // Synchronous-round state (BSP and BK): the open round's gradient sum,
  // which workers contributed, and pulls parked until the round applies. A
  // pull parks only when its sender already contributed this round — a
  // worker that has not is still *in* the round and must be served,
  // otherwise its first pull racing behind a fast worker's push deadlocks.
  std::vector<float> round_sum(num_params, 0.0f);
  std::vector<bool> in_round(static_cast<size_t>(n), false);
  int round_accepted = 0;
  std::vector<NodeId> parked_pulls;

  // The current version's model payload, materialized at most once per
  // version no matter how many pulls it serves (empty = stale). Under
  // compression the blob is the per-version materialization: encoded once
  // by the service compressor (whose error feedback tracks the model
  // stream), then shared by every pull of that version.
  Compressor* comp = ctx->compressor();
  const uint8_t enc = comp != nullptr ? comp->encoding_tag() : 0;
  Buffer model_payload;
  auto reply_model = [&](NodeId to) {
    trace->Record(ctx->Now(), TraceEventKind::kPsPull, to,
                  static_cast<int64_t>(versions_));
    if (model_payload.empty()) {
      model_payload =
          comp != nullptr
              ? comp->EncodeRange(global_.data(), 0, global_.size())
              : ep->MakePayload(global_.data(), global_.size());
    }
    // Best-effort: a failed send means the fabric was shut down (hard
    // abort); the server's receive loop observes the closure and drains.
    (void)ep->Send(to, 0, kKindModel, {static_cast<int64_t>(versions_)},
                   model_payload, enc);
  };
  auto bump_version = [&] {
    ++versions_;
    versions_counter->Increment();
    model_payload = Buffer();  // global_ changed; re-materialize lazily
  };
  auto close_round = [&] {
    Scale(1.0f / static_cast<float>(round_accepted), round_sum.data(),
          num_params);
    opt.Step(round_sum.data(), &global_);
    std::memset(round_sum.data(), 0, num_params * sizeof(float));
    round_accepted = 0;
    std::fill(in_round.begin(), in_round.end(), false);
    bump_version();
    for (NodeId w : parked_pulls) reply_model(w);
    parked_pulls.clear();
  };

  while (active > 0) {
    std::optional<Envelope> env = ep->RecvAny();
    if (!env.has_value()) break;  // transport shut down
    switch (env->kind) {
      case kKindPull:
        if (in_round[static_cast<size_t>(env->from)]) {
          parked_pulls.push_back(env->from);
        } else {
          reply_model(env->from);
        }
        break;
      case kKindPush: {
        if (env->encoding != 0) {
          // Decode compressed pushes once on arrival; the policy code below
          // then reads plain fp32 regardless of the wire encoding.
          std::vector<float> decoded;
          PR_CHECK(DecodeTaggedPayload(env->encoding, env->payload, &decoded)
                       .ok());
          PR_CHECK_EQ(decoded.size(), num_params);
          env->payload = Buffer::FromVector(std::move(decoded));
          env->encoding = 0;
        }
        const uint64_t pulled = static_cast<uint64_t>(env->ints[0]);
        const uint64_t staleness = versions_ - pulled;
        staleness_hist->Observe(static_cast<double>(staleness));
        const bool dropped = kind == StrategyKind::kPsBackup && staleness > 0;
        trace->Record(ctx->Now(), TraceEventKind::kPsPush, env->from,
                      static_cast<int64_t>(staleness), dropped ? 1 : 0);
        if (env->ints[1] != 0) --active;

        if (kind == StrategyKind::kPsAsp ||
            kind == StrategyKind::kPsHete) {
          // Each push applies one worker's gradient (BSP applies the mean
          // of N per round), so per-push steps carry 1/N of the base rate.
          double scale = 1.0 / static_cast<double>(n);
          if (kind == StrategyKind::kPsHete) {
            scale *= ExcessStalenessLrScale(staleness,
                                            static_cast<size_t>(n));
          }
          opt.Step(env->payload.data(), &global_, scale);
          bump_version();
          break;
        }

        if (dropped) {
          // Straggler: its gradient targets an old version — dropped (the
          // "backup workers do not contribute" behaviour). Its next pull is
          // served immediately so it rejoins the current round.
          wasted_counter->Increment();
        } else {
          Axpy(1.0f, env->payload.data(), round_sum.data(), num_params);
          in_round[static_cast<size_t>(env->from)] = true;
          ++round_accepted;
        }
        break;
      }
      default:
        PR_CHECK(false) << "server got unexpected kind " << env->kind;
    }

    // Synchronous round closure, re-evaluated after every message. BSP is
    // lockstep with equal budgets, so every round (including the last) gets
    // exactly N pushes. BK rounds are genuinely partial at the end —
    // departures shrink the pool, so the close threshold is capped by the
    // workers still able to push, otherwise the final rounds would stall.
    if (kind == StrategyKind::kPsBsp && round_accepted == n) {
      close_round();
    } else if (kind == StrategyKind::kPsBackup && round_accepted > 0 &&
               round_accepted >=
                   std::min(accept_count, std::max(active, 1))) {
      close_round();
    }
  }
}

void ThreadedPs::RunWorker(WorkerContext* ctx) {
  const ThreadedRunOptions& run = ctx->run();
  const NodeId server = ctx->service_node();
  Endpoint* ep = ctx->endpoint();
  Compressor* comp = ctx->compressor();
  std::vector<float> params;
  std::vector<float> grad;

  for (size_t k = 1; k <= run.iterations_per_worker; ++k) {
    // Failed sends to the server mean the fabric was shut down (hard
    // abort); unwind exactly like the Recv-shutdown path.
    if (!ep->Send(server, 0, kKindPull, {}).ok()) return;
    const double wait_begin = ctx->Now();
    std::optional<Envelope> env = ep->RecvFrom(server);
    if (!env.has_value()) return;  // shutdown
    ctx->RecordIdle(wait_begin, ctx->Now());
    PR_CHECK_EQ(env->kind, kKindModel);
    const int64_t version = env->ints[0];
    if (env->encoding != 0) {
      PR_CHECK(DecodeTaggedPayload(env->encoding, env->payload, &params)
                   .ok());
    } else {
      params = env->payload.Take();
    }

    ctx->ComputeGradient(params.data(), &grad);
    const bool is_last = k == run.iterations_per_worker;
    if (is_last) ctx->MarkFinished();
    // Compressed pushes run this worker's gradient stream through its
    // error-feedback residual (positions 0..num_params).
    Status sent =
        comp != nullptr
            ? ep->Send(server, 0, kKindPush,
                       {version, static_cast<int64_t>(is_last ? 1 : 0)},
                       comp->EncodeRange(grad.data(), 0, grad.size()),
                       comp->encoding_tag())
            : ep->Send(server, 0, kKindPush,
                       {version, static_cast<int64_t>(is_last ? 1 : 0)},
                       grad);
    if (!sent.ok()) {
      return;  // shutdown
    }
    // Keep the replica in sync with the last pulled model so run-level
    // diagnostics (replica spread) stay meaningful for the PS family too.
    ctx->params().CopyFrom(params);
  }
}

}  // namespace

std::unique_ptr<ThreadedStrategy> MakeThreadedPs(
    const StrategyOptions& options) {
  return std::make_unique<ThreadedPs>(options);
}

}  // namespace pr
