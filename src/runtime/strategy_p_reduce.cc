#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "comm/collectives.h"
#include "common/check.h"
#include "core/controller.h"
#include "fault/failure_detector.h"
#include "fault/fault_plan.h"
#include "runtime/threaded_strategies.h"
#include "runtime/worker_runtime.h"
#include "tensor/ops.h"

namespace pr {
namespace {

// Control-plane message kinds (collectives use their own range).
constexpr int kKindReady = 1;
constexpr int kKindLeave = 2;
constexpr int kKindGroupInfo = 3;
constexpr int kKindRelease = 4;
constexpr int kKindPause = 5;
constexpr int kKindRejoin = 6;
// Fault-tolerant protocol extensions.
constexpr int kKindHeartbeat = 7;   ///< off-cycle lease renewal
constexpr int kKindGroupDone = 8;   ///< member finished its group reduce
constexpr int kKindGroupStuck = 9;  ///< member stalled mid-reduce; escalate
constexpr int kKindAbort = 10;      ///< controller: give up on this group

// Data-plane kinds of the fault-aware ring reduce. Distinct from the stock
// collectives' 101-107 because matching here must include the step counter
// (a duplicated chunk would otherwise satisfy the next step's receive and
// corrupt the sum).
constexpr int kKindFaultRsChunk = 111;
constexpr int kKindFaultAgChunk = 112;

/// Chunk boundaries for splitting `n` elements into `p` near-equal parts
/// (mirrors the stock ring collectives' layout).
std::pair<size_t, size_t> ChunkBounds(size_t n, size_t p, size_t chunk) {
  const size_t base = n / p;
  const size_t rem = n % p;
  const size_t begin = chunk * base + std::min(chunk, rem);
  const size_t len = base + (chunk < rem ? 1 : 0);
  return {begin, begin + len};
}

enum class ReduceOutcome { kDone, kAborted, kShutdown };

/// Ring weighted all-reduce hardened for a lossy fabric: every receive is
/// matched on (left neighbour, group tag, kind, step) and carries a
/// deadline. On each timeout tick the worker renews its controller lease,
/// checks for a parked group Abort, and periodically escalates a
/// kKindGroupStuck report; the controller answers a hopeless stall (dead
/// peer or dropped chunk) with an Abort, turning a would-be deadlock into a
/// group retry.
ReduceOutcome FaultAwareRingReduce(WorkerContext* ctx,
                                   const std::vector<NodeId>& members,
                                   const std::vector<double>& weights,
                                   size_t my_index, uint64_t group_id,
                                   float* buf, size_t n) {
  Endpoint* ep = ctx->endpoint();
  const FaultPlan& plan = ctx->run().fault;
  const NodeId controller = ctx->service_node();
  const size_t p = members.size();
  Scale(static_cast<float>(weights[my_index]), buf, n);
  if (p == 1) return ReduceOutcome::kDone;

  const NodeId right = members[(my_index + 1) % p];
  const NodeId left = members[(my_index + p - 1) % p];

  const double begin = ctx->Now();
  int ticks = 0;
  // Waits for one specific ring chunk; nullopt means abort or shutdown (the
  // caller distinguishes via the outcome out-param).
  ReduceOutcome outcome = ReduceOutcome::kDone;
  auto wait_chunk = [&](int kind, int64_t step) -> std::optional<Envelope> {
    while (true) {
      std::optional<Envelope> env = ep->RecvWhereFor(
          [&](const Envelope& e) {
            return e.from == left && e.tag == group_id && e.kind == kind &&
                   !e.ints.empty() && e.ints[0] == step;
          },
          plan.recv_timeout_seconds);
      if (env.has_value()) return env;
      if (ep->closed()) {
        outcome = ReduceOutcome::kShutdown;
        return std::nullopt;
      }
      // Timeout tick: an Abort that landed during a selective receive is
      // parked in the stash — take it from there.
      if (ep->TryTakeStashed([&](const Envelope& e) {
            return e.from == controller && e.kind == kKindAbort &&
                   !e.ints.empty() &&
                   e.ints[0] == static_cast<int64_t>(group_id);
          })) {
        outcome = ReduceOutcome::kAborted;
        return std::nullopt;
      }
      (void)ep->Send(controller, 0, kKindHeartbeat, {});
      ++ticks;
      if (plan.stuck_report_ticks > 0 &&
          ticks % plan.stuck_report_ticks == 0) {
        (void)ep->Send(controller, group_id, kKindGroupStuck,
                       {static_cast<int64_t>(group_id)});
      }
      if (ctx->Now() - begin > plan.max_reduce_stall_seconds) {
        // Liveness valve: abandon the reduce even without a controller
        // verdict; the group-stuck escalation will (or did) abort it.
        outcome = ReduceOutcome::kAborted;
        return std::nullopt;
      }
    }
  };

  // Reduce-scatter.
  for (size_t step = 0; step < p - 1; ++step) {
    const size_t send_chunk = (my_index + p - step) % p;
    const size_t recv_chunk = (my_index + p - step - 1) % p;
    auto [sb, se] = ChunkBounds(n, p, send_chunk);
    (void)ep->Send(right, group_id, kKindFaultRsChunk,
                   {static_cast<int64_t>(step),
                    static_cast<int64_t>(send_chunk)},
                   std::vector<float>(buf + sb, buf + se));
    std::optional<Envelope> env =
        wait_chunk(kKindFaultRsChunk, static_cast<int64_t>(step));
    if (!env.has_value()) return outcome;
    auto [rb, re] = ChunkBounds(n, p, recv_chunk);
    if (env->payload.size() != re - rb) return ReduceOutcome::kAborted;
    Axpy(1.0f, env->payload.data(), buf + rb, re - rb);
  }
  // All-gather.
  for (size_t step = 0; step < p - 1; ++step) {
    const size_t send_chunk = (my_index + 1 + p - step) % p;
    const size_t recv_chunk = (my_index + p - step) % p;
    auto [sb, se] = ChunkBounds(n, p, send_chunk);
    (void)ep->Send(right, group_id, kKindFaultAgChunk,
                   {static_cast<int64_t>(step),
                    static_cast<int64_t>(send_chunk)},
                   std::vector<float>(buf + sb, buf + se));
    std::optional<Envelope> env =
        wait_chunk(kKindFaultAgChunk, static_cast<int64_t>(step));
    if (!env.has_value()) return outcome;
    auto [rb, re] = ChunkBounds(n, p, recv_chunk);
    if (env->payload.size() != re - rb) return ReduceOutcome::kAborted;
    std::copy(env->payload.begin(), env->payload.end(), buf + rb);
  }
  return ReduceOutcome::kDone;
}

/// Partial reduce on real threads (Alg. 2): worker threads send ready
/// signals; the service thread runs the controller (signal queue -> group
/// filter -> weight generator -> group broadcaster) plus the termination
/// protocol, and elastic membership (Pause/Rejoin) rides the same channel.
///
/// An enabled fault plan switches both sides to the hardened protocol:
/// heartbeat leases with controller-side eviction, at-least-once control
/// messages with explicit dedup, and group abort/retry on stalls (see
/// DESIGN.md "Fault tolerance").
class ThreadedPReduce : public ThreadedStrategy {
 public:
  explicit ThreadedPReduce(const StrategyOptions& options)
      : options_(options) {
    PR_CHECK(options.kind == StrategyKind::kPReduceConst ||
             options.kind == StrategyKind::kPReduceDynamic);
    PR_CHECK_GE(options.group_size, 2);
  }

  std::string Name() const override { return StrategyKindName(options_.kind); }
  bool has_service() const override { return true; }

  void RunService(ServiceContext* ctx) override;
  void RunWorker(WorkerContext* ctx) override;

  void FillResult(ThreadedRunResult* result) const override {
    result->group_reduces = group_reduces_;
    result->controller_stats = controller_stats_;
  }

 private:
  Controller MakeController(int num_workers) const;
  void RunServiceFaulty(ServiceContext* ctx);
  void RunWorkerFaulty(WorkerContext* ctx);

  StrategyOptions options_;
  // Written by the service thread; read after every thread joined.
  uint64_t group_reduces_ = 0;
  ControllerStats controller_stats_;
};

Controller ThreadedPReduce::MakeController(int num_workers) const {
  ControllerOptions copts;
  copts.num_workers = num_workers;
  copts.group_size = options_.group_size;
  copts.mode = options_.kind == StrategyKind::kPReduceDynamic
                   ? PartialReduceMode::kDynamic
                   : PartialReduceMode::kConstant;
  copts.dynamic = options_.dynamic;
  copts.frozen_avoidance = options_.frozen_avoidance;
  copts.history_window = options_.history_window;
  return Controller(copts);
}

void ThreadedPReduce::RunService(ServiceContext* ctx) {
  if (ctx->run().fault.enabled()) return RunServiceFaulty(ctx);
  const int n = ctx->run().num_workers;
  PR_CHECK_LE(options_.group_size, n);
  Endpoint* ep = ctx->endpoint();

  Controller controller = MakeController(n);
  controller.AttachObservers(ctx->metrics(), ctx->trace(),
                             [ctx] { return ctx->Now(); });
  TraceRecorder* trace = ctx->trace();

  int remaining = n;  // workers that have not permanently left
  int active = n;     // currently in the pool (excludes paused workers)

  // Releases queued waiters that can never form a full group.
  auto release_pending = [&] {
    for (const ReadySignal& s : controller.DrainPending()) {
      PR_CHECK(ep->Send(s.worker, 0, kKindRelease, {}).ok());
    }
  };

  // Broadcasts the group filter's decisions to their members.
  auto broadcast = [&](const std::vector<GroupDecision>& decisions) {
    for (const GroupDecision& decision : decisions) {
      ++group_reduces_;
      std::vector<int64_t> ints;
      ints.push_back(static_cast<int64_t>(decision.group_id));
      ints.push_back(decision.advanced_iteration);
      for (int m : decision.members) ints.push_back(m);
      // Convert the weights once per decision; every member shares the one
      // payload buffer.
      Buffer weights = Buffer::FromVector(std::vector<float>(
          decision.weights.begin(), decision.weights.end()));
      for (int member : decision.members) {
        PR_CHECK(ep->Send(member, decision.group_id, kKindGroupInfo, ints,
                          weights)
                     .ok());
      }
    }
  };

  while (remaining > 0) {
    std::optional<Envelope> env = ep->RecvAny();
    if (!env.has_value()) break;  // transport shut down
    switch (env->kind) {
      case kKindReady:
        if (active < options_.group_size) {
          // Too few pool members remain for this signal to ever group (the
          // sender may have raced a Leave or Pause); release it immediately.
          PR_CHECK(controller.OnReadySignal(env->from, env->ints[0]).empty());
          release_pending();
        } else {
          broadcast(controller.OnReadySignal(env->from, env->ints[0]));
        }
        break;
      case kKindLeave:
        --remaining;
        --active;
        // A departure can release frozen-avoidance holds.
        broadcast(controller.NotifyWorkerLeft(env->from));
        if (active < options_.group_size) release_pending();
        break;
      case kKindPause:
        // Elastic leave: the worker will rejoin, but until then it must not
        // be grouped and must not block frozen-avoidance holds.
        --active;
        trace->Record(ctx->Now(), TraceEventKind::kChurnLeave, env->from);
        broadcast(controller.NotifyWorkerLeft(env->from));
        if (active < options_.group_size) release_pending();
        break;
      case kKindRejoin:
        ++active;
        trace->Record(ctx->Now(), TraceEventKind::kChurnRejoin, env->from);
        broadcast(controller.NotifyWorkerRejoined(env->from));
        break;
      default:
        PR_CHECK(false) << "controller got unexpected kind " << env->kind;
    }
  }
  controller_stats_ = controller.stats();
}

void ThreadedPReduce::RunServiceFaulty(ServiceContext* ctx) {
  const int n = ctx->run().num_workers;
  const FaultPlan& plan = ctx->run().fault;
  PR_CHECK_LE(options_.group_size, n);
  Endpoint* ep = ctx->endpoint();
  TraceRecorder* trace = ctx->trace();

  Controller controller = MakeController(n);
  controller.AttachObservers(ctx->metrics(), ctx->trace(),
                             [ctx] { return ctx->Now(); });

  // Eagerly register the whole fault.* family so a chaos run's report
  // always carries the names, even when an injector never fired.
  Counter* evictions_counter = ctx->metrics()->GetCounter("fault.evictions");
  Counter* aborted_counter =
      ctx->metrics()->GetCounter("fault.aborted_groups");
  Counter* heartbeats_counter =
      ctx->metrics()->GetCounter("fault.heartbeats");
  ctx->metrics()->GetCounter("fault.retries");
  ctx->metrics()->GetCounter("fault.injected_drops");
  ctx->metrics()->GetCounter("fault.injected_dups");
  ctx->metrics()->GetCounter("fault.injected_delays");

  // Per-worker control-plane state machine. The raw message stream is
  // at-least-once (drops trigger re-sends, dups come from the injector), so
  // every transition below is idempotent.
  enum class WState { kIdle, kQueued, kInGroup, kLeft, kEvicted };
  struct InFlightGroup {
    std::vector<int> members;
    std::vector<int64_t> iterations;  ///< each member's iteration at grouping
    std::vector<int64_t> info_ints;   ///< GroupInfo payload, kept for re-sends
    Buffer info_weights;              ///< shared across members and re-sends
    std::set<int> done;
    int stuck_reports = 0;
  };
  std::vector<WState> wstate(static_cast<size_t>(n), WState::kIdle);
  std::vector<int64_t> queued_iter(static_cast<size_t>(n), -1);
  std::vector<uint64_t> wgroup(static_cast<size_t>(n), 0);
  std::vector<bool> paused(static_cast<size_t>(n), false);
  std::map<uint64_t, InFlightGroup> in_flight;
  FailureDetector detector(n, plan.lease_seconds, plan.missed_threshold,
                           ctx->Now());

  int remaining = n;
  int active = n;

  auto release_pending = [&] {
    for (const ReadySignal& s : controller.DrainPending()) {
      const size_t w = static_cast<size_t>(s.worker);
      if (wstate[w] == WState::kQueued) wstate[w] = WState::kIdle;
      (void)ep->Send(s.worker, 0, kKindRelease, {});
    }
  };

  auto send_group_info = [&](const InFlightGroup& f, int member) {
    (void)ep->Send(member, static_cast<uint64_t>(f.info_ints[0]),
                   kKindGroupInfo, f.info_ints, f.info_weights);
  };

  auto broadcast = [&](const std::vector<GroupDecision>& decisions) {
    for (const GroupDecision& decision : decisions) {
      ++group_reduces_;
      InFlightGroup f;
      f.members = decision.members;
      f.iterations = decision.iterations;
      f.info_ints.push_back(static_cast<int64_t>(decision.group_id));
      f.info_ints.push_back(decision.advanced_iteration);
      for (int m : decision.members) f.info_ints.push_back(m);
      f.info_weights = Buffer::FromVector(std::vector<float>(
          decision.weights.begin(), decision.weights.end()));
      for (int m : decision.members) {
        wstate[static_cast<size_t>(m)] = WState::kInGroup;
        wgroup[static_cast<size_t>(m)] = decision.group_id;
        send_group_info(f, m);
      }
      in_flight.emplace(decision.group_id, std::move(f));
    }
  };

  auto mark_done = [&](uint64_t g, int w) {
    if (wstate[static_cast<size_t>(w)] == WState::kInGroup &&
        wgroup[static_cast<size_t>(w)] == g) {
      wstate[static_cast<size_t>(w)] = WState::kIdle;
    }
    auto it = in_flight.find(g);
    if (it == in_flight.end()) return;
    it->second.done.insert(w);
    if (it->second.done.size() >= it->second.members.size()) {
      in_flight.erase(it);
    }
  };

  auto abort_group = [&](uint64_t g) {
    auto it = in_flight.find(g);
    if (it == in_flight.end()) return;
    InFlightGroup f = std::move(it->second);
    in_flight.erase(it);
    aborted_counter->Increment();
    trace->Record(ctx->Now(), TraceEventKind::kGroupAborted, -1,
                  static_cast<int64_t>(g));
    for (int m : f.members) {
      if (f.done.count(m) != 0) continue;  // completed before the stall
      const size_t mw = static_cast<size_t>(m);
      if (wstate[mw] != WState::kInGroup || wgroup[mw] != g) continue;
      (void)ep->Send(m, g, kKindAbort, {static_cast<int64_t>(g)});
      wstate[mw] = WState::kIdle;
    }
  };

  auto evict = [&](int w) {
    evictions_counter->Increment();
    trace->Record(ctx->Now(), TraceEventKind::kWorkerEvicted, w);
    const size_t sw = static_cast<size_t>(w);
    const bool was_in_group = wstate[sw] == WState::kInGroup;
    const uint64_t g = wgroup[sw];
    wstate[sw] = WState::kEvicted;
    if (was_in_group) abort_group(g);
    --remaining;
    --active;
    broadcast(controller.EvictWorker(w));
    if (active < options_.group_size) release_pending();
  };

  auto unevict = [&](int w) {
    ++remaining;
    ++active;
    wstate[static_cast<size_t>(w)] = WState::kIdle;
    detector.Resume(w, ctx->Now());
    trace->Record(ctx->Now(), TraceEventKind::kChurnRejoin, w);
    broadcast(controller.NotifyWorkerRejoined(w));
  };

  while (remaining > 0) {
    std::optional<Envelope> env = ep->RecvAnyFor(plan.recv_timeout_seconds);
    const double now = ctx->Now();
    for (int w : detector.Expired(now)) evict(w);
    if (!env.has_value()) {
      if (ep->closed()) break;
      continue;
    }
    const int w = env->from;
    if (w < 0 || w >= n) continue;
    const size_t sw = static_cast<size_t>(w);
    // Any message renews the sender's lease (ready signals piggyback their
    // heartbeat; kKindHeartbeat exists for the otherwise-silent stretches).
    detector.Beat(w, now);
    switch (env->kind) {
      case kKindHeartbeat:
        heartbeats_counter->Increment();
        trace->Record(now, TraceEventKind::kHeartbeat, w);
        break;

      case kKindReady: {
        const int64_t it = env->ints.empty() ? 0 : env->ints[0];
        if (wstate[sw] == WState::kLeft) break;  // delayed stale signal
        if (wstate[sw] == WState::kEvicted) unevict(w);  // implicit rejoin
        if (wstate[sw] == WState::kInGroup) {
          auto itf = in_flight.find(wgroup[sw]);
          if (itf == in_flight.end()) {
            wstate[sw] = WState::kIdle;  // defensive: group already resolved
          } else {
            int64_t grouped_iter = 0;
            for (size_t i = 0; i < itf->second.members.size(); ++i) {
              if (itf->second.members[i] == w) {
                grouped_iter = itf->second.iterations[i];
              }
            }
            if (it == grouped_iter) {
              // Re-sent signal for the very iteration we grouped: its
              // GroupInfo was lost — retransmit.
              send_group_info(itf->second, w);
              break;
            }
            if (it < grouped_iter) break;  // stale duplicate from the past
            // The worker has moved past the group (its GroupDone was
            // dropped, or it abandoned the wait): implicit completion.
            mark_done(wgroup[sw], w);
          }
        }
        if (wstate[sw] == WState::kQueued) {
          if (it == queued_iter[sw]) break;  // duplicated ready
          // Superseded signal (the worker gave up a verdict wait and
          // advanced); the stale queue entry must not be grouped.
          controller.PurgePending(w);
          wstate[sw] = WState::kIdle;
        }
        wstate[sw] = WState::kQueued;
        queued_iter[sw] = it;
        broadcast(controller.OnReadySignal(w, it));
        if (active < options_.group_size) release_pending();
        break;
      }

      case kKindLeave: {
        if (wstate[sw] == WState::kLeft) break;  // duplicate
        if (wstate[sw] == WState::kEvicted) {
          // The lease eviction already shrank the pool; just record that
          // the worker did in fact exit.
          wstate[sw] = WState::kLeft;
          break;
        }
        if (wstate[sw] == WState::kInGroup) mark_done(wgroup[sw], w);
        if (wstate[sw] == WState::kQueued) controller.PurgePending(w);
        wstate[sw] = WState::kLeft;
        detector.Suspend(w);
        --remaining;
        --active;
        broadcast(controller.NotifyWorkerLeft(w));
        if (active < options_.group_size) release_pending();
        break;
      }

      case kKindPause: {
        if (paused[sw] || wstate[sw] == WState::kLeft ||
            wstate[sw] == WState::kEvicted) {
          break;
        }
        paused[sw] = true;
        detector.Suspend(w);  // intentional silence, not a failure
        --active;
        trace->Record(now, TraceEventKind::kChurnLeave, w);
        broadcast(controller.NotifyWorkerLeft(w));
        if (active < options_.group_size) release_pending();
        break;
      }

      case kKindRejoin: {
        if (paused[sw]) {
          paused[sw] = false;
          ++active;
          detector.Resume(w, now);
          trace->Record(now, TraceEventKind::kChurnRejoin, w);
          broadcast(controller.NotifyWorkerRejoined(w));
        } else if (wstate[sw] == WState::kEvicted) {
          unevict(w);
        }
        // A rejoin from a worker that was never evicted (a hang shorter
        // than the eviction horizon) needs nothing: its lease just renewed.
        break;
      }

      case kKindGroupDone: {
        if (!env->ints.empty()) {
          mark_done(static_cast<uint64_t>(env->ints[0]), w);
        }
        break;
      }

      case kKindGroupStuck: {
        if (env->ints.empty()) break;
        const uint64_t g = static_cast<uint64_t>(env->ints[0]);
        auto itf = in_flight.find(g);
        if (itf == in_flight.end()) {
          // Already aborted (the reporter's Abort was lost) or long
          // resolved: tell just the reporter to stand down.
          (void)ep->Send(w, g, kKindAbort, {static_cast<int64_t>(g)});
          break;
        }
        bool has_dead_member = false;
        for (int m : itf->second.members) {
          if (wstate[static_cast<size_t>(m)] == WState::kEvicted) {
            has_dead_member = true;
          }
        }
        if (has_dead_member ||
            ++itf->second.stuck_reports >= plan.stuck_abort_reports) {
          // Either a member is dead, or the ring has stalled long enough
          // that a dropped chunk is the likely cause — retry the group.
          abort_group(g);
        }
        break;
      }

      default:
        break;  // unknown or stale kinds are dropped under chaos
    }
  }
  controller_stats_ = controller.stats();
}

void ThreadedPReduce::RunWorker(WorkerContext* ctx) {
  if (ctx->run().fault.enabled()) return RunWorkerFaulty(ctx);
  const ThreadedRunOptions& run = ctx->run();
  const NodeId controller = ctx->service_node();
  Endpoint* ep = ctx->endpoint();
  MutableSlice params = ctx->params();
  std::vector<float> grad;
  int64_t iteration = 0;

  const ThreadedChurnEvent* churn = nullptr;
  for (const ThreadedChurnEvent& c : run.churn) {
    if (c.worker == ctx->worker()) churn = &c;
  }

  for (size_t k = 1; k <= run.iterations_per_worker; ++k) {
    ctx->ComputeGradient(params.data(), &grad);
    ctx->sgd()->Step(grad.data(), params.data(), params.size());
    ++iteration;

    if (k == run.iterations_per_worker) {
      ctx->MarkFinished();
      PR_CHECK(ep->Send(controller, 0, kKindLeave, {}).ok());
      break;
    }

    if (churn != nullptr && k == churn->after_iterations) {
      // Elastic pause: leave the pool, nap, rejoin with the parameters we
      // last held.
      PR_CHECK(ep->Send(controller, 0, kKindPause, {}).ok());
      std::this_thread::sleep_for(
          std::chrono::duration<double>(churn->pause_seconds));
      PR_CHECK(ep->Send(controller, 0, kKindRejoin, {}).ok());
    }

    PR_CHECK(ep->Send(controller, 0, kKindReady, {iteration}).ok());

    // Wait for the controller's verdict; ring chunks from other groups that
    // land meanwhile are stashed by RecvFrom and replayed to the collective.
    const double wait_begin = ctx->Now();
    std::optional<Envelope> env = ep->RecvFrom(controller);
    if (!env.has_value()) return;  // shutdown
    ctx->RecordIdle(wait_begin, ctx->Now());
    if (env->kind == kKindRelease) continue;
    PR_CHECK_EQ(env->kind, kKindGroupInfo);

    const uint64_t group_id = static_cast<uint64_t>(env->ints[0]);
    const int64_t advanced = env->ints[1];
    std::vector<NodeId> members;
    for (size_t i = 2; i < env->ints.size(); ++i) {
      members.push_back(static_cast<NodeId>(env->ints[i]));
    }
    std::vector<double> weights(env->payload.begin(), env->payload.end());
    const size_t my_index = static_cast<size_t>(
        std::find(members.begin(), members.end(), ctx->worker()) -
        members.begin());
    PR_CHECK_LT(my_index, members.size()) << "not a member of my own group";

    const double comm_begin = ctx->Now();
    ctx->trace()->Record(comm_begin, TraceEventKind::kReduceStart,
                         ctx->worker(), static_cast<int64_t>(group_id));
    PR_CHECK(GroupWeightedAllReduce(ep, members, weights, my_index, group_id,
                                    params.data(), params.size())
                 .ok());
    ctx->RecordComm(comm_begin, ctx->Now());
    ctx->trace()->Record(ctx->Now(), TraceEventKind::kReduceEnd,
                         ctx->worker(), static_cast<int64_t>(group_id));
    if (options_.kind == StrategyKind::kPReduceDynamic) iteration = advanced;
  }
}

void ThreadedPReduce::RunWorkerFaulty(WorkerContext* ctx) {
  const ThreadedRunOptions& run = ctx->run();
  const FaultPlan& plan = run.fault;
  const NodeId controller = ctx->service_node();
  Endpoint* ep = ctx->endpoint();
  MutableSlice params = ctx->params();
  std::vector<float> grad;
  std::vector<float> backup;
  int64_t iteration = 0;
  uint64_t last_group_id = 0;  // workers dedup GroupInfo by ascending id
  Counter* retries_counter = ctx->metrics()->GetCounter("fault.retries");

  const WorkerFaultEvent* crash = nullptr;
  std::vector<const WorkerFaultEvent*> hangs;
  for (const WorkerFaultEvent& e : plan.worker_events) {
    if (e.worker != ctx->worker()) continue;
    if (e.kind == WorkerFaultEvent::Kind::kCrash && crash == nullptr) {
      crash = &e;
    } else if (e.kind == WorkerFaultEvent::Kind::kHang) {
      hangs.push_back(&e);
    }
  }
  const ThreadedChurnEvent* churn = nullptr;
  for (const ThreadedChurnEvent& c : run.churn) {
    if (c.worker == ctx->worker()) churn = &c;
  }

  auto note_retry = [&] {
    retries_counter->Increment();
    ctx->trace()->Record(ctx->Now(), TraceEventKind::kWorkerRetry,
                         ctx->worker(), iteration);
  };

  for (size_t k = 1; k <= run.iterations_per_worker; ++k) {
    ctx->ComputeGradient(params.data(), &grad);
    ctx->sgd()->Step(grad.data(), params.data(), params.size());
    ++iteration;

    if (crash != nullptr && !crash->in_group &&
        k >= static_cast<size_t>(crash->after_iterations)) {
      // Boundary crash: vanish without a word; the controller's lease
      // eviction is the only cleanup path.
      return;
    }
    if (k == run.iterations_per_worker) {
      ctx->MarkFinished();
      (void)ep->Send(controller, 0, kKindLeave, {});
      return;
    }
    for (const WorkerFaultEvent* h : hangs) {
      if (k == static_cast<size_t>(h->after_iterations)) {
        // Go dark long enough to (usually) lose the lease, then announce
        // the comeback — the controller treats a rejoin from an evicted
        // worker as re-admission.
        std::this_thread::sleep_for(
            std::chrono::duration<double>(h->hang_seconds));
        (void)ep->Send(controller, 0, kKindRejoin, {});
      }
    }
    if (churn != nullptr && k == churn->after_iterations) {
      (void)ep->Send(controller, 0, kKindPause, {});
      std::this_thread::sleep_for(
          std::chrono::duration<double>(churn->pause_seconds));
      (void)ep->Send(controller, 0, kKindRejoin, {});
    }

    (void)ep->Send(controller, 0, kKindReady, {iteration});

    // Verdict wait with lease upkeep, bounded re-sends, and a liveness
    // valve: if the controller stays silent past the deadline the worker
    // falls back to local computation and re-synchronizes next round.
    const double wait_begin = ctx->Now();
    double idle_begin = wait_begin;
    int ticks = 0;
    bool proceed = false;
    while (!proceed) {
      std::optional<Envelope> env =
          ep->RecvFromFor(controller, plan.recv_timeout_seconds);
      if (!env.has_value()) {
        if (ep->closed()) return;
        ++ticks;
        (void)ep->Send(controller, 0, kKindHeartbeat, {});
        if (plan.resend_ready_ticks > 0 &&
            ticks % plan.resend_ready_ticks == 0) {
          note_retry();
          (void)ep->Send(controller, 0, kKindReady, {iteration});
        }
        if (ctx->Now() - wait_begin > plan.max_verdict_wait_seconds) {
          ctx->RecordIdle(idle_begin, ctx->Now());
          proceed = true;
        }
        continue;
      }
      switch (env->kind) {
        case kKindRelease:
          ctx->RecordIdle(idle_begin, ctx->Now());
          proceed = true;
          break;

        case kKindAbort: {
          if (env->ints.empty()) break;
          const uint64_t g = static_cast<uint64_t>(env->ints[0]);
          if (g > last_group_id) {
            // Abort for a group whose GroupInfo we never received: adopt
            // the id (so a late re-send is ignored) and drop any chunks
            // peers already sent us for it.
            last_group_id = g;
            ep->PurgeStash([&](const Envelope& e) { return e.tag == g; });
          }
          break;  // stale aborts for finished groups are ignored
        }

        case kKindGroupInfo: {
          const uint64_t group_id = static_cast<uint64_t>(env->ints[0]);
          if (group_id <= last_group_id) break;  // duplicate / re-sent
          last_group_id = group_id;
          const int64_t advanced = env->ints[1];
          std::vector<NodeId> members;
          for (size_t i = 2; i < env->ints.size(); ++i) {
            members.push_back(static_cast<NodeId>(env->ints[i]));
          }
          std::vector<double> weights(env->payload.begin(),
                                      env->payload.end());
          const size_t my_index = static_cast<size_t>(
              std::find(members.begin(), members.end(), ctx->worker()) -
              members.begin());
          if (my_index >= members.size() ||
              weights.size() != members.size()) {
            break;  // malformed under chaos: ignore rather than die
          }
          if (crash != nullptr && crash->in_group &&
              k >= static_cast<size_t>(crash->after_iterations)) {
            // Mid-group crash: the nastiest case — peers are already
            // blocked on our chunks. Die silently inside the group.
            return;
          }
          ctx->RecordIdle(idle_begin, ctx->Now());
          backup = params.ToVector();
          const double comm_begin = ctx->Now();
          ctx->trace()->Record(comm_begin, TraceEventKind::kReduceStart,
                               ctx->worker(),
                               static_cast<int64_t>(group_id));
          const ReduceOutcome outcome =
              FaultAwareRingReduce(ctx, members, weights, my_index, group_id,
                                   params.data(), params.size());
          if (outcome == ReduceOutcome::kShutdown) return;
          if (outcome == ReduceOutcome::kAborted) {
            // Roll back the half-reduced vector, drop the conversation's
            // leftovers, and put our signal back in the queue.
            params.CopyFrom(backup);
            ep->PurgeStash(
                [&](const Envelope& e) { return e.tag == group_id; });
            note_retry();
            (void)ep->Send(controller, 0, kKindReady, {iteration});
            idle_begin = ctx->Now();
            break;  // back to the verdict wait
          }
          ep->PurgeStash(
              [&](const Envelope& e) { return e.tag == group_id; });
          (void)ep->Send(controller, 0, kKindGroupDone,
                         {static_cast<int64_t>(group_id)});
          ctx->RecordComm(comm_begin, ctx->Now());
          ctx->trace()->Record(ctx->Now(), TraceEventKind::kReduceEnd,
                               ctx->worker(),
                               static_cast<int64_t>(group_id));
          if (options_.kind == StrategyKind::kPReduceDynamic) {
            iteration = advanced;
          }
          proceed = true;
          break;
        }

        default:
          break;  // unknown or stale control messages are ignored
      }
    }
  }
}

}  // namespace

std::unique_ptr<ThreadedStrategy> MakeThreadedPReduce(
    const StrategyOptions& options) {
  return std::make_unique<ThreadedPReduce>(options);
}

}  // namespace pr
